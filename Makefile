GO ?= go

.PHONY: build test bench check race fmt

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE

# race runs the concurrency-sensitive packages (metrics registry, core
# handle, trace recorder) under the race detector.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/trace/...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# check is the pre-commit gate: tier-1 build+test plus vet, formatting,
# and the race pass.
check: build
	$(GO) vet ./...
	@$(MAKE) --no-print-directory fmt
	$(GO) test ./...
	@$(MAKE) --no-print-directory race
