GO ?= go

# Ratcheted coverage floors for the packages that carry the fault-
# injection and degradation contracts (measured 90.2% / 85.6% when the
# gate was introduced, 89.2% for dnn when the out-of-core executor
# landed; raise these as coverage grows, never lower them).
COVER_FLOOR_core   = 88.0
COVER_FLOOR_faults = 83.0
COVER_FLOOR_dnn    = 87.0

.PHONY: build test test-e2e bench bench-smoke bench-json benchdiff check cover-gate race fmt lint fuzz-smoke profile-smoke trace-smoke

# benchdiff compares BENCH_report.json (from bench-json) against the
# committed baseline. `make check` and CI run it strict
# (UCUDNN_BENCHDIFF_STRICT=1): a ns/op regression past a benchmark's
# max_regress slack (or any allocs/op increase) fails the build. The
# bare `make benchdiff` stays informational for ad-hoc runs on
# unknown hosts; the per-benchmark slack in BENCH_kernels.json absorbs
# the jitter of the noisy single-core box the gate usually runs on
# (see the host note there).
BENCHDIFF_FLAGS = -informational
ifdef UCUDNN_BENCHDIFF_STRICT
BENCHDIFF_FLAGS =
endif

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# test-e2e runs the full differential + golden end-to-end suite: every
# zoo network forward+backward, undivided vs micro-batched vs
# micro-batched-with-faults, asserting bitwise-identical outputs and
# gradients (see internal/testkit).
test-e2e:
	$(GO) test -count=1 -timeout 1200s ./internal/testkit/
	$(GO) test -count=1 -timeout 1200s -run 'TestOOC' ./internal/testkit/

bench:
	$(GO) test -bench=. -benchmem -run=NONE

# bench-smoke is a short pass over the convolution kernel
# micro-benchmarks (the BENCH_kernels.json baseline): enough iterations
# to catch a kernel that stopped running or started allocating, fast
# enough for the pre-commit gate.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkConvKernels$$|BenchmarkConvBackwardFilter|BenchmarkSgemm' \
		-benchtime=3x -benchmem ./internal/conv/ ./internal/blas/

# bench-json runs the kernel micro-benchmarks that back
# BENCH_kernels.json and emits a schema'd report for benchdiff. The raw
# bench output goes through a file, not a pipe, so a test failure is
# not masked by the emitter's exit status.
bench-json:
	@tmp=$$(mktemp); \
	$(GO) test -run=NONE -bench='BenchmarkConvKernels$$|BenchmarkConvKernelsBatch|BenchmarkConvBackwardFilter|BenchmarkSgemm' \
		-benchtime=3x -benchmem ./internal/conv/ ./internal/blas/ > $$tmp || { cat $$tmp; rm -f $$tmp; exit 1; }; \
	$(GO) run ./cmd/ucudnn-benchdiff -emit < $$tmp > BENCH_report.json; rm -f $$tmp
	@echo "wrote BENCH_report.json"

benchdiff: BENCH_report.json
	$(GO) run ./cmd/ucudnn-benchdiff $(BENCHDIFF_FLAGS) BENCH_kernels.json BENCH_report.json

BENCH_report.json:
	@$(MAKE) --no-print-directory bench-json

# profile-smoke exercises the cost-attribution pipeline end to end: a
# real-compute zoo run under -profile, then schema + invariant
# validation of the resulting PROF_report.json (kept as a CI artifact
# next to BENCH_report.json).
profile-smoke:
	$(GO) run ./cmd/ucudnn-time -net alexnet -batch 8 -iters 1 -mode wr -ws 64 -profile PROF_report.json
	$(GO) run ./cmd/ucudnn-profile -check PROF_report.json

# trace-smoke exercises the causal-timeline pipeline end to end: a
# blob-budgeted zoo run exporting the canonical timeline, then schema +
# invariant + coverage validation of the resulting TRACE_timeline.json
# (kept as a CI artifact next to PROF_report.json).
trace-smoke:
	$(GO) run ./cmd/ucudnn-trace -net alexnet -batch 16 -iters 1 -mode wd -total 256 -blob-budget 48 \
		-ws 64 -o TRACE_timeline.json -critical-path -stalls
	$(GO) run ./cmd/ucudnn-trace -check TRACE_timeline.json

# lint runs the ucudnn-lint analyzer suite (detlint, hotpath, wsfloor,
# metricname, faultpoint, phasename — see DESIGN.md "Static analysis")
# over the whole module.
lint:
	$(GO) run ./cmd/ucudnn-lint ./...

# fuzz-smoke gives each committed fuzz target a short budget: long
# enough to replay the corpus and probe nearby inputs, short enough for
# the pre-commit gate.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzDescriptors -fuzztime=5s ./internal/cudnn/
	$(GO) test -run=NONE -fuzz=FuzzILP -fuzztime=5s ./internal/ilp/
	$(GO) test -run=NONE -fuzz=FuzzOOCSchedule -fuzztime=5s ./internal/dnn/

# cover-gate fails when internal/core or internal/faults coverage drops
# below its ratcheted floor, so the degradation ladder and fault registry
# cannot silently lose their tests.
cover-gate:
	@for spec in core:$(COVER_FLOOR_core) faults:$(COVER_FLOOR_faults) dnn:$(COVER_FLOOR_dnn); do \
		pkg=$${spec%%:*}; min=$${spec##*:}; prof=$$(mktemp); \
		$(GO) test -count=1 -coverprofile=$$prof ./internal/$$pkg/ >/dev/null || { rm -f $$prof; exit 1; }; \
		got=$$($(GO) tool cover -func=$$prof | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		rm -f $$prof; \
		echo "coverage internal/$$pkg: $$got% (floor $$min%)"; \
		if [ "$$(awk -v g=$$got -v m=$$min 'BEGIN{print (g+0 >= m+0)}')" != 1 ]; then \
			echo "coverage gate: internal/$$pkg fell below $$min%"; exit 1; fi; \
	done

# race runs the concurrency-sensitive packages (metrics registry, core
# handle, trace recorder, fault registry, flight recorder, debug server,
# plus the striped kernel engine and its BLAS and worker-pool layers)
# under the race detector; the e2e harness runs in -short mode (two
# networks) to keep the pass affordable.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/trace/... \
		./internal/conv/... ./internal/blas/... ./internal/parallel/... ./internal/faults/... \
		./internal/flight/... ./internal/debugserver/... ./internal/prof/... ./internal/dnn/...
	$(GO) test -race -short -count=1 -timeout 1200s ./internal/testkit/

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# check is the pre-commit gate: tier-1 build+test plus vet, formatting,
# the analyzer suite, the coverage gate, the race pass, the kernel
# benchmark smoke run, and the fuzz smoke run.
check: build
	$(GO) vet ./...
	@$(MAKE) --no-print-directory fmt
	@$(MAKE) --no-print-directory lint
	$(GO) test ./...
	@$(MAKE) --no-print-directory cover-gate
	@$(MAKE) --no-print-directory race
	@$(MAKE) --no-print-directory bench-smoke
	@$(MAKE) --no-print-directory fuzz-smoke
	@$(MAKE) --no-print-directory profile-smoke
	@$(MAKE) --no-print-directory trace-smoke
	@$(MAKE) --no-print-directory bench-json
	@$(MAKE) --no-print-directory benchdiff UCUDNN_BENCHDIFF_STRICT=1
