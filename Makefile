GO ?= go

.PHONY: build test bench bench-smoke check race fmt lint fuzz-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE

# bench-smoke is a short pass over the convolution kernel
# micro-benchmarks (the BENCH_kernels.json baseline): enough iterations
# to catch a kernel that stopped running or started allocating, fast
# enough for the pre-commit gate.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkConvKernels$$|BenchmarkConvBackwardFilter' \
		-benchtime=3x -benchmem ./internal/conv/

# lint runs the ucudnn-lint analyzer suite (detlint, hotpath, wsfloor,
# metricname — see DESIGN.md "Static analysis") over the whole module.
lint:
	$(GO) run ./cmd/ucudnn-lint ./...

# fuzz-smoke gives each committed fuzz target a short budget: long
# enough to replay the corpus and probe nearby inputs, short enough for
# the pre-commit gate.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzDescriptors -fuzztime=5s ./internal/cudnn/
	$(GO) test -run=NONE -fuzz=FuzzILP -fuzztime=5s ./internal/ilp/

# race runs the concurrency-sensitive packages (metrics registry, core
# handle, trace recorder, plus the striped kernel engine and its BLAS
# and worker-pool layers) under the race detector.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/trace/... \
		./internal/conv/... ./internal/blas/... ./internal/parallel/...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# check is the pre-commit gate: tier-1 build+test plus vet, formatting,
# the analyzer suite, the race pass, the kernel benchmark smoke run, and
# the fuzz smoke run.
check: build
	$(GO) vet ./...
	@$(MAKE) --no-print-directory fmt
	@$(MAKE) --no-print-directory lint
	$(GO) test ./...
	@$(MAKE) --no-print-directory race
	@$(MAKE) --no-print-directory bench-smoke
	@$(MAKE) --no-print-directory fuzz-smoke
