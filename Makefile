GO ?= go

.PHONY: build test bench bench-smoke check race fmt

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE

# bench-smoke is a short pass over the convolution kernel
# micro-benchmarks (the BENCH_kernels.json baseline): enough iterations
# to catch a kernel that stopped running or started allocating, fast
# enough for the pre-commit gate.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkConvKernels$$|BenchmarkConvBackwardFilter' \
		-benchtime=3x -benchmem ./internal/conv/

# race runs the concurrency-sensitive packages (metrics registry, core
# handle, trace recorder) under the race detector.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/trace/...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# check is the pre-commit gate: tier-1 build+test plus vet, formatting,
# the race pass, and the kernel benchmark smoke run.
check: build
	$(GO) vet ./...
	@$(MAKE) --no-print-directory fmt
	$(GO) test ./...
	@$(MAKE) --no-print-directory race
	@$(MAKE) --no-print-directory bench-smoke
