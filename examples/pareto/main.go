// Pareto front explorer: prints the desirable-configuration set (paper
// Fig. 8) of AlexNet's conv2 forward kernel, rendering a small ASCII
// time-vs-workspace scatter so the trade-off curve is visible in a
// terminal.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

func main() {
	batch := flag.Int("batch", 256, "mini-batch size")
	limitMiB := flag.Int64("ws", 120, "workspace limit (MiB)")
	devName := flag.String("device", "p100", "device")
	flag.Parse()

	dev, err := device.ByName(*devName)
	if err != nil {
		log.Fatal(err)
	}
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: *batch, C: 64, H: 27, W: 27},
		Filt:   tensor.Filter{K: 192, C: 64, R: 5, S: 5},
		Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1},
	}
	b := core.NewBencher(cudnn.NewHandle(dev, cudnn.ModelOnlyBackend), nil, 1)
	front, err := core.DesirableSet(b, core.Kernel{Op: conv.Forward, Shape: cs},
		*limitMiB<<20, core.PolicyAll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conv2 forward desirable configurations (%s, N=%d, %d MiB): %d points\n\n",
		dev.Name, *batch, *limitMiB, len(front))

	// ASCII scatter: x = workspace, y = time.
	const width, height = 64, 16
	minT, maxT := front[0].Time, front[len(front)-1].Time
	var maxW int64
	for _, p := range front {
		if p.Workspace > maxW {
			maxW = p.Workspace
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range front {
		x := int(float64(p.Workspace) / float64(maxW+1) * float64(width-1))
		y := 0
		if maxT > minT {
			y = int(float64(p.Time-minT) / float64(maxT-minT) * float64(height-1))
		}
		grid[y][x] = '*'
	}
	fmt.Printf("time %8v ^\n", minT.Round(time.Microsecond))
	for _, row := range grid {
		fmt.Printf("              |%s\n", string(row))
	}
	fmt.Printf("time %8v +%s> ws 0..%.0f MiB\n\n", maxT.Round(time.Microsecond),
		strings.Repeat("-", width), float64(maxW)/(1<<20))

	for _, p := range front {
		fmt.Printf("  %10v  %8.1f MiB  %v\n", p.Time, float64(p.Workspace)/(1<<20), p.Config)
	}
}
