// Quickstart: wrap a cuDNN handle with µ-cuDNN, run one convolution under
// a workspace budget, and verify the micro-batched result against the
// direct reference — the paper's "replace the handle type" integration in
// ~20 lines of user code.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

func main() {
	// 1. A cuDNN handle on the simulated P100; µ-cuDNN wraps it.
	inner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	h, err := core.New(inner,
		core.WithPolicy(core.PolicyPowerOfTwo),
		core.WithWorkspaceLimit(4<<20), // a tight 4 MiB per-kernel budget
	)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe a convolution exactly as with cuDNN.
	xd, _ := cudnn.NewTensorDesc(32, 16, 27, 27)
	wd, _ := cudnn.NewFilterDesc(48, 16, 5, 5)
	cd, _ := cudnn.NewConvDesc(2, 2, 1, 1, 1, 1)
	yd, _ := cudnn.GetOutputDim(xd, wd, cd)

	// 3. Ask for an algorithm: µ-cuDNN returns its virtual algorithm and
	// zero workspace — it plans and allocates internally.
	algo, err := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 4<<20)
	if err != nil {
		log.Fatal(err)
	}
	ws, _ := h.GetConvolutionForwardWorkspaceSize(xd, wd, cd, yd, algo)
	fmt.Printf("algorithm: %d (virtual), required workspace: %d bytes\n", algo, ws)

	// 4. Run the convolution.
	rng := rand.New(rand.NewSource(1))
	cs := cudnn.Shape(xd, wd, cd)
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(48, 16, 5, 5)
	w.Randomize(rng, 0.2)
	y := tensor.NewShaped(cs.OutShape())
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, algo, nil, 0, yd, y); err != nil {
		log.Fatal(err)
	}

	// 5. Inspect the plan µ-cuDNN chose.
	for _, p := range h.Plans() {
		fmt.Printf("plan: %v\n", p)
	}
	fmt.Printf("simulated kernel time: %v over %d kernel launches\n",
		inner.Elapsed(), inner.KernelCalls())

	// 6. Verify against the direct reference.
	ref := tensor.NewShaped(cs.OutShape())
	if err := conv.Run(conv.Forward, conv.AlgoDirect, cs, x, w, ref, 1, 0, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max |µ-cuDNN - direct| = %.2e (identical semantics)\n",
		tensor.MaxAbsDiff(y.Data, ref.Data))
}
