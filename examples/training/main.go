// End-to-end training under µ-cuDNN with real arithmetic: a small CNN
// learns a synthetic classification task twice — once over plain cuDNN,
// once over µ-cuDNN with a tight workspace budget — and the example shows
// the losses track each other while µ-cuDNN runs micro-batched kernels.
// This demonstrates the paper's claim that micro-batching decouples
// hardware efficiency from statistical efficiency: the training dynamics
// are unchanged.
//
// At exit the µ-cuDNN run exports its observability outputs: a metrics
// summary (training_metrics.txt; metrics_sample.txt is a checked-in
// snapshot) and a Chrome trace of the training timeline
// (training_trace.json, viewable in chrome://tracing or Perfetto). Both
// paths can be overridden with UCUDNN_METRICS and UCUDNN_TRACE.
//
// A final run takes the same idea out of core: the device is capped
// below the undivided activation footprint, the mini-batch streams
// through in micro-batch windows under a blob budget, and every
// per-step loss is still bitwise identical to an uncapped reference.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
)

const (
	batch   = 16
	classes = 4
	steps   = 40
)

func buildNet(ctx *dnn.Context) (*dnn.Net, *dnn.SoftmaxLoss) {
	net := dnn.NewNet(ctx)
	net.Input("data", tensor.Shape{N: batch, C: 3, H: 16, W: 16})
	net.Add(dnn.NewConv("conv1", 16, 3, 1, 1, true), "conv1", "data")
	net.Add(dnn.NewReLU("relu1"), "relu1", "conv1")
	net.Add(dnn.NewPool("pool1", dnn.MaxPool, 2, 2, 0), "pool1", "relu1")
	net.Add(dnn.NewConv("conv2", 32, 3, 1, 1, true), "conv2", "pool1")
	net.Add(dnn.NewReLU("relu2"), "relu2", "conv2")
	net.Add(dnn.NewGlobalAvgPool("gap"), "gap", "relu2")
	net.Add(dnn.NewFC("fc", classes), "fc", "gap")
	loss := dnn.NewSoftmaxLoss("loss")
	net.Add(loss, "loss", "fc")
	return net, loss
}

// makeBatch writes a quadrant-energy classification task.
func makeBatch(rng *rand.Rand, in *tensor.Tensor, labels []int) {
	in.Randomize(rng, 0.1)
	for n := 0; n < batch; n++ {
		lbl := rng.Intn(classes)
		labels[n] = lbl
		h0, w0 := (lbl/2)*8, (lbl%2)*8
		for c := 0; c < 3; c++ {
			for h := 0; h < 8; h++ {
				for w := 0; w < 8; w++ {
					in.Add(n, c, h0+h, w0+w, 1.0)
				}
			}
		}
	}
}

func train(name string, convH dnn.ConvHandle, inner *cudnn.Handle, rec *trace.Recorder, ooc *dnn.OOCState) []float32 {
	ctx := dnn.NewContext(convH, inner, 1<<20)
	ctx.RNG = rand.New(rand.NewSource(42))
	ctx.Trace = rec
	ctx.OOC = ooc
	net, loss := buildNet(ctx)
	if err := net.Setup(); err != nil {
		log.Fatal(err)
	}
	sgd := dnn.NewSGD(0.05, 0.9, 1e-4)
	rng := rand.New(rand.NewSource(7))
	loss.Labels = make([]int, batch)
	var hist []float32
	for it := 0; it < steps; it++ {
		makeBatch(rng, net.InputBlob().Data, loss.Labels)
		net.ZeroGrads()
		if err := net.Forward(); err != nil {
			log.Fatal(err)
		}
		if err := net.Backward(); err != nil {
			log.Fatal(err)
		}
		sgd.Step(net.Params())
		hist = append(hist, loss.Loss)
	}
	fmt.Printf("%-8s loss: %.4f -> %.4f (simulated kernel time %v)\n",
		name, hist[0], hist[len(hist)-1], inner.Elapsed())
	return hist
}

func main() {
	plain := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	base := train("cuDNN", plain, plain, nil, nil)

	inner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	uc, err := core.New(inner,
		core.WithPolicy(core.PolicyPowerOfTwo),
		core.WithWorkspaceLimit(1<<20),
		core.WithMetricsPath("training_metrics.txt"),
		core.WithTracePath("training_trace.json"),
		core.FromEnv())
	if err != nil {
		log.Fatal(err)
	}
	opt := train("µ-cuDNN", uc, inner, uc.TraceRecorder(), nil)

	var maxDiff float64
	for i := range base {
		d := float64(base[i] - opt[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nmax per-step loss divergence: %.3e (statistical efficiency preserved)\n", maxDiff)
	fmt.Println("\nµ-cuDNN execution plans:")
	for _, p := range uc.Plans() {
		fmt.Printf("  %v\n", p)
	}

	if err := uc.Flush(); err != nil {
		log.Fatal(err)
	}
	o := uc.Options()
	fmt.Printf("\nwrote metrics to %s and trace to %s\n", o.MetricsPath, o.TracePath)

	trainOutOfCore()
}

// gemmOnly pins convolution to the GEMM algorithm so divided and
// undivided runs share one arithmetic and can be compared bit for bit.
func gemmOnly(op conv.Op, a conv.Algo) bool { return a == conv.AlgoGemm }

// trainOutOfCore trains the same task on a device whose memory cannot
// hold the undivided activations: the mini-batch streams through in
// micro-batch windows under a blob budget, and every per-step loss is
// bitwise identical to an uncapped reference run.
func trainOutOfCore() {
	fmt.Println("\nout-of-core training under a blob-memory budget:")

	// Probe the activation footprint (shapes only, no compute).
	probe := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	probe.SetAlgoFilter(gemmOnly)
	probeCtx := dnn.NewContext(probe, probe, 1<<20)
	probeCtx.SkipCompute = true
	probeNet, _ := buildNet(probeCtx)
	if err := probeNet.Setup(); err != nil {
		log.Fatal(err)
	}
	model, err := dnn.FootprintModel(probeNet)
	if err != nil {
		log.Fatal(err)
	}
	capBytes := model.ActivationBytes() * 3 / 4
	fmt.Printf("undivided activations %.1f KiB; device capped at %.1f KiB\n",
		float64(model.ActivationBytes())/(1<<10), float64(capBytes)/(1<<10))

	// Undivided training cannot even allocate its blobs under the cap.
	small := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	small.Mem().Cap = capBytes
	failNet, _ := buildNet(dnn.NewContext(small, small, 1<<20))
	if err := failNet.Setup(); err == nil {
		log.Fatal("undivided setup fit a device it must not fit")
	} else {
		fmt.Printf("undivided setup on the capped device: %v\n", err)
	}

	// Uncapped reference with the same pinned arithmetic.
	ref := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	ref.SetAlgoFilter(gemmOnly)
	refHist := train("ref", ref, ref, nil, nil)

	// Out-of-core run: half the cap as the blob budget.
	plan, err := dnn.PlanOOC(model, capBytes/2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OOC plan: budget %.1f KiB, chunk %d (%d windows), peak %.1f KiB, floor=%v\n",
		float64(plan.Budget)/(1<<10), plan.Chunk, plan.Windows, float64(plan.PeakBytes)/(1<<10), plan.Floor)
	oocH := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	oocH.SetAlgoFilter(gemmOnly)
	oocH.Mem().Cap = capBytes
	state := dnn.NewOOCState(model, plan)
	oocHist := train("OOC", oocH, oocH, nil, state)

	for i := range refHist {
		if math.Float32bits(refHist[i]) != math.Float32bits(oocHist[i]) {
			log.Fatalf("step %d: OOC loss %g != reference %g (bitwise)", i, oocHist[i], refHist[i])
		}
	}
	r := state.Report()
	fmt.Printf("all %d per-step losses bitwise identical; streamed %.1f KiB in, %.1f KiB out\n",
		len(refHist), float64(r.FetchBytes)/(1<<10), float64(r.SpillBytes)/(1<<10))
}
