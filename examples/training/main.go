// End-to-end training under µ-cuDNN with real arithmetic: a small CNN
// learns a synthetic classification task twice — once over plain cuDNN,
// once over µ-cuDNN with a tight workspace budget — and the example shows
// the losses track each other while µ-cuDNN runs micro-batched kernels.
// This demonstrates the paper's claim that micro-batching decouples
// hardware efficiency from statistical efficiency: the training dynamics
// are unchanged.
//
// At exit the µ-cuDNN run exports its observability outputs: a metrics
// summary (training_metrics.txt; metrics_sample.txt is a checked-in
// snapshot) and a Chrome trace of the training timeline
// (training_trace.json, viewable in chrome://tracing or Perfetto). Both
// paths can be overridden with UCUDNN_METRICS and UCUDNN_TRACE.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
)

const (
	batch   = 16
	classes = 4
	steps   = 40
)

func buildNet(ctx *dnn.Context) (*dnn.Net, *dnn.SoftmaxLoss) {
	net := dnn.NewNet(ctx)
	net.Input("data", tensor.Shape{N: batch, C: 3, H: 16, W: 16})
	net.Add(dnn.NewConv("conv1", 16, 3, 1, 1, true), "conv1", "data")
	net.Add(dnn.NewReLU("relu1"), "relu1", "conv1")
	net.Add(dnn.NewPool("pool1", dnn.MaxPool, 2, 2, 0), "pool1", "relu1")
	net.Add(dnn.NewConv("conv2", 32, 3, 1, 1, true), "conv2", "pool1")
	net.Add(dnn.NewReLU("relu2"), "relu2", "conv2")
	net.Add(dnn.NewGlobalAvgPool("gap"), "gap", "relu2")
	net.Add(dnn.NewFC("fc", classes), "fc", "gap")
	loss := dnn.NewSoftmaxLoss("loss")
	net.Add(loss, "loss", "fc")
	return net, loss
}

// makeBatch writes a quadrant-energy classification task.
func makeBatch(rng *rand.Rand, in *tensor.Tensor, labels []int) {
	in.Randomize(rng, 0.1)
	for n := 0; n < batch; n++ {
		lbl := rng.Intn(classes)
		labels[n] = lbl
		h0, w0 := (lbl/2)*8, (lbl%2)*8
		for c := 0; c < 3; c++ {
			for h := 0; h < 8; h++ {
				for w := 0; w < 8; w++ {
					in.Add(n, c, h0+h, w0+w, 1.0)
				}
			}
		}
	}
}

func train(name string, convH dnn.ConvHandle, inner *cudnn.Handle, rec *trace.Recorder) []float32 {
	ctx := dnn.NewContext(convH, inner, 1<<20)
	ctx.RNG = rand.New(rand.NewSource(42))
	ctx.Trace = rec
	net, loss := buildNet(ctx)
	if err := net.Setup(); err != nil {
		log.Fatal(err)
	}
	sgd := dnn.NewSGD(0.05, 0.9, 1e-4)
	rng := rand.New(rand.NewSource(7))
	loss.Labels = make([]int, batch)
	var hist []float32
	for it := 0; it < steps; it++ {
		makeBatch(rng, net.InputBlob().Data, loss.Labels)
		net.ZeroGrads()
		if err := net.Forward(); err != nil {
			log.Fatal(err)
		}
		if err := net.Backward(); err != nil {
			log.Fatal(err)
		}
		sgd.Step(net.Params())
		hist = append(hist, loss.Loss)
	}
	fmt.Printf("%-8s loss: %.4f -> %.4f (simulated kernel time %v)\n",
		name, hist[0], hist[len(hist)-1], inner.Elapsed())
	return hist
}

func main() {
	plain := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	base := train("cuDNN", plain, plain, nil)

	inner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	uc, err := core.New(inner,
		core.WithPolicy(core.PolicyPowerOfTwo),
		core.WithWorkspaceLimit(1<<20),
		core.WithMetricsPath("training_metrics.txt"),
		core.WithTracePath("training_trace.json"),
		core.FromEnv())
	if err != nil {
		log.Fatal(err)
	}
	opt := train("µ-cuDNN", uc, inner, uc.TraceRecorder())

	var maxDiff float64
	for i := range base {
		d := float64(base[i] - opt[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nmax per-step loss divergence: %.3e (statistical efficiency preserved)\n", maxDiff)
	fmt.Println("\nµ-cuDNN execution plans:")
	for _, p := range uc.Plans() {
		fmt.Printf("  %v\n", p)
	}

	if err := uc.Flush(); err != nil {
		log.Fatal(err)
	}
	o := uc.Options()
	fmt.Printf("\nwrote metrics to %s and trace to %s\n", o.MetricsPath, o.TracePath)
}
