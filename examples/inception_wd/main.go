// Inception + Workspace Division: the paper motivates WD with modules
// like GoogLeNet's Inception, whose parallel branches have kernels with
// very different appetite for workspace. This example builds the
// inception(3a) module, lets WD divide a single 96 MiB budget across its
// 17 kernels via the ILP, and prints who got what — compare with giving
// every kernel the same slice (WR).
package main

import (
	"fmt"
	"log"

	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
	"ucudnn/internal/zoo"
)

func main() {
	const batch = 128
	const totalMiB = 96

	// WD run.
	inner := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	inner.Mem().Cap = 0
	wdHandle, err := core.New(inner, core.WithWD(totalMiB<<20), core.WithPolicy(core.PolicyPowerOfTwo))
	if err != nil {
		log.Fatal(err)
	}
	ctx := dnn.NewContext(wdHandle, inner, core.DefaultWorkspaceLimit)
	ctx.SkipCompute = true
	net := zoo.InceptionModule(ctx, batch)
	wdRep, err := net.Time(3)
	if err != nil {
		log.Fatal(err)
	}
	stats := wdHandle.WDStats()
	fmt.Printf("WD over inception(3a), N=%d, %d MiB total budget\n", batch, totalMiB)
	fmt.Printf("ILP: %d binary variables, %d nodes, solved in %v\n\n",
		stats.ILPVars, stats.ILPNodes, stats.SolveTime)
	fmt.Println("assigned segments:")
	seen := map[string]bool{}
	for _, p := range stats.Plans {
		key := p.Kernel.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Printf("  %-75s %7.1f MiB  %v\n", key, float64(p.Workspace)/(1<<20), p.Config)
	}
	fmt.Printf("total assigned: %.1f MiB, module time %v\n\n",
		float64(stats.TotalWorkspace)/(1<<20), wdRep.Total())

	// WR baseline at the same total: an equal slice per kernel.
	perKernel := int64(totalMiB) << 20 / int64(len(seen))
	inner2 := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	inner2.Mem().Cap = 0
	wrHandle, err := core.New(inner2, core.WithWorkspaceLimit(perKernel), core.WithPolicy(core.PolicyPowerOfTwo))
	if err != nil {
		log.Fatal(err)
	}
	ctx2 := dnn.NewContext(wrHandle, inner2, perKernel)
	ctx2.SkipCompute = true
	net2 := zoo.InceptionModule(ctx2, batch)
	wrRep, err := net2.Time(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WR with equal %0.1f MiB slices: module time %v\n", float64(perKernel)/(1<<20), wrRep.Total())
	fmt.Printf("WD speedup at equal total workspace: %.2fx\n",
		float64(wrRep.Total())/float64(wdRep.Total()))
}
