// Package prof is the µ-cuDNN per-phase kernel profiler: an
// always-compiled, zero-allocation layer that attributes kernel time to
// the phases inside each convolution algorithm (im2col vs SGEMM,
// Winograd transforms vs element-wise work, forward vs inverse FFT),
// accounts per-worker busy/idle time for every parallel launch so
// stripe load imbalance is a first-class number, and tracks workspace
// high-watermarks per kernel plan.
//
// The recording paths mirror the flight recorder's contract: when
// profiling is disabled every hook is an atomic load plus a branch, and
// when enabled the hot-path hooks (Enter/Exit/Next, the launch and
// worker hooks) touch only fixed atomic slots — no allocation, no
// locks, //ucudnn:hotpath clean. The warm-path hooks (Begin/End around
// a whole kernel execution, SetLayer from the framework layer walk) may
// take a mutex and allocate; they run once per kernel call, not once
// per tile.
//
// Phase names are compile-time ucudnn_ph_* snake_case constants
// (enforced by the phasename analyzer, mirroring the flight recorder's
// ucudnn_ev_* contract) registered once at package init:
//
//	const PhGemmSgemm prof.Phase = "ucudnn_ph_gemm_sgemm"
//	var phGemmSgemm = prof.Register(PhGemmSgemm)
//
// Accounting model. A kernel execution (core.Handle.execute) brackets
// with Begin/End: the wall time between them is the kernel's total.
// Inside it, phase windows are recorded per goroutine: a phase timed
// inside a parallel worker contributes its worker-local (occupancy)
// time, a phase timed on the serial path contributes wall time. The
// matching denominator — "measured" kernel time — is therefore the
// per-worker busy time of the kernel's top-level parallel launches plus
// the serial remainder of the kernel wall. Nested launches (the SGEMM
// inner parallelism under a serial outer loop) report their imbalance
// but keep their busy time out of the measured total, because the phase
// window around them already recorded that region as wall time.
package prof

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ucudnn/internal/obs"
)

// Phase is a profiler phase name. Names are compile-time ucudnn_ph_*
// snake_case constants (enforced by the phasename analyzer), so the
// phase universe is enumerable statically.
type Phase string

// Kind identifies a registered phase; the zero Kind is invalid.
type Kind uint8

// maxKinds bounds the phase universe; registration panics beyond it.
// Every row carries a fixed [maxKinds] accumulator pair, so the bound
// keeps rows small while leaving ample headroom over the ~dozen phases
// the conv algorithms define.
const maxKinds = 64

// maxWorkerSlots bounds the per-worker busy-time slot array; worker
// indices wrap beyond it (the engine caps workers at GOMAXPROCS, far
// below).
const maxWorkerSlots = 256

// phaseRe is the naming scheme Register enforces (mirrored by the
// phasename analyzer's compile-time rule).
var phaseRe = regexp.MustCompile(`^ucudnn_ph(_[a-z0-9]+)+$`)

var (
	regMu sync.Mutex
	names []Phase // index Kind-1
)

// Register assigns a Kind to name. It is meant to be called from
// package init functions; it panics on a duplicate or malformed name,
// so a bad registration fails at program start, not at report time.
func Register(name Phase) Kind {
	regMu.Lock()
	defer regMu.Unlock()
	if !phaseRe.MatchString(string(name)) {
		panic(fmt.Sprintf("prof: phase name %q does not match the ucudnn_ph_* snake_case scheme", name))
	}
	for _, n := range names {
		if n == name {
			panic(fmt.Sprintf("prof: phase name %q registered twice", name))
		}
	}
	if len(names) >= maxKinds {
		panic(fmt.Sprintf("prof: too many phases (max %d)", maxKinds))
	}
	names = append(names, name)
	return Kind(len(names))
}

// Phases returns the registered phase names in registration order.
func Phases() []Phase {
	regMu.Lock()
	defer regMu.Unlock()
	return append([]Phase(nil), names...)
}

// phaseName returns the registered name of k ("" for unknown kinds).
func phaseName(k Kind) string {
	regMu.Lock()
	defer regMu.Unlock()
	if k < 1 || int(k) > len(names) {
		return ""
	}
	return string(names[k-1])
}

// clockBase anchors the monotonic clock; nanotime readings are offsets
// from it, shifted so a live reading is never the zero "disabled"
// token.
var clockBase = time.Now()

// nanotime returns a monotonic timestamp in nanoseconds (never 0: the
// hooks use 0 as the "profiling was disabled at Enter" token).
//
//ucudnn:hotpath
func nanotime() int64 {
	return int64(time.Since(clockBase)) + 1
}

// on gates every recording hook.
var on atomic.Bool

// Enable turns profiling on.
func Enable() { on.Store(true) }

// Disable turns profiling off; the hooks become an atomic load plus a
// branch.
func Disable() { on.Store(false) }

// Enabled reports whether profiling is on.
func Enabled() bool { return on.Load() }

// row accumulates one (layer, kernel) attribution row. All counters are
// atomic: phase windows and worker hooks fire concurrently from kernel
// workers.
type row struct {
	layer, kernel string

	execs atomic.Int64 // kernel executions (Begin calls)
	total atomic.Int64 // Begin..End wall ns

	phaseNS [maxKinds]atomic.Int64
	phaseN  [maxKinds]atomic.Int64

	launches   atomic.Int64 // top-level parallel launches
	nested     atomic.Int64 // nested parallel launches (imbalance only)
	busyNS     atomic.Int64 // Σ per-worker busy over top-level launches
	idleNS     atomic.Int64 // Σ (workers*wall - busy) over top-level launches
	launchWall atomic.Int64 // Σ wall over top-level launches

	imbMaxMicro atomic.Int64 // max over launches of imbalance * 1e6
	imbSumMicro atomic.Int64 // Σ imbalance * 1e6 (mean = sum / imbN)
	imbN        atomic.Int64

	wsHigh atomic.Int64 // workspace grant high-watermark, bytes
}

var (
	rowMu sync.Mutex
	rows  = map[string]*row{}
	// orphan absorbs phase and launch records made while no kernel is
	// current (framework GEMMs outside conv kernels, direct conv.Run
	// calls in tests). Pre-built so the hot path never allocates.
	orphan = &row{kernel: "(unattributed)"}
	// current is the row of the kernel now executing; kernel executions
	// are serialized by core.Handle.execMu, so a single slot suffices.
	current atomic.Pointer[row]

	layerMu  sync.Mutex
	curLayer string
)

// workerBusy holds per-worker busy nanoseconds between LaunchStart and
// LaunchEnd; top-level and nested launches never overlap in time (the
// engine's parallel paths force the inner SGEMM serial), so one slot
// array serves both.
var workerBusy [maxWorkerSlots]atomic.Int64

// obs bridge, pre-resolved by SetMetrics so the hot path is a pointer
// load plus the (allocation-free) Observe/Set.
var (
	phaseHist [maxKinds]atomic.Pointer[obs.Histogram]
	imbGauge  atomic.Pointer[obs.Gauge]
)

// MetricPhaseSeconds is the per-phase duration histogram family,
// labelled by phase name.
const MetricPhaseSeconds = "ucudnn_kernel_phase_seconds"

// MetricImbalance is the stripe load-imbalance gauge: the last parallel
// launch's max/mean per-worker busy ratio (1.0 = perfectly balanced).
const MetricImbalance = "ucudnn_worker_imbalance_ratio"

// SetMetrics points the profiler's exported series at reg: one
// MetricPhaseSeconds histogram per registered phase and the
// MetricImbalance gauge. A nil registry detaches them.
func SetMetrics(reg *obs.Registry) {
	regMu.Lock()
	defer regMu.Unlock()
	for i := range names {
		if reg == nil {
			phaseHist[i].Store(nil)
			continue
		}
		phaseHist[i].Store(reg.Histogram(MetricPhaseSeconds, obs.DurationBuckets,
			obs.L("phase", string(names[i]))))
	}
	if reg == nil {
		imbGauge.Store(nil)
		return
	}
	imbGauge.Store(reg.Gauge(MetricImbalance))
}

// SetLayer names the framework layer whose kernels execute next; Begin
// joins it into the attribution key. The framework layer walk calls it
// around each layer ("" to clear).
func SetLayer(name string) {
	layerMu.Lock()
	curLayer = name
	layerMu.Unlock()
}

// Begin opens a kernel execution attributed to (current layer, kernel)
// and returns its start token (0 when profiling is disabled — End with
// a zero token is a no-op). Warm path: called once per kernel call,
// under core's execution lock.
func Begin(kernel string) int64 {
	if !on.Load() {
		return 0
	}
	layerMu.Lock()
	layer := curLayer
	layerMu.Unlock()
	key := layer + "\x00" + kernel
	rowMu.Lock()
	r, ok := rows[key]
	if !ok {
		r = &row{layer: layer, kernel: kernel}
		rows[key] = r
	}
	rowMu.Unlock()
	r.execs.Add(1)
	current.Store(r)
	return nanotime()
}

// End closes the kernel execution opened by Begin.
func End(start int64) {
	if start != 0 {
		if r := current.Load(); r != nil {
			r.total.Add(nanotime() - start)
		}
	}
	current.Store(nil)
}

// GrantWS records a workspace grant against the current kernel's
// high-watermark.
//
//ucudnn:hotpath
func GrantWS(bytes int64) {
	if !on.Load() {
		return
	}
	r := current.Load()
	if r == nil {
		return
	}
	casMax(&r.wsHigh, bytes)
}

// Enter opens a phase window and returns its start token (0 when
// profiling is disabled).
//
//ucudnn:hotpath
func Enter() int64 {
	if !on.Load() {
		return 0
	}
	return nanotime()
}

// Exit closes a phase window, attributing its elapsed time to phase k
// on the current kernel row. A zero start token is a no-op.
//
//ucudnn:hotpath
func Exit(k Kind, start int64) {
	if start == 0 {
		return
	}
	record(k, nanotime()-start)
}

// Next closes phase k and opens the next phase window with a single
// clock reading, so chained phases tile their region without gaps.
//
//ucudnn:hotpath
func Next(k Kind, start int64) int64 {
	if start == 0 {
		return 0
	}
	now := nanotime()
	record(k, now-start)
	return now
}

//ucudnn:hotpath
func record(k Kind, d int64) {
	if k < 1 || int(k) > maxKinds {
		return
	}
	r := current.Load()
	if r == nil {
		r = orphan
	}
	r.phaseNS[k-1].Add(d)
	r.phaseN[k-1].Add(1)
	h := phaseHist[k-1].Load()
	h.Observe(float64(d) * 1e-9)
}

// LaunchStart opens a parallel-launch window (0 when disabled).
//
//ucudnn:hotpath
func LaunchStart() int64 {
	if !on.Load() {
		return 0
	}
	return nanotime()
}

// WorkerStart opens one worker's busy window inside a launch.
//
//ucudnn:hotpath
func WorkerStart() int64 {
	if !on.Load() {
		return 0
	}
	return nanotime()
}

// WorkerEnd accumulates worker w's busy time into its launch slot.
//
//ucudnn:hotpath
func WorkerEnd(w int, start int64) {
	if start == 0 {
		return
	}
	workerBusy[w&(maxWorkerSlots-1)].Add(nanotime() - start)
}

// LaunchEnd closes a top-level parallel launch of the given worker
// count: drains the worker busy slots into the current kernel's
// busy/idle accounting and records the launch's load imbalance
// (max/mean per-worker busy ratio).
//
//ucudnn:hotpath
func LaunchEnd(workers int, start int64) {
	launchEnd(workers, start, false)
}

// LaunchEndNested closes a nested parallel launch (the SGEMM inner
// parallelism under a serial outer loop): imbalance is recorded, but
// busy time stays out of the measured total — the enclosing phase
// window already covers this region as wall time.
//
//ucudnn:hotpath
func LaunchEndNested(workers int, start int64) {
	launchEnd(workers, start, true)
}

//ucudnn:hotpath
func launchEnd(workers int, start int64, nested bool) {
	if start == 0 {
		return
	}
	wall := nanotime() - start
	n := workers
	if n > maxWorkerSlots {
		n = maxWorkerSlots
	}
	var sum, max int64
	for w := 0; w < n; w++ {
		b := workerBusy[w].Swap(0)
		sum += b
		if b > max {
			max = b
		}
	}
	r := current.Load()
	if r == nil {
		r = orphan
	}
	imb := 1.0
	if sum > 0 {
		imb = float64(max) * float64(workers) / float64(sum)
	}
	imbMicro := int64(imb * 1e6)
	if nested {
		r.nested.Add(1)
	} else {
		r.launches.Add(1)
		r.busyNS.Add(sum)
		idle := int64(workers)*wall - sum
		if idle < 0 {
			idle = 0
		}
		r.idleNS.Add(idle)
		r.launchWall.Add(wall)
	}
	casMax(&r.imbMaxMicro, imbMicro)
	r.imbSumMicro.Add(imbMicro)
	r.imbN.Add(1)
	g := imbGauge.Load()
	g.Set(imb)
	recLaunchWindow(int64(workers), sum, wall, nested)
}

//ucudnn:hotpath
func casMax(v *atomic.Int64, x int64) {
	for {
		old := v.Load()
		if x <= old || v.CompareAndSwap(old, x) {
			return
		}
	}
}

// Reset discards every accumulated row (tests; the snapshot readers
// tolerate concurrent recording, so Reset during a run merely drops
// in-flight attributions).
func Reset() {
	rowMu.Lock()
	rows = map[string]*row{}
	rowMu.Unlock()
	current.Store(nil)
	zeroRow(orphan)
	for i := range workerBusy {
		workerBusy[i].Store(0)
	}
}

func zeroRow(r *row) {
	r.execs.Store(0)
	r.total.Store(0)
	for i := range r.phaseNS {
		r.phaseNS[i].Store(0)
		r.phaseN[i].Store(0)
	}
	r.launches.Store(0)
	r.nested.Store(0)
	r.busyNS.Store(0)
	r.idleNS.Store(0)
	r.launchWall.Store(0)
	r.imbMaxMicro.Store(0)
	r.imbSumMicro.Store(0)
	r.imbN.Store(0)
	r.wsHigh.Store(0)
}

// PhaseSnap is one phase's share of a row.
type PhaseSnap struct {
	Phase string `json:"phase"`
	NS    int64  `json:"ns"`
	Count int64  `json:"count"`
}

// RowSnap is one (layer, kernel) attribution row, as read by Snapshot.
type RowSnap struct {
	// Layer is the framework layer name ("" outside a layer walk);
	// Kernel is the kernel identity string ("(unattributed)" for
	// records made outside any kernel execution).
	Layer  string `json:"layer"`
	Kernel string `json:"kernel"`
	// Executions counts Begin/End brackets; TotalNS is their wall sum.
	Executions int64 `json:"executions"`
	TotalNS    int64 `json:"total_ns"`
	// AttributedNS is the sum over phases; MeasuredNS is the occupancy
	// denominator (launch busy + serial remainder of the wall);
	// Coverage is their ratio.
	AttributedNS int64   `json:"attributed_ns"`
	MeasuredNS   int64   `json:"measured_ns"`
	Coverage     float64 `json:"coverage"`
	// Phases lists the row's nonzero phases, heaviest first.
	Phases []PhaseSnap `json:"phases"`
	// Launch accounting: top-level launches contribute busy/idle;
	// nested launches contribute imbalance only.
	Launches       int64   `json:"launches"`
	NestedLaunches int64   `json:"nested_launches,omitempty"`
	BusyNS         int64   `json:"busy_ns"`
	IdleNS         int64   `json:"idle_ns"`
	MeanBusyRatio  float64 `json:"mean_busy_ratio"`
	MaxImbalance   float64 `json:"max_imbalance"`
	MeanImbalance  float64 `json:"mean_imbalance"`
	// WSHighWaterBytes is the largest workspace grant the row's kernel
	// executions actually received.
	WSHighWaterBytes int64 `json:"ws_high_water_bytes"`
}

// used reports whether the row recorded anything.
func (r *row) used() bool {
	if r.execs.Load() != 0 || r.launches.Load() != 0 || r.nested.Load() != 0 {
		return true
	}
	for i := range r.phaseN {
		if r.phaseN[i].Load() != 0 {
			return true
		}
	}
	return false
}

func (r *row) snap() RowSnap {
	s := RowSnap{
		Layer:            r.layer,
		Kernel:           r.kernel,
		Executions:       r.execs.Load(),
		TotalNS:          r.total.Load(),
		Launches:         r.launches.Load(),
		NestedLaunches:   r.nested.Load(),
		BusyNS:           r.busyNS.Load(),
		IdleNS:           r.idleNS.Load(),
		WSHighWaterBytes: r.wsHigh.Load(),
	}
	for i := range r.phaseNS {
		ns, n := r.phaseNS[i].Load(), r.phaseN[i].Load()
		if n == 0 && ns == 0 {
			continue
		}
		s.Phases = append(s.Phases, PhaseSnap{Phase: phaseName(Kind(i + 1)), NS: ns, Count: n})
		s.AttributedNS += ns
	}
	sort.Slice(s.Phases, func(a, b int) bool {
		if s.Phases[a].NS != s.Phases[b].NS {
			return s.Phases[a].NS > s.Phases[b].NS
		}
		return s.Phases[a].Phase < s.Phases[b].Phase
	})
	serial := s.TotalNS - r.launchWall.Load()
	if serial < 0 {
		serial = 0
	}
	s.MeasuredNS = s.BusyNS + serial
	if s.MeasuredNS > 0 {
		s.Coverage = float64(s.AttributedNS) / float64(s.MeasuredNS)
	}
	if tot := s.BusyNS + s.IdleNS; tot > 0 {
		s.MeanBusyRatio = float64(s.BusyNS) / float64(tot)
	}
	s.MaxImbalance = float64(r.imbMaxMicro.Load()) * 1e-6
	if n := r.imbN.Load(); n > 0 {
		s.MeanImbalance = float64(r.imbSumMicro.Load()) / float64(n) * 1e-6
	}
	return s
}

// Snapshot returns every attribution row, sorted by (layer, kernel),
// with the unattributed row (if any) last. It also records a
// ucudnn_ev_profile_snapshot flight event.
func Snapshot() []RowSnap {
	rowMu.Lock()
	rs := make([]*row, 0, len(rows))
	for _, r := range rows {
		rs = append(rs, r)
	}
	rowMu.Unlock()
	out := make([]RowSnap, 0, len(rs)+1)
	for _, r := range rs {
		out = append(out, r.snap())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Kernel < out[j].Kernel
	})
	if orphan.used() {
		out = append(out, orphan.snap())
	}
	var attributed, measured int64
	for i := range out {
		attributed += out[i].AttributedNS
		measured += out[i].MeasuredNS
	}
	recSnapshot(int64(len(out)), int64(len(Phases())), attributed, measured)
	return out
}
