package prof

import (
	"math"
	"strings"
	"testing"

	"ucudnn/internal/obs"
)

// Test phases; registered once — the registry is process-global.
var (
	phA = Register("ucudnn_ph_test_alpha")
	phB = Register("ucudnn_ph_test_beta")
)

// resetAll restores the profiler's global state between tests.
func resetAll(t *testing.T) {
	t.Helper()
	Disable()
	SetMetrics(nil)
	SetLayer("")
	Reset()
	t.Cleanup(func() {
		Disable()
		SetMetrics(nil)
		SetLayer("")
		Reset()
	})
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name Phase, why string) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic (%s)", name, why)
			}
		}()
		Register(name)
	}
	mustPanic("gemm_sgemm", "missing prefix")
	mustPanic("ucudnn_ph", "no suffix segments")
	mustPanic("ucudnn_ph_Upper", "not snake_case")
	mustPanic("ucudnn_ph_test_alpha", "duplicate")

	found := 0
	for _, p := range Phases() {
		if p == "ucudnn_ph_test_alpha" || p == "ucudnn_ph_test_beta" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("Phases() lists %d of the 2 test phases: %v", found, Phases())
	}
}

func TestDisabledHooksAreInert(t *testing.T) {
	resetAll(t)
	if got := Begin("k"); got != 0 {
		t.Fatalf("Begin while disabled = %d, want 0", got)
	}
	if got := Enter(); got != 0 {
		t.Fatalf("Enter while disabled = %d, want 0", got)
	}
	if got := LaunchStart(); got != 0 {
		t.Fatalf("LaunchStart while disabled = %d, want 0", got)
	}
	Exit(phA, 0)
	WorkerEnd(0, 0)
	LaunchEnd(4, 0)
	End(0)
	GrantWS(123)
	if rows := Snapshot(); len(rows) != 0 {
		t.Fatalf("disabled hooks recorded rows: %+v", rows)
	}
}

func TestAttribution(t *testing.T) {
	resetAll(t)
	Enable()
	SetLayer("conv1")
	start := Begin("Forward[test]")
	if start == 0 {
		t.Fatal("Begin returned the disabled token while enabled")
	}
	GrantWS(1 << 20)
	GrantWS(1 << 10) // lower grant must not move the high-watermark
	pt := Enter()
	spin()
	pt = Next(phA, pt)
	spin()
	Exit(phB, pt)
	End(start)

	rows := Snapshot()
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1: %+v", len(rows), rows)
	}
	r := rows[0]
	if r.Layer != "conv1" || r.Kernel != "Forward[test]" {
		t.Fatalf("row key = (%q, %q)", r.Layer, r.Kernel)
	}
	if r.Executions != 1 {
		t.Fatalf("executions = %d, want 1", r.Executions)
	}
	if r.WSHighWaterBytes != 1<<20 {
		t.Fatalf("ws high-watermark = %d, want %d", r.WSHighWaterBytes, 1<<20)
	}
	if len(r.Phases) != 2 {
		t.Fatalf("phases = %+v, want both test phases", r.Phases)
	}
	var sum int64
	for _, p := range r.Phases {
		if p.NS <= 0 || p.Count != 1 {
			t.Fatalf("phase %+v: want positive ns, count 1", p)
		}
		sum += p.NS
	}
	if sum != r.AttributedNS {
		t.Fatalf("attributed %d != phase sum %d", r.AttributedNS, sum)
	}
	// Serial path: measured is the kernel wall, and the two phase windows
	// tile a subset of it.
	if r.MeasuredNS != r.TotalNS {
		t.Fatalf("measured %d != total %d on a launch-free row", r.MeasuredNS, r.TotalNS)
	}
	if r.AttributedNS > r.TotalNS {
		t.Fatalf("attributed %d exceeds kernel wall %d", r.AttributedNS, r.TotalNS)
	}
	if r.Coverage <= 0 || r.Coverage > 1 {
		t.Fatalf("coverage = %v", r.Coverage)
	}
}

func TestOrphanRow(t *testing.T) {
	resetAll(t)
	Enable()
	// Phase window with no current kernel: lands on the unattributed row.
	Exit(phA, Enter())
	rows := Snapshot()
	if len(rows) != 1 || rows[0].Kernel != "(unattributed)" {
		t.Fatalf("rows = %+v, want a single unattributed row", rows)
	}
}

func TestImbalanceAccounting(t *testing.T) {
	resetAll(t)
	Enable()
	start := Begin("Kern")

	// Synthetic skewed launch: deposit busy time directly into the worker
	// slots (what WorkerEnd does), then close the launch. The values are
	// small against the launch's real wall (the spin), so idle stays
	// positive after the workers*wall - busy subtraction.
	ls := LaunchStart()
	workerBusy[0].Store(400)
	workerBusy[1].Store(100)
	workerBusy[2].Store(100)
	workerBusy[3].Store(100)
	spin()
	LaunchEnd(4, ls)
	End(start)

	r := Snapshot()[0]
	if r.Launches != 1 || r.NestedLaunches != 0 {
		t.Fatalf("launches = %d/%d, want 1/0", r.Launches, r.NestedLaunches)
	}
	if r.BusyNS != 700 {
		t.Fatalf("busy = %d, want 700", r.BusyNS)
	}
	want := 400.0 * 4 / 700.0 // max * workers / sum = 16/7
	if math.Abs(r.MaxImbalance-want) > 1e-4 || math.Abs(r.MeanImbalance-want) > 1e-4 {
		t.Fatalf("imbalance max=%v mean=%v, want %v", r.MaxImbalance, r.MeanImbalance, want)
	}
	if r.IdleNS <= 0 {
		t.Fatalf("idle = %d, want positive (wall*workers > busy)", r.IdleNS)
	}
	if r.MeanBusyRatio <= 0 || r.MeanBusyRatio >= 1 {
		t.Fatalf("mean busy ratio = %v", r.MeanBusyRatio)
	}
	// Measured folds launch busy time in place of the launch's wall.
	if r.MeasuredNS < r.BusyNS {
		t.Fatalf("measured %d < busy %d", r.MeasuredNS, r.BusyNS)
	}
}

func TestBalancedLaunchImbalanceIsOne(t *testing.T) {
	resetAll(t)
	Enable()
	start := Begin("Kern")
	ls := LaunchStart()
	for w := 0; w < 4; w++ {
		workerBusy[w].Store(2500)
	}
	LaunchEnd(4, ls)
	End(start)
	r := Snapshot()[0]
	if math.Abs(r.MaxImbalance-1.0) > 1e-4 {
		t.Fatalf("balanced launch imbalance = %v, want 1.0", r.MaxImbalance)
	}
}

func TestNestedLaunchKeepsBusyOutOfMeasured(t *testing.T) {
	resetAll(t)
	Enable()
	start := Begin("Kern")
	ls := LaunchStart()
	workerBusy[0].Store(3000)
	workerBusy[1].Store(1000)
	LaunchEndNested(2, ls)
	End(start)
	r := Snapshot()[0]
	if r.NestedLaunches != 1 || r.Launches != 0 {
		t.Fatalf("launches = %d/%d, want 0 top-level / 1 nested", r.Launches, r.NestedLaunches)
	}
	if r.BusyNS != 0 || r.IdleNS != 0 {
		t.Fatalf("nested launch leaked busy/idle: %d/%d", r.BusyNS, r.IdleNS)
	}
	if want := 3000.0 * 2 / 4000.0; math.Abs(r.MaxImbalance-want) > 1e-4 {
		t.Fatalf("nested imbalance = %v, want %v", r.MaxImbalance, want)
	}
	// The nested region stays measured as wall time.
	if r.MeasuredNS != r.TotalNS {
		t.Fatalf("measured %d != total %d: nested busy must not replace wall", r.MeasuredNS, r.TotalNS)
	}
}

// TestHotPathAllocs pins the hot-path contract: zero allocations per
// hook, profiling disabled AND enabled.
func TestHotPathAllocs(t *testing.T) {
	resetAll(t)
	for _, enabled := range []bool{false, true} {
		if enabled {
			Enable()
			Begin("Kern")
		}
		name := map[bool]string{false: "disabled", true: "enabled"}[enabled]
		hooks := map[string]func(){
			"phase": func() {
				t := Enter()
				t = Next(phA, t)
				Exit(phB, t)
			},
			"launch": func() {
				ls := LaunchStart()
				bs := WorkerStart()
				WorkerEnd(0, bs)
				LaunchEnd(2, ls)
			},
			"nested": func() {
				ls := LaunchStart()
				bs := WorkerStart()
				WorkerEnd(1, bs)
				LaunchEndNested(2, ls)
			},
			"grant": func() { GrantWS(4096) },
		}
		for hook, f := range hooks {
			if n := testing.AllocsPerRun(100, f); n != 0 {
				t.Errorf("%s/%s: %v allocs/op, want 0", name, hook, n)
			}
		}
	}
}

func TestSetMetricsBridge(t *testing.T) {
	resetAll(t)
	reg := obs.NewRegistry()
	Enable()
	SetMetrics(reg)
	Begin("Kern")
	Exit(phA, Enter())
	ls := LaunchStart()
	workerBusy[0].Store(10)
	LaunchEnd(1, ls)

	var sb strings.Builder
	if err := reg.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, MetricPhaseSeconds) {
		t.Errorf("summary lacks %s:\n%s", MetricPhaseSeconds, out)
	}
	if !strings.Contains(out, MetricImbalance) {
		t.Errorf("summary lacks %s:\n%s", MetricImbalance, out)
	}
}

func TestPhaseTotals(t *testing.T) {
	resetAll(t)
	Enable()
	Begin("Kern")
	Exit(phA, Enter())
	Exit(phB, Enter())
	totals := PhaseTotals()
	found := map[string]bool{}
	for _, p := range totals {
		found[p.Phase] = true
		if p.NS <= 0 || p.Count != 1 {
			t.Errorf("total %+v: want positive ns, count 1", p)
		}
	}
	if !found["ucudnn_ph_test_alpha"] || !found["ucudnn_ph_test_beta"] {
		t.Fatalf("totals missing test phases: %+v", totals)
	}
	for i := 1; i < len(totals); i++ {
		if totals[i-1].NS < totals[i].NS {
			t.Fatalf("totals not sorted heaviest-first: %+v", totals)
		}
	}
}

func TestDumpSection(t *testing.T) {
	resetAll(t)
	var sb strings.Builder
	dumpSection(&sb)
	if !strings.Contains(sb.String(), "profiling disabled") {
		t.Fatalf("disabled dump = %q", sb.String())
	}
	Enable()
	Begin("Kern")
	Exit(phA, Enter())
	sb.Reset()
	dumpSection(&sb)
	if !strings.Contains(sb.String(), "ucudnn_ph_test_alpha") {
		t.Fatalf("dump lacks the recorded phase:\n%s", sb.String())
	}
}

// spin burns a little CPU so phase windows are strictly positive.
func spin() {
	x := 1.0
	for i := 0; i < 1000; i++ {
		x *= 1.0000001
	}
	if x < 0 {
		panic("unreachable")
	}
}
