package prof

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"ucudnn/internal/flight"
)

// EvProfileSnapshot marks a profiler snapshot being read (by a report
// writer or the debug server). Args: rows, registered phases,
// attributed ns, measured ns.
const EvProfileSnapshot flight.Name = "ucudnn_ev_profile_snapshot"

var evSnapshot = flight.Register(EvProfileSnapshot, func(a, b, c, d int64) string {
	return "rows=" + strconv.FormatInt(a, 10) +
		" phases=" + strconv.FormatInt(b, 10) +
		" attributed_ns=" + strconv.FormatInt(c, 10) +
		" measured_ns=" + strconv.FormatInt(d, 10)
})

func recSnapshot(rows, phases, attributed, measured int64) {
	flight.Rec(evSnapshot, rows, phases, attributed, measured)
}

// EvLaunchWindow marks one parallel kernel launch window closing. Args:
// workers, Σ per-worker busy ns, wall ns, nested (1 = nested launch).
// The event is stamped with the enclosing causal span like every flight
// event, which is what correlates worker-level launch accounting with
// the conv call and layer on the unified timeline.
const EvLaunchWindow flight.Name = "ucudnn_ev_launch_window"

var evLaunchWindow = flight.Register(EvLaunchWindow, func(a, b, c, d int64) string {
	return "workers=" + strconv.FormatInt(a, 10) +
		" busy_ns=" + strconv.FormatInt(b, 10) +
		" wall_ns=" + strconv.FormatInt(c, 10) +
		" nested=" + strconv.FormatInt(d, 10)
})

// recLaunchWindow is called from launchEnd (hot path: one flight record).
//
//ucudnn:hotpath
func recLaunchWindow(workers, busy, wall int64, nested bool) {
	n := int64(0)
	if nested {
		n = 1
	}
	flight.Rec(evLaunchWindow, workers, busy, wall, n)
}

// PhaseTotal is one phase's aggregate across every attribution row.
type PhaseTotal struct {
	Phase string `json:"phase"`
	NS    int64  `json:"ns"`
	Count int64  `json:"count"`
}

// PhaseTotals aggregates phase time across every row (including the
// unattributed one), heaviest first; phases never recorded are omitted.
func PhaseTotals() []PhaseTotal {
	rowMu.Lock()
	rs := make([]*row, 0, len(rows)+1)
	for _, r := range rows {
		rs = append(rs, r)
	}
	rowMu.Unlock()
	rs = append(rs, orphan)
	var ns, n [maxKinds]int64
	for _, r := range rs {
		for i := range r.phaseNS {
			ns[i] += r.phaseNS[i].Load()
			n[i] += r.phaseN[i].Load()
		}
	}
	var out []PhaseTotal
	for i := range ns {
		if n[i] == 0 && ns[i] == 0 {
			continue
		}
		out = append(out, PhaseTotal{Phase: phaseName(Kind(i + 1)), NS: ns[i], Count: n[i]})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].NS != out[b].NS {
			return out[a].NS > out[b].NS
		}
		return out[a].Phase < out[b].Phase
	})
	return out
}

// dumpTopPhases is how many phases the flight dump section lists.
const dumpTopPhases = 16

func init() {
	flight.RegisterDumpSection(dumpSection)
}

// dumpSection rides along in the flight recorder's SIGQUIT dump: the
// top phases by accumulated time, so a stuck process shows where kernel
// time has been going.
func dumpSection(w io.Writer) {
	if !on.Load() {
		fmt.Fprintln(w, "prof: profiling disabled")
		return
	}
	tot := PhaseTotals()
	if len(tot) == 0 {
		fmt.Fprintln(w, "prof: profiling enabled, no phases recorded")
		return
	}
	if len(tot) > dumpTopPhases {
		tot = tot[:dumpTopPhases]
	}
	fmt.Fprintf(w, "prof: top %d phases by accumulated time:\n", len(tot))
	for _, p := range tot {
		fmt.Fprintf(w, "  %-36s %14.3fms  n=%d\n", p.Phase, float64(p.NS)/1e6, p.Count)
	}
}
