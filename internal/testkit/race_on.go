//go:build race

package testkit

// raceEnabled reports whether the race detector is compiled in; timing
// assertions scale their expectations to its instrumentation overhead.
const raceEnabled = true
