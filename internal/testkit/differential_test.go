package testkit

import (
	"fmt"
	"sync"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/faults"
)

// batchFor picks a per-network batch size: big enough that micro-batching
// is nontrivial, small enough that the CPU arithmetic stays affordable.
func batchFor(network string) int {
	switch network {
	case "inception", "densenet40":
		return 4
	}
	return 2
}

// testNetworks returns the networks under test; -short keeps only the two
// cheapest so the race detector (make race) stays affordable.
func testNetworks(t *testing.T) []string {
	if testing.Short() {
		return []string{"inception", "densenet40"}
	}
	return Networks()
}

// runCached memoizes Run results across the package's tests (the golden
// and differential suites share several configurations). workers is part
// of the key so P-variation tests really re-run.
var (
	runCacheMu sync.Mutex
	runCache   = map[string]*Result{}
)

func runCached(t *testing.T, mode Mode, spec RunSpec, workers int) *Result {
	t.Helper()
	key := fmt.Sprintf("%s|%v|wd=%v|p=%d|faults=%s|blob=%d|cap=%d",
		spec.Network, mode, spec.WD, workers, spec.Faults, spec.BlobBudget, spec.DeviceCap)
	runCacheMu.Lock()
	res, ok := runCache[key]
	runCacheMu.Unlock()
	if ok {
		return res
	}
	prev := conv.MaxWorkers()
	conv.SetMaxWorkers(workers)
	defer conv.SetMaxWorkers(prev)
	res, err := Run(mode, spec)
	if err != nil {
		t.Fatalf("%s %v: %v", spec.Network, mode, err)
	}
	runCacheMu.Lock()
	runCache[key] = res
	runCacheMu.Unlock()
	return res
}

// compareResults asserts bitwise-identical fingerprints. ctx names the
// comparison; when the b side ran under faults, the message carries the
// schedule and fired shots so the failure replays from the log alone.
func compareResults(t *testing.T, ctx string, a, b *Result) {
	t.Helper()
	replay := ""
	if b.Schedule != "" {
		replay = fmt.Sprintf("\nreplay: schedule %q fired [%s]", b.Schedule, b.Shots)
	}
	if a.Output != b.Output {
		t.Errorf("%s: output fingerprints diverge: %#x vs %#x%s", ctx, a.Output, b.Output, replay)
	}
	if a.Loss != b.Loss {
		t.Errorf("%s: loss bits diverge: %#x vs %#x%s", ctx, a.Loss, b.Loss, replay)
	}
	if len(a.Grads) != len(b.Grads) {
		t.Fatalf("%s: parameter count diverges: %d vs %d%s", ctx, len(a.Grads), len(b.Grads), replay)
	}
	for i := range a.Grads {
		if a.Grads[i] != b.Grads[i] {
			t.Errorf("%s: gradient %s diverges: %#x vs %#x%s",
				ctx, a.Grads[i].Name, a.Grads[i].Sum, b.Grads[i].Sum, replay)
			return
		}
	}
}

// The tentpole assertion: every zoo network produces bitwise-identical
// outputs and parameter gradients whether convolutions run undivided,
// micro-batched, or micro-batched with an armed fault schedule that forces
// the degradation ladder to recover mid-run.
func TestDifferentialAllNetworks(t *testing.T) {
	for _, name := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			spec := RunSpec{Network: name, Batch: batchFor(name)}
			und := runCached(t, Undivided, spec, 4)
			mic := runCached(t, Micro, spec, 4)
			flt := runCached(t, MicroFaults, spec, 4)
			compareResults(t, name+": undivided vs micro", und, mic)
			compareResults(t, name+": undivided vs micro+faults", und, flt)
			if flt.Shots == "" {
				t.Errorf("%s: schedule %q never fired; the fault path was not exercised", name, flt.Schedule)
			}
		})
	}
}

// Micro-batching must actually engage under the auto-probed limit — a
// harness that never divides would pass the differential vacuously.
func TestMicroRunsDivide(t *testing.T) {
	name := "inception"
	res := runCached(t, Micro, RunSpec{Network: name, Batch: batchFor(name)}, 4)
	if res.MaxMicroBatches < 2 {
		t.Fatalf("%s micro run never divided (max micro-batches %d)", name, res.MaxMicroBatches)
	}
}

// A schedule derived from a seed must replay exactly: same spec string,
// same fired shots, same bits — the reproducibility contract for any
// failure the differential suite ever prints.
func TestScheduleForSeedReplaysExactly(t *testing.T) {
	sched := ScheduleForSeed(7)
	if sched != ScheduleForSeed(7) {
		t.Fatal("ScheduleForSeed is not deterministic")
	}
	r, err := faults.Parse(sched)
	if err != nil {
		t.Fatalf("ScheduleForSeed(7) = %q does not parse: %v", sched, err)
	}
	if r.String() != sched {
		t.Fatalf("schedule %q is not canonical (String() = %q)", sched, r.String())
	}
	spec := RunSpec{Network: "inception", Batch: 4, Faults: sched}
	a, err := Run(MicroFaults, spec)
	if err != nil {
		t.Fatalf("run under %q: %v", sched, err)
	}
	b, err := Run(MicroFaults, spec)
	if err != nil {
		t.Fatalf("replay under %q: %v", sched, err)
	}
	if a.Shots != b.Shots {
		t.Fatalf("shots diverge across replays:\n first: %s\nsecond: %s", a.Shots, b.Shots)
	}
	compareResults(t, "replay", a, b)
	und := runCached(t, Undivided, RunSpec{Network: "inception", Batch: 4}, 4)
	compareResults(t, "undivided vs seeded-fault run", und, a)
}

func TestFingerprintIsBitwise(t *testing.T) {
	a := []float32{1, 2, 3}
	if Fingerprint(a) != Fingerprint([]float32{1, 2, 3}) {
		t.Fatal("equal data fingerprints differ")
	}
	if Fingerprint(a) == Fingerprint([]float32{1, 2, 3.0000002}) {
		t.Fatal("one-ulp difference not detected")
	}
	negZero := []float32{0}
	negZero[0] = -negZero[0]
	if Fingerprint([]float32{0}) == Fingerprint(negZero) {
		t.Fatal("signed zero not distinguished")
	}
}
