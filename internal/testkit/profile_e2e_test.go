package testkit

// End-to-end profile attribution: a full micro-batched zoo run with the
// profiler on must produce a schema-valid cost-attribution report in
// which every convolution layer appears (forward and backward), phase
// time never exceeds measured kernel time, aggregate coverage clears
// the 95% bar, and every parallel launch carries an imbalance number.

import (
	"encoding/json"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
	"ucudnn/internal/prof"
)

// convLayerNames builds the network against a plain handle (no
// arithmetic) and lists its convolution layer names.
func convLayerNames(t *testing.T, network string, batch int) []string {
	t.Helper()
	inner := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	ctx := dnn.NewContext(inner, inner, 1<<30)
	net, _, err := build(ctx, network, batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range net.ConvLayers() {
		names = append(names, c.Name())
	}
	return names
}

func TestProfileE2EAttribution(t *testing.T) {
	const network, batch = "alexnet", 2
	prevWorkers := conv.SetMaxWorkers(4)
	defer conv.SetMaxWorkers(prevWorkers)
	prof.Reset()
	prof.Enable()
	defer func() {
		prof.Disable()
		prof.SetLayer("")
		prof.Reset()
	}()

	if _, err := Run(Micro, RunSpec{Network: network, Batch: batch}); err != nil {
		t.Fatal(err)
	}

	rep := core.BuildProfileReport()
	byLayer := map[string]bool{}
	var attributed, measured, orphaned int64
	for _, k := range rep.Kernels {
		if k.Kernel == "(unattributed)" {
			// Framework work outside any kernel bracket — the
			// fully-connected layers' SGEMMs, which self-report
			// ucudnn_ph_sgemm_* phases from internal/blas. The row has no
			// measured window by construction, so the per-row bound below
			// does not apply; it is asserted separately after the loop.
			orphaned += k.AttributedNS
			continue
		}
		byLayer[k.Layer] = true
		attributed += k.AttributedNS
		measured += k.MeasuredNS
		if k.AttributedNS > k.MeasuredNS {
			t.Errorf("%s %s: attributed %d exceeds measured %d", k.Layer, k.Kernel, k.AttributedNS, k.MeasuredNS)
		}
		if k.Workers.Launches+k.Workers.NestedLaunches > 0 && k.Workers.MaxImbalance < 1 {
			t.Errorf("%s %s: %d launches but max imbalance %v (must be >= 1 for any launch)",
				k.Layer, k.Kernel, k.Workers.Launches+k.Workers.NestedLaunches, k.Workers.MaxImbalance)
		}
	}
	for _, name := range convLayerNames(t, network, batch) {
		if !byLayer[name] {
			t.Errorf("conv layer %s has no forward attribution row", name)
		}
		if !byLayer[name+"/bwd"] {
			t.Errorf("conv layer %s has no backward attribution row", name)
		}
	}
	if measured <= 0 {
		t.Fatal("report measured no kernel time")
	}
	// AlexNet has FC layers, so the framework-GEMM orphan row must have
	// picked up their blas-level phase time.
	if orphaned <= 0 {
		t.Error("no unattributed framework-GEMM phase time recorded")
	}
	// Race instrumentation inflates the serial dispatch segments (plan
	// join, validation, workspace carving) that no phase window claims
	// far more than the phased compute, so the attribution bar scales
	// with it.
	bar := 0.95
	if raceEnabled {
		bar = 0.90
	}
	if cov := float64(attributed) / float64(measured); cov < bar {
		t.Errorf("aggregate coverage = %.3f, want >= %.2f", cov, bar)
	}
	// A striped run at P=4 must actually have recorded parallel launches
	// somewhere — otherwise the imbalance check above is vacuous.
	var launches int64
	for _, k := range rep.Kernels {
		launches += k.Workers.Launches + k.Workers.NestedLaunches
	}
	if launches == 0 {
		t.Error("no parallel launches recorded at P=4")
	}

	// The document round-trips through its own validator.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateProfile(data); err != nil {
		t.Fatalf("e2e profile fails validation: %v", err)
	}
}
