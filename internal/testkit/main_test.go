package testkit

import (
	"os"
	"testing"

	"ucudnn/internal/conv"
)

// TestMain pins the kernel engine's worker count so fingerprints (and the
// committed goldens) are identical on every machine; individual tests that
// vary P restore this pin when done.
func TestMain(m *testing.M) {
	conv.SetMaxWorkers(4)
	os.Exit(m.Run())
}
