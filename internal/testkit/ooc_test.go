package testkit

import (
	"fmt"
	"testing"

	"ucudnn/internal/dnn"
)

// oocBudgets derives the blob-budget sweep for one network from its own
// footprint model: ample (whole batch streams in one window), mid
// (genuine multi-window streaming), and starved (below the smallest
// undivided layer footprint — micro-batch 1 with nothing resident still
// does not fit, so the planner must land on the recompute floor).
func oocBudgets(t *testing.T, network string, batch int) (m *dnn.OOCModel, budgets []int64) {
	t.Helper()
	m, err := ProbeFootprint(network, batch)
	if err != nil {
		t.Fatal(err)
	}
	wholePeak := m.Peak(batch, nil)
	floorPeak := m.Peak(1, nil)
	ample := 2 * wholePeak
	mid := (floorPeak + wholePeak) / 2
	starved := floorPeak - 1
	if starved < 1 {
		t.Fatalf("%s: floor peak %d leaves no room for a starved budget", network, floorPeak)
	}
	return m, []int64{ample, mid, starved}
}

// The out-of-core tentpole assertion: every zoo network, under every
// swept blob budget — including one below the smallest undivided layer
// footprint — produces bitwise-identical loss and parameter gradients to
// the undivided run, in both WR and WD modes.
func TestOOCDifferentialAllNetworks(t *testing.T) {
	for _, name := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			batch := batchFor(name)
			m, budgets := oocBudgets(t, name, batch)
			und := runCached(t, Undivided, RunSpec{Network: name, Batch: batch}, 4)
			sawFloor := false
			for _, wd := range []bool{false, true} {
				for bi, budget := range budgets {
					spec := RunSpec{Network: name, Batch: batch, WD: wd, BlobBudget: budget}
					r := runCached(t, Micro, spec, 4)
					label := fmt.Sprintf("%s: undivided vs ooc[wd=%v,budget=%d]", name, wd, budget)
					compareResults(t, label, und, r)
					if r.OOC == nil {
						t.Fatalf("%s: no OOC report", label)
					}
					if bi == len(budgets)-1 {
						// The starved budget sits below the micro-batch-1
						// peak: only the recompute floor can schedule it.
						if !r.OOC.Floor {
							t.Errorf("%s: starved budget did not reach the recompute floor (%+v)", label, *r.OOC)
						}
						sawFloor = r.OOC.Floor
						if r.OOC.RecomputeBytes == 0 {
							t.Errorf("%s: recompute floor moved no recompute bytes", label)
						}
					} else if r.OOC.Floor {
						t.Errorf("%s: feasible budget degraded to the floor (%+v)", label, *r.OOC)
					}
					if r.OOC.FetchBytes == 0 {
						t.Errorf("%s: OOC run modeled no fetch traffic", label)
					}
					_ = m
				}
			}
			if !sawFloor {
				t.Errorf("%s: sweep never exercised the recompute floor", name)
			}
		})
	}
}

// Streaming must actually divide the batch into several windows at the
// mid budget — a sweep whose plans all run one whole-batch window would
// pass the differential vacuously.
func TestOOCStreamsInWindows(t *testing.T) {
	name := "inception"
	batch := batchFor(name)
	_, budgets := oocBudgets(t, name, batch)
	r := runCached(t, Micro, RunSpec{Network: name, Batch: batch, BlobBudget: budgets[1]}, 4)
	if r.OOC == nil || r.OOC.Windows < 2 {
		t.Fatalf("mid budget did not stream in windows: %+v", r.OOC)
	}
}

// An armed ucudnn_fp_ooc_* schedule must degrade the stream to a finer
// window partition without moving a single bit: the acceptance-criteria
// fault leg. The plan point fires at state construction (one rung finer
// from the start); the fetch point shrinks a grant mid-pass.
func TestOOCFaultsDegradeWithoutBitDrift(t *testing.T) {
	name := "inception"
	batch := batchFor(name)
	_, budgets := oocBudgets(t, name, batch)
	und := runCached(t, Undivided, RunSpec{Network: name, Batch: batch}, 4)
	for _, sched := range []string{
		"ucudnn_fp_ooc_plan=nth:1",
		"ucudnn_fp_ooc_fetch=nth:4,shrink=2",
		"ucudnn_fp_ooc_spill=nth:3",
	} {
		spec := RunSpec{Network: name, Batch: batch, BlobBudget: budgets[0], Faults: sched}
		r := runCached(t, MicroFaults, spec, 4)
		compareResults(t, name+": undivided vs ooc+"+sched, und, r)
		if r.Shots == "" {
			t.Errorf("schedule %q never fired", sched)
			continue
		}
		if r.OOC == nil || r.OOC.Degraded == 0 {
			t.Errorf("schedule %q fired but the ladder never stepped: %+v", sched, r.OOC)
		}
	}

	// A sustained fault storm must walk past the resident-drop rung into
	// a genuinely finer window partition — and still match bitwise.
	storm := "ucudnn_fp_ooc_fetch=every:1,shrink=2"
	spec := RunSpec{Network: name, Batch: batch, BlobBudget: budgets[0], Faults: storm}
	r := runCached(t, MicroFaults, spec, 4)
	compareResults(t, name+": undivided vs ooc+storm", und, r)
	if r.OOC == nil || r.OOC.Chunk >= batch {
		t.Errorf("storm %q did not refine the window partition: %+v", storm, r.OOC)
	}
}

// Out-of-core + WD share one joint pool, and degradation under faults
// must hold bitwise equality there too (acceptance criteria: WR and WD,
// with an injected ucudnn_fp_ooc_* fault).
func TestOOCFaultsUnderWD(t *testing.T) {
	name := "densenet40"
	batch := batchFor(name)
	_, budgets := oocBudgets(t, name, batch)
	und := runCached(t, Undivided, RunSpec{Network: name, Batch: batch}, 4)
	spec := RunSpec{Network: name, Batch: batch, WD: true, BlobBudget: budgets[0],
		Faults: "ucudnn_fp_ooc_plan=nth:1;ucudnn_fp_ooc_fetch=every:6,shrink=2"}
	r := runCached(t, MicroFaults, spec, 4)
	compareResults(t, name+": undivided vs wd+ooc+faults", und, r)
	if r.OOC == nil || r.OOC.Degraded == 0 || r.Shots == "" {
		t.Fatalf("WD fault leg did not degrade: shots=%q ooc=%+v", r.Shots, r.OOC)
	}
}

// The out-of-core e2e: a network whose undivided activation+workspace
// footprint exceeds (modeled) device memory. Undivided setup must fail
// with out-of-memory; the same network under a blob budget trains inside
// the cap and reproduces the reference bits exactly.
func TestOOCTrainsBeyondDeviceMemory(t *testing.T) {
	name := "inception"
	batch := batchFor(name)

	// Reference bits and the undivided footprint, both on an uncapped
	// device.
	ref := runCached(t, Undivided, RunSpec{Network: name, Batch: batch}, 4)
	m, err := ProbeFootprint(name, batch)
	if err != nil {
		t.Fatal(err)
	}
	footprint := m.ActivationBytes()

	// A cap below the undivided activation footprint alone: no amount of
	// workspace thrift fits the whole network.
	cap := footprint * 3 / 4
	if _, err := Run(Undivided, RunSpec{Network: name, Batch: batch, DeviceCap: cap}); err == nil {
		t.Fatalf("undivided %s set up inside a %d-byte cap (footprint %d); the cap is not binding", name, cap, footprint)
	}

	// Out-of-core under the same cap: budget the stream at half the cap,
	// leaving room for parameters and workspace.
	r, err := Run(Micro, RunSpec{Network: name, Batch: batch, DeviceCap: cap, BlobBudget: cap / 2})
	if err != nil {
		t.Fatalf("ooc run under cap %d: %v", cap, err)
	}
	compareResults(t, name+": undivided (uncapped) vs ooc (capped)", ref, r)
	if r.OOC == nil || r.OOC.Windows < 2 {
		t.Fatalf("capped run did not stream: %+v", r.OOC)
	}
}
