package testkit

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// goldenPath holds the committed end-to-end fingerprints. Regenerate with
//
//	UCUDNN_UPDATE_GOLDEN=1 go test ./internal/testkit -run TestGolden
//
// after any intentional numeric change (and say why in the commit).
const goldenPath = "testdata/golden.json"

// goldenEntry is one committed fingerprint set: forward output, loss bits
// and a combined hash over every parameter gradient's fingerprint.
type goldenEntry struct {
	Output string `json:"output"`
	Loss   string `json:"loss"`
	Grads  string `json:"grads"`
}

func entryOf(res *Result) goldenEntry {
	sums := make([]float32, 0, 2*len(res.Grads))
	for _, g := range res.Grads {
		// Feed each 64-bit sum through the float32-stream fingerprint as
		// two bit-pattern halves.
		sums = append(sums, bitsFloat(uint32(g.Sum)), bitsFloat(uint32(g.Sum>>32)))
	}
	return goldenEntry{
		Output: fmt.Sprintf("%#016x", res.Output),
		Loss:   fmt.Sprintf("%#016x", res.Loss),
		Grads:  fmt.Sprintf("%#016x", Fingerprint(sums)),
	}
}

func bitsFloat(b uint32) float32 {
	// Route through the same FNV path as real data: reinterpret, do not
	// convert (math.Float32frombits keeps the exact pattern).
	return math.Float32frombits(b)
}

// The golden end-to-end suite: every zoo network under WR, WD, and
// out-of-core streaming (OOC: WR plus a mid-sweep blob budget), each at
// engine parallelism P = 1 and P = 4. The committed fingerprints pin the
// numerics; comparing P = 1 against P = 4 pins the engine's bit-identical
// worker-count contract at whole-network scale.
func TestGoldenNetworks(t *testing.T) {
	update := os.Getenv("UCUDNN_UPDATE_GOLDEN") != ""
	want := map[string]goldenEntry{}
	if !update {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("reading goldens (regenerate with UCUDNN_UPDATE_GOLDEN=1): %v", err)
		}
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]goldenEntry{}
	for _, name := range testNetworks(t) {
		for _, mode := range []string{"WR", "WD", "OOC"} {
			key := name + "/" + mode
			t.Run(key, func(t *testing.T) {
				spec := RunSpec{Network: name, Batch: batchFor(name), WD: mode == "WD"}
				if mode == "OOC" {
					_, budgets := oocBudgets(t, name, spec.Batch)
					spec.BlobBudget = budgets[1]
				}
				p4 := runCached(t, Micro, spec, 4)
				p1 := runCached(t, Micro, spec, 1)
				compareResults(t, key+": P=4 vs P=1", p4, p1)
				entry := entryOf(p4)
				got[key] = entry
				if update {
					return
				}
				w, ok := want[key]
				if !ok {
					t.Fatalf("no golden for %s (regenerate with UCUDNN_UPDATE_GOLDEN=1)", key)
				}
				if entry != w {
					t.Errorf("%s fingerprints drifted:\n got %+v\nwant %+v", key, entry, w)
				}
			})
		}
	}
	if update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]goldenEntry, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d goldens to %s", len(got), goldenPath)
	}
}
