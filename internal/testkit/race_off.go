//go:build !race

package testkit

const raceEnabled = false
