// Package testkit is the end-to-end differential harness behind the
// fault-injection work: it runs whole zoo networks forward and backward
// under three execution modes — (a) undivided cuDNN, (b) µ-cuDNN
// micro-batching, and (c) µ-cuDNN micro-batching with an armed fault
// schedule — and fingerprints outputs and gradients so tests can assert
// the three are bitwise identical (the paper's §III-A transparency
// contract, extended to cover graceful degradation).
//
// Bitwise comparability rests on pinning the algorithm universe to
// AlgoGemm (GemmOnly): the engine's batch-striped GEMM kernels produce
// identical bits at every strip and worker count, and their ascending-n
// dW reduction makes micro-batched beta=1 accumulation equal bit for bit
// to the undivided gradient. Under that pin, any division — including the
// ones the degradation ladder improvises mid-run — must reproduce the
// undivided bits exactly, so a single uint64 fingerprint per buffer
// suffices to prove it.
package testkit

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
	"ucudnn/internal/faults"
	"ucudnn/internal/zoo"
)

// Classes is the classifier width every harness network ends in; small so
// the FC head stays cheap next to the convolutions under test.
const Classes = 10

// Mode selects how the network's convolutions execute.
type Mode int

const (
	// Undivided runs the plain cuDNN handle: whole-batch kernels, the
	// reference bits.
	Undivided Mode = iota
	// Micro runs the µ-cuDNN handle: optimizer-chosen micro-batched
	// configurations.
	Micro
	// MicroFaults runs the µ-cuDNN handle with a fault schedule armed, so
	// execution recovers through the degradation ladder.
	MicroFaults
)

func (m Mode) String() string {
	switch m {
	case Undivided:
		return "undivided"
	case Micro:
		return "micro"
	case MicroFaults:
		return "micro+faults"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// GemmOnly is the algorithm pin of the differential harness: AlgoGemm and
// nothing else. Nonzero workspace (so workspace faults have something to
// deny), divisible without changing bits, and admissible down to the
// serial MinWorkspace floor.
func GemmOnly(op conv.Op, a conv.Algo) bool { return a == conv.AlgoGemm }

// DefaultSchedule is the fault schedule the differential suite arms when
// a RunSpec leaves Faults empty: one hard Convolve failure early, periodic
// Find*-path drops that starve benchmarking, and one shrunk arena grant.
// Deliberately non-saturating — the ladder must recover, not exhaust.
const DefaultSchedule = "ucudnn_fp_convolve=nth:3;ucudnn_fp_find=every:5;ucudnn_fp_arena_grow=nth:2,shrink=4"

// ScheduleForSeed derives a deterministic pseudo-random fault schedule
// from seed. The schedule string is self-describing: a failure printed
// with it reproduces exactly via faults.Parse, with no other state.
func ScheduleForSeed(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	parts := []string{
		fmt.Sprintf("%s=prob:0.02:%d", faults.PointConvolve, rng.Int63n(1<<31)),
		fmt.Sprintf("%s=every:%d", faults.PointFind, 3+rng.Intn(8)),
		fmt.Sprintf("%s=nth:%d,shrink=%d", faults.PointArenaGrow, 1+rng.Intn(4), 2+rng.Intn(7)),
	}
	return strings.Join(parts, ";")
}

// RunSpec describes one harness execution.
type RunSpec struct {
	// Network is a name from Networks().
	Network string
	// Batch is the mini-batch size (default 4).
	Batch int
	// WD switches the µ-cuDNN handle to Workspace Division; WSLimit then
	// acts as the network-wide budget instead of the per-kernel limit.
	WD bool
	// WSLimit is the workspace bound in bytes. Zero auto-probes from the
	// network's undivided GEMM workspaces (see ProbeWorkspace): half the
	// largest per-kernel workspace for WR (the biggest kernels must
	// divide while micro-batch 1 always fits), midway between the
	// batch-1 floor and the undivided total for WD.
	WSLimit int64
	// Policy is the micro-batch size policy (zero value means
	// PolicyPowerOfTwo, the paper's default).
	Policy core.Policy
	// Faults is the schedule armed in MicroFaults mode (default
	// DefaultSchedule). Ignored in other modes.
	Faults string
	// Seed drives parameter init, input fill, and labels (default 1).
	Seed int64
	// BlobBudget, when positive, turns on out-of-core streaming: the
	// network's activation/gradient working set is planned against this
	// many bytes (dnn.PlanOOC) and convolutions execute in streamed
	// micro-batch windows. Under WD the planned peak joins the workspace
	// budget as one pool (core.WithBlobReserve); under WR the per-kernel
	// workspace limit applies unchanged. Ignored in Undivided mode.
	BlobBudget int64
	// DeviceCap, when positive, overrides the simulated device's memory
	// capacity: Setup fails if a run's footprint exceeds it. The
	// out-of-core e2e uses this to prove a network whose undivided
	// footprint exceeds device memory still trains under a blob budget.
	DeviceCap int64
}

// ParamSum is one parameter gradient's fingerprint.
type ParamSum struct {
	Name string
	Sum  uint64
}

// Result is the fingerprinted outcome of one run.
type Result struct {
	// Output fingerprints the network's output blob (the mean loss).
	Output uint64
	// Loss is the float32 bit pattern of the scalar loss.
	Loss uint64
	// Grads fingerprints every parameter gradient after Backward, in
	// network parameter order.
	Grads []ParamSum
	// MaxMicroBatches is the largest micro-batch count across the µ-cuDNN
	// handle's adopted plans (zero in Undivided mode): evidence that
	// micro-batching actually engaged.
	MaxMicroBatches int
	// Schedule and Shots record the armed fault schedule and what fired
	// (MicroFaults mode only): everything needed to replay the run.
	Schedule string
	Shots    string
	// OOC summarizes the out-of-core executor when BlobBudget was set:
	// final window size, degradation count, and modeled transfer traffic.
	OOC *dnn.OOCReport
}

// Fingerprint hashes the exact bit patterns of data (FNV-1a 64): two
// buffers fingerprint equal iff they are bitwise identical (including NaN
// payloads and signed zeros).
func Fingerprint(data []float32) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range data {
		b := math.Float32bits(v)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(b >> s))
			h *= prime
		}
	}
	return h
}

// Networks lists the zoo models the harness can run.
func Networks() []string {
	return []string{"alexnet", "caffe-alexnet", "resnet18", "resnet50", "densenet40", "inception"}
}

// build constructs the named network (with a loss head) over ctx.
func build(ctx *dnn.Context, name string, batch int) (*dnn.Net, *dnn.SoftmaxLoss, error) {
	switch name {
	case "alexnet":
		net, loss := zoo.AlexNet(ctx, batch, Classes)
		return net, loss, nil
	case "caffe-alexnet":
		net, loss := zoo.CaffeAlexNet(ctx, batch, Classes)
		return net, loss, nil
	case "resnet18":
		net, loss := zoo.ResNet18(ctx, batch, Classes)
		return net, loss, nil
	case "resnet50":
		net, loss := zoo.ResNet50(ctx, batch, Classes)
		return net, loss, nil
	case "densenet40":
		net, loss := zoo.DenseNet40(ctx, batch, 12, Classes)
		return net, loss, nil
	case "inception":
		// The zoo module has no classifier; append the standard head so
		// the harness can drive a loss through it.
		net := zoo.InceptionModule(ctx, batch)
		net.Add(dnn.NewGlobalAvgPool("gap"), "gap", "out")
		net.Add(dnn.NewFC("fc", Classes), "fc", "gap")
		loss := dnn.NewSoftmaxLoss("loss")
		net.Add(loss, "loss", "fc")
		return net, loss, nil
	}
	return nil, nil, fmt.Errorf("testkit: unknown network %q (have %s)", name, strings.Join(Networks(), ", "))
}

// Probe summarizes a network's undivided GEMM workspace demand.
type Probe struct {
	// Max is the largest single per-kernel workspace.
	Max int64
	// Total sums every kernel's workspace at the probed batch size.
	Total int64
	// FloorTotal sums every kernel's workspace at batch size 1 — an upper
	// bound on the cheapest assignment any division can reach (some
	// workspaces, like BackwardFilter's per-worker partial-dW buffers,
	// do not shrink with the batch at all).
	FloorTotal int64
}

// sumWorkspaces sets the network up against a plain GEMM-pinned cuDNN
// handle (no arithmetic runs) and sums its per-kernel workspaces.
func sumWorkspaces(network string, batch int) (max, total int64, err error) {
	inner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	inner.SetAlgoFilter(GemmOnly)
	ctx := dnn.NewContext(inner, inner, 1<<30)
	net, _, err := build(ctx, network, batch)
	if err != nil {
		return 0, 0, err
	}
	if err := net.Setup(); err != nil {
		return 0, 0, fmt.Errorf("testkit: probing %s: %w", network, err)
	}
	for _, l := range net.ConvLayers() {
		f, bd, bf := l.WorkspaceBytes()
		for _, ws := range []int64{f, bd, bf} {
			if ws > max {
				max = ws
			}
			total += ws
		}
	}
	return max, total, nil
}

// ProbeFootprint extracts the named network's activation footprint model
// by setting it up against a plain GEMM-pinned handle (no arithmetic
// runs): the input for out-of-core planning and budget derivation.
func ProbeFootprint(network string, batch int) (*dnn.OOCModel, error) {
	inner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	inner.SetAlgoFilter(GemmOnly)
	ctx := dnn.NewContext(inner, inner, 1<<30)
	net, _, err := build(ctx, network, batch)
	if err != nil {
		return nil, err
	}
	if err := net.Setup(); err != nil {
		return nil, fmt.Errorf("testkit: probing %s footprint: %w", network, err)
	}
	return dnn.FootprintModel(net)
}

// ProbeWorkspace measures the named network's workspace demand: the
// anchors for auto-derived workspace limits.
func ProbeWorkspace(network string, batch int) (Probe, error) {
	max, total, err := sumWorkspaces(network, batch)
	if err != nil {
		return Probe{}, err
	}
	if max <= 0 {
		return Probe{}, fmt.Errorf("testkit: %s requested no convolution workspace", network)
	}
	_, floor, err := sumWorkspaces(network, 1)
	if err != nil {
		return Probe{}, err
	}
	return Probe{Max: max, Total: total, FloorTotal: floor}, nil
}

// Run executes the network once, forward and backward, under the given
// mode and returns its fingerprints. Runs are fully deterministic: same
// spec, same mode, same bits.
func Run(mode Mode, spec RunSpec) (*Result, error) {
	if spec.Batch <= 0 {
		spec.Batch = 4
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	policy := spec.Policy
	if policy == core.PolicyUndivided {
		policy = core.PolicyPowerOfTwo
	}
	limit := spec.WSLimit
	if mode != Undivided && limit == 0 {
		p, err := ProbeWorkspace(spec.Network, spec.Batch)
		if err != nil {
			return nil, err
		}
		if spec.WD {
			// Midway between the batch-1 floor and the undivided total:
			// guaranteed feasible (every kernel can fall to micro-batch
			// 1), below what running every kernel whole would need (so
			// the ILP must divide or share).
			limit = (p.FloorTotal + p.Total) / 2
		} else {
			// Half the largest kernel's workspace: the biggest kernels
			// must divide, while a single-sample micro-batch always fits.
			limit = p.Max / 2
		}
	}

	var oocModel *dnn.OOCModel
	var oocPlan dnn.OOCPlan
	if spec.BlobBudget > 0 && mode != Undivided {
		m, err := ProbeFootprint(spec.Network, spec.Batch)
		if err != nil {
			return nil, err
		}
		oocPlan, err = dnn.PlanOOC(m, spec.BlobBudget)
		if err != nil {
			return nil, err
		}
		oocModel = m
	}

	inner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	inner.SetAlgoFilter(GemmOnly)
	if spec.DeviceCap > 0 {
		inner.Mem().Cap = spec.DeviceCap
	}
	var ch dnn.ConvHandle = inner
	var h *core.Handle
	ctxLimit := int64(1) << 30
	if mode != Undivided {
		opts := []core.Option{core.WithAlgoFilter(GemmOnly), core.WithPolicy(policy)}
		if spec.WD {
			wdLimit := limit
			if oocModel != nil {
				// One joint pool: the blob working set is carved out of the
				// WD budget, so workspace and activations trade off inside
				// wdLimit instead of competing unaccounted.
				wdLimit += oocPlan.PeakBytes
				opts = append(opts, core.WithBlobReserve(oocPlan.PeakBytes))
			}
			opts = append(opts, core.WithWD(wdLimit))
		} else {
			opts = append(opts, core.WithWorkspaceLimit(limit))
			ctxLimit = limit
		}
		var err error
		h, err = core.New(inner, opts...)
		if err != nil {
			return nil, err
		}
		ch = h
	}

	res := &Result{}
	var freg *faults.Registry
	if mode == MicroFaults {
		sched := spec.Faults
		if sched == "" {
			sched = DefaultSchedule
		}
		var err error
		freg, err = faults.Parse(sched)
		if err != nil {
			return nil, err
		}
		res.Schedule = sched
		faults.Install(freg)
		defer faults.Install(nil)
	}
	fail := func(step string, err error) (*Result, error) {
		if freg != nil {
			return nil, fmt.Errorf("testkit: %s %s under schedule %q (fired: %s): %w",
				spec.Network, step, res.Schedule, freg.ShotLog(), err)
		}
		return nil, fmt.Errorf("testkit: %s %s: %w", spec.Network, step, err)
	}

	ctx := dnn.NewContext(ch, inner, ctxLimit)
	ctx.RNG = rand.New(rand.NewSource(seed))
	if oocModel != nil {
		// After faults.Install, so an armed ucudnn_fp_ooc_plan point can
		// force the state one ladder rung finer at construction.
		ctx.OOC = dnn.NewOOCState(oocModel, oocPlan)
	}
	net, loss, err := build(ctx, spec.Network, spec.Batch)
	if err != nil {
		return nil, err
	}
	if err := net.Setup(); err != nil {
		return fail("setup", err)
	}
	if h != nil {
		if err := h.FinalizeRegistration(); err != nil {
			return fail("registration", err)
		}
	}

	in := net.InputBlob().Data
	fillRNG := rand.New(rand.NewSource(seed + 1))
	for i := range in.Data {
		in.Data[i] = fillRNG.Float32()*2 - 1
	}
	loss.Labels = make([]int, spec.Batch)
	for i := range loss.Labels {
		loss.Labels[i] = i % Classes
	}

	if err := net.Forward(); err != nil {
		return fail("forward", err)
	}
	if err := net.Backward(); err != nil {
		return fail("backward", err)
	}

	res.Output = Fingerprint(net.OutputBlob().Data.Data)
	res.Loss = uint64(math.Float32bits(loss.Loss))
	for _, p := range net.Params() {
		res.Grads = append(res.Grads, ParamSum{Name: p.Name, Sum: Fingerprint(p.Grad)})
	}
	if h != nil {
		for _, p := range h.Plans() {
			if len(p.Config) > res.MaxMicroBatches {
				res.MaxMicroBatches = len(p.Config)
			}
		}
	}
	if freg != nil {
		res.Shots = freg.ShotLog()
	}
	if ctx.OOC != nil {
		rep := ctx.OOC.Report()
		res.OOC = &rep
	}
	return res, nil
}
