// Package tensor provides the dense float32 tensor types used throughout
// the µ-cuDNN reproduction: 4-D activation tensors in NCHW layout and 4-D
// filter tensors in KCRS layout, together with shape algebra for
// convolutions.
//
// Layout conventions follow cuDNN: an activation tensor has dimensions
// (N, C, H, W) = (batch, channels, height, width) stored with W innermost;
// a filter tensor has dimensions (K, C, R, S) = (output channels, input
// channels, kernel height, kernel width), also with S innermost.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Shape describes the dimensions of an NCHW activation tensor.
type Shape struct {
	N, C, H, W int
}

// Elems returns the total number of elements.
func (s Shape) Elems() int { return s.N * s.C * s.H * s.W }

// Bytes returns the storage size in bytes assuming float32 elements.
func (s Shape) Bytes() int64 { return int64(s.Elems()) * 4 }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

// WithN returns the same shape with a different batch dimension.
func (s Shape) WithN(n int) Shape { return Shape{n, s.C, s.H, s.W} }

func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// Tensor is a dense float32 tensor in NCHW layout.
type Tensor struct {
	Shape Shape
	Data  []float32
}

// New allocates a zero-filled tensor of the given shape.
func New(n, c, h, w int) *Tensor {
	s := Shape{n, c, h, w}
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{Shape: s, Data: make([]float32, s.Elems())}
}

// NewShaped allocates a zero-filled tensor with shape s.
func NewShaped(s Shape) *Tensor { return New(s.N, s.C, s.H, s.W) }

// At returns the element at (n, c, h, w).
func (t *Tensor) At(n, c, h, w int) float32 {
	return t.Data[t.Index(n, c, h, w)]
}

// Set stores v at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float32) {
	t.Data[t.Index(n, c, h, w)] = v
}

// Add accumulates v into the element at (n, c, h, w).
func (t *Tensor) Add(n, c, h, w int, v float32) {
	t.Data[t.Index(n, c, h, w)] += v
}

// Index returns the linear offset of (n, c, h, w).
func (t *Tensor) Index(n, c, h, w int) int {
	s := t.Shape
	return ((n*s.C+c)*s.H+h)*s.W + w
}

// Sample returns a view of the i-th batch sample onward covering count
// samples, sharing the underlying storage. It is the mechanism by which
// micro-batches alias sub-ranges of a mini-batch without copying.
func (t *Tensor) Sample(i, count int) *Tensor {
	s := t.Shape
	if i < 0 || count <= 0 || i+count > s.N {
		panic(fmt.Sprintf("tensor: sample [%d,%d) out of batch %d", i, i+count, s.N))
	}
	per := s.C * s.H * s.W
	return &Tensor{
		Shape: Shape{count, s.C, s.H, s.W},
		Data:  t.Data[i*per : (i+count)*per],
	}
}

// Zero sets all elements to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Scale multiplies all elements by a.
func (t *Tensor) Scale(a float32) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	out := NewShaped(t.Shape)
	copy(out.Data, t.Data)
	return out
}

// CopyFrom copies src's data into t; shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.Data, src.Data)
}

// Randomize fills the tensor with deterministic uniform values in
// [-scale, scale] drawn from rng.
func (t *Tensor) Randomize(rng *rand.Rand, scale float32) {
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// Filter describes the dimensions of a KCRS filter tensor.
type Filter struct {
	K, C, R, S int
}

// Elems returns the total number of filter elements.
func (f Filter) Elems() int { return f.K * f.C * f.R * f.S }

// Bytes returns the storage size in bytes assuming float32 elements.
func (f Filter) Bytes() int64 { return int64(f.Elems()) * 4 }

// Valid reports whether all dimensions are positive.
func (f Filter) Valid() bool { return f.K > 0 && f.C > 0 && f.R > 0 && f.S > 0 }

func (f Filter) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", f.K, f.C, f.R, f.S)
}

// FilterTensor is a dense float32 filter bank in KCRS layout.
type FilterTensor struct {
	Filter Filter
	Data   []float32
}

// NewFilter allocates a zero-filled filter tensor.
func NewFilter(k, c, r, s int) *FilterTensor {
	f := Filter{k, c, r, s}
	if !f.Valid() {
		panic(fmt.Sprintf("tensor: invalid filter %v", f))
	}
	return &FilterTensor{Filter: f, Data: make([]float32, f.Elems())}
}

// At returns the element at (k, c, r, s).
func (w *FilterTensor) At(k, c, r, s int) float32 {
	return w.Data[w.Index(k, c, r, s)]
}

// Set stores v at (k, c, r, s).
func (w *FilterTensor) Set(k, c, r, s int, v float32) {
	w.Data[w.Index(k, c, r, s)] = v
}

// Add accumulates v into the element at (k, c, r, s).
func (w *FilterTensor) Add(k, c, r, s int, v float32) {
	w.Data[w.Index(k, c, r, s)] += v
}

// Index returns the linear offset of (k, c, r, s).
func (w *FilterTensor) Index(k, c, r, s int) int {
	f := w.Filter
	return ((k*f.C+c)*f.R+r)*f.S + s
}

// Zero sets all elements to zero.
func (w *FilterTensor) Zero() {
	for i := range w.Data {
		w.Data[i] = 0
	}
}

// Clone returns a deep copy of the filter tensor.
func (w *FilterTensor) Clone() *FilterTensor {
	out := NewFilter(w.Filter.K, w.Filter.C, w.Filter.R, w.Filter.S)
	copy(out.Data, w.Data)
	return out
}

// Randomize fills the filter with deterministic uniform values in
// [-scale, scale] drawn from rng.
func (w *FilterTensor) Randomize(rng *rand.Rand, scale float32) {
	for i := range w.Data {
		w.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// MaxAbsDiff returns the maximum absolute elementwise difference between
// a and b, which must have equal length.
func MaxAbsDiff(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// MaxAbs returns the maximum absolute value in a.
func MaxAbs(a []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether a and b agree elementwise within a combined
// absolute/relative tolerance: |a-b| <= atol + rtol*max(|a|,|b|).
func AllClose(a, b []float32, atol, rtol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		d := math.Abs(x - y)
		if d > atol+rtol*math.Max(math.Abs(x), math.Abs(y)) {
			return false
		}
	}
	return true
}
