package tensor

import "fmt"

// ConvParams holds the geometric parameters of a 2-D convolution
// (cross-correlation in the deep-learning convention), mirroring a cuDNN
// convolution descriptor.
type ConvParams struct {
	PadH, PadW           int
	StrideH, StrideW     int
	DilationH, DilationW int
}

// Unit is the default convolution: no padding, unit stride and dilation.
var Unit = ConvParams{StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1}

// Normalized returns p with zero stride/dilation fields promoted to 1 so
// that zero-valued ConvParams behave like Unit with no padding.
func (p ConvParams) Normalized() ConvParams {
	if p.StrideH == 0 {
		p.StrideH = 1
	}
	if p.StrideW == 0 {
		p.StrideW = 1
	}
	if p.DilationH == 0 {
		p.DilationH = 1
	}
	if p.DilationW == 0 {
		p.DilationW = 1
	}
	return p
}

func (p ConvParams) String() string {
	return fmt.Sprintf("pad=%dx%d stride=%dx%d dilation=%dx%d",
		p.PadH, p.PadW, p.StrideH, p.StrideW, p.DilationH, p.DilationW)
}

// ConvShape fully describes one convolution problem instance: input shape,
// filter bank and geometry. It is the key used by µ-cuDNN's caches and the
// performance model.
type ConvShape struct {
	In     Shape
	Filt   Filter
	Params ConvParams
}

// OutShape returns the output activation shape for the convolution, using
// the standard cuDNN output-dimension formula.
func (cs ConvShape) OutShape() Shape {
	p := cs.Params.Normalized()
	effR := (cs.Filt.R-1)*p.DilationH + 1
	effS := (cs.Filt.S-1)*p.DilationW + 1
	oh := (cs.In.H+2*p.PadH-effR)/p.StrideH + 1
	ow := (cs.In.W+2*p.PadW-effS)/p.StrideW + 1
	return Shape{cs.In.N, cs.Filt.K, oh, ow}
}

// Valid reports whether the convolution is well-formed: matching channel
// counts, positive output dimensions.
func (cs ConvShape) Valid() bool {
	if !cs.In.Valid() || !cs.Filt.Valid() || cs.In.C != cs.Filt.C {
		return false
	}
	o := cs.OutShape()
	return o.H > 0 && o.W > 0
}

// WithN returns the same convolution with a different batch size: the
// micro-batching transformation.
func (cs ConvShape) WithN(n int) ConvShape {
	cs.In = cs.In.WithN(n)
	return cs
}

// FwdFlops returns the number of fused multiply-add-derived floating point
// operations (2 per MAC) of a direct forward convolution.
func (cs ConvShape) FwdFlops() int64 {
	o := cs.OutShape()
	macs := int64(o.N) * int64(o.C) * int64(o.H) * int64(o.W) *
		int64(cs.Filt.C) * int64(cs.Filt.R) * int64(cs.Filt.S)
	return 2 * macs
}

// IOBytes returns the minimal memory traffic of the convolution: read
// input and filter once, write output once (float32).
func (cs ConvShape) IOBytes() int64 {
	return cs.In.Bytes() + cs.Filt.Bytes() + cs.OutShape().Bytes()
}

func (cs ConvShape) String() string {
	return fmt.Sprintf("in=%v filt=%v %v", cs.In, cs.Filt, cs.Params)
}
