package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeElemsBytes(t *testing.T) {
	s := Shape{2, 3, 4, 5}
	if got := s.Elems(); got != 120 {
		t.Fatalf("Elems = %d, want 120", got)
	}
	if got := s.Bytes(); got != 480 {
		t.Fatalf("Bytes = %d, want 480", got)
	}
	if !s.Valid() {
		t.Fatal("shape should be valid")
	}
	if (Shape{0, 3, 4, 5}).Valid() {
		t.Fatal("zero batch should be invalid")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	x := New(2, 3, 5, 7)
	want := float32(0)
	for n := 0; n < 2; n++ {
		for c := 0; c < 3; c++ {
			for h := 0; h < 5; h++ {
				for w := 0; w < 7; w++ {
					x.Set(n, c, h, w, want)
					want++
				}
			}
		}
	}
	// NCHW with W innermost means the linear data is the enumeration order.
	for i, v := range x.Data {
		if v != float32(i) {
			t.Fatalf("Data[%d] = %v, want %d", i, v, i)
		}
	}
	if x.At(1, 2, 4, 6) != float32(len(x.Data)-1) {
		t.Fatal("At last element mismatch")
	}
}

func TestSampleAliases(t *testing.T) {
	x := New(4, 2, 3, 3)
	rng := rand.New(rand.NewSource(1))
	x.Randomize(rng, 1)
	v := x.Sample(1, 2)
	if v.Shape != (Shape{2, 2, 3, 3}) {
		t.Fatalf("view shape = %v", v.Shape)
	}
	// Writing through the view must be visible in the parent.
	v.Set(0, 0, 0, 0, 42)
	if x.At(1, 0, 0, 0) != 42 {
		t.Fatal("view write not visible in parent")
	}
	if v.At(1, 1, 2, 2) != x.At(2, 1, 2, 2) {
		t.Fatal("view read mismatch")
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4, 1, 1, 1).Sample(3, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := New(1, 1, 2, 2)
	x.Fill(3)
	y := x.Clone()
	y.Set(0, 0, 0, 0, 9)
	if x.At(0, 0, 0, 0) != 3 {
		t.Fatal("clone shares storage")
	}
}

func TestScaleZeroFill(t *testing.T) {
	x := New(1, 2, 2, 2)
	x.Fill(2)
	x.Scale(3)
	for _, v := range x.Data {
		if v != 6 {
			t.Fatalf("scale: got %v", v)
		}
	}
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("zero failed")
		}
	}
}

func TestFilterIndex(t *testing.T) {
	w := NewFilter(2, 3, 3, 3)
	w.Set(1, 2, 2, 2, 5)
	if w.Data[len(w.Data)-1] != 5 {
		t.Fatal("filter index: last element mismatch")
	}
	if w.Filter.Elems() != 54 || w.Filter.Bytes() != 216 {
		t.Fatal("filter size mismatch")
	}
}

func TestMaxAbsDiffAllClose(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{1, 2.5, 3}
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if !AllClose(a, b, 0.6, 0) {
		t.Fatal("should be close with atol 0.6")
	}
	if AllClose(a, b, 0.4, 0) {
		t.Fatal("should not be close with atol 0.4")
	}
	if MaxAbs(b) != 3 {
		t.Fatal("MaxAbs")
	}
}

func TestConvShapeOut(t *testing.T) {
	// AlexNet conv2: 27x27 input, 5x5 kernel, pad 2, stride 1 -> 27x27.
	cs := ConvShape{
		In:     Shape{256, 64, 27, 27},
		Filt:   Filter{192, 64, 5, 5},
		Params: ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1},
	}
	if o := cs.OutShape(); o != (Shape{256, 192, 27, 27}) {
		t.Fatalf("conv2 out = %v", o)
	}
	if !cs.Valid() {
		t.Fatal("conv2 should be valid")
	}
	// AlexNet conv1: 224x224, 11x11, stride 4, pad 2 -> 55? (224+4-11)/4+1 = 55.
	cs1 := ConvShape{
		In:     Shape{256, 3, 224, 224},
		Filt:   Filter{64, 3, 11, 11},
		Params: ConvParams{PadH: 2, PadW: 2, StrideH: 4, StrideW: 4},
	}
	if o := cs1.OutShape(); o.H != 55 || o.W != 55 {
		t.Fatalf("conv1 out = %v, want 55x55", o)
	}
}

func TestConvShapeZeroParamsNormalized(t *testing.T) {
	cs := ConvShape{In: Shape{1, 1, 4, 4}, Filt: Filter{1, 1, 3, 3}}
	if o := cs.OutShape(); o.H != 2 || o.W != 2 {
		t.Fatalf("default params out = %v, want 2x2", o)
	}
}

func TestConvShapeInvalid(t *testing.T) {
	cs := ConvShape{In: Shape{1, 2, 4, 4}, Filt: Filter{1, 3, 3, 3}}
	if cs.Valid() {
		t.Fatal("channel mismatch should be invalid")
	}
	cs = ConvShape{In: Shape{1, 1, 2, 2}, Filt: Filter{1, 1, 3, 3}}
	if cs.Valid() {
		t.Fatal("kernel larger than input without padding should be invalid")
	}
}

func TestConvShapeWithN(t *testing.T) {
	cs := ConvShape{In: Shape{256, 3, 8, 8}, Filt: Filter{4, 3, 3, 3}, Params: Unit}
	cs2 := cs.WithN(32)
	if cs2.In.N != 32 || cs.In.N != 256 {
		t.Fatal("WithN must not mutate the receiver")
	}
	if cs2.OutShape().N != 32 {
		t.Fatal("output batch must follow input batch")
	}
}

func TestFwdFlops(t *testing.T) {
	cs := ConvShape{In: Shape{1, 1, 3, 3}, Filt: Filter{1, 1, 3, 3}, Params: Unit}
	// Single output element, 9 MACs, 18 flops.
	if f := cs.FwdFlops(); f != 18 {
		t.Fatalf("FwdFlops = %d, want 18", f)
	}
}

func TestFlopsProportionalToBatch(t *testing.T) {
	f := func(n uint8) bool {
		nn := int(n%16) + 1
		cs := ConvShape{In: Shape{1, 2, 6, 6}, Filt: Filter{3, 2, 3, 3}, Params: Unit}
		return cs.WithN(nn).FwdFlops() == int64(nn)*cs.FwdFlops()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDilatedOutShape(t *testing.T) {
	cs := ConvShape{
		In:     Shape{1, 1, 7, 7},
		Filt:   Filter{1, 1, 3, 3},
		Params: ConvParams{StrideH: 1, StrideW: 1, DilationH: 2, DilationW: 2},
	}
	// Effective kernel 5x5 -> out 3x3.
	if o := cs.OutShape(); o.H != 3 || o.W != 3 {
		t.Fatalf("dilated out = %v, want 3x3", o)
	}
}

func TestStringForms(t *testing.T) {
	s := Shape{2, 3, 4, 5}
	if s.String() != "2x3x4x5" {
		t.Fatalf("shape string %q", s.String())
	}
	f := Filter{K: 4, C: 3, R: 2, S: 1}
	if f.String() != "4x3x2x1" {
		t.Fatalf("filter string %q", f.String())
	}
	p := ConvParams{PadH: 1, PadW: 2, StrideH: 3, StrideW: 4, DilationH: 5, DilationW: 6}
	if p.String() != "pad=1x2 stride=3x4 dilation=5x6" {
		t.Fatalf("params string %q", p.String())
	}
	cs := ConvShape{In: s, Filt: f, Params: p}
	if cs.String() == "" {
		t.Fatal("convshape string empty")
	}
}

func TestTensorAddAndCopyFrom(t *testing.T) {
	x := New(1, 1, 2, 2)
	x.Add(0, 0, 1, 1, 3)
	x.Add(0, 0, 1, 1, 4)
	if x.At(0, 0, 1, 1) != 7 {
		t.Fatal("Add accumulation wrong")
	}
	y := New(1, 1, 2, 2)
	y.CopyFrom(x)
	if y.At(0, 0, 1, 1) != 7 {
		t.Fatal("CopyFrom wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched CopyFrom must panic")
		}
	}()
	New(1, 1, 1, 1).CopyFrom(x)
}

func TestFilterTensorOps(t *testing.T) {
	w := NewFilter(2, 2, 2, 2)
	rng := rand.New(rand.NewSource(5))
	w.Randomize(rng, 1)
	if w.At(1, 1, 1, 1) == 0 && w.At(0, 0, 0, 0) == 0 {
		t.Fatal("randomize left zeros")
	}
	w.Add(0, 0, 0, 0, 2)
	c := w.Clone()
	w.Zero()
	for _, v := range w.Data {
		if v != 0 {
			t.Fatal("zero failed")
		}
	}
	if c.Data[0] == 0 && c.Data[1] == 0 {
		t.Fatal("clone shares storage with zeroed original")
	}
}

func TestIOBytes(t *testing.T) {
	cs := ConvShape{In: Shape{1, 1, 4, 4}, Filt: Filter{1, 1, 3, 3}, Params: Unit}
	want := cs.In.Bytes() + cs.Filt.Bytes() + cs.OutShape().Bytes()
	if cs.IOBytes() != want {
		t.Fatalf("IOBytes = %d, want %d", cs.IOBytes(), want)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 1, 1, 1)
}

func TestNewFilterPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFilter(1, 0, 1, 1)
}
