package fftpkg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naive O(n^2) DFT reference.
func dft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k*j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func maxCDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 31: 32, 32: 32, 33: 64, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNextPow2PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NextPow2(0)
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Fatalf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, 3, 6, -4} {
		if IsPow2(n) {
			t.Fatalf("IsPow2(%d) = true", n)
		}
	}
}

func TestForwardMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := randComplex(rng, n)
		want := dft(x, false)
		got := append([]complex128(nil), x...)
		Forward(got)
		if d := maxCDiff(got, want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: maxdiff %g", n, d)
		}
	}
}

func TestInverseMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randComplex(rng, 32)
	want := dft(x, true)
	got := append([]complex128(nil), x...)
	Inverse(got)
	if d := maxCDiff(got, want); d > 1e-9 {
		t.Fatalf("maxdiff %g", d)
	}
}

func TestRoundTrip(t *testing.T) {
	f := func(seed int64, lg uint8) bool {
		n := 1 << (lg % 8)
		rng := rand.New(rand.NewSource(seed))
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		Forward(y)
		Inverse(y)
		return maxCDiff(x, y) < 1e-10*float64(n+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Parseval: sum |x|^2 == (1/N) sum |X|^2.
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randComplex(rng, 128)
	var e1 float64
	for _, v := range x {
		e1 += real(v)*real(v) + imag(v)*imag(v)
	}
	Forward(x)
	var e2 float64
	for _, v := range x {
		e2 += real(v)*real(v) + imag(v)*imag(v)
	}
	e2 /= 128
	if math.Abs(e1-e2) > 1e-9*e1 {
		t.Fatalf("Parseval: %g vs %g", e1, e2)
	}
}

// Linearity: FFT(a*x + y) == a*FFT(x) + FFT(y).
func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 64
	x := randComplex(rng, n)
	y := randComplex(rng, n)
	a := complex(1.5, -0.5)
	lhs := make([]complex128, n)
	for i := range lhs {
		lhs[i] = a*x[i] + y[i]
	}
	Forward(lhs)
	Forward(x)
	Forward(y)
	for i := range x {
		x[i] = a*x[i] + y[i]
	}
	if d := maxCDiff(lhs, x); d > 1e-9 {
		t.Fatalf("linearity: maxdiff %g", d)
	}
}

func TestPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Forward(make([]complex128, 3))
}

func TestForward2DMatchesSeparableDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows, cols := 4, 8
	x := randComplex(rng, rows*cols)
	want := append([]complex128(nil), x...)
	// Reference: DFT rows then columns.
	for r := 0; r < rows; r++ {
		copy(want[r*cols:(r+1)*cols], dft(want[r*cols:(r+1)*cols], false))
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = want[r*cols+c]
		}
		col2 := dft(col, false)
		for r := 0; r < rows; r++ {
			want[r*cols+c] = col2[r]
		}
	}
	Forward2D(x, rows, cols)
	if d := maxCDiff(x, want); d > 1e-9 {
		t.Fatalf("2D: maxdiff %g", d)
	}
}

func TestRoundTrip2D(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows, cols := 8, 16
	x := randComplex(rng, rows*cols)
	y := append([]complex128(nil), x...)
	Forward2D(y, rows, cols)
	Inverse2D(y, rows, cols)
	if d := maxCDiff(x, y); d > 1e-9 {
		t.Fatalf("2D roundtrip: maxdiff %g", d)
	}
}

func TestEmbedReal2D(t *testing.T) {
	src := []float32{1, 2, 3, 4, 5, 6} // 2x3, stride 3
	dst := make([]complex128, 4*4)
	for i := range dst {
		dst[i] = complex(9, 9) // must be cleared
	}
	EmbedReal2D(dst, src, 2, 3, 3, 4, 4)
	if dst[0] != complex(1, 0) || dst[2] != complex(3, 0) || dst[4] != complex(4, 0) {
		t.Fatalf("embed values wrong: %v", dst[:8])
	}
	if dst[3] != 0 || dst[15] != 0 {
		t.Fatal("padding not zeroed")
	}
}

// Spectral correlation equals direct correlation: the core identity the
// FFT convolution algorithm relies on.
func TestSpectralCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h, w := 5, 6
	r, s := 3, 3
	x := make([]float32, h*w)
	k := make([]float32, r*s)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	for i := range k {
		k[i] = rng.Float32()*2 - 1
	}
	oh, ow := h-r+1, w-s+1
	// Direct valid correlation.
	want := make([]float64, oh*ow)
	for u := 0; u < oh; u++ {
		for v := 0; v < ow; v++ {
			var acc float64
			for a := 0; a < r; a++ {
				for b := 0; b < s; b++ {
					acc += float64(x[(u+a)*w+v+b]) * float64(k[a*s+b])
				}
			}
			want[u*ow+v] = acc
		}
	}
	ph, pw := NextPow2(h), NextPow2(w)
	X := RealForward2D(x, h, w, w, ph, pw)
	K := RealForward2D(k, r, s, s, ph, pw)
	prod := make([]complex128, ph*pw)
	MulConj(prod, X, K)
	Inverse2D(prod, ph, pw)
	for u := 0; u < oh; u++ {
		for v := 0; v < ow; v++ {
			got := real(prod[u*pw+v])
			if math.Abs(got-want[u*ow+v]) > 1e-5 {
				t.Fatalf("corr[%d,%d] = %g, want %g", u, v, got, want[u*ow+v])
			}
		}
	}
}

func TestMulAccumulates(t *testing.T) {
	dst := []complex128{1}
	Mul(dst, []complex128{2}, []complex128{complex(0, 3)})
	if dst[0] != complex(1, 6) {
		t.Fatalf("Mul = %v", dst[0])
	}
	dst2 := []complex128{complex(0, 0)}
	MulConj(dst2, []complex128{complex(0, 1)}, []complex128{complex(0, 1)})
	if dst2[0] != complex(1, 0) {
		t.Fatalf("MulConj = %v, want (1+0i)", dst2[0])
	}
}
