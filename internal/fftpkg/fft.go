// Package fftpkg implements the fast Fourier transforms used by the
// FFT-based convolution algorithms: an iterative radix-2 complex FFT and
// 2-D transforms over row-major matrices. Transform lengths must be powers
// of two; convolution callers zero-pad to the next supported size, exactly
// as cuFFT-backed cuDNN algorithms do.
package fftpkg

import "math"

// NextPow2 returns the smallest power of two >= n (n >= 1).
func NextPow2(n int) int {
	if n < 1 {
		panic("fftpkg: NextPow2 of non-positive length")
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward computes the in-place forward DFT of x; len(x) must be a power
// of two.
func Forward(x []complex128) { transform(x, false) }

// Inverse computes the in-place inverse DFT of x (including the 1/N
// normalization); len(x) must be a power of two.
func Inverse(x []complex128) { transform(x, true) }

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPow2(n) {
		panic("fftpkg: transform length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// Forward2D computes the in-place 2-D forward DFT of a rows x cols
// row-major matrix; both dimensions must be powers of two.
func Forward2D(x []complex128, rows, cols int) { transform2D(x, rows, cols, false) }

// Inverse2D computes the in-place 2-D inverse DFT.
func Inverse2D(x []complex128, rows, cols int) { transform2D(x, rows, cols, true) }

func transform2D(x []complex128, rows, cols int, inverse bool) {
	if len(x) != rows*cols {
		panic("fftpkg: 2D transform size mismatch")
	}
	for r := 0; r < rows; r++ {
		transform(x[r*cols:(r+1)*cols], inverse)
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = x[r*cols+c]
		}
		transform(col, inverse)
		for r := 0; r < rows; r++ {
			x[r*cols+c] = col[r]
		}
	}
}

// RealForward2D embeds the real rows x cols matrix src (row stride
// srcStride) into a zero-padded padRows x padCols complex buffer and
// returns its 2-D forward DFT. The returned buffer is freshly allocated.
func RealForward2D(src []float32, rows, cols, srcStride, padRows, padCols int) []complex128 {
	if rows > padRows || cols > padCols {
		panic("fftpkg: pad smaller than data")
	}
	out := make([]complex128, padRows*padCols)
	EmbedReal2D(out, src, rows, cols, srcStride, padRows, padCols)
	Forward2D(out, padRows, padCols)
	return out
}

// EmbedReal2D zero-fills dst (padRows x padCols) and copies the real
// rows x cols matrix src into its top-left corner.
func EmbedReal2D(dst []complex128, src []float32, rows, cols, srcStride, padRows, padCols int) {
	if len(dst) != padRows*padCols {
		panic("fftpkg: EmbedReal2D dst size mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < rows; r++ {
		row := src[r*srcStride : r*srcStride+cols]
		for c, v := range row {
			dst[r*padCols+c] = complex(float64(v), 0)
		}
	}
}

// MulConj computes dst += x * conj(y) elementwise; all slices must have
// equal length. It is the spectral kernel of correlation (the DL
// "convolution").
func MulConj(dst, x, y []complex128) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("fftpkg: MulConj length mismatch")
	}
	for i := range dst {
		yr, yi := real(y[i]), imag(y[i])
		dst[i] += x[i] * complex(yr, -yi)
	}
}

// Mul computes dst += x * y elementwise.
func Mul(dst, x, y []complex128) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("fftpkg: Mul length mismatch")
	}
	for i := range dst {
		dst[i] += x[i] * y[i]
	}
}
