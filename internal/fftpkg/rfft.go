package fftpkg

import "math"

// This file is the float32 real-transform kernel behind the FFT conv
// algorithms: a 2-D real-to-complex forward / complex-to-real inverse
// pair that exploits Hermitian symmetry. A p x q real plane is
// transformed row-wise by a half-length complex FFT (the q real samples
// of a row are viewed as q/2 complex values, transformed, and untangled
// into the q/2+1 unique spectrum columns), then column-wise by p-point
// complex FFTs over only those stored columns — half the butterflies
// and half the scratch of the complex128 reference path above.
//
// All butterfly twiddles and untangle factors are precomputed by
// NewPlan2D into a caller-provided float32 table (computed in float64,
// rounded once), so the per-plane transforms are pure arithmetic over
// caller-owned scratch: no allocation, and a fixed operation order that
// keeps results bitwise identical at every engine worker count.

// A Plan2D holds the twiddle tables for a p x q real 2-D transform
// (both powers of two). The zero value is not usable; build one with
// NewPlan2D over a table of PlanFloats(p, q) float32s.
type Plan2D struct {
	p, q, h, hw int // h = q/2, hw = q/2+1 stored spectrum columns

	rowTw []float32 // stage twiddles of the h-point row FFT
	untTw []float32 // e^(-2*pi*i*k/q), k = 0..h, for the r2c untangle
	colTw []float32 // stage twiddles of the p-point column FFT
}

// HalfWidth returns the number of stored spectrum columns, q/2 + 1.
func (pl Plan2D) HalfWidth() int { return pl.hw }

// PlanFloats returns the float32 table size NewPlan2D needs for a
// p x q plan.
func PlanFloats(p, q int) int {
	h := q / 2
	n := h + 1 // untangle factors
	if h > 1 {
		n += h - 1 // row stage twiddles
	}
	if p > 1 {
		n += p - 1 // column stage twiddles
	}
	return 2 * n
}

// ScratchFloats returns the per-worker scratch a p x q plan's FwdReal /
// InvReal calls need: one real p x q plane plus one spectrum-row swap
// buffer of q/2+1 complex values.
func ScratchFloats(p, q int) int { return p*q + 2*(q/2+1) }

// NewPlan2D fills tab (at least PlanFloats(p, q) float32s) with the
// twiddle tables of a p x q plan and returns the plan referencing it.
// Twiddles are evaluated in float64 and rounded once to float32, so a
// plan's tables are a pure function of (p, q).
func NewPlan2D(p, q int, tab []float32) Plan2D {
	if !IsPow2(p) || !IsPow2(q) {
		panic("fftpkg: plan dimensions must be powers of two")
	}
	if len(tab) < PlanFloats(p, q) {
		panic("fftpkg: plan table too small")
	}
	h := q / 2
	pl := Plan2D{p: p, q: q, h: h, hw: h + 1}
	off := 0
	if h > 1 {
		pl.rowTw = tab[off : off+2*(h-1)]
		fillStageTwiddles(pl.rowTw, h)
		off += 2 * (h - 1)
	}
	pl.untTw = tab[off : off+2*(h+1)]
	for k := 0; k <= h; k++ {
		ang := -2 * math.Pi * float64(k) / float64(q)
		pl.untTw[2*k] = float32(math.Cos(ang))
		pl.untTw[2*k+1] = float32(math.Sin(ang))
	}
	off += 2 * (h + 1)
	if p > 1 {
		pl.colTw = tab[off : off+2*(p-1)]
		fillStageTwiddles(pl.colTw, p)
	}
	return pl
}

// fillStageTwiddles writes the concatenated per-stage butterfly factors
// of an n-point FFT: stage with half-size L/2 = half stores
// e^(-pi*i*j/half) for j in [0, half) at complex offset half-1.
func fillStageTwiddles(tw []float32, n int) {
	for half := 1; half < n; half <<= 1 {
		for j := 0; j < half; j++ {
			ang := -math.Pi * float64(j) / float64(half)
			tw[(half-1+j)*2] = float32(math.Cos(ang))
			tw[(half-1+j)*2+1] = float32(math.Sin(ang))
		}
	}
}

// cfft is the in-place iterative radix-2 complex FFT over n interleaved
// (re, im) float32 pairs, using the precomputed stage twiddles tw (laid
// out by fillStageTwiddles). The inverse conjugates the twiddles and
// scales by 1/n — an exact power of two, so the scaling rounds nothing.
//
//ucudnn:hotpath
func cfft(buf []float32, n int, tw []float32, inverse bool) {
	if n <= 1 {
		return
	}
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			buf[2*i], buf[2*j] = buf[2*j], buf[2*i]
			buf[2*i+1], buf[2*j+1] = buf[2*j+1], buf[2*i+1]
		}
	}
	sgn := float32(1)
	if inverse {
		sgn = -1
	}
	for half := 1; half < n; half <<= 1 {
		base := (half - 1) * 2
		for i := 0; i < n; i += half << 1 {
			for j := 0; j < half; j++ {
				wr := tw[base+2*j]
				wi := sgn * tw[base+2*j+1]
				a := 2 * (i + j)
				b := a + 2*half
				br, bi := buf[b], buf[b+1]
				vr := wr*br - wi*bi
				vi := wr*bi + wi*br
				ur, ui := buf[a], buf[a+1]
				buf[a] = ur + vr
				buf[a+1] = ui + vi
				buf[b] = ur - vr
				buf[b+1] = ui - vi
			}
		}
	}
	if inverse {
		s := float32(1) / float32(n)
		for i := range buf[:2*n] {
			buf[i] *= s
		}
	}
}

// colPass runs the p-point FFT down every stored spectrum column of the
// plane at once, row-wise: the bit-reversal permutes whole rows (via the
// tmp swap buffer) and each butterfly combines two full rows with one
// scalar twiddle, so the inner loop walks 2*hw contiguous floats instead
// of a strided column gather. Element-wise the arithmetic and its order
// are exactly the per-column cfft's.
//
//ucudnn:hotpath
func colPass(dst []float32, p, hw int, tw, tmp []float32, inverse bool) {
	if p <= 1 {
		return
	}
	w2 := 2 * hw
	for i, j := 1, 0; i < p; i++ {
		bit := p >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			ri := dst[i*w2 : (i+1)*w2]
			rj := dst[j*w2 : (j+1)*w2]
			copy(tmp, ri)
			copy(ri, rj)
			copy(rj, tmp)
		}
	}
	sgn := float32(1)
	if inverse {
		sgn = -1
	}
	for half := 1; half < p; half <<= 1 {
		base := (half - 1) * 2
		for i := 0; i < p; i += half << 1 {
			for j := 0; j < half; j++ {
				wr := tw[base+2*j]
				wi := sgn * tw[base+2*j+1]
				ra := dst[(i+j)*w2 : (i+j)*w2+w2]
				rb := dst[(i+j+half)*w2 : (i+j+half)*w2+w2]
				rowButterfly(ra, rb, wr, wi)
			}
		}
	}
	if inverse {
		s := float32(1) / float32(p)
		for i := range dst[:p*w2] {
			dst[i] *= s
		}
	}
}

// rowButterfly combines two interleaved complex rows with one twiddle:
// (a, b) <- (a + w*b, a - w*b) element-wise.
//
//ucudnn:hotpath
func rowButterfly(ra, rb []float32, wr, wi float32) {
	for c := 0; c < len(ra); c += 2 {
		br, bi := rb[c], rb[c+1]
		vr := wr*br - wi*bi
		vi := wr*bi + wi*br
		ur, ui := ra[c], ra[c+1]
		ra[c] = ur + vr
		ra[c+1] = ui + vi
		rb[c] = ur - vr
		rb[c+1] = ui - vi
	}
}

// FwdReal transforms the real p x q plane re (row-major, caller-filled,
// destroyed) into dst, the interleaved (re, im) half-spectrum of
// p rows x (q/2+1) stored columns. Rows nz and beyond are taken as all
// zero: their row transforms are skipped and written as exact zeros —
// bit-identical to transforming the zeros, since every butterfly and
// untangle term on signed zeros rounds back to +0. tmp is a 2*(q/2+1)
// float swap buffer; re and tmp together are ScratchFloats(p, q) floats.
//
//ucudnn:hotpath
func (pl Plan2D) FwdReal(dst, re, tmp []float32, nz int) {
	p, q, h, hw := pl.p, pl.q, pl.h, pl.hw
	if nz > p {
		nz = p
	}
	for r := 0; r < nz; r++ {
		row := re[r*q : (r+1)*q]
		out := dst[2*r*hw : 2*(r+1)*hw]
		if h == 0 { // q == 1: the DFT is the sample itself
			out[0], out[1] = row[0], 0
			continue
		}
		// View the q reals as h complex values and transform.
		cfft(row, h, pl.rowTw, false)
		// Untangle Z into the length-q DFT's unique half: with
		// E = (Z[k] + conj(Z[h-k]))/2 and O = -i(Z[k] - conj(Z[h-k]))/2
		// (the even/odd subsequence spectra), X[k] = E + w^k O.
		for k := 0; k <= h; k++ {
			zk := k & (h - 1)
			zm := (h - k) & (h - 1)
			zr, zi := row[2*zk], row[2*zk+1]
			mr, mi := row[2*zm], row[2*zm+1]
			er := (zr + mr) * 0.5
			ei := (zi - mi) * 0.5
			or := (zi + mi) * 0.5
			oi := (mr - zr) * 0.5
			wr := pl.untTw[2*k]
			wi := pl.untTw[2*k+1]
			out[2*k] = er + wr*or - wi*oi
			out[2*k+1] = ei + wr*oi + wi*or
		}
	}
	for i := range dst[2*nz*hw : 2*p*hw] {
		dst[2*nz*hw+i] = 0
	}
	colPass(dst, p, hw, pl.colTw, tmp, false)
}

// InvReal inverse-transforms the interleaved half-spectrum src
// (destroyed) into the real p x q plane re, including the full 1/(p*q)
// inverse normalization. tmp is the same swap buffer as in FwdReal.
//
//ucudnn:hotpath
func (pl Plan2D) InvReal(re, src, tmp []float32) {
	p, q, h, hw := pl.p, pl.q, pl.h, pl.hw
	colPass(src, p, hw, pl.colTw, tmp, true)
	for r := 0; r < p; r++ {
		srow := src[2*r*hw : 2*(r+1)*hw]
		drow := re[r*q : (r+1)*q]
		if h == 0 {
			drow[0] = srow[0]
			continue
		}
		// Retangle: E = (X[k] + conj(X[h-k]))/2 and D = w^k O =
		// (X[k] - conj(X[h-k]))/2 recover Z[k] = E + i*(D * conj(w^k));
		// the inverse half-length FFT then leaves the q reals of the row
		// interleaved in natural order.
		for k := 0; k < h; k++ {
			x0r, x0i := srow[2*k], srow[2*k+1]
			x1r, x1i := srow[2*(h-k)], srow[2*(h-k)+1]
			er := (x0r + x1r) * 0.5
			ei := (x0i - x1i) * 0.5
			dr := (x0r - x1r) * 0.5
			di := (x0i + x1i) * 0.5
			wr := pl.untTw[2*k]
			wi := pl.untTw[2*k+1]
			or := dr*wr + di*wi
			oi := di*wr - dr*wi
			drow[2*k] = er - oi
			drow[2*k+1] = ei + or
		}
		cfft(drow, h, pl.rowTw, true)
	}
}
