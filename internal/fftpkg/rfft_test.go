package fftpkg

import (
	"math"
	"math/rand"
	"testing"
)

// Tests of the float32 real-transform kernel against the complex128
// reference in fft.go: forward half-spectrum values, the Hermitian
// reconstruction of the discarded half, roundtrip, and the bitwise
// exactness of the zero-row pruning the conv embedding relies on.

func newTestPlan(p, q int) Plan2D {
	return NewPlan2D(p, q, make([]float32, PlanFloats(p, q)))
}

func randPlane(rng *rand.Rand, p, q int) []float32 {
	re := make([]float32, p*q)
	for i := range re {
		re[i] = rng.Float32()*2 - 1
	}
	return re
}

// fwd runs FwdReal over a copy of plane (FwdReal destroys its input) and
// returns the interleaved half-spectrum.
func fwd(pl Plan2D, p, q int, plane []float32, nz int) []float32 {
	hw := pl.HalfWidth()
	dst := make([]float32, 2*p*hw)
	scratch := make([]float32, ScratchFloats(p, q))
	re, tmp := scratch[:p*q], scratch[p*q:]
	copy(re, plane)
	pl.FwdReal(dst, re, tmp, nz)
	return dst
}

var rfftSizes = [][2]int{
	{1, 1}, {1, 2}, {2, 1}, {2, 2}, {1, 8}, {8, 1},
	{4, 8}, {8, 4}, {8, 8}, {16, 32}, {32, 32},
}

// Forward output must match the complex128 full-spectrum reference on the
// stored columns, across degenerate and square sizes.
func TestFwdRealMatchesComplexReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, sz := range rfftSizes {
		p, q := sz[0], sz[1]
		pl := newTestPlan(p, q)
		plane := randPlane(rng, p, q)
		got := fwd(pl, p, q, plane, p)
		want := RealForward2D(plane, p, q, q, p, q)
		hw := pl.HalfWidth()
		for r := 0; r < p; r++ {
			for k := 0; k < hw; k++ {
				w := want[r*q+k]
				gr := float64(got[2*(r*hw+k)])
				gi := float64(got[2*(r*hw+k)+1])
				scale := float64(p * q)
				if math.Abs(gr-real(w)) > 1e-5*scale || math.Abs(gi-imag(w)) > 1e-5*scale {
					t.Fatalf("%dx%d: X[%d][%d] = (%g, %g), reference %v", p, q, r, k, gr, gi, w)
				}
			}
		}
	}
}

// Hermitian exactness: the stored half determines the discarded columns.
// Reconstructing column c > q/2 as conj(X[(p-r)%p][q-c]) from the float32
// half-spectrum must match the complex128 reference's full spectrum.
func TestFwdRealHermitianReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, sz := range [][2]int{{4, 8}, {8, 8}, {16, 16}, {2, 4}} {
		p, q := sz[0], sz[1]
		pl := newTestPlan(p, q)
		plane := randPlane(rng, p, q)
		got := fwd(pl, p, q, plane, p)
		want := RealForward2D(plane, p, q, q, p, q)
		hw := pl.HalfWidth()
		for r := 0; r < p; r++ {
			for c := hw; c < q; c++ {
				// Mirror into the stored half and conjugate.
				mr := (p - r) % p
				mc := q - c
				gr := float64(got[2*(mr*hw+mc)])
				gi := -float64(got[2*(mr*hw+mc)+1])
				w := want[r*q+c]
				scale := float64(p * q)
				if math.Abs(gr-real(w)) > 1e-5*scale || math.Abs(gi-imag(w)) > 1e-5*scale {
					t.Fatalf("%dx%d: reconstructed X[%d][%d] = (%g, %g), reference %v",
						p, q, r, c, gr, gi, w)
				}
			}
		}
		// The reference itself must be Hermitian: conj-symmetry is a
		// property of real input, not of our storage convention.
		for r := 0; r < p; r++ {
			for c := 0; c < q; c++ {
				a := want[r*q+c]
				b := want[((p-r)%p)*q+(q-c)%q]
				if math.Abs(real(a)-real(b)) > 1e-9 || math.Abs(imag(a)+imag(b)) > 1e-9 {
					t.Fatalf("%dx%d: reference not Hermitian at [%d][%d]", p, q, r, c)
				}
			}
		}
	}
}

// FwdReal then InvReal must reproduce the plane: the pair carries the full
// 1/(p*q) normalization.
func TestRfftRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sz := range rfftSizes {
		p, q := sz[0], sz[1]
		pl := newTestPlan(p, q)
		plane := randPlane(rng, p, q)
		spec := fwd(pl, p, q, plane, p)
		scratch := make([]float32, ScratchFloats(p, q))
		re, tmp := scratch[:p*q], scratch[p*q:]
		pl.InvReal(re, spec, tmp)
		for i := range plane {
			if d := math.Abs(float64(re[i] - plane[i])); d > 1e-5 {
				t.Fatalf("%dx%d: roundtrip elem %d off by %g", p, q, i, d)
			}
		}
	}
}

// The nz zero-row pruning must be bit-identical to transforming the
// explicit zeros — the conv filter embedding (3 live rows of a 32-row
// plane) depends on this for worker-count invariance.
func TestFwdRealZeroRowPruningBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, sz := range [][2]int{{8, 8}, {16, 16}, {32, 32}, {4, 2}} {
		p, q := sz[0], sz[1]
		pl := newTestPlan(p, q)
		for _, nz := range []int{0, 1, 3, p / 2, p} {
			plane := randPlane(rng, p, q)
			for i := nz * q; i < p*q; i++ {
				plane[i] = 0
			}
			full := fwd(pl, p, q, plane, p)
			pruned := fwd(pl, p, q, plane, nz)
			for i := range full {
				if math.Float32bits(full[i]) != math.Float32bits(pruned[i]) {
					t.Fatalf("%dx%d nz=%d: spectra diverge at %d (%x vs %x)",
						p, q, nz, i, math.Float32bits(full[i]), math.Float32bits(pruned[i]))
				}
			}
		}
	}
}

// Plan tables are a pure function of (p, q): two plans over separate
// tables must be bit-identical, so every worker and every run sees the
// same twiddles.
func TestPlanTablesDeterministic(t *testing.T) {
	a := make([]float32, PlanFloats(16, 32))
	b := make([]float32, PlanFloats(16, 32))
	NewPlan2D(16, 32, a)
	NewPlan2D(16, 32, b)
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("plan tables differ at %d", i)
		}
	}
}

func TestNewPlan2DPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"non-pow2 p":      func() { NewPlan2D(3, 4, make([]float32, 64)) },
		"non-pow2 q":      func() { NewPlan2D(4, 6, make([]float32, 64)) },
		"table too small": func() { NewPlan2D(16, 16, make([]float32, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
