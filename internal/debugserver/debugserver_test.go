package debugserver

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/flight"
	"ucudnn/internal/obs"
	"ucudnn/internal/prof"
	"ucudnn/internal/tensor"
)

// driveKernel builds a handle with metrics attached and executes one
// real micro-batched convolution, so every endpoint has live state.
func driveKernel(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	h, err := core.New(cudnn.NewHandle(device.P100, cudnn.ModelBackend),
		core.WithMetrics(reg),
		core.WithWorkspaceLimit(1<<20),
		// GEMM needs real workspace, so the arena grows and the
		// workspace timeline has something to show.
		core.WithAlgoFilter(func(op conv.Op, a conv.Algo) bool { return a == conv.AlgoGemm }))
	if err != nil {
		t.Fatal(err)
	}
	xd, _ := cudnn.NewTensorDesc(10, 8, 12, 12)
	wd, _ := cudnn.NewFilterDesc(12, 8, 3, 3)
	cd, _ := cudnn.NewConvDesc(1, 1, 1, 1, 1, 1)
	yd, _ := cudnn.GetOutputDim(xd, wd, cd)
	cs := cudnn.Shape(xd, wd, cd)
	rng := rand.New(rand.NewSource(7))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(12, 8, 3, 3)
	w.Randomize(rng, 0.5)
	y := tensor.NewShaped(cs.OutShape())
	algo, err := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, algo, nil, 0, yd, y); err != nil {
		t.Fatal(err)
	}
	return reg
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestAllEndpoints is the acceptance-criteria integration test: a live
// server over a real driven kernel, all five endpoints exercised.
func TestAllEndpoints(t *testing.T) {
	prev := flight.Active()
	defer flight.Install(prev)
	flight.Enable(4096)

	reg := driveKernel(t)
	srv, err := Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr() + "/debug/ucudnn"

	t.Run("metrics", func(t *testing.T) {
		code, body := get(t, base+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		for _, want := range []string{"# TYPE ", "ucudnn_algo_selected_total", "_bucket{"} {
			if !strings.Contains(body, want) {
				t.Errorf("prometheus body missing %q", want)
			}
		}
		code, body = get(t, base+"/metrics?format=summary")
		if code != http.StatusOK || !strings.Contains(body, "p50=") {
			t.Fatalf("summary (status %d) missing quantiles:\n%s", code, body)
		}
	})

	t.Run("events", func(t *testing.T) {
		code, body := get(t, base+"/events?n=1000")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var resp struct {
			Total    uint64 `json:"total_recorded"`
			Capacity int    `json:"ring_capacity"`
			Events   []struct {
				Seq   uint64 `json:"seq"`
				TNS   int64  `json:"t_ns"`
				Event string `json:"event"`
				Text  string `json:"text"`
			} `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("events JSON: %v\n%s", err, body)
		}
		if resp.Total == 0 || resp.Capacity != 4096 || len(resp.Events) == 0 {
			t.Fatalf("events response = total %d cap %d events %d", resp.Total, resp.Capacity, len(resp.Events))
		}
		names := map[string]bool{}
		for _, e := range resp.Events {
			if e.Seq == 0 || e.TNS == 0 || e.Text == "" {
				t.Fatalf("incomplete event %+v", e)
			}
			names[e.Event] = true
		}
		for _, want := range []string{"ucudnn_ev_kernel_launch", "ucudnn_ev_kernel_finish", "ucudnn_ev_micro_kernel", "ucudnn_ev_stripe"} {
			if !names[want] {
				t.Errorf("event stream missing %s (saw %v)", want, names)
			}
		}
		if code, body := get(t, base+"/events?n=bogus"); code != http.StatusBadRequest {
			t.Errorf("bad n gave status %d: %s", code, body)
		}
	})

	t.Run("plan", func(t *testing.T) {
		code, body := get(t, base+"/plan")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		for _, want := range []string{"handle ", "mode=WR", "kernel", "Forward[", "GEMM@"} {
			if !strings.Contains(body, want) {
				t.Errorf("plan table missing %q:\n%s", want, body)
			}
		}
		code, body = get(t, base+"/plan?format=json")
		if code != http.StatusOK {
			t.Fatalf("json status %d", code)
		}
		var reports []core.HandleReport
		if err := json.Unmarshal([]byte(body), &reports); err != nil {
			t.Fatalf("plan JSON: %v\n%s", err, body)
		}
		found := false
		for _, r := range reports {
			for _, p := range r.Plans {
				if strings.HasPrefix(p.Kernel, "Forward") && p.Divisions >= 1 && p.WorkspaceBytes > 0 {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("no Forward plan row in %s", body)
		}
	})

	t.Run("workspace", func(t *testing.T) {
		code, body := get(t, base+"/workspace")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var resp struct {
			Handles []struct {
				ID    int64 `json:"id"`
				Arena int64 `json:"arena_bytes"`
			} `json:"handles"`
			Timeline []struct {
				Handle  int64 `json:"handle"`
				Granted int64 `json:"granted_bytes"`
				Arena   int64 `json:"arena_bytes"`
			} `json:"timeline"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("workspace JSON: %v\n%s", err, body)
		}
		if len(resp.Handles) == 0 || len(resp.Timeline) == 0 {
			t.Fatalf("workspace response empty: %s", body)
		}
		if last := resp.Timeline[len(resp.Timeline)-1]; last.Arena <= 0 || last.Granted <= 0 {
			t.Fatalf("timeline tail = %+v", last)
		}
	})

	t.Run("buildinfo", func(t *testing.T) {
		code, body := get(t, base+"/buildinfo")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var resp struct {
			GoVersion string `json:"go_version"`
			Module    string `json:"module"`
		}
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("buildinfo JSON: %v\n%s", err, body)
		}
		if resp.GoVersion == "" {
			t.Fatal("buildinfo missing go_version")
		}
	})

	t.Run("index", func(t *testing.T) {
		code, body := get(t, base+"/")
		if code != http.StatusOK || !strings.Contains(body, "/debug/ucudnn/plan") ||
			!strings.Contains(body, "/debug/ucudnn/profile") {
			t.Fatalf("index (status %d):\n%s", code, body)
		}
	})
}

// TestProfileEndpoint drives a kernel with profiling enabled and reads
// the live attribution report both ways.
func TestProfileEndpoint(t *testing.T) {
	prof.Reset()
	prof.Enable()
	defer func() {
		prof.Disable()
		prof.SetLayer("")
		prof.Reset()
	}()
	prof.SetLayer("conv_live")
	driveKernel(t)
	prof.SetLayer("")

	srv, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr() + "/debug/ucudnn"

	code, body := get(t, base+"/profile")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := core.ValidateProfile([]byte(body)); err != nil {
		t.Fatalf("live profile fails validation: %v\n%s", err, body)
	}
	var rep core.ProfileReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range rep.Kernels {
		if k.Layer == "conv_live" && k.AttributedNS > 0 && k.Coverage > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no attributed conv_live row:\n%s", body)
	}

	code, body = get(t, base+"/profile?format=table")
	if code != http.StatusOK || !strings.Contains(body, "conv_live") || !strings.Contains(body, "top phases:") {
		t.Fatalf("table (status %d):\n%s", code, body)
	}
}

func TestMetricsWithoutRegistry(t *testing.T) {
	req := httptest.NewRequest("GET", "/debug/ucudnn/metrics", nil)
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil-registry metrics status = %d, want 404", rec.Code)
	}
}

func TestEventsWhenDisabled(t *testing.T) {
	prev := flight.Active()
	defer flight.Install(prev)
	flight.Disable()
	req := httptest.NewRequest("GET", "/debug/ucudnn/events", nil)
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("disabled events status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"events": []`) {
		t.Fatalf("disabled events body = %s", rec.Body.String())
	}
}
