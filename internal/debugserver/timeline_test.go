package debugserver

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"ucudnn/internal/causal"
	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/obs"
	"ucudnn/internal/tensor"
)

// The live timeline endpoint: canonical JSON by default, plus the
// chrome, table and analysis renderings, all built from the handle's
// trace recorder and the causal scope log.
func TestTimelineEndpoint(t *testing.T) {
	causal.Reset()
	causal.Enable()
	defer func() {
		causal.Disable()
		causal.Reset()
	}()

	h, err := core.New(cudnn.NewHandle(device.P100, cudnn.ModelBackend),
		core.WithWorkspaceLimit(1<<20),
		core.WithTracePath(filepath.Join(t.TempDir(), "trace.json")),
		core.WithAlgoFilter(func(op conv.Op, a conv.Algo) bool { return a == conv.AlgoGemm }))
	if err != nil {
		t.Fatal(err)
	}
	xd, _ := cudnn.NewTensorDesc(8, 4, 10, 10)
	wd, _ := cudnn.NewFilterDesc(6, 4, 3, 3)
	cd, _ := cudnn.NewConvDesc(1, 1, 1, 1, 1, 1)
	yd, _ := cudnn.GetOutputDim(xd, wd, cd)
	cs := cudnn.Shape(xd, wd, cd)
	x := tensor.NewShaped(cs.In)
	w := tensor.NewFilter(6, 4, 3, 3)
	y := tensor.NewShaped(cs.OutShape())
	algo, err := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, algo, nil, 0, yd, y); err != nil {
		t.Fatal(err)
	}

	srv, err := Start("127.0.0.1:0", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr() + "/debug/ucudnn/timeline"

	code, body := get(t, base)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	tl, err := causal.ReadTimeline(strings.NewReader(body))
	if err != nil {
		t.Fatalf("timeline JSON: %v", err)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) == 0 || len(tl.Scopes) == 0 {
		t.Fatalf("empty live timeline: %d scopes, %d events", len(tl.Scopes), len(tl.Events))
	}
	// The conv-call scope the executed kernel ran under must be present.
	foundConv := false
	for _, s := range tl.Scopes {
		if s.Kind == causal.KindConv {
			foundConv = true
		}
	}
	if !foundConv {
		t.Fatal("no conv scope in the live timeline")
	}

	code, body = get(t, base+"?format=chrome")
	if code != http.StatusOK || !strings.Contains(body, `"ph":"M"`) {
		t.Fatalf("chrome rendering (status %d) missing track metadata:\n%.200s", code, body)
	}
	code, body = get(t, base+"?format=table")
	if code != http.StatusOK || !strings.Contains(body, "critical path:") {
		t.Fatalf("table rendering (status %d):\n%.200s", code, body)
	}
	code, body = get(t, base+"?format=analysis")
	if code != http.StatusOK {
		t.Fatalf("analysis status %d: %s", code, body)
	}
	var a causal.Analysis
	if err := json.Unmarshal([]byte(body), &a); err != nil {
		t.Fatalf("analysis JSON: %v\n%.200s", err, body)
	}
	if len(a.Iterations) == 0 || a.WallNS <= 0 {
		t.Fatalf("empty analysis: %+v", a)
	}
}

// The events endpoint reports the ring's overwrite count and stamps
// spans on correlated events.
func TestEventsDroppedTotal(t *testing.T) {
	code, body := get(t, startServer(t)+"/events?n=4")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Dropped *uint64 `json:"dropped_total"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("events JSON: %v\n%s", err, body)
	}
	if resp.Dropped == nil {
		t.Fatalf("events response missing dropped_total:\n%s", body)
	}
}

// startServer spins up a server with a fresh registry and returns the
// base URL.
func startServer(t *testing.T) string {
	t.Helper()
	srv, err := Start("127.0.0.1:0", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return "http://" + srv.Addr() + "/debug/ucudnn"
}
