// Package debugserver exposes the live state of a µ-cuDNN process over
// HTTP: the obs metrics registry, the flight-recorder event stream, the
// per-kernel execution plans (the paper's §IV-B table, taken from the
// running handles instead of a finished log), a workspace-occupancy
// timeline, and build information. The CLIs mount it behind the
// -debug-addr flag / UCUDNN_DEBUG_ADDR env var.
//
// Endpoints (all GET, rooted at /debug/ucudnn/):
//
//	metrics    Prometheus text exposition (?format=summary for the table)
//	events     last-N flight events as JSON (?n=, default 256)
//	plan       per-kernel algo/division/workspace table (?format=json)
//	profile    per-phase cost-attribution report (JSON; ?format=table)
//	workspace  arena-occupancy timeline from flight events (JSON)
//	timeline   live causal timeline (?format=chrome|table|analysis)
//	buildinfo  module, Go version and VCS stamp (JSON)
package debugserver

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"text/tabwriter"
	"time"

	"ucudnn/internal/causal"
	"ucudnn/internal/core"
	"ucudnn/internal/flight"
	"ucudnn/internal/obs"
	"ucudnn/internal/trace"
)

// defaultEventCount bounds /events responses unless ?n= asks otherwise.
const defaultEventCount = 256

// Handler returns the debug mux. reg may be nil: /metrics then reports
// that no registry is attached (the flight and plan endpoints still
// work — they read process-global state).
func Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/ucudnn/{$}", serveIndex)
	mux.HandleFunc("GET /debug/ucudnn/metrics", func(w http.ResponseWriter, r *http.Request) {
		serveMetrics(w, r, reg)
	})
	mux.HandleFunc("GET /debug/ucudnn/events", serveEvents)
	mux.HandleFunc("GET /debug/ucudnn/plan", servePlan)
	mux.HandleFunc("GET /debug/ucudnn/profile", serveProfile)
	mux.HandleFunc("GET /debug/ucudnn/workspace", serveWorkspace)
	mux.HandleFunc("GET /debug/ucudnn/timeline", serveTimeline)
	mux.HandleFunc("GET /debug/ucudnn/buildinfo", serveBuildInfo)
	return mux
}

func serveIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ucudnn debug endpoints:")
	for _, ep := range []string{
		"metrics    Prometheus text exposition (?format=summary)",
		"events     last-N flight events as JSON (?n=256)",
		"plan       per-kernel algo/division/workspace table (?format=json)",
		"profile    per-phase cost-attribution report (JSON, ?format=table)",
		"workspace  arena-occupancy timeline (JSON)",
		"timeline   live causal timeline (?format=chrome|table|analysis)",
		"buildinfo  module, Go version, VCS stamp (JSON)",
	} {
		fmt.Fprintln(w, "  /debug/ucudnn/"+ep)
	}
}

func serveMetrics(w http.ResponseWriter, r *http.Request, reg *obs.Registry) {
	if reg == nil {
		http.Error(w, "no metrics registry attached (run with -metrics or -debug-addr wiring)", http.StatusNotFound)
		return
	}
	flight.SyncMetrics(reg)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var err error
	if r.URL.Query().Get("format") == "summary" {
		err = reg.WriteSummary(w)
	} else {
		err = reg.WritePrometheus(w)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// eventJSON is one flight event on the wire.
type eventJSON struct {
	Seq   uint64 `json:"seq"`
	TNS   int64  `json:"t_ns"`
	Event string `json:"event"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	C     int64  `json:"c"`
	D     int64  `json:"d"`
	Span  uint64 `json:"span,omitempty"`
	Text  string `json:"text"`
}

func toEventJSON(e flight.Event) eventJSON {
	return eventJSON{Seq: e.Seq, TNS: e.TimeNS, Event: e.Name(),
		A: e.A, B: e.B, C: e.C, D: e.D, Span: e.Span, Text: e.Text()}
}

func serveEvents(w http.ResponseWriter, r *http.Request) {
	n := defaultEventCount
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "n must be a non-negative integer (0 = all retained)", http.StatusBadRequest)
			return
		}
		n = v
	}
	evs := flight.Events(n)
	resp := struct {
		Total    uint64      `json:"total_recorded"`
		Capacity int         `json:"ring_capacity"`
		Dropped  uint64      `json:"dropped_total"`
		Events   []eventJSON `json:"events"`
	}{Total: flight.Active().Total(), Events: make([]eventJSON, 0, len(evs))}
	if rec := flight.Active(); rec != nil {
		resp.Capacity = rec.Capacity()
		resp.Dropped = rec.Dropped()
	}
	for _, e := range evs {
		resp.Events = append(resp.Events, toEventJSON(e))
	}
	writeJSON(w, resp)
}

func servePlan(w http.ResponseWriter, r *http.Request) {
	reports := make([]core.HandleReport, 0, 4)
	for _, h := range core.Handles() {
		reports = append(reports, h.Report())
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, reports)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(reports) == 0 {
		fmt.Fprintln(w, "no ucudnn handles created yet")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, rep := range reports {
		fmt.Fprintf(w, "handle %d: mode=%s policy=%s device=%s ws_limit=%d",
			rep.ID, rep.Mode, rep.Policy, rep.Device, rep.WorkspaceLimit)
		if rep.Mode == "WD" {
			fmt.Fprintf(w, " total_ws_limit=%d", rep.TotalWorkspaceLimit)
		}
		fmt.Fprintf(w, " opt_time=%s degraded=%d arena=%d\n",
			time.Duration(rep.OptTimeNS), rep.DegradedPlans, rep.ArenaBytes)
		if len(rep.Plans) == 0 {
			fmt.Fprintln(w, "  (no plans decided yet)")
			continue
		}
		fmt.Fprintln(tw, "  kernel\tconfig\tdivisions\tpredicted\tworkspace\tlimit\tshare")
		for _, p := range rep.Plans {
			fmt.Fprintf(tw, "  %s\t%s\t%d\t%s\t%d\t%d\t%.1f%%\n",
				p.Kernel, p.Config, p.Divisions, time.Duration(p.PredictedNS),
				p.WorkspaceBytes, p.LimitBytes, p.Share*100)
		}
		tw.Flush()
	}
}

// serveProfile returns the live cost-attribution report: the
// profiler's per-phase rows joined with the plan table
// (core.BuildProfileReport). JSON by default; ?format=table renders
// the human-readable attribution table. Note the report only carries
// data while profiling is enabled (prof.Enable, wired to the CLIs'
// -profile flag).
func serveProfile(w http.ResponseWriter, r *http.Request) {
	rep := core.BuildProfileReport()
	if r.URL.Query().Get("format") == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := rep.WriteTable(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, rep)
}

// workspacePoint is one arena-occupancy sample on the timeline.
type workspacePoint struct {
	TNS       int64 `json:"t_ns"`
	Handle    int64 `json:"handle"`
	Requested int64 `json:"requested_bytes"`
	Granted   int64 `json:"granted_bytes"`
	Arena     int64 `json:"arena_bytes"`
}

func serveWorkspace(w http.ResponseWriter, _ *http.Request) {
	resp := struct {
		Handles []struct {
			ID    int64 `json:"id"`
			Arena int64 `json:"arena_bytes"`
			Limit int64 `json:"workspace_limit_bytes"`
		} `json:"handles"`
		Timeline []workspacePoint `json:"timeline"`
	}{Timeline: []workspacePoint{}}
	for _, h := range core.Handles() {
		rep := h.Report()
		resp.Handles = append(resp.Handles, struct {
			ID    int64 `json:"id"`
			Arena int64 `json:"arena_bytes"`
			Limit int64 `json:"workspace_limit_bytes"`
		}{ID: rep.ID, Arena: rep.ArenaBytes, Limit: rep.WorkspaceLimit})
	}
	// Kind resolution via Lookup keeps the event identity a compile-time
	// constant in core while letting the reader filter numerically.
	growKind, ok := flight.Lookup(core.EvArenaGrow)
	if ok {
		for _, e := range flight.Events(0) {
			if e.Kind != growKind {
				continue
			}
			resp.Timeline = append(resp.Timeline, workspacePoint{
				TNS: e.TimeNS, Handle: e.A, Requested: e.B, Granted: e.C, Arena: e.D})
		}
	}
	writeJSON(w, resp)
}

// serveTimeline builds the live causal timeline from every handle's
// trace recorder plus the causal scope log. Canonical JSON by default
// (the same bytes ucudnn-trace -o emits); ?format=chrome renders
// Chrome trace-event JSON with flow arrows, ?format=table the
// critical-path/stall report, ?format=analysis the analysis as JSON.
func serveTimeline(w http.ResponseWriter, r *http.Request) {
	var evs []trace.Event
	for _, h := range core.Handles() {
		if rec := h.TraceRecorder(); rec != nil {
			evs = append(evs, rec.Events()...)
		}
	}
	t := causal.Build(evs, causal.Scopes())
	switch r.URL.Query().Get("format") {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		causal.Analyze(t, nil).WriteTable(w)
	case "analysis":
		writeJSON(w, causal.Analyze(t, nil))
	default:
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

func serveBuildInfo(w http.ResponseWriter, _ *http.Request) {
	resp := struct {
		GoVersion string            `json:"go_version"`
		OS        string            `json:"os"`
		Arch      string            `json:"arch"`
		Module    string            `json:"module,omitempty"`
		Settings  map[string]string `json:"settings,omitempty"`
	}{GoVersion: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH}
	if bi, ok := debug.ReadBuildInfo(); ok {
		resp.Module = bi.Main.Path
		resp.Settings = map[string]string{}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision", "vcs.time", "vcs.modified", "GOFLAGS":
				resp.Settings[s.Key] = s.Value
			}
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Server is a running debug HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (":0" picks a free port) and serves the debug
// mux in a background goroutine until Close.
func Start(addr string, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugserver: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg)}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
