package flight

import "ucudnn/internal/obs"

// MetricDropped is the ring-overwrite counter: events the fixed-capacity
// ring discarded to make room. A nonzero value means Snapshot-based
// consumers (debug server, dumps) saw a truncated history.
const MetricDropped = "ucudnn_ev_dropped_total"

// SyncMetrics raises reg's ucudnn_ev_dropped_total counter to the
// active recorder's current overwrite count. Exporters call it before
// rendering; the counter only moves forward (a freshly installed ring
// restarts its drop count, but the metric keeps its high-water total).
func SyncMetrics(reg *obs.Registry) {
	r := Active()
	if r == nil || reg == nil {
		return
	}
	c := reg.Counter(MetricDropped)
	if d := int64(r.Dropped()); d > c.Value() {
		c.Add(d - c.Value())
	}
}
