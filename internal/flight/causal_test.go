package flight

import (
	"strings"
	"testing"

	"ucudnn/internal/causal"
	"ucudnn/internal/obs"
)

var evCausalTest = Register("ucudnn_ev_causal_test", nil)

// Flight events carry the enclosing causal span, stamped on the
// lock-free record path.
func TestRecordStampsSpan(t *testing.T) {
	r := NewRecorder(64)
	causal.Reset()
	causal.Enable()
	defer func() {
		causal.Disable()
		causal.Reset()
	}()
	r.Record(evCausalTest, 1, 0, 0, 0) // before any scope: span 0
	sc := causal.Begin(causal.KindConv, "conv2d")
	r.Record(evCausalTest, 2, 0, 0, 0)
	causal.End(sc)
	r.Record(evCausalTest, 3, 0, 0, 0)

	evs := r.Snapshot(0)
	if len(evs) != 3 {
		t.Fatalf("snapshot: %d events", len(evs))
	}
	if evs[0].Span != 0 || evs[2].Span != 0 {
		t.Fatalf("out-of-scope events stamped: %+v", evs)
	}
	if evs[1].Span != uint64(sc.ID) {
		t.Fatalf("in-scope event span %d, want %d", evs[1].Span, sc.ID)
	}
}

// Dropped counts ring overwrites: zero until the ring wraps, then
// lifetime total minus capacity.
func TestDropped(t *testing.T) {
	r := NewRecorder(64)
	if r.Dropped() != 0 {
		t.Fatal("fresh ring reports drops")
	}
	for i := 0; i < r.Capacity(); i++ {
		r.Record(evCausalTest, int64(i), 0, 0, 0)
	}
	if r.Dropped() != 0 {
		t.Fatalf("full-but-unwrapped ring: %d drops", r.Dropped())
	}
	r.Record(evCausalTest, 0, 0, 0, 0)
	if r.Dropped() != 1 {
		t.Fatalf("one overwrite: Dropped = %d", r.Dropped())
	}
	var nilRec *Recorder
	if nilRec.Dropped() != 0 {
		t.Fatal("nil recorder must report 0")
	}
}

// SyncMetrics mirrors the overwrite count into ucudnn_ev_dropped_total
// monotonically, keeping the high-water mark across ring reinstalls.
func TestSyncMetrics(t *testing.T) {
	prev := Active()
	defer Install(prev)
	r := Enable(64)
	reg := obs.NewRegistry()
	for i := 0; i < r.Capacity()+5; i++ {
		r.Record(evCausalTest, 0, 0, 0, 0)
	}
	SyncMetrics(reg)
	c := reg.Counter(MetricDropped)
	if c.Value() != 5 {
		t.Fatalf("dropped counter = %d, want 5", c.Value())
	}
	// A fresh ring restarts its own drop count; the metric must not move
	// backwards.
	Enable(64)
	SyncMetrics(reg)
	if c.Value() != 5 {
		t.Fatalf("counter regressed to %d", c.Value())
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), MetricDropped+" 5") {
		t.Fatalf("exporter output missing dropped counter:\n%s", buf.String())
	}
	SyncMetrics(nil) // nil registry is a no-op
	Install(nil)
	SyncMetrics(reg) // disabled recorder is a no-op
	if c.Value() != 5 {
		t.Fatalf("disabled-recorder sync moved the counter: %d", c.Value())
	}
}
