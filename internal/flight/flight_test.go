package flight

import (
	"strings"
	"sync"
	"testing"
)

// Test kinds registered once for the whole package test binary.
var (
	kindAlpha = Register("ucudnn_ev_test_alpha", func(a, b, c, d int64) string {
		return "alpha"
	})
	kindBeta = Register("ucudnn_ev_test_beta", nil)
)

func TestRegisterValidation(t *testing.T) {
	for _, bad := range []Name{"", "kernel", "ucudnn_fp_x", "ucudnn_ev", "ucudnn_ev_Upper", "ucudnn_ev_a-b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) did not panic", bad)
				}
			}()
			Register(bad, nil)
		}()
	}
	// Duplicate registration panics too.
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("ucudnn_ev_test_alpha", nil)
}

func TestLookup(t *testing.T) {
	if k, ok := Lookup("ucudnn_ev_test_alpha"); !ok || k != kindAlpha {
		t.Fatalf("Lookup(alpha) = %v, %v", k, ok)
	}
	if _, ok := Lookup("ucudnn_ev_nope"); ok {
		t.Fatal("Lookup of unregistered name succeeded")
	}
}

func TestEventFormatting(t *testing.T) {
	e := Event{Seq: 7, Kind: kindAlpha}
	if e.Name() != "ucudnn_ev_test_alpha" || e.Text() != "alpha" {
		t.Fatalf("formatted event = %q %q", e.Name(), e.Text())
	}
	raw := Event{Kind: kindBeta, A: 1, B: 2, C: 3, D: 4}
	if raw.Text() != "a=1 b=2 c=3 d=4" {
		t.Fatalf("default formatter = %q", raw.Text())
	}
	unknown := Event{Kind: 255}
	if !strings.HasPrefix(unknown.Name(), "unknown_kind_") {
		t.Fatalf("unknown kind name = %q", unknown.Name())
	}
	if got := (Event{Kind: kindAlpha}).String(); got != "ucudnn_ev_test_alpha alpha" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(64)
	if r.Capacity() != 64 {
		t.Fatalf("Capacity() = %d, want 64", r.Capacity())
	}
	const total = 200
	for i := int64(1); i <= total; i++ {
		r.Record(kindBeta, i, i, i, i)
	}
	if r.Total() != total {
		t.Fatalf("Total() = %d, want %d", r.Total(), total)
	}
	evs := r.Snapshot(0)
	if len(evs) != 64 {
		t.Fatalf("Snapshot retained %d events, want 64", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(total - 64 + 1 + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, wantSeq)
		}
		if e.A != int64(wantSeq) || e.A != e.B || e.B != e.C || e.C != e.D {
			t.Fatalf("event %d payload torn: %+v", i, e)
		}
	}
	if got := r.Snapshot(8); len(got) != 8 || got[7].Seq != total {
		t.Fatalf("Snapshot(8) = %d events ending at %d", len(got), got[len(got)-1].Seq)
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 64}, {1, 64}, {65, 128}, {4096, 4096}, {5000, 8192}} {
		if got := NewRecorder(tc.in).Capacity(); got != tc.want {
			t.Errorf("NewRecorder(%d).Capacity() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestGlobalInstall(t *testing.T) {
	prev := Active()
	defer Install(prev)
	if prev == nil {
		t.Fatal("recorder not enabled by default")
	}
	r := Enable(128)
	if Active() != r {
		t.Fatal("Enable did not install")
	}
	Rec(kindBeta, 1, 2, 3, 4)
	if evs := Events(0); len(evs) != 1 || evs[0].A != 1 || evs[0].D != 4 {
		t.Fatalf("global Rec roundtrip = %+v", evs)
	}
	Disable()
	if Active() != nil {
		t.Fatal("Disable did not uninstall")
	}
	Rec(kindBeta, 9, 9, 9, 9) // must be a no-op, not a crash
	if evs := Events(0); evs != nil {
		t.Fatalf("disabled Events = %+v, want nil", evs)
	}
}

// TestConcurrentRecordSnapshot is the -race stress test: writers fill
// the ring while readers snapshot it. The ring is sized above the total
// write count so no slot is ever rewritten — every event a reader
// observes must therefore be fully consistent (all four words equal).
func TestConcurrentRecordSnapshot(t *testing.T) {
	const writers, perWriter = 4, 8192
	r := NewRecorder(writers * perWriter) // no wraparound: tears are impossible
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range r.Snapshot(0) {
					if e.A != e.B || e.B != e.C || e.C != e.D {
						t.Errorf("torn event observed: %+v", e)
						return
					}
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(g*perWriter + i)
				r.Record(kindBeta, v, v, v, v)
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if r.Total() != writers*perWriter {
		t.Fatalf("Total() = %d, want %d", r.Total(), writers*perWriter)
	}
	if got := len(r.Snapshot(0)); got != writers*perWriter {
		t.Fatalf("quiescent snapshot returned %d events, want %d", got, writers*perWriter)
	}
}

// TestRecordAllocs asserts the steady-state recording contract of the
// ISSUE: zero allocations per event, enabled or disabled.
func TestRecordAllocs(t *testing.T) {
	prev := Active()
	defer Install(prev)
	Enable(256)
	if n := testing.AllocsPerRun(1000, func() { Rec(kindBeta, 1, 2, 3, 4) }); n != 0 {
		t.Fatalf("enabled Rec allocates %v per op, want 0", n)
	}
	Disable()
	if n := testing.AllocsPerRun(1000, func() { Rec(kindBeta, 1, 2, 3, 4) }); n != 0 {
		t.Fatalf("disabled Rec allocates %v per op, want 0", n)
	}
}

func TestDump(t *testing.T) {
	prev := Active()
	defer Install(prev)
	Enable(64)
	Rec(kindAlpha, 0, 0, 0, 0)
	var sb strings.Builder
	Dump(&sb)
	if !strings.Contains(sb.String(), "ucudnn_ev_test_alpha alpha") {
		t.Fatalf("Dump output missing event:\n%s", sb.String())
	}
	Disable()
	sb.Reset()
	Dump(&sb)
	if !strings.Contains(sb.String(), "disabled") {
		t.Fatalf("disabled Dump output = %q", sb.String())
	}
}

// BenchmarkRec measures the enabled recording path (must report
// 0 allocs/op; see BENCH_kernels.json's telemetry note).
func BenchmarkRec(b *testing.B) {
	prev := Active()
	defer Install(prev)
	Enable(DefaultCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rec(kindBeta, 1, 2, 3, 4)
	}
}

// BenchmarkRecDisabled measures the disabled fast path: one atomic
// load and a branch (the ISSUE's <= ~10 ns/event criterion).
func BenchmarkRecDisabled(b *testing.B) {
	prev := Active()
	defer Install(prev)
	Disable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rec(kindBeta, 1, 2, 3, 4)
	}
}
