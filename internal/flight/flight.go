// Package flight is the µ-cuDNN in-process flight recorder: an
// always-on, fixed-capacity ring buffer of small typed events (kernel
// launches, workspace-arena growth, fallback-ladder transitions, fault
// shots, cache traffic) that answers "what was this process doing just
// now" — from a debug-server endpoint, a SIGQUIT dump, or a test.
//
// The design point is the recording path, not the reading path: Rec is
// called from the kernel execution hot path, so it must not allocate,
// must not lock, and must cost almost nothing when recording is
// disabled. Each ring slot is a fixed set of atomic words; a writer
// claims a slot with one atomic increment and publishes it
// seqlock-style (slot sequence stored before and after the payload), so
// a concurrent Snapshot either observes a fully published event or
// discards the slot. There are no mutexes anywhere on the record path
// and every slot field is atomic, so the recorder is clean under the
// race detector with writers and readers running concurrently.
//
// Payload integrity relies on the ring being large relative to writer
// concurrency: a writer stalled mid-publish while the rest of the
// process laps the whole ring could race a second writer on the same
// slot. With the default 4096-slot ring and nanosecond-scale writes
// that requires thousands of in-flight recorders, far beyond anything
// in this codebase; torn slots are still detected and dropped by the
// sequence check in all but that pathological case.
//
// Event kinds are registered once (package init) with a constant
// ucudnn_ev_* name — enforced by the metricname analyzer, mirroring the
// faults.Point contract — and an optional argument formatter, so a
// dumped event renders as e.g.
//
//	ucudnn_ev_kernel_launch handle=1 op=Forward divisions=4 ws=262144
package flight

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"regexp"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ucudnn/internal/causal"
)

// Name is a flight-recorder event name. Names are compile-time
// ucudnn_ev_* snake_case constants (enforced by the metricname
// analyzer), so the event universe is enumerable statically.
type Name string

// Kind identifies a registered event kind; the zero Kind is invalid.
type Kind uint8

// nameRe is the naming scheme Register enforces (mirrored by the
// metricname analyzer's compile-time rule).
var nameRe = regexp.MustCompile(`^ucudnn_ev(_[a-z0-9]+)+$`)

// Formatter renders an event's four argument words as a human-readable
// string ("handle=1 op=Forward ...").
type Formatter func(a, b, c, d int64) string

var (
	regMu     sync.Mutex
	kindNames []Name
	kindFmts  []Formatter
	kindIdx   = map[Name]Kind{}
)

// Register assigns a Kind to name, with an optional argument formatter
// (nil renders the raw words). It is meant to be called from package
// init functions; it panics on a name that is duplicated or violates
// the ucudnn_ev_* scheme, so a bad registration fails at program start,
// not at dump time.
func Register(name Name, format Formatter) Kind {
	regMu.Lock()
	defer regMu.Unlock()
	if !nameRe.MatchString(string(name)) {
		panic(fmt.Sprintf("flight: event name %q does not match the ucudnn_ev_* snake_case scheme", name))
	}
	if _, dup := kindIdx[name]; dup {
		panic(fmt.Sprintf("flight: event name %q registered twice", name))
	}
	if len(kindNames) >= 255 {
		panic("flight: too many event kinds (max 255)")
	}
	kindNames = append(kindNames, name)
	kindFmts = append(kindFmts, format)
	k := Kind(len(kindNames))
	kindIdx[name] = k
	return k
}

// Lookup resolves a registered event name to its Kind.
func Lookup(name Name) (Kind, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	k, ok := kindIdx[name]
	return k, ok
}

// kindInfo returns the name and formatter of k ("" for unknown kinds).
func kindInfo(k Kind) (string, Formatter) {
	regMu.Lock()
	defer regMu.Unlock()
	if k < 1 || int(k) > len(kindNames) {
		return "", nil
	}
	return string(kindNames[k-1]), kindFmts[k-1]
}

// Event is one recorded flight event, as read back by Snapshot.
type Event struct {
	// Seq is the 1-based global sequence number of the event.
	Seq uint64
	// TimeNS is the wall-clock timestamp (UnixNano) of the record call.
	TimeNS int64
	// Kind identifies the registered event kind.
	Kind Kind
	// A, B, C, D are the event's argument words; their meaning is
	// per-kind (see the registering package's formatter).
	A, B, C, D int64
	// Span is the causal scope the event was recorded under (see
	// internal/causal); 0 when correlation was off or no scope was open.
	Span uint64
}

// Name returns the registered name of the event's kind, or a
// placeholder for a kind recorded by a build this reader doesn't know.
func (e Event) Name() string {
	name, _ := kindInfo(e.Kind)
	if name == "" {
		return fmt.Sprintf("unknown_kind_%d", e.Kind)
	}
	return name
}

// Text renders the event's arguments through the kind's formatter.
func (e Event) Text() string {
	_, format := kindInfo(e.Kind)
	if format == nil {
		return fmt.Sprintf("a=%d b=%d c=%d d=%d", e.A, e.B, e.C, e.D)
	}
	return format(e.A, e.B, e.C, e.D)
}

// String renders "name args".
func (e Event) String() string { return e.Name() + " " + e.Text() }

// slot is one ring entry: sequence number published before (start) and
// after (end) the payload, seqlock-style. All fields are atomic, so
// concurrent writers and snapshot readers are race-free by
// construction; the sequence pair detects torn payloads.
type slot struct {
	start atomic.Uint64
	time  atomic.Int64
	kind  atomic.Int64
	a     atomic.Int64
	b     atomic.Int64
	c     atomic.Int64
	d     atomic.Int64
	span  atomic.Uint64
	end   atomic.Uint64
}

// Recorder is a fixed-capacity lock-free event ring. The zero value is
// not usable; use NewRecorder.
type Recorder struct {
	mask  uint64
	next  atomic.Uint64
	slots []slot
}

// DefaultCapacity is the ring size of the recorder installed at init.
const DefaultCapacity = 4096

// minCapacity bounds how small a ring can get before the
// laggard-writer window (see the package comment) becomes plausible.
const minCapacity = 64

// NewRecorder builds a recorder with at least the requested capacity,
// rounded up to a power of two (minimum 64 slots).
func NewRecorder(capacity int) *Recorder {
	n := minCapacity
	for n < capacity {
		n <<= 1
	}
	return &Recorder{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Capacity returns the ring's slot count.
func (r *Recorder) Capacity() int { return len(r.slots) }

// Total returns how many events have been recorded over the recorder's
// lifetime (recorded, not retained: the ring keeps the last Capacity).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Dropped returns how many events the ring has overwritten (lifetime
// total minus capacity, once the ring has wrapped). Exported as
// ucudnn_ev_dropped_total so truncation is visible instead of silent.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if t, c := r.next.Load(), uint64(len(r.slots)); t > c {
		return t - c
	}
	return 0
}

// Record appends one event to the ring: claim a sequence number,
// publish start, payload, end. Allocation-free and lock-free.
//
//ucudnn:hotpath
func (r *Recorder) Record(k Kind, a, b, c, d int64) {
	seq := r.next.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.start.Store(seq)
	s.time.Store(time.Now().UnixNano())
	s.kind.Store(int64(k))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.d.Store(d)
	s.span.Store(uint64(causal.Current()))
	s.end.Store(seq)
}

// Snapshot returns up to max of the most recent events, oldest first
// (max <= 0 means all retained). Slots being concurrently rewritten are
// detected by their sequence pair and skipped, so a snapshot taken
// under recording load returns only fully published events.
func (r *Recorder) Snapshot(max int) []Event {
	if r == nil {
		return nil
	}
	head := r.next.Load()
	n := head
	if ringCap := uint64(len(r.slots)); n > ringCap {
		n = ringCap
	}
	if max > 0 && n > uint64(max) {
		n = uint64(max)
	}
	out := make([]Event, 0, n)
	for seq := head - n + 1; seq <= head; seq++ {
		s := &r.slots[(seq-1)&r.mask]
		if s.end.Load() != seq {
			continue // not yet published, or already overwritten
		}
		e := Event{
			Seq:    seq,
			TimeNS: s.time.Load(),
			Kind:   Kind(s.kind.Load()),
			A:      s.a.Load(),
			B:      s.b.Load(),
			C:      s.c.Load(),
			D:      s.d.Load(),
			Span:   s.span.Load(),
		}
		if s.start.Load() != seq {
			continue // a writer began rewriting the slot under us
		}
		out = append(out, e)
	}
	return out
}

// active is the installed recorder; nil disables recording and makes
// Rec a single atomic load plus a branch.
var active atomic.Pointer[Recorder]

func init() { active.Store(NewRecorder(DefaultCapacity)) }

// Install makes r the recorder Rec writes to; Install(nil) disables
// recording (Disable is the readable spelling).
func Install(r *Recorder) { active.Store(r) }

// Enable installs a fresh recorder with the given capacity and returns
// it (the previous ring and its events are dropped).
func Enable(capacity int) *Recorder {
	r := NewRecorder(capacity)
	active.Store(r)
	return r
}

// Disable turns recording off; Rec becomes an atomic load + branch.
func Disable() { active.Store(nil) }

// Active returns the installed recorder (nil when disabled).
func Active() *Recorder { return active.Load() }

// Rec records one event of kind k on the active recorder. This is the
// instrumentation entry point threaded through the kernel execution
// path: allocation-free when enabled, an atomic load and a branch when
// disabled.
//
//ucudnn:hotpath
func Rec(k Kind, a, b, c, d int64) {
	r := active.Load()
	if r == nil {
		return
	}
	r.Record(k, a, b, c, d)
}

// Events snapshots the active recorder (nil when disabled); see
// Recorder.Snapshot.
func Events(max int) []Event { return Active().Snapshot(max) }

// dumpEvents is how many trailing events a Dump renders.
const dumpEvents = 128

var (
	secMu    sync.Mutex
	sections []func(io.Writer)
)

// RegisterDumpSection appends a section writer that Dump invokes after
// the event listing, so other subsystems (the profiler's top-phase
// summary, say) can ride along in the SIGQUIT dump without flight
// importing them. Meant to be called from package init functions.
func RegisterDumpSection(f func(io.Writer)) {
	if f == nil {
		return
	}
	secMu.Lock()
	sections = append(sections, f)
	secMu.Unlock()
}

// Dump writes a human-readable snapshot of the active recorder to w:
// total counts and the last few events, timestamped with wall-clock
// time of day, followed by any registered dump sections.
func Dump(w io.Writer) {
	r := Active()
	if r == nil {
		fmt.Fprintln(w, "flight: recorder disabled")
	} else {
		evs := r.Snapshot(dumpEvents)
		fmt.Fprintf(w, "flight: %d events recorded (ring capacity %d), last %d:\n",
			r.Total(), r.Capacity(), len(evs))
		for _, e := range evs {
			fmt.Fprintf(w, "  [%d] %s %s\n",
				e.Seq, time.Unix(0, e.TimeNS).Format("15:04:05.000000"), e.String())
		}
	}
	secMu.Lock()
	secs := make([]func(io.Writer), len(sections))
	copy(secs, sections)
	secMu.Unlock()
	for _, f := range secs {
		f(w)
	}
}

var sigOnce sync.Once

// DumpOnSignal installs a SIGQUIT handler that dumps the flight
// recorder to stderr, so a live process can be asked what it is doing
// (kill -QUIT <pid>, or ctrl-\ on a terminal) even with no debug
// server running. The process keeps running afterwards — note this
// replaces the Go runtime's default SIGQUIT behaviour (stack dump and
// exit). Installing twice is a no-op; the CLIs call it at startup.
func DumpOnSignal() {
	sigOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGQUIT)
		go func() {
			for range ch {
				Dump(os.Stderr)
			}
		}()
	})
}
