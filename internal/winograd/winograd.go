// Package winograd generates and applies Winograd minimal-filtering
// transforms F(m x m, r x r), as used by cuDNN's WINOGRAD convolution
// algorithms (Lavin & Gray, CVPR 2016).
//
// A 1-D transform F(m, r) computes m outputs of a correlation with an
// r-tap filter using alpha = m+r-1 multiplications:
//
//	y = Aᵀ [ (G g) ⊙ (Bᵀ d) ]
//
// where g is the filter (length r), d the input tile (length alpha), and
// Aᵀ (m x alpha), G (alpha x r), Bᵀ (alpha x alpha) are the transform
// matrices. The 2-D form nests the 1-D transforms:
//
//	Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//
// Rather than hard-coding published matrices, this package derives Bᵀ for
// arbitrary (m, r) from the Cook–Toom interpolation structure: Aᵀ and G
// are Vandermonde-style evaluations at the standard point set
// {0, 1, -1, 2, -2, ½, -½, ...} (plus the point at infinity), and Bᵀ is
// the unique solution of the filtering identity, solved exactly as a
// linear system and verified before use.
package winograd

import (
	"fmt"
	"math"
)

// Transform holds the matrices of a Winograd minimal filtering algorithm
// F(m x m, r x r). All matrices are stored row-major in float64 (used for
// generation/verification) with float32 copies for the compute kernels.
type Transform struct {
	M     int // outputs per tile (per dimension)
	R     int // filter taps (per dimension)
	Alpha int // tile size = M + R - 1

	AT []float64 // M x Alpha
	G  []float64 // Alpha x R
	BT []float64 // Alpha x Alpha

	at32, g32, bt32 []float32
	// Transposes, for the adjoint (backward-filter) path.
	a32, gt32, b32 []float32
}

// standardPoints is the canonical Cook–Toom interpolation point sequence.
// Good points keep the transform entries small, which controls the FP32
// error growth of large tiles.
var standardPoints = []float64{0, 1, -1, 2, -2, 0.5, -0.5, 4, -4, 0.25, -0.25, 3, -3}

// NewTransform derives and verifies the F(m x m, r x r) transform.
// m >= 1, r >= 2, and m+r-1 must not exceed the available point set.
func NewTransform(m, r int) (*Transform, error) {
	if m < 1 || r < 2 {
		return nil, fmt.Errorf("winograd: F(%d,%d) not supported (need m>=1, r>=2)", m, r)
	}
	alpha := m + r - 1
	if alpha-1 > len(standardPoints) {
		return nil, fmt.Errorf("winograd: F(%d,%d) needs %d interpolation points, have %d", m, r, alpha-1, len(standardPoints))
	}
	pts := standardPoints[:alpha-1] // finite points; the last point is at infinity

	t := &Transform{M: m, R: r, Alpha: alpha}
	t.AT = make([]float64, m*alpha)
	for u := 0; u < m; u++ {
		for j := 0; j < alpha-1; j++ {
			t.AT[u*alpha+j] = math.Pow(pts[j], float64(u))
		}
	}
	t.AT[(m-1)*alpha+alpha-1] = 1 // point at infinity contributes to the last output

	// G[j][l] = p_j^l / N_j, N_j = prod_{k!=j}(p_j - p_k); infinity row picks
	// the leading filter coefficient.
	t.G = make([]float64, alpha*r)
	for j := 0; j < alpha-1; j++ {
		nj := 1.0
		for k := 0; k < alpha-1; k++ {
			if k != j {
				nj *= pts[j] - pts[k]
			}
		}
		for l := 0; l < r; l++ {
			t.G[j*r+l] = math.Pow(pts[j], float64(l)) / nj
		}
	}
	t.G[(alpha-1)*r+r-1] = 1
	// Normalize each G row to a positive leading entry (the sign of a row
	// cancels between G and Bᵀ in the product, since Bᵀ is solved below
	// against this G). This matches the published F(2,3) matrices.
	for j := 0; j < alpha; j++ {
		for l := 0; l < r; l++ {
			v := t.G[j*r+l]
			if v == 0 {
				continue
			}
			if v < 0 {
				for ll := 0; ll < r; ll++ {
					t.G[j*r+ll] = -t.G[j*r+ll]
				}
			}
			break
		}
	}

	// Bᵀ is determined by the filtering identity
	//   y_u = Σ_v d_{u+v} g_v  =  Σ_j AT[u][j] (Bᵀ d)_j (G g)_j .
	// Matching the coefficient of d_i g_l on both sides gives, per column i
	// of Bᵀ, the linear system H x = e_i with
	//   H[(u,l)][j] = AT[u][j] * G[j][l]
	// and e_i[(u,l)] = 1 iff i == u + l. H is (m*r) x alpha with full column
	// rank for distinct points, so each column is solved by least squares
	// (the residual is verified to be numerically zero).
	h := make([]float64, m*r*alpha)
	for u := 0; u < m; u++ {
		for l := 0; l < r; l++ {
			row := (u*r + l) * alpha
			for j := 0; j < alpha; j++ {
				h[row+j] = t.AT[u*alpha+j] * t.G[j*r+l]
			}
		}
	}
	t.BT = make([]float64, alpha*alpha)
	rhs := make([]float64, m*r)
	for i := 0; i < alpha; i++ {
		for u := 0; u < m; u++ {
			for l := 0; l < r; l++ {
				if u+l == i {
					rhs[u*r+l] = 1
				} else {
					rhs[u*r+l] = 0
				}
			}
		}
		col, err := solveLeastSquares(h, rhs, m*r, alpha)
		if err != nil {
			return nil, fmt.Errorf("winograd: F(%d,%d): %v", m, r, err)
		}
		for j := 0; j < alpha; j++ {
			t.BT[j*alpha+i] = col[j]
		}
	}

	if err := t.verify(); err != nil {
		return nil, err
	}
	t.buildFloat32()
	return t, nil
}

// verify checks the 1-D filtering identity coefficientwise.
func (t *Transform) verify() error {
	m, r, alpha := t.M, t.R, t.Alpha
	for u := 0; u < m; u++ {
		for i := 0; i < alpha; i++ {
			for l := 0; l < r; l++ {
				var got float64
				for j := 0; j < alpha; j++ {
					got += t.AT[u*alpha+j] * t.BT[j*alpha+i] * t.G[j*r+l]
				}
				want := 0.0
				if u+l == i {
					want = 1
				}
				if math.Abs(got-want) > 1e-8 {
					return fmt.Errorf("winograd: F(%d,%d) identity violated at u=%d i=%d l=%d: got %g want %g", m, r, u, i, l, got, want)
				}
			}
		}
	}
	return nil
}

func (t *Transform) buildFloat32() {
	to32 := func(x []float64) []float32 {
		y := make([]float32, len(x))
		for i, v := range x {
			y[i] = float32(v)
		}
		return y
	}
	t.at32 = to32(t.AT)
	t.g32 = to32(t.G)
	t.bt32 = to32(t.BT)
	t.a32 = transpose32(t.at32, t.M, t.Alpha)
	t.gt32 = transpose32(t.g32, t.Alpha, t.R)
	t.b32 = transpose32(t.bt32, t.Alpha, t.Alpha)
}

func transpose32(x []float32, rows, cols int) []float32 {
	y := make([]float32, len(x))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			y[j*rows+i] = x[i*cols+j]
		}
	}
	return y
}

// matmul32 computes dst = a (ra x ca) * b (ca x cb), all row-major.
func matmul32(dst, a, b []float32, ra, ca, cb int) {
	for i := 0; i < ra; i++ {
		for j := 0; j < cb; j++ {
			var s float32
			for k := 0; k < ca; k++ {
				s += a[i*ca+k] * b[k*cb+j]
			}
			dst[i*cb+j] = s
		}
	}
}

// FilterTransform computes U = G g Gᵀ, mapping an r x r filter tile to an
// alpha x alpha spectral tile. tmp must have alpha*r capacity.
func (t *Transform) FilterTransform(dst, g, tmp []float32) {
	matmul32(tmp, t.g32, g, t.Alpha, t.R, t.R)        // (alpha x r) = G * g
	matmul32(dst, tmp, t.gt32, t.Alpha, t.R, t.Alpha) // (alpha x alpha) = tmp * Gᵀ
}

// InputTransform computes V = Bᵀ d B, mapping an alpha x alpha input tile
// to its spectral form. tmp must have alpha*alpha capacity.
func (t *Transform) InputTransform(dst, d, tmp []float32) {
	matmul32(tmp, t.bt32, d, t.Alpha, t.Alpha, t.Alpha)
	matmul32(dst, tmp, t.b32, t.Alpha, t.Alpha, t.Alpha)
}

// OutputTransform computes Y = Aᵀ M A, mapping an alpha x alpha spectral
// accumulator to the m x m output tile. tmp must have m*alpha capacity.
func (t *Transform) OutputTransform(dst, mAcc, tmp []float32) {
	matmul32(tmp, t.at32, mAcc, t.M, t.Alpha, t.Alpha)
	matmul32(dst, tmp, t.a32, t.M, t.Alpha, t.M)
}

// OutputAdjoint computes W = A y Aᵀ, the adjoint of OutputTransform; it
// maps an m x m output-gradient tile into spectral space (used by the
// backward-filter path). tmp must have alpha*m capacity.
func (t *Transform) OutputAdjoint(dst, y, tmp []float32) {
	matmul32(tmp, t.a32, y, t.Alpha, t.M, t.M)
	matmul32(dst, tmp, t.at32, t.Alpha, t.M, t.Alpha)
}

// FilterAdjoint computes g = Gᵀ U G, the adjoint of FilterTransform; it
// maps a spectral accumulator back to an r x r filter-gradient tile. tmp
// must have r*alpha capacity.
func (t *Transform) FilterAdjoint(dst, u, tmp []float32) {
	matmul32(tmp, t.gt32, u, t.R, t.Alpha, t.Alpha)
	matmul32(dst, tmp, t.g32, t.R, t.Alpha, t.R)
}

// solveLeastSquares solves min ||Hx - b|| for H (rows x cols, row-major)
// via the normal equations, requiring the residual to be ~0 (the systems
// solved here are consistent by construction).
func solveLeastSquares(h, b []float64, rows, cols int) ([]float64, error) {
	// Form Hᵀ H (cols x cols) and Hᵀ b.
	m := make([]float64, cols*cols)
	v := make([]float64, cols)
	for i := 0; i < rows; i++ {
		hi := h[i*cols : (i+1)*cols]
		for a := 0; a < cols; a++ {
			v[a] += hi[a] * b[i]
			for c := a; c < cols; c++ {
				m[a*cols+c] += hi[a] * hi[c]
			}
		}
	}
	for a := 0; a < cols; a++ {
		for c := 0; c < a; c++ {
			m[a*cols+c] = m[c*cols+a]
		}
	}
	x, err := solveDense(m, v, cols)
	if err != nil {
		return nil, err
	}
	// Verify consistency.
	var res float64
	for i := 0; i < rows; i++ {
		s := -b[i]
		for j := 0; j < cols; j++ {
			s += h[i*cols+j] * x[j]
		}
		res += s * s
	}
	if res > 1e-16*float64(rows) {
		return nil, fmt.Errorf("inconsistent system (residual %g)", res)
	}
	return x, nil
}

// solveDense solves the n x n system m x = v by Gaussian elimination with
// partial pivoting. m and v are clobbered.
func solveDense(m, v []float64, n int) ([]float64, error) {
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r*n+col]) > math.Abs(m[p*n+col]) {
				p = r
			}
		}
		if math.Abs(m[p*n+col]) < 1e-12 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				m[col*n+j], m[p*n+j] = m[p*n+j], m[col*n+j]
			}
			v[col], v[p] = v[p], v[col]
		}
		piv := m[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] / piv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m[r*n+j] -= f * m[col*n+j]
			}
			v[r] -= f * v[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := v[r]
		for j := r + 1; j < n; j++ {
			s -= m[r*n+j] * x[j]
		}
		x[r] = s / m[r*n+r]
	}
	return x, nil
}
