package winograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// correlate1D computes the valid correlation of d (length alpha) with g
// (length r), producing m = alpha-r+1 outputs.
func correlate1D(d, g []float64) []float64 {
	m := len(d) - len(g) + 1
	y := make([]float64, m)
	for u := 0; u < m; u++ {
		for v := range g {
			y[u] += d[u+v] * g[v]
		}
	}
	return y
}

func winograd1D(t *Transform, d, g []float64) []float64 {
	alpha := t.Alpha
	bd := make([]float64, alpha)
	gg := make([]float64, alpha)
	for j := 0; j < alpha; j++ {
		for i := 0; i < alpha; i++ {
			bd[j] += t.BT[j*alpha+i] * d[i]
		}
		for l := 0; l < t.R; l++ {
			gg[j] += t.G[j*t.R+l] * g[l]
		}
	}
	y := make([]float64, t.M)
	for u := 0; u < t.M; u++ {
		for j := 0; j < alpha; j++ {
			y[u] += t.AT[u*alpha+j] * bd[j] * gg[j]
		}
	}
	return y
}

func TestF23MatchesLavinShape(t *testing.T) {
	tr, err := NewTransform(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Alpha != 4 {
		t.Fatalf("alpha = %d, want 4", tr.Alpha)
	}
	// With points {0, 1, -1, inf}, AT must be [[1,1,1,0],[0,1,-1,1]].
	wantAT := []float64{1, 1, 1, 0, 0, 1, -1, 1}
	for i, w := range wantAT {
		if math.Abs(tr.AT[i]-w) > 1e-12 {
			t.Fatalf("AT[%d] = %g, want %g", i, tr.AT[i], w)
		}
	}
	// G rows: g(0), g(1)/2, g(-1)/2 (sign depends on N_j), leading coeff.
	wantG := []float64{
		1, 0, 0,
		0.5, 0.5, 0.5,
		0.5, -0.5, 0.5,
		0, 0, 1,
	}
	for i, w := range wantG {
		if math.Abs(tr.G[i]-w) > 1e-12 {
			t.Fatalf("G[%d] = %g, want %g", i, tr.G[i], w)
		}
	}
}

func test1DEquivalence(t *testing.T, m, r int) {
	t.Helper()
	tr, err := NewTransform(m, r)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(m*10 + r)))
	for trial := 0; trial < 20; trial++ {
		d := make([]float64, tr.Alpha)
		g := make([]float64, r)
		for i := range d {
			d[i] = rng.Float64()*2 - 1
		}
		for i := range g {
			g[i] = rng.Float64()*2 - 1
		}
		want := correlate1D(d, g)
		got := winograd1D(tr, d, g)
		for u := range want {
			if math.Abs(got[u]-want[u]) > 1e-8 {
				t.Fatalf("F(%d,%d) trial %d: y[%d] = %g, want %g", m, r, trial, u, got[u], want[u])
			}
		}
	}
}

func TestF23(t *testing.T) { test1DEquivalence(t, 2, 3) }
func TestF43(t *testing.T) { test1DEquivalence(t, 4, 3) }
func TestF63(t *testing.T) { test1DEquivalence(t, 6, 3) }
func TestF25(t *testing.T) { test1DEquivalence(t, 2, 5) }
func TestF45(t *testing.T) { test1DEquivalence(t, 4, 5) }
func TestF27(t *testing.T) { test1DEquivalence(t, 2, 7) }
func TestF12(t *testing.T) { test1DEquivalence(t, 1, 2) }

func TestUnsupported(t *testing.T) {
	if _, err := NewTransform(0, 3); err == nil {
		t.Fatal("m=0 should fail")
	}
	if _, err := NewTransform(2, 1); err == nil {
		t.Fatal("r=1 should fail")
	}
	if _, err := NewTransform(20, 20); err == nil {
		t.Fatal("huge tile should exhaust the point set")
	}
}

// 2-D nested identity: Y = AT [ (G g GT) ⊙ (BT d B) ] A equals the direct
// 2-D valid correlation.
func TestNested2D(t *testing.T) {
	for _, mr := range [][2]int{{2, 3}, {4, 3}, {6, 3}, {2, 5}} {
		m, r := mr[0], mr[1]
		tr, err := NewTransform(m, r)
		if err != nil {
			t.Fatal(err)
		}
		alpha := tr.Alpha
		rng := rand.New(rand.NewSource(int64(100*m + r)))
		d := make([]float32, alpha*alpha)
		g := make([]float32, r*r)
		for i := range d {
			d[i] = rng.Float32()*2 - 1
		}
		for i := range g {
			g[i] = rng.Float32()*2 - 1
		}
		// Direct 2-D correlation.
		want := make([]float64, m*m)
		for u := 0; u < m; u++ {
			for v := 0; v < m; v++ {
				var s float64
				for a := 0; a < r; a++ {
					for b := 0; b < r; b++ {
						s += float64(d[(u+a)*alpha+v+b]) * float64(g[a*r+b])
					}
				}
				want[u*m+v] = s
			}
		}
		// Winograd path via the float32 kernels.
		u32 := make([]float32, alpha*alpha)
		v32 := make([]float32, alpha*alpha)
		tmp := make([]float32, alpha*alpha)
		tr.FilterTransform(u32, g, tmp)
		tr.InputTransform(v32, d, tmp)
		macc := make([]float32, alpha*alpha)
		for i := range macc {
			macc[i] = u32[i] * v32[i]
		}
		y := make([]float32, m*m)
		tr.OutputTransform(y, macc, tmp)
		for i := range want {
			if math.Abs(float64(y[i])-want[i]) > 1e-4 {
				t.Fatalf("F(%dx%d,%dx%d): Y[%d] = %g, want %g", m, m, r, r, i, y[i], want[i])
			}
		}
	}
}

// The adjoint pair must satisfy <A y AT, U> == <y, AT U A> (i.e.
// OutputAdjoint is the true adjoint of OutputTransform), which is what
// makes the backward-filter path exact.
func TestAdjointProperty(t *testing.T) {
	tr, err := NewTransform(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	alpha, m := tr.Alpha, tr.M
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		y := make([]float32, m*m)
		u := make([]float32, alpha*alpha)
		for i := range y {
			y[i] = rng.Float32()*2 - 1
		}
		for i := range u {
			u[i] = rng.Float32()*2 - 1
		}
		tmp := make([]float32, alpha*alpha)
		// lhs = <OutputAdjoint(y), u>
		ay := make([]float32, alpha*alpha)
		tr.OutputAdjoint(ay, y, tmp)
		var lhs float64
		for i := range ay {
			lhs += float64(ay[i]) * float64(u[i])
		}
		// rhs = <y, OutputTransform(u)>
		out := make([]float32, m*m)
		tr.OutputTransform(out, u, tmp)
		var rhs float64
		for i := range out {
			rhs += float64(y[i]) * float64(out[i])
		}
		return math.Abs(lhs-rhs) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterAdjointProperty(t *testing.T) {
	tr, err := NewTransform(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	alpha, r := tr.Alpha, tr.R
	rng := rand.New(rand.NewSource(11))
	g := make([]float32, r*r)
	u := make([]float32, alpha*alpha)
	for i := range g {
		g[i] = rng.Float32()
	}
	for i := range u {
		u[i] = rng.Float32()
	}
	tmp := make([]float32, alpha*alpha)
	// <FilterTransform(g), u> == <g, FilterAdjoint(u)>
	fg := make([]float32, alpha*alpha)
	tr.FilterTransform(fg, g, tmp)
	var lhs float64
	for i := range fg {
		lhs += float64(fg[i]) * float64(u[i])
	}
	au := make([]float32, r*r)
	tr.FilterAdjoint(au, u, tmp)
	var rhs float64
	for i := range au {
		rhs += float64(g[i]) * float64(au[i])
	}
	if math.Abs(lhs-rhs) > 1e-4 {
		t.Fatalf("filter adjoint: %g vs %g", lhs, rhs)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	m := []float64{1, 2, 2, 4}
	v := []float64{1, 2}
	if _, err := solveDense(m, v, 2); err == nil {
		t.Fatal("singular system should error")
	}
}

func TestSolveDenseKnown(t *testing.T) {
	// 2x + y = 5; x - y = 1 -> x=2, y=1.
	m := []float64{2, 1, 1, -1}
	v := []float64{5, 1}
	x, err := solveDense(m, v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("solve = %v", x)
	}
}
