package faults

import (
	"testing"

	"ucudnn/internal/flight"
)

func TestPointIndexAndEffectCode(t *testing.T) {
	seen := map[int64]bool{}
	for _, p := range knownPoints {
		i := pointIndex(p)
		if i < 1 || int(i) > len(knownPoints) || seen[i] {
			t.Fatalf("pointIndex(%s) = %d", p, i)
		}
		seen[i] = true
	}
	if pointIndex(Point("ucudnn_fp_nope")) != 0 { //ucudnn:allow faultpoint -- deliberately unknown point
		t.Fatal("unknown point did not map to 0")
	}
	for code, name := range effectNames {
		if code == 0 {
			continue
		}
		if got := effectCode(name); got != int64(code) {
			t.Errorf("effectCode(%q) = %d, want %d", name, got, code)
		}
	}
	if effectCode("shrink:8") != 0 {
		t.Error("divisor-suffixed effect string should be unknown (the divisor rides in d)")
	}
}

// TestFaultShotEvents fires each helper shape and checks the flight
// recorder saw a correctly coded shot for every one.
func TestFaultShotEvents(t *testing.T) {
	prevFlight := flight.Active()
	defer flight.Install(prevFlight)
	flight.Enable(256)
	defer Install(nil)

	r := New(
		Rule{Point: PointConvolve, Trigger: Nth(1)},
		Rule{Point: PointKernelRun, Trigger: Nth(1)},
		Rule{Point: PointCacheLoad, Trigger: Nth(1)},
		Rule{Point: PointArenaGrow, Trigger: EveryK(1), Shrink: 8},
		Rule{Point: PointDnnWorkspace, Trigger: Nth(1)},
	)
	Install(r)

	if Err(PointConvolve) == nil {
		t.Fatal("armed Err did not fire")
	}
	if !Hit(PointKernelRun) {
		t.Fatal("armed Hit did not fire")
	}
	Mangle(PointCacheLoad, []byte("x"))
	if got := Grant(PointArenaGrow, 800); got != 100 {
		t.Fatalf("shrink grant = %d, want 100", got)
	}
	if got := Grant(PointDnnWorkspace, 800); got != 0 {
		t.Fatalf("deny grant = %d, want 0", got)
	}
	// Unfired evaluations record nothing: the nth:1 rules are spent.
	if Err(PointConvolve) != nil {
		t.Fatal("spent rule fired again")
	}

	want := map[string]string{
		"point=ucudnn_fp_convolve call=1 effect=error":          "",
		"point=ucudnn_fp_kernel_run call=1 effect=skip":         "",
		"point=ucudnn_fp_cache_load call=1 effect=corrupt":      "",
		"point=ucudnn_fp_arena_grow call=1 effect=shrink div=8": "",
		"point=ucudnn_fp_dnn_workspace call=1 effect=deny":      "",
	}
	evs := flight.Events(0)
	if len(evs) != len(want) {
		t.Fatalf("recorded %d events, want %d: %v", len(evs), len(want), evs)
	}
	for _, e := range evs {
		if e.Name() != string(EvFaultShot) {
			t.Fatalf("unexpected event %s", e.Name())
		}
		if _, ok := want[e.Text()]; !ok {
			t.Fatalf("unexpected shot text %q", e.Text())
		}
		delete(want, e.Text())
	}
	if len(want) != 0 {
		t.Fatalf("missing shots: %v", want)
	}
}

func TestFaultShotFormatterUnknowns(t *testing.T) {
	k, ok := flight.Lookup(EvFaultShot)
	if !ok {
		t.Fatal("EvFaultShot not registered")
	}
	e := flight.Event{Kind: k, A: 99, B: 2, C: 42}
	if want := "point=unknown call=2 effect=?"; e.Text() != want {
		t.Fatalf("unknown shot text = %q, want %q", e.Text(), want)
	}
}
