package faults

import (
	"strconv"

	"ucudnn/internal/flight"
)

// EvFaultShot is the flight-recorder event emitted for every fired
// injection: a=point index (1-based position in knownPoints, 0 for a
// point this build doesn't know), b=1-based per-point call count,
// c=effect code (1=error, 2=skip, 3=deny, 4=shrink, 5=corrupt),
// d=shrink divisor (shrink effect only).
const EvFaultShot flight.Name = "ucudnn_ev_fault_shot"

var evFaultShot = flight.Register(EvFaultShot, fmtFaultShot)

// knownPoints indexes the stack's injection points for the event's
// point argument — flight events carry integer words, not strings.
var knownPoints = [...]Point{
	PointKernelRun, PointConvolve, PointFind,
	PointArenaGrow, PointDnnWorkspace, PointCacheLoad,
	PointOOCFetch, PointOOCSpill, PointOOCPlan,
}

// Effect codes carried in EvFaultShot's c word; effectNames[code] is
// the Shot.Effect spelling (shrink drops its ":N" divisor suffix, which
// rides in the d word instead).
const (
	effectError int64 = iota + 1
	effectSkip
	effectDeny
	effectShrink
	effectCorrupt
)

var effectNames = [...]string{"?", "error", "skip", "deny", "shrink", "corrupt"}

// pointIndex returns p's 1-based position in knownPoints (0 unknown).
func pointIndex(p Point) int64 {
	for i, kp := range knownPoints {
		if kp == p {
			return int64(i + 1)
		}
	}
	return 0
}

// effectCode inverts effectNames for fire's effect strings (0 unknown).
func effectCode(effect string) int64 {
	for i, n := range effectNames {
		if n == effect {
			return int64(i)
		}
	}
	return 0
}

func fmtFaultShot(a, b, c, d int64) string {
	point := "unknown"
	if a >= 1 && int(a) <= len(knownPoints) {
		point = string(knownPoints[a-1])
	}
	effect := "?"
	if c >= 1 && int(c) < len(effectNames) {
		effect = effectNames[c]
	}
	s := "point=" + point + " call=" + strconv.FormatInt(b, 10) + " effect=" + effect
	if c == effectShrink {
		s += " div=" + strconv.FormatInt(d, 10)
	}
	return s
}
