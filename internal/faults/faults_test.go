package faults

import (
	"errors"
	"strings"
	"testing"

	"ucudnn/internal/obs"
)

func TestNthTrigger(t *testing.T) {
	r := New(Rule{Point: PointConvolve, Trigger: Nth(3)})
	for i := 1; i <= 5; i++ {
		err := r.Err(PointConvolve)
		if (i == 3) != (err != nil) {
			t.Fatalf("call %d: err = %v, want fire exactly on call 3", i, err)
		}
		if err != nil {
			var inj *InjectedError
			if !errors.As(err, &inj) || inj.Point != PointConvolve || inj.Call != 3 {
				t.Fatalf("injected error = %v, want point %s call 3", err, PointConvolve)
			}
		}
	}
}

func TestEveryKTrigger(t *testing.T) {
	r := New(Rule{Point: PointFind, Trigger: EveryK(2)})
	var fired []int
	for i := 1; i <= 6; i++ {
		if r.Hit(PointFind) {
			fired = append(fired, i)
		}
	}
	want := []int{2, 4, 6}
	if len(fired) != len(want) {
		t.Fatalf("fired on calls %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on calls %v, want %v", fired, want)
		}
	}
}

func TestProbTriggerDeterministic(t *testing.T) {
	run := func() []int64 {
		r := New(Rule{Point: PointKernelRun, Trigger: Prob(0.3, 42)})
		for i := 0; i < 100; i++ {
			r.Err(PointKernelRun)
		}
		var calls []int64
		for _, s := range r.Shots() {
			calls = append(calls, s.Call)
		}
		return calls
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("prob(0.3) never fired in 100 calls")
	}
	if len(a) != len(b) {
		t.Fatalf("two seeded runs fired %d vs %d times", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverge: %v vs %v", a, b)
		}
	}
}

func TestGrantShrinkAndDeny(t *testing.T) {
	r := New(
		Rule{Point: PointArenaGrow, Trigger: Nth(2), Shrink: 4},
		Rule{Point: PointDnnWorkspace, Trigger: Nth(1)},
	)
	if got := r.Grant(PointArenaGrow, 1024); got != 1024 {
		t.Fatalf("unfired grant = %d, want passthrough 1024", got)
	}
	if got := r.Grant(PointArenaGrow, 1024); got != 256 {
		t.Fatalf("shrunk grant = %d, want 1024/4", got)
	}
	if got := r.Grant(PointDnnWorkspace, 1024); got != 0 {
		t.Fatalf("denied grant = %d, want 0", got)
	}
	log := r.ShotLog()
	if !strings.Contains(log, "shrink:4") || !strings.Contains(log, "deny") {
		t.Fatalf("shot log %q missing shrink/deny effects", log)
	}
}

func TestMangle(t *testing.T) {
	r := New(Rule{Point: PointCacheLoad, Trigger: Nth(2)})
	line := []byte(`{"key":"k"}`)
	if got := r.Mangle(PointCacheLoad, line); string(got) != string(line) {
		t.Fatalf("unfired mangle changed data: %q", got)
	}
	got := r.Mangle(PointCacheLoad, line)
	if string(got) == string(line) {
		t.Fatal("fired mangle left data intact")
	}
	if string(line) != `{"key":"k"}` {
		t.Fatalf("mangle modified its input in place: %q", line)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"ucudnn_fp_convolve=nth:3",
		"ucudnn_fp_find=every:2;ucudnn_fp_arena_grow=nth:1,shrink=4",
		"ucudnn_fp_kernel_run=prob:0.25:7",
	}
	for _, spec := range specs {
		r, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := r.String(); got != spec {
			t.Fatalf("round trip: Parse(%q).String() = %q", spec, got)
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"convolve=nth:3",                    // point not ucudnn_fp_*
		"ucudnn_fp_convolve",                // no trigger
		"ucudnn_fp_convolve=nth:0",          // non-positive count
		"ucudnn_fp_convolve=sometimes:1",    // unknown kind
		"ucudnn_fp_convolve=prob:1.5:1",     // probability out of range
		"ucudnn_fp_convolve=nth:1,shrink=1", // shrink < 2
		"ucudnn_fp_convolve=nth:1,frob=2",   // unknown option
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestReplayFromSpecReproducesShots(t *testing.T) {
	spec := "ucudnn_fp_convolve=prob:0.4:99;ucudnn_fp_find=every:3"
	drive := func(r *Registry) string {
		for i := 0; i < 50; i++ {
			r.Err(PointConvolve)
			r.Hit(PointFind)
		}
		return r.ShotLog()
	}
	r1, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Parse(r1.String())
	if err != nil {
		t.Fatal(err)
	}
	if a, b := drive(r1), drive(r2); a != b {
		t.Fatalf("replay diverged:\n first: %s\nsecond: %s", a, b)
	}
}

func TestGlobalInstall(t *testing.T) {
	if err := Err(PointConvolve); err != nil {
		t.Fatalf("disabled global injected: %v", err)
	}
	if got := Grant(PointArenaGrow, 64); got != 64 {
		t.Fatalf("disabled global grant = %d, want 64", got)
	}
	r := New(Rule{Point: PointConvolve, Trigger: Nth(1)})
	Install(r)
	defer Install(nil)
	if err := Err(PointConvolve); err == nil {
		t.Fatal("installed global did not inject")
	}
	Install(nil)
	if err := Err(PointConvolve); err != nil {
		t.Fatalf("uninstalled global injected: %v", err)
	}
}

func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Rule{Point: PointConvolve, Trigger: EveryK(1)})
	r.SetMetrics(reg)
	r.Err(PointConvolve)
	r.Err(PointConvolve)
	got := reg.Counter(MetricFaultInjected, obs.L("point", string(PointConvolve))).Value()
	if got != 2 {
		t.Fatalf("%s{point=%s} = %v, want 2", MetricFaultInjected, PointConvolve, got)
	}
}

func TestArmReplacesRule(t *testing.T) {
	r := New(Rule{Point: PointConvolve, Trigger: Nth(1)})
	r.Arm(Rule{Point: PointConvolve, Trigger: Nth(2)})
	if r.Hit(PointConvolve) {
		t.Fatal("replaced rule kept old trigger")
	}
	if !r.Hit(PointConvolve) {
		t.Fatal("replaced rule did not reset call count")
	}
	if got := r.String(); got != "ucudnn_fp_convolve=nth:2" {
		t.Fatalf("String() after re-arm = %q", got)
	}
}
