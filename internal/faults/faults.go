// Package faults is a deterministic, seedable fault-injection registry
// for exercising µ-cuDNN's degradation paths without real hardware
// failures. Code under test declares named injection points (the
// ucudnn_fp_* constants below); a test or CLI arms a Registry with one
// rule per point and installs it globally. Instrumented code consults
// the global registry through the package-level helpers (Err, Hit,
// Grant, Mangle), which are a single atomic load when no registry is
// installed — the production hot path pays one pointer compare.
//
// Every trigger is deterministic given its rule (probability triggers
// carry their own seed), and a Registry's canonical String() form
// round-trips through Parse, so any observed failure schedule can be
// replayed exactly from the printed spec alone.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ucudnn/internal/flight"
	"ucudnn/internal/obs"
)

// Point names one injection site threaded through the stack. Point names
// are compile-time ucudnn_fp_* constants (enforced by the faultpoint
// analyzer) so the set of sites is knowable statically.
type Point string

// The injection points wired through the µ-cuDNN stack.
const (
	// PointKernelRun fails conv.Run after validation, simulating a kernel
	// launch failure.
	PointKernelRun Point = "ucudnn_fp_kernel_run"
	// PointConvolve fails cudnn.Handle.Convolve at entry, simulating a
	// CUDNN_STATUS_EXECUTION_FAILED return.
	PointConvolve Point = "ucudnn_fp_convolve"
	// PointFind drops one algorithm candidate from cudnn.Handle.AlgoPerfs,
	// simulating a failed Find* benchmark entry.
	PointFind Point = "ucudnn_fp_find"
	// PointArenaGrow shrinks (or denies) core.Handle workspace-arena
	// growth, simulating a failed or partial device allocation.
	PointArenaGrow Point = "ucudnn_fp_arena_grow"
	// PointDnnWorkspace shrinks (or denies) dnn.Context.Workspace grants,
	// simulating framework-side workspace pressure.
	PointDnnWorkspace Point = "ucudnn_fp_dnn_workspace"
	// PointCacheLoad corrupts one line of the benchmark-cache file as it
	// is read, exercising the tolerant cache loader.
	PointCacheLoad Point = "ucudnn_fp_cache_load"
	// PointOOCFetch shrinks (or denies) an out-of-core micro-batch fetch,
	// simulating transfer pressure; the OOC executor degrades to finer
	// micro-batches.
	PointOOCFetch Point = "ucudnn_fp_ooc_fetch"
	// PointOOCSpill fails an out-of-core activation spill; the executor
	// drops the buffer, marks it for recompute and degrades.
	PointOOCSpill Point = "ucudnn_fp_ooc_spill"
	// PointOOCPlan forces the out-of-core planner to adopt a schedule one
	// rung finer than the memory model requires (conservative planning
	// under an unreliable allocator).
	PointOOCPlan Point = "ucudnn_fp_ooc_plan"
)

// MetricFaultInjected counts fired injections, labeled by point.
const MetricFaultInjected = "ucudnn_fault_injected_total"

// pointRe is the naming scheme Parse enforces (mirrors the faultpoint
// analyzer's compile-time rule).
var pointRe = regexp.MustCompile(`^ucudnn_fp(_[a-z0-9]+)+$`)

// TriggerKind selects a trigger policy.
type TriggerKind int

const (
	// NthKind fires on exactly the N-th evaluation (1-based).
	NthKind TriggerKind = iota
	// EveryKind fires on every N-th evaluation.
	EveryKind
	// ProbKind fires with probability P, drawn from a stream seeded with
	// Seed — deterministic across runs.
	ProbKind
)

// Trigger is a deterministic firing policy.
type Trigger struct {
	Kind TriggerKind
	N    int64
	P    float64
	Seed int64
}

// Nth fires on exactly the n-th evaluation (1-based).
func Nth(n int64) Trigger { return Trigger{Kind: NthKind, N: n} }

// EveryK fires on every k-th evaluation.
func EveryK(k int64) Trigger { return Trigger{Kind: EveryKind, N: k} }

// Prob fires with probability p from a stream seeded with seed.
func Prob(p float64, seed int64) Trigger { return Trigger{Kind: ProbKind, P: p, Seed: seed} }

// String returns the canonical spec form of the trigger.
func (t Trigger) String() string {
	switch t.Kind {
	case NthKind:
		return "nth:" + strconv.FormatInt(t.N, 10)
	case EveryKind:
		return "every:" + strconv.FormatInt(t.N, 10)
	case ProbKind:
		return "prob:" + strconv.FormatFloat(t.P, 'g', -1, 64) + ":" + strconv.FormatInt(t.Seed, 10)
	}
	return fmt.Sprintf("trigger(%d)", int(t.Kind))
}

// Rule arms one injection point. Shrink only applies to grant-shaped
// points (PointArenaGrow, PointDnnWorkspace): a fired rule divides the
// requested byte count by Shrink (a budget-shrink schedule); Shrink <= 1
// denies the grant outright. Error- and corruption-shaped points ignore
// it.
type Rule struct {
	Point   Point
	Trigger Trigger
	Shrink  int64
}

// String returns the canonical spec form of the rule.
func (r Rule) String() string {
	s := string(r.Point) + "=" + r.Trigger.String()
	if r.Shrink > 0 {
		s += ",shrink=" + strconv.FormatInt(r.Shrink, 10)
	}
	return s
}

// Shot records one fired injection: which point, on which evaluation
// (1-based per-point call count), and the effect applied.
type Shot struct {
	Point  Point
	Call   int64
	Effect string
}

func (s Shot) String() string {
	return fmt.Sprintf("%s@%d(%s)", s.Point, s.Call, s.Effect)
}

// armed is one rule's live evaluation state.
type armed struct {
	rule  Rule
	calls int64
	rng   *rand.Rand // ProbKind only
}

func (a *armed) eval() bool {
	t := a.rule.Trigger
	switch t.Kind {
	case NthKind:
		return a.calls == t.N
	case EveryKind:
		return t.N > 0 && a.calls%t.N == 0
	case ProbKind:
		return a.rng.Float64() < t.P
	}
	return false
}

// Registry holds armed rules (at most one per point; arming a point
// again replaces its rule) and the log of fired shots. It is safe for
// concurrent use.
type Registry struct {
	mu    sync.Mutex
	rules map[Point]*armed
	order []Point
	shots []Shot
	reg   *obs.Registry
}

// New builds a registry armed with the given rules.
func New(rules ...Rule) *Registry {
	r := &Registry{rules: map[Point]*armed{}}
	for _, rule := range rules {
		r.Arm(rule)
	}
	return r
}

// Arm installs (or replaces) the rule for rule.Point, resetting its call
// count.
func (r *Registry) Arm(rule Rule) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.rules[rule.Point]; !ok {
		r.order = append(r.order, rule.Point)
	}
	a := &armed{rule: rule}
	if rule.Trigger.Kind == ProbKind {
		a.rng = rand.New(rand.NewSource(rule.Trigger.Seed))
	}
	r.rules[rule.Point] = a
}

// SetMetrics mirrors fired injections into reg as
// ucudnn_fault_injected_total{point=...}. Nil disables.
func (r *Registry) SetMetrics(reg *obs.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reg = reg
}

// String returns the canonical spec of the armed rules; Parse of the
// result reconstructs an equivalent registry (call counts reset).
func (r *Registry) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	parts := make([]string, 0, len(r.order))
	for _, p := range r.order {
		parts = append(parts, r.rules[p].rule.String())
	}
	return strings.Join(parts, ";")
}

// Shots returns a copy of the fired-shot log in firing order.
func (r *Registry) Shots() []Shot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Shot(nil), r.shots...)
}

// ShotLog returns the fired-shot log as one compact line.
func (r *Registry) ShotLog() string {
	shots := r.Shots()
	parts := make([]string, len(shots))
	for i, s := range shots {
		parts[i] = s.String()
	}
	return strings.Join(parts, ";")
}

// fire evaluates point p's rule, logging a shot with the given effect
// when it fires. It returns the 1-based call count and whether it fired.
func (r *Registry) fire(p Point, effect string) (int64, bool) {
	r.mu.Lock()
	a := r.rules[p]
	if a == nil {
		r.mu.Unlock()
		return 0, false
	}
	a.calls++
	call := a.calls
	fired := a.eval()
	var reg *obs.Registry
	if fired {
		r.shots = append(r.shots, Shot{Point: p, Call: call, Effect: effect})
		reg = r.reg
	}
	r.mu.Unlock()
	if reg != nil {
		reg.Counter(MetricFaultInjected, obs.L("point", string(p))).Inc()
	}
	if fired {
		flight.Rec(evFaultShot, pointIndex(p), call, effectCode(effect), 0)
	}
	return call, fired
}

// InjectedError is the error returned by fired error-shaped points.
// Callers can detect injected (vs organic) failures with errors.As.
type InjectedError struct {
	Point Point
	Call  int64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected failure at %s (call %d)", e.Point, e.Call)
}

// IsInjected reports whether err wraps an InjectedError anywhere in its
// chain — the test harness uses it to tell injected failures apart from
// organic ones when a degraded execution still surfaces an error.
func IsInjected(err error) bool {
	var inj *InjectedError
	return errors.As(err, &inj)
}

// Err returns an injected error when p's rule fires, nil otherwise.
func (r *Registry) Err(p Point) error {
	if call, fired := r.fire(p, "error"); fired {
		return &InjectedError{Point: p, Call: call}
	}
	return nil
}

// Hit reports whether p's rule fired on this evaluation.
func (r *Registry) Hit(p Point) bool {
	_, fired := r.fire(p, "skip")
	return fired
}

// Grant filters a byte-count request through p's rule: when it fires
// with Shrink > 1 the request is divided by Shrink, otherwise the grant
// is denied (0 bytes).
func (r *Registry) Grant(p Point, bytes int64) int64 {
	r.mu.Lock()
	a := r.rules[p]
	if a == nil {
		r.mu.Unlock()
		return bytes
	}
	a.calls++
	call := a.calls
	if !a.eval() {
		r.mu.Unlock()
		return bytes
	}
	granted := int64(0)
	effect := "deny"
	if a.rule.Shrink > 1 {
		granted = bytes / a.rule.Shrink
		effect = "shrink:" + strconv.FormatInt(a.rule.Shrink, 10)
	}
	r.shots = append(r.shots, Shot{Point: p, Call: call, Effect: effect})
	reg := r.reg
	code, div := effectDeny, int64(0)
	if a.rule.Shrink > 1 {
		code, div = effectShrink, a.rule.Shrink
	}
	r.mu.Unlock()
	if reg != nil {
		reg.Counter(MetricFaultInjected, obs.L("point", string(p))).Inc()
	}
	flight.Rec(evFaultShot, pointIndex(p), call, code, div)
	return granted
}

// Mangle corrupts data when p's rule fires (returning a mangled copy;
// the input is never modified), and returns data unchanged otherwise.
func (r *Registry) Mangle(p Point, data []byte) []byte {
	if _, fired := r.fire(p, "corrupt"); !fired {
		return data
	}
	out := make([]byte, 0, len(data)+9)
	out = append(out, "\x00corrupt "...)
	return append(out, data...)
}

// global is the installed registry; nil means injection is disabled and
// every helper below is a single atomic load.
var global atomic.Pointer[Registry]

// Install makes r the global registry consulted by the package-level
// helpers; Install(nil) disables injection. Tests that install a
// registry must uninstall it (defer faults.Install(nil)).
func Install(r *Registry) { global.Store(r) }

// Active returns the installed registry (nil when disabled).
func Active() *Registry { return global.Load() }

// Err consults the global registry's rule for p; nil when disabled.
func Err(p Point) error {
	r := global.Load()
	if r == nil {
		return nil
	}
	return r.Err(p)
}

// Hit consults the global registry's rule for p; false when disabled.
func Hit(p Point) bool {
	r := global.Load()
	if r == nil {
		return false
	}
	return r.Hit(p)
}

// Grant filters a byte-count request through the global registry;
// identity when disabled.
func Grant(p Point, bytes int64) int64 {
	r := global.Load()
	if r == nil {
		return bytes
	}
	return r.Grant(p, bytes)
}

// Mangle filters a data buffer through the global registry; identity
// when disabled.
func Mangle(p Point, data []byte) []byte {
	r := global.Load()
	if r == nil {
		return data
	}
	return r.Mangle(p, data)
}

// Parse reconstructs a registry from its canonical String() spec:
//
//	spec    := rule (';' rule)*
//	rule    := point '=' trigger [',shrink=' int]
//	trigger := 'nth:' int | 'every:' int | 'prob:' float ':' seed
//
// Point names must follow the ucudnn_fp_* scheme. An empty spec yields
// an empty (armed-with-nothing) registry.
func Parse(spec string) (*Registry, error) {
	r := New()
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return r, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		r.Arm(rule)
	}
	return r, nil
}

func parseRule(s string) (Rule, error) {
	eq := strings.Index(s, "=")
	if eq < 0 {
		return Rule{}, fmt.Errorf("faults: rule %q missing '='", s)
	}
	point := strings.TrimSpace(s[:eq])
	if !pointRe.MatchString(point) {
		return Rule{}, fmt.Errorf("faults: point %q does not match the ucudnn_fp_* scheme", point)
	}
	rule := Rule{Point: Point(point)}
	rest := s[eq+1:]
	trigSpec := rest
	if comma := strings.Index(rest, ","); comma >= 0 {
		trigSpec = rest[:comma]
		for _, opt := range strings.Split(rest[comma+1:], ",") {
			opt = strings.TrimSpace(opt)
			val, ok := strings.CutPrefix(opt, "shrink=")
			if !ok {
				return Rule{}, fmt.Errorf("faults: rule %q has unknown option %q", s, opt)
			}
			d, err := strconv.ParseInt(val, 10, 64)
			if err != nil || d < 2 {
				return Rule{}, fmt.Errorf("faults: rule %q shrink divisor must be an integer >= 2", s)
			}
			rule.Shrink = d
		}
	}
	trig, err := parseTrigger(strings.TrimSpace(trigSpec))
	if err != nil {
		return Rule{}, fmt.Errorf("faults: rule %q: %w", s, err)
	}
	rule.Trigger = trig
	return rule, nil
}

func parseTrigger(s string) (Trigger, error) {
	fields := strings.Split(s, ":")
	switch fields[0] {
	case "nth", "every":
		if len(fields) != 2 {
			return Trigger{}, fmt.Errorf("trigger %q wants one integer argument", s)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || n < 1 {
			return Trigger{}, fmt.Errorf("trigger %q argument must be a positive integer", s)
		}
		if fields[0] == "nth" {
			return Nth(n), nil
		}
		return EveryK(n), nil
	case "prob":
		if len(fields) != 3 {
			return Trigger{}, fmt.Errorf("trigger %q wants probability and seed", s)
		}
		p, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || p < 0 || p > 1 {
			return Trigger{}, fmt.Errorf("trigger %q probability must be in [0, 1]", s)
		}
		seed, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return Trigger{}, fmt.Errorf("trigger %q seed must be an integer", s)
		}
		return Prob(p, seed), nil
	}
	return Trigger{}, fmt.Errorf("trigger %q has unknown kind (want nth, every or prob)", s)
}
