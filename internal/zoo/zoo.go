// Package zoo defines the evaluation networks of the paper: single-column
// AlexNet, ResNet-18/-50, DenseNet-40 (k=40) and a GoogLeNet Inception
// module, built on the internal/dnn framework.
//
// Convolution layer names all contain "conv", so timing reports can be
// filtered to convolutions with IsConvLayer, matching how the paper
// highlights convolutional layers only.
package zoo

import (
	"fmt"
	"strings"

	"ucudnn/internal/dnn"
	"ucudnn/internal/tensor"
)

// IsConvLayer reports whether a layer name denotes a convolution.
func IsConvLayer(name string) bool { return strings.Contains(name, "conv") }

// AlexNet builds the single-column AlexNet variant (Krizhevsky's "one
// weird trick" model with Caffe's LRN layers) for 224x224 inputs.
func AlexNet(ctx *dnn.Context, batch, classes int) (*dnn.Net, *dnn.SoftmaxLoss) {
	net := dnn.NewNet(ctx)
	net.Input("data", tensor.Shape{N: batch, C: 3, H: 224, W: 224})
	net.Add(dnn.NewConv("conv1", 64, 11, 4, 2, true).SkipInputGrad(), "conv1", "data")
	net.Add(dnn.NewReLU("relu1"), "relu1", "conv1")
	net.Add(dnn.NewLRN("norm1"), "norm1", "relu1")
	net.Add(dnn.NewPool("pool1", dnn.MaxPool, 3, 2, 0), "pool1", "norm1")
	net.Add(dnn.NewConv("conv2", 192, 5, 1, 2, true), "conv2", "pool1")
	net.Add(dnn.NewReLU("relu2"), "relu2", "conv2")
	net.Add(dnn.NewLRN("norm2"), "norm2", "relu2")
	net.Add(dnn.NewPool("pool2", dnn.MaxPool, 3, 2, 0), "pool2", "norm2")
	net.Add(dnn.NewConv("conv3", 384, 3, 1, 1, true), "conv3", "pool2")
	net.Add(dnn.NewReLU("relu3"), "relu3", "conv3")
	net.Add(dnn.NewConv("conv4", 256, 3, 1, 1, true), "conv4", "relu3")
	net.Add(dnn.NewReLU("relu4"), "relu4", "conv4")
	net.Add(dnn.NewConv("conv5", 256, 3, 1, 1, true), "conv5", "relu4")
	net.Add(dnn.NewReLU("relu5"), "relu5", "conv5")
	net.Add(dnn.NewPool("pool5", dnn.MaxPool, 3, 2, 0), "pool5", "relu5")
	net.Add(dnn.NewFC("fc6", 4096), "fc6", "pool5")
	net.Add(dnn.NewReLU("relu6"), "relu6", "fc6")
	net.Add(dnn.NewDropout("drop6", 0.5), "drop6", "relu6")
	net.Add(dnn.NewFC("fc7", 4096), "fc7", "drop6")
	net.Add(dnn.NewReLU("relu7"), "relu7", "fc7")
	net.Add(dnn.NewDropout("drop7", 0.5), "drop7", "relu7")
	net.Add(dnn.NewFC("fc8", classes), "fc8", "drop7")
	loss := dnn.NewSoftmaxLoss("loss")
	net.Add(loss, "loss", "fc8")
	return net, loss
}

// CaffeAlexNet builds Caffe's original two-column AlexNet definition:
// 96/256/384/384/256 filters with grouped convolutions (groups=2) on
// conv2, conv4 and conv5 — the model the paper's Caffe experiments use.
func CaffeAlexNet(ctx *dnn.Context, batch, classes int) (*dnn.Net, *dnn.SoftmaxLoss) {
	net := dnn.NewNet(ctx)
	net.Input("data", tensor.Shape{N: batch, C: 3, H: 227, W: 227})
	net.Add(dnn.NewConv("conv1", 96, 11, 4, 0, true).SkipInputGrad(), "conv1", "data")
	net.Add(dnn.NewReLU("relu1"), "relu1", "conv1")
	net.Add(dnn.NewLRN("norm1"), "norm1", "relu1")
	net.Add(dnn.NewPool("pool1", dnn.MaxPool, 3, 2, 0), "pool1", "norm1")
	net.Add(dnn.NewConvGrouped("conv2", 256, 5, 1, 2, 2, true), "conv2", "pool1")
	net.Add(dnn.NewReLU("relu2"), "relu2", "conv2")
	net.Add(dnn.NewLRN("norm2"), "norm2", "relu2")
	net.Add(dnn.NewPool("pool2", dnn.MaxPool, 3, 2, 0), "pool2", "norm2")
	net.Add(dnn.NewConv("conv3", 384, 3, 1, 1, true), "conv3", "pool2")
	net.Add(dnn.NewReLU("relu3"), "relu3", "conv3")
	net.Add(dnn.NewConvGrouped("conv4", 384, 3, 1, 1, 2, true), "conv4", "relu3")
	net.Add(dnn.NewReLU("relu4"), "relu4", "conv4")
	net.Add(dnn.NewConvGrouped("conv5", 256, 3, 1, 1, 2, true), "conv5", "relu4")
	net.Add(dnn.NewReLU("relu5"), "relu5", "conv5")
	net.Add(dnn.NewPool("pool5", dnn.MaxPool, 3, 2, 0), "pool5", "relu5")
	net.Add(dnn.NewFC("fc6", 4096), "fc6", "pool5")
	net.Add(dnn.NewReLU("relu6"), "relu6", "fc6")
	net.Add(dnn.NewDropout("drop6", 0.5), "drop6", "relu6")
	net.Add(dnn.NewFC("fc7", 4096), "fc7", "drop6")
	net.Add(dnn.NewReLU("relu7"), "relu7", "fc7")
	net.Add(dnn.NewDropout("drop7", 0.5), "drop7", "relu7")
	net.Add(dnn.NewFC("fc8", classes), "fc8", "drop7")
	loss := dnn.NewSoftmaxLoss("loss")
	net.Add(loss, "loss", "fc8")
	return net, loss
}

// convBNReLU appends conv -> batch-norm -> relu, returning the top name.
func convBNReLU(net *dnn.Net, name string, bottom string, k, kernel, stride, pad int, relu bool, skipInputGrad bool) string {
	c := dnn.NewConv(name+".conv", k, kernel, stride, pad, false)
	if skipInputGrad {
		c.SkipInputGrad()
	}
	net.Add(c, name+".conv", bottom)
	net.Add(dnn.NewBatchNorm(name+".bn"), name+".bn", name+".conv")
	if !relu {
		return name + ".bn"
	}
	net.Add(dnn.NewReLU(name+".relu"), name+".relu", name+".bn")
	return name + ".relu"
}

// basicBlock appends a ResNet-18 basic block (two 3x3 convolutions).
func basicBlock(net *dnn.Net, name, bottom string, k, stride int) string {
	t := convBNReLU(net, name+".a", bottom, k, 3, stride, 1, true, false)
	t = convBNReLU(net, name+".b", t, k, 3, 1, 1, false, false)
	shortcut := bottom
	if stride != 1 {
		shortcut = convBNReLU(net, name+".down", bottom, k, 1, stride, 0, false, false)
	}
	net.Add(dnn.NewAdd(name+".add"), name+".add", t, shortcut)
	net.Add(dnn.NewReLU(name+".out"), name+".out", name+".add")
	return name + ".out"
}

// bottleneckBlock appends a ResNet-50 bottleneck (1x1, 3x3, 1x1 with 4x
// expansion).
func bottleneckBlock(net *dnn.Net, name, bottom string, mid, stride int, project bool) string {
	out := mid * 4
	t := convBNReLU(net, name+".a", bottom, mid, 1, stride, 0, true, false)
	t = convBNReLU(net, name+".b", t, mid, 3, 1, 1, true, false)
	t = convBNReLU(net, name+".c", t, out, 1, 1, 0, false, false)
	shortcut := bottom
	if project {
		shortcut = convBNReLU(net, name+".down", bottom, out, 1, stride, 0, false, false)
	}
	net.Add(dnn.NewAdd(name+".add"), name+".add", t, shortcut)
	net.Add(dnn.NewReLU(name+".out"), name+".out", name+".add")
	return name + ".out"
}

// resnetStem appends the shared 7x7 stem.
func resnetStem(net *dnn.Net, batch int) string {
	net.Input("data", tensor.Shape{N: batch, C: 3, H: 224, W: 224})
	t := convBNReLU(net, "stem", "data", 64, 7, 2, 3, true, true)
	net.Add(dnn.NewPool("pool1", dnn.MaxPool, 3, 2, 0), "pool1", t)
	return "pool1"
}

// ResNet18 builds ResNet-18 for 224x224 inputs.
func ResNet18(ctx *dnn.Context, batch, classes int) (*dnn.Net, *dnn.SoftmaxLoss) {
	net := dnn.NewNet(ctx)
	t := resnetStem(net, batch)
	widths := []int{64, 128, 256, 512}
	for si, k := range widths {
		for bi := 0; bi < 2; bi++ {
			stride := 1
			if si > 0 && bi == 0 {
				stride = 2
			}
			t = basicBlock(net, fmt.Sprintf("res%d.%d", si+2, bi), t, k, stride)
		}
	}
	return resnetHead(net, t, classes)
}

// ResNet50 builds ResNet-50 for 224x224 inputs.
func ResNet50(ctx *dnn.Context, batch, classes int) (*dnn.Net, *dnn.SoftmaxLoss) {
	net := dnn.NewNet(ctx)
	t := resnetStem(net, batch)
	mids := []int{64, 128, 256, 512}
	counts := []int{3, 4, 6, 3}
	for si, mid := range mids {
		for bi := 0; bi < counts[si]; bi++ {
			stride := 1
			if si > 0 && bi == 0 {
				stride = 2
			}
			t = bottleneckBlock(net, fmt.Sprintf("res%d.%d", si+2, bi), t, mid, stride, bi == 0)
		}
	}
	return resnetHead(net, t, classes)
}

func resnetHead(net *dnn.Net, top string, classes int) (*dnn.Net, *dnn.SoftmaxLoss) {
	net.Add(dnn.NewGlobalAvgPool("gap"), "gap", top)
	net.Add(dnn.NewFC("fc", classes), "fc", "gap")
	loss := dnn.NewSoftmaxLoss("loss")
	net.Add(loss, "loss", "fc")
	return net, loss
}

// DenseNet40 builds DenseNet-40 (three dense blocks of 12 basic layers)
// with the given growth rate for 32x32 CIFAR inputs. The paper evaluates
// k=40.
func DenseNet40(ctx *dnn.Context, batch, growth, classes int) (*dnn.Net, *dnn.SoftmaxLoss) {
	net := dnn.NewNet(ctx)
	net.Input("data", tensor.Shape{N: batch, C: 3, H: 32, W: 32})
	net.Add(dnn.NewConv("conv0", 16, 3, 1, 1, false).SkipInputGrad(), "conv0", "data")
	features := "conv0"
	const layersPerBlock = 12
	for b := 0; b < 3; b++ {
		for l := 0; l < layersPerBlock; l++ {
			name := fmt.Sprintf("dense%d.%d", b+1, l)
			net.Add(dnn.NewBatchNorm(name+".bn"), name+".bn", features)
			net.Add(dnn.NewReLU(name+".relu"), name+".relu", name+".bn")
			net.Add(dnn.NewConv(name+".conv", growth, 3, 1, 1, false), name+".conv", name+".relu")
			cat := name + ".cat"
			net.Add(dnn.NewConcat(cat), cat, features, name+".conv")
			features = cat
		}
		if b < 2 {
			name := fmt.Sprintf("trans%d", b+1)
			net.Add(dnn.NewBatchNorm(name+".bn"), name+".bn", features)
			net.Add(dnn.NewReLU(name+".relu"), name+".relu", name+".bn")
			// 1x1 convolution keeps the channel count (no compression).
			tc := transChannels(16, growth, b+1)
			net.Add(dnn.NewConv(name+".conv", tc, 1, 1, 0, false), name+".conv", name+".relu")
			net.Add(dnn.NewPool(name+".pool", dnn.AvgPool, 2, 2, 0), name+".pool", name+".conv")
			features = name + ".pool"
		}
	}
	net.Add(dnn.NewBatchNorm("final.bn"), "final.bn", features)
	net.Add(dnn.NewReLU("final.relu"), "final.relu", "final.bn")
	net.Add(dnn.NewGlobalAvgPool("gap"), "gap", "final.relu")
	net.Add(dnn.NewFC("fc", classes), "fc", "gap")
	loss := dnn.NewSoftmaxLoss("loss")
	net.Add(loss, "loss", "fc")
	return net, loss
}

// transChannels returns the channel count entering transition t.
func transChannels(c0, growth, t int) int { return c0 + t*12*growth }

// InceptionModule builds the GoogLeNet "inception (3a)" module alone
// (paper §III-A motivates WD with Inception's concurrent branches). The
// returned net has no loss layer; its output is the branch concatenation.
func InceptionModule(ctx *dnn.Context, batch int) *dnn.Net {
	net := dnn.NewNet(ctx)
	net.Input("data", tensor.Shape{N: batch, C: 192, H: 28, W: 28})
	// Branch 1: 1x1.
	net.Add(dnn.NewConv("inc.b1.conv1x1", 64, 1, 1, 0, true), "inc.b1.conv1x1", "data")
	net.Add(dnn.NewReLU("inc.b1.relu"), "b1", "inc.b1.conv1x1")
	// Branch 2: 1x1 reduce -> 3x3.
	net.Add(dnn.NewConv("inc.b2.conv1x1", 96, 1, 1, 0, true), "inc.b2.conv1x1", "data")
	net.Add(dnn.NewReLU("inc.b2.relu1"), "inc.b2.r1", "inc.b2.conv1x1")
	net.Add(dnn.NewConv("inc.b2.conv3x3", 128, 3, 1, 1, true), "inc.b2.conv3x3", "inc.b2.r1")
	net.Add(dnn.NewReLU("inc.b2.relu2"), "b2", "inc.b2.conv3x3")
	// Branch 3: 1x1 reduce -> 5x5.
	net.Add(dnn.NewConv("inc.b3.conv1x1", 16, 1, 1, 0, true), "inc.b3.conv1x1", "data")
	net.Add(dnn.NewReLU("inc.b3.relu1"), "inc.b3.r1", "inc.b3.conv1x1")
	net.Add(dnn.NewConv("inc.b3.conv5x5", 32, 5, 1, 2, true), "inc.b3.conv5x5", "inc.b3.r1")
	net.Add(dnn.NewReLU("inc.b3.relu2"), "b3", "inc.b3.conv5x5")
	// Branch 4: 3x3 maxpool -> 1x1.
	net.Add(dnn.NewPool("inc.b4.pool", dnn.MaxPool, 3, 1, 1), "inc.b4.p", "data")
	net.Add(dnn.NewConv("inc.b4.conv1x1", 32, 1, 1, 0, true), "inc.b4.conv1x1", "inc.b4.p")
	net.Add(dnn.NewReLU("inc.b4.relu"), "b4", "inc.b4.conv1x1")
	net.Add(dnn.NewConcat("inc.concat"), "out", "b1", "b2", "b3", "b4")
	return net
}
