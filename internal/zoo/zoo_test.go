package zoo

import (
	"testing"

	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
)

func timingCtx() *dnn.Context {
	h := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	ctx := dnn.NewContext(h, h, 64<<20)
	ctx.SkipCompute = true
	return ctx
}

func paramCount(net *dnn.Net) int64 {
	var n int64
	for _, p := range net.Params() {
		n += int64(len(p.Data))
	}
	return n
}

func countConvLayers(net *dnn.Net) int {
	n := 0
	for _, l := range net.Layers() {
		if IsConvLayer(l) {
			n++
		}
	}
	return n
}

func TestAlexNetShapeAndParams(t *testing.T) {
	net, _ := AlexNet(timingCtx(), 2, 1000)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	// Known blob shapes of the single-column variant.
	cases := map[string][4]int{
		"conv1": {2, 64, 55, 55},
		"pool1": {2, 64, 27, 27},
		"conv2": {2, 192, 27, 27},
		"pool2": {2, 192, 13, 13},
		"conv3": {2, 384, 13, 13},
		"conv5": {2, 256, 13, 13},
		"pool5": {2, 256, 6, 6},
		"fc6":   {2, 4096, 1, 1},
	}
	for name, want := range cases {
		b := net.Blob(name)
		if b == nil {
			t.Fatalf("blob %s missing", name)
		}
		got := [4]int{b.Shape.N, b.Shape.C, b.Shape.H, b.Shape.W}
		if got != want {
			t.Fatalf("%s shape %v, want %v", name, got, want)
		}
	}
	// ~61M parameters (single-column AlexNet).
	p := paramCount(net)
	if p < 60e6 || p > 63e6 {
		t.Fatalf("AlexNet params = %d, want ~61M", p)
	}
	if got := countConvLayers(net); got != 5 {
		t.Fatalf("conv layers = %d, want 5", got)
	}
}

func TestResNet18ShapeAndParams(t *testing.T) {
	net, _ := ResNet18(timingCtx(), 2, 1000)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	if b := net.Blob("pool1"); b == nil || b.Shape.H != 56 {
		t.Fatalf("stem output wrong: %+v", b)
	}
	if b := net.Blob("res5.1.out"); b == nil || b.Shape.C != 512 || b.Shape.H != 7 {
		t.Fatalf("final stage wrong: %+v", b)
	}
	p := paramCount(net)
	if p < 11e6 || p > 12.5e6 {
		t.Fatalf("ResNet-18 params = %d, want ~11.7M", p)
	}
	// 8 blocks x 2 convs + stem + 3 downsamples = 20.
	if got := countConvLayers(net); got != 20 {
		t.Fatalf("conv layers = %d, want 20", got)
	}
}

func TestResNet50ShapeAndParams(t *testing.T) {
	net, _ := ResNet50(timingCtx(), 2, 1000)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	if b := net.Blob("res5.2.out"); b == nil || b.Shape.C != 2048 || b.Shape.H != 7 {
		t.Fatalf("final stage wrong: %+v", b)
	}
	p := paramCount(net)
	if p < 25e6 || p > 26.5e6 {
		t.Fatalf("ResNet-50 params = %d, want ~25.6M", p)
	}
	// 16 blocks x 3 + 4 projections + stem = 53.
	if got := countConvLayers(net); got != 53 {
		t.Fatalf("conv layers = %d, want 53", got)
	}
}

func TestDenseNet40Shapes(t *testing.T) {
	net, _ := DenseNet40(timingCtx(), 2, 40, 10)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	// Channel growth: 16 + 12*40 = 496 after block 1.
	if b := net.Blob("dense1.11.cat"); b == nil || b.Shape.C != 496 || b.Shape.H != 32 {
		t.Fatalf("block1 output wrong: %+v", b)
	}
	if b := net.Blob("trans1.pool"); b == nil || b.Shape.H != 16 {
		t.Fatalf("transition1 wrong: %+v", b)
	}
	if b := net.Blob("dense3.11.cat"); b == nil || b.Shape.C != 16+3*12*40 || b.Shape.H != 8 {
		t.Fatalf("block3 output wrong: %+v", b)
	}
	// 1 stem + 36 dense + 2 transition convolutions.
	if got := countConvLayers(net); got != 39 {
		t.Fatalf("conv layers = %d, want 39", got)
	}
}

func TestInceptionModuleShape(t *testing.T) {
	net := InceptionModule(timingCtx(), 4)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	out := net.Blob("out")
	if out == nil || out.Shape.C != 256 || out.Shape.H != 28 {
		t.Fatalf("inception output wrong: %+v", out)
	}
	if got := countConvLayers(net); got != 6 {
		t.Fatalf("conv layers = %d, want 6", got)
	}
}

// Every zoo network must produce a timing report under the simulated
// clock with convolutions contributing a plausible share.
func TestZooNetworksTime(t *testing.T) {
	builders := map[string]func(ctx *dnn.Context) *dnn.Net{
		"alexnet":  func(ctx *dnn.Context) *dnn.Net { n, _ := AlexNet(ctx, 16, 1000); return n },
		"resnet18": func(ctx *dnn.Context) *dnn.Net { n, _ := ResNet18(ctx, 8, 1000); return n },
		"densenet": func(ctx *dnn.Context) *dnn.Net { n, _ := DenseNet40(ctx, 8, 12, 10); return n },
	}
	for name, build := range builders {
		net := build(timingCtx())
		rep, err := net.Time(1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := rep.Total()
		convT := rep.SumMatching(IsConvLayer)
		if total <= 0 || convT <= 0 || convT > total {
			t.Fatalf("%s: total %v conv %v", name, total, convT)
		}
		frac := float64(convT) / float64(total)
		if frac < 0.2 {
			t.Fatalf("%s: conv fraction %.2f implausibly low", name, frac)
		}
		t.Logf("%s: total %v, conv %.0f%%", name, total, 100*frac)
	}
}

// Training a tiny DenseNet variant end-to-end exercises concat backward
// through the real compute path.
func TestDenseNetTrainStep(t *testing.T) {
	h := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	ctx := dnn.NewContext(h, h, 8<<20)
	net, loss := DenseNet40(ctx, 2, 4, 10)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	net.InputBlob().Data.Fill(0.1)
	loss.Labels = []int{1, 2}
	if err := net.Forward(); err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(); err != nil {
		t.Fatal(err)
	}
	if loss.Loss <= 0 {
		t.Fatal("loss must be positive")
	}
}

func TestIsConvLayer(t *testing.T) {
	if !IsConvLayer("res2.0.a.conv") || !IsConvLayer("conv2") || IsConvLayer("pool1") || IsConvLayer("fc6") {
		t.Fatal("IsConvLayer misclassifies")
	}
}

func TestCaffeAlexNetShapeAndParams(t *testing.T) {
	net, _ := CaffeAlexNet(timingCtx(), 2, 1000)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	// Caffe AlexNet blob shapes (227x227 input, no conv1 padding).
	cases := map[string][4]int{
		"conv1": {2, 96, 55, 55},
		"pool1": {2, 96, 27, 27},
		"conv2": {2, 256, 27, 27},
		"pool2": {2, 256, 13, 13},
		"conv3": {2, 384, 13, 13},
		"conv5": {2, 256, 13, 13},
		"pool5": {2, 256, 6, 6},
	}
	for name, want := range cases {
		b := net.Blob(name)
		if b == nil {
			t.Fatalf("blob %s missing", name)
		}
		got := [4]int{b.Shape.N, b.Shape.C, b.Shape.H, b.Shape.W}
		if got != want {
			t.Fatalf("%s shape %v, want %v", name, got, want)
		}
	}
	// Caffe AlexNet has ~61M parameters (grouped convs halve conv2/4/5).
	p := paramCount(net)
	if p < 60e6 || p > 62e6 {
		t.Fatalf("CaffeAlexNet params = %d, want ~61M", p)
	}
}

func TestCaffeAlexNetTimes(t *testing.T) {
	net, _ := CaffeAlexNet(timingCtx(), 16, 1000)
	rep, err := net.Time(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() <= 0 || rep.SumMatching(IsConvLayer) <= 0 {
		t.Fatal("timing failed")
	}
}
