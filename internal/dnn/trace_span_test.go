package dnn

import (
	"math/rand"
	"testing"

	"ucudnn/internal/trace"
)

// TestLayerSpans verifies the Net executor records one span per layer
// per direction on track 1 when a trace recorder is attached.
func TestLayerSpans(t *testing.T) {
	ctx := testCtx()
	rec := trace.New()
	ctx.Trace = rec
	net, loss := buildTinyNet(ctx, 4)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	net.InputBlob().Data.Randomize(rng, 1)
	loss.Labels = []int{0, 1, 2, 3}
	if err := net.Forward(); err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(); err != nil {
		t.Fatal(err)
	}
	layers := net.Layers()
	perDir := map[string]map[string]int{"forward": {}, "backward": {}}
	for _, ev := range rec.Events() {
		if ev.Cat != "forward" && ev.Cat != "backward" {
			continue
		}
		if ev.Track != 1 {
			t.Fatalf("layer span %q on track %d, want 1", ev.Name, ev.Track)
		}
		perDir[ev.Cat][ev.Name]++
	}
	for _, dir := range []string{"forward", "backward"} {
		for _, name := range layers {
			if perDir[dir][name] != 1 {
				t.Fatalf("%s spans for %q = %d, want 1", dir, name, perDir[dir][name])
			}
		}
	}
	// Detached recorder must add nothing.
	ctx.Trace = nil
	before := rec.Len()
	if err := net.Forward(); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != before {
		t.Fatal("spans recorded with tracing disabled")
	}
}
