package dnn

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// LayerTiming is the measured (or simulated) cost of one layer over a
// timing run, split into forward and backward passes — the unit of the
// paper's per-layer breakdown figures.
type LayerTiming struct {
	Name     string
	Forward  time.Duration
	Backward time.Duration
}

// Total returns forward + backward.
func (t LayerTiming) Total() time.Duration { return t.Forward + t.Backward }

// TimingReport is the result of Time: the `caffe time` equivalent.
type TimingReport struct {
	Iterations int
	Layers     []LayerTiming // averaged per iteration, execution order
}

// TotalForward sums the per-layer forward times.
func (r *TimingReport) TotalForward() time.Duration {
	var s time.Duration
	for _, l := range r.Layers {
		s += l.Forward
	}
	return s
}

// TotalBackward sums the per-layer backward times.
func (r *TimingReport) TotalBackward() time.Duration {
	var s time.Duration
	for _, l := range r.Layers {
		s += l.Backward
	}
	return s
}

// Total sums forward and backward.
func (r *TimingReport) Total() time.Duration {
	return r.TotalForward() + r.TotalBackward()
}

// Layer returns the timing entry with the given name (nil if absent).
func (r *TimingReport) Layer(name string) *LayerTiming {
	for i := range r.Layers {
		if r.Layers[i].Name == name {
			return &r.Layers[i]
		}
	}
	return nil
}

// ConvTotal sums the layers selected by the predicate; used to report
// convolution-only totals as the paper does.
func (r *TimingReport) SumMatching(match func(name string) bool) time.Duration {
	var s time.Duration
	for _, l := range r.Layers {
		if match(l.Name) {
			s += l.Total()
		}
	}
	return s
}

// Print writes a `caffe time`-style table.
func (r *TimingReport) Print(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "layer\tforward\tbackward\ttotal\n")
	for _, l := range r.Layers {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\n", l.Name, l.Forward, l.Backward, l.Total())
	}
	fmt.Fprintf(tw, "TOTAL\t%v\t%v\t%v\n", r.TotalForward(), r.TotalBackward(), r.Total())
	tw.Flush()
}

// Time runs iters forward-backward iterations, attributing the simulated
// clock to layers; the first (setup/optimization) iteration is excluded,
// as the paper excludes µ-cuDNN's one-time optimization from kernel
// timings.
func (n *Net) Time(iters int) (*TimingReport, error) {
	if err := n.Setup(); err != nil {
		return nil, err
	}
	if iters < 1 {
		iters = 1
	}
	// Warm-up iteration triggers plan optimization outside the timed loop.
	if err := n.Forward(); err != nil {
		return nil, err
	}
	if err := n.Backward(); err != nil {
		return nil, err
	}
	fwd := make([]time.Duration, len(n.layers))
	bwd := make([]time.Duration, len(n.layers))
	for it := 0; it < iters; it++ {
		for i := range n.layers {
			start := n.ctx.Cudnn.Elapsed()
			if err := n.forwardLayer(i); err != nil {
				return nil, err
			}
			fwd[i] += n.ctx.Cudnn.Elapsed() - start
		}
		for i := len(n.layers) - 1; i >= 0; i-- {
			start := n.ctx.Cudnn.Elapsed()
			if err := n.backwardLayer(i); err != nil {
				return nil, err
			}
			bwd[i] += n.ctx.Cudnn.Elapsed() - start
		}
	}
	rep := &TimingReport{Iterations: iters}
	for i, li := range n.layers {
		rep.Layers = append(rep.Layers, LayerTiming{
			Name:     li.layer.Name(),
			Forward:  fwd[i] / time.Duration(iters),
			Backward: bwd[i] / time.Duration(iters),
		})
	}
	return rep, nil
}

// TopKByTotal returns the k most expensive layers.
func (r *TimingReport) TopKByTotal(k int) []LayerTiming {
	sorted := append([]LayerTiming{}, r.Layers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total() > sorted[j].Total() })
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
