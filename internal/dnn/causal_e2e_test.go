package dnn

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"ucudnn/internal/causal"
	"ucudnn/internal/conv"
	"ucudnn/internal/prof"
	"ucudnn/internal/trace"
)

// ReplayOverlap is the causal package's replica of ScheduleOOC's
// double-buffered three-stream recurrence; this test pins the two to
// each other so the stall comparator can never drift from the model it
// claims to replay.
func TestReplayOverlapMatchesScheduleOOC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	repeat := func(d time.Duration, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = d.Nanoseconds()
		}
		return out
	}
	for trial := 0; trial < 200; trial++ {
		windows := 1 + rng.Intn(9)
		fetch := time.Duration(rng.Intn(2000))
		compute := time.Duration(rng.Intn(2000))
		spill := time.Duration(rng.Intn(3))
		if trial%3 == 0 {
			spill = time.Duration(rng.Intn(2000))
		}
		sched, err := ScheduleOOC(OOCPlan{Windows: windows}, fetch, compute, spill)
		if err != nil {
			t.Fatal(err)
		}
		o := causal.ReplayOverlap(
			repeat(fetch, windows), repeat(compute, windows), repeat(spill, windows))
		if o.MakespanNS != sched.Makespan.Nanoseconds() {
			t.Fatalf("trial %d (w=%d f=%d c=%d s=%d): replay makespan %d != ScheduleOOC %d",
				trial, windows, fetch, compute, spill, o.MakespanNS, sched.Makespan.Nanoseconds())
		}
	}
}

// The modeled OOC schedule's flow edges must satisfy the timeline
// invariants, and the critical-path engine must reproduce its makespan
// (the chain through the binding stream is the schedule's own critical
// path).
func TestScheduleOOCTimeline(t *testing.T) {
	sched, err := ScheduleOOC(OOCPlan{Windows: 4}, 70, 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	tl := causal.Build(sched.Spans, nil)
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	a := causal.Analyze(tl, nil)
	if len(a.Iterations) != 1 {
		t.Fatalf("iterations: %d", len(a.Iterations))
	}
	p := a.Iterations[0]
	covered := p.PathNS
	for _, s := range p.Steps {
		covered += s.GapNS
	}
	if covered != sched.Makespan.Nanoseconds() {
		t.Fatalf("critical path covers %dns of the %dns makespan", covered, sched.Makespan.Nanoseconds())
	}
}

// causalTimelineBytes runs the OOC test net under a blob budget with P
// kernel workers and returns the exported canonical timeline bytes.
func causalTimelineBytes(t *testing.T, workers int, profile bool) []byte {
	t.Helper()
	prev := conv.SetMaxWorkers(workers)
	defer conv.SetMaxWorkers(prev)
	if profile {
		prof.Enable()
		defer prof.Disable()
	}

	probeCtx := oocTestCtx()
	probeNet, _ := oocTestNet(probeCtx, 4)
	if err := probeNet.Setup(); err != nil {
		t.Fatal(err)
	}
	m, err := FootprintModel(probeNet)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanOOC(m, (m.Peak(1, nil)+m.Peak(4, nil))/2)
	if err != nil {
		t.Fatal(err)
	}

	ctx := oocTestCtx()
	ctx.OOC = NewOOCState(m, plan)
	net, loss := oocTestNet(ctx, 4)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	in := net.InputBlob().Data
	fill := rand.New(rand.NewSource(7))
	for i := range in.Data {
		in.Data[i] = fill.Float32()*2 - 1
	}
	loss.Labels = []int{0, 1, 2, 3}

	// Warm-up pass so plans are decided before the traced window.
	if err := net.RunIteration(); err != nil {
		t.Fatal(err)
	}

	causal.Reset()
	causal.Enable()
	defer func() {
		causal.Disable()
		causal.Reset()
	}()
	rec := trace.New()
	ctx.Cudnn.SetTrace(rec)
	defer ctx.Cudnn.SetTrace(nil)
	ctx.Trace = rec
	for i := 0; i < 2; i++ {
		if err := net.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	causal.Disable()

	tl := causal.Build(rec.Events(), causal.Scopes())
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}

	// Every iteration's critical path must explain >= 95% of its wall
	// time, and every positive stall must carry exactly one cause.
	a := causal.Analyze(tl, nil)
	if len(a.Iterations) != 2 {
		t.Fatalf("iterations: %d, want 2", len(a.Iterations))
	}
	for _, it := range a.Iterations {
		if it.Coverage < 0.95 {
			t.Fatalf("iteration %d coverage %.3f, want >= 0.95", it.Span, it.Coverage)
		}
	}
	for _, l := range a.Layers {
		if l.StallNS > 0 && l.Cause == "" {
			t.Fatalf("layer %s: stall %dns with no cause", l.Layer, l.StallNS)
		}
		if l.StallNS <= 0 && l.Cause != "" {
			t.Fatalf("layer %s: cause %q without stall", l.Layer, l.Cause)
		}
	}

	var b bytes.Buffer
	if err := tl.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// The exported timeline is a function of the simulated device clock
// only: byte-identical across kernel worker counts and with profiling
// on or off.
func TestCausalTimelineDeterministic(t *testing.T) {
	ref := causalTimelineBytes(t, 1, false)
	if len(ref) == 0 {
		t.Fatal("empty timeline")
	}
	if got := causalTimelineBytes(t, 4, false); !bytes.Equal(ref, got) {
		t.Fatal("timeline differs between 1 and 4 workers")
	}
	if got := causalTimelineBytes(t, 4, true); !bytes.Equal(ref, got) {
		t.Fatal("timeline differs with profiling enabled")
	}
}
