package dnn

import (
	"math"
	"math/rand"
	"testing"

	"ucudnn/internal/tensor"
)

// Diamond graph: one blob feeds two convolutions whose outputs are
// summed. The bottom gradient must accumulate contributions from both
// consumers — verified numerically.
func TestDiamondGraphGradientAccumulation(t *testing.T) {
	ctx := testCtx()
	ctx.RNG = rand.New(rand.NewSource(41))
	net := NewNet(ctx)
	in := tensor.Shape{N: 2, C: 3, H: 6, W: 6}
	net.Input("data", in)
	net.Add(NewConv("branchA.conv", 4, 3, 1, 1, false), "a", "data")
	net.Add(NewConv("branchB.conv", 4, 3, 1, 1, false), "b", "data")
	net.Add(NewAdd("join"), "sum", "a", "b")
	net.Add(NewGlobalAvgPool("gap"), "gap", "sum")
	net.Add(NewFC("fc", 3), "fc", "gap")
	loss := NewSoftmaxLoss("loss")
	net.Add(loss, "loss", "fc")
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	net.InputBlob().Data.Randomize(rng, 1)
	loss.Labels = []int{0, 2}
	lossAt := func() float64 {
		if err := net.Forward(); err != nil {
			t.Fatal(err)
		}
		return float64(loss.Loss)
	}
	lossAt()
	if err := net.Backward(); err != nil {
		t.Fatal(err)
	}
	grad := append([]float32{}, net.InputBlob().Grad.Data...)

	// Numeric check on a few input elements: the analytic gradient must
	// combine both branches' contributions.
	const h = 1e-2
	data := net.InputBlob().Data
	for _, i := range []int{0, 50, len(data.Data) - 1} {
		orig := data.Data[i]
		data.Data[i] = orig + h
		lp := lossAt()
		data.Data[i] = orig - h
		lm := lossAt()
		data.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-float64(grad[i])) > 2e-2*(1+math.Abs(num)) {
			t.Errorf("dData[%d]: numeric %g analytic %g", i, num, grad[i])
		}
	}

	// Sanity: the single-branch gradient is different (i.e. accumulation
	// actually happened). Zero branch B's filters so only A contributes.
	for _, p := range net.Params() {
		if p.Name == "branchB.conv.weight" {
			for j := range p.Data {
				p.Data[j] = 0
			}
		}
	}
	lossAt()
	if err := net.Backward(); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range grad {
		if grad[i] != net.InputBlob().Grad.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("input gradient ignored branch B")
	}
}

// A three-way fan-out through in-place-eligible layers must still
// accumulate correctly.
func TestTripleFanOut(t *testing.T) {
	ctx := testCtx()
	ctx.RNG = rand.New(rand.NewSource(43))
	net := NewNet(ctx)
	net.Input("data", tensor.Shape{N: 1, C: 2, H: 4, W: 4})
	net.Add(NewReLU("r1"), "a", "data")
	net.Add(NewReLU("r2"), "b", "data")
	net.Add(NewReLU("r3"), "c", "data")
	net.Add(NewAdd("join"), "sum", "a", "b", "c")
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	x := net.InputBlob().Data
	x.Fill(1) // all positive: ReLU passes gradients through
	if err := net.Forward(); err != nil {
		t.Fatal(err)
	}
	// Seed the top gradient manually (no loss layer here).
	net.Blob("sum").Grad.Fill(1)
	for i := 3; i >= 0; i-- {
		if err := net.backwardLayer(i); err != nil {
			t.Fatal(err)
		}
	}
	for i, g := range net.InputBlob().Grad.Data {
		if g != 3 {
			t.Fatalf("dData[%d] = %v, want 3 (three consumers)", i, g)
		}
	}
}
