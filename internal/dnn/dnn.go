// Package dnn is a small Caffe-like deep-learning framework used to
// evaluate µ-cuDNN at network scale: a layer graph with named blobs,
// forward/backward execution, SGD training, and a per-layer timer
// equivalent to `caffe time`.
//
// Convolution layers reach the kernel library exclusively through the
// ConvHandle interface, which both *cudnn.Handle (plain cuDNN) and
// *core.Handle (µ-cuDNN) satisfy. Integrating µ-cuDNN is therefore the
// paper's three-line change: construct the wrapper handle and pass it in.
//
// Non-convolution layers compute on the CPU and charge the simulated
// clock with a bandwidth-bound cost model, so whole-network timing
// breakdowns (paper Figs. 10, 11, 13) have realistic proportions.
package dnn

import (
	"fmt"
	"math/rand"

	"ucudnn/internal/causal"
	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/faults"
	"ucudnn/internal/prof"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
)

// ConvHandle is the convolution call surface shared by cuDNN and µ-cuDNN.
type ConvHandle interface {
	GetConvolutionForwardAlgorithm(x cudnn.TensorDesc, w cudnn.FilterDesc, cd cudnn.ConvDesc, y cudnn.TensorDesc, pref cudnn.Pref, wsLimit int64) (conv.Algo, error)
	GetConvolutionBackwardDataAlgorithm(w cudnn.FilterDesc, dy cudnn.TensorDesc, cd cudnn.ConvDesc, dx cudnn.TensorDesc, pref cudnn.Pref, wsLimit int64) (conv.Algo, error)
	GetConvolutionBackwardFilterAlgorithm(x cudnn.TensorDesc, dy cudnn.TensorDesc, cd cudnn.ConvDesc, dw cudnn.FilterDesc, pref cudnn.Pref, wsLimit int64) (conv.Algo, error)
	GetConvolutionForwardWorkspaceSize(x cudnn.TensorDesc, w cudnn.FilterDesc, cd cudnn.ConvDesc, y cudnn.TensorDesc, algo conv.Algo) (int64, error)
	GetConvolutionBackwardDataWorkspaceSize(w cudnn.FilterDesc, dy cudnn.TensorDesc, cd cudnn.ConvDesc, dx cudnn.TensorDesc, algo conv.Algo) (int64, error)
	GetConvolutionBackwardFilterWorkspaceSize(x cudnn.TensorDesc, dy cudnn.TensorDesc, cd cudnn.ConvDesc, dw cudnn.FilterDesc, algo conv.Algo) (int64, error)
	ConvolutionForward(alpha float32, xd cudnn.TensorDesc, x *tensor.Tensor, wd cudnn.FilterDesc, w *tensor.FilterTensor, cd cudnn.ConvDesc, algo conv.Algo, ws []float32, beta float32, yd cudnn.TensorDesc, y *tensor.Tensor) error
	ConvolutionBackwardData(alpha float32, wd cudnn.FilterDesc, w *tensor.FilterTensor, dyd cudnn.TensorDesc, dy *tensor.Tensor, cd cudnn.ConvDesc, algo conv.Algo, ws []float32, beta float32, dxd cudnn.TensorDesc, dx *tensor.Tensor) error
	ConvolutionBackwardFilter(alpha float32, xd cudnn.TensorDesc, x *tensor.Tensor, dyd cudnn.TensorDesc, dy *tensor.Tensor, cd cudnn.ConvDesc, algo conv.Algo, ws []float32, beta float32, dwd cudnn.FilterDesc, dw *tensor.FilterTensor) error
}

// Context carries the execution environment through the network.
type Context struct {
	// Conv is the convolution library: plain cuDNN or µ-cuDNN.
	Conv ConvHandle
	// Cudnn is the underlying handle, used for the simulated clock and
	// device-memory accounting (and for everything non-convolutional,
	// mirroring how frameworks use one handle for all of cuDNN).
	Cudnn *cudnn.Handle
	// WorkspaceLimit is the per-layer limit the framework passes through
	// Get*Algorithm (Caffe's convention).
	WorkspaceLimit int64
	// Pref is the algorithm-selection preference handed to Get*Algorithm.
	// Caffe passes SpecifyWorkspaceLimit with WorkspaceLimit; TensorFlow
	// passes PreferFastest and no limit, in which case µ-cuDNN falls back
	// to its own (option- or environment-configured) limit — the paper's
	// §IV-B2 integration.
	Pref cudnn.Pref
	// Training toggles training-mode behaviour (dropout, batch-norm).
	Training bool
	// RNG drives parameter init and dropout, seeded for reproducibility.
	RNG *rand.Rand
	// SkipCompute runs the network for timing/planning only (model-only
	// backends), skipping CPU arithmetic in non-convolution layers.
	SkipCompute bool
	// Trace, when non-nil, receives one span per layer per direction on
	// track 1 of the device timeline (kernel-level spans land on track 0
	// via the cudnn handle's own recorder). Point both at the same
	// recorder to get the paper's Fig. 3 view: layer rows above the
	// micro-batched kernels that implement them.
	Trace *trace.Recorder
	// OOC, when non-nil, streams the mini-batch through the network in
	// micro-batch windows under a blob-memory budget (see ooc.go). Set it
	// before the network is built: Setup sizes convolution kernels to the
	// planned windows and accounts the planned peak working set instead
	// of whole-batch activations.
	OOC *OOCState

	label string

	// wsArena backs convolution workspaces. Each layer's requirement is
	// accounted against the device-memory tracker individually (as Caffe
	// allocates them), but since kernels execute sequentially the host
	// backing can be shared.
	wsArena []float32
}

// Workspace returns a scratch slice of at least the given byte size from
// the shared arena. Valid until the next call. An armed workspace fault
// shrinks (or denies) the grant, simulating framework-side memory
// pressure: convolution layers hand the short buffer on, and the library
// below degrades (µ-cuDNN) or reports the workspace as too small (plain
// cuDNN).
func (c *Context) Workspace(bytes int64) []float32 {
	bytes = faults.Grant(faults.PointDnnWorkspace, bytes)
	if bytes <= 0 {
		return nil
	}
	n := int((bytes + 3) / 4)
	if len(c.wsArena) < n {
		//ucudnn:allow wsfloor -- arena accessor, not a size reporter: grow-and-reuse is its documented contract
		c.wsArena = make([]float32, n)
	}
	return c.wsArena[:n]
}

// NewContext builds a Caffe-style context over the given handles (the
// per-layer workspace limit is forwarded through Get*Algorithm).
func NewContext(convHandle ConvHandle, inner *cudnn.Handle, wsLimit int64) *Context {
	return &Context{
		Conv:           convHandle,
		Cudnn:          inner,
		WorkspaceLimit: wsLimit,
		Pref:           cudnn.SpecifyWorkspaceLimit,
		Training:       true,
		RNG:            rand.New(rand.NewSource(1)),
	}
}

// NewContextTF builds a TensorFlow-style context: layers request
// PreferFastest with no limit, so a wrapped µ-cuDNN handle applies its
// own configured workspace limit instead.
func NewContextTF(convHandle ConvHandle, inner *cudnn.Handle) *Context {
	ctx := NewContext(convHandle, inner, 0)
	ctx.Pref = cudnn.PreferFastest
	return ctx
}

// Device returns the context's device spec.
func (c *Context) Device() device.Spec { return c.Cudnn.Device() }

// Label names the layer currently executing; Net maintains it so the
// clock charges (and trace spans) of non-convolution kernels carry the
// layer name.
func (c *Context) Label() string {
	if c.label == "" {
		return "kernel"
	}
	return c.label
}

// ChargeMem charges the simulated clock with a bandwidth-bound kernel
// moving the given bytes.
func (c *Context) ChargeMem(bytes int64) {
	c.Cudnn.ChargeNamed(c.Label(), "layer", c.Device().MemBoundTime(bytes))
}

// ChargeGemm charges the simulated clock with a dense SGEMM.
func (c *Context) ChargeGemm(m, n, k int64) {
	c.Cudnn.ChargeNamed(c.Label(), "gemm", c.Device().GemmTime(m, n, k))
}

// Param is one learnable parameter tensor (flat storage).
type Param struct {
	Name string
	Data []float32
	Grad []float32
}

// Layer is one network operation. Layers are single-output except where
// noted; multi-input layers (Add, Concat) consume several bottoms.
type Layer interface {
	Name() string
	// Setup validates bottom shapes, allocates parameters and internal
	// state, and returns the top shape.
	Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error)
	// Forward computes top from bottoms.
	Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error
	// Backward computes bottom gradients (into dBottoms, overwriting) and
	// accumulates parameter gradients, given the forward activations and
	// the top gradient.
	Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error
	// Params returns the learnable parameters (may be empty).
	Params() []*Param
}

// Blob is a named activation tensor with its gradient. In timing-only
// mode (Context.SkipCompute) Data and Grad are nil and only Shape is set.
type Blob struct {
	Name  string
	Shape tensor.Shape
	Data  *tensor.Tensor
	Grad  *tensor.Tensor
}

type layerInst struct {
	layer   Layer
	bottoms []string
	top     string
}

// Net is a feed-forward network over named blobs, executed in insertion
// order (the builder adds layers topologically).
type Net struct {
	ctx    *Context
	layers []layerInst
	blobs  map[string]*Blob
	order  []string // blob creation order, for deterministic iteration
	ready  bool

	inputName  string
	inputShape tensor.Shape
}

// NewNet creates an empty network over ctx.
func NewNet(ctx *Context) *Net {
	return &Net{ctx: ctx, blobs: map[string]*Blob{}}
}

// Ctx returns the network's context.
func (n *Net) Ctx() *Context { return n.ctx }

// Input declares the network input blob.
func (n *Net) Input(name string, shape tensor.Shape) {
	n.inputName = name
	n.inputShape = shape
}

// Add appends a layer reading bottoms and producing top.
func (n *Net) Add(l Layer, top string, bottoms ...string) {
	n.layers = append(n.layers, layerInst{layer: l, bottoms: bottoms, top: top})
}

// Setup propagates shapes, allocates all blobs and parameters, and
// accounts activation memory against the device tracker.
func (n *Net) Setup() error {
	if n.ready {
		return nil
	}
	if n.inputName == "" || !n.inputShape.Valid() {
		return fmt.Errorf("dnn: network input not declared")
	}
	shapes := map[string]tensor.Shape{n.inputName: n.inputShape}
	if err := n.addBlobCharged(n.inputName, n.inputShape, n.ctx.OOC == nil); err != nil {
		return err
	}
	for _, li := range n.layers {
		var bs []tensor.Shape
		for _, b := range li.bottoms {
			s, ok := shapes[b]
			if !ok {
				return fmt.Errorf("dnn: layer %s reads unknown blob %q", li.layer.Name(), b)
			}
			bs = append(bs, s)
		}
		out, err := li.layer.Setup(n.ctx, bs)
		if err != nil {
			return fmt.Errorf("dnn: setting up %s: %w", li.layer.Name(), err)
		}
		if _, dup := shapes[li.top]; dup {
			return fmt.Errorf("dnn: blob %q written twice", li.top)
		}
		shapes[li.top] = out
		// In-place-eligible layers (ReLU, LRN, dropout, batch-norm) alias
		// their bottom blob on a real device, as Caffe runs them; their
		// tops consume no extra device memory.
		charge := true
		if ip, ok := li.layer.(inPlacer); ok && ip.InPlace() {
			charge = false
		}
		if n.ctx.OOC != nil {
			// Out-of-core execution streams activations: individual blobs
			// are not device-resident whole; the planned peak working set
			// is charged once below.
			charge = false
		}
		if err := n.addBlobCharged(li.top, out, charge); err != nil {
			return err
		}
	}
	n.ready = true
	if ooc := n.ctx.OOC; ooc != nil {
		if err := ooc.bind(n); err != nil {
			return err
		}
		if err := n.ctx.Cudnn.Mem().Alloc(ooc.Plan.PeakBytes); err != nil {
			return fmt.Errorf("dnn: allocating OOC working set: %w", err)
		}
	}
	return nil
}

// inPlacer marks layers whose top may alias their bottom on the device.
type inPlacer interface{ InPlace() bool }

func (n *Net) addBlobCharged(name string, s tensor.Shape, charge bool) error {
	if charge {
		if err := n.ctx.Cudnn.Mem().Alloc(2 * s.Bytes()); err != nil {
			return fmt.Errorf("dnn: allocating blob %q: %w", name, err)
		}
	}
	b := &Blob{Name: name}
	// Timing-only runs (SkipCompute) account device memory but do not
	// back the blobs with host storage: layers charge the clock without
	// touching data.
	if !n.ctx.SkipCompute {
		b.Data = tensor.NewShaped(s)
		b.Grad = tensor.NewShaped(s)
	}
	b.Shape = s
	n.blobs[name] = b
	n.order = append(n.order, name)
	return nil
}

// Blob returns a named blob (nil if absent).
func (n *Net) Blob(name string) *Blob { return n.blobs[name] }

// InputBlob returns the input blob.
func (n *Net) InputBlob() *Blob { return n.blobs[n.inputName] }

// OutputBlob returns the final layer's top blob.
func (n *Net) OutputBlob() *Blob {
	if len(n.layers) == 0 {
		return n.InputBlob()
	}
	return n.blobs[n.layers[len(n.layers)-1].top]
}

// Params returns all learnable parameters in layer order.
func (n *Net) Params() []*Param {
	var out []*Param
	for _, li := range n.layers {
		out = append(out, li.layer.Params()...)
	}
	return out
}

// ConvLayers returns the network's convolution layers in execution order.
func (n *Net) ConvLayers() []*Conv {
	var out []*Conv
	for _, li := range n.layers {
		if c, ok := li.layer.(*Conv); ok {
			out = append(out, c)
		}
	}
	return out
}

// Layers returns the layer names in execution order.
func (n *Net) Layers() []string {
	out := make([]string, len(n.layers))
	for i, li := range n.layers {
		out[i] = li.layer.Name()
	}
	return out
}

// Forward runs the full forward pass.
func (n *Net) Forward() error {
	if err := n.Setup(); err != nil {
		return err
	}
	for i := range n.layers {
		if err := n.forwardLayer(i); err != nil {
			return err
		}
	}
	return nil
}

func (n *Net) forwardLayer(i int) error {
	li := n.layers[i]
	n.ctx.label = li.layer.Name()
	prof.SetLayer(li.layer.Name())
	sc := causal.Begin(causal.KindLayer, li.layer.Name())
	defer causal.End(sc)
	defer func() { n.ctx.label = ""; prof.SetLayer("") }()
	defer n.layerSpan(li.layer.Name(), "forward", sc)()
	if n.ctx.OOC != nil {
		if err := n.ctx.OOC.beginLayer(n.ctx, i, false); err != nil {
			return err
		}
	}
	bot := make([]*tensor.Tensor, len(li.bottoms))
	for j, b := range li.bottoms {
		bot[j] = n.blobs[b].Data
	}
	if err := li.layer.Forward(n.ctx, bot, n.blobs[li.top].Data); err != nil {
		return fmt.Errorf("dnn: forward %s: %w", li.layer.Name(), err)
	}
	return nil
}

// layerSpan opens a per-layer span on the context's trace recorder and
// returns the closure that records it; the span covers the simulated-
// clock interval the layer's kernels charged and carries the layer's
// causal scope ID. A no-op when tracing is off.
func (n *Net) layerSpan(name, dir string, sc causal.Token) func() {
	return n.spanOn(trace.TrackLayer, name, dir, sc)
}

// spanOn records a bracket span on an arbitrary track covering the
// simulated-clock interval between the call and the returned closure.
func (n *Net) spanOn(track int, name, cat string, sc causal.Token) func() {
	if n.ctx.Trace == nil {
		return func() {}
	}
	start := n.ctx.Cudnn.Elapsed()
	return func() {
		n.ctx.Trace.Add(trace.Event{
			Name:   name,
			Cat:    cat,
			Start:  start,
			Dur:    n.ctx.Cudnn.Elapsed() - start,
			Track:  track,
			Span:   uint64(sc.ID),
			Parent: uint64(sc.Parent),
		})
	}
}

// RunIteration runs one training iteration (forward + backward) inside
// an iteration-level causal scope, recording an iteration bracket span.
// This is the unit the critical-path engine analyzes.
func (n *Net) RunIteration() error {
	if err := n.Setup(); err != nil {
		return err
	}
	sc := causal.Begin(causal.KindIteration, "iteration")
	defer causal.End(sc)
	defer n.spanOn(trace.TrackIteration, "iteration", "iteration", sc)()
	if err := n.Forward(); err != nil {
		return err
	}
	return n.Backward()
}

// Backward runs the full backward pass; loss layers seed their own bottom
// gradients, so no top gradient needs to be provided. Bottom gradients
// accumulate across consumers, so blob gradients are zeroed first.
func (n *Net) Backward() error {
	if !n.ready {
		return fmt.Errorf("dnn: Backward before Forward")
	}
	if !n.ctx.SkipCompute {
		for _, b := range n.blobs {
			b.Grad.Zero()
		}
	}
	for i := len(n.layers) - 1; i >= 0; i-- {
		if err := n.backwardLayer(i); err != nil {
			return err
		}
	}
	return nil
}

func (n *Net) backwardLayer(i int) error {
	li := n.layers[i]
	n.ctx.label = li.layer.Name() + "/bwd"
	prof.SetLayer(n.ctx.label)
	sc := causal.Begin(causal.KindLayer, li.layer.Name())
	defer causal.End(sc)
	defer func() { n.ctx.label = ""; prof.SetLayer("") }()
	defer n.layerSpan(li.layer.Name(), "backward", sc)()
	if n.ctx.OOC != nil {
		if err := n.ctx.OOC.beginLayer(n.ctx, i, true); err != nil {
			return err
		}
	}
	bot := make([]*tensor.Tensor, len(li.bottoms))
	dbot := make([]*tensor.Tensor, len(li.bottoms))
	for j, b := range li.bottoms {
		bot[j] = n.blobs[b].Data
		dbot[j] = n.blobs[b].Grad
	}
	top := n.blobs[li.top]
	if n.ctx.SkipCompute {
		if err := li.layer.Backward(n.ctx, bot, top.Data, top.Grad, dbot); err != nil {
			return fmt.Errorf("dnn: backward %s: %w", li.layer.Name(), err)
		}
		return nil
	}
	// Layers overwrite dBottoms; since a blob may feed several layers,
	// accumulate via a scratch buffer. Single-consumer blobs dominate, so
	// the extra add is cheap relative to the layer work.
	scratch := make([]*tensor.Tensor, len(dbot))
	for j := range dbot {
		scratch[j] = tensor.NewShaped(dbot[j].Shape)
	}
	if err := li.layer.Backward(n.ctx, bot, top.Data, top.Grad, scratch); err != nil {
		return fmt.Errorf("dnn: backward %s: %w", li.layer.Name(), err)
	}
	for j := range dbot {
		dst := dbot[j].Data
		src := scratch[j].Data
		for k := range dst {
			dst[k] += src[k]
		}
	}
	return nil
}

// ZeroGrads clears all parameter gradients.
func (n *Net) ZeroGrads() {
	for _, p := range n.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}
