package dnn

import (
	"math"
	"math/rand"
	"testing"

	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

func testCtx() *Context {
	h := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	return NewContext(h, h, 8<<20)
}

// gradCheckLayer verifies a layer's Backward against central differences
// of a random linear functional of its Forward.
func gradCheckLayer(t *testing.T, l Layer, inShapes []tensor.Shape, seed int64, tol float64) {
	t.Helper()
	ctx := testCtx()
	ctx.RNG = rand.New(rand.NewSource(seed))
	outShape, err := l.Setup(ctx, inShapes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 100))
	bottoms := make([]*tensor.Tensor, len(inShapes))
	for i, s := range inShapes {
		bottoms[i] = tensor.NewShaped(s)
		bottoms[i].Randomize(rng, 1)
	}
	top := tensor.NewShaped(outShape)
	g := tensor.NewShaped(outShape)
	g.Randomize(rng, 1)
	loss := func() float64 {
		if err := l.Forward(ctx, bottoms, top); err != nil {
			t.Fatal(err)
		}
		var s float64
		for i := range top.Data {
			s += float64(top.Data[i]) * float64(g.Data[i])
		}
		return s
	}
	loss() // populate forward caches
	dBottoms := make([]*tensor.Tensor, len(bottoms))
	for i := range dBottoms {
		dBottoms[i] = tensor.NewShaped(bottoms[i].Shape)
	}
	for _, p := range l.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
	if err := l.Backward(ctx, bottoms, top, g, dBottoms); err != nil {
		t.Fatal(err)
	}
	const h = 1e-2
	check := func(name string, data []float32, grad []float32, idxs []int) {
		for _, i := range idxs {
			orig := data[i]
			data[i] = orig + h
			lp := loss()
			data[i] = orig - h
			lm := loss()
			data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-float64(grad[i])) > tol*(1+math.Abs(num)) {
				t.Errorf("%s: %s[%d] numeric %g analytic %g", l.Name(), name, i, num, grad[i])
			}
		}
	}
	for bi := range bottoms {
		n := len(bottoms[bi].Data)
		check("bottom", bottoms[bi].Data, dBottoms[bi].Data, []int{0, n / 3, n - 1})
	}
	for _, p := range l.Params() {
		n := len(p.Data)
		check(p.Name, p.Data, p.Grad, []int{0, n / 2, n - 1})
	}
}

func TestReLUGradient(t *testing.T) {
	gradCheckLayer(t, NewReLU("relu"), []tensor.Shape{{N: 2, C: 3, H: 4, W: 4}}, 1, 2e-2)
}

func TestMaxPoolGradient(t *testing.T) {
	gradCheckLayer(t, NewPool("pool", MaxPool, 3, 2, 0), []tensor.Shape{{N: 2, C: 2, H: 7, W: 7}}, 2, 2e-2)
}

func TestAvgPoolGradient(t *testing.T) {
	gradCheckLayer(t, NewPool("pool", AvgPool, 2, 2, 0), []tensor.Shape{{N: 2, C: 2, H: 6, W: 6}}, 3, 1e-2)
}

func TestAvgPoolPaddedGradient(t *testing.T) {
	gradCheckLayer(t, NewPool("pool", AvgPool, 3, 2, 1), []tensor.Shape{{N: 1, C: 2, H: 5, W: 5}}, 4, 1e-2)
}

func TestGlobalAvgPoolGradient(t *testing.T) {
	gradCheckLayer(t, NewGlobalAvgPool("gap"), []tensor.Shape{{N: 2, C: 3, H: 5, W: 5}}, 5, 1e-2)
}

func TestAddGradient(t *testing.T) {
	s := tensor.Shape{N: 2, C: 2, H: 3, W: 3}
	gradCheckLayer(t, NewAdd("add"), []tensor.Shape{s, s, s}, 6, 1e-2)
}

func TestConcatGradient(t *testing.T) {
	gradCheckLayer(t, NewConcat("cat"),
		[]tensor.Shape{{N: 2, C: 2, H: 3, W: 3}, {N: 2, C: 3, H: 3, W: 3}}, 7, 1e-2)
}

func TestLRNGradient(t *testing.T) {
	gradCheckLayer(t, NewLRN("lrn"), []tensor.Shape{{N: 2, C: 8, H: 3, W: 3}}, 8, 2e-2)
}

func TestBatchNormGradient(t *testing.T) {
	gradCheckLayer(t, NewBatchNorm("bn"), []tensor.Shape{{N: 3, C: 2, H: 4, W: 4}}, 9, 5e-2)
}

func TestFCGradient(t *testing.T) {
	gradCheckLayer(t, NewFC("fc", 5), []tensor.Shape{{N: 3, C: 4, H: 2, W: 2}}, 10, 2e-2)
}

func TestConvLayerGradient(t *testing.T) {
	gradCheckLayer(t, NewConv("conv", 4, 3, 1, 1, true), []tensor.Shape{{N: 2, C: 3, H: 5, W: 5}}, 11, 2e-2)
}

func TestConvStridedGradient(t *testing.T) {
	gradCheckLayer(t, NewConv("conv", 3, 3, 2, 1, false), []tensor.Shape{{N: 2, C: 2, H: 7, W: 7}}, 12, 2e-2)
}

func TestDropoutInference(t *testing.T) {
	ctx := testCtx()
	ctx.Training = false
	l := NewDropout("drop", 0.5)
	s := tensor.Shape{N: 1, C: 2, H: 2, W: 2}
	if _, err := l.Setup(ctx, []tensor.Shape{s}); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewShaped(s)
	x.Fill(3)
	y := tensor.NewShaped(s)
	if err := l.Forward(ctx, []*tensor.Tensor{x}, y); err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Data {
		if v != 3 {
			t.Fatal("inference dropout must be identity")
		}
	}
}

func TestDropoutTrainingMaskConsistency(t *testing.T) {
	ctx := testCtx()
	l := NewDropout("drop", 0.5)
	s := tensor.Shape{N: 1, C: 1, H: 8, W: 8}
	if _, err := l.Setup(ctx, []tensor.Shape{s}); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewShaped(s)
	x.Fill(1)
	y := tensor.NewShaped(s)
	if err := l.Forward(ctx, []*tensor.Tensor{x}, y); err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		} else if v != 2 { // inverted dropout scale 1/(1-0.5)
			t.Fatalf("unexpected survivor value %v", v)
		}
	}
	if zeros == 0 || zeros == len(y.Data) {
		t.Fatalf("implausible dropout mask: %d zeros", zeros)
	}
	// Backward uses the same mask.
	dTop := tensor.NewShaped(s)
	dTop.Fill(1)
	dx := tensor.NewShaped(s)
	if err := l.Backward(ctx, []*tensor.Tensor{x}, y, dTop, []*tensor.Tensor{dx}); err != nil {
		t.Fatal(err)
	}
	for i := range dx.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("backward mask mismatch")
		}
	}
}

func TestSoftmaxLossGradient(t *testing.T) {
	ctx := testCtx()
	l := NewSoftmaxLoss("loss")
	s := tensor.Shape{N: 3, C: 4, H: 1, W: 1}
	if _, err := l.Setup(ctx, []tensor.Shape{s}); err != nil {
		t.Fatal(err)
	}
	l.Labels = []int{1, 3, 0}
	rng := rand.New(rand.NewSource(13))
	x := tensor.NewShaped(s)
	x.Randomize(rng, 1)
	top := tensor.New(1, 1, 1, 1)
	if err := l.Forward(ctx, []*tensor.Tensor{x}, top); err != nil {
		t.Fatal(err)
	}
	dx := tensor.NewShaped(s)
	if err := l.Backward(ctx, []*tensor.Tensor{x}, top, nil, []*tensor.Tensor{dx}); err != nil {
		t.Fatal(err)
	}
	const h = 1e-2
	for _, i := range []int{0, 5, 11} {
		orig := x.Data[i]
		x.Data[i] = orig + h
		l.Forward(ctx, []*tensor.Tensor{x}, top)
		lp := float64(l.Loss)
		x.Data[i] = orig - h
		l.Forward(ctx, []*tensor.Tensor{x}, top)
		lm := float64(l.Loss)
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-float64(dx.Data[i])) > 2e-2*(1+math.Abs(num)) {
			t.Errorf("softmax dx[%d]: numeric %g analytic %g", i, num, dx.Data[i])
		}
	}
}

func TestSoftmaxLossDecreasesWithConfidence(t *testing.T) {
	ctx := testCtx()
	l := NewSoftmaxLoss("loss")
	s := tensor.Shape{N: 1, C: 3, H: 1, W: 1}
	l.Setup(ctx, []tensor.Shape{s})
	l.Labels = []int{0}
	x := tensor.NewShaped(s)
	top := tensor.New(1, 1, 1, 1)
	x.Data[0] = 0
	l.Forward(ctx, []*tensor.Tensor{x}, top)
	uniform := l.Loss
	x.Data[0] = 5
	l.Forward(ctx, []*tensor.Tensor{x}, top)
	if l.Loss >= uniform {
		t.Fatal("confident correct logit must lower the loss")
	}
}

func TestPoolCaffeOutputDims(t *testing.T) {
	// AlexNet pool1: 55x55, kernel 3, stride 2 -> 27x27 (ceil mode).
	ctx := testCtx()
	l := NewPool("p", MaxPool, 3, 2, 0)
	out, err := l.Setup(ctx, []tensor.Shape{{N: 1, C: 1, H: 55, W: 55}})
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 27 || out.W != 27 {
		t.Fatalf("pool out = %v, want 27x27", out)
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	ctx := testCtx()
	l := NewBatchNorm("bn")
	s := tensor.Shape{N: 4, C: 2, H: 3, W: 3}
	l.Setup(ctx, []tensor.Shape{s})
	rng := rand.New(rand.NewSource(14))
	x := tensor.NewShaped(s)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*4 + 10 // mean ~12, nonzero
	}
	y := tensor.NewShaped(s)
	if err := l.Forward(ctx, []*tensor.Tensor{x}, y); err != nil {
		t.Fatal(err)
	}
	// Per-channel output mean ~0, variance ~1.
	plane := s.H * s.W
	for c := 0; c < s.C; c++ {
		var mean, msq float64
		for n := 0; n < s.N; n++ {
			base := y.Index(n, c, 0, 0)
			for i := 0; i < plane; i++ {
				v := float64(y.Data[base+i])
				mean += v
				msq += v * v
			}
		}
		m := float64(s.N * plane)
		mean /= m
		variance := msq/m - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d: mean %g var %g", c, mean, variance)
		}
	}
}

func TestSGDMomentum(t *testing.T) {
	p := &Param{Data: []float32{1}, Grad: []float32{1}}
	s := NewSGD(0.1, 0.9, 0)
	s.Step([]*Param{p})
	if math.Abs(float64(p.Data[0]-0.9)) > 1e-6 {
		t.Fatalf("after step 1: %v", p.Data[0])
	}
	// Velocity carries over: v = 0.9*0.1 + 0.1*1 = 0.19; w = 0.9-0.19.
	s.Step([]*Param{p})
	if math.Abs(float64(p.Data[0]-0.71)) > 1e-6 {
		t.Fatalf("after step 2: %v", p.Data[0])
	}
	// Weight decay pulls towards zero.
	sd := NewSGD(0.1, 0, 1)
	pd := &Param{Data: []float32{2}, Grad: []float32{0}}
	sd.Step([]*Param{pd})
	if pd.Data[0] >= 2 {
		t.Fatal("decay must shrink the weight")
	}
}

// BatchNorm inference mode uses running statistics accumulated during
// training.
func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	ctx := testCtx()
	l := NewBatchNorm("bn")
	s := tensor.Shape{N: 4, C: 2, H: 3, W: 3}
	if _, err := l.Setup(ctx, []tensor.Shape{s}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	x := tensor.NewShaped(s)
	y := tensor.NewShaped(s)
	// Several training steps accumulate running stats.
	for i := 0; i < 30; i++ {
		for j := range x.Data {
			x.Data[j] = rng.Float32()*2 + 5
		}
		if err := l.Forward(ctx, []*tensor.Tensor{x}, y); err != nil {
			t.Fatal(err)
		}
	}
	// Inference on a constant input: output must NOT be renormalized to
	// zero mean (it uses the running stats, not batch stats).
	ctx.Training = false
	x.Fill(5)
	if err := l.Forward(ctx, []*tensor.Tensor{x}, y); err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range y.Data {
		mean += float64(v)
	}
	mean /= float64(len(y.Data))
	if math.Abs(mean) < 1e-3 {
		t.Fatal("inference BN renormalized the batch (used batch stats)")
	}
	// And it must be deterministic.
	y2 := tensor.NewShaped(s)
	if err := l.Forward(ctx, []*tensor.Tensor{x}, y2); err != nil {
		t.Fatal(err)
	}
	for i := range y.Data {
		if y.Data[i] != y2.Data[i] {
			t.Fatal("inference BN not deterministic")
		}
	}
}

// The timer also works over the real backend, attributing measured wall
// time to layers.
func TestNetTimeRealBackend(t *testing.T) {
	h := cudnn.NewHandle(device.P100, cudnn.RealBackend)
	ctx := NewContext(h, h, 1<<20)
	net, loss := buildTinyNet(ctx, 2)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	loss.Labels = []int{0, 1}
	rep, err := net.Time(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Layer("conv1").Forward <= 0 {
		t.Fatal("real-backend timing missing")
	}
}
