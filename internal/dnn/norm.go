package dnn

import (
	"fmt"
	"math"

	"ucudnn/internal/tensor"
)

// LRN is AlexNet's cross-channel local response normalization:
//
//	y[c] = x[c] / d[c]^beta,  d[c] = k + (alpha/n) * sum_{c' in win(c)} x[c']^2
type LRN struct {
	name        string
	n           int // window size
	alpha, beta float32
	k           float32
	shape       tensor.Shape
	denom       []float32 // cached d[c] from forward
}

// NewLRN builds an LRN layer with AlexNet's defaults (n=5, alpha=1e-4,
// beta=0.75, k=1).
func NewLRN(name string) *LRN {
	return &LRN{name: name, n: 5, alpha: 1e-4, beta: 0.75, k: 1}
}

// Name implements Layer.
func (l *LRN) Name() string { return l.name }

// Params implements Layer.
func (l *LRN) Params() []*Param { return nil }

// Setup implements Layer.
func (l *LRN) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) != 1 {
		return tensor.Shape{}, fmt.Errorf("lrn %s: want 1 bottom", l.name)
	}
	l.shape = bottoms[0]
	if !ctx.SkipCompute {
		l.denom = make([]float32, l.shape.Elems())
	}
	return bottoms[0], nil
}

// Forward implements Layer.
func (l *LRN) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	ctx.ChargeMem(3 * l.shape.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	s := l.shape
	half := l.n / 2
	scale := l.alpha / float32(l.n)
	x := bottoms[0]
	for n := 0; n < s.N; n++ {
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				for c := 0; c < s.C; c++ {
					lo := imax(0, c-half)
					hi := imin(s.C-1, c+half)
					var acc float32
					for cc := lo; cc <= hi; cc++ {
						v := x.At(n, cc, h, w)
						acc += v * v
					}
					d := l.k + scale*acc
					idx := x.Index(n, c, h, w)
					l.denom[idx] = d
					top.Data[idx] = x.Data[idx] * float32(math.Pow(float64(d), float64(-l.beta)))
				}
			}
		}
	}
	return nil
}

// Backward implements Layer.
func (l *LRN) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	ctx.ChargeMem(4 * l.shape.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	// dx[c] = dy[c]*d[c]^-beta
	//         - 2*scale*beta * x[c] * sum_{c': c in win(c')} dy[c']*y[c']/d[c']
	s := l.shape
	half := l.n / 2
	scale := l.alpha / float32(l.n)
	x := bottoms[0]
	for n := 0; n < s.N; n++ {
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				for c := 0; c < s.C; c++ {
					idx := x.Index(n, c, h, w)
					d := l.denom[idx]
					acc := dTop.Data[idx] * float32(math.Pow(float64(d), float64(-l.beta)))
					lo := imax(0, c-half)
					hi := imin(s.C-1, c+half)
					var ratio float32
					for cc := lo; cc <= hi; cc++ {
						j := x.Index(n, cc, h, w)
						ratio += dTop.Data[j] * top.Data[j] / l.denom[j]
					}
					acc -= 2 * scale * l.beta * x.Data[idx] * ratio
					dBottoms[0].Data[idx] = acc
				}
			}
		}
	}
	return nil
}

// BatchNorm is spatial batch normalization with learnable scale and bias.
// Training mode uses batch statistics; inference uses running averages.
type BatchNorm struct {
	name    string
	eps     float32
	shape   tensor.Shape
	gamma   *Param
	beta    *Param
	mean    []float32 // batch mean per channel (cached for backward)
	invStd  []float32
	xhat    []float32
	runMean []float32
	runVar  []float32
}

// NewBatchNorm builds a batch normalization layer.
func NewBatchNorm(name string) *BatchNorm {
	return &BatchNorm{name: name, eps: 1e-5}
}

// Name implements Layer.
func (l *BatchNorm) Name() string { return l.name }

// Params implements Layer.
func (l *BatchNorm) Params() []*Param {
	if l.gamma == nil {
		return nil
	}
	return []*Param{l.gamma, l.beta}
}

// Setup implements Layer.
func (l *BatchNorm) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) != 1 {
		return tensor.Shape{}, fmt.Errorf("bn %s: want 1 bottom", l.name)
	}
	l.shape = bottoms[0]
	c := l.shape.C
	l.gamma = &Param{Name: l.name + ".gamma", Data: make([]float32, c), Grad: make([]float32, c)}
	l.beta = &Param{Name: l.name + ".beta", Data: make([]float32, c), Grad: make([]float32, c)}
	for i := range l.gamma.Data {
		l.gamma.Data[i] = 1
	}
	if err := ctx.Cudnn.Mem().Alloc(4 * int64(c) * 4); err != nil {
		return tensor.Shape{}, err
	}
	if !ctx.SkipCompute {
		l.mean = make([]float32, c)
		l.invStd = make([]float32, c)
		l.xhat = make([]float32, l.shape.Elems())
		l.runMean = make([]float32, c)
		l.runVar = make([]float32, c)
	}
	return bottoms[0], nil
}

// Forward implements Layer.
func (l *BatchNorm) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	ctx.ChargeMem(3 * l.shape.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	s := l.shape
	plane := s.H * s.W
	m := float32(s.N * plane)
	x := bottoms[0]
	for c := 0; c < s.C; c++ {
		var mean, msq float64
		for n := 0; n < s.N; n++ {
			base := x.Index(n, c, 0, 0)
			for i := 0; i < plane; i++ {
				v := float64(x.Data[base+i])
				mean += v
				msq += v * v
			}
		}
		mean /= float64(m)
		variance := msq/float64(m) - mean*mean
		if variance < 0 {
			variance = 0
		}
		var mu, is float32
		if ctx.Training {
			mu = float32(mean)
			is = float32(1 / math.Sqrt(variance+float64(l.eps)))
			const momentum = 0.9
			l.runMean[c] = momentum*l.runMean[c] + (1-momentum)*mu
			l.runVar[c] = momentum*l.runVar[c] + (1-momentum)*float32(variance)
		} else {
			mu = l.runMean[c]
			is = float32(1 / math.Sqrt(float64(l.runVar[c])+float64(l.eps)))
		}
		l.mean[c] = mu
		l.invStd[c] = is
		g, b := l.gamma.Data[c], l.beta.Data[c]
		for n := 0; n < s.N; n++ {
			base := x.Index(n, c, 0, 0)
			for i := 0; i < plane; i++ {
				xh := (x.Data[base+i] - mu) * is
				l.xhat[base+i] = xh
				top.Data[base+i] = g*xh + b
			}
		}
	}
	return nil
}

// Backward implements Layer.
func (l *BatchNorm) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	ctx.ChargeMem(4 * l.shape.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	s := l.shape
	plane := s.H * s.W
	m := float32(s.N * plane)
	for c := 0; c < s.C; c++ {
		var sumDy, sumDyXhat float64
		for n := 0; n < s.N; n++ {
			base := dTop.Index(n, c, 0, 0)
			for i := 0; i < plane; i++ {
				dy := float64(dTop.Data[base+i])
				sumDy += dy
				sumDyXhat += dy * float64(l.xhat[base+i])
			}
		}
		l.gamma.Grad[c] += float32(sumDyXhat)
		l.beta.Grad[c] += float32(sumDy)
		g := l.gamma.Data[c]
		is := l.invStd[c]
		for n := 0; n < s.N; n++ {
			base := dTop.Index(n, c, 0, 0)
			for i := 0; i < plane; i++ {
				dy := dTop.Data[base+i]
				xh := l.xhat[base+i]
				dBottoms[0].Data[base+i] = g * is / m *
					(m*dy - float32(sumDy) - xh*float32(sumDyXhat))
			}
		}
	}
	return nil
}

// InPlace marks LRN as in-place eligible (Caffe's convention).
func (l *LRN) InPlace() bool { return true }

// InPlace marks BatchNorm as in-place eligible.
func (l *BatchNorm) InPlace() bool { return true }
