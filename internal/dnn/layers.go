package dnn

import (
	"fmt"
	"math"

	"ucudnn/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	name  string
	shape tensor.Shape
}

// NewReLU builds a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// Setup implements Layer.
func (l *ReLU) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) != 1 {
		return tensor.Shape{}, fmt.Errorf("relu %s: want 1 bottom", l.name)
	}
	l.shape = bottoms[0]
	return bottoms[0], nil
}

// Forward implements Layer.
func (l *ReLU) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	ctx.ChargeMem(2 * l.shape.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	for i, v := range bottoms[0].Data {
		if v > 0 {
			top.Data[i] = v
		} else {
			top.Data[i] = 0
		}
	}
	return nil
}

// Backward implements Layer.
func (l *ReLU) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	ctx.ChargeMem(3 * l.shape.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	for i, v := range bottoms[0].Data {
		if v > 0 {
			dBottoms[0].Data[i] = dTop.Data[i]
		} else {
			dBottoms[0].Data[i] = 0
		}
	}
	return nil
}

// PoolKind selects max or average pooling.
type PoolKind int

const (
	// MaxPool takes the window maximum.
	MaxPool PoolKind = iota
	// AvgPool takes the window average (counting only in-bounds elements,
	// Caffe's convention).
	AvgPool
)

// Pool is a spatial pooling layer.
type Pool struct {
	name           string
	kind           PoolKind
	kernel, stride int
	pad            int
	in, out        tensor.Shape
	argmax         []int32
}

// NewPool builds a pooling layer.
func NewPool(name string, kind PoolKind, kernel, stride, pad int) *Pool {
	return &Pool{name: name, kind: kind, kernel: kernel, stride: stride, pad: pad}
}

// Name implements Layer.
func (l *Pool) Name() string { return l.name }

// Params implements Layer.
func (l *Pool) Params() []*Param { return nil }

// Setup implements Layer.
func (l *Pool) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) != 1 {
		return tensor.Shape{}, fmt.Errorf("pool %s: want 1 bottom", l.name)
	}
	in := bottoms[0]
	// Caffe's pooling output dims (ceil mode).
	oh := int(math.Ceil(float64(in.H+2*l.pad-l.kernel)/float64(l.stride))) + 1
	ow := int(math.Ceil(float64(in.W+2*l.pad-l.kernel)/float64(l.stride))) + 1
	if l.pad > 0 {
		// Clip windows that start inside the padding entirely.
		if (oh-1)*l.stride >= in.H+l.pad {
			oh--
		}
		if (ow-1)*l.stride >= in.W+l.pad {
			ow--
		}
	}
	if oh <= 0 || ow <= 0 {
		return tensor.Shape{}, fmt.Errorf("pool %s: empty output", l.name)
	}
	l.in = in
	l.out = tensor.Shape{N: in.N, C: in.C, H: oh, W: ow}
	if l.kind == MaxPool && !ctx.SkipCompute {
		l.argmax = make([]int32, l.out.Elems())
	}
	return l.out, nil
}

// Forward implements Layer.
func (l *Pool) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	ctx.ChargeMem(l.in.Bytes() + l.out.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	x := bottoms[0]
	for n := 0; n < l.out.N; n++ {
		for c := 0; c < l.out.C; c++ {
			for oh := 0; oh < l.out.H; oh++ {
				for ow := 0; ow < l.out.W; ow++ {
					h0 := oh*l.stride - l.pad
					w0 := ow*l.stride - l.pad
					h1 := imin(h0+l.kernel, l.in.H)
					w1 := imin(w0+l.kernel, l.in.W)
					h0 = imax(h0, 0)
					w0 = imax(w0, 0)
					oi := top.Index(n, c, oh, ow)
					if l.kind == MaxPool {
						best := float32(math.Inf(-1))
						bestIdx := int32(-1)
						for h := h0; h < h1; h++ {
							for w := w0; w < w1; w++ {
								if v := x.At(n, c, h, w); v > best {
									best = v
									bestIdx = int32(x.Index(n, c, h, w))
								}
							}
						}
						top.Data[oi] = best
						l.argmax[oi] = bestIdx
					} else {
						var sum float32
						cnt := 0
						for h := h0; h < h1; h++ {
							for w := w0; w < w1; w++ {
								sum += x.At(n, c, h, w)
								cnt++
							}
						}
						top.Data[oi] = sum / float32(cnt)
					}
				}
			}
		}
	}
	return nil
}

// Backward implements Layer.
func (l *Pool) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	ctx.ChargeMem(l.in.Bytes() + l.out.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	dx := dBottoms[0]
	dx.Zero()
	if l.kind == MaxPool {
		for oi, src := range l.argmax {
			if src >= 0 {
				dx.Data[src] += dTop.Data[oi]
			}
		}
		return nil
	}
	for n := 0; n < l.out.N; n++ {
		for c := 0; c < l.out.C; c++ {
			for oh := 0; oh < l.out.H; oh++ {
				for ow := 0; ow < l.out.W; ow++ {
					h0 := oh*l.stride - l.pad
					w0 := ow*l.stride - l.pad
					h1 := imin(h0+l.kernel, l.in.H)
					w1 := imin(w0+l.kernel, l.in.W)
					h0 = imax(h0, 0)
					w0 = imax(w0, 0)
					cnt := (h1 - h0) * (w1 - w0)
					g := dTop.At(n, c, oh, ow) / float32(cnt)
					for h := h0; h < h1; h++ {
						for w := w0; w < w1; w++ {
							dx.Add(n, c, h, w, g)
						}
					}
				}
			}
		}
	}
	return nil
}

// GlobalAvgPool averages each channel plane to 1x1.
type GlobalAvgPool struct {
	name string
	in   tensor.Shape
}

// NewGlobalAvgPool builds a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (l *GlobalAvgPool) Name() string { return l.name }

// Params implements Layer.
func (l *GlobalAvgPool) Params() []*Param { return nil }

// Setup implements Layer.
func (l *GlobalAvgPool) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) != 1 {
		return tensor.Shape{}, fmt.Errorf("gap %s: want 1 bottom", l.name)
	}
	l.in = bottoms[0]
	return tensor.Shape{N: l.in.N, C: l.in.C, H: 1, W: 1}, nil
}

// Forward implements Layer.
func (l *GlobalAvgPool) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	ctx.ChargeMem(l.in.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	plane := l.in.H * l.in.W
	inv := 1 / float32(plane)
	for n := 0; n < l.in.N; n++ {
		for c := 0; c < l.in.C; c++ {
			base := bottoms[0].Index(n, c, 0, 0)
			var s float32
			for i := 0; i < plane; i++ {
				s += bottoms[0].Data[base+i]
			}
			top.Set(n, c, 0, 0, s*inv)
		}
	}
	return nil
}

// Backward implements Layer.
func (l *GlobalAvgPool) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	ctx.ChargeMem(l.in.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	plane := l.in.H * l.in.W
	inv := 1 / float32(plane)
	for n := 0; n < l.in.N; n++ {
		for c := 0; c < l.in.C; c++ {
			g := dTop.At(n, c, 0, 0) * inv
			base := dBottoms[0].Index(n, c, 0, 0)
			for i := 0; i < plane; i++ {
				dBottoms[0].Data[base+i] = g
			}
		}
	}
	return nil
}

// Add is the elementwise sum of its bottoms (residual connections).
type Add struct {
	name  string
	shape tensor.Shape
	arity int
}

// NewAdd builds an elementwise-sum layer.
func NewAdd(name string) *Add { return &Add{name: name} }

// Name implements Layer.
func (l *Add) Name() string { return l.name }

// Params implements Layer.
func (l *Add) Params() []*Param { return nil }

// Setup implements Layer.
func (l *Add) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) < 2 {
		return tensor.Shape{}, fmt.Errorf("add %s: want >=2 bottoms", l.name)
	}
	for _, b := range bottoms[1:] {
		if b != bottoms[0] {
			return tensor.Shape{}, fmt.Errorf("add %s: shape mismatch %v vs %v", l.name, b, bottoms[0])
		}
	}
	l.shape = bottoms[0]
	l.arity = len(bottoms)
	return bottoms[0], nil
}

// Forward implements Layer.
func (l *Add) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	ctx.ChargeMem(int64(l.arity+1) * l.shape.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	copy(top.Data, bottoms[0].Data)
	for _, b := range bottoms[1:] {
		for i, v := range b.Data {
			top.Data[i] += v
		}
	}
	return nil
}

// Backward implements Layer.
func (l *Add) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	ctx.ChargeMem(int64(l.arity+1) * l.shape.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	for _, db := range dBottoms {
		copy(db.Data, dTop.Data)
	}
	return nil
}

// Concat concatenates its bottoms along the channel axis (Inception,
// DenseNet).
type Concat struct {
	name string
	in   []tensor.Shape
	out  tensor.Shape
}

// NewConcat builds a channel concatenation layer.
func NewConcat(name string) *Concat { return &Concat{name: name} }

// Name implements Layer.
func (l *Concat) Name() string { return l.name }

// Params implements Layer.
func (l *Concat) Params() []*Param { return nil }

// Setup implements Layer.
func (l *Concat) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) < 1 {
		return tensor.Shape{}, fmt.Errorf("concat %s: want >=1 bottom", l.name)
	}
	c := 0
	for _, b := range bottoms {
		if b.N != bottoms[0].N || b.H != bottoms[0].H || b.W != bottoms[0].W {
			return tensor.Shape{}, fmt.Errorf("concat %s: spatial mismatch", l.name)
		}
		c += b.C
	}
	l.in = append([]tensor.Shape{}, bottoms...)
	l.out = tensor.Shape{N: bottoms[0].N, C: c, H: bottoms[0].H, W: bottoms[0].W}
	return l.out, nil
}

// Forward implements Layer.
func (l *Concat) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	ctx.ChargeMem(2 * l.out.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	for n := 0; n < l.out.N; n++ {
		cOff := 0
		for bi, b := range bottoms {
			sz := l.in[bi].C * l.in[bi].H * l.in[bi].W
			copy(top.Data[top.Index(n, cOff, 0, 0):top.Index(n, cOff, 0, 0)+sz],
				b.Data[b.Index(n, 0, 0, 0):b.Index(n, 0, 0, 0)+sz])
			cOff += l.in[bi].C
		}
	}
	return nil
}

// Backward implements Layer.
func (l *Concat) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	ctx.ChargeMem(2 * l.out.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	for n := 0; n < l.out.N; n++ {
		cOff := 0
		for bi, db := range dBottoms {
			sz := l.in[bi].C * l.in[bi].H * l.in[bi].W
			copy(db.Data[db.Index(n, 0, 0, 0):db.Index(n, 0, 0, 0)+sz],
				dTop.Data[dTop.Index(n, cOff, 0, 0):dTop.Index(n, cOff, 0, 0)+sz])
			cOff += l.in[bi].C
		}
	}
	return nil
}

// Dropout zeroes a fraction of activations at training time, scaling the
// survivors (inverted dropout); identity at inference.
type Dropout struct {
	name  string
	ratio float32
	shape tensor.Shape
	mask  []bool
}

// NewDropout builds a dropout layer.
func NewDropout(name string, ratio float32) *Dropout {
	return &Dropout{name: name, ratio: ratio}
}

// Name implements Layer.
func (l *Dropout) Name() string { return l.name }

// Params implements Layer.
func (l *Dropout) Params() []*Param { return nil }

// Setup implements Layer.
func (l *Dropout) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) != 1 {
		return tensor.Shape{}, fmt.Errorf("dropout %s: want 1 bottom", l.name)
	}
	l.shape = bottoms[0]
	if !ctx.SkipCompute {
		l.mask = make([]bool, l.shape.Elems())
	}
	return bottoms[0], nil
}

// Forward implements Layer.
func (l *Dropout) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	ctx.ChargeMem(2 * l.shape.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	if !ctx.Training {
		copy(top.Data, bottoms[0].Data)
		return nil
	}
	scale := 1 / (1 - l.ratio)
	for i, v := range bottoms[0].Data {
		if ctx.RNG.Float32() < l.ratio {
			l.mask[i] = false
			top.Data[i] = 0
		} else {
			l.mask[i] = true
			top.Data[i] = v * scale
		}
	}
	return nil
}

// Backward implements Layer.
func (l *Dropout) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	ctx.ChargeMem(2 * l.shape.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	if !ctx.Training {
		copy(dBottoms[0].Data, dTop.Data)
		return nil
	}
	scale := 1 / (1 - l.ratio)
	for i := range dTop.Data {
		if l.mask[i] {
			dBottoms[0].Data[i] = dTop.Data[i] * scale
		} else {
			dBottoms[0].Data[i] = 0
		}
	}
	return nil
}

func imin(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func imax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// InPlace marks ReLU as in-place eligible (Caffe's convention).
func (l *ReLU) InPlace() bool { return true }

// InPlace marks Dropout as in-place eligible.
func (l *Dropout) InPlace() bool { return true }

// InPlace marks Concat as in-place eligible: memory-efficient DenseNet
// implementations write each layer's output directly into a shared
// per-block buffer, so the concatenation consumes no memory beyond its
// (already-counted) inputs.
func (l *Concat) InPlace() bool { return true }
