package dnn

import (
	"math"
	"math/rand"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/faults"
	"ucudnn/internal/tensor"
)

// oocTestNet builds a small network covering every streaming shape the
// executor handles: plain and grouped convolution, in-place chains
// (ReLU), a concat whose inputs alias its output, a barrier (FC) and the
// loss. 8x8 inputs keep the CPU arithmetic trivial.
func oocTestNet(ctx *Context, batch int) (*Net, *SoftmaxLoss) {
	net := NewNet(ctx)
	net.Input("data", tensor.Shape{N: batch, C: 4, H: 8, W: 8})
	net.Add(NewConv("conv1", 8, 3, 1, 1, true).SkipInputGrad(), "conv1", "data")
	net.Add(NewReLU("relu1"), "relu1", "conv1")
	net.Add(NewConvGrouped("conv2a", 8, 3, 1, 1, 2, true), "conv2a", "relu1")
	net.Add(NewConv("conv2b", 8, 1, 1, 0, false), "conv2b", "relu1")
	net.Add(NewConcat("cat"), "cat", "conv2a", "conv2b")
	net.Add(NewReLU("relu2"), "relu2", "cat")
	net.Add(NewPool("pool", MaxPool, 2, 2, 0), "pool", "relu2")
	net.Add(NewFC("fc", 5), "fc", "pool")
	loss := NewSoftmaxLoss("loss")
	net.Add(loss, "loss", "fc")
	return net, loss
}

func oocTestCtx() *Context {
	inner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	inner.SetAlgoFilter(func(op conv.Op, a conv.Algo) bool { return a == conv.AlgoGemm })
	ctx := NewContext(inner, inner, 1<<30)
	ctx.RNG = rand.New(rand.NewSource(11))
	return ctx
}

// The satellite-4 regression: the footprint model's activation total must
// equal exactly what Setup charges against the device tracker — aliased
// groups (in-place tops, concat members) counted once, never twice.
func TestFootprintMatchesSetupCharge(t *testing.T) {
	ctx := oocTestCtx()
	net, _ := oocTestNet(ctx, 4)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	m, err := FootprintModel(net)
	if err != nil {
		t.Fatal(err)
	}
	// Replicate Setup's charge rule independently: the input blob plus
	// every top whose layer is not in-place, at 2x bytes (data+grad).
	charged := 2 * net.inputShape.Bytes()
	for _, li := range net.layers {
		if ip, ok := li.layer.(inPlacer); ok && ip.InPlace() {
			continue
		}
		charged += 2 * net.blobs[li.top].Shape.Bytes()
	}
	if got := m.ActivationBytes(); got != charged {
		t.Fatalf("modeled activation bytes %d != tracker-charged %d (in-place double-charge?)", got, charged)
	}
}

// Aliased blobs collapse into one slab: the concat's bottoms and top are
// one storage unit, in-place chains ride their bottom's slab.
func TestFootprintSlabAliasing(t *testing.T) {
	ctx := oocTestCtx()
	net, _ := oocTestNet(ctx, 2)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	m, err := FootprintModel(net)
	if err != nil {
		t.Fatal(err)
	}
	// Blobs: data, conv1, relu1(=conv1), conv2a, conv2b, cat(=conv2a=conv2b),
	// relu2(=cat), pool, fc, loss — so 6 distinct slabs.
	if len(m.Slabs) != 6 {
		names := make([]string, len(m.Slabs))
		for i, s := range m.Slabs {
			names[i] = s.Name
		}
		t.Fatalf("slab count %d, want 6 (%v)", len(m.Slabs), names)
	}
	if len(m.Layers) != len(net.layers) {
		t.Fatalf("layer feet %d, want %d", len(m.Layers), len(net.layers))
	}
	for _, f := range m.Layers {
		switch f.Name {
		case "relu1", "relu2":
			if len(f.Slabs) != 1 {
				t.Errorf("in-place %s touches %d slabs, want 1", f.Name, len(f.Slabs))
			}
		case "cat":
			if len(f.Slabs) != 1 {
				t.Errorf("concat touches %d slabs, want 1 (inputs alias the output)", len(f.Slabs))
			}
		case "fc", "loss":
			if !f.Barrier {
				t.Errorf("%s must be a barrier", f.Name)
			}
		case "conv1", "conv2a", "conv2b", "pool":
			if f.Barrier {
				t.Errorf("%s must stream", f.Name)
			}
		}
	}
}

// randomModel builds a synthetic footprint model for the property suite.
func randomModel(rng *rand.Rand) *OOCModel {
	batch := 1 + rng.Intn(6)
	m := &OOCModel{Batch: batch}
	nSlabs := 1 + rng.Intn(10)
	for i := 0; i < nSlabs; i++ {
		per := int64(1 + rng.Intn(4096))
		m.Slabs = append(m.Slabs, OOCSlab{
			Name:      "s",
			PerSample: per,
			Full:      2 * per * int64(batch),
		})
	}
	nLayers := 1 + rng.Intn(8)
	for i := 0; i < nLayers; i++ {
		f := OOCLayerFoot{Name: "l", Barrier: rng.Intn(4) == 0, Out: rng.Intn(nSlabs)}
		seen := map[int]bool{f.Out: true}
		f.Slabs = []int{f.Out}
		for k := rng.Intn(3); k > 0; k-- {
			s := rng.Intn(nSlabs)
			if !seen[s] {
				seen[s] = true
				f.In = append(f.In, s)
				f.Slabs = append(f.Slabs, s)
			}
		}
		m.Layers = append(m.Layers, f)
	}
	return m
}

// oraclePeak recomputes a configuration's peak occupancy with a separate
// straight-line implementation, the reference for the planner's claim.
func oraclePeak(m *OOCModel, chunk int, resident map[int]bool) int64 {
	var peak int64
	for li := range m.Layers {
		var mem int64
		for s := range m.Slabs {
			if resident[s] {
				mem += m.Slabs[s].Full
				continue
			}
			touched := false
			for _, ts := range m.Layers[li].Slabs {
				if ts == s {
					touched = true
				}
			}
			if !touched {
				continue
			}
			if m.Layers[li].Barrier {
				mem += m.Slabs[s].Full
			} else {
				mem += 2 * m.Slabs[s].PerSample * int64(chunk)
			}
		}
		if mem > peak {
			peak = mem
		}
	}
	return peak
}

// The satellite-2 property suite: across random small models, the
// planner's peak claim matches brute-force recomputation, no plan
// exceeds its budget except at the documented recompute floor, the floor
// verdict matches exhaustive enumeration over every (chunk, resident
// subset) pair, and the greedy resident set is maximal.
func TestOOCPlanProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		m := randomModel(rng)
		scale := oraclePeak(m, m.Batch, nil)
		budget := 1 + rng.Int63n(scale+scale/2+1)
		plan, err := PlanOOC(m, budget)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if plan.Windows != (m.Batch+plan.Chunk-1)/plan.Chunk {
			t.Fatalf("iter %d: windows %d for chunk %d batch %d", iter, plan.Windows, plan.Chunk, m.Batch)
		}
		resident := map[int]bool{}
		for _, s := range plan.Resident {
			resident[s] = true
		}
		if got := oraclePeak(m, plan.Chunk, resident); got != plan.PeakBytes {
			t.Fatalf("iter %d: claimed peak %d, oracle %d (chunk %d, resident %v)",
				iter, plan.PeakBytes, got, plan.Chunk, plan.Resident)
		}

		// Brute force: does ANY (chunk, subset) configuration fit the
		// budget? Enumerate all of them — no monotonicity assumptions.
		feasible := false
		nSlabs := len(m.Slabs)
		for c := 1; c <= m.Batch && !feasible; c++ {
			for mask := 0; mask < 1<<nSlabs; mask++ {
				rs := map[int]bool{}
				for s := 0; s < nSlabs; s++ {
					if mask&(1<<s) != 0 {
						rs[s] = true
					}
				}
				if oraclePeak(m, c, rs) <= budget {
					feasible = true
					break
				}
			}
		}
		if plan.Floor == feasible {
			t.Fatalf("iter %d: floor=%v but brute force says feasible=%v (budget %d)",
				iter, plan.Floor, feasible, budget)
		}
		if !plan.Floor {
			if plan.PeakBytes > plan.Budget-plan.WSShare {
				t.Fatalf("iter %d: plan exceeds budget: peak %d > %d-%d", iter, plan.PeakBytes, plan.Budget, plan.WSShare)
			}
			// Greedy maximality: pinning any one more slab must not fit.
			for s := 0; s < nSlabs; s++ {
				if resident[s] {
					continue
				}
				resident[s] = true
				if oraclePeak(m, plan.Chunk, resident) <= plan.Budget-plan.WSShare {
					t.Fatalf("iter %d: resident set not maximal: slab %d also fits", iter, s)
				}
				delete(resident, s)
			}
		} else {
			if plan.Chunk != 1 {
				t.Fatalf("iter %d: floor plan with chunk %d", iter, plan.Chunk)
			}
			if len(plan.Resident) != 0 {
				t.Fatalf("iter %d: floor plan pins residents %v", iter, plan.Resident)
			}
		}
	}
}

func TestPlanOOCRejects(t *testing.T) {
	m := &OOCModel{Batch: 2, Slabs: []OOCSlab{{PerSample: 4, Full: 16}},
		Layers: []OOCLayerFoot{{Slabs: []int{0}, Out: 0}}}
	if _, err := PlanOOC(m, 0); err == nil {
		t.Fatal("want error for non-positive budget")
	}
	if _, err := PlanOOC(&OOCModel{Batch: 2}, 100); err == nil {
		t.Fatal("want error for empty model")
	}
}

// The degradation ladder: resident drop, then repeated chunk halving,
// then the recompute-everything floor — and nothing past it.
func TestOOCLadder(t *testing.T) {
	m := &OOCModel{Batch: 8}
	m.Slabs = []OOCSlab{{PerSample: 64, Full: 1024}, {PerSample: 32, Full: 512}}
	m.Layers = []OOCLayerFoot{{Slabs: []int{0, 1}, In: []int{0}, Out: 1}}
	plan, err := PlanOOC(m, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chunk != 8 || len(plan.Resident) == 0 {
		t.Fatalf("ample budget plan: %+v", plan)
	}
	o := NewOOCState(m, plan)
	if o.Report().Degraded != 0 {
		t.Fatal("fresh state already degraded")
	}
	o.stepLadder("test")
	if len(o.resident) != 0 {
		t.Fatal("first rung must drop the resident set")
	}
	wantChunks := []int{4, 2, 1}
	for _, want := range wantChunks {
		o.stepLadder("test")
		if o.chunk != want {
			t.Fatalf("chunk %d, want %d", o.chunk, want)
		}
	}
	o.stepLadder("test")
	rep := o.Report()
	if !rep.Floor || rep.Chunk != 1 {
		t.Fatalf("ladder floor not reached: %+v", rep)
	}
	if rep.Degraded != 5 {
		t.Fatalf("degraded %d, want 5", rep.Degraded)
	}
	o.stepLadder("test")
	if got := o.Report(); !got.Floor || got.Chunk != 1 {
		t.Fatalf("floor must absorb further steps: %+v", got)
	}
}

// An armed plan fault forces the fresh state one rung finer.
func TestOOCPlanFaultDegradesAtConstruction(t *testing.T) {
	m := &OOCModel{Batch: 4}
	m.Slabs = []OOCSlab{{PerSample: 16, Full: 128}}
	m.Layers = []OOCLayerFoot{{Slabs: []int{0}, Out: 0}}
	plan, err := PlanOOC(m, 1024)
	if err != nil {
		t.Fatal(err)
	}
	r, err := faults.Parse("ucudnn_fp_ooc_plan=nth:1")
	if err != nil {
		t.Fatal(err)
	}
	faults.Install(r)
	defer faults.Install(nil)
	o := NewOOCState(m, plan)
	if o.Report().Degraded != 1 {
		t.Fatalf("plan fault did not step the ladder: %+v", o.Report())
	}
}

// oocRunBits runs the small net once and returns the loss bit pattern
// plus every parameter gradient, for bitwise comparison across modes.
func oocRunBits(t *testing.T, budget int64) (uint32, [][]float32, *OOCState) {
	t.Helper()
	ctx := oocTestCtx()
	var state *OOCState
	if budget > 0 {
		// Plan against a probe instance, execute a fresh one: the bind
		// path the harness exercises.
		probeCtx := oocTestCtx()
		probeNet, _ := oocTestNet(probeCtx, 4)
		if err := probeNet.Setup(); err != nil {
			t.Fatal(err)
		}
		m, err := FootprintModel(probeNet)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := PlanOOC(m, budget)
		if err != nil {
			t.Fatal(err)
		}
		state = NewOOCState(m, plan)
		ctx.OOC = state
	}
	net, loss := oocTestNet(ctx, 4)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	in := net.InputBlob().Data
	fill := rand.New(rand.NewSource(7))
	for i := range in.Data {
		in.Data[i] = fill.Float32()*2 - 1
	}
	loss.Labels = []int{0, 1, 2, 3}
	if err := net.Forward(); err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(); err != nil {
		t.Fatal(err)
	}
	var grads [][]float32
	for _, p := range net.Params() {
		grads = append(grads, append([]float32(nil), p.Grad...))
	}
	return math.Float32bits(loss.Loss), grads, state
}

// Out-of-core execution — plain and grouped convolutions, in-place
// chains, concat aliasing, barriers — must reproduce the undivided bits
// exactly at every budget, down to and including the recompute floor.
func TestOOCBitwiseEquality(t *testing.T) {
	refLoss, refGrads, _ := oocRunBits(t, 0)

	probeCtx := oocTestCtx()
	probeNet, _ := oocTestNet(probeCtx, 4)
	if err := probeNet.Setup(); err != nil {
		t.Fatal(err)
	}
	m, err := FootprintModel(probeNet)
	if err != nil {
		t.Fatal(err)
	}
	budgets := map[string]int64{
		"ample":   2 * m.Peak(4, nil),
		"mid":     (m.Peak(1, nil) + m.Peak(4, nil)) / 2,
		"starved": m.Peak(1, nil) - 1,
	}
	for label, budget := range budgets {
		loss, grads, state := oocRunBits(t, budget)
		if loss != refLoss {
			t.Errorf("%s (budget %d): loss bits %#x, want %#x", label, budget, loss, refLoss)
		}
		if len(grads) != len(refGrads) {
			t.Fatalf("%s: gradient count %d, want %d", label, len(grads), len(refGrads))
		}
		for i := range grads {
			for j := range grads[i] {
				if math.Float32bits(grads[i][j]) != math.Float32bits(refGrads[i][j]) {
					t.Errorf("%s (budget %d): grad[%d][%d] bits diverge", label, budget, i, j)
					break
				}
			}
		}
		rep := state.Report()
		if label == "starved" {
			if !rep.Floor {
				t.Errorf("starved budget %d did not reach the floor: %+v", budget, rep)
			}
			// Nothing resident on the floor: every pass streams.
			if rep.FetchBytes == 0 {
				t.Errorf("starved: no fetch traffic modeled")
			}
		}
	}
}
