// Out-of-core training: streamed micro-batches under a blob-memory
// budget. The paper's micro-batching divides convolution *workspace*;
// this file extends the same division discipline to activations and
// gradients (ROADMAP item 2, after the Chainer out-of-core examples and
// the Micro-Batch Processing line of work): the mini-batch is split into
// streamed micro-batch windows run forward+backward with deterministic
// gradient accumulation, while activation slabs are fetched and spilled
// against the device memory model.
//
// Execution stays bitwise identical to the undivided run by
// construction. Windows are ascending contiguous sample ranges, so the
// engine's ascending-n dW reduction makes the windowed beta=1 filter-
// gradient accumulation reproduce the undivided bits exactly (the same
// contract the micro-batching differential suite pins), and per-sample-
// independent kernels (convolution forward/backward-data, bias) write
// disjoint ranges. Whole-batch layers — batch-norm (batch statistics),
// FC (one fused GEMM) and the loss (batch-mean normalization, where MBP
// would rescale) — are *barriers*: their operand slabs stay fully
// resident and their arithmetic runs unchanged, which is why no loss
// rescaling is needed: normalization falls out of running the loss on
// the whole batch.
//
// The spill/recompute planner is a pure function (property-tested
// against a brute-force oracle); the executor charges transfer traffic
// to the simulated clock, exposes ucudnn_ooc_* metrics and
// ucudnn_ph_ooc_* profiler phases, and degrades down a ladder —
// drop resident slabs, then halve the micro-batch, then the recompute-
// everything floor — when ucudnn_fp_ooc_* fault points fire. Degradation
// only refines the window partition (never re-runs arithmetic), so every
// rung keeps the bitwise contract.
package dnn

import (
	"fmt"
	"sort"

	"ucudnn/internal/faults"
	"ucudnn/internal/obs"
	"ucudnn/internal/prof"
	"ucudnn/internal/trace"
)

// The out-of-core metric series (on the state's private registry).
const (
	// MetricOOCFetchBytes counts bytes fetched into the working set.
	MetricOOCFetchBytes = "ucudnn_ooc_fetch_bytes_total"
	// MetricOOCSpillBytes counts bytes spilled out of the working set.
	MetricOOCSpillBytes = "ucudnn_ooc_spill_bytes_total"
	// MetricOOCRecomputeBytes counts bytes whose transfer was replaced by
	// recomputation (spill failures and the recompute floor).
	MetricOOCRecomputeBytes = "ucudnn_ooc_recompute_bytes_total"
	// MetricOOCDegraded counts degradation-ladder steps, by stage.
	MetricOOCDegraded = "ucudnn_ooc_degraded_total"
	// MetricOOCMicroBatches gauges the current per-pass window count.
	MetricOOCMicroBatches = "ucudnn_ooc_micro_batches"
	// MetricOOCPeakBytes gauges the modeled peak working set.
	MetricOOCPeakBytes = "ucudnn_ooc_peak_bytes"
)

// The out-of-core profiler phases.
const (
	PhaseOOCFetch     prof.Phase = "ucudnn_ph_ooc_fetch"
	PhaseOOCSpill     prof.Phase = "ucudnn_ph_ooc_spill"
	PhaseOOCRecompute prof.Phase = "ucudnn_ph_ooc_recompute"
)

var (
	kindOOCFetch     = prof.Register(PhaseOOCFetch)
	kindOOCSpill     = prof.Register(PhaseOOCSpill)
	kindOOCRecompute = prof.Register(PhaseOOCRecompute)
)

// OOCSlab is one activation storage unit of the footprint model: a group
// of blobs that alias the same device memory (in-place tops alias their
// bottom, concat inputs alias ranges of the concat output). Grouping
// aliases into one slab is what keeps in-place layers from being charged
// twice.
type OOCSlab struct {
	// Name is a representative member blob (the group's union-find root).
	Name string
	// PerSample is the activation bytes one mini-batch sample contributes
	// (data only; the gradient doubles it).
	PerSample int64
	// Full is the slab's whole-batch footprint, data plus gradient.
	Full int64
}

// OOCLayerFoot is one layer's touch set over the slabs.
type OOCLayerFoot struct {
	Name string
	// Slabs are the distinct slab ids the layer touches (bottoms and top;
	// an in-place layer's bottom and top land on one id).
	Slabs []int
	// In are the distinct slab ids of the bottoms; Out is the top's.
	In  []int
	Out int
	// Barrier marks whole-batch layers: their slabs must be fully
	// resident and they run undivided (batch-norm, FC, softmax loss).
	Barrier bool
}

// OOCModel is the footprint model the planner and executor share.
type OOCModel struct {
	Batch  int
	Slabs  []OOCSlab
	Layers []OOCLayerFoot
}

// oocStreams reports whether a layer can execute (or be modeled) in
// micro-batch windows. Everything per-sample-independent streams;
// whole-batch layers and unknown layer types are barriers.
func oocStreams(l Layer) bool {
	switch l.(type) {
	case *Conv, *ReLU, *Pool, *GlobalAvgPool, *Add, *Concat, *Dropout, *LRN:
		return true
	}
	return false
}

// FootprintModel extracts the activation footprint model from a set-up
// network: blobs are grouped into slabs by device aliasing, and each
// layer records the slab ids it touches. The network must have completed
// Setup (shapes are needed).
func FootprintModel(n *Net) (*OOCModel, error) {
	if !n.ready {
		return nil, fmt.Errorf("dnn: FootprintModel before Setup")
	}
	batch := n.inputShape.N
	if batch <= 0 {
		return nil, fmt.Errorf("dnn: invalid batch %d", batch)
	}

	// Union-find over blob names: in-place tops join their bottom, concat
	// joins every bottom with the top (memory-efficient concat lays the
	// bottoms out as ranges of the output buffer).
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, li := range n.layers {
		if _, isConcat := li.layer.(*Concat); isConcat {
			for _, b := range li.bottoms {
				union(li.top, b)
			}
			continue
		}
		if ip, ok := li.layer.(inPlacer); ok && ip.InPlace() && len(li.bottoms) > 0 {
			union(li.top, li.bottoms[0])
		}
	}

	// Slabs in blob-creation order; a slab's per-sample size is the
	// largest member's (aliased members occupy the same storage).
	id := map[string]int{}
	m := &OOCModel{Batch: batch}
	for _, name := range n.order {
		b := n.blobs[name]
		per := b.Shape.Bytes() / int64(batch)
		root := find(name)
		if i, ok := id[root]; ok {
			if per > m.Slabs[i].PerSample {
				m.Slabs[i].PerSample = per
			}
			continue
		}
		id[root] = len(m.Slabs)
		m.Slabs = append(m.Slabs, OOCSlab{Name: root, PerSample: per})
	}
	for i := range m.Slabs {
		m.Slabs[i].Full = 2 * m.Slabs[i].PerSample * int64(batch)
	}

	for _, li := range n.layers {
		foot := OOCLayerFoot{
			Name:    li.layer.Name(),
			Out:     id[find(li.top)],
			Barrier: !oocStreams(li.layer),
		}
		seen := map[int]bool{}
		for _, b := range li.bottoms {
			s := id[find(b)]
			if !seen[s] {
				seen[s] = true
				foot.In = append(foot.In, s)
				foot.Slabs = append(foot.Slabs, s)
			}
		}
		if !seen[foot.Out] {
			foot.Slabs = append(foot.Slabs, foot.Out)
		}
		m.Layers = append(m.Layers, foot)
	}
	return m, nil
}

// ActivationBytes is the model's whole-batch activation footprint: the
// sum of every slab's data+gradient storage, each aliased group counted
// once. It equals what Setup charges against the device tracker (the
// in-place no-double-charge regression pins this).
func (m *OOCModel) ActivationBytes() int64 {
	var total int64
	for _, s := range m.Slabs {
		total += s.Full
	}
	return total
}

// Peak is the modeled peak device occupancy of one training pass at the
// given micro-batch size with the given slabs pinned resident: resident
// slabs occupy their full footprint throughout; a streaming layer holds
// one data+gradient window per non-resident touched slab; a barrier
// layer holds its non-resident slabs whole.
func (m *OOCModel) Peak(chunk int, resident map[int]bool) int64 {
	if chunk < 1 {
		chunk = 1
	}
	var base int64
	for i := range m.Slabs {
		if resident[i] {
			base += m.Slabs[i].Full
		}
	}
	peak := base
	for _, f := range m.Layers {
		mem := base
		for _, s := range f.Slabs {
			if resident[s] {
				continue
			}
			if f.Barrier {
				mem += m.Slabs[s].Full
			} else {
				mem += 2 * m.Slabs[s].PerSample * int64(chunk)
			}
		}
		if mem > peak {
			peak = mem
		}
	}
	return peak
}

// oocLadder is the micro-batch size ladder: the batch halved (rounding
// up) down to 1, descending.
func oocLadder(batch int) []int {
	var out []int
	for c := batch; ; c = c / 2 {
		if c < 1 {
			c = 1
		}
		if len(out) == 0 || out[len(out)-1] != c {
			out = append(out, c)
		}
		if c == 1 {
			return out
		}
	}
}

// OOCPlan is the planner's verdict for one model under one budget.
type OOCPlan struct {
	Batch int
	// Chunk is the micro-batch window size; Windows the per-pass count.
	Chunk   int
	Windows int
	// Budget is the blob budget; WSShare is the slice of it the planner
	// left for convolution workspace (a quarter, surrendered entirely if
	// that makes streaming infeasible).
	Budget  int64
	WSShare int64
	// PeakBytes is the modeled peak working set of the plan.
	PeakBytes int64
	// Floor marks the recompute-everything floor: even micro-batch 1 with
	// nothing resident exceeds the budget (barrier slabs alone may do
	// that), so the plan is the finest schedule there is and PeakBytes may
	// legitimately exceed Budget. This is the documented exception to the
	// "no plan exceeds the budget" property.
	Floor bool
	// Resident lists the slab ids pinned resident (ascending).
	Resident []int
}

// PlanOOC picks the coarsest feasible micro-batch size on the halving
// ladder and then greedily pins the largest slabs resident while the
// peak stays within the budget. Pure and deterministic: the property
// suite compares it against brute-force enumeration.
func PlanOOC(m *OOCModel, budget int64) (OOCPlan, error) {
	if budget <= 0 {
		return OOCPlan{}, fmt.Errorf("dnn: blob budget must be positive, got %d", budget)
	}
	if m.Batch < 1 || len(m.Layers) == 0 {
		return OOCPlan{}, fmt.Errorf("dnn: empty OOC model")
	}
	ladder := oocLadder(m.Batch)
	none := map[int]bool{}
	pick := func(limit int64) int {
		for _, c := range ladder {
			if m.Peak(c, none) <= limit {
				return c
			}
		}
		return 0
	}
	plan := OOCPlan{Batch: m.Batch, Budget: budget, WSShare: budget / 4}
	chunk := pick(budget - plan.WSShare)
	if chunk == 0 {
		plan.WSShare = 0
		chunk = pick(budget)
	}
	if chunk == 0 {
		plan.Chunk, plan.Floor = 1, true
		plan.PeakBytes = m.Peak(1, none)
	} else {
		plan.Chunk = chunk
		limit := budget - plan.WSShare
		resident := map[int]bool{}
		order := make([]int, len(m.Slabs))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return m.Slabs[order[a]].Full > m.Slabs[order[b]].Full
		})
		for _, s := range order {
			resident[s] = true
			if m.Peak(chunk, resident) > limit {
				delete(resident, s)
			}
		}
		for s := range resident {
			plan.Resident = append(plan.Resident, s)
		}
		sort.Ints(plan.Resident)
		plan.PeakBytes = m.Peak(chunk, resident)
	}
	plan.Windows = (m.Batch + plan.Chunk - 1) / plan.Chunk
	return plan, nil
}

// OOCReport summarizes one state's execution for harnesses and CLIs.
type OOCReport struct {
	Chunk, Windows int
	Floor          bool
	Degraded       int
	FetchBytes     int64
	SpillBytes     int64
	RecomputeBytes int64
}

// OOCState is the out-of-core executor: it owns the plan, models
// fetch/spill/recompute traffic against the simulated clock, and walks
// the degradation ladder when fault points fire. One state drives one
// network; execution is single-threaded like the Net it serves.
type OOCState struct {
	Plan  OOCPlan
	model *OOCModel

	chunk    int
	floor    bool
	resident map[int]bool
	degraded int
	part     []int // partition of the layer pass being executed

	reg        *obs.Registry
	fetchC     *obs.Counter
	spillC     *obs.Counter
	recomputeC *obs.Counter
	microG     *obs.Gauge
	peakG      *obs.Gauge
}

// NewOOCState builds the executor for a planned model. An armed
// ucudnn_fp_ooc_plan fault forces the schedule one ladder rung finer
// than the memory model requires (conservative planning under an
// unreliable allocator).
func NewOOCState(m *OOCModel, plan OOCPlan) *OOCState {
	o := &OOCState{
		Plan:     plan,
		model:    m,
		chunk:    plan.Chunk,
		floor:    plan.Floor,
		resident: map[int]bool{},
		reg:      obs.NewRegistry(),
	}
	for _, s := range plan.Resident {
		o.resident[s] = true
	}
	o.fetchC = o.reg.Counter(MetricOOCFetchBytes)
	o.spillC = o.reg.Counter(MetricOOCSpillBytes)
	o.recomputeC = o.reg.Counter(MetricOOCRecomputeBytes)
	o.microG = o.reg.Gauge(MetricOOCMicroBatches)
	o.peakG = o.reg.Gauge(MetricOOCPeakBytes)
	if faults.Hit(faults.PointOOCPlan) {
		o.stepLadder("plan")
	}
	o.microG.Set(float64(o.windows()))
	o.peakG.Set(float64(o.model.Peak(o.chunk, o.resident)))
	return o
}

// Metrics exposes the state's ucudnn_ooc_* registry.
func (o *OOCState) Metrics() *obs.Registry { return o.reg }

// Report summarizes execution so far.
func (o *OOCState) Report() OOCReport {
	return OOCReport{
		Chunk:          o.chunk,
		Windows:        o.windows(),
		Floor:          o.floor,
		Degraded:       o.degraded,
		FetchBytes:     o.fetchC.Value(),
		SpillBytes:     o.spillC.Value(),
		RecomputeBytes: o.recomputeC.Value(),
	}
}

func (o *OOCState) windows() int {
	return (o.model.Batch + o.chunk - 1) / o.chunk
}

// SetupSizes lists the distinct window sizes Setup should register with
// the kernel library: the current chunk and the remainder window, if
// any. Sizes the degradation ladder improvises later are queried lazily
// (the WD optimizer's WR fallback covers unregistered kernels).
func (o *OOCState) SetupSizes() []int {
	sizes := []int{o.chunk}
	if rem := o.model.Batch % o.chunk; rem != 0 {
		sizes = append(sizes, rem)
	}
	return sizes
}

// bind re-derives the footprint model from the network actually being
// executed and checks it matches the probed plan's shape.
func (o *OOCState) bind(n *Net) error {
	m, err := FootprintModel(n)
	if err != nil {
		return err
	}
	if m.Batch != o.model.Batch || len(m.Layers) != len(o.model.Layers) || len(m.Slabs) != len(o.model.Slabs) {
		return fmt.Errorf("dnn: OOC plan was built for a different network (batch %d/%d, layers %d/%d, slabs %d/%d)",
			o.model.Batch, m.Batch, len(o.model.Layers), len(m.Layers), len(o.model.Slabs), len(m.Slabs))
	}
	o.model = m
	return nil
}

// stepLadder takes one degradation step: drop the resident set, then
// halve the micro-batch (repeatable), then the recompute-everything
// floor. Every rung only refines scheduling — arithmetic and window
// ordering stay ascending contiguous, so bits do not move.
func (o *OOCState) stepLadder(stage string) {
	o.degraded++
	o.reg.Counter(MetricOOCDegraded, obs.L("stage", stage)).Inc()
	switch {
	case len(o.resident) > 0:
		o.resident = map[int]bool{}
	case o.chunk > 1:
		o.chunk = (o.chunk + 1) / 2
	default:
		o.floor = true
	}
	o.microG.Set(float64(o.windows()))
	o.peakG.Set(float64(o.model.Peak(o.chunk, o.resident)))
}

// charge models one transfer: the simulated clock pays a bandwidth-bound
// kernel and the matching counter advances, inside the matching profiler
// phase. Spans land on the dedicated transfer tracks matching
// ScheduleOOC's three streams: fetches and recomputes on the H2D track,
// spills on the D2H track (recompute replaces a fetch, so it competes
// for the same stream). flow is the span this transfer depends on (a
// window's spill and recompute flow from its fetch, mirroring the
// modeled ScheduleOOC edges); the recorded span's own ID is returned.
func (o *OOCState) charge(ctx *Context, kind prof.Kind, c *obs.Counter, stream string, bytes int64, flow uint64) uint64 {
	if bytes <= 0 {
		return 0
	}
	track := trace.TrackOOCFetch
	if stream == "ooc_spill" {
		track = trace.TrackOOCSpill
	}
	t := prof.Enter()
	span := ctx.Cudnn.ChargeFlow(track, ctx.Label(), stream, ctx.Device().MemBoundTime(bytes), flow)
	c.Add(bytes)
	prof.Exit(kind, t)
	return span
}

// beginLayer models layer i's out-of-core traffic for one pass and
// computes the micro-batch partition its windowed kernels must execute
// (whole-batch for barrier layers). Fault points fire per window:
// a shrunk fetch grant or a failed spill walks the degradation ladder,
// which refines the partition from the next window on.
func (o *OOCState) beginLayer(ctx *Context, i int, backward bool) error {
	if i < 0 || i >= len(o.model.Layers) {
		return fmt.Errorf("dnn: OOC layer index %d out of range", i)
	}
	f := o.model.Layers[i]
	o.part = o.part[:0]

	// Backward moves data and gradient; forward moves data only.
	scale := int64(1)
	if backward {
		scale = 2
	}
	var fetchPer, spillPer int64
	for _, s := range f.In {
		if !o.resident[s] {
			fetchPer += o.model.Slabs[s].PerSample * scale
		}
	}
	if !o.resident[f.Out] {
		spillPer = o.model.Slabs[f.Out].PerSample * scale
	}

	batch := int64(o.model.Batch)
	if f.Barrier {
		// Whole-batch layer: operands transfer whole, no windows.
		o.part = append(o.part, o.model.Batch)
		fs := o.charge(ctx, kindOOCFetch, o.fetchC, "ooc_fetch", fetchPer*batch, 0)
		o.charge(ctx, kindOOCSpill, o.spillC, "ooc_spill", spillPer*batch, fs)
		return nil
	}

	for lo := 0; lo < o.model.Batch; {
		c := o.chunk
		if c > o.model.Batch-lo {
			c = o.model.Batch - lo
		}
		fetch := fetchPer * int64(c)
		if granted := faults.Grant(faults.PointOOCFetch, fetch); granted < fetch {
			// Transfer pressure: the window still streams (in more,
			// smaller pieces), and subsequent windows go finer.
			o.stepLadder("fetch")
		}
		fs := o.charge(ctx, kindOOCFetch, o.fetchC, "ooc_fetch", fetch, 0)
		if spill := spillPer * int64(c); spill > 0 {
			if err := faults.Err(faults.PointOOCSpill); err != nil {
				// Spill failed: drop the buffer, recompute it when next
				// needed, and degrade.
				o.charge(ctx, kindOOCRecompute, o.recomputeC, "ooc_recompute", spill, fs)
				o.stepLadder("spill")
			} else {
				o.charge(ctx, kindOOCSpill, o.spillC, "ooc_spill", spill, fs)
			}
		}
		if o.floor && backward {
			// Recompute-everything floor: backward re-derives its inputs
			// instead of re-fetching spilled activations.
			o.charge(ctx, kindOOCRecompute, o.recomputeC, "ooc_recompute", fetchPer*int64(c), fs)
		}
		o.part = append(o.part, c)
		lo += c
	}
	o.microG.Set(float64(len(o.part)))
	return nil
}

// partition is the window partition computed by the last beginLayer:
// ascending contiguous sample counts summing to the batch. Windowed
// layers (Conv) execute exactly this partition.
func (o *OOCState) partition() []int { return o.part }
