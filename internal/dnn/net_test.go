package dnn

import (
	"math/rand"
	"strings"
	"testing"

	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

// buildTinyNet constructs a small CNN ending in a softmax loss.
func buildTinyNet(ctx *Context, batch int) (*Net, *SoftmaxLoss) {
	net := NewNet(ctx)
	net.Input("data", tensor.Shape{N: batch, C: 3, H: 8, W: 8})
	net.Add(NewConv("conv1", 8, 3, 1, 1, true), "conv1", "data")
	net.Add(NewReLU("relu1"), "relu1", "conv1")
	net.Add(NewPool("pool1", MaxPool, 2, 2, 0), "pool1", "relu1")
	net.Add(NewConv("conv2", 8, 3, 1, 1, true), "conv2", "pool1")
	net.Add(NewReLU("relu2"), "relu2", "conv2")
	net.Add(NewGlobalAvgPool("gap"), "gap", "relu2")
	net.Add(NewFC("fc", 4), "fc", "gap")
	loss := NewSoftmaxLoss("loss")
	net.Add(loss, "loss", "fc")
	return net, loss
}

func TestNetForwardBackward(t *testing.T) {
	ctx := testCtx()
	net, loss := buildTinyNet(ctx, 4)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	net.InputBlob().Data.Randomize(rng, 1)
	loss.Labels = []int{0, 1, 2, 3}
	if err := net.Forward(); err != nil {
		t.Fatal(err)
	}
	if loss.Loss <= 0 {
		t.Fatal("loss must be positive")
	}
	if err := net.Backward(); err != nil {
		t.Fatal(err)
	}
	// Some parameter gradient must be nonzero.
	nonzero := false
	for _, p := range net.Params() {
		for _, g := range p.Grad {
			if g != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Fatal("backward produced all-zero gradients")
	}
	if len(net.Layers()) != 8 {
		t.Fatalf("layers = %v", net.Layers())
	}
}

func TestNetErrors(t *testing.T) {
	ctx := testCtx()
	net := NewNet(ctx)
	if err := net.Setup(); err == nil {
		t.Fatal("missing input must error")
	}
	net.Input("data", tensor.Shape{N: 1, C: 1, H: 4, W: 4})
	net.Add(NewReLU("r"), "out", "nosuch")
	if err := net.Setup(); err == nil || !strings.Contains(err.Error(), "unknown blob") {
		t.Fatalf("unknown bottom: %v", err)
	}
	net2 := NewNet(testCtx())
	net2.Input("data", tensor.Shape{N: 1, C: 1, H: 4, W: 4})
	net2.Add(NewReLU("r1"), "data", "data")
	if err := net2.Setup(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate blob: %v", err)
	}
	net3 := NewNet(testCtx())
	net3.Input("data", tensor.Shape{N: 1, C: 1, H: 4, W: 4})
	if err := net3.Backward(); err == nil {
		t.Fatal("backward before setup must error")
	}
}

// Training on a learnable synthetic task: loss must drop substantially.
func TestTrainingConverges(t *testing.T) {
	ctx := testCtx()
	batch := 8
	net, loss := buildTinyNet(ctx, batch)
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	// Task: classify by which quadrant carries the largest energy.
	rng := rand.New(rand.NewSource(7))
	makeBatch := func() {
		in := net.InputBlob().Data
		in.Randomize(rng, 0.1)
		loss.Labels = make([]int, batch)
		for n := 0; n < batch; n++ {
			lbl := rng.Intn(4)
			loss.Labels[n] = lbl
			h0, w0 := (lbl/2)*4, (lbl%2)*4
			for c := 0; c < 3; c++ {
				for h := 0; h < 4; h++ {
					for w := 0; w < 4; w++ {
						in.Add(n, c, h0+h, w0+w, 1.5)
					}
				}
			}
		}
	}
	sgd := NewSGD(0.05, 0.9, 1e-4)
	var first, last float32
	for it := 0; it < 60; it++ {
		makeBatch()
		net.ZeroGrads()
		if err := net.Forward(); err != nil {
			t.Fatal(err)
		}
		if err := net.Backward(); err != nil {
			t.Fatal(err)
		}
		sgd.Step(net.Params())
		if it == 0 {
			first = loss.Loss
		}
		last = loss.Loss
	}
	if last > first*0.7 {
		t.Fatalf("training did not converge: first %v last %v", first, last)
	}
	t.Logf("loss %v -> %v", first, last)
}

// The paper's transparency claim: swapping the cuDNN handle for the
// µ-cuDNN handle leaves network outputs numerically unchanged while the
// conv layers run micro-batched plans.
func TestHandleSwapTransparency(t *testing.T) {
	run := func(h ConvHandle, inner *cudnn.Handle) ([]float32, float32) {
		ctx := NewContext(h, inner, 1<<20)
		ctx.RNG = rand.New(rand.NewSource(42)) // identical init
		net, loss := buildTinyNet(ctx, 6)
		if err := net.Setup(); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		net.InputBlob().Data.Randomize(rng, 1)
		loss.Labels = []int{0, 1, 2, 3, 0, 1}
		if err := net.Forward(); err != nil {
			t.Fatal(err)
		}
		if err := net.Backward(); err != nil {
			t.Fatal(err)
		}
		return append([]float32{}, net.Blob("fc").Data.Data...), loss.Loss
	}
	plainInner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	plainOut, plainLoss := run(plainInner, plainInner)

	ucInner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	uc, err := core.New(ucInner, core.WithPolicy(core.PolicyPowerOfTwo), core.WithWorkspaceLimit(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	ucOut, ucLoss := run(uc, ucInner)

	if !tensor.AllClose(plainOut, ucOut, 1e-3, 1e-3) {
		t.Fatalf("µ-cuDNN changed the network output: maxdiff %g",
			tensor.MaxAbsDiff(plainOut, ucOut))
	}
	if d := plainLoss - ucLoss; d > 1e-3 || d < -1e-3 {
		t.Fatalf("loss diverged: %v vs %v", plainLoss, ucLoss)
	}
	// µ-cuDNN actually planned the conv kernels.
	if len(uc.Plans()) == 0 {
		t.Fatal("µ-cuDNN produced no plans")
	}
}

// Timing-only mode: no host tensors, but a full per-layer breakdown from
// the simulated clock.
func TestNetTimeSkipCompute(t *testing.T) {
	inner := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	ctx := NewContext(inner, inner, 8<<20)
	ctx.SkipCompute = true
	net, _ := buildTinyNet(ctx, 64)
	rep, err := net.Time(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() <= 0 {
		t.Fatal("simulated time must be positive")
	}
	if len(rep.Layers) != 8 {
		t.Fatalf("layers in report = %d", len(rep.Layers))
	}
	conv1 := rep.Layer("conv1")
	if conv1 == nil || conv1.Forward <= 0 || conv1.Backward <= 0 {
		t.Fatalf("conv1 timing missing: %+v", conv1)
	}
	// Backward of a conv layer runs two kernels; it should cost more than
	// forward.
	if conv1.Backward <= conv1.Forward {
		t.Fatalf("conv backward (%v) should exceed forward (%v)", conv1.Backward, conv1.Forward)
	}
	convSum := rep.SumMatching(func(n string) bool { return strings.HasPrefix(n, "conv") })
	if convSum <= 0 || convSum > rep.Total() {
		t.Fatalf("conv total %v out of range (total %v)", convSum, rep.Total())
	}
	if got := rep.TopKByTotal(2); len(got) != 2 || got[0].Total() < got[1].Total() {
		t.Fatal("TopKByTotal broken")
	}
	var sb strings.Builder
	rep.Print(&sb)
	if !strings.Contains(sb.String(), "TOTAL") || !strings.Contains(sb.String(), "conv1") {
		t.Fatal("report print missing rows")
	}
	// Memory accounting happened even without host tensors.
	if inner.Mem().Used() == 0 {
		t.Fatal("device memory accounting missing")
	}
}

// µ-cuDNN under a tiny per-layer limit must beat (or match) plain cuDNN's
// simulated network time at the same limit — the Fig. 10 mechanism.
func TestMicroBatchingSpeedsUpNetwork(t *testing.T) {
	timeNet := func(h ConvHandle, inner *cudnn.Handle) float64 {
		ctx := NewContext(h, inner, 4<<20)
		ctx.SkipCompute = true
		net := NewNet(ctx)
		net.Input("data", tensor.Shape{N: 128, C: 64, H: 27, W: 27})
		net.Add(NewConv("conv2", 192, 5, 1, 2, false), "conv2", "data")
		net.Add(NewConv("conv3", 128, 3, 1, 1, false), "conv3", "conv2")
		rep, err := net.Time(2)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Total().Seconds()
	}
	plain := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	base := timeNet(plain, plain)
	ucInner := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	uc, err := core.New(ucInner, core.WithPolicy(core.PolicyPowerOfTwo), core.WithWorkspaceLimit(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	opt := timeNet(uc, ucInner)
	if opt > base*1.001 {
		t.Fatalf("µ-cuDNN net time %v must not exceed cuDNN %v", opt, base)
	}
	t.Logf("net: cuDNN %.3fs vs µ-cuDNN %.3fs (%.2fx)", base, opt, base/opt)
}

// TF-style integration: the framework passes PreferFastest and no limit;
// µ-cuDNN applies its own (env-configured) limit — the paper's §IV-B2
// TensorFlow path. With plain cuDNN the same context just picks the
// fastest algorithm.
func TestTFStyleContext(t *testing.T) {
	t.Setenv("UCUDNN_WORKSPACE_LIMIT", "1048576")
	t.Setenv("UCUDNN_BATCH_SIZE_POLICY", "powerOfTwo")
	inner := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	uc, err := core.New(inner, core.FromEnv())
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContextTF(uc, inner)
	ctx.SkipCompute = true
	net := NewNet(ctx)
	net.Input("data", tensor.Shape{N: 64, C: 32, H: 27, W: 27})
	net.Add(NewConv("conv", 48, 5, 1, 2, false), "conv", "data")
	if _, err := net.Time(1); err != nil {
		t.Fatal(err)
	}
	plans := uc.Plans()
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	for _, p := range plans {
		if p.Workspace > 1<<20 {
			t.Fatalf("env limit ignored: plan ws %d", p.Workspace)
		}
	}
}
