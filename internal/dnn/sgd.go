package dnn

// SGD is stochastic gradient descent with momentum and optional weight
// decay, matching Caffe's solver update rule:
//
//	v = momentum*v + lr*(grad + decay*w);  w -= v
type SGD struct {
	LR       float32
	Momentum float32
	Decay    float32
	velocity map[*Param][]float32
}

// NewSGD builds a solver.
func NewSGD(lr, momentum, decay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Decay: decay, velocity: map[*Param][]float32{}}
}

// Step applies one update to every parameter.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float32, len(p.Data))
			s.velocity[p] = v
		}
		for i := range p.Data {
			g := p.Grad[i] + s.Decay*p.Data[i]
			v[i] = s.Momentum*v[i] + s.LR*g
			p.Data[i] -= v[i]
		}
	}
}
