package dnn

import (
	"fmt"
	"math"

	"ucudnn/internal/blas"
	"ucudnn/internal/tensor"
)

// FC is a fully-connected (inner product) layer: flattens each sample and
// applies y = W x + b, with W stored (out x in) row-major.
type FC struct {
	name    string
	out     int
	in      int
	inShape tensor.Shape
	weight  *Param
	bias    *Param
}

// NewFC builds a fully-connected layer with out output units.
func NewFC(name string, out int) *FC { return &FC{name: name, out: out} }

// Name implements Layer.
func (l *FC) Name() string { return l.name }

// Params implements Layer.
func (l *FC) Params() []*Param { return []*Param{l.weight, l.bias} }

// Setup implements Layer.
func (l *FC) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) != 1 {
		return tensor.Shape{}, fmt.Errorf("fc %s: want 1 bottom", l.name)
	}
	l.inShape = bottoms[0]
	l.in = bottoms[0].C * bottoms[0].H * bottoms[0].W
	l.weight = &Param{
		Name: l.name + ".weight",
		Data: make([]float32, l.out*l.in),
		Grad: make([]float32, l.out*l.in),
	}
	l.bias = &Param{
		Name: l.name + ".bias",
		Data: make([]float32, l.out),
		Grad: make([]float32, l.out),
	}
	if !ctx.SkipCompute {
		scale := float32(math.Sqrt(2.0 / float64(l.in)))
		for i := range l.weight.Data {
			l.weight.Data[i] = (ctx.RNG.Float32()*2 - 1) * scale
		}
	}
	if err := ctx.Cudnn.Mem().Alloc(2 * int64(l.out) * int64(l.in+1) * 4); err != nil {
		return tensor.Shape{}, err
	}
	return tensor.Shape{N: bottoms[0].N, C: l.out, H: 1, W: 1}, nil
}

// Forward implements Layer.
func (l *FC) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	n := l.inShape.N
	ctx.ChargeGemm(int64(n), int64(l.out), int64(l.in))
	if ctx.SkipCompute {
		return nil
	}
	// top (n x out) = x (n x in) * Wᵀ (in x out)
	blas.Sgemm(false, true, n, l.out, l.in,
		1, bottoms[0].Data, l.in, l.weight.Data, l.in, 0,
		top.Data, l.out)
	for i := 0; i < n; i++ {
		row := top.Data[i*l.out : (i+1)*l.out]
		for j := range row {
			row[j] += l.bias.Data[j]
		}
	}
	return nil
}

// Backward implements Layer.
func (l *FC) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	n := l.inShape.N
	ctx.ChargeGemm(int64(l.out), int64(l.in), int64(n)) // dW
	ctx.ChargeGemm(int64(n), int64(l.in), int64(l.out)) // dX
	if ctx.SkipCompute {
		return nil
	}
	// dW (out x in) += dYᵀ (out x n) * X (n x in)
	blas.Sgemm(true, false, l.out, l.in, n,
		1, dTop.Data, l.out, bottoms[0].Data, l.in, 1,
		l.weight.Grad, l.in)
	// db += column sums of dY
	for i := 0; i < n; i++ {
		row := dTop.Data[i*l.out : (i+1)*l.out]
		for j := range row {
			l.bias.Grad[j] += row[j]
		}
	}
	// dX (n x in) = dY (n x out) * W (out x in)
	blas.Sgemm(false, false, n, l.in, l.out,
		1, dTop.Data, l.out, l.weight.Data, l.in, 0,
		dBottoms[0].Data, l.in)
	return nil
}

// SoftmaxLoss fuses softmax and cross-entropy against integer labels. Its
// top is a (1,1,1,1) blob holding the mean loss; Backward seeds the
// bottom gradient itself (ignoring dTop), as Caffe's loss layers do.
type SoftmaxLoss struct {
	name    string
	in      tensor.Shape
	classes int
	// Labels must be set before Forward (length N).
	Labels []int
	probs  []float32
	// Loss holds the last forward loss value.
	Loss float32
}

// NewSoftmaxLoss builds the loss layer.
func NewSoftmaxLoss(name string) *SoftmaxLoss { return &SoftmaxLoss{name: name} }

// Name implements Layer.
func (l *SoftmaxLoss) Name() string { return l.name }

// Params implements Layer.
func (l *SoftmaxLoss) Params() []*Param { return nil }

// Setup implements Layer.
func (l *SoftmaxLoss) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) != 1 {
		return tensor.Shape{}, fmt.Errorf("softmax %s: want 1 bottom", l.name)
	}
	if bottoms[0].H != 1 || bottoms[0].W != 1 {
		return tensor.Shape{}, fmt.Errorf("softmax %s: want flattened bottom, got %v", l.name, bottoms[0])
	}
	l.in = bottoms[0]
	l.classes = bottoms[0].C
	if !ctx.SkipCompute {
		l.probs = make([]float32, l.in.Elems())
	}
	return tensor.Shape{N: 1, C: 1, H: 1, W: 1}, nil
}

// Forward implements Layer.
func (l *SoftmaxLoss) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	ctx.ChargeMem(2 * l.in.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	n := l.in.N
	if len(l.Labels) != n {
		return fmt.Errorf("softmax %s: %d labels for batch %d", l.name, len(l.Labels), n)
	}
	var total float64
	for i := 0; i < n; i++ {
		row := bottoms[0].Data[i*l.classes : (i+1)*l.classes]
		probs := l.probs[i*l.classes : (i+1)*l.classes]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			probs[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range probs {
			probs[j] *= inv
		}
		p := probs[l.Labels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(float64(p))
	}
	l.Loss = float32(total / float64(n))
	top.Data[0] = l.Loss
	return nil
}

// Backward implements Layer.
func (l *SoftmaxLoss) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	ctx.ChargeMem(2 * l.in.Bytes())
	if ctx.SkipCompute {
		return nil
	}
	n := l.in.N
	inv := 1 / float32(n)
	for i := 0; i < n; i++ {
		probs := l.probs[i*l.classes : (i+1)*l.classes]
		drow := dBottoms[0].Data[i*l.classes : (i+1)*l.classes]
		for j := range drow {
			drow[j] = probs[j] * inv
		}
		drow[l.Labels[i]] -= inv
	}
	return nil
}
