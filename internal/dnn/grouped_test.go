package dnn

import (
	"math"
	"math/rand"
	"testing"

	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

// refGroupedForward computes a grouped convolution directly.
func refGroupedForward(x *tensor.Tensor, w *tensor.FilterTensor, groups, stride, pad int, bias []float32) *tensor.Tensor {
	in := x.Shape
	f := w.Filter // K x C/G x R x S
	kTotal := f.K
	cg := in.C / groups
	kg := kTotal / groups
	oh := (in.H+2*pad-f.R)/stride + 1
	ow := (in.W+2*pad-f.S)/stride + 1
	y := tensor.New(in.N, kTotal, oh, ow)
	for n := 0; n < in.N; n++ {
		for k := 0; k < kTotal; k++ {
			g := k / kg
			for u := 0; u < oh; u++ {
				for v := 0; v < ow; v++ {
					acc := float64(0)
					for c := 0; c < cg; c++ {
						for r := 0; r < f.R; r++ {
							ih := u*stride - pad + r
							if ih < 0 || ih >= in.H {
								continue
							}
							for s := 0; s < f.S; s++ {
								iw := v*stride - pad + s
								if iw < 0 || iw >= in.W {
									continue
								}
								acc += float64(x.At(n, g*cg+c, ih, iw)) * float64(w.At(k, c, r, s))
							}
						}
					}
					if bias != nil {
						acc += float64(bias[k])
					}
					y.Set(n, k, u, v, float32(acc))
				}
			}
		}
	}
	return y
}

func TestGroupedConvForwardMatchesReference(t *testing.T) {
	ctx := testCtx()
	ctx.RNG = rand.New(rand.NewSource(21))
	l := NewConvGrouped("gconv", 6, 3, 1, 1, 2, true)
	in := tensor.Shape{N: 3, C: 4, H: 7, W: 7}
	out, err := l.Setup(ctx, []tensor.Shape{in})
	if err != nil {
		t.Fatal(err)
	}
	if out != (tensor.Shape{N: 3, C: 6, H: 7, W: 7}) {
		t.Fatalf("out = %v", out)
	}
	// Filter must be K x C/G x R x S.
	if l.filter.Filter != (tensor.Filter{K: 6, C: 2, R: 3, S: 3}) {
		t.Fatalf("filter = %v", l.filter.Filter)
	}
	rng := rand.New(rand.NewSource(22))
	x := tensor.NewShaped(in)
	x.Randomize(rng, 1)
	for i := range l.biasParam.Data {
		l.biasParam.Data[i] = rng.Float32()
	}
	y := tensor.NewShaped(out)
	if err := l.Forward(ctx, []*tensor.Tensor{x}, y); err != nil {
		t.Fatal(err)
	}
	want := refGroupedForward(x, l.filter, 2, 1, 1, l.biasParam.Data)
	if !tensor.AllClose(y.Data, want.Data, 1e-4, 1e-4) {
		t.Fatalf("grouped forward wrong: maxdiff %g", tensor.MaxAbsDiff(y.Data, want.Data))
	}
}

// The grouped output's channel blocks must be independent: zeroing the
// second input group's channels must not change the first output group.
func TestGroupedConvGroupIndependence(t *testing.T) {
	ctx := testCtx()
	ctx.RNG = rand.New(rand.NewSource(23))
	l := NewConvGrouped("gconv", 4, 3, 1, 1, 2, false)
	in := tensor.Shape{N: 2, C: 4, H: 5, W: 5}
	out, err := l.Setup(ctx, []tensor.Shape{in})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	x := tensor.NewShaped(in)
	x.Randomize(rng, 1)
	y1 := tensor.NewShaped(out)
	l.Forward(ctx, []*tensor.Tensor{x}, y1)
	// Zero group 1's input channels (2, 3).
	for n := 0; n < in.N; n++ {
		for c := 2; c < 4; c++ {
			for h := 0; h < in.H; h++ {
				for w := 0; w < in.W; w++ {
					x.Set(n, c, h, w, 0)
				}
			}
		}
	}
	y2 := tensor.NewShaped(out)
	l.Forward(ctx, []*tensor.Tensor{x}, y2)
	// Output channels 0, 1 (group 0) unchanged; 2, 3 changed.
	for n := 0; n < out.N; n++ {
		for h := 0; h < out.H; h++ {
			for w := 0; w < out.W; w++ {
				if y1.At(n, 0, h, w) != y2.At(n, 0, h, w) || y1.At(n, 1, h, w) != y2.At(n, 1, h, w) {
					t.Fatal("group 0 output depends on group 1 input")
				}
			}
		}
	}
	changed := false
	for n := 0; n < out.N; n++ {
		for h := 0; h < out.H; h++ {
			for w := 0; w < out.W; w++ {
				if y1.At(n, 2, h, w) != y2.At(n, 2, h, w) {
					changed = true
				}
			}
		}
	}
	if !changed {
		t.Fatal("group 1 output ignored its input")
	}
}

func TestGroupedConvGradient(t *testing.T) {
	gradCheckLayer(t, NewConvGrouped("gconv", 4, 3, 1, 1, 2, true),
		[]tensor.Shape{{N: 2, C: 4, H: 5, W: 5}}, 25, 2e-2)
}

func TestGroupedConvStridedGradient(t *testing.T) {
	gradCheckLayer(t, NewConvGrouped("gconv", 6, 3, 2, 1, 3, false),
		[]tensor.Shape{{N: 2, C: 6, H: 7, W: 7}}, 26, 2e-2)
}

func TestGroupedConvRejectsBadGroups(t *testing.T) {
	ctx := testCtx()
	l := NewConvGrouped("g", 4, 3, 1, 1, 3, false)
	if _, err := l.Setup(ctx, []tensor.Shape{{N: 1, C: 4, H: 5, W: 5}}); err == nil {
		t.Fatal("C=4 with 3 groups must fail")
	}
	l2 := NewConvGrouped("g", 5, 3, 1, 1, 2, false)
	if _, err := l2.Setup(ctx, []tensor.Shape{{N: 1, C: 4, H: 5, W: 5}}); err == nil {
		t.Fatal("K=5 with 2 groups must fail")
	}
}

// Grouped conv in a net trains: loss decreases on the quadrant task.
func TestGroupedConvTrains(t *testing.T) {
	ctx := testCtx()
	net := NewNet(ctx)
	net.Input("data", tensor.Shape{N: 8, C: 4, H: 8, W: 8})
	net.Add(NewConvGrouped("conv1", 8, 3, 1, 1, 2, true), "conv1", "data")
	net.Add(NewReLU("relu1"), "relu1", "conv1")
	net.Add(NewGlobalAvgPool("gap"), "gap", "relu1")
	net.Add(NewFC("fc", 4), "fc", "gap")
	loss := NewSoftmaxLoss("loss")
	net.Add(loss, "loss", "fc")
	if err := net.Setup(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(27))
	sgd := NewSGD(0.1, 0.9, 0)
	loss.Labels = make([]int, 8)
	var first, last float32
	for it := 0; it < 100; it++ {
		in := net.InputBlob().Data
		in.Randomize(rng, 0.1)
		for n := 0; n < 8; n++ {
			lbl := rng.Intn(4)
			loss.Labels[n] = lbl
			h0, w0 := (lbl/2)*4, (lbl%2)*4
			for c := 0; c < 4; c++ {
				for h := 0; h < 4; h++ {
					for w := 0; w < 4; w++ {
						in.Add(n, c, h0+h, w0+w, 1.5)
					}
				}
			}
		}
		net.ZeroGrads()
		if err := net.Forward(); err != nil {
			t.Fatal(err)
		}
		if err := net.Backward(); err != nil {
			t.Fatal(err)
		}
		sgd.Step(net.Params())
		if it == 0 {
			first = loss.Loss
		}
		last = loss.Loss
	}
	if math.IsNaN(float64(last)) || last > first*0.8 {
		t.Fatalf("grouped training did not converge: %v -> %v", first, last)
	}
}

// Grouped convolution under µ-cuDNN: each group's kernel is planned and
// micro-batched independently, and the result matches plain cuDNN.
func TestGroupedConvUnderUcudnn(t *testing.T) {
	run := func(h ConvHandle, inner *cudnn.Handle) []float32 {
		ctx := NewContext(h, inner, 1<<20)
		ctx.RNG = rand.New(rand.NewSource(51))
		l := NewConvGrouped("gconv", 8, 3, 1, 1, 2, true)
		in := tensor.Shape{N: 6, C: 6, H: 9, W: 9}
		out, err := l.Setup(ctx, []tensor.Shape{in})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(52))
		x := tensor.NewShaped(in)
		x.Randomize(rng, 1)
		y := tensor.NewShaped(out)
		if err := l.Forward(ctx, []*tensor.Tensor{x}, y); err != nil {
			t.Fatal(err)
		}
		return y.Data
	}
	plain := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	base := run(plain, plain)

	inner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
	uc, err := core.New(inner, core.WithPolicy(core.PolicyPowerOfTwo), core.WithWorkspaceLimit(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	opt := run(uc, inner)
	if !tensor.AllClose(base, opt, 1e-4, 1e-4) {
		t.Fatalf("grouped conv diverged under µ-cuDNN: %g", tensor.MaxAbsDiff(base, opt))
	}
	// µ-cuDNN planned the group-shaped kernel (C/G channels).
	found := false
	for _, p := range uc.Plans() {
		if p.Kernel.Shape.In.C == 3 && p.Kernel.Shape.Filt.K == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no group-shaped plan: %v", uc.Plans())
	}
}
