package dnn

import (
	"testing"
	"time"

	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
)

// buildBranchyNet makes a two-branch diamond whose branches can overlap.
func buildBranchyNet(ctx *Context) *Net {
	net := NewNet(ctx)
	net.Input("data", tensor.Shape{N: 32, C: 16, H: 14, W: 14})
	net.Add(NewConv("a.conv", 16, 3, 1, 1, false), "a", "data")
	net.Add(NewConv("b.conv", 16, 3, 1, 1, false), "b", "data")
	net.Add(NewAdd("join"), "sum", "a", "b")
	return net
}

func schedCtx() *Context {
	h := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	ctx := NewContext(h, h, 8<<20)
	ctx.SkipCompute = true
	return ctx
}

func TestScheduleSequentialEqualsSum(t *testing.T) {
	net := buildBranchyNet(schedCtx())
	rep, err := net.Time(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := net.ScheduleForward(rep, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan != rep.TotalForward() {
		t.Fatalf("1-stream makespan %v != sequential forward %v", s.Makespan, rep.TotalForward())
	}
}

func TestScheduleOverlapsBranches(t *testing.T) {
	net := buildBranchyNet(schedCtx())
	rep, err := net.Time(1)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := net.ScheduleForward(rep, 1)
	par, err := net.ScheduleForward(rep, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
	if par.Makespan >= seq.Makespan {
		t.Fatalf("2 streams (%v) must beat 1 stream (%v)", par.Makespan, seq.Makespan)
	}
	// The two conv branches must actually run on different streams.
	tracks := map[string]int{}
	for _, ev := range par.Spans {
		tracks[ev.Name] = ev.Track
	}
	if tracks["a.conv"] == tracks["b.conv"] {
		t.Fatal("branches were not parallelized")
	}
	// Critical path bounds any schedule from below.
	cp, err := net.CriticalPath(rep)
	if err != nil {
		t.Fatal(err)
	}
	if par.Makespan < cp {
		t.Fatalf("makespan %v below critical path %v", par.Makespan, cp)
	}
	util := par.StreamUtilization()
	if len(util) < 2 || util[0] <= 0 || util[0] > 1.000001 {
		t.Fatalf("utilization wrong: %v", util)
	}
}

// A pure chain cannot benefit from extra streams.
func TestScheduleChainInsensitiveToStreams(t *testing.T) {
	ctx := schedCtx()
	net := NewNet(ctx)
	net.Input("data", tensor.Shape{N: 16, C: 8, H: 10, W: 10})
	net.Add(NewConv("c1", 8, 3, 1, 1, false), "c1", "data")
	net.Add(NewReLU("r1"), "r1", "c1")
	net.Add(NewConv("c2", 8, 3, 1, 1, false), "c2", "r1")
	rep, err := net.Time(1)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := net.ScheduleForward(rep, 1)
	s4, _ := net.ScheduleForward(rep, 4)
	if s1.Makespan != s4.Makespan {
		t.Fatalf("chain makespan changed with streams: %v vs %v", s1.Makespan, s4.Makespan)
	}
}

func TestScheduleErrors(t *testing.T) {
	net := buildBranchyNet(schedCtx())
	rep, err := net.Time(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.ScheduleForward(rep, 0); err == nil {
		t.Fatal("zero streams must error")
	}
	bad := &TimingReport{Layers: rep.Layers[:1]}
	if _, err := net.ScheduleForward(bad, 2); err == nil {
		t.Fatal("layer-count mismatch must error")
	}
	unready := NewNet(schedCtx())
	if _, err := unready.ScheduleForward(rep, 1); err == nil {
		t.Fatal("unset-up net must error")
	}
}

func TestScheduleTraceExport(t *testing.T) {
	net := buildBranchyNet(schedCtx())
	rep, err := net.Time(1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := net.ScheduleForward(rep, 2)
	rec := trace.New()
	s.WriteTrace(rec)
	if rec.Len() != len(s.Spans) {
		t.Fatal("trace export lost spans")
	}
}

func TestValidateDetectsOverlap(t *testing.T) {
	s := &Schedule{Spans: []trace.Event{
		{Name: "a", Track: 0, Start: 0, Dur: 10 * time.Microsecond},
		{Name: "b", Track: 0, Start: 5 * time.Microsecond, Dur: 10 * time.Microsecond},
	}}
	if err := s.Validate(); err == nil {
		t.Fatal("overlap not detected")
	}
}

func TestScheduleOOCOverlap(t *testing.T) {
	plan := OOCPlan{Batch: 8, Chunk: 2, Windows: 4}
	fetch, compute, spill := 3*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond
	s, err := ScheduleOOC(plan, fetch, compute, spill)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Spans); got != 3*plan.Windows {
		t.Fatalf("spans = %d, want %d", got, 3*plan.Windows)
	}
	serial := time.Duration(plan.Windows) * (fetch + compute + spill)
	if s.Makespan >= serial {
		t.Fatalf("no overlap: makespan %v >= serial %v", s.Makespan, serial)
	}
	// Double buffering hides all but the first fetch behind compute when
	// the copy stream keeps up: fetch + W*compute + trailing spill.
	want := fetch + time.Duration(plan.Windows)*compute + spill
	if s.Makespan != want {
		t.Fatalf("makespan = %v, want %v", s.Makespan, want)
	}
}

func TestScheduleOOCNoSpill(t *testing.T) {
	s, err := ScheduleOOC(OOCPlan{Windows: 3}, time.Millisecond, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Spans); got != 6 {
		t.Fatalf("spans = %d, want 6 (no spill events)", got)
	}
}

func TestScheduleOOCRejects(t *testing.T) {
	if _, err := ScheduleOOC(OOCPlan{Windows: 0}, 1, 1, 1); err == nil {
		t.Fatal("want error for zero windows")
	}
	if _, err := ScheduleOOC(OOCPlan{Windows: 1}, -1, 1, 1); err == nil {
		t.Fatal("want error for negative duration")
	}
}
