package dnn

import (
	"fmt"
	"sort"
	"time"

	"ucudnn/internal/trace"
)

// Schedule is the result of simulating a pass on multiple concurrent
// device streams: per-layer spans (stream-tagged) and the makespan.
// The paper's §III-A motivates Workspace Division with exactly this
// setting — Inception-style branches running concurrently, each with its
// own workspace segment.
type Schedule struct {
	// Makespan is the critical-path completion time.
	Makespan time.Duration
	// Spans lists one event per layer, with Track = stream index.
	Spans []trace.Event
}

// WriteTrace exports the schedule in Chrome trace format.
func (s *Schedule) WriteTrace(rec *trace.Recorder) {
	for _, ev := range s.Spans {
		rec.Add(ev)
	}
}

// ScheduleForward simulates the forward pass on `streams` concurrent
// streams using per-layer durations from a prior timing report: a layer
// becomes ready when all its bottom blobs are produced, and the earliest-
// available stream runs it (greedy list scheduling). With one stream this
// degenerates to the sequential total; with several, independent branches
// overlap and the makespan approaches the critical path.
func (n *Net) ScheduleForward(rep *TimingReport, streams int) (*Schedule, error) {
	if streams < 1 {
		return nil, fmt.Errorf("dnn: need at least one stream")
	}
	if !n.ready {
		return nil, fmt.Errorf("dnn: ScheduleForward before Setup")
	}
	if len(rep.Layers) != len(n.layers) {
		return nil, fmt.Errorf("dnn: report has %d layers, net has %d", len(rep.Layers), len(n.layers))
	}
	// blobReady[name] = completion time of the producing layer;
	// blobSpan[name] = its span ID, the flow edge consumers point at.
	blobReady := map[string]time.Duration{n.inputName: 0}
	blobSpan := map[string]uint64{}
	streamFree := make([]time.Duration, streams)
	out := &Schedule{}
	for i, li := range n.layers {
		ready := time.Duration(0)
		var flow uint64
		for _, b := range li.bottoms {
			t, ok := blobReady[b]
			if !ok {
				return nil, fmt.Errorf("dnn: blob %q scheduled before production", b)
			}
			if t > ready {
				ready = t
				flow = blobSpan[b]
			}
		}
		// Earliest-start stream: max(ready, streamFree) minimized.
		best := 0
		bestStart := maxDur(ready, streamFree[0])
		for s := 1; s < streams; s++ {
			if st := maxDur(ready, streamFree[s]); st < bestStart {
				best, bestStart = s, st
			}
		}
		dur := rep.Layers[i].Forward
		end := bestStart + dur
		streamFree[best] = end
		blobReady[li.top] = end
		span := uint64(i + 1)
		blobSpan[li.top] = span
		out.Spans = append(out.Spans, trace.Event{
			Name:  li.layer.Name(),
			Cat:   "fwd",
			Start: bestStart,
			Dur:   dur,
			Track: best,
			Span:  span,
			Flow:  flow,
		})
		if end > out.Makespan {
			out.Makespan = end
		}
	}
	return out, nil
}

// ScheduleOOC lays one streamed out-of-core layer pass on three streams
// — track 0 fetches (H2D copy engine), track 1 computes, track 2 spills
// (D2H copy engine) — with double buffering: window i+1's fetch overlaps
// window i's compute, and spills drain behind their window's compute.
// It is the blob-streaming analogue of the workspace-division overlap
// discipline: with transfer and compute balanced, the makespan
// approaches max(copy, compute) instead of their sum.
func ScheduleOOC(plan OOCPlan, fetch, compute, spill time.Duration) (*Schedule, error) {
	if plan.Windows < 1 {
		return nil, fmt.Errorf("dnn: OOC plan has no windows")
	}
	if fetch < 0 || compute < 0 || spill < 0 {
		return nil, fmt.Errorf("dnn: negative OOC span duration")
	}
	out := &Schedule{}
	var h2dFree, computeFree, d2hFree time.Duration
	var nextSpan uint64
	// Flow edges record the double-buffering dependencies: each window's
	// compute depends on its fetch, each spill on its compute.
	add := func(name string, track int, start, dur time.Duration, flow uint64) (time.Duration, uint64) {
		nextSpan++
		out.Spans = append(out.Spans, trace.Event{
			Name: name, Cat: "ooc", Start: start, Dur: dur, Track: track,
			Span: nextSpan, Flow: flow,
		})
		end := start + dur
		if end > out.Makespan {
			out.Makespan = end
		}
		return end, nextSpan
	}
	for w := 0; w < plan.Windows; w++ {
		var fetchSpan, computeSpan uint64
		h2dFree, fetchSpan = add(fmt.Sprintf("ooc_fetch[%d]", w), 0, h2dFree, fetch, 0)
		computeFree, computeSpan = add(fmt.Sprintf("ooc_compute[%d]", w), 1, maxDur(h2dFree, computeFree), compute, fetchSpan)
		if spill > 0 {
			d2hFree, _ = add(fmt.Sprintf("ooc_spill[%d]", w), 2, maxDur(computeFree, d2hFree), spill, computeSpan)
		}
	}
	return out, nil
}

// CriticalPath returns the forward critical-path length (the makespan
// with unbounded streams): the lower bound concurrency can reach.
func (n *Net) CriticalPath(rep *TimingReport) (time.Duration, error) {
	s, err := n.ScheduleForward(rep, len(n.layers)+1)
	if err != nil {
		return 0, err
	}
	return s.Makespan, nil
}

// StreamUtilization summarizes per-stream busy fractions of a schedule.
func (s *Schedule) StreamUtilization() []float64 {
	if s.Makespan <= 0 {
		return nil
	}
	busy := map[int]time.Duration{}
	maxTrack := 0
	for _, ev := range s.Spans {
		busy[ev.Track] += ev.Dur
		if ev.Track > maxTrack {
			maxTrack = ev.Track
		}
	}
	out := make([]float64, maxTrack+1)
	for tr, d := range busy {
		out[tr] = d.Seconds() / s.Makespan.Seconds()
	}
	return out
}

// Validate checks the schedule invariants: spans on the same stream never
// overlap, and every span starts after its layer's inputs completed.
func (s *Schedule) Validate() error {
	byTrack := map[int][]trace.Event{}
	for _, ev := range s.Spans {
		byTrack[ev.Track] = append(byTrack[ev.Track], ev)
	}
	for tr, evs := range byTrack {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].Start+evs[i-1].Dur {
				return fmt.Errorf("dnn: stream %d spans overlap: %q and %q", tr, evs[i-1].Name, evs[i].Name)
			}
		}
	}
	return nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
