package dnn

import (
	"fmt"
	"math"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/tensor"
)

// Conv is a 2-D convolution layer with optional bias. It is the only
// layer that touches the kernel library, doing so exactly the way Caffe
// does: one Get*Algorithm call per kernel at setup (passing the
// framework's per-layer workspace limit), one workspace-size query, and
// Convolution* calls per iteration. Under µ-cuDNN the returned algorithm
// is virtual and the workspace sizes are zero.
type Conv struct {
	name                           string
	k, r, s                        int
	strideH, strideW               int
	padH, padW                     int
	withBias                       bool
	filter                         *tensor.FilterTensor
	dFilter                        *tensor.FilterTensor
	filterParam, biasParam         *Param
	xd, yd                         cudnn.TensorDesc
	wd                             cudnn.FilterDesc
	cd                             cudnn.ConvDesc
	fwdAlgo, bwdDAlgo, bwdFAlgo    conv.Algo
	wsFBytes, wsBDBytes, wsBFBytes int64
	skipInputGrad                  bool

	// Grouped-convolution state: the descriptors above describe one
	// group's kernel; per-group channel slices are staged through the
	// temporaries below (nil when groups == 1 or in timing-only mode).
	groups     int
	in, out    tensor.Shape
	xg, yg, dg *tensor.Tensor

	// Out-of-core window state: descriptors, algorithms and workspace
	// sizes per micro-batch window size. Setup seeds the planned sizes
	// (so WD registers the kernels actually executed); sizes the
	// degradation ladder improvises later are queried lazily and fall to
	// the library's WR path. Nil when the layer runs whole-batch.
	win map[int]*convWindow
}

// convWindow is one micro-batch window size's kernel state.
type convWindow struct {
	xd, yd          cudnn.TensorDesc
	fwd, bwdD, bwdF conv.Algo
	wsF, wsBD, wsBF int64
}

// NewConv builds a conv layer with square kernels.
func NewConv(name string, k, kernel, stride, pad int, bias bool) *Conv {
	return &Conv{
		name: name, k: k, r: kernel, s: kernel,
		strideH: stride, strideW: stride, padH: pad, padW: pad,
		withBias: bias, groups: 1,
	}
}

// NewConvGrouped builds a grouped convolution (Caffe's group parameter):
// input and output channels are split into `groups` independent
// convolutions, executed as separate kernels exactly as Caffe issues them
// to cuDNN — so each group's kernel is individually optimizable by
// µ-cuDNN.
func NewConvGrouped(name string, k, kernel, stride, pad, groups int, bias bool) *Conv {
	c := NewConv(name, k, kernel, stride, pad, bias)
	c.groups = groups
	return c
}

// SkipInputGrad marks the layer as the network's first convolution, whose
// BackwardData kernel frameworks skip (no gradient flows to raw data).
func (l *Conv) SkipInputGrad() *Conv { l.skipInputGrad = true; return l }

// Name implements Layer.
func (l *Conv) Name() string { return l.name }

// Params implements Layer.
func (l *Conv) Params() []*Param {
	if l.biasParam != nil {
		return []*Param{l.filterParam, l.biasParam}
	}
	return []*Param{l.filterParam}
}

// Shape returns the layer's convolution shape (for inspection/benches).
func (l *Conv) Shape() tensor.ConvShape { return cudnn.Shape(l.xd, l.wd, l.cd) }

// Setup implements Layer.
func (l *Conv) Setup(ctx *Context, bottoms []tensor.Shape) (tensor.Shape, error) {
	if len(bottoms) != 1 {
		return tensor.Shape{}, fmt.Errorf("conv %s: want 1 bottom, got %d", l.name, len(bottoms))
	}
	in := bottoms[0]
	if l.groups < 1 {
		l.groups = 1
	}
	if in.C%l.groups != 0 || l.k%l.groups != 0 {
		return tensor.Shape{}, fmt.Errorf("conv %s: channels %d/%d not divisible by %d groups", l.name, in.C, l.k, l.groups)
	}
	cg, kg := in.C/l.groups, l.k/l.groups
	var err error
	// Descriptors describe one group's kernel (the whole layer when
	// groups == 1), which is the unit cuDNN — and hence µ-cuDNN — sees.
	if l.xd, err = cudnn.NewTensorDesc(in.N, cg, in.H, in.W); err != nil {
		return tensor.Shape{}, err
	}
	if l.wd, err = cudnn.NewFilterDesc(kg, cg, l.r, l.s); err != nil {
		return tensor.Shape{}, err
	}
	if l.cd, err = cudnn.NewConvDesc(l.padH, l.padW, l.strideH, l.strideW, 1, 1); err != nil {
		return tensor.Shape{}, err
	}
	if l.yd, err = cudnn.GetOutputDim(l.xd, l.wd, l.cd); err != nil {
		return tensor.Shape{}, err
	}
	l.in = in
	l.out = tensor.Shape{N: in.N, C: l.k, H: l.yd.H, W: l.yd.W}

	// Parameters: He initialization. Grouped filters are K x C/G x R x S,
	// as in Caffe.
	l.filter = tensor.NewFilter(l.k, cg, l.r, l.s)
	l.dFilter = tensor.NewFilter(l.k, cg, l.r, l.s)
	if !ctx.SkipCompute {
		scale := float32(math.Sqrt(2.0 / float64(cg*l.r*l.s)))
		l.filter.Randomize(ctx.RNG, scale)
	}
	if l.groups > 1 && !ctx.SkipCompute {
		l.xg = tensor.New(in.N, cg, in.H, in.W)
		l.yg = tensor.New(in.N, kg, l.yd.H, l.yd.W)
		l.dg = tensor.New(in.N, kg, l.yd.H, l.yd.W)
	}
	if err := ctx.Cudnn.Mem().Alloc(2 * l.filter.Filter.Bytes()); err != nil {
		return tensor.Shape{}, err
	}
	l.filterParam = &Param{Name: l.name + ".weight", Data: l.filter.Data, Grad: l.dFilter.Data}
	if l.withBias {
		l.biasParam = &Param{
			Name: l.name + ".bias",
			Data: make([]float32, l.k),
			Grad: make([]float32, l.k),
		}
		if err := ctx.Cudnn.Mem().Alloc(2 * int64(l.k) * 4); err != nil {
			return tensor.Shape{}, err
		}
	}

	// Algorithm selection and workspace queries through the framework's
	// preference convention (Caffe: explicit limit; TF: PreferFastest).
	// Under out-of-core execution the layer runs in micro-batch windows,
	// so the windows' shapes — not the whole batch — are what the library
	// must select algorithms (and, under WD, register kernels) for.
	pref, limit := ctx.Pref, ctx.WorkspaceLimit
	if ctx.OOC != nil {
		l.win = map[int]*convWindow{}
		for i, wn := range ctx.OOC.SetupSizes() {
			w, werr := l.winFor(ctx, wn)
			if werr != nil {
				return tensor.Shape{}, werr
			}
			if i == 0 {
				l.fwdAlgo, l.bwdDAlgo, l.bwdFAlgo = w.fwd, w.bwdD, w.bwdF
			}
			l.wsFBytes = imax64(l.wsFBytes, w.wsF)
			l.wsBDBytes = imax64(l.wsBDBytes, w.wsBD)
			l.wsBFBytes = imax64(l.wsBFBytes, w.wsBF)
		}
	} else {
		if l.fwdAlgo, err = ctx.Conv.GetConvolutionForwardAlgorithm(l.xd, l.wd, l.cd, l.yd, pref, limit); err != nil {
			return tensor.Shape{}, err
		}
		if l.bwdDAlgo, err = ctx.Conv.GetConvolutionBackwardDataAlgorithm(l.wd, l.yd, l.cd, l.xd, pref, limit); err != nil {
			return tensor.Shape{}, err
		}
		if l.bwdFAlgo, err = ctx.Conv.GetConvolutionBackwardFilterAlgorithm(l.xd, l.yd, l.cd, l.wd, pref, limit); err != nil {
			return tensor.Shape{}, err
		}
		if l.wsFBytes, err = ctx.Conv.GetConvolutionForwardWorkspaceSize(l.xd, l.wd, l.cd, l.yd, l.fwdAlgo); err != nil {
			return tensor.Shape{}, err
		}
		if l.wsBDBytes, err = ctx.Conv.GetConvolutionBackwardDataWorkspaceSize(l.wd, l.yd, l.cd, l.xd, l.bwdDAlgo); err != nil {
			return tensor.Shape{}, err
		}
		if l.wsBFBytes, err = ctx.Conv.GetConvolutionBackwardFilterWorkspaceSize(l.xd, l.yd, l.cd, l.wd, l.bwdFAlgo); err != nil {
			return tensor.Shape{}, err
		}
	}
	// Each kernel's workspace counts against device memory individually
	// (frameworks allocate per layer); the host backing is the context's
	// shared arena since execution is sequential.
	if err := ctx.Cudnn.Mem().Alloc(l.wsFBytes + l.wsBDBytes + l.wsBFBytes); err != nil {
		return tensor.Shape{}, err
	}
	return l.out, nil
}

// groupFilter returns a view of group g's filters (dFilter when grad is
// set); the KCRS layout makes each group's K/G filter rows contiguous.
func (l *Conv) groupFilter(g int, grad bool) *tensor.FilterTensor {
	src := l.filter
	if grad {
		src = l.dFilter
	}
	if l.groups == 1 {
		return src
	}
	kg := l.k / l.groups
	per := kg * src.Filter.C * l.r * l.s
	return &tensor.FilterTensor{
		Filter: tensor.Filter{K: kg, C: src.Filter.C, R: l.r, S: l.s},
		Data:   src.Data[g*per : (g+1)*per],
	}
}

// copyChannels copies count channels starting at channel src0 of src into
// channel dst0 of dst, for every sample.
func copyChannels(dst *tensor.Tensor, dst0 int, src *tensor.Tensor, src0, count int) {
	plane := src.Shape.H * src.Shape.W
	for n := 0; n < src.Shape.N; n++ {
		s := src.Data[src.Index(n, src0, 0, 0) : src.Index(n, src0, 0, 0)+count*plane]
		d := dst.Data[dst.Index(n, dst0, 0, 0) : dst.Index(n, dst0, 0, 0)+count*plane]
		copy(d, s)
	}
}

// WorkspaceBytes reports the layer's three per-kernel workspace sizes
// (Forward, BackwardData, BackwardFilter).
func (l *Conv) WorkspaceBytes() (fwd, bwdData, bwdFilter int64) {
	return l.wsFBytes, l.wsBDBytes, l.wsBFBytes
}

func imax64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// sampleOrNil returns the [lo, lo+n) sample window of t, passing nil
// through for timing-only runs whose blobs have no host backing.
func sampleOrNil(t *tensor.Tensor, lo, n int) *tensor.Tensor {
	if t == nil {
		return nil
	}
	return t.Sample(lo, n)
}

// winFor returns (querying lazily if needed) the kernel state for a
// micro-batch window of n samples: window-shaped descriptors plus the
// library's algorithm and workspace answers for that shape.
func (l *Conv) winFor(ctx *Context, n int) (*convWindow, error) {
	if w, ok := l.win[n]; ok {
		return w, nil
	}
	cg := l.in.C / l.groups
	w := &convWindow{}
	var err error
	if w.xd, err = cudnn.NewTensorDesc(n, cg, l.in.H, l.in.W); err != nil {
		return nil, err
	}
	if w.yd, err = cudnn.GetOutputDim(w.xd, l.wd, l.cd); err != nil {
		return nil, err
	}
	pref, limit := ctx.Pref, ctx.WorkspaceLimit
	if w.fwd, err = ctx.Conv.GetConvolutionForwardAlgorithm(w.xd, l.wd, l.cd, w.yd, pref, limit); err != nil {
		return nil, err
	}
	if w.bwdD, err = ctx.Conv.GetConvolutionBackwardDataAlgorithm(l.wd, w.yd, l.cd, w.xd, pref, limit); err != nil {
		return nil, err
	}
	if w.bwdF, err = ctx.Conv.GetConvolutionBackwardFilterAlgorithm(w.xd, w.yd, l.cd, l.wd, pref, limit); err != nil {
		return nil, err
	}
	if w.wsF, err = ctx.Conv.GetConvolutionForwardWorkspaceSize(w.xd, l.wd, l.cd, w.yd, w.fwd); err != nil {
		return nil, err
	}
	if w.wsBD, err = ctx.Conv.GetConvolutionBackwardDataWorkspaceSize(l.wd, w.yd, l.cd, w.xd, w.bwdD); err != nil {
		return nil, err
	}
	if w.wsBF, err = ctx.Conv.GetConvolutionBackwardFilterWorkspaceSize(w.xd, w.yd, l.cd, l.wd, w.bwdF); err != nil {
		return nil, err
	}
	l.win[n] = w
	return w, nil
}

// forwardOOC runs the forward convolution over the executor's window
// partition: ascending contiguous sample windows, each a whole kernel
// call on window-shaped descriptors. Per-sample independence makes the
// concatenated windows bitwise equal to the undivided call.
func (l *Conv) forwardOOC(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	cg, kg := l.in.C/l.groups, l.k/l.groups
	lo := 0
	for _, c := range ctx.OOC.partition() {
		w, err := l.winFor(ctx, c)
		if err != nil {
			return err
		}
		if l.groups == 1 {
			if err := ctx.Conv.ConvolutionForward(1, w.xd, sampleOrNil(bottoms[0], lo, c), l.wd, l.filter, l.cd, w.fwd, ctx.Workspace(w.wsF), 0, w.yd, sampleOrNil(top, lo, c)); err != nil {
				return err
			}
		} else {
			xg, yg := sampleOrNil(l.xg, lo, c), sampleOrNil(l.yg, lo, c)
			xv, yv := sampleOrNil(bottoms[0], lo, c), sampleOrNil(top, lo, c)
			for g := 0; g < l.groups; g++ {
				ctx.ChargeMem(2 * (w.xd.Shape().Bytes() + w.yd.Shape().Bytes()))
				if !ctx.SkipCompute {
					copyChannels(xg, 0, xv, g*cg, cg)
				}
				if err := ctx.Conv.ConvolutionForward(1, w.xd, xg, l.wd, l.groupFilter(g, false), l.cd, w.fwd, ctx.Workspace(w.wsF), 0, w.yd, yg); err != nil {
					return err
				}
				if !ctx.SkipCompute {
					copyChannels(yv, g*kg, yg, 0, kg)
				}
			}
		}
		lo += c
	}
	return nil
}

// backwardFilterOOC accumulates dW over the window partition with
// beta=1: ascending contiguous windows reproduce the undivided
// ascending-n reduction bit for bit (the same contract micro-batching
// itself relies on).
func (l *Conv) backwardFilterOOC(ctx *Context, bottoms []*tensor.Tensor, dTop *tensor.Tensor) error {
	cg, kg := l.in.C/l.groups, l.k/l.groups
	lo := 0
	for _, c := range ctx.OOC.partition() {
		w, err := l.winFor(ctx, c)
		if err != nil {
			return err
		}
		if l.groups == 1 {
			if err := ctx.Conv.ConvolutionBackwardFilter(1, w.xd, sampleOrNil(bottoms[0], lo, c), w.yd, sampleOrNil(dTop, lo, c), l.cd, w.bwdF, ctx.Workspace(w.wsBF), 1, l.wd, l.dFilter); err != nil {
				return err
			}
		} else {
			xg, dg := sampleOrNil(l.xg, lo, c), sampleOrNil(l.dg, lo, c)
			xv, dv := sampleOrNil(bottoms[0], lo, c), sampleOrNil(dTop, lo, c)
			for g := 0; g < l.groups; g++ {
				ctx.ChargeMem(2 * (w.xd.Shape().Bytes() + w.yd.Shape().Bytes()))
				if !ctx.SkipCompute {
					copyChannels(xg, 0, xv, g*cg, cg)
					copyChannels(dg, 0, dv, g*kg, kg)
				}
				if err := ctx.Conv.ConvolutionBackwardFilter(1, w.xd, xg, w.yd, dg, l.cd, w.bwdF, ctx.Workspace(w.wsBF), 1, l.wd, l.groupFilter(g, true)); err != nil {
					return err
				}
			}
		}
		lo += c
	}
	return nil
}

// backwardDataOOC computes dX over the window partition (beta=0; window
// writes are disjoint, so the concatenation is the undivided result).
func (l *Conv) backwardDataOOC(ctx *Context, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	cg, kg := l.in.C/l.groups, l.k/l.groups
	lo := 0
	for _, c := range ctx.OOC.partition() {
		w, err := l.winFor(ctx, c)
		if err != nil {
			return err
		}
		if l.groups == 1 {
			if err := ctx.Conv.ConvolutionBackwardData(1, l.wd, l.filter, w.yd, sampleOrNil(dTop, lo, c), l.cd, w.bwdD, ctx.Workspace(w.wsBD), 0, w.xd, sampleOrNil(dBottoms[0], lo, c)); err != nil {
				return err
			}
		} else {
			xg, dg := sampleOrNil(l.xg, lo, c), sampleOrNil(l.dg, lo, c)
			dxv, dv := sampleOrNil(dBottoms[0], lo, c), sampleOrNil(dTop, lo, c)
			for g := 0; g < l.groups; g++ {
				ctx.ChargeMem(2 * (w.xd.Shape().Bytes() + w.yd.Shape().Bytes()))
				if !ctx.SkipCompute {
					copyChannels(dg, 0, dv, g*kg, kg)
				}
				if err := ctx.Conv.ConvolutionBackwardData(1, l.wd, l.groupFilter(g, false), w.yd, dg, l.cd, w.bwdD, ctx.Workspace(w.wsBD), 0, w.xd, xg); err != nil {
					return err
				}
				if !ctx.SkipCompute {
					copyChannels(dxv, g*cg, xg, 0, cg)
				}
			}
		}
		lo += c
	}
	return nil
}

// Forward implements Layer.
func (l *Conv) Forward(ctx *Context, bottoms []*tensor.Tensor, top *tensor.Tensor) error {
	if ctx.OOC != nil {
		if err := l.forwardOOC(ctx, bottoms, top); err != nil {
			return err
		}
	} else if l.groups == 1 {
		if err := ctx.Conv.ConvolutionForward(1, l.xd, bottoms[0], l.wd, l.filter, l.cd, l.fwdAlgo, ctx.Workspace(l.wsFBytes), 0, l.yd, top); err != nil {
			return err
		}
	} else {
		cg, kg := l.in.C/l.groups, l.k/l.groups
		for g := 0; g < l.groups; g++ {
			// Channel gather/scatter is a device copy, as in Caffe's
			// per-group cuDNN calls with strided descriptors.
			ctx.ChargeMem(2 * (l.xd.Shape().Bytes() + l.yd.Shape().Bytes()))
			if !ctx.SkipCompute {
				copyChannels(l.xg, 0, bottoms[0], g*cg, cg)
			}
			if err := ctx.Conv.ConvolutionForward(1, l.xd, l.xg, l.wd, l.groupFilter(g, false), l.cd, l.fwdAlgo, ctx.Workspace(l.wsFBytes), 0, l.yd, l.yg); err != nil {
				return err
			}
			if !ctx.SkipCompute {
				copyChannels(top, g*kg, l.yg, 0, kg)
			}
		}
	}
	if l.withBias {
		ctx.ChargeMem(2 * l.out.Bytes())
		if !ctx.SkipCompute {
			plane := l.out.H * l.out.W
			for n := 0; n < l.out.N; n++ {
				for k := 0; k < l.out.C; k++ {
					b := l.biasParam.Data[k]
					base := top.Index(n, k, 0, 0)
					for i := 0; i < plane; i++ {
						top.Data[base+i] += b
					}
				}
			}
		}
	}
	return nil
}

// Backward implements Layer.
func (l *Conv) Backward(ctx *Context, bottoms []*tensor.Tensor, top, dTop *tensor.Tensor, dBottoms []*tensor.Tensor) error {
	if ctx.OOC != nil {
		if err := l.backwardFilterOOC(ctx, bottoms, dTop); err != nil {
			return err
		}
	} else if l.groups == 1 {
		// Parameter gradients accumulate (beta=1); the trainer zeroes them.
		if err := ctx.Conv.ConvolutionBackwardFilter(1, l.xd, bottoms[0], l.yd, dTop, l.cd, l.bwdFAlgo, ctx.Workspace(l.wsBFBytes), 1, l.wd, l.dFilter); err != nil {
			return err
		}
	} else {
		cg, kg := l.in.C/l.groups, l.k/l.groups
		for g := 0; g < l.groups; g++ {
			ctx.ChargeMem(2 * (l.xd.Shape().Bytes() + l.yd.Shape().Bytes()))
			if !ctx.SkipCompute {
				copyChannels(l.xg, 0, bottoms[0], g*cg, cg)
				copyChannels(l.dg, 0, dTop, g*kg, kg)
			}
			if err := ctx.Conv.ConvolutionBackwardFilter(1, l.xd, l.xg, l.yd, l.dg, l.cd, l.bwdFAlgo, ctx.Workspace(l.wsBFBytes), 1, l.wd, l.groupFilter(g, true)); err != nil {
				return err
			}
		}
	}
	if l.withBias {
		ctx.ChargeMem(l.out.Bytes())
		if !ctx.SkipCompute {
			plane := l.out.H * l.out.W
			for n := 0; n < l.out.N; n++ {
				for k := 0; k < l.out.C; k++ {
					base := dTop.Index(n, k, 0, 0)
					var s float32
					for i := 0; i < plane; i++ {
						s += dTop.Data[base+i]
					}
					l.biasParam.Grad[k] += s
				}
			}
		}
	}
	if l.skipInputGrad {
		return nil
	}
	if ctx.OOC != nil {
		return l.backwardDataOOC(ctx, dTop, dBottoms)
	}
	if l.groups == 1 {
		return ctx.Conv.ConvolutionBackwardData(1, l.wd, l.filter, l.yd, dTop, l.cd, l.bwdDAlgo, ctx.Workspace(l.wsBDBytes), 0, l.xd, dBottoms[0])
	}
	cg, kg := l.in.C/l.groups, l.k/l.groups
	for g := 0; g < l.groups; g++ {
		ctx.ChargeMem(2 * (l.xd.Shape().Bytes() + l.yd.Shape().Bytes()))
		if !ctx.SkipCompute {
			copyChannels(l.dg, 0, dTop, g*kg, kg)
		}
		if err := ctx.Conv.ConvolutionBackwardData(1, l.wd, l.groupFilter(g, false), l.yd, l.dg, l.cd, l.bwdDAlgo, ctx.Workspace(l.wsBDBytes), 0, l.xd, l.xg); err != nil {
			return err
		}
		if !ctx.SkipCompute {
			copyChannels(dBottoms[0], g*cg, l.xg, 0, cg)
		}
	}
	return nil
}
