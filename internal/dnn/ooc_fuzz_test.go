package dnn

import (
	"math/rand"
	"testing"

	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
)

// FuzzOOCSchedule fuzzes the out-of-core planner and executor across
// micro-batch counts, budgets and graph shapes: the plan must be
// deterministic, its peak claim must match independent recomputation and
// respect the budget (except at the documented recompute floor), and the
// executor's window partitions must cover the batch exactly — at every
// rung of the degradation ladder, without panicking.
func FuzzOOCSchedule(f *testing.F) {
	f.Add(4, int64(1<<20), []byte{8, 3, 1, 16, 2}, 0)
	f.Add(1, int64(1), []byte{1}, 1)
	f.Add(7, int64(77777), []byte{255, 0, 17, 4, 9, 33, 2, 128}, 3)
	f.Add(32, int64(9), []byte{5, 5, 5, 5, 5, 5}, 9)
	f.Fuzz(func(t *testing.T, batch int, budget int64, shape []byte, ladderSteps int) {
		if batch < 1 || batch > 64 {
			return
		}
		if budget < 1 || budget > 1<<40 {
			return
		}
		if len(shape) == 0 || len(shape) > 64 {
			return
		}

		// The shape bytes seed a deterministic graph: slab sizes and layer
		// touch sets come from a PRNG over their sum, so every corpus entry
		// names one exact model.
		var seed int64
		for _, b := range shape {
			seed = seed*257 + int64(b) + 1
		}
		rng := rand.New(rand.NewSource(seed))
		m := &OOCModel{Batch: batch}
		nSlabs := 1 + rng.Intn(16)
		for i := 0; i < nSlabs; i++ {
			per := int64(1 + rng.Intn(1<<14))
			m.Slabs = append(m.Slabs, OOCSlab{Name: "s", PerSample: per, Full: 2 * per * int64(batch)})
		}
		nLayers := 1 + rng.Intn(12)
		for i := 0; i < nLayers; i++ {
			foot := OOCLayerFoot{Name: "l", Barrier: rng.Intn(5) == 0, Out: rng.Intn(nSlabs)}
			seen := map[int]bool{foot.Out: true}
			foot.Slabs = []int{foot.Out}
			for k := rng.Intn(4); k > 0; k-- {
				if s := rng.Intn(nSlabs); !seen[s] {
					seen[s] = true
					foot.In = append(foot.In, s)
					foot.Slabs = append(foot.Slabs, s)
				}
			}
			m.Layers = append(m.Layers, foot)
		}

		plan, err := PlanOOC(m, budget)
		if err != nil {
			t.Fatalf("planner rejected a well-formed model: %v", err)
		}
		replan, err := PlanOOC(m, budget)
		if err != nil || plan.Chunk != replan.Chunk || plan.PeakBytes != replan.PeakBytes ||
			plan.Floor != replan.Floor || len(plan.Resident) != len(replan.Resident) {
			t.Fatalf("plan not deterministic: %+v vs %+v (%v)", plan, replan, err)
		}
		resident := map[int]bool{}
		for _, s := range plan.Resident {
			resident[s] = true
		}
		if got := oraclePeak(m, plan.Chunk, resident); got != plan.PeakBytes {
			t.Fatalf("peak claim %d != oracle %d", plan.PeakBytes, got)
		}
		if !plan.Floor && plan.PeakBytes > plan.Budget-plan.WSShare {
			t.Fatalf("plan exceeds budget: peak %d, budget %d, ws share %d", plan.PeakBytes, plan.Budget, plan.WSShare)
		}
		if plan.Chunk < 1 || plan.Chunk > batch {
			t.Fatalf("chunk %d out of range for batch %d", plan.Chunk, batch)
		}

		// Drive the executor through every layer, walking the ladder
		// between passes: partitions must stay ascending contiguous covers
		// of the batch whatever rung we are on.
		inner := cudnn.NewHandle(device.P100, cudnn.ModelBackend)
		ctx := NewContext(inner, inner, 1<<30)
		o := NewOOCState(m, plan)
		if ladderSteps < 0 {
			ladderSteps = -ladderSteps
		}
		for step := 0; step <= ladderSteps%8; step++ {
			for i := range m.Layers {
				for _, backward := range []bool{false, true} {
					if err := o.beginLayer(ctx, i, backward); err != nil {
						t.Fatalf("beginLayer(%d): %v", i, err)
					}
					sum := 0
					for _, c := range o.partition() {
						if c < 1 {
							t.Fatalf("empty window in partition %v", o.partition())
						}
						sum += c
					}
					if sum != batch {
						t.Fatalf("partition %v covers %d of batch %d", o.partition(), sum, batch)
					}
				}
			}
			o.stepLadder("fuzz")
		}
		rep := o.Report()
		if rep.Chunk < 1 {
			t.Fatalf("degraded chunk %d", rep.Chunk)
		}
		for _, n := range o.SetupSizes() {
			if n < 1 || n > batch {
				t.Fatalf("setup size %d out of range", n)
			}
		}
	})
}
