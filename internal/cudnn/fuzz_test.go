package cudnn

import "testing"

// FuzzDescriptors drives the descriptor constructors and
// GetOutputDim with arbitrary geometry: invalid inputs must be rejected
// with an error (never a panic), and every accepted convolution must
// produce a structurally consistent output descriptor.
func FuzzDescriptors(f *testing.F) {
	// Representative layer geometries: conv3x3 s1, conv1x1, strided,
	// dilated, and a degenerate one the validators must reject.
	f.Add(1, 3, 8, 8, 4, 3, 3, 3, 1, 1, 1, 1, 1, 1)
	f.Add(32, 64, 56, 56, 128, 64, 1, 1, 0, 0, 1, 1, 1, 1)
	f.Add(8, 16, 32, 32, 16, 16, 5, 5, 2, 2, 2, 2, 1, 1)
	f.Add(2, 4, 16, 16, 4, 4, 3, 3, 2, 2, 1, 1, 2, 2)
	f.Add(0, -1, 8, 8, 4, 3, 3, 3, -1, 0, 0, 1, 1, 1)
	f.Fuzz(func(t *testing.T, n, c, h, w, k, fc, r, s, padH, padW, strideH, strideW, dilH, dilW int) {
		// Bound magnitudes so output-dimension arithmetic stays far from
		// int overflow; the validators' behavior is identical in range.
		const lim = 1 << 16
		for _, v := range []int{n, c, h, w, k, fc, r, s, padH, padW, strideH, strideW, dilH, dilW} {
			if v > lim || v < -lim {
				t.Skip("out of modeled range")
			}
		}
		x, errX := NewTensorDesc(n, c, h, w)
		wd, errW := NewFilterDesc(k, fc, r, s)
		cd, errC := NewConvDesc(padH, padW, strideH, strideW, dilH, dilW)
		if errX != nil || errW != nil || errC != nil {
			return // rejected without panicking: the property we fuzz for
		}
		y, err := GetOutputDim(x, wd, cd)
		if err != nil {
			return // incompatible geometry, rejected cleanly
		}
		if y.N <= 0 || y.C <= 0 || y.H <= 0 || y.W <= 0 {
			t.Fatalf("GetOutputDim(%v, %v, %v) accepted but returned non-positive dims %v", x, wd, cd, y)
		}
		if y.N != x.N {
			t.Errorf("output batch %d != input batch %d", y.N, x.N)
		}
		if y.C != wd.K {
			t.Errorf("output channels %d != filter count %d", y.C, wd.K)
		}
		// GetOutputDim must be a pure function of its descriptors.
		y2, err2 := GetOutputDim(x, wd, cd)
		if err2 != nil || y2 != y {
			t.Errorf("GetOutputDim not reproducible: %v/%v then %v/%v", y, err, y2, err2)
		}
	})
}
