package cudnn

import (
	"math/rand"
	"strings"
	"testing"
	"time"
	"ucudnn/internal/trace"

	"ucudnn/internal/conv"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

func conv2Descs(t *testing.T, n int) (TensorDesc, FilterDesc, ConvDesc, TensorDesc) {
	t.Helper()
	x, err := NewTensorDesc(n, 64, 27, 27)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewFilterDesc(192, 64, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := NewConvDesc(2, 2, 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := GetOutputDim(x, w, cd)
	if err != nil {
		t.Fatal(err)
	}
	return x, w, cd, y
}

func TestDescriptorValidation(t *testing.T) {
	if _, err := NewTensorDesc(0, 1, 1, 1); err == nil {
		t.Fatal("zero batch must fail")
	}
	if _, err := NewFilterDesc(1, 0, 3, 3); err == nil {
		t.Fatal("zero channels must fail")
	}
	if _, err := NewConvDesc(0, 0, 0, 1, 1, 1); err == nil {
		t.Fatal("zero stride must fail")
	}
	if _, err := NewConvDesc(-1, 0, 1, 1, 1, 1); err == nil {
		t.Fatal("negative pad must fail")
	}
}

func TestGetOutputDim(t *testing.T) {
	x, w, cd, y := conv2Descs(t, 256)
	if y != (TensorDesc{256, 192, 27, 27}) {
		t.Fatalf("conv2 out = %v", y)
	}
	_ = x
	_ = w
	_ = cd
	// Channel mismatch must error.
	badW, _ := NewFilterDesc(8, 3, 3, 3)
	if _, err := GetOutputDim(x, badW, cd); err == nil {
		t.Fatal("channel mismatch must error")
	}
}

func TestFindSortedAndConsistent(t *testing.T) {
	h := NewHandle(device.P100, ModelOnlyBackend)
	x, w, cd, y := conv2Descs(t, 64)
	perfs, err := h.FindConvolutionForwardAlgorithm(x, w, cd, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(perfs) < 4 {
		t.Fatalf("expected several algorithms, got %d", len(perfs))
	}
	for i := 1; i < len(perfs); i++ {
		if perfs[i].Time < perfs[i-1].Time {
			t.Fatal("perfs not sorted by time")
		}
	}
	// Memory column must match the workspace query.
	for _, p := range perfs {
		ws, err := h.GetConvolutionForwardWorkspaceSize(x, w, cd, y, p.Algo)
		if err != nil {
			t.Fatal(err)
		}
		if ws != p.Memory {
			t.Fatalf("%v: perf memory %d != workspace %d", p.Algo, p.Memory, ws)
		}
	}
}

// The paper's Fig. 1 mechanism: shrink the limit one byte below the best
// algorithm's workspace and a strictly slower algorithm is selected.
func TestMinusOneByteCliff(t *testing.T) {
	h := NewHandle(device.P100, ModelOnlyBackend)
	x, w, cd, _ := conv2Descs(t, 256)
	cs := Shape(x, w, cd)
	best, err := h.PickAlgo(conv.Forward, cs, PreferFastest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Memory == 0 {
		t.Skip("best algorithm needs no workspace; no cliff")
	}
	limited, err := h.PickAlgo(conv.Forward, cs, SpecifyWorkspaceLimit, best.Memory-1)
	if err != nil {
		t.Fatal(err)
	}
	if limited.Algo == best.Algo {
		t.Fatal("limit best-1 byte must change the algorithm")
	}
	if limited.Time <= best.Time {
		t.Fatalf("fallback %v (%v) should be slower than best %v (%v)",
			limited.Algo, limited.Time, best.Algo, best.Time)
	}
	// The paper reports a 4.51x cliff on conv2; require a substantial one.
	if ratio := float64(limited.Time) / float64(best.Time); ratio < 1.5 {
		t.Fatalf("cliff ratio %.2f too small", ratio)
	}
}

func TestPickAlgoPreferences(t *testing.T) {
	h := NewHandle(device.P100, ModelOnlyBackend)
	x, w, cd, _ := conv2Descs(t, 128)
	cs := Shape(x, w, cd)
	nws, err := h.PickAlgo(conv.Forward, cs, NoWorkspace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nws.Memory != 0 {
		t.Fatalf("NoWorkspace returned memory %d", nws.Memory)
	}
	fastest, _ := h.PickAlgo(conv.Forward, cs, PreferFastest, 0)
	unlimited, _ := h.PickAlgo(conv.Forward, cs, SpecifyWorkspaceLimit, 1<<40)
	if fastest.Algo != unlimited.Algo {
		t.Fatal("huge limit must match PreferFastest")
	}
	if _, err := h.PickAlgo(conv.Forward, cs, Pref(99), 0); err == nil {
		t.Fatal("unknown pref must error")
	}
}

func TestConvolutionForwardExecutesAndCharges(t *testing.T) {
	h := NewHandle(device.P100, ModelBackend)
	x, w, cd, y := conv2Descs(t, 2)
	cs := Shape(x, w, cd)
	rng := rand.New(rand.NewSource(1))
	xt := tensor.NewShaped(cs.In)
	xt.Randomize(rng, 1)
	wt := tensor.NewFilter(192, 64, 5, 5)
	wt.Randomize(rng, 0.1)
	yt := tensor.NewShaped(cs.OutShape())
	algo, err := h.GetConvolutionForwardAlgorithm(x, w, cd, y, SpecifyWorkspaceLimit, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	wsBytes, _ := h.GetConvolutionForwardWorkspaceSize(x, w, cd, y, algo)
	ws := make([]float32, (wsBytes+3)/4)
	if err := h.ConvolutionForward(1, x, xt, w, wt, cd, algo, ws, 0, y, yt); err != nil {
		t.Fatal(err)
	}
	// Arithmetic really happened.
	ref := tensor.NewShaped(cs.OutShape())
	if err := conv.Run(conv.Forward, conv.AlgoDirect, cs, xt, wt, ref, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(yt.Data, ref.Data, 1e-3, 1e-3) {
		t.Fatal("model-backend forward result wrong")
	}
	// The simulated clock was charged with the model time, not wall time.
	mt, _ := device.P100.ModelTime(conv.Forward, algo, cs)
	if h.Elapsed() != mt {
		t.Fatalf("elapsed %v != model %v", h.Elapsed(), mt)
	}
	if h.KernelCalls() != 1 {
		t.Fatalf("kernel calls = %d", h.KernelCalls())
	}
	h.ResetClock()
	if h.Elapsed() != 0 || h.KernelCalls() != 0 {
		t.Fatal("reset failed")
	}
}

func TestBackwardEntryPoints(t *testing.T) {
	h := NewHandle(device.P100, ModelBackend)
	xd, _ := NewTensorDesc(2, 16, 13, 13)
	wd, _ := NewFilterDesc(24, 16, 5, 5)
	cd, _ := NewConvDesc(2, 2, 1, 1, 1, 1)
	yd, err := GetOutputDim(xd, wd, cd)
	if err != nil {
		t.Fatal(err)
	}
	cs := Shape(xd, wd, cd)
	rng := rand.New(rand.NewSource(2))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(24, 16, 5, 5)
	w.Randomize(rng, 0.1)
	dy := tensor.NewShaped(cs.OutShape())
	dy.Randomize(rng, 1)
	dx := tensor.NewShaped(cs.In)
	dw := tensor.NewFilter(24, 16, 5, 5)

	algo, err := h.GetConvolutionBackwardDataAlgorithm(wd, yd, cd, xd, NoWorkspace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ConvolutionBackwardData(1, wd, w, yd, dy, cd, algo, nil, 0, xd, dx); err != nil {
		t.Fatal(err)
	}
	refDx := tensor.NewShaped(cs.In)
	if err := conv.Run(conv.BackwardData, conv.AlgoDirect, cs, refDx, w, dy, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(dx.Data, refDx.Data, 1e-3, 1e-3) {
		t.Fatal("backward data wrong")
	}

	falgo, err := h.GetConvolutionBackwardFilterAlgorithm(xd, yd, cd, wd, SpecifyWorkspaceLimit, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	wsBytes, err := h.GetConvolutionBackwardFilterWorkspaceSize(xd, yd, cd, wd, falgo)
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]float32, (wsBytes+3)/4)
	if err := h.ConvolutionBackwardFilter(1, xd, x, yd, dy, cd, falgo, ws, 0, wd, dw); err != nil {
		t.Fatal(err)
	}
	refDw := tensor.NewFilter(24, 16, 5, 5)
	if err := conv.Run(conv.BackwardFilter, conv.AlgoDirect, cs, x, refDw, dy, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(dw.Data, refDw.Data, 1e-2, 1e-2) {
		t.Fatal("backward filter wrong")
	}
}

func TestModelOnlySkipsArithmeticButChecksWorkspace(t *testing.T) {
	h := NewHandle(device.P100, ModelOnlyBackend)
	x, w, cd, y := conv2Descs(t, 32)
	cs := Shape(x, w, cd)
	// No buffers touched: nil tensors are fine in model-only mode.
	if err := h.Convolve(conv.Forward, conv.AlgoImplicitGemm, cs, nil, nil, nil, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if h.Elapsed() <= 0 {
		t.Fatal("model-only must charge time")
	}
	// Workspace contracts still enforced.
	if err := h.Convolve(conv.Forward, conv.AlgoGemm, cs, nil, nil, nil, 1, 0, nil); err == nil {
		t.Fatal("model-only must reject missing workspace")
	}
	_ = y
}

func TestRealBackendChargesWallTime(t *testing.T) {
	h := NewHandle(device.P100, RealBackend)
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 2, C: 4, H: 8, W: 8},
		Filt:   tensor.Filter{K: 4, C: 4, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	x := tensor.NewShaped(cs.In)
	w := tensor.NewFilter(4, 4, 3, 3)
	y := tensor.NewShaped(cs.OutShape())
	if err := h.Convolve(conv.Forward, conv.AlgoDirect, cs, x, w, y, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if h.Elapsed() <= 0 {
		t.Fatal("real backend must charge positive wall time")
	}
	perfs := h.AlgoPerfs(conv.Forward, cs)
	if len(perfs) == 0 {
		t.Fatal("real backend Find returned nothing")
	}
	for _, p := range perfs {
		if p.Time < 0 {
			t.Fatal("negative measured time")
		}
	}
}

func TestChargeAccumulates(t *testing.T) {
	h := NewHandle(device.K80, ModelOnlyBackend)
	h.Charge(3 * time.Millisecond)
	h.Charge(2 * time.Millisecond)
	if h.Elapsed() != 5*time.Millisecond || h.KernelCalls() != 2 {
		t.Fatalf("elapsed=%v calls=%d", h.Elapsed(), h.KernelCalls())
	}
}

func TestBackendString(t *testing.T) {
	if ModelBackend.String() != "model" || RealBackend.String() != "real" || ModelOnlyBackend.String() != "model-only" {
		t.Fatal("backend names")
	}
	if Backend(42).String() == "" {
		t.Fatal("unknown backend string empty")
	}
}

func TestHandleAccessors(t *testing.T) {
	h := NewHandle(device.V100, ModelBackend)
	if h.Device().Name != device.V100.Name {
		t.Fatal("device accessor")
	}
	if h.Backend() != ModelBackend {
		t.Fatal("backend accessor")
	}
	if h.Mem() == nil || h.Mem().Cap != device.V100.MemBytes {
		t.Fatal("mem accessor")
	}
}

func TestBackwardFindFunctions(t *testing.T) {
	h := NewHandle(device.P100, ModelOnlyBackend)
	xd, _ := NewTensorDesc(8, 8, 10, 10)
	wd, _ := NewFilterDesc(12, 8, 3, 3)
	cd, _ := NewConvDesc(1, 1, 1, 1, 1, 1)
	yd, err := GetOutputDim(xd, wd, cd)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := h.FindConvolutionBackwardDataAlgorithm(wd, yd, cd, xd)
	if err != nil || len(bd) == 0 {
		t.Fatalf("bwd-data find: %v, %v", bd, err)
	}
	bf, err := h.FindConvolutionBackwardFilterAlgorithm(xd, yd, cd, wd)
	if err != nil || len(bf) == 0 {
		t.Fatalf("bwd-filter find: %v, %v", bf, err)
	}
	for i := 1; i < len(bd); i++ {
		if bd[i].Time < bd[i-1].Time {
			t.Fatal("bwd-data perfs unsorted")
		}
	}
	// Workspace query consistency for the backward-data rows.
	for _, p := range bd {
		ws, err := h.GetConvolutionBackwardDataWorkspaceSize(wd, yd, cd, xd, p.Algo)
		if err != nil || ws != p.Memory {
			t.Fatalf("bwd-data ws mismatch: %d vs %d (%v)", ws, p.Memory, err)
		}
	}
	// Mismatched descriptors must error on every entry point.
	badY, _ := NewTensorDesc(8, 12, 3, 3)
	if _, err := h.FindConvolutionBackwardDataAlgorithm(wd, badY, cd, xd); err == nil {
		t.Fatal("bad dy must error")
	}
	if _, err := h.FindConvolutionBackwardFilterAlgorithm(xd, badY, cd, wd); err == nil {
		t.Fatal("bad dy must error")
	}
	if _, err := h.GetConvolutionForwardWorkspaceSize(xd, wd, cd, badY, 0); err == nil {
		t.Fatal("bad y must error")
	}
}

// A traced µ-cuDNN-style sequence of kernel charges must appear on the
// recorder with back-to-back spans on the simulated clock.
func TestTraceIntegration(t *testing.T) {
	h := NewHandle(device.P100, ModelOnlyBackend)
	rec := trace.New()
	h.SetTrace(rec)
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 8, C: 4, H: 9, W: 9},
		Filt:   tensor.Filter{K: 4, C: 4, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	// Two micro-batches, as µ-cuDNN would issue them.
	for i := 0; i < 2; i++ {
		if err := h.Convolve(conv.Forward, conv.AlgoImplicitGemm, cs.WithN(4), nil, nil, nil, 1, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	h.Charge(time.Millisecond)
	h.SetTrace(nil)
	if err := h.Convolve(conv.Forward, conv.AlgoImplicitGemm, cs.WithN(4), nil, nil, nil, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3 (detach must stop recording)", len(evs))
	}
	if evs[0].Start != 0 || evs[1].Start != evs[0].Dur {
		t.Fatalf("spans not back-to-back: %v", evs)
	}
	if evs[0].Cat != "conv" || evs[2].Cat != "other" {
		t.Fatalf("categories wrong: %v", evs)
	}
	if !strings.Contains(evs[0].Name, "IMPLICIT_GEMM@4") {
		t.Fatalf("conv span unlabeled: %q", evs[0].Name)
	}
}
