// Package cudnn provides a cuDNN-v7-shaped convolution API over the
// algorithm zoo in internal/conv and the device models in internal/device.
// It is the substrate µ-cuDNN wraps, reproducing the interface contract
// the paper depends on:
//
//   - per-operation algorithm enumeration (Find*Algorithm, returning
//     time/workspace per algorithm, sorted fastest first);
//   - workspace-size queries (Get*WorkspaceSize);
//   - workspace-limited algorithm selection (Get*Algorithm) with the
//     hard cutoff that produces the paper's Fig. 1 "-1 byte" cliff;
//   - execution entry points (Convolution{Forward,BackwardData,
//     BackwardFilter}) with alpha/beta output blending, where beta=1
//     accumulation on BackwardFilter is what makes micro-batching exact.
//
// Arithmetic is always executed for real on the CPU kernels; *time* is
// either predicted by the device model (deterministic, used for the
// paper's figures) or measured on the wall clock (used by the training
// examples), selected by the Backend.
package cudnn

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ucudnn/internal/causal"
	"ucudnn/internal/conv"
	"ucudnn/internal/device"
	"ucudnn/internal/faults"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
)

// Backend selects how kernel execution time is attributed.
type Backend int

const (
	// ModelBackend runs the arithmetic and charges the simulated clock
	// with the device model's predicted time. Deterministic.
	ModelBackend Backend = iota
	// RealBackend runs the arithmetic and charges the wall-clock time of
	// the CPU execution.
	RealBackend
	// ModelOnlyBackend skips the arithmetic entirely and charges only the
	// model time; used by benchmark sweeps where buffers are not needed.
	ModelOnlyBackend
)

func (b Backend) String() string {
	switch b {
	case ModelBackend:
		return "model"
	case RealBackend:
		return "real"
	case ModelOnlyBackend:
		return "model-only"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Handle is the cuDNN context object: device, timing backend, simulated
// clock and memory accounting.
type Handle struct {
	dev     device.Spec
	backend Backend
	mem     *device.MemTracker

	mu      sync.Mutex
	elapsed time.Duration
	kernels int64
	tracer  *trace.Recorder
	// algoFilter, when non-nil, restricts the algorithm universe AlgoPerfs
	// (and so Find*/Get*/PickAlgo) reports. See SetAlgoFilter.
	algoFilter func(conv.Op, conv.Algo) bool
}

// NewHandle creates a handle for the given device and timing backend.
func NewHandle(dev device.Spec, backend Backend) *Handle {
	return &Handle{dev: dev, backend: backend, mem: dev.NewMemTracker()}
}

// Device returns the handle's device spec.
func (h *Handle) Device() device.Spec { return h.dev }

// Backend returns the timing backend.
func (h *Handle) Backend() Backend { return h.backend }

// Mem returns the handle's device-memory tracker.
func (h *Handle) Mem() *device.MemTracker { return h.mem }

// Elapsed returns the accumulated kernel time on this handle.
func (h *Handle) Elapsed() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.elapsed
}

// KernelCalls returns the number of kernels executed on this handle.
func (h *Handle) KernelCalls() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.kernels
}

// ResetClock zeroes the accumulated time and kernel count.
func (h *Handle) ResetClock() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.elapsed = 0
	h.kernels = 0
}

// SetTrace attaches a timeline recorder; every subsequent kernel charge
// appends a span (see internal/trace). Pass nil to detach.
func (h *Handle) SetTrace(r *trace.Recorder) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tracer = r
}

// SetAlgoFilter restricts the algorithm universe the handle's selection
// surface (AlgoPerfs, PickAlgo, Find*/Get*) reports: algorithms for which
// f returns false are treated as unsupported. The differential test
// harness uses this to pin all execution modes to one algorithm family so
// results stay bitwise comparable; pass nil to remove the restriction.
// Execution entry points (Convolve) are not filtered — they run whatever
// algorithm the caller selected.
func (h *Handle) SetAlgoFilter(f func(conv.Op, conv.Algo) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.algoFilter = f
}

// AlgoFilter returns the installed algorithm filter (nil when unset).
func (h *Handle) AlgoFilter() func(conv.Op, conv.Algo) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.algoFilter
}

// Charge adds d to the simulated clock (used for non-convolution layers
// modeled outside this package).
func (h *Handle) Charge(d time.Duration) {
	h.ChargeNamed("kernel", "other", d)
}

// ChargeNamed adds d to the simulated clock and, when a tracer is
// attached, records a named span on the device compute stream.
func (h *Handle) ChargeNamed(name, cat string, d time.Duration) {
	h.ChargeOn(trace.TrackKernel, name, cat, d)
}

// ChargeOn is ChargeNamed on an explicit timeline track (the out-of-core
// executor charges transfers on the H2D/D2H streams). When causal
// correlation is enabled the recorded span carries a fresh leaf ID under
// the current scope, which is what links every clock advancement back to
// its conv call, layer and iteration.
func (h *Handle) ChargeOn(track int, name, cat string, d time.Duration) {
	h.ChargeFlow(track, name, cat, d, 0)
}

// ChargeFlow is ChargeOn with an explicit flow edge: the recorded span
// declares a dependency on the span ID flow (0 for none), and the
// recorded span's own ID is returned so callers can chain further
// dependents (the out-of-core executor links each window's spill and
// recompute back to that window's fetch). The returned ID is 0 when no
// tracer is attached — nothing was recorded, so there is nothing to
// point at.
func (h *Handle) ChargeFlow(track int, name, cat string, d time.Duration, flow uint64) uint64 {
	h.mu.Lock()
	start := h.elapsed
	h.elapsed += d
	h.kernels++
	tr := h.tracer
	h.mu.Unlock()
	if tr == nil {
		return 0
	}
	span := uint64(causal.NewLeaf())
	tr.Add(trace.Event{
		Name: name, Cat: cat, Start: start, Dur: d, Track: track,
		Span: span, Parent: uint64(causal.Current()), Flow: flow,
	})
	return span
}

// AlgoPerf reports the benchmark outcome of one algorithm, mirroring
// cudnnConvolutionFwdAlgoPerf_t.
type AlgoPerf struct {
	Algo   conv.Algo
	Time   time.Duration
	Memory int64
}

// TensorDesc mirrors cudnnTensorDescriptor_t for NCHW float32 tensors.
type TensorDesc struct {
	N, C, H, W int
}

// NewTensorDesc validates and builds a tensor descriptor.
func NewTensorDesc(n, c, h, w int) (TensorDesc, error) {
	d := TensorDesc{n, c, h, w}
	if !d.Shape().Valid() {
		return TensorDesc{}, fmt.Errorf("cudnn: invalid tensor descriptor %dx%dx%dx%d", n, c, h, w)
	}
	return d, nil
}

// Shape converts the descriptor to a tensor shape.
func (d TensorDesc) Shape() tensor.Shape { return tensor.Shape{N: d.N, C: d.C, H: d.H, W: d.W} }

// FilterDesc mirrors cudnnFilterDescriptor_t for KCRS float32 filters.
type FilterDesc struct {
	K, C, R, S int
}

// NewFilterDesc validates and builds a filter descriptor.
func NewFilterDesc(k, c, r, s int) (FilterDesc, error) {
	d := FilterDesc{k, c, r, s}
	if !d.Filter().Valid() {
		return FilterDesc{}, fmt.Errorf("cudnn: invalid filter descriptor %dx%dx%dx%d", k, c, r, s)
	}
	return d, nil
}

// Filter converts the descriptor to a filter shape.
func (d FilterDesc) Filter() tensor.Filter { return tensor.Filter{K: d.K, C: d.C, R: d.R, S: d.S} }

// ConvDesc mirrors cudnnConvolutionDescriptor_t.
type ConvDesc struct {
	Params tensor.ConvParams
}

// NewConvDesc builds a convolution descriptor with the given padding,
// stride and dilation.
func NewConvDesc(padH, padW, strideH, strideW, dilationH, dilationW int) (ConvDesc, error) {
	if strideH < 1 || strideW < 1 || dilationH < 1 || dilationW < 1 || padH < 0 || padW < 0 {
		return ConvDesc{}, fmt.Errorf("cudnn: invalid convolution descriptor")
	}
	return ConvDesc{Params: tensor.ConvParams{
		PadH: padH, PadW: padW,
		StrideH: strideH, StrideW: strideW,
		DilationH: dilationH, DilationW: dilationW,
	}}, nil
}

// Shape assembles the ConvShape of (x, w, cd).
func Shape(x TensorDesc, w FilterDesc, cd ConvDesc) tensor.ConvShape {
	return tensor.ConvShape{In: x.Shape(), Filt: w.Filter(), Params: cd.Params.Normalized()}
}

// GetOutputDim returns the output tensor descriptor of the convolution,
// mirroring cudnnGetConvolution2dForwardOutputDim.
func GetOutputDim(x TensorDesc, w FilterDesc, cd ConvDesc) (TensorDesc, error) {
	cs := Shape(x, w, cd)
	if !cs.Valid() {
		return TensorDesc{}, fmt.Errorf("cudnn: invalid convolution %v", cs)
	}
	o := cs.OutShape()
	return TensorDesc{o.N, o.C, o.H, o.W}, nil
}

// Pref mirrors cudnnConvolutionFwdPreference_t.
type Pref int

const (
	// PreferFastest picks the fastest algorithm regardless of workspace.
	PreferFastest Pref = iota
	// NoWorkspace picks the fastest algorithm that needs no workspace.
	NoWorkspace
	// SpecifyWorkspaceLimit picks the fastest algorithm fitting the limit.
	SpecifyWorkspaceLimit
)

// benchReps is how many times the real backend executes a kernel when
// benchmarking; the minimum is reported.
const benchReps = 1

// AlgoPerfs benchmarks every supported algorithm of op on cs, charging no
// time to the handle's clock, and returns the results sorted fastest
// first. This is the generic core of Find*Algorithm.
func (h *Handle) AlgoPerfs(op conv.Op, cs tensor.ConvShape) []AlgoPerf {
	filter := h.AlgoFilter()
	var out []AlgoPerf
	for _, algo := range conv.AlgosFor(op) {
		if filter != nil && !filter(op, algo) {
			continue
		}
		if !conv.Supported(op, algo, cs) {
			continue
		}
		// Injected Find* failure: drop this candidate, as cuDNN does when
		// one algorithm's benchmark run returns a bad status.
		if faults.Hit(faults.PointFind) {
			continue
		}
		mem, _ := conv.Workspace(op, algo, cs)
		var t time.Duration
		switch h.backend {
		case ModelBackend, ModelOnlyBackend:
			mt, ok := h.dev.ModelTime(op, algo, cs)
			if !ok {
				continue
			}
			t = mt
		case RealBackend:
			rt, err := h.timeReal(op, algo, cs, mem)
			if err != nil {
				continue
			}
			t = rt
		}
		out = append(out, AlgoPerf{Algo: algo, Time: t, Memory: mem})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Memory < out[j].Memory
	})
	return out
}

// timeReal measures one algorithm on scratch buffers.
func (h *Handle) timeReal(op conv.Op, algo conv.Algo, cs tensor.ConvShape, wsBytes int64) (time.Duration, error) {
	x := tensor.NewShaped(cs.In)
	w := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	y := tensor.NewShaped(cs.OutShape())
	ws := make([]float32, (wsBytes+3)/4)
	best := time.Duration(0)
	for rep := 0; rep < benchReps; rep++ {
		start := time.Now()
		if err := conv.Run(op, algo, cs, x, w, y, 1, 0, ws); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if rep == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// PickAlgo selects an algorithm under the given preference and workspace
// limit. With SpecifyWorkspaceLimit it returns the fastest algorithm whose
// workspace fits; requesting one byte less than the best algorithm's
// requirement therefore falls back to a strictly slower algorithm — the
// behaviour the paper's Fig. 1 quantifies.
func (h *Handle) PickAlgo(op conv.Op, cs tensor.ConvShape, pref Pref, wsLimit int64) (AlgoPerf, error) {
	perfs := h.AlgoPerfs(op, cs)
	if len(perfs) == 0 {
		return AlgoPerf{}, fmt.Errorf("cudnn: no algorithm supports %v on %v", op, cs)
	}
	switch pref {
	case PreferFastest:
		return perfs[0], nil
	case NoWorkspace:
		for _, p := range perfs {
			if p.Memory == 0 {
				return p, nil
			}
		}
		return AlgoPerf{}, fmt.Errorf("cudnn: no zero-workspace algorithm for %v on %v", op, cs)
	case SpecifyWorkspaceLimit:
		for _, p := range perfs {
			if p.Memory <= wsLimit {
				return p, nil
			}
		}
		return AlgoPerf{}, fmt.Errorf("cudnn: no algorithm fits %d bytes for %v on %v", wsLimit, op, cs)
	}
	return AlgoPerf{}, fmt.Errorf("cudnn: unknown preference %d", pref)
}

// Convolve executes op with algo, charging the handle's clock according to
// the backend. It is the generic core of Convolution{Forward,BackwardData,
// BackwardFilter}.
func (h *Handle) Convolve(op conv.Op, algo conv.Algo, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) error {
	// Injected execution failure at the cuDNN API boundary (the
	// CUDNN_STATUS_EXECUTION_FAILED analogue), before any buffer is
	// touched.
	if err := faults.Err(faults.PointConvolve); err != nil {
		return err
	}
	label := fmt.Sprintf("%v %v@%d %dc %dx%d", op, algo, cs.In.N, cs.In.C, cs.In.H, cs.In.W)
	switch h.backend {
	case RealBackend:
		start := time.Now()
		if err := conv.Run(op, algo, cs, x, w, y, alpha, beta, ws); err != nil {
			return err
		}
		h.ChargeNamed(label, "conv", time.Since(start))
	case ModelBackend, ModelOnlyBackend:
		mt, ok := h.dev.ModelTime(op, algo, cs)
		if !ok {
			return fmt.Errorf("cudnn: %v unsupported for %v on %v", algo, op, cs)
		}
		if h.backend == ModelBackend {
			if err := conv.Run(op, algo, cs, x, w, y, alpha, beta, ws); err != nil {
				return err
			}
		} else if need, _ := conv.MinWorkspace(op, algo, cs); int64(len(ws))*4 < need {
			// Even without arithmetic, respect the workspace floor the
			// executing kernels would enforce.
			return fmt.Errorf("cudnn: workspace too small: have %d bytes, need %d", int64(len(ws))*4, need)
		}
		h.ChargeNamed(label, "conv", mt)
	}
	return nil
}
