package cudnn

import (
	"fmt"
	"sort"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/tensor"
)

// FindAlgoEx benchmarks every supported algorithm of op on the *caller's*
// buffers, mirroring cudnnFind*AlgorithmEx (the entry point TensorFlow's
// autotuner uses): only algorithms whose workspace fits the provided
// scratch are attempted, each is actually executed (clobbering the output
// buffer, as in cuDNN), and results come back sorted fastest first.
//
// Under the model backends the arithmetic runs once per algorithm
// (ModelOnly skips it) and the reported time is the model's; under the
// real backend it is the measured wall time.
func (h *Handle) FindAlgoEx(op conv.Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, ws []float32) ([]AlgoPerf, error) {
	if !cs.Valid() {
		return nil, fmt.Errorf("cudnn: invalid convolution %v", cs)
	}
	var out []AlgoPerf
	limit := int64(len(ws)) * 4
	for _, algo := range conv.AlgosFor(op) {
		if !conv.Supported(op, algo, cs) {
			continue
		}
		// An algorithm is attemptable once its single-strip floor fits; the
		// reported Memory is the full-parallel footprint when the caller's
		// scratch covers it, else the floor the degraded run is bound by.
		mem, _ := conv.Workspace(op, algo, cs)
		if mem > limit {
			minMem, _ := conv.MinWorkspace(op, algo, cs)
			if minMem > limit {
				continue
			}
			mem = minMem
		}
		var t time.Duration
		switch h.backend {
		case RealBackend:
			start := time.Now()
			if err := conv.Run(op, algo, cs, x, w, y, 1, 0, ws); err != nil {
				continue
			}
			t = time.Since(start)
		case ModelBackend:
			if err := conv.Run(op, algo, cs, x, w, y, 1, 0, ws); err != nil {
				continue
			}
			mt, ok := h.dev.ModelTime(op, algo, cs)
			if !ok {
				continue
			}
			t = mt
		case ModelOnlyBackend:
			mt, ok := h.dev.ModelTime(op, algo, cs)
			if !ok {
				continue
			}
			t = mt
		}
		out = append(out, AlgoPerf{Algo: algo, Time: t, Memory: mem})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cudnn: no algorithm fits %d workspace bytes for %v on %v", limit, op, cs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Memory < out[j].Memory
	})
	return out, nil
}

// FindConvolutionForwardAlgorithmEx mirrors
// cudnnFindConvolutionForwardAlgorithmEx.
func (h *Handle) FindConvolutionForwardAlgorithmEx(xd TensorDesc, x *tensor.Tensor, wd FilterDesc, w *tensor.FilterTensor, cd ConvDesc, yd TensorDesc, y *tensor.Tensor, ws []float32) ([]AlgoPerf, error) {
	cs, err := checkConv(conv.Forward, xd, wd, cd, yd)
	if err != nil {
		return nil, err
	}
	return h.FindAlgoEx(conv.Forward, cs, x, w, y, ws)
}

// FindConvolutionBackwardDataAlgorithmEx mirrors
// cudnnFindConvolutionBackwardDataAlgorithmEx.
func (h *Handle) FindConvolutionBackwardDataAlgorithmEx(wd FilterDesc, w *tensor.FilterTensor, dyd TensorDesc, dy *tensor.Tensor, cd ConvDesc, dxd TensorDesc, dx *tensor.Tensor, ws []float32) ([]AlgoPerf, error) {
	cs, err := checkConv(conv.BackwardData, dxd, wd, cd, dyd)
	if err != nil {
		return nil, err
	}
	return h.FindAlgoEx(conv.BackwardData, cs, dx, w, dy, ws)
}

// FindConvolutionBackwardFilterAlgorithmEx mirrors
// cudnnFindConvolutionBackwardFilterAlgorithmEx.
func (h *Handle) FindConvolutionBackwardFilterAlgorithmEx(xd TensorDesc, x *tensor.Tensor, dyd TensorDesc, dy *tensor.Tensor, cd ConvDesc, dwd FilterDesc, dw *tensor.FilterTensor, ws []float32) ([]AlgoPerf, error) {
	cs, err := checkConv(conv.BackwardFilter, xd, dwd, cd, dyd)
	if err != nil {
		return nil, err
	}
	return h.FindAlgoEx(conv.BackwardFilter, cs, x, dw, dy, ws)
}
