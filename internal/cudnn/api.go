package cudnn

import (
	"fmt"

	"ucudnn/internal/conv"
	"ucudnn/internal/tensor"
)

// This file provides the cuDNN-named entry points frameworks call. Each is
// a thin descriptor-validating wrapper over the generic AlgoPerfs /
// PickAlgo / Convolve core; µ-cuDNN overrides exactly this surface.

func checkConv(op conv.Op, x TensorDesc, w FilterDesc, cd ConvDesc, y TensorDesc) (tensor.ConvShape, error) {
	cs := Shape(x, w, cd)
	if !cs.Valid() {
		return cs, fmt.Errorf("cudnn: invalid convolution %v", cs)
	}
	o := cs.OutShape()
	if (tensor.Shape{N: y.N, C: y.C, H: y.H, W: y.W}) != o {
		return cs, fmt.Errorf("cudnn: output descriptor %v does not match %v", y, o)
	}
	_ = op
	return cs, nil
}

// GetConvolutionForwardAlgorithm mirrors cudnnGetConvolutionForwardAlgorithm.
func (h *Handle) GetConvolutionForwardAlgorithm(x TensorDesc, w FilterDesc, cd ConvDesc, y TensorDesc, pref Pref, wsLimit int64) (conv.Algo, error) {
	cs, err := checkConv(conv.Forward, x, w, cd, y)
	if err != nil {
		return 0, err
	}
	p, err := h.PickAlgo(conv.Forward, cs, pref, wsLimit)
	return p.Algo, err
}

// GetConvolutionBackwardDataAlgorithm mirrors
// cudnnGetConvolutionBackwardDataAlgorithm.
func (h *Handle) GetConvolutionBackwardDataAlgorithm(w FilterDesc, dy TensorDesc, cd ConvDesc, dx TensorDesc, pref Pref, wsLimit int64) (conv.Algo, error) {
	cs, err := checkConv(conv.BackwardData, dx, w, cd, dy)
	if err != nil {
		return 0, err
	}
	p, err := h.PickAlgo(conv.BackwardData, cs, pref, wsLimit)
	return p.Algo, err
}

// GetConvolutionBackwardFilterAlgorithm mirrors
// cudnnGetConvolutionBackwardFilterAlgorithm.
func (h *Handle) GetConvolutionBackwardFilterAlgorithm(x TensorDesc, dy TensorDesc, cd ConvDesc, dw FilterDesc, pref Pref, wsLimit int64) (conv.Algo, error) {
	cs, err := checkConv(conv.BackwardFilter, x, dw, cd, dy)
	if err != nil {
		return 0, err
	}
	p, err := h.PickAlgo(conv.BackwardFilter, cs, pref, wsLimit)
	return p.Algo, err
}

// FindConvolutionForwardAlgorithm mirrors
// cudnnFindConvolutionForwardAlgorithm: it benchmarks all supported
// algorithms and returns them sorted fastest first.
func (h *Handle) FindConvolutionForwardAlgorithm(x TensorDesc, w FilterDesc, cd ConvDesc, y TensorDesc) ([]AlgoPerf, error) {
	cs, err := checkConv(conv.Forward, x, w, cd, y)
	if err != nil {
		return nil, err
	}
	return h.AlgoPerfs(conv.Forward, cs), nil
}

// FindConvolutionBackwardDataAlgorithm mirrors
// cudnnFindConvolutionBackwardDataAlgorithm.
func (h *Handle) FindConvolutionBackwardDataAlgorithm(w FilterDesc, dy TensorDesc, cd ConvDesc, dx TensorDesc) ([]AlgoPerf, error) {
	cs, err := checkConv(conv.BackwardData, dx, w, cd, dy)
	if err != nil {
		return nil, err
	}
	return h.AlgoPerfs(conv.BackwardData, cs), nil
}

// FindConvolutionBackwardFilterAlgorithm mirrors
// cudnnFindConvolutionBackwardFilterAlgorithm.
func (h *Handle) FindConvolutionBackwardFilterAlgorithm(x TensorDesc, dy TensorDesc, cd ConvDesc, dw FilterDesc) ([]AlgoPerf, error) {
	cs, err := checkConv(conv.BackwardFilter, x, dw, cd, dy)
	if err != nil {
		return nil, err
	}
	return h.AlgoPerfs(conv.BackwardFilter, cs), nil
}

// GetConvolutionForwardWorkspaceSize mirrors
// cudnnGetConvolutionForwardWorkspaceSize. The size covers the kernel
// engine's full-parallel execution (per-worker workspace strips); the
// kernels accept smaller buffers down to conv.MinWorkspace by running
// with fewer strips.
func (h *Handle) GetConvolutionForwardWorkspaceSize(x TensorDesc, w FilterDesc, cd ConvDesc, y TensorDesc, algo conv.Algo) (int64, error) {
	cs, err := checkConv(conv.Forward, x, w, cd, y)
	if err != nil {
		return 0, err
	}
	bytes, ok := conv.Workspace(conv.Forward, algo, cs)
	if !ok {
		return 0, fmt.Errorf("cudnn: %v unsupported for Forward on %v", algo, cs)
	}
	return bytes, nil
}

// GetConvolutionBackwardDataWorkspaceSize mirrors
// cudnnGetConvolutionBackwardDataWorkspaceSize.
func (h *Handle) GetConvolutionBackwardDataWorkspaceSize(w FilterDesc, dy TensorDesc, cd ConvDesc, dx TensorDesc, algo conv.Algo) (int64, error) {
	cs, err := checkConv(conv.BackwardData, dx, w, cd, dy)
	if err != nil {
		return 0, err
	}
	bytes, ok := conv.Workspace(conv.BackwardData, algo, cs)
	if !ok {
		return 0, fmt.Errorf("cudnn: %v unsupported for BackwardData on %v", algo, cs)
	}
	return bytes, nil
}

// GetConvolutionBackwardFilterWorkspaceSize mirrors
// cudnnGetConvolutionBackwardFilterWorkspaceSize.
func (h *Handle) GetConvolutionBackwardFilterWorkspaceSize(x TensorDesc, dy TensorDesc, cd ConvDesc, dw FilterDesc, algo conv.Algo) (int64, error) {
	cs, err := checkConv(conv.BackwardFilter, x, dw, cd, dy)
	if err != nil {
		return 0, err
	}
	bytes, ok := conv.Workspace(conv.BackwardFilter, algo, cs)
	if !ok {
		return 0, fmt.Errorf("cudnn: %v unsupported for BackwardFilter on %v", algo, cs)
	}
	return bytes, nil
}

// ConvolutionForward mirrors cudnnConvolutionForward:
// y = alpha*conv(x, w) + beta*y.
func (h *Handle) ConvolutionForward(alpha float32, xd TensorDesc, x *tensor.Tensor, wd FilterDesc, w *tensor.FilterTensor, cd ConvDesc, algo conv.Algo, ws []float32, beta float32, yd TensorDesc, y *tensor.Tensor) error {
	cs, err := checkConv(conv.Forward, xd, wd, cd, yd)
	if err != nil {
		return err
	}
	return h.Convolve(conv.Forward, algo, cs, x, w, y, alpha, beta, ws)
}

// ConvolutionBackwardData mirrors cudnnConvolutionBackwardData:
// dx = alpha*corr*(dy, w) + beta*dx.
func (h *Handle) ConvolutionBackwardData(alpha float32, wd FilterDesc, w *tensor.FilterTensor, dyd TensorDesc, dy *tensor.Tensor, cd ConvDesc, algo conv.Algo, ws []float32, beta float32, dxd TensorDesc, dx *tensor.Tensor) error {
	cs, err := checkConv(conv.BackwardData, dxd, wd, cd, dyd)
	if err != nil {
		return err
	}
	return h.Convolve(conv.BackwardData, algo, cs, dx, w, dy, alpha, beta, ws)
}

// ConvolutionBackwardFilter mirrors cudnnConvolutionBackwardFilter:
// dw = alpha*grad(x, dy) + beta*dw. beta=1 accumulates, which is how
// micro-batched filter gradients keep the undivided semantics.
func (h *Handle) ConvolutionBackwardFilter(alpha float32, xd TensorDesc, x *tensor.Tensor, dyd TensorDesc, dy *tensor.Tensor, cd ConvDesc, algo conv.Algo, ws []float32, beta float32, dwd FilterDesc, dw *tensor.FilterTensor) error {
	cs, err := checkConv(conv.BackwardFilter, xd, dwd, cd, dyd)
	if err != nil {
		return err
	}
	return h.Convolve(conv.BackwardFilter, algo, cs, x, dw, dy, alpha, beta, ws)
}
