package cudnn

import (
	"math/rand"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

func TestFindExRespectsProvidedWorkspace(t *testing.T) {
	h := NewHandle(device.P100, ModelOnlyBackend)
	xd, _ := NewTensorDesc(32, 16, 27, 27)
	wd, _ := NewFilterDesc(24, 16, 5, 5)
	cd, _ := NewConvDesc(2, 2, 1, 1, 1, 1)
	yd, _ := GetOutputDim(xd, wd, cd)
	// Tiny scratch: only low-workspace algorithms may appear.
	small := make([]float32, 1024)
	perfs, err := h.FindConvolutionForwardAlgorithmEx(xd, nil, wd, nil, cd, yd, nil, small)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range perfs {
		if p.Memory > int64(len(small))*4 {
			t.Fatalf("%v reported with ws %d > provided", p.Algo, p.Memory)
		}
	}
	// Big scratch: strictly more algorithms.
	big := make([]float32, 256<<20/4)
	perfsBig, err := h.FindConvolutionForwardAlgorithmEx(xd, nil, wd, nil, cd, yd, nil, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(perfsBig) <= len(perfs) {
		t.Fatalf("big scratch found %d algos, small found %d", len(perfsBig), len(perfs))
	}
	for i := 1; i < len(perfsBig); i++ {
		if perfsBig[i].Time < perfsBig[i-1].Time {
			t.Fatal("Ex perfs unsorted")
		}
	}
}

func TestFindExExecutesArithmetic(t *testing.T) {
	h := NewHandle(device.P100, ModelBackend)
	xd, _ := NewTensorDesc(2, 3, 8, 8)
	wd, _ := NewFilterDesc(4, 3, 3, 3)
	cd, _ := NewConvDesc(1, 1, 1, 1, 1, 1)
	yd, _ := GetOutputDim(xd, wd, cd)
	cs := Shape(xd, wd, cd)
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(4, 3, 3, 3)
	w.Randomize(rng, 1)
	y := tensor.NewShaped(cs.OutShape())
	ws := make([]float32, 8<<20/4)
	perfs, err := h.FindConvolutionForwardAlgorithmEx(xd, x, wd, w, cd, yd, y, ws)
	if err != nil || len(perfs) == 0 {
		t.Fatalf("findex: %v %v", perfs, err)
	}
	// The output buffer was clobbered with a real result (cuDNN semantics).
	ref := tensor.NewShaped(cs.OutShape())
	if err := conv.Run(conv.Forward, conv.AlgoDirect, cs, x, w, ref, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(y.Data, ref.Data, 1e-3, 1e-3) {
		t.Fatal("Ex did not execute the convolution")
	}
}

func TestFindExBackwardVariants(t *testing.T) {
	h := NewHandle(device.P100, ModelOnlyBackend)
	xd, _ := NewTensorDesc(8, 8, 10, 10)
	wd, _ := NewFilterDesc(12, 8, 3, 3)
	cd, _ := NewConvDesc(1, 1, 1, 1, 1, 1)
	yd, _ := GetOutputDim(xd, wd, cd)
	ws := make([]float32, 64<<20/4)
	bd, err := h.FindConvolutionBackwardDataAlgorithmEx(wd, nil, yd, nil, cd, xd, nil, ws)
	if err != nil || len(bd) == 0 {
		t.Fatalf("bwd data ex: %v %v", bd, err)
	}
	bf, err := h.FindConvolutionBackwardFilterAlgorithmEx(xd, nil, yd, nil, cd, wd, nil, ws)
	if err != nil || len(bf) == 0 {
		t.Fatalf("bwd filter ex: %v %v", bf, err)
	}
}

func TestFindExNoFit(t *testing.T) {
	h := NewHandle(device.P100, ModelOnlyBackend)
	// Shape where every algorithm needs some workspace cannot exist (the
	// implicit algorithms need none), so force failure with a bad shape.
	cs := tensor.ConvShape{In: tensor.Shape{N: 1, C: 2, H: 4, W: 4}, Filt: tensor.Filter{K: 1, C: 3, R: 3, S: 3}}
	if _, err := h.FindAlgoEx(conv.Forward, cs, nil, nil, nil, nil); err == nil {
		t.Fatal("invalid shape must error")
	}
}
