// Package bench regenerates every table and figure of the paper's
// evaluation (§IV): workload construction, parameter sweeps, baselines,
// and text/CSV emitters that print the same rows and series the paper
// reports. Absolute times come from the deterministic device model
// (internal/device); EXPERIMENTS.md records paper-vs-measured shape
// comparisons.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
	"ucudnn/internal/obs"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
	"ucudnn/internal/zoo"
)

// Config parameterizes one experiment run.
type Config struct {
	// Device is the simulated GPU (default P100, as most paper figures).
	Device device.Spec
	// Batch overrides the experiment's default mini-batch size when > 0.
	Batch int
	// Iters is the number of timed iterations (default 3).
	Iters int
	// Out receives the rendered table.
	Out io.Writer
	// CSV optionally receives machine-readable rows.
	CSV io.Writer
	// Metrics, when non-nil, accumulates µ-cuDNN observability metrics
	// across every handle the experiments create.
	Metrics *obs.Registry
	// Trace, when non-nil, receives kernel spans (track 0) and layer spans
	// (track 1) from every timed network run.
	Trace *trace.Recorder
}

func (c Config) withDefaults() Config {
	if c.Device.Name == "" {
		c.Device = device.P100
	}
	if c.Iters <= 0 {
		c.Iters = 3
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// MiB is a byte count helper.
const MiB = int64(1 << 20)

// Conv2 returns AlexNet's conv2 shape at the given batch, the paper's
// running example.
func Conv2(n int) tensor.ConvShape {
	return tensor.ConvShape{
		In:     tensor.Shape{N: n, C: 64, H: 27, W: 27},
		Filt:   tensor.Filter{K: 192, C: 64, R: 5, S: 5},
		Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1},
	}
}

// alexNetFwdShapes lists the five convolution layers of single-column
// AlexNet at batch n (used by the kernel-level experiments).
func alexNetFwdShapes(n int) []struct {
	Name  string
	Shape tensor.ConvShape
} {
	mk := func(c, h, k, r, stride, pad int) tensor.ConvShape {
		return tensor.ConvShape{
			In:     tensor.Shape{N: n, C: c, H: h, W: h},
			Filt:   tensor.Filter{K: k, C: c, R: r, S: r},
			Params: tensor.ConvParams{PadH: pad, PadW: pad, StrideH: stride, StrideW: stride},
		}
	}
	return []struct {
		Name  string
		Shape tensor.ConvShape
	}{
		{"conv1", mk(3, 224, 64, 11, 4, 2)},
		{"conv2", mk(64, 27, 192, 5, 1, 2)},
		{"conv3", mk(192, 13, 384, 3, 1, 1)},
		{"conv4", mk(384, 13, 256, 3, 1, 1)},
		{"conv5", mk(256, 13, 256, 3, 1, 1)},
	}
}

// newModelHandle builds a model-only cuDNN handle for cfg's device.
func newModelHandle(cfg Config) *cudnn.Handle {
	return cudnn.NewHandle(cfg.Device, cudnn.ModelOnlyBackend)
}

// buildNetwork constructs a zoo network over the given conv handle in
// timing-only mode.
func buildNetwork(name string, convH dnn.ConvHandle, inner *cudnn.Handle, wsLimit int64, batch int, rec *trace.Recorder) (*dnn.Net, error) {
	ctx := dnn.NewContext(convH, inner, wsLimit)
	ctx.SkipCompute = true
	ctx.Trace = rec
	switch name {
	case "alexnet":
		n, _ := zoo.AlexNet(ctx, batch, 1000)
		return n, nil
	case "caffe-alexnet":
		n, _ := zoo.CaffeAlexNet(ctx, batch, 1000)
		return n, nil
	case "resnet18":
		n, _ := zoo.ResNet18(ctx, batch, 1000)
		return n, nil
	case "resnet50":
		n, _ := zoo.ResNet50(ctx, batch, 1000)
		return n, nil
	case "densenet40":
		n, _ := zoo.DenseNet40(ctx, batch, 40, 10)
		return n, nil
	case "inception":
		return zoo.InceptionModule(ctx, batch), nil
	}
	return nil, fmt.Errorf("bench: unknown network %q", name)
}

// netRun times network `name` under the given policy/limits and returns
// the report plus the µ-cuDNN handle (nil when policy is "cudnn").
//
// mode: "cudnn" (plain), "wr" (per-kernel limit), "wd" (total limit).
func netRun(cfg Config, name string, mode string, policy core.Policy, limit int64, batch int) (*dnn.TimingReport, *core.Handle, error) {
	inner := newModelHandle(cfg)
	// Timing sweeps measure kernel time, not capacity: lift the device-
	// memory cap so large-batch/large-workspace corners still produce a
	// timing row (the memory experiments keep exact accounting).
	inner.Mem().Cap = 0
	if cfg.Trace != nil {
		inner.SetTrace(cfg.Trace)
	}
	var convH dnn.ConvHandle = inner
	var uc *core.Handle
	var err error
	wsLimit := limit
	switch mode {
	case "cudnn":
	case "wr":
		uc, err = core.New(inner, core.WithPolicy(policy), core.WithWorkspaceLimit(limit), core.WithMetrics(cfg.Metrics))
		if err != nil {
			return nil, nil, err
		}
		convH = uc
	case "wd":
		uc, err = core.New(inner, core.WithPolicy(policy), core.WithWD(limit), core.WithMetrics(cfg.Metrics))
		if err != nil {
			return nil, nil, err
		}
		convH = uc
		wsLimit = core.DefaultWorkspaceLimit
	default:
		return nil, nil, fmt.Errorf("bench: unknown mode %q", mode)
	}
	net, err := buildNetwork(name, convH, inner, wsLimit, batch, cfg.Trace)
	if err != nil {
		return nil, nil, err
	}
	rep, err := net.Time(cfg.Iters)
	if err != nil {
		return nil, nil, err
	}
	return rep, uc, nil
}

// table is a small helper accumulating aligned text plus CSV rows.
type table struct {
	cfg    Config
	tw     *tabwriter.Writer
	header []string
}

func newTable(cfg Config, title string, cols ...string) *table {
	fmt.Fprintf(cfg.Out, "\n== %s ==\n", title)
	t := &table{cfg: cfg, tw: tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0), header: cols}
	fmt.Fprintln(t.tw, strings.Join(cols, "\t"))
	if cfg.CSV != nil {
		fmt.Fprintln(cfg.CSV, strings.Join(cols, ","))
	}
	return t
}

func (t *table) row(vals ...string) {
	fmt.Fprintln(t.tw, strings.Join(vals, "\t"))
	if t.cfg.CSV != nil {
		fmt.Fprintln(t.cfg.CSV, strings.Join(vals, ","))
	}
}

func (t *table) flush() { t.tw.Flush() }

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond)) }

func mib(b int64) string { return fmt.Sprintf("%.1f", float64(b)/float64(MiB)) }

// Experiments maps experiment names to their runners.
var Experiments = map[string]func(Config) error{
	"fig1":        Fig1,
	"fig8":        Fig8,
	"fig9":        Fig9,
	"fig10":       Fig10,
	"fig11":       Fig11,
	"fig12":       Fig12,
	"fig13":       Fig13,
	"fig14":       Fig14,
	"table1":      Table1,
	"opttime":     OptTime,
	"summary":     Summary,
	"ablation":    Ablation,
	"scaling":     Scaling,
	"concurrency": Concurrency,
}

// Names returns the experiment names in stable order.
func Names() []string {
	var out []string
	for k := range Experiments {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run dispatches one experiment by name.
func Run(name string, cfg Config) error {
	f, ok := Experiments[name]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return f(cfg.withDefaults())
}

// convOnly sums convolution-layer time in a report.
func convOnly(rep *dnn.TimingReport) time.Duration {
	return rep.SumMatching(zoo.IsConvLayer)
}

// bestPerf returns the fastest algorithm within a limit, via a bencher.
func bestPerf(h *cudnn.Handle, op conv.Op, cs tensor.ConvShape, limit int64) (cudnn.AlgoPerf, error) {
	return h.PickAlgo(op, cs, cudnn.SpecifyWorkspaceLimit, limit)
}
