package bench

import (
	"fmt"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/device"
)

// Table1 prints the simulated evaluation environment (the reproduction of
// the paper's Table I; software rows are replaced by this repository's
// substitutions, which DESIGN.md documents).
func Table1(cfg Config) error {
	cfg = cfg.withDefaults()
	t := newTable(cfg, "Table I: simulated device specifications",
		"device", "peak_SP_TFlops", "mem_GiB", "bandwidth_GBs", "launch_overhead_us", "SMs")
	for _, d := range device.Devices {
		t.row(d.Name,
			fmt.Sprintf("%.2f", d.PeakFlops/1e12),
			fmt.Sprintf("%d", d.MemBytes>>30),
			fmt.Sprintf("%.0f", d.MemBW/1e9),
			fmt.Sprintf("%.0f", float64(d.LaunchOverhead.Microseconds())),
			fmt.Sprintf("%d", d.SMs))
	}
	t.flush()
	fmt.Fprintln(cfg.Out, "software: cuDNN -> internal/cudnn; GLPK -> internal/lp+ilp; Caffe/TensorFlow -> internal/dnn")
	return nil
}

// OptTime reproduces the §IV-B optimization-cost observations: the time
// to optimize (benchmark + DP) under each policy for AlexNet's kernels,
// and the WD ILP statistics for ResNet-50 (the paper reports 562 binary
// variables solved in 5.46 ms by GLPK).
func OptTime(cfg Config) error {
	cfg = cfg.withDefaults()
	batch := cfg.Batch
	if batch <= 0 {
		batch = 256
	}
	t := newTable(cfg, fmt.Sprintf("Optimization cost: AlexNet WR (%s, N=%d, 64 MiB)", cfg.Device.Name, batch),
		"policy", "optimization_time")
	for _, pol := range core.Policies {
		start := time.Now()
		b := core.NewBencher(newModelHandle(cfg), nil, 1)
		for _, l := range alexNetFwdShapes(batch) {
			for _, op := range conv.Ops {
				if _, err := core.OptimizeWR(b, core.Kernel{Op: op, Shape: l.Shape}, 64*MiB, pol); err != nil {
					return err
				}
			}
		}
		t.row(pol.String(), time.Since(start).String())
	}
	t.flush()

	// WD ILP statistics on ResNet-50.
	_, uc, err := netRun(cfg, "resnet50", "wd", core.PolicyPowerOfTwo, 159*16*MiB, 32)
	if err != nil {
		return err
	}
	s := uc.WDStats()
	t2 := newTable(cfg, "WD ILP statistics: ResNet-50 (N=32)",
		"binary_vars", "bnb_nodes", "solve_time")
	t2.row(fmt.Sprintf("%d", s.ILPVars), fmt.Sprintf("%d", s.ILPNodes), s.SolveTime.String())
	t2.flush()
	return nil
}
