package bench

import (
	"fmt"
	"sort"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
)

// Fig13 reproduces Figure 13: WR versus WD at equal *total* workspace for
// AlexNet (N=256) and ResNet-50 (N=32) on P100. Adjoined bars share the
// total budget: a per-kernel WR limit of L MiB corresponds to a WD budget
// of L x (number of kernels). The paper reports WD(all)@120MiB beating
// WR(undivided)@8MiB-per-kernel by 1.24x on AlexNet, and WD beating even
// the 8x-larger-memory WR baseline.
func Fig13(cfg Config) error {
	cfg = cfg.withDefaults()
	nets := []struct {
		name  string
		batch int
	}{
		{"alexnet", 256},
		{"resnet50", 32},
	}
	for _, n := range nets {
		batch := n.batch
		if cfg.Batch > 0 {
			batch = cfg.Batch
		}
		// Count kernels from a WR probe run.
		probeRep, probeUC, err := netRun(cfg, n.name, "wr", core.PolicyUndivided, 512*MiB, batch)
		if err != nil {
			return err
		}
		_ = probeRep
		kernels := int64(len(probeUC.Plans()))

		t := newTable(cfg, fmt.Sprintf("Fig 13: %s (N=%d, %d kernels): WR vs WD at equal total workspace",
			n.name, batch, kernels),
			"mode", "policy", "per_kernel_MiB", "total_MiB", "total_ms", "conv_ms", "used_ws_MiB")
		for _, perKernel := range []int64{8, 64} {
			total := perKernel * kernels
			for _, pol := range core.Policies {
				rep, uc, err := netRun(cfg, n.name, "wr", pol, perKernel*MiB, batch)
				if err != nil {
					return err
				}
				var used int64
				for _, p := range uc.Plans() {
					used += p.Workspace
				}
				t.row("WR", pol.String(), fmt.Sprintf("%d", perKernel), fmt.Sprintf("%d", total),
					ms(rep.Total()), ms(convOnly(rep)), mib(used))
			}
			for _, pol := range []core.Policy{core.PolicyPowerOfTwo, core.PolicyAll} {
				rep, uc, err := netRun(cfg, n.name, "wd", pol, total*MiB, batch)
				if err != nil {
					return err
				}
				used := int64(0)
				if s := uc.WDStats(); s != nil {
					used = s.TotalWorkspace
				}
				t.row("WD", pol.String(), "-", fmt.Sprintf("%d", total),
					ms(rep.Total()), ms(convOnly(rep)), mib(used))
			}
		}
		t.flush()
	}
	return nil
}

// Fig14 reproduces Figure 14: the workspace division WD assigns across
// AlexNet's kernels with a 120 MiB total budget (N=256, WR comparison at
// 8 MiB per kernel). The paper observes 93.7% of the budget going to
// conv2 and conv3.
func Fig14(cfg Config) error {
	cfg = cfg.withDefaults()
	batch := cfg.Batch
	if batch <= 0 {
		batch = 256
	}
	_, uc, err := netRun(cfg, "alexnet", "wd", core.PolicyAll, 120*MiB, batch)
	if err != nil {
		return err
	}
	stats := uc.WDStats()
	if stats == nil {
		return fmt.Errorf("bench: WD did not run")
	}
	// Label kernels by layer using the known AlexNet shapes.
	names := map[string]string{}
	for _, l := range alexNetFwdShapes(batch) {
		cs := l.Shape
		cs.Params = cs.Params.Normalized()
		names[cs.String()] = l.Name
	}
	opTag := map[conv.Op]string{conv.Forward: "F", conv.BackwardData: "BD", conv.BackwardFilter: "BF"}

	type row struct {
		layer, op string
		ws        int64
		cfgStr    string
	}
	var rows []row
	var total, conv23 int64
	seen := map[string]bool{}
	for _, p := range stats.Plans {
		key := p.Kernel.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		layer := names[p.Kernel.Shape.String()]
		if layer == "" {
			layer = p.Kernel.Shape.String()
		}
		rows = append(rows, row{layer: layer, op: opTag[p.Kernel.Op], ws: p.Workspace, cfgStr: p.Config.String()})
		total += p.Workspace
		if layer == "conv2" || layer == "conv3" {
			conv23 += p.Workspace
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].layer != rows[j].layer {
			return rows[i].layer < rows[j].layer
		}
		return rows[i].op < rows[j].op
	})
	t := newTable(cfg, fmt.Sprintf("Fig 14: WD workspace assignment, AlexNet N=%d, 120 MiB total (%s)",
		batch, cfg.Device.Name),
		"layer", "kernel", "ws_MiB", "configuration")
	for _, r := range rows {
		t.row(r.layer, r.op, mib(r.ws), r.cfgStr)
	}
	t.flush()
	share := 0.0
	if total > 0 {
		share = 100 * float64(conv23) / float64(total)
	}
	fmt.Fprintf(cfg.Out, "total assigned: %s MiB; conv2+conv3 share: %.1f%% (paper: 93.7%%)\n",
		mib(total), share)
	return nil
}
