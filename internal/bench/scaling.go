package bench

import (
	"fmt"
	"time"

	"ucudnn/internal/core"
	"ucudnn/internal/parallel"
)

// Scaling is an extension experiment beyond the paper's figures,
// quantifying its *introduction*: data-parallel frameworks want large
// per-GPU batches, so per-GPU kernel speedups from micro-batching carry
// through to cluster throughput. AlexNet's per-GPU iteration (batch 256,
// 64 MiB workspace) runs under plain cuDNN and under µ-cuDNN, and both
// compose with a ring-all-reduce model across 1-8 GPUs.
func Scaling(cfg Config) error {
	cfg = cfg.withDefaults()
	batch := cfg.Batch
	if batch <= 0 {
		batch = 256
	}

	type variant struct {
		name     string
		fwd, bwd time.Duration
	}
	var variants []variant
	var gradBytes int64
	for _, v := range []struct {
		name   string
		policy core.Policy
	}{
		{"cuDNN (undivided)", core.PolicyUndivided},
		{"µ-cuDNN (all)", core.PolicyAll},
	} {
		rep, uc, err := netRun(cfg, "alexnet", "wr", v.policy, 64*MiB, batch)
		if err != nil {
			return err
		}
		_ = uc
		variants = append(variants, variant{name: v.name, fwd: rep.TotalForward(), bwd: rep.TotalBackward()})
		if gradBytes == 0 {
			// Gradient volume = parameter bytes (~61M floats for AlexNet).
			inner := newModelHandle(cfg)
			inner.Mem().Cap = 0
			net, err := buildNetwork("alexnet", inner, inner, 64*MiB, batch, nil)
			if err != nil {
				return err
			}
			if err := net.Setup(); err != nil {
				return err
			}
			for _, p := range net.Params() {
				gradBytes += int64(len(p.Data)) * 4
			}
		}
	}

	t := newTable(cfg, fmt.Sprintf("Scaling (extension): AlexNet data-parallel, per-GPU N=%d, %s, grad %.0f MiB, ring all-reduce @25 GB/s",
		batch, cfg.Device.Name, float64(gradBytes)/float64(MiB)),
		"gpus", "variant", "iter_ms", "iter_ms_serial", "images_per_s", "eff_overlap", "eff_serial", "cluster_speedup")
	for _, gpus := range []int{1, 2, 4, 8} {
		c := parallel.Cluster{GPUs: gpus, LinkBW: 25e9, LinkLatency: 2 * time.Microsecond}
		var baseTp float64
		for i, v := range variants {
			iter := c.IterationTime(v.fwd, v.bwd, gradBytes, true)
			serial := c.IterationTime(v.fwd, v.bwd, gradBytes, false)
			tp := c.Throughput(batch, iter)
			if i == 0 {
				baseTp = tp
			}
			t.row(fmt.Sprintf("%d", gpus), v.name, ms(iter), ms(serial),
				fmt.Sprintf("%.0f", tp),
				fmt.Sprintf("%.2f", c.Efficiency(v.fwd, v.bwd, gradBytes, true)),
				fmt.Sprintf("%.2f", c.Efficiency(v.fwd, v.bwd, gradBytes, false)),
				fmt.Sprintf("%.2fx", tp/baseTp))
		}
	}
	t.flush()
	fmt.Fprintln(cfg.Out, "note: µ-cuDNN shortens the backward pass that hides the all-reduce; when")
	fmt.Fprintln(cfg.Out, "communication is exposed (serial column), its relative cost grows — large")
	fmt.Fprintln(cfg.Out, "per-GPU batches plus fast kernels are exactly the regime the paper targets.")
	return nil
}
