package bench

import (
	"fmt"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
)

// Fig8 reproduces Figure 8: the desirable-configuration set (Pareto front
// in the time x workspace plane) of AlexNet conv2's forward kernel with a
// 120 MiB limit and mini-batch 256. The paper's front has tens of points
// (the maximum over AlexNet's kernels was 68).
func Fig8(cfg Config) error {
	cfg = cfg.withDefaults()
	batch := cfg.Batch
	if batch <= 0 {
		batch = 256
	}
	b := core.NewBencher(newModelHandle(cfg), nil, 1)
	k := core.Kernel{Op: conv.Forward, Shape: Conv2(batch)}
	front, err := core.DesirableSet(b, k, 120*MiB, core.PolicyAll)
	if err != nil {
		return err
	}
	t := newTable(cfg, fmt.Sprintf("Fig 8: conv2 desirable configurations (%s, 120 MiB, N=%d) — %d points",
		cfg.Device.Name, batch, len(front)),
		"time_ms", "ws_MiB", "configuration")
	for _, sc := range front {
		t.row(ms(sc.Time), mib(sc.Workspace), sc.Config.String())
	}
	t.flush()
	return nil
}

// Fig9 reproduces Figure 9: conv2 forward under WR with a 64 MiB limit at
// mini-batch 256, for the three batch-size policies. The paper's all
// policy achieves 2.33x over undivided, with powerOfTwo enabling FFT over
// micro-batches.
func Fig9(cfg Config) error {
	cfg = cfg.withDefaults()
	batch := cfg.Batch
	if batch <= 0 {
		batch = 256
	}
	b := core.NewBencher(newModelHandle(cfg), nil, 1)
	k := core.Kernel{Op: conv.Forward, Shape: Conv2(batch)}
	t := newTable(cfg, fmt.Sprintf("Fig 9: conv2 forward, WR @64 MiB (%s, N=%d)", cfg.Device.Name, batch),
		"policy", "time_ms", "ws_MiB", "speedup_vs_undivided", "configuration")
	var undiv float64
	for _, pol := range core.Policies {
		plan, err := core.OptimizeWR(b, k, 64*MiB, pol)
		if err != nil {
			return err
		}
		tms := float64(plan.Time.Microseconds()) / 1000
		if pol == core.PolicyUndivided {
			undiv = tms
		}
		t.row(pol.String(), ms(plan.Time), mib(plan.Workspace),
			fmt.Sprintf("%.2fx", undiv/tms), plan.Config.String())
	}
	t.flush()
	return nil
}
