package bench

import (
	"fmt"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
)

// Summary reproduces the paper's headline numbers in one table: the
// abstract's 1.63x AlexNet and 1.21x ResNet-18 convolution speedups on
// P100, Fig. 9's 2.33x conv2 speedup, and Fig. 1's 4.51x selection cliff.
func Summary(cfg Config) error {
	cfg = cfg.withDefaults()
	t := newTable(cfg, fmt.Sprintf("Headline results (%s)", cfg.Device.Name),
		"metric", "paper", "measured")

	// Fig 1 cliff on conv2 forward at N=256.
	h := newModelHandle(cfg)
	cs := Conv2(256)
	best, err := bestPerf(h, conv.Forward, cs, 1<<40)
	if err != nil {
		return err
	}
	cliff := 1.0
	if best.Memory > 0 {
		if fb, err := h.PickAlgo(conv.Forward, cs, cudnn.SpecifyWorkspaceLimit, best.Memory-1); err == nil {
			cliff = float64(fb.Time) / float64(best.Time)
		}
	}
	t.row("conv2 -1 byte slowdown", "4.51x", fmt.Sprintf("%.2fx", cliff))

	// Fig 9: conv2 WR@64MiB, all vs undivided.
	b := core.NewBencher(h, nil, 1)
	k := core.Kernel{Op: conv.Forward, Shape: cs}
	undiv, err := core.OptimizeWR(b, k, 64*MiB, core.PolicyUndivided)
	if err != nil {
		return err
	}
	all, err := core.OptimizeWR(b, k, 64*MiB, core.PolicyAll)
	if err != nil {
		return err
	}
	t.row("conv2 fwd WR(all) speedup @64MiB", "2.33x",
		fmt.Sprintf("%.2fx", float64(undiv.Time)/float64(all.Time)))

	// Abstract: AlexNet convolution-only speedup at 64 MiB (N=256).
	repU, _, err := netRun(cfg, "alexnet", "wr", core.PolicyUndivided, 64*MiB, 256)
	if err != nil {
		return err
	}
	repA, _, err := netRun(cfg, "alexnet", "wr", core.PolicyAll, 64*MiB, 256)
	if err != nil {
		return err
	}
	t.row("AlexNet conv speedup @64MiB", "1.63x",
		fmt.Sprintf("%.2fx", float64(convOnly(repU))/float64(convOnly(repA))))
	t.row("AlexNet iteration speedup @64MiB", "1.40x",
		fmt.Sprintf("%.2fx", float64(repU.Total())/float64(repA.Total())))

	// Abstract: ResNet-18 convolution speedup (N=128).
	r18U, _, err := netRun(cfg, "resnet18", "wr", core.PolicyUndivided, 64*MiB, 128)
	if err != nil {
		return err
	}
	r18A, _, err := netRun(cfg, "resnet18", "wr", core.PolicyAll, 64*MiB, 128)
	if err != nil {
		return err
	}
	t.row("ResNet-18 conv speedup @64MiB", "1.21x",
		fmt.Sprintf("%.2fx", float64(convOnly(r18U))/float64(convOnly(r18A))))

	t.flush()
	return nil
}
