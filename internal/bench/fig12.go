package bench

import (
	"fmt"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/dnn"
)

// layerMem is the per-layer memory decomposition of Fig. 12.
type layerMem struct {
	name       string
	params     int64
	activation int64
	workspace  int64
}

func (m layerMem) total() int64 { return m.params + m.activation + m.workspace }

// collectLayerMem builds a network, runs one timing iteration (so that
// µ-cuDNN plans and allocates its workspaces), and reports per-unique-
// convolution-layer memory. For the µ-cuDNN variant, workspace sizes come
// from the optimized plans rather than the (zero) sizes reported through
// the cuDNN interface.
func collectLayerMem(cfg Config, network string, mode string, limit int64, batch int) ([]layerMem, error) {
	inner := newModelHandle(cfg)
	var convH dnn.ConvHandle = inner
	var uc *core.Handle
	var err error
	if mode == "ucudnn" {
		uc, err = core.New(inner, core.WithPolicy(core.PolicyPowerOfTwo), core.WithWorkspaceLimit(limit))
		if err != nil {
			return nil, err
		}
		convH = uc
	}
	net, err := buildNetwork(network, convH, inner, limit, batch, nil)
	if err != nil {
		return nil, err
	}
	if _, err := net.Time(1); err != nil {
		return nil, err
	}
	planWS := map[string]int64{}
	if uc != nil {
		for _, p := range uc.Plans() {
			planWS[p.Kernel.String()] = p.Workspace
		}
	}
	var out []layerMem
	seen := map[string]bool{}
	for _, cl := range net.ConvLayers() {
		cs := cl.Shape()
		key := cs.String()
		if seen[key] {
			continue // unique layers only, as in the paper's figure
		}
		seen[key] = true
		m := layerMem{name: cl.Name()}
		m.params = 2 * cs.Filt.Bytes()
		m.activation = cs.In.Bytes() + cs.OutShape().Bytes()
		if uc == nil {
			f, bd, bf := cl.WorkspaceBytes()
			m.workspace = f + bd + bf
		} else {
			for _, k := range layerKernels(cl) {
				m.workspace += planWS[k.String()]
			}
		}
		out = append(out, m)
	}
	return out, nil
}

// layerKernels returns the kernels a conv layer executes.
func layerKernels(cl *dnn.Conv) []core.Kernel {
	cs := cl.Shape()
	// BackwardData may be skipped on the first layer, but including it in
	// the lookup is harmless: unplanned kernels report zero workspace.
	return []core.Kernel{
		{Op: conv.Forward, Shape: cs},
		{Op: conv.BackwardFilter, Shape: cs},
		{Op: conv.BackwardData, Shape: cs},
	}
}

// Fig12 reproduces Figure 12: per-layer memory of AlexNet (N=256) and
// ResNet-18 (N=128) with cuDNN at a 512 MiB per-layer limit versus
// µ-cuDNN at 64 MiB. The paper reports per-layer reductions up to 3.43x
// (AlexNet) and 2.73x (ResNet-18).
func Fig12(cfg Config) error {
	cfg = cfg.withDefaults()
	nets := []struct {
		name  string
		batch int
	}{
		{"alexnet", 256},
		{"resnet18", 128},
	}
	for _, n := range nets {
		batch := n.batch
		if cfg.Batch > 0 {
			batch = cfg.Batch
		}
		base, err := collectLayerMem(cfg, n.name, "cudnn", 512*MiB, batch)
		if err != nil {
			return err
		}
		opt, err := collectLayerMem(cfg, n.name, "ucudnn", 64*MiB, batch)
		if err != nil {
			return err
		}
		t := newTable(cfg, fmt.Sprintf("Fig 12: %s per-layer memory (N=%d): cuDNN@512MiB vs µ-cuDNN@64MiB", n.name, batch),
			"layer", "act_MiB", "param_MiB", "cudnn_ws_MiB", "cudnn_total_MiB", "ucudnn_ws_MiB", "ucudnn_total_MiB", "reduction")
		var worst float64 = 1
		for i := range base {
			if i >= len(opt) {
				break
			}
			red := float64(base[i].total()) / float64(opt[i].total())
			if red > worst {
				worst = red
			}
			t.row(base[i].name, mib(base[i].activation), mib(base[i].params),
				mib(base[i].workspace), mib(base[i].total()),
				mib(opt[i].workspace), mib(opt[i].total()),
				fmt.Sprintf("%.2fx", red))
		}
		t.flush()
		fmt.Fprintf(cfg.Out, "max per-layer reduction: %.2fx\n", worst)
	}
	return nil
}
