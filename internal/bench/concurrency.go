package bench

import (
	"fmt"

	"ucudnn/internal/core"
	"ucudnn/internal/dnn"
	"ucudnn/internal/zoo"
)

// Concurrency is an extension experiment backing the paper's §III-A
// motivation for Workspace Division: Inception-style branches can run on
// concurrent streams, and WD hands each branch its own right-sized
// workspace segment. The table compares WR (equal per-kernel slices) and
// WD (ILP division) forward makespans of the inception(3a) module on 1,
// 2 and 4 streams at the same total workspace.
func Concurrency(cfg Config) error {
	cfg = cfg.withDefaults()
	batch := cfg.Batch
	if batch <= 0 {
		batch = 128
	}
	const totalMiB = 96

	type run struct {
		name string
		net  *dnn.Net
		rep  *dnn.TimingReport
	}
	var runs []run

	// WR with equal per-kernel slices (17 kernels in the module).
	build := func(name, mode string, limit int64, policy core.Policy) error {
		inner := newModelHandle(cfg)
		inner.Mem().Cap = 0
		var convH dnn.ConvHandle = inner
		ctxLimit := limit
		if mode != "cudnn" {
			var opts []core.Option
			opts = append(opts, core.WithPolicy(policy))
			if mode == "wd" {
				opts = append(opts, core.WithWD(limit))
				// WD ignores per-kernel limits; the framework-side value is
				// only what Caffe would pass through.
				ctxLimit = core.DefaultWorkspaceLimit
			} else {
				opts = append(opts, core.WithWorkspaceLimit(limit))
			}
			uc, err := core.New(inner, opts...)
			if err != nil {
				return err
			}
			convH = uc
		}
		ctx := dnn.NewContext(convH, inner, ctxLimit)
		ctx.SkipCompute = true
		net := zoo.InceptionModule(ctx, batch)
		rep, err := net.Time(cfg.Iters)
		if err != nil {
			return err
		}
		runs = append(runs, run{name: name, net: net, rep: rep})
		return nil
	}
	kernels := int64(17) // 6 conv layers x 3 kernels - 1 (no input grad)
	if err := build("WR equal slices", "wr", totalMiB*MiB/kernels, core.PolicyPowerOfTwo); err != nil {
		return err
	}
	if err := build("WD ILP division", "wd", totalMiB*MiB, core.PolicyPowerOfTwo); err != nil {
		return err
	}

	t := newTable(cfg, fmt.Sprintf("Concurrency (extension): inception(3a) forward, N=%d, %d MiB total (%s)",
		batch, totalMiB, cfg.Device.Name),
		"variant", "streams", "fwd_makespan_ms", "speedup_vs_1stream", "critical_path_ms", "fwd+bwd_total_ms")
	for _, r := range runs {
		cp, err := r.net.CriticalPath(r.rep)
		if err != nil {
			return err
		}
		var base float64
		for _, streams := range []int{1, 2, 4} {
			s, err := r.net.ScheduleForward(r.rep, streams)
			if err != nil {
				return err
			}
			if err := s.Validate(); err != nil {
				return err
			}
			msp := s.Makespan.Seconds() * 1000
			if streams == 1 {
				base = msp
			}
			t.row(r.name, fmt.Sprintf("%d", streams), ms(s.Makespan),
				fmt.Sprintf("%.2fx", base/msp), ms(cp), ms(r.rep.Total()))
		}
	}
	t.flush()
	fmt.Fprintln(cfg.Out, "note: WD optimizes the whole iteration (fwd+bwd column); branch concurrency")
	fmt.Fprintln(cfg.Out, "then compresses the forward makespan toward the critical path on both variants.")
	return nil
}
