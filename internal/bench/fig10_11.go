package bench

import (
	"fmt"

	"ucudnn/internal/core"
	"ucudnn/internal/device"
	"ucudnn/internal/zoo"
)

// policyLabel matches the paper's figure labels: u / p / a.
func policyLabel(p core.Policy) string {
	switch p {
	case core.PolicyUndivided:
		return "u"
	case core.PolicyPowerOfTwo:
		return "p"
	default:
		return "a"
	}
}

// runPolicySweep times one network across workspace limits and policies
// under WR, emitting one row per (limit, policy) with per-conv-layer and
// total times — the bar structure of Figs. 10 and 11.
func runPolicySweep(cfg Config, network string, batch int, limitsMiB []int64) error {
	// Collect conv layer names once for columns.
	probe, _, err := netRun(cfg, network, "cudnn", core.PolicyUndivided, 512*MiB, batch)
	if err != nil {
		return err
	}
	var convCols []string
	for _, l := range probe.Layers {
		if zoo.IsConvLayer(l.Name) {
			convCols = append(convCols, l.Name)
		}
	}
	showPerLayer := len(convCols) <= 8

	cols := []string{"ws_MiB", "policy", "total_ms", "conv_ms", "other_ms", "speedup_total", "speedup_conv"}
	if showPerLayer {
		cols = append(cols, convCols...)
	}
	t := newTable(cfg, fmt.Sprintf("%s (%s, N=%d): WR policy sweep, fwd+bwd per iteration",
		network, cfg.Device.Name, batch), cols...)

	for _, lim := range limitsMiB {
		var baseTotal, baseConv float64
		for _, pol := range core.Policies {
			rep, _, err := netRun(cfg, network, "wr", pol, lim*MiB, batch)
			if err != nil {
				return err
			}
			total := rep.Total()
			convT := convOnly(rep)
			tms := total.Seconds() * 1000
			cms := convT.Seconds() * 1000
			if pol == core.PolicyUndivided {
				baseTotal, baseConv = tms, cms
			}
			row := []string{
				fmt.Sprintf("%d", lim), policyLabel(pol), ms(total), ms(convT),
				ms(total - convT),
				fmt.Sprintf("%.2fx", baseTotal/tms),
				fmt.Sprintf("%.2fx", baseConv/cms),
			}
			if showPerLayer {
				for _, c := range convCols {
					lt := rep.Layer(c)
					row = append(row, ms(lt.Total()))
				}
			}
			t.row(row...)
		}
	}
	t.flush()
	return nil
}

// Fig10 reproduces Figure 10: AlexNet under WR across the three GPUs with
// workspace limits {8, 64, 512} MiB and policies {undivided, powerOfTwo,
// all}; mini-batch 256 on K80 and P100, 1024 on V100. The paper reports
// 1.81x (K80), 1.40x (P100) and 1.47x (V100) whole-iteration speedups at
// 64 MiB with the all policy.
func Fig10(cfg Config) error {
	cfg = cfg.withDefaults()
	devs := []struct {
		dev   device.Spec
		batch int
	}{
		{device.K80, 256},
		{device.P100, 256},
		{device.V100, 1024},
	}
	for _, d := range devs {
		c := cfg
		c.Device = d.dev
		batch := d.batch
		if cfg.Batch > 0 {
			batch = cfg.Batch
		}
		if err := runPolicySweep(c, "alexnet", batch, []int64{8, 64, 512}); err != nil {
			return err
		}
	}
	return nil
}

// Fig11 reproduces Figure 11: the TensorFlow-style evaluation on P100 —
// AlexNet (N=256), ResNet-50 (N=64) and DenseNet-40 k=40 (N=256) with
// externally-imposed workspace limits {8, 64, 512} MiB. The paper reports
// 1.24x (AlexNet) and 1.06x (ResNet-50) at 64 MiB.
func Fig11(cfg Config) error {
	cfg = cfg.withDefaults()
	nets := []struct {
		name  string
		batch int
	}{
		{"alexnet", 256},
		{"resnet50", 64},
		{"densenet40", 256},
	}
	for _, n := range nets {
		batch := n.batch
		if cfg.Batch > 0 {
			batch = cfg.Batch
		}
		if err := runPolicySweep(cfg, n.name, batch, []int64{8, 64, 512}); err != nil {
			return err
		}
	}
	return nil
}
