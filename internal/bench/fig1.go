package bench

import (
	"fmt"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
)

// Fig1 reproduces Figure 1: cuDNN forward-convolution times of all
// single-column-AlexNet layers when the workspace limit admits the best
// algorithm ("Best") versus one byte less ("-1 byte"), plus the conv2
// time-vs-workspace sweep of Fig. 1(b). The paper reports a 4.51x cliff
// on conv2.
func Fig1(cfg Config) error {
	cfg = cfg.withDefaults()
	batch := cfg.Batch
	if batch <= 0 {
		batch = 256
	}
	h := newModelHandle(cfg)

	t := newTable(cfg, fmt.Sprintf("Fig 1(a): AlexNet forward, Best vs -1 byte (%s, N=%d)", cfg.Device.Name, batch),
		"layer", "best_algo", "best_ms", "best_ws_MiB", "fallback_algo", "fallback_ms", "slowdown")
	for _, l := range alexNetFwdShapes(batch) {
		best, err := bestPerf(h, conv.Forward, l.Shape, 1<<40)
		if err != nil {
			return err
		}
		fallback := best
		if best.Memory > 0 {
			fb, err := h.PickAlgo(conv.Forward, l.Shape, cudnn.SpecifyWorkspaceLimit, best.Memory-1)
			if err == nil {
				fallback = fb
			}
		}
		t.row(l.Name, best.Algo.String(), ms(best.Time), mib(best.Memory),
			fallback.Algo.String(), ms(fallback.Time),
			fmt.Sprintf("%.2fx", float64(fallback.Time)/float64(best.Time)))
	}
	t.flush()

	// Fig 1(b): conv2 execution time as the workspace limit grows.
	cs := Conv2(batch)
	t2 := newTable(cfg, "Fig 1(b): conv2 forward time vs workspace limit",
		"ws_limit_MiB", "algo", "time_ms")
	for _, limMiB := range []int64{1, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		p, err := h.PickAlgo(conv.Forward, cs, cudnn.SpecifyWorkspaceLimit, limMiB*MiB)
		if err != nil {
			return err
		}
		t2.row(fmt.Sprintf("%d", limMiB), p.Algo.String(), ms(p.Time))
	}
	t2.flush()
	return nil
}
