package bench

import (
	"bytes"
	"strings"
	"testing"

	"ucudnn/internal/core"
	"ucudnn/internal/device"
)

// smallCfg keeps experiment tests fast: one iteration, discard-capable
// buffer outputs.
func smallCfg() (Config, *bytes.Buffer, *bytes.Buffer) {
	var out, csv bytes.Buffer
	return Config{Device: device.P100, Iters: 1, Out: &out, CSV: &csv}, &out, &csv
}

func TestNamesAndDispatch(t *testing.T) {
	names := Names()
	if len(names) != len(Experiments) {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
	if err := Run("nope", Config{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestTable1(t *testing.T) {
	cfg, out, csv := smallCfg()
	if err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"K80", "P100-SXM2", "V100-SXM2", "10.60", "Table I"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table1 missing %q in:\n%s", want, s)
		}
	}
	if !strings.Contains(csv.String(), "device,") {
		t.Fatal("csv header missing")
	}
}

func TestFig1RunsAndShowsCliff(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 64
	if err := Fig1(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "conv2") || !strings.Contains(s, "Fig 1(b)") {
		t.Fatalf("fig1 output incomplete:\n%s", s)
	}
	// Every layer row reports a slowdown >= 1.00x.
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "x") && strings.HasPrefix(line, "conv") {
			if strings.Contains(line, "0.") && strings.HasSuffix(strings.TrimSpace(line), "0.99x") {
				t.Fatalf("fallback faster than best: %s", line)
			}
		}
	}
}

func TestFig8FrontShape(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 32
	if err := Fig8(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "desirable configurations") || !strings.Contains(s, "FFT") {
		t.Fatalf("fig8 output incomplete:\n%s", s)
	}
}

func TestFig9SpeedupDirection(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 128
	if err := Fig9(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "undivided") || !strings.Contains(s, "powerOfTwo") || !strings.Contains(s, "all") {
		t.Fatalf("fig9 rows missing:\n%s", s)
	}
	// The undivided row is the 1.00x baseline.
	if !strings.Contains(s, "1.00x") {
		t.Fatal("baseline row missing")
	}
}

func TestRunPolicySweepSmall(t *testing.T) {
	cfg, out, csv := smallCfg()
	if err := runPolicySweep(cfg, "alexnet", 32, []int64{64}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"conv1", "conv5", "speedup_total"} {
		if !strings.Contains(s, want) {
			t.Fatalf("sweep missing %q:\n%s", want, s)
		}
	}
	lines := strings.Count(csv.String(), "\n")
	if lines != 4 { // header + 3 policies
		t.Fatalf("csv rows = %d, want 4", lines)
	}
}

func TestFig12SmallBatch(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 16
	if err := Fig12(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "reduction") || !strings.Contains(s, "alexnet") || !strings.Contains(s, "resnet18") {
		t.Fatalf("fig12 output incomplete:\n%s", s)
	}
}

func TestFig14Assignment(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 64
	if err := Fig14(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "conv2") || !strings.Contains(s, "total assigned") {
		t.Fatalf("fig14 output incomplete:\n%s", s)
	}
	// conv2 must be a named row, not a raw shape.
	if strings.Contains(s, "in=") && strings.Contains(s, "filt=") {
		t.Fatal("kernel naming failed (raw shapes leaked)")
	}
}

func TestSummarySmall(t *testing.T) {
	// Summary at full batch is the real reproduction; here just ensure the
	// table renders with all five metrics at reduced cost is too slow, so
	// check the conv2 metrics only via Fig9/Fig1 above and run Summary's
	// fast rows through a small AlexNet sweep instead.
	cfg, out, _ := smallCfg()
	if err := runPolicySweep(cfg, "alexnet", 64, []int64{64}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1.00x") {
		t.Fatal("sweep baseline missing")
	}
}

func TestNetRunModes(t *testing.T) {
	cfg, _, _ := smallCfg()
	if _, _, err := netRun(cfg, "alexnet", "bogus", core.PolicyAll, MiB, 8); err == nil {
		t.Fatal("bogus mode must error")
	}
	if _, _, err := netRun(cfg, "bogus", "wr", core.PolicyAll, MiB, 8); err == nil {
		t.Fatal("bogus network must error")
	}
	rep, uc, err := netRun(cfg, "inception", "wd", core.PolicyPowerOfTwo, 64*MiB, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() <= 0 || uc == nil || uc.WDStats() == nil {
		t.Fatal("wd netRun incomplete")
	}
}

func TestConv2Shape(t *testing.T) {
	cs := Conv2(256)
	if cs.OutShape().H != 27 || cs.Filt.K != 192 {
		t.Fatalf("conv2 shape wrong: %v", cs)
	}
	shapes := alexNetFwdShapes(8)
	if len(shapes) != 5 || shapes[0].Name != "conv1" {
		t.Fatal("alexnet shapes wrong")
	}
	for _, s := range shapes {
		if !s.Shape.Valid() {
			t.Fatalf("%s invalid", s.Name)
		}
	}
}

// The remaining full experiments at tiny batches: each must run to
// completion and emit its key sections.
func TestFig10TinyBatch(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 8
	if err := Fig10(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, dev := range []string{"K80", "P100-SXM2", "V100-SXM2"} {
		if !strings.Contains(s, dev) {
			t.Fatalf("fig10 missing device %s", dev)
		}
	}
}

func TestFig11TinyBatch(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 8
	if err := Fig11(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, net := range []string{"alexnet", "resnet50", "densenet40"} {
		if !strings.Contains(s, net) {
			t.Fatalf("fig11 missing %s", net)
		}
	}
}

func TestFig13TinyBatch(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 8
	if err := Fig13(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "WD") || !strings.Contains(s, "WR") || !strings.Contains(s, "kernels") {
		t.Fatalf("fig13 incomplete:\n%s", s)
	}
}

func TestSummaryTinyBatch(t *testing.T) {
	cfg, out, _ := smallCfg()
	if err := Summary(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, metric := range []string{"4.51x", "2.33x", "1.63x", "1.21x"} {
		if !strings.Contains(s, metric) {
			t.Fatalf("summary missing paper value %s:\n%s", metric, s)
		}
	}
}

func TestOptTimeRuns(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 16
	if err := OptTime(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "binary_vars") {
		t.Fatal("opttime missing ILP stats")
	}
}

func TestAblationRuns(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 16
	if err := Ablation(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Pareto pruning") || !strings.Contains(s, "deduplication") || !strings.Contains(s, "cache reuse") {
		t.Fatalf("ablation incomplete:\n%s", s)
	}
	// Pruning reduction must be astronomically large even at tiny batches.
	if !strings.Contains(s, "e+") {
		t.Fatal("no exponential reduction reported")
	}
}

func TestScalingRuns(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 32
	if err := Scaling(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "images_per_s") || !strings.Contains(s, "µ-cuDNN") {
		t.Fatalf("scaling incomplete:\n%s", s)
	}
}

func TestConcurrencyExperiment(t *testing.T) {
	cfg, out, _ := smallCfg()
	cfg.Batch = 32
	if err := Concurrency(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "WD ILP division") || !strings.Contains(s, "critical_path_ms") {
		t.Fatalf("concurrency incomplete:\n%s", s)
	}
}
