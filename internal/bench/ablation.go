package bench

import (
	"fmt"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
)

// Ablation quantifies the design choices behind WD's tractability
// (§III-C1): how Pareto pruning collapses the exponential configuration
// space to tens of ILP variables per kernel, and how kernel
// deduplication shrinks replicated networks' ILPs. The paper reports a
// maximum desirable-set size of 68 for AlexNet against an O(|A|^N)
// unpruned space.
func Ablation(cfg Config) error {
	cfg = cfg.withDefaults()
	batch := cfg.Batch
	if batch <= 0 {
		batch = 256
	}
	b := core.NewBencher(newModelHandle(cfg), nil, 1)

	t := newTable(cfg, fmt.Sprintf("Ablation: Pareto pruning per AlexNet forward kernel (%s, N=%d, 120 MiB)",
		cfg.Device.Name, batch),
		"kernel", "policy", "unpruned_configs", "pruned_front", "reduction")
	maxFront := 0
	for _, l := range alexNetFwdShapes(batch) {
		k := core.Kernel{Op: conv.Forward, Shape: l.Shape}
		for _, pol := range []core.Policy{core.PolicyPowerOfTwo, core.PolicyAll} {
			front, err := core.DesirableSet(b, k, 120*MiB, pol)
			if err != nil {
				return err
			}
			if len(front) > maxFront {
				maxFront = len(front)
			}
			unpruned := countConfigs(b, k, 120*MiB, pol)
			t.row(l.Name, pol.String(),
				fmt.Sprintf("%.3g", unpruned),
				fmt.Sprintf("%d", len(front)),
				fmt.Sprintf("%.1e x", unpruned/float64(len(front))))
		}
	}
	t.flush()
	fmt.Fprintf(cfg.Out, "max desirable-set size: %d (paper: 68)\n", maxFront)

	// Kernel deduplication: the WD ILP over ResNet-50's kernels with and
	// without grouping identical (op, shape) pairs.
	probe, uc, err := netRun(cfg, "resnet50", "wr", core.PolicyUndivided, 8*MiB, 32)
	if err != nil {
		return err
	}
	_ = probe
	unique := len(uc.Plans())
	// Count total kernels by re-walking the network's conv layers: every
	// layer contributes Forward+BackwardFilter (+BackwardData unless it is
	// the stem).
	inner := newModelHandle(cfg)
	inner.Mem().Cap = 0
	net, err := buildNetwork("resnet50", inner, inner, 8*MiB, 32, nil)
	if err != nil {
		return err
	}
	if err := net.Setup(); err != nil {
		return err
	}
	totalKernels := 3*len(net.ConvLayers()) - 1
	t2 := newTable(cfg, "Ablation: WD kernel deduplication (ResNet-50, N=32)",
		"total_kernels", "unique_kernels", "dedup_factor")
	t2.row(fmt.Sprintf("%d", totalKernels), fmt.Sprintf("%d", unique),
		fmt.Sprintf("%.2fx", float64(totalKernels)/float64(unique)))
	t2.flush()

	// Benchmark-cache effect: planning AlexNet twice with a shared cache.
	t3 := newTable(cfg, "Ablation: benchmark cache reuse (AlexNet forward kernels)",
		"pass", "optimization_time")
	cache, _ := core.NewCache("")
	for pass := 1; pass <= 2; pass++ {
		bc := core.NewBencher(newModelHandle(cfg), cache, 1)
		start := time.Now()
		for _, l := range alexNetFwdShapes(batch) {
			if _, err := core.OptimizeWR(bc, core.Kernel{Op: conv.Forward, Shape: l.Shape}, 64*MiB, core.PolicyAll); err != nil {
				return err
			}
		}
		t3.row(fmt.Sprintf("%d", pass), time.Since(start).String())
	}
	t3.flush()
	return nil
}

// countConfigs counts (approximately, in float64) the unpruned
// configuration space: ordered-multiset divisions of the mini-batch into
// candidate sizes, weighted by the number of admissible algorithms at
// each size.
func countConfigs(b *core.Bencher, k core.Kernel, limit int64, pol core.Policy) float64 {
	n := k.Shape.In.N
	sizes := pol.CandidateSizes(n)
	perfs := b.PerfsForSizes(k, sizes)
	algos := map[int]float64{}
	for _, m := range sizes {
		cnt := 0.0
		for _, p := range perfs[m] {
			if p.Memory <= limit {
				cnt++
			}
		}
		algos[m] = cnt
	}
	// DP over multisets: process sizes in order so each multiset counts
	// once; ways[i] = number of configurations covering i samples.
	ways := make([]float64, n+1)
	ways[0] = 1
	for _, m := range sizes {
		for i := m; i <= n; i++ {
			ways[i] += ways[i-m] * algos[m]
		}
	}
	return ways[n]
}
