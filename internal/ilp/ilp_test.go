package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ucudnn/internal/lp"
)

// knapsack builds a 0-1 knapsack as maximize value -> minimize -value.
func knapsack(values, weights []float64, cap float64) *Problem {
	n := len(values)
	c := make([]float64, n)
	for i, v := range values {
		c[i] = -v
	}
	bin := make([]bool, n)
	for i := range bin {
		bin[i] = true
	}
	return &Problem{
		LP: lp.Problem{
			C:   c,
			A:   [][]float64{weights},
			B:   []float64{cap},
			Rel: []lp.Relation{lp.LE},
		},
		Binary: bin,
	}
}

func TestKnapsackKnown(t *testing.T) {
	// Classic: values 60,100,120 weights 10,20,30 cap 50 -> 220 (items 2,3).
	p := knapsack([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != lp.Optimal || math.Abs(r.Obj-(-220)) > 1e-6 {
		t.Fatalf("status %v obj %v", r.Status, r.Obj)
	}
	if r.X[0] != 0 || r.X[1] != 1 || r.X[2] != 1 {
		t.Fatalf("x = %v", r.X)
	}
}

// mckp builds a multiple-choice knapsack (the WD structure): groups of
// configurations, pick exactly one per group, minimize time, total
// workspace <= budget.
func mckp(times, ws [][]float64, budget float64) *Problem {
	var c []float64
	var wrow []float64
	var groups [][]int
	idx := 0
	for g := range times {
		var ids []int
		for j := range times[g] {
			c = append(c, times[g][j])
			wrow = append(wrow, ws[g][j])
			ids = append(ids, idx)
			idx++
		}
		groups = append(groups, ids)
	}
	n := len(c)
	p := &Problem{
		LP: lp.Problem{
			C:   c,
			A:   [][]float64{wrow},
			B:   []float64{budget},
			Rel: []lp.Relation{lp.LE},
		},
		Binary: make([]bool, n),
	}
	for i := range p.Binary {
		p.Binary[i] = true
	}
	for _, ids := range groups {
		row := make([]float64, n)
		for _, id := range ids {
			row[id] = 1
		}
		p.LP.A = append(p.LP.A, row)
		p.LP.B = append(p.LP.B, 1)
		p.LP.Rel = append(p.LP.Rel, lp.EQ)
	}
	return p
}

func TestMCKPKnown(t *testing.T) {
	// Two kernels; budget forces the slow config on one of them. Optimal:
	// give the budget to the kernel that benefits more.
	times := [][]float64{{10, 4}, {8, 5}}
	ws := [][]float64{{0, 6}, {0, 6}}
	p := mckp(times, ws, 6)
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Option A: kernel0 fast (4) + kernel1 slow (8) = 12.
	// Option B: kernel0 slow (10) + kernel1 fast (5) = 15. A wins.
	if r.Status != lp.Optimal || math.Abs(r.Obj-12) > 1e-6 {
		t.Fatalf("obj = %v, want 12 (x=%v)", r.Obj, r.X)
	}
}

func TestInfeasibleILP(t *testing.T) {
	// One group whose only option exceeds the budget.
	p := mckp([][]float64{{5}}, [][]float64{{10}}, 3)
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != lp.Infeasible {
		t.Fatalf("status %v, want infeasible", r.Status)
	}
}

func TestValidation(t *testing.T) {
	p := knapsack([]float64{1}, []float64{1}, 1)
	p.Binary = nil
	if _, err := Solve(p); err == nil {
		t.Fatal("binary length mismatch must error")
	}
}

func TestExhaustiveRejects(t *testing.T) {
	p := knapsack(make([]float64, 25), make([]float64, 25), 1)
	if _, err := SolveExhaustive(p); err == nil {
		t.Fatal("exhaustive must reject >24 vars")
	}
	q := knapsack([]float64{1, 2}, []float64{1, 1}, 2)
	q.Binary[1] = false
	if _, err := SolveExhaustive(q); err == nil {
		t.Fatal("exhaustive must reject continuous vars")
	}
}

// Property: branch & bound matches exhaustive enumeration on random
// multiple-choice knapsacks.
func TestBnBMatchesExhaustiveMCKP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := 2 + rng.Intn(3)
		times := make([][]float64, groups)
		ws := make([][]float64, groups)
		for g := range times {
			opts := 2 + rng.Intn(3)
			for o := 0; o < opts; o++ {
				times[g] = append(times[g], 1+rng.Float64()*9)
				ws[g] = append(ws[g], float64(rng.Intn(8)))
			}
		}
		budget := float64(rng.Intn(12))
		p := mckp(times, ws, budget)
		if len(p.LP.C) > 24 {
			return true
		}
		got, err := Solve(p)
		if err != nil {
			return false
		}
		want, err := SolveExhaustive(p)
		if err != nil {
			return false
		}
		if got.Status != want.Status {
			return false
		}
		if got.Status == lp.Optimal && math.Abs(got.Obj-want.Obj) > 1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: branch & bound matches exhaustive enumeration on random
// knapsacks with GE and LE rows mixed.
func TestBnBMatchesExhaustiveGeneral(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		m := 1 + rng.Intn(3)
		p := &Problem{LP: lp.Problem{C: make([]float64, n)}, Binary: make([]bool, n)}
		for j := range p.LP.C {
			p.LP.C[j] = rng.Float64()*10 - 5
			p.Binary[j] = true
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(5))
			}
			rel := lp.LE
			b := float64(rng.Intn(10))
			if rng.Intn(3) == 0 {
				rel = lp.GE
				b = float64(rng.Intn(4))
			}
			p.LP.A = append(p.LP.A, row)
			p.LP.B = append(p.LP.B, b)
			p.LP.Rel = append(p.LP.Rel, rel)
		}
		got, err := Solve(p)
		if err != nil {
			return false
		}
		want, err := SolveExhaustive(p)
		if err != nil {
			return false
		}
		if got.Status != want.Status {
			return false
		}
		return got.Status != lp.Optimal || math.Abs(got.Obj-want.Obj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// A WD-sized instance (hundreds of variables) must solve quickly and
// respect its constraints: the paper reports 562 variables in 5.46 ms.
func TestWDScaleInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kernels := 48 // ~ResNet-50's unique kernel count
	var times, ws [][]float64
	for k := 0; k < kernels; k++ {
		opts := 8 + rng.Intn(5) // ~560 vars total
		var ts, wss []float64
		base := 1 + rng.Float64()*10
		for o := 0; o < opts; o++ {
			// Pareto-like: more workspace, less time.
			w := float64(o) * (1 + rng.Float64()) * 10
			ts = append(ts, base/(1+0.2*float64(o)))
			wss = append(wss, w)
		}
		times = append(times, ts)
		ws = append(ws, wss)
	}
	p := mckp(times, ws, 800)
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != lp.Optimal {
		t.Fatalf("status %v", r.Status)
	}
	// Verify: one per group, budget respected.
	total := 0.0
	for j, v := range r.X {
		if v != 0 && v != 1 {
			t.Fatalf("x[%d] = %v not integral", j, v)
		}
		total += p.LP.A[0][j] * v
	}
	if total > 800+1e-6 {
		t.Fatalf("budget violated: %v", total)
	}
	for g := 1; g < len(p.LP.A); g++ {
		sum := 0.0
		for j, coef := range p.LP.A[g] {
			sum += coef * r.X[j]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("group %d sum %v != 1", g, sum)
		}
	}
	t.Logf("WD-scale: %d vars, %d nodes", len(p.LP.C), r.Nodes)
}

func TestFeasiblePointDirect(t *testing.T) {
	q := &lp.Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 1}, {1, 0}, {0, 1}},
		B:   []float64{2, 1, 1},
		Rel: []lp.Relation{lp.LE, lp.GE, lp.EQ},
	}
	if !feasiblePoint(q, []float64{1, 1}) {
		t.Fatal("feasible point rejected")
	}
	if feasiblePoint(q, []float64{2, 1}) {
		t.Fatal("LE violation accepted")
	}
	if feasiblePoint(q, []float64{0.5, 1}) {
		t.Fatal("GE violation accepted")
	}
	if feasiblePoint(q, []float64{1, 0.5}) {
		t.Fatal("EQ violation accepted")
	}
}

// A problem where branching fixes every variable exercises the fully-
// fixed node path.
func TestFullyFixedNodePath(t *testing.T) {
	// Maximize x+y with x+y <= 1 and binary vars: optimum picks one.
	p := &Problem{
		LP: lp.Problem{
			C:   []float64{-1, -1},
			A:   [][]float64{{1, 1}},
			B:   []float64{1},
			Rel: []lp.Relation{lp.LE},
		},
		Binary: []bool{true, true},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != lp.Optimal || r.Obj != -1 {
		t.Fatalf("status %v obj %v", r.Status, r.Obj)
	}
}

// TightenBudget carves a reservation out of a <= budget row in place —
// the WD joint-pool hook — and rejects every malformed call.
func TestTightenBudget(t *testing.T) {
	mk := func() *Problem {
		return &Problem{
			LP: lp.Problem{
				C:   []float64{-1, -1},
				A:   [][]float64{{1, 1}, {1, 0}},
				B:   []float64{10, 1},
				Rel: []lp.Relation{lp.LE, lp.EQ},
			},
			Binary: []bool{true, true},
		}
	}
	p := mk()
	if err := p.TightenBudget(0, 4); err != nil {
		t.Fatal(err)
	}
	if p.LP.B[0] != 6 {
		t.Fatalf("budget after tighten = %v, want 6", p.LP.B[0])
	}
	for _, bad := range []struct {
		name  string
		row   int
		delta float64
	}{
		{"row out of range", 5, 1},
		{"negative row", -1, 1},
		{"non-LE row", 1, 0.5},
		{"negative delta", 0, -1},
		{"reservation exceeds budget", 0, 11},
	} {
		q := mk()
		if err := q.TightenBudget(bad.row, bad.delta); err == nil {
			t.Errorf("%s: want error, got nil", bad.name)
		}
	}
}
