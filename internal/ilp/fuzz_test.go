package ilp

import (
	"math"
	"testing"

	"ucudnn/internal/lp"
)

// FuzzILP decodes small 0-1 problems from fuzz input, validates them and
// runs the branch-and-bound solver: accepted instances must solve
// without panicking, binary variables must come back integral, solutions
// must be feasible, and on all-binary instances the objective must agree
// with exhaustive enumeration.
func FuzzILP(f *testing.F) {
	// A WD-shaped seed: pick one configuration per group under a shared
	// budget row, plus an infeasible and an unbounded-ish variant.
	f.Add([]byte{3, 2, 10, 20, 30, 1, 1, 1, 0, 1, 2, 3, 2, 1, 7})
	f.Add([]byte{2, 1, 5, 250, 1, 1, 0, 0})
	f.Add([]byte{4, 3, 1, 2, 3, 4, 9, 9, 9, 9, 200, 100, 50, 25, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := decodeProblem(data)
		if !ok || p.Validate() != nil {
			return
		}
		res, err := Solve(p)
		if err != nil {
			return // node-limit or relaxation failure, reported cleanly
		}
		if res.Status != lp.Optimal {
			return
		}
		if len(res.X) != len(p.LP.C) {
			t.Fatalf("solution has %d variables, want %d", len(res.X), len(p.LP.C))
		}
		for j, isBin := range p.Binary {
			if !isBin {
				continue
			}
			if r := math.Abs(res.X[j] - math.Round(res.X[j])); r > 1e-6 {
				t.Fatalf("binary variable x[%d] = %g is fractional", j, res.X[j])
			}
			if res.X[j] < -1e-6 || res.X[j] > 1+1e-6 {
				t.Fatalf("binary variable x[%d] = %g outside {0,1}", j, res.X[j])
			}
		}
		if !feasiblePoint(&p.LP, res.X) {
			t.Fatalf("optimal point %v violates the constraints", res.X)
		}
		allBinary := true
		for _, b := range p.Binary {
			allBinary = allBinary && b
		}
		if allBinary {
			exh, err := SolveExhaustive(p)
			if err == nil && exh.Status == lp.Optimal &&
				math.Abs(exh.Obj-res.Obj) > 1e-5*(1+math.Abs(exh.Obj)) {
				t.Fatalf("branch-and-bound objective %g disagrees with exhaustive %g", res.Obj, exh.Obj)
			}
		}
	})
}

// decodeProblem builds a bounded ILP (at most 4 variables and 4 rows,
// single-digit magnitudes) from raw fuzz bytes.
func decodeProblem(data []byte) (*Problem, bool) {
	if len(data) < 2 {
		return nil, false
	}
	nvars := 1 + int(data[0])%4
	nrows := int(data[1]) % 4
	need := 2 + nvars + nrows*(nvars+2)
	if len(data) < need {
		return nil, false
	}
	pos := 2
	next := func() byte { b := data[pos]; pos++; return b }

	p := &Problem{}
	p.LP.C = make([]float64, nvars)
	p.Binary = make([]bool, nvars)
	for j := 0; j < nvars; j++ {
		b := next()
		p.LP.C[j] = float64(int(b%31) - 15)
		p.Binary[j] = b%2 == 0
	}
	// At least one binary variable, or the instance is a plain LP.
	p.Binary[0] = true
	for i := 0; i < nrows; i++ {
		row := make([]float64, nvars)
		for j := range row {
			row[j] = float64(int(next()%19) - 9)
		}
		p.LP.A = append(p.LP.A, row)
		p.LP.B = append(p.LP.B, float64(int(next()%21)-5))
		p.LP.Rel = append(p.LP.Rel, []lp.Relation{lp.LE, lp.GE, lp.EQ}[next()%3])
	}
	return p, true
}
