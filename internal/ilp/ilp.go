// Package ilp implements an exact 0-1 integer linear program solver via
// best-first branch & bound over LP relaxations (internal/lp). It stands
// in for GLPK in the paper's Workspace Division optimizer, whose problem
// (Eq. 1-4) is a multiple-choice knapsack: pick exactly one configuration
// per kernel, minimize total time, subject to a total workspace budget.
package ilp

import (
	"container/heap"
	"fmt"
	"math"

	"ucudnn/internal/lp"
)

// Problem is a linear program in which the variables marked Binary must
// take values in {0, 1}; the rest are continuous and nonnegative.
type Problem struct {
	LP     lp.Problem
	Binary []bool
}

// Result reports the ILP outcome.
type Result struct {
	Status lp.Status
	X      []float64
	Obj    float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// SimplexIters is the total number of simplex pivots spent across all
	// LP relaxations solved during the search.
	SimplexIters int
}

const intTol = 1e-6

// maxNodes bounds the search; the paper's instances need only hundreds.
const maxNodes = 500000

type node struct {
	bound float64
	// fixed maps variable index -> 0/1 for decisions made on the path.
	fixed map[int]float64
}

type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// TightenBudget subtracts delta from the right-hand side of the LE
// constraint at row, carving a reservation out of an already-assembled
// budget row (the Workspace Division optimizer uses it to reserve blob
// memory from the joint workspace+activation pool). delta must be
// nonnegative and must not drive the budget negative: a reservation that
// consumes the whole pool is a caller error, not an infeasible ILP.
func (p *Problem) TightenBudget(row int, delta float64) error {
	if row < 0 || row >= len(p.LP.B) {
		return fmt.Errorf("ilp: TightenBudget row %d out of range [0,%d)", row, len(p.LP.B))
	}
	if p.LP.Rel[row] != lp.LE {
		return fmt.Errorf("ilp: TightenBudget row %d is not a <= budget row", row)
	}
	if delta < 0 {
		return fmt.Errorf("ilp: TightenBudget delta %g is negative", delta)
	}
	if p.LP.B[row]-delta < 0 {
		return fmt.Errorf("ilp: reservation %g exceeds budget %g at row %d", delta, p.LP.B[row], row)
	}
	p.LP.B[row] -= delta
	return nil
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if err := p.LP.Validate(); err != nil {
		return err
	}
	if len(p.Binary) != len(p.LP.C) {
		return fmt.Errorf("ilp: Binary has %d entries, want %d", len(p.Binary), len(p.LP.C))
	}
	return nil
}

// impliedBounded reports, per variable, whether some constraint row
// already implies x_j <= 1: an EQ or LE row with b <= 1, all coefficients
// nonnegative, and coefficient >= 1 on x_j (e.g. a multiple-choice group
// row sum(x) = 1). Such variables need no explicit upper-bound row in the
// relaxation, which keeps the WD instances small.
func (p *Problem) impliedBounded() []bool {
	n := len(p.LP.C)
	bounded := make([]bool, n)
	for i, row := range p.LP.A {
		if p.LP.B[i] > 1+intTol || p.LP.Rel[i] == lp.GE {
			continue
		}
		ok := true
		for _, v := range row {
			if v < 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for j, v := range row {
			if v >= 1-intTol {
				bounded[j] = true
			}
		}
	}
	return bounded
}

// relax builds the LP relaxation of p under the node's fixings. Fixed
// variables are substituted out (shrinking the LP), and explicit x <= 1
// rows are added only for binary variables whose bound is not already
// implied by a constraint. freeIdx maps relaxation variables back to
// original indices.
func (p *Problem) relax(fixed map[int]float64, bounded []bool) (q *lp.Problem, freeIdx []int) {
	n := len(p.LP.C)
	for j := 0; j < n; j++ {
		if _, ok := fixed[j]; !ok {
			freeIdx = append(freeIdx, j)
		}
	}
	nf := len(freeIdx)
	q = &lp.Problem{C: make([]float64, nf)}
	for fj, j := range freeIdx {
		q.C[fj] = p.LP.C[j]
	}
	for i, row := range p.LP.A {
		b := p.LP.B[i]
		newRow := make([]float64, nf)
		for fj, j := range freeIdx {
			newRow[fj] = row[j]
		}
		// Index order, not map order: b accumulates floats, and the DP
		// above demands bit-identical objectives run to run.
		for j := 0; j < n; j++ {
			if v, ok := fixed[j]; ok {
				b -= row[j] * v
			}
		}
		q.A = append(q.A, newRow)
		q.B = append(q.B, b)
		q.Rel = append(q.Rel, p.LP.Rel[i])
	}
	for fj, j := range freeIdx {
		if !p.Binary[j] || bounded[j] {
			continue
		}
		row := make([]float64, nf)
		row[fj] = 1
		q.A = append(q.A, row)
		q.B = append(q.B, 1)
		q.Rel = append(q.Rel, lp.LE)
	}
	return q, freeIdx
}

// Solve finds an optimal 0-1 assignment (binary variables) by best-first
// branch & bound. Continuous variables are optimized by the relaxations.
func Solve(p *Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	bounded := p.impliedBounded()
	n := len(p.LP.C)
	best := Result{Status: lp.Infeasible, Obj: math.Inf(1)}
	q := &nodeQueue{}
	heap.Init(q)
	heap.Push(q, &node{bound: math.Inf(-1), fixed: map[int]float64{}})
	nodes, simplexIters := 0, 0
	for q.Len() > 0 {
		nodes++
		if nodes > maxNodes {
			return Result{}, fmt.Errorf("ilp: node limit exceeded (%d)", maxNodes)
		}
		nd := heap.Pop(q).(*node)
		if nd.bound >= best.Obj-intTol {
			continue // cannot improve the incumbent
		}
		relProb, freeIdx := p.relax(nd.fixed, bounded)
		if len(freeIdx) == 0 {
			// Fully fixed: evaluate the assignment directly.
			x := make([]float64, n)
			obj := 0.0
			for j := 0; j < n; j++ {
				if v, ok := nd.fixed[j]; ok {
					x[j] = v
					obj += p.LP.C[j] * v
				}
			}
			if feasiblePoint(&p.LP, x) && obj < best.Obj {
				best = Result{Status: lp.Optimal, X: x, Obj: obj}
			}
			continue
		}
		rel, err := lp.Solve(relProb)
		simplexIters += rel.Iters
		if err != nil {
			return Result{}, err
		}
		switch rel.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return Result{Status: lp.Unbounded, Nodes: nodes, SimplexIters: simplexIters}, nil
		}
		// Lift the relaxation solution back to original indices, summing
		// the fixed cost in index order for reproducible objectives.
		fullX := make([]float64, n)
		fixedCost := 0.0
		for j := 0; j < n; j++ {
			if v, ok := nd.fixed[j]; ok {
				fullX[j] = v
				fixedCost += p.LP.C[j] * v
			}
		}
		objFull := rel.Obj + fixedCost
		for fj, j := range freeIdx {
			fullX[j] = rel.X[fj]
		}
		if objFull >= best.Obj-intTol {
			continue
		}
		// Find the most fractional binary variable.
		branch := -1
		worst := intTol
		for j, isBin := range p.Binary {
			if !isBin {
				continue
			}
			f := math.Abs(fullX[j] - math.Round(fullX[j]))
			if f > worst {
				worst = f
				branch = j
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			x := append([]float64{}, fullX...)
			for j, isBin := range p.Binary {
				if isBin {
					x[j] = math.Round(x[j])
				}
			}
			best = Result{Status: lp.Optimal, X: x, Obj: objFull}
			continue
		}
		for _, v := range []float64{1, 0} {
			child := &node{bound: objFull, fixed: make(map[int]float64, len(nd.fixed)+1)}
			for k := 0; k < n; k++ {
				if fv, ok := nd.fixed[k]; ok {
					child.fixed[k] = fv
				}
			}
			child.fixed[branch] = v
			heap.Push(q, child)
		}
	}
	best.Nodes = nodes
	best.SimplexIters = simplexIters
	return best, nil
}

// feasiblePoint reports whether x satisfies every constraint of q.
func feasiblePoint(q *lp.Problem, x []float64) bool {
	for i, row := range q.A {
		dot := 0.0
		for j := range row {
			dot += row[j] * x[j]
		}
		switch q.Rel[i] {
		case lp.LE:
			if dot > q.B[i]+intTol {
				return false
			}
		case lp.GE:
			if dot < q.B[i]-intTol {
				return false
			}
		case lp.EQ:
			if math.Abs(dot-q.B[i]) > intTol {
				return false
			}
		}
	}
	return true
}

// SolveExhaustive enumerates every 0-1 assignment of the binary variables
// (others must not exist) and returns the best feasible one. It is the
// test oracle for Solve; exponential, so only for small instances.
func SolveExhaustive(p *Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := len(p.LP.C)
	for j := 0; j < n; j++ {
		if !p.Binary[j] {
			return Result{}, fmt.Errorf("ilp: exhaustive solver requires all-binary problems")
		}
	}
	if n > 24 {
		return Result{}, fmt.Errorf("ilp: exhaustive solver limited to 24 variables, got %d", n)
	}
	best := Result{Status: lp.Infeasible, Obj: math.Inf(1)}
	x := make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		obj := 0.0
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				x[j] = 1
				obj += p.LP.C[j]
			} else {
				x[j] = 0
			}
		}
		feasible := true
		for i, row := range p.LP.A {
			dot := 0.0
			for j := range row {
				dot += row[j] * x[j]
			}
			switch p.LP.Rel[i] {
			case lp.LE:
				feasible = dot <= p.LP.B[i]+intTol
			case lp.GE:
				feasible = dot >= p.LP.B[i]-intTol
			case lp.EQ:
				feasible = math.Abs(dot-p.LP.B[i]) <= intTol
			}
			if !feasible {
				break
			}
		}
		if feasible && obj < best.Obj {
			best = Result{Status: lp.Optimal, X: append([]float64{}, x...), Obj: obj}
		}
	}
	return best, nil
}
