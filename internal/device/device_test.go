package device

import (
	"testing"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/tensor"
)

// conv2 is AlexNet's second convolution, the paper's running example.
func conv2(n int) tensor.ConvShape {
	return tensor.ConvShape{
		In:     tensor.Shape{N: n, C: 64, H: 27, W: 27},
		Filt:   tensor.Filter{K: 192, C: 64, R: 5, S: 5},
		Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1},
	}
}

func TestByName(t *testing.T) {
	for _, q := range []string{"p100", "P100-SXM2", "P100"} {
		d, err := ByName(q)
		if err != nil || d.Name != P100.Name {
			t.Fatalf("ByName(%q) = %v, %v", q, d.Name, err)
		}
	}
	if _, err := ByName("tpu"); err == nil {
		t.Fatal("unknown device must error")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("empty name must error")
	}
}

func TestSpecsSane(t *testing.T) {
	for _, d := range Devices {
		if d.PeakFlops <= 0 || d.MemBW <= 0 || d.MemBytes <= 0 || d.LaunchOverhead <= 0 || d.SMs <= 0 {
			t.Fatalf("%s: incomplete spec %+v", d.Name, d)
		}
	}
	// Newer devices are strictly faster (Table I ordering).
	if !(K80.PeakFlops < P100.PeakFlops && P100.PeakFlops < V100.PeakFlops) {
		t.Fatal("peak flops ordering broken")
	}
	if !(K80.MemBW < P100.MemBW && P100.MemBW < V100.MemBW) {
		t.Fatal("bandwidth ordering broken")
	}
}

func TestModelDeterministic(t *testing.T) {
	cs := conv2(256)
	a, ok1 := P100.ModelTime(conv.Forward, conv.AlgoFFT, cs)
	b, ok2 := P100.ModelTime(conv.Forward, conv.AlgoFFT, cs)
	if !ok1 || !ok2 || a != b {
		t.Fatalf("model not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatal("model time must be positive")
	}
}

func TestModelUnsupported(t *testing.T) {
	stride4 := conv2(32)
	stride4.Params.StrideH = 4
	stride4.Params.StrideW = 4
	if _, ok := P100.ModelTime(conv.Forward, conv.AlgoFFT, stride4); ok {
		t.Fatal("FFT at stride 4 must be unsupported")
	}
}

// FFT must beat GEMM on conv2 at a large batch: the crossover the paper's
// Fig. 9 exploits.
func TestFFTBeatsGemmOnConv2(t *testing.T) {
	cs := conv2(256)
	fft, _ := P100.ModelTime(conv.Forward, conv.AlgoFFT, cs)
	gemm, _ := P100.ModelTime(conv.Forward, conv.AlgoGemm, cs)
	if fft >= gemm {
		t.Fatalf("FFT %v should beat GEMM %v on conv2@256", fft, gemm)
	}
	if ratio := float64(gemm) / float64(fft); ratio < 1.5 || ratio > 10 {
		t.Fatalf("GEMM/FFT ratio %.2f outside the plausible band", ratio)
	}
	// Direct must be the slowest reasonable algorithm.
	direct, _ := P100.ModelTime(conv.Forward, conv.AlgoDirect, cs)
	if direct <= gemm {
		t.Fatalf("direct %v should trail GEMM %v", direct, gemm)
	}
}

// Micro-batched FFT (8 x batch-32) must stay well below undivided GEMM:
// otherwise the paper's WR optimization could never win.
func TestMicroBatchedFFTStillWins(t *testing.T) {
	full := conv2(256)
	micro := conv2(32)
	fft32, _ := P100.ModelTime(conv.Forward, conv.AlgoFFT, micro)
	gemm, _ := P100.ModelTime(conv.Forward, conv.AlgoGemm, full)
	if 8*fft32 >= gemm {
		t.Fatalf("8 x FFT@32 (%v) should beat GEMM@256 (%v)", 8*fft32, gemm)
	}
	// But micro-batching the same algorithm must not be free: 8 calls cost
	// more than one.
	fft256, _ := P100.ModelTime(conv.Forward, conv.AlgoFFT, full)
	if 8*fft32 <= fft256 {
		t.Fatalf("micro-batching must add overhead: 8x%v vs %v", fft32, fft256)
	}
}

// Batch-1 kernels must be disproportionately expensive (launch overhead +
// occupancy floor), so optimizers avoid degenerate divisions.
func TestTinyBatchPenalty(t *testing.T) {
	t1, _ := P100.ModelTime(conv.Forward, conv.AlgoGemm, conv2(1))
	t256, _ := P100.ModelTime(conv.Forward, conv.AlgoGemm, conv2(256))
	if 256*int64(t1) <= int64(t256) {
		t.Fatalf("per-sample cost must grow at batch 1: 256x%v vs %v", t1, t256)
	}
}

// Faster devices must produce faster predictions for the same kernel.
func TestDeviceOrdering(t *testing.T) {
	cs := conv2(256)
	for _, algo := range []conv.Algo{conv.AlgoGemm, conv.AlgoFFT, conv.AlgoWinogradNonfused} {
		k, _ := K80.ModelTime(conv.Forward, algo, cs)
		p, _ := P100.ModelTime(conv.Forward, algo, cs)
		v, _ := V100.ModelTime(conv.Forward, algo, cs)
		if !(k > p && p > v) {
			t.Fatalf("%v: device ordering broken: K80=%v P100=%v V100=%v", algo, k, p, v)
		}
	}
}

// Times scale close to linearly in batch for large batches.
func TestBatchScaling(t *testing.T) {
	for _, algo := range []conv.Algo{conv.AlgoGemm, conv.AlgoFFT, conv.AlgoImplicitGemm} {
		t128, _ := P100.ModelTime(conv.Forward, algo, conv2(128))
		t256, _ := P100.ModelTime(conv.Forward, algo, conv2(256))
		r := float64(t256) / float64(t128)
		if r < 1.6 || r > 2.4 {
			t.Fatalf("%v: 256/128 time ratio %.2f not ~2", algo, r)
		}
	}
}

// All three operations of a supported combination produce sane times.
func TestAllOpsModeled(t *testing.T) {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 32, C: 64, H: 56, W: 56},
		Filt:   tensor.Filter{K: 64, C: 64, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	for _, op := range conv.Ops {
		for _, algo := range conv.AlgosFor(op) {
			if !conv.Supported(op, algo, cs) {
				continue
			}
			d, ok := P100.ModelTime(op, algo, cs)
			if !ok || d <= 0 || d > time.Second {
				t.Fatalf("%v/%v: model time %v (ok=%v)", op, algo, d, ok)
			}
		}
	}
}

func TestMemBoundAndGemmTimes(t *testing.T) {
	if P100.MemBoundTime(0) < P100.LaunchOverhead {
		t.Fatal("mem-bound time must include launch overhead")
	}
	small := P100.MemBoundTime(1 << 20)
	big := P100.MemBoundTime(1 << 30)
	if big <= small {
		t.Fatal("more bytes must take longer")
	}
	if P100.GemmTime(0, 1, 1) != P100.LaunchOverhead {
		t.Fatal("degenerate GEMM is just a launch")
	}
	g1 := P100.GemmTime(256, 256, 256)
	g2 := P100.GemmTime(1024, 1024, 1024)
	if g2 <= g1 {
		t.Fatal("bigger GEMM must take longer")
	}
}

func TestMemTracker(t *testing.T) {
	m := &MemTracker{Cap: 100}
	if err := m.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc(50); err == nil {
		t.Fatal("over-capacity alloc must fail")
	}
	if err := m.Alloc(40); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 100 || m.Peak() != 100 {
		t.Fatalf("used=%d peak=%d", m.Used(), m.Peak())
	}
	m.Free(70)
	if m.Used() != 30 || m.Peak() != 100 {
		t.Fatalf("after free: used=%d peak=%d", m.Used(), m.Peak())
	}
	if err := m.Alloc(-1); err == nil {
		t.Fatal("negative alloc must fail")
	}
	m.Free(1000)
	if m.Used() != 0 {
		t.Fatal("free clamps at zero")
	}
	unlimited := &MemTracker{}
	if err := unlimited.Alloc(1 << 40); err != nil {
		t.Fatal("cap 0 means unlimited")
	}
}

func TestNewMemTrackerUsesCapacity(t *testing.T) {
	m := P100.NewMemTracker()
	if m.Cap != P100.MemBytes {
		t.Fatalf("cap = %d, want %d", m.Cap, P100.MemBytes)
	}
}
