package device

import (
	"math"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/fftpkg"
	"ucudnn/internal/tensor"
)

// Gen returns the architecture generation used for algorithm-efficiency
// adjustments (Kepler=3, Pascal=6, Volta=7).
func (s Spec) gen() int {
	switch s.Name {
	case K80.Name:
		return 3
	case V100.Name:
		return 7
	default:
		return 6
	}
}

// quant returns the useful-work fraction of a dimension of extent x
// processed in hardware tiles of extent t (tile-quantization loss).
func quant(x, t int64) float64 {
	if x <= 0 {
		return 0
	}
	tiles := (x + t - 1) / t
	return float64(x) / float64(tiles*t)
}

// sat is a saturating efficiency curve: ~x/x0 for small x, ->1 for large.
func sat(x, x0 int64) float64 {
	if x <= 0 {
		return 0
	}
	return float64(x) / float64(x+x0)
}

// impliedGemmDims returns the (M, N, K) dimensions of the matrix product
// the convolution lowers onto for each operation.
func impliedGemmDims(op conv.Op, cs tensor.ConvShape) (m, n, k int64) {
	out := cs.OutShape()
	crs := int64(cs.Filt.C) * int64(cs.Filt.R) * int64(cs.Filt.S)
	krs := int64(cs.Filt.K) * int64(cs.Filt.R) * int64(cs.Filt.S)
	pix := int64(out.H) * int64(out.W)
	switch op {
	case conv.Forward:
		return int64(cs.Filt.K), int64(cs.In.N) * pix, crs
	case conv.BackwardData:
		return int64(cs.In.C), int64(cs.In.N) * int64(cs.In.H) * int64(cs.In.W), krs
	default: // BackwardFilter
		return int64(cs.Filt.K), crs, int64(cs.In.N) * pix
	}
}

// fftModelGeometry mirrors the plan geometry of the conv package's FFT
// kernels: padded power-of-two planes for AlgoFFT, fixed 32x32 tiles for
// AlgoFFTTiling.
func fftModelGeometry(op conv.Op, algo conv.Algo, cs tensor.ConvShape) (p, q, tiles int64) {
	pp := cs.Params.Normalized()
	out := cs.OutShape()
	if algo == conv.AlgoFFTTiling {
		const tile = 32
		toH, toW := tile-cs.Filt.R+1, tile-cs.Filt.S+1
		var rows, cols int
		switch op {
		case conv.BackwardData:
			rows, cols = cs.In.H, cs.In.W
		default:
			rows, cols = out.H, out.W
		}
		return tile, tile, int64((rows+toH-1)/toH) * int64((cols+toW-1)/toW)
	}
	var rows, cols int
	switch op {
	case conv.BackwardData:
		rows = out.H + 2*(cs.Filt.R-1-pp.PadH)
		cols = out.W + 2*(cs.Filt.S-1-pp.PadW)
	default:
		rows = cs.In.H + 2*pp.PadH
		cols = cs.In.W + 2*pp.PadW
	}
	return int64(fftpkg.NextPow2(rows)), int64(fftpkg.NextPow2(cols)), 1
}

// ModelTime predicts the execution time of one convolution kernel call on
// this device: a roofline of algorithm FLOPs at an algorithm- and
// shape-dependent efficiency against minimal memory traffic, plus fixed
// per-launch overheads. Unsupported (op, algo, shape) combinations return
// 0 and false.
func (s Spec) ModelTime(op conv.Op, algo conv.Algo, cs tensor.ConvShape) (time.Duration, bool) {
	if !conv.Supported(op, algo, cs) {
		return 0, false
	}
	flops := float64(cs.FwdFlops()) // same MAC count for all three ops
	traffic := float64(cs.IOBytes())
	gm, gn, gk := impliedGemmDims(op, cs)
	nTot := int64(cs.In.N)
	out := cs.OutShape()
	work := nTot * int64(out.H) * int64(out.W) * int64(cs.Filt.K)
	// Occupancy floor: tiny kernels cannot fill the SM array.
	occ := sat(work, int64(s.SMs)*256)
	gen := s.gen()

	var eff float64
	launches := 1.0
	switch algo {
	case conv.AlgoDirect:
		eff = 0.08 * quant(gn, 128) * sat(gk, 64)
	case conv.AlgoImplicitGemm:
		eff = 0.34 * quant(gm, 32) * quant(gn, 128) * sat(gk, 256)
	case conv.AlgoImplicitPrecompGemm:
		eff = 0.46 * quant(gm, 32) * quant(gn, 128) * sat(gk, 128)
		if gen >= 7 {
			eff *= 1.1
		}
		launches = 2
	case conv.AlgoGemm:
		eff = 0.55 * quant(gm, 64) * quant(gn, 64) * sat(gk, 128)
		// The materialized lowering is written and re-read.
		traffic += 2 * 4 * float64(gk) * float64(gn)
		launches = 2
	case conv.AlgoFFT, conv.AlgoFFTTiling:
		p, q, tiles := fftModelGeometry(op, algo, cs)
		hw := q/2 + 1
		planeFlops := 2.5 * float64(p*q) * math.Log2(float64(p*q))
		c, k := int64(cs.In.C), int64(cs.Filt.K)
		transforms := float64(k*c)*planeFlops +
			float64(tiles)*float64(nTot*(c+k))*planeFlops
		pointwise := 8 * float64(tiles) * float64(nTot*k*c) * float64(p*hw)
		flops = transforms + pointwise
		// Spectra stream through memory once in each direction.
		traffic = float64(cs.IOBytes()) +
			2*8*float64(p*hw)*float64(tiles)*float64(nTot*(c+k)+0) +
			2*8*float64(p*hw)*float64(k*c)
		if algo == conv.AlgoFFT {
			eff = 0.30
			launches = 6
		} else {
			// Tile decomposition wastes halo work, so tiling never beats
			// the full-plane FFT on speed; it wins on workspace.
			eff = 0.26
			launches = 2 + float64(tiles)
		}
		if gen < 6 {
			eff *= 0.85
		}
		eff *= quant(gn, 64) // output-pixel quantization of the final store
	case conv.AlgoWinograd, conv.AlgoWinogradNonfused:
		var rows, cols int
		if op == conv.BackwardData {
			rows, cols = cs.In.H, cs.In.W
		} else {
			rows, cols = out.H, out.W
		}
		// Tile-size rule mirrors conv's winogradM: fused is F(2,3),
		// non-fused 5x5 is F(2,5), non-fused 3x3 steps up to F(6,3)
		// when both tiled extents reach 12.
		var m int
		if algo == conv.AlgoWinograd || cs.Filt.R != 3 {
			m = 2
		} else if rows >= 12 && cols >= 12 {
			m = 6
		} else {
			m = 4
		}
		a := int64(m + cs.Filt.R - 1)
		tiles := int64((rows+m-1)/m) * int64((cols+m-1)/m)
		c, k := int64(cs.In.C), int64(cs.Filt.K)
		gemm := 2 * float64(a*a) * float64(k*c) * float64(tiles*nTot)
		tfm := 4*float64(a*a*a)*float64(nTot*c*tiles) +
			4*float64(int64(m)*a*(a+int64(m)))*float64(nTot*k*tiles) +
			4*float64(a*a*int64(cs.Filt.R))*float64(k*c)
		flops = gemm + tfm
		if algo == conv.AlgoWinograd {
			eff = 0.50
			launches = 3
		} else {
			eff = 0.45
			launches = 8
			// Non-fused transforms are materialized through memory.
			traffic += 2 * 4 * float64(a*a) * (float64(k*c) + float64((c+k)*tiles*nTot))
		}
		eff *= quant(k, 32) * quant(tiles*nTot, 64) * sat(c, 64)
		if gen < 6 {
			eff *= 0.7
		}
	default:
		return 0, false
	}

	eff *= occ
	if eff <= 0 {
		return 0, false
	}
	compute := flops / (s.PeakFlops * eff)
	mem := traffic / s.MemBW
	sec := math.Max(compute, mem) + launches*s.LaunchOverhead.Seconds()
	return time.Duration(sec * float64(time.Second)), true
}

// MemBoundTime models a purely bandwidth-bound kernel (pooling,
// activation, normalization, elementwise) that moves the given bytes.
func (s Spec) MemBoundTime(bytes int64) time.Duration {
	sec := float64(bytes)/s.MemBW + s.LaunchOverhead.Seconds()
	return time.Duration(sec * float64(time.Second))
}

// GemmTime models a dense (m x k) x (k x n) SGEMM, used for
// fully-connected layers.
func (s Spec) GemmTime(m, n, k int64) time.Duration {
	if m <= 0 || n <= 0 || k <= 0 {
		return s.LaunchOverhead
	}
	eff := 0.6 * quant(m, 64) * quant(n, 64) * sat(k, 128) * sat(m*n, int64(s.SMs)*256)
	flops := 2 * float64(m) * float64(n) * float64(k)
	traffic := 4 * float64(m*k+k*n+m*n)
	sec := math.Max(flops/(s.PeakFlops*eff), traffic/s.MemBW) + s.LaunchOverhead.Seconds()
	return time.Duration(sec * float64(time.Second))
}
