// Package device models the GPUs of the paper's Table I. It provides:
//
//   - Spec: per-device hardware parameters (peak single-precision FLOP/s,
//     memory bandwidth, device memory, kernel-launch overhead);
//   - an analytical convolution-kernel time model used by the "model"
//     execution backend (see ModelTime), built from a roofline term per
//     algorithm plus per-call launch overheads and algorithm-specific
//     efficiency curves with tile-quantization effects;
//   - a simple device-memory accounting helper used by the memory
//     experiments (paper Fig. 12).
//
// Absolute GPU times are not claimed; the model reproduces the relative
// algorithm landscape the µ-cuDNN optimizers navigate: FFT amortizes
// filter transforms over the batch, Winograd wins on small kernels, GEMM
// variants are the low-workspace fallback, and per-call overhead penalizes
// very small micro-batches.
package device

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Spec describes one GPU model.
type Spec struct {
	Name string
	// PeakFlops is the peak single-precision throughput in FLOP/s.
	PeakFlops float64
	// MemBW is the device-memory bandwidth in bytes/s.
	MemBW float64
	// MemBytes is the device memory capacity.
	MemBytes int64
	// LaunchOverhead is the fixed cost per kernel launch.
	LaunchOverhead time.Duration
	// SMs is the number of streaming multiprocessors, used for the
	// occupancy floor of small problems.
	SMs int
}

// The evaluation devices of the paper (Table I). The K80 entries are per
// die (the board hosts two GK210 dies; frameworks address one at a time).
var (
	K80 = Spec{
		Name:           "K80",
		PeakFlops:      4.37e12,
		MemBW:          240e9,
		MemBytes:       12 << 30,
		LaunchOverhead: 8 * time.Microsecond,
		SMs:            13,
	}
	P100 = Spec{
		Name:           "P100-SXM2",
		PeakFlops:      10.6e12,
		MemBW:          732e9,
		MemBytes:       16 << 30,
		LaunchOverhead: 6 * time.Microsecond,
		SMs:            56,
	}
	V100 = Spec{
		Name:           "V100-SXM2",
		PeakFlops:      15.7e12,
		MemBW:          900e9,
		MemBytes:       16 << 30,
		LaunchOverhead: 5 * time.Microsecond,
		SMs:            80,
	}
)

// Devices lists the built-in device specs.
var Devices = []Spec{K80, P100, V100}

// ByName resolves a device spec by (case-insensitive, prefix-tolerant)
// name, e.g. "p100", "P100-SXM2", "v100".
func ByName(name string) (Spec, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, d := range Devices {
		dn := strings.ToLower(d.Name)
		if dn == n || strings.HasPrefix(dn, n) && n != "" {
			return d, nil
		}
	}
	names := make([]string, len(Devices))
	for i, d := range Devices {
		names[i] = d.Name
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("device: unknown device %q (have %s)", name, strings.Join(names, ", "))
}

// MemTracker accounts device-memory allocations, mirroring how a framework
// would allocate tensors and workspaces on a real GPU. It is not
// concurrency-safe; callers own synchronization.
type MemTracker struct {
	Cap  int64
	used int64
	peak int64
}

// NewMemTracker returns a tracker with the device's capacity.
func (s Spec) NewMemTracker() *MemTracker { return &MemTracker{Cap: s.MemBytes} }

// Alloc reserves n bytes, failing when capacity would be exceeded.
func (m *MemTracker) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("device: negative allocation %d", n)
	}
	if m.Cap > 0 && m.used+n > m.Cap {
		return fmt.Errorf("device: out of memory: used %d + %d > cap %d", m.used, n, m.Cap)
	}
	m.used += n
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Free releases n bytes.
func (m *MemTracker) Free(n int64) {
	m.used -= n
	if m.used < 0 {
		m.used = 0
	}
}

// Used returns the bytes currently allocated.
func (m *MemTracker) Used() int64 { return m.used }

// Peak returns the high-water mark.
func (m *MemTracker) Peak() int64 { return m.peak }
