package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) Result {
	t.Helper()
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestKnownOptimum(t *testing.T) {
	// minimize -x - 2y s.t. x + y <= 4, x <= 2, y <= 3  -> x=1? Check:
	// best is y=3, x=1 -> obj = -7.
	p := &Problem{
		C:   []float64{-1, -2},
		A:   [][]float64{{1, 1}, {1, 0}, {0, 1}},
		B:   []float64{4, 2, 3},
		Rel: []Relation{LE, LE, LE},
	}
	r := solveOK(t, p)
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	if math.Abs(r.Obj-(-7)) > 1e-9 {
		t.Fatalf("obj = %v, want -7", r.Obj)
	}
	if math.Abs(r.X[0]-1) > 1e-9 || math.Abs(r.X[1]-3) > 1e-9 {
		t.Fatalf("x = %v, want [1 3]", r.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// minimize x + y s.t. x + y = 2, x - y = 0 -> x=y=1, obj 2.
	p := &Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 1}, {1, -1}},
		B:   []float64{2, 0},
		Rel: []Relation{EQ, EQ},
	}
	r := solveOK(t, p)
	if r.Status != Optimal || math.Abs(r.Obj-2) > 1e-9 {
		t.Fatalf("status %v obj %v", r.Status, r.Obj)
	}
	if math.Abs(r.X[0]-1) > 1e-9 || math.Abs(r.X[1]-1) > 1e-9 {
		t.Fatalf("x = %v", r.X)
	}
}

func TestGEConstraints(t *testing.T) {
	// minimize 2x + 3y s.t. x + y >= 4, x >= 1 -> x=4? obj: put everything
	// into x: x=4, y=0 -> 8. (2 < 3 per unit).
	p := &Problem{
		C:   []float64{2, 3},
		A:   [][]float64{{1, 1}, {1, 0}},
		B:   []float64{4, 1},
		Rel: []Relation{GE, GE},
	}
	r := solveOK(t, p)
	if r.Status != Optimal || math.Abs(r.Obj-8) > 1e-9 {
		t.Fatalf("status %v obj %v x %v", r.Status, r.Obj, r.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		B:   []float64{1, 3},
		Rel: []Relation{LE, GE},
	}
	r := solveOK(t, p)
	if r.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", r.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		C:   []float64{-1},
		A:   [][]float64{{-1}},
		B:   []float64{1},
		Rel: []Relation{LE},
	}
	r := solveOK(t, p)
	if r.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", r.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// x >= 2 written as -x <= -2; minimize x -> 2.
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{-1}},
		B:   []float64{-2},
		Rel: []Relation{LE},
	}
	r := solveOK(t, p)
	if r.Status != Optimal || math.Abs(r.Obj-2) > 1e-9 {
		t.Fatalf("status %v obj %v", r.Status, r.Obj)
	}
}

func TestDegenerate(t *testing.T) {
	// Degenerate vertex at origin; Bland's rule must terminate.
	p := &Problem{
		C:   []float64{-1, -1, -1},
		A:   [][]float64{{1, 1, 0}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1}},
		B:   []float64{1, 1, 1, 1.5},
		Rel: []Relation{LE, LE, LE, LE},
	}
	r := solveOK(t, p)
	if r.Status != Optimal || math.Abs(r.Obj-(-1.5)) > 1e-9 {
		t.Fatalf("status %v obj %v", r.Status, r.Obj)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Fatal("empty problem must error")
	}
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Rel: []Relation{LE}}); err == nil {
		t.Fatal("ragged row must error")
	}
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}, Rel: []Relation{LE}}); err == nil {
		t.Fatal("mismatched B must error")
	}
}

func TestNoConstraints(t *testing.T) {
	// minimize x with x >= 0 -> 0.
	p := &Problem{C: []float64{1, 2}}
	r := solveOK(t, p)
	if r.Status != Optimal || r.Obj != 0 {
		t.Fatalf("status %v obj %v", r.Status, r.Obj)
	}
}

// Property: the returned solution is feasible and no random feasible point
// beats it.
func TestQuickOptimalityOnRandomLPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := &Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = rng.Float64()*4 - 2
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() // nonnegative rows with positive rhs keep it bounded-feasible
			}
			p.A = append(p.A, row)
			p.B = append(p.B, 1+rng.Float64()*3)
			p.Rel = append(p.Rel, LE)
		}
		// Ensure boundedness: add sum(x) <= 10.
		all := make([]float64, n)
		for j := range all {
			all[j] = 1
		}
		p.A = append(p.A, all)
		p.B = append(p.B, 10)
		p.Rel = append(p.Rel, LE)

		r, err := Solve(p)
		if err != nil || r.Status != Optimal {
			return false
		}
		// Feasibility.
		for i, row := range p.A {
			dot := 0.0
			for j := range row {
				dot += row[j] * r.X[j]
			}
			if dot > p.B[i]+1e-6 {
				return false
			}
		}
		for _, v := range r.X {
			if v < -1e-9 {
				return false
			}
		}
		// No sampled feasible point beats the optimum.
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 3
			}
			ok := true
			for i, row := range p.A {
				dot := 0.0
				for j := range row {
					dot += row[j] * x[j]
				}
				if dot > p.B[i] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			obj := 0.0
			for j := range x {
				obj += p.C[j] * x[j]
			}
			if obj < r.Obj-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("status strings")
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status string")
	}
}
