// Package lp implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    cᵀx
//	subject to  Aᵢx (<=|=|>=) bᵢ,   x >= 0.
//
// It is the LP engine underneath the 0-1 ILP solver (internal/ilp) that
// replaces GLPK in the paper's Workspace Division optimizer. Bland's rule
// guarantees termination; the implementation favours clarity and
// robustness over speed, which is ample for the paper's problem sizes
// (hundreds of variables, tens of constraints).
package lp

import (
	"fmt"
	"math"
)

// Relation is a constraint sense.
type Relation int

const (
	// LE is Aᵢx <= bᵢ.
	LE Relation = iota
	// GE is Aᵢx >= bᵢ.
	GE
	// EQ is Aᵢx = bᵢ.
	EQ
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Problem is a linear program over n nonnegative variables.
type Problem struct {
	C   []float64   // length n: objective (minimized)
	A   [][]float64 // m rows, each length n
	B   []float64   // length m
	Rel []Relation  // length m
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	// Iters is the total number of simplex pivots performed across both
	// phases — the per-solve cost metric the observability layer reports.
	Iters int
}

const eps = 1e-9

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("lp: empty objective")
	}
	if len(p.A) != len(p.B) || len(p.A) != len(p.Rel) {
		return fmt.Errorf("lp: inconsistent constraint counts: A=%d B=%d Rel=%d", len(p.A), len(p.B), len(p.Rel))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	return nil
}

// Solve runs the two-phase simplex method.
func Solve(p *Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := len(p.C)
	m := len(p.A)

	// Build the tableau: columns are [x (n)] [slack/surplus (m, some unused)]
	// [artificial (m, some unused)] [rhs].
	nSlack, nArt := 0, 0
	slackCol := make([]int, m)
	artCol := make([]int, m)
	for i := range p.A {
		switch p.Rel[i] {
		case LE, GE:
			slackCol[i] = nSlack
			nSlack++
		}
		b := p.B[i]
		rel := p.Rel[i]
		if b < 0 {
			// Row will be negated; LE becomes GE and vice versa.
			if rel == LE {
				rel = GE
			} else if rel == GE {
				rel = LE
			}
		}
		// After sign normalization a GE or EQ row needs an artificial; a LE
		// row's slack can start basic.
		if rel != LE {
			artCol[i] = nArt
			nArt++
		} else {
			artCol[i] = -1
		}
	}
	cols := n + nSlack + nArt + 1
	rhs := cols - 1
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, cols)
		sign := 1.0
		b := p.B[i]
		rel := p.Rel[i]
		if b < 0 {
			sign = -1
			b = -b
			if rel == LE {
				rel = GE
			} else if rel == GE {
				rel = LE
			}
		}
		for j := 0; j < n; j++ {
			t[i][j] = sign * p.A[i][j]
		}
		switch p.Rel[i] {
		case LE:
			t[i][n+slackCol[i]] = sign * 1
		case GE:
			t[i][n+slackCol[i]] = sign * -1
		}
		t[i][rhs] = b
		if rel == LE {
			// The (positive) slack is basic.
			basis[i] = n + slackCol[i]
		} else {
			t[i][n+nSlack+artCol[i]] = 1
			basis[i] = n + nSlack + artCol[i]
		}
	}

	// Phase 1: minimize the sum of artificials.
	pivots := 0
	if nArt > 0 {
		obj := make([]float64, cols)
		for j := n + nSlack; j < n+nSlack+nArt; j++ {
			obj[j] = 1
		}
		for i := 0; i < m; i++ {
			if basis[i] >= n+nSlack {
				// Reduced cost row: subtract basic artificial rows.
				for j := 0; j < cols; j++ {
					obj[j] -= t[i][j]
				}
			}
		}
		// Artificials start basic and may only leave: entering columns are
		// limited to structural and slack variables.
		st, its := iterate(t, basis, obj, n+nSlack)
		pivots += its
		if st == Unbounded {
			// Phase 1 objective is bounded below by 0; cannot happen.
			return Result{}, fmt.Errorf("lp: internal error: phase 1 unbounded")
		}
		sum := 0.0
		for i := 0; i < m; i++ {
			if basis[i] >= n+nSlack {
				sum += t[i][rhs]
			}
		}
		if sum > 1e-7 {
			return Result{Status: Infeasible, Iters: pivots}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if basis[i] < n+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; the artificial stays at zero. Harmless.
				continue
			}
		}
	}

	// Phase 2: original objective over structural + slack columns only.
	obj := make([]float64, cols)
	for j := 0; j < n; j++ {
		obj[j] = p.C[j]
	}
	// Express the objective in terms of the current basis.
	for i := 0; i < m; i++ {
		bj := basis[i]
		cb := 0.0
		if bj < n {
			cb = p.C[bj]
		}
		if cb != 0 {
			for j := 0; j < cols; j++ {
				obj[j] -= cb * t[i][j]
			}
		}
	}
	// Forbid artificial columns from re-entering.
	st, its := iterate(t, basis, obj, n+nSlack)
	pivots += its
	if st == Unbounded {
		return Result{Status: Unbounded, Iters: pivots}, nil
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = t[i][rhs]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.C[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Obj: objVal, Iters: pivots}, nil
}

// blandAfter is the pivot count after which iterate abandons Dantzig
// pricing for Bland's rule, guaranteeing termination on degenerate cycles.
const blandAfter = 2000

// iterate runs primal simplex pivots on tableau t with the given reduced-
// cost row, allowing entering columns < limit, and reports the status
// plus the number of pivots performed. Pricing is Dantzig (most negative
// reduced cost) for speed, falling back to Bland's rule (lowest-index)
// after blandAfter pivots to guarantee termination.
func iterate(t [][]float64, basis []int, obj []float64, limit int) (Status, int) {
	m := len(t)
	if m == 0 {
		return Optimal, 0
	}
	cols := len(t[0])
	rhs := cols - 1
	for iter := 0; ; iter++ {
		enter := -1
		if iter < blandAfter {
			most := -eps
			for j := 0; j < limit; j++ {
				if obj[j] < most {
					most = obj[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < limit; j++ {
				if obj[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal, iter
		}
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][rhs] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded, iter
		}
		pivot(t, basis, leave, enter)
		// Update the reduced-cost row.
		f := obj[enter]
		if f != 0 {
			for j := 0; j < cols; j++ {
				obj[j] -= f * t[leave][j]
			}
		}
	}
}

// pivot makes column j basic in row i.
func pivot(t [][]float64, basis []int, i, j int) {
	cols := len(t[0])
	pv := t[i][j]
	for k := 0; k < cols; k++ {
		t[i][k] /= pv
	}
	t[i][j] = 1 // exact
	for r := range t {
		if r == i {
			continue
		}
		f := t[r][j]
		if f == 0 {
			continue
		}
		for k := 0; k < cols; k++ {
			t[r][k] -= f * t[i][k]
		}
		t[r][j] = 0 // exact
	}
	basis[i] = j
}
