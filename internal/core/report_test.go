package core

import (
	"math/rand"
	"strings"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/flight"
	"ucudnn/internal/tensor"
)

func TestHandleRegistryRing(t *testing.T) {
	before := len(Handles())
	if before > handleRingSize {
		t.Fatalf("Handles() returned %d, more than the ring holds", before)
	}
	h := newTestHandle(t, cudnn.ModelOnlyBackend)
	if h.ID() <= 0 {
		t.Fatalf("handle id = %d, want positive", h.ID())
	}
	hs := Handles()
	if len(hs) == 0 || hs[len(hs)-1] != h {
		t.Fatalf("newest handle not last in Handles()")
	}
	// Overfill the ring: the oldest handles are evicted, order is kept.
	made := make([]*Handle, 0, handleRingSize+3)
	for i := 0; i < handleRingSize+3; i++ {
		made = append(made, newTestHandle(t, cudnn.ModelOnlyBackend))
	}
	hs = Handles()
	if len(hs) != handleRingSize {
		t.Fatalf("Handles() after overfill = %d, want %d", len(hs), handleRingSize)
	}
	for i, got := range hs {
		want := made[len(made)-handleRingSize+i]
		if got != want {
			t.Fatalf("Handles()[%d] = handle %d, want %d", i, got.ID(), want.ID())
		}
	}
	for i := 1; i < len(hs); i++ {
		if hs[i].ID() != hs[i-1].ID()+1 {
			t.Fatalf("ids not consecutive: %d then %d", hs[i-1].ID(), hs[i].ID())
		}
	}
}

func TestHandleReport(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelBackend, WithWorkspaceLimit(1<<20),
		WithAlgoFilter(func(op conv.Op, a conv.Algo) bool { return a == conv.AlgoGemm }))
	xd, wd, cd, yd, cs := smallConv(10)
	rng := rand.New(rand.NewSource(5))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(12, 8, 3, 3)
	w.Randomize(rng, 0.5)
	y := tensor.NewShaped(cs.OutShape())
	algo, _ := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 1<<20)
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, algo, nil, 0, yd, y); err != nil {
		t.Fatal(err)
	}
	r := h.Report()
	if r.ID != h.ID() || r.Mode != "WR" || r.Policy != PolicyPowerOfTwo.String() {
		t.Fatalf("report header = %+v", r)
	}
	if r.Device == "" {
		t.Fatal("report device empty")
	}
	if r.WorkspaceLimit != 1<<20 || r.OptTimeNS <= 0 || r.ArenaBytes <= 0 {
		t.Fatalf("report accounting = %+v", r)
	}
	if len(r.Plans) != 1 {
		t.Fatalf("report plans = %d, want 1", len(r.Plans))
	}
	p := r.Plans[0]
	if !strings.HasPrefix(p.Kernel, "Forward") || p.Divisions < 1 || p.Config == "" {
		t.Fatalf("plan row = %+v", p)
	}
	if p.LimitBytes != 1<<20 || p.WorkspaceBytes <= 0 || p.WorkspaceBytes > p.LimitBytes {
		t.Fatalf("plan workspace accounting = %+v", p)
	}
	if p.Share <= 0 || p.Share > 1 {
		t.Fatalf("plan share = %g", p.Share)
	}
}

func TestHandleReportWD(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelOnlyBackend, WithWD(4<<20))
	xd, wd, cd, yd, _ := smallConv(8)
	if _, err := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.FinalizeRegistration(); err != nil {
		t.Fatal(err)
	}
	r := h.Report()
	if r.Mode != "WD" || r.TotalWorkspaceLimit != 4<<20 {
		t.Fatalf("WD report header = %+v", r)
	}
	if len(r.Plans) != 1 || r.Plans[0].LimitBytes != 4<<20 {
		t.Fatalf("WD plan rows = %+v", r.Plans)
	}
}

// TestExecuteFlightEvents drives a real plan with a fresh recorder
// installed and checks the execution path's event stream: launch,
// per-micro-batch kernels, finish — with renderable text.
func TestExecuteFlightEvents(t *testing.T) {
	prev := flight.Active()
	defer flight.Install(prev)
	flight.Enable(1024)

	// Pin the universe to GEMM so the plan needs real workspace (and the
	// arena therefore grows) regardless of what the optimizer prefers.
	h := newTestHandle(t, cudnn.ModelBackend, WithWorkspaceLimit(1<<20),
		WithAlgoFilter(func(op conv.Op, a conv.Algo) bool { return a == conv.AlgoGemm }))
	xd, wd, cd, yd, cs := smallConv(10)
	rng := rand.New(rand.NewSource(6))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(12, 8, 3, 3)
	w.Randomize(rng, 0.5)
	y := tensor.NewShaped(cs.OutShape())
	algo, _ := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 1<<20)
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, algo, nil, 0, yd, y); err != nil {
		t.Fatal(err)
	}

	byName := map[string][]flight.Event{}
	for _, e := range flight.Events(0) {
		byName[e.Name()] = append(byName[e.Name()], e)
	}
	launches := byName[string(EvKernelLaunch)]
	if len(launches) != 1 {
		t.Fatalf("kernel launch events = %d, want 1", len(launches))
	}
	l := launches[0]
	if l.A != h.ID() || conv.Op(l.B) != conv.Forward || l.C < 1 || l.D <= 0 {
		t.Fatalf("launch event = %+v (%s)", l, l.Text())
	}
	if !strings.Contains(l.Text(), "op=Forward") {
		t.Fatalf("launch text = %q", l.Text())
	}
	finishes := byName[string(EvKernelFinish)]
	if len(finishes) != 1 || finishes[0].C != 1 || finishes[0].D <= 0 {
		t.Fatalf("finish events = %+v", finishes)
	}
	micro := byName[string(EvMicroKernel)]
	if int64(len(micro)) != l.C {
		t.Fatalf("micro-kernel events = %d, launch divisions = %d", len(micro), l.C)
	}
	var covered int64
	for _, e := range micro {
		if e.D != covered {
			t.Fatalf("micro offsets out of order: %+v", micro)
		}
		covered += e.C
	}
	if covered != int64(cs.In.N) {
		t.Fatalf("micro batches cover %d samples, want %d", covered, cs.In.N)
	}
	if len(byName[string(EvArenaGrow)]) == 0 {
		t.Fatal("no arena-grow event recorded")
	}
	g := byName[string(EvArenaGrow)][0]
	if g.B != g.C {
		t.Fatalf("unfaulted arena grant cut: %s", g.Text())
	}
	if !strings.Contains(g.Text(), "granted=") {
		t.Fatalf("arena text = %q", g.Text())
	}
	if len(byName[string(EvCacheMiss)]) == 0 {
		t.Fatal("no cache-miss event from first benchmark pass")
	}
}

func TestStageCodeRoundTrip(t *testing.T) {
	for i, name := range fallbackStages {
		if got := stageCode(name); got != int64(i) {
			t.Errorf("stageCode(%q) = %d, want %d", name, got, i)
		}
	}
	if stageCode("nope") != -1 {
		t.Error("unknown stage did not map to -1")
	}
	e := flight.Event{A: 3, B: 1, C: int64(conv.Forward), D: 1}
	k, ok := flight.Lookup(EvFallback)
	if !ok {
		t.Fatal("EvFallback not registered")
	}
	e.Kind = k
	if want := "handle=3 stage=pareto op=Forward ok=1"; e.Text() != want {
		t.Fatalf("fallback text = %q, want %q", e.Text(), want)
	}
}

func TestEventFormatters(t *testing.T) {
	cases := []struct {
		name       flight.Name
		a, b, c, d int64
		want       string
	}{
		{EvKernelLaunch, 1, int64(conv.Forward), 4, 2048, "handle=1 op=Forward divisions=4 ws=2048"},
		{EvKernelFinish, 1, int64(conv.BackwardData), 1, 99, "handle=1 op=BackwardData ok=1 sim_ns=99"},
		{EvMicroKernel, 2, int64(conv.AlgoGemm), 8, 16, "handle=2 algo=" + conv.AlgoGemm.String() + " batch=8 offset=16"},
		{EvArenaGrow, 1, 100, 50, 200, "handle=1 requested=100 granted=50 arena=200"},
		{EvFallback, 1, 3, int64(conv.Forward), 1, "handle=1 stage=floor op=Forward ok=1"},
		{EvFallback, 1, 9, int64(conv.Forward), 0, "handle=1 stage=? op=Forward ok=0"},
		{EvCacheHit, 12, 0, 0, 0, "entries=12"},
	}
	for _, tc := range cases {
		k, ok := flight.Lookup(tc.name)
		if !ok {
			t.Fatalf("%s not registered", tc.name)
		}
		e := flight.Event{Kind: k, A: tc.a, B: tc.b, C: tc.c, D: tc.d}
		if e.Text() != tc.want {
			t.Errorf("%s text = %q, want %q", tc.name, e.Text(), tc.want)
		}
	}
}
