package core

import (
	"fmt"
	"sort"
	"time"
)

// ScoredConfig is a configuration annotated with its execution time and
// shared-slot workspace requirement.
type ScoredConfig struct {
	Config    Config
	Time      time.Duration
	Workspace int64
}

// paretoPrune returns the subset of entries not dominated in the
// (time, workspace) plane (paper §III-C1, "desirable configurations"):
// entry a dominates b when a is no slower and needs no more workspace.
// Exact-duplicate costs collapse to one representative. The result is
// sorted by ascending time (so descending workspace).
func paretoPrune(entries []ScoredConfig) []ScoredConfig {
	if len(entries) == 0 {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Time != entries[j].Time {
			return entries[i].Time < entries[j].Time
		}
		return entries[i].Workspace < entries[j].Workspace
	})
	out := entries[:0]
	bestWS := int64(-1)
	for _, e := range entries {
		if bestWS >= 0 && e.Workspace >= bestWS {
			continue // dominated by an earlier (faster) entry
		}
		out = append(out, e)
		bestWS = e.Workspace
	}
	return append([]ScoredConfig(nil), out...)
}

// DesirableSet computes kernel k's desirable-configuration set: the Pareto
// front over all configurations whose micro-batch sizes come from the
// policy's candidates and whose workspace fits wsLimit (for WD, the
// network-wide budget). The dynamic program extends the WR recurrence to
// carry whole Pareto fronts:
//
//	WD'(n) = P( C1(n) ∪ { WD'(n - n') ⊕ C1(n') } )
//
// The WR optimum is always an element of the result (the paper's
// consistency property), which the tests assert.
func DesirableSet(b *Bencher, k Kernel, wsLimit int64, policy Policy) ([]ScoredConfig, error) {
	optStart := time.Now() //ucudnn:allow detlint -- timing feeds the desirableSeconds metric only, never the DP
	defer b.m.desirableSeconds.ObserveSince(optStart)
	n := k.Shape.In.N
	sizes := policy.CandidateSizes(n)
	perfs := b.PerfsForSizes(k, sizes)

	// Single micro-configurations per size, already Pareto-pruned.
	c1 := make(map[int][]ScoredConfig, len(sizes))
	for _, m := range sizes {
		var opts []ScoredConfig
		for _, p := range perfs[m] {
			if p.Memory > wsLimit {
				continue
			}
			opts = append(opts, ScoredConfig{
				Config:    Config{{BatchSize: m, Algo: p.Algo}},
				Time:      p.Time,
				Workspace: p.Memory,
			})
		}
		c1[m] = paretoPrune(opts)
	}

	// Coin-change style enumeration: processing candidate sizes in a fixed
	// outer order generates each multiset of micro-batches exactly once.
	states := int64(0)
	fronts := make([][]ScoredConfig, n+1)
	fronts[0] = []ScoredConfig{{Config: Config{}, Time: 0, Workspace: 0}}
	for _, m := range sizes {
		opts := c1[m]
		if len(opts) == 0 {
			continue
		}
		for i := m; i <= n; i++ {
			prev := fronts[i-m]
			if len(prev) == 0 {
				continue
			}
			// Generate candidates lazily on cost, materialize survivors.
			type lazy struct {
				prevIdx, optIdx int
			}
			cands := make([]ScoredConfig, len(fronts[i]), len(fronts[i])+len(prev)*len(opts))
			copy(cands, fronts[i])
			backing := make([]lazy, len(fronts[i]), cap(cands))
			states += int64(len(prev)) * int64(len(opts))
			for pi := range prev {
				for oi := range opts {
					// Workspace is shared across the kernel's sequential
					// micro-batches: the slot is the maximum requirement.
					ws := prev[pi].Workspace
					if opts[oi].Workspace > ws {
						ws = opts[oi].Workspace
					}
					cands = append(cands, ScoredConfig{
						Time:      prev[pi].Time + opts[oi].Time,
						Workspace: ws,
					})
					backing = append(backing, lazy{prevIdx: pi + 1, optIdx: oi})
				}
			}
			// Prune on cost only; indices track provenance for
			// materialization.
			idx := make([]int, len(cands))
			for j := range idx {
				idx[j] = j
			}
			sort.Slice(idx, func(a, b int) bool {
				ca, cb := cands[idx[a]], cands[idx[b]]
				if ca.Time != cb.Time {
					return ca.Time < cb.Time
				}
				return ca.Workspace < cb.Workspace
			})
			var next []ScoredConfig
			bestWS := int64(-1)
			for _, j := range idx {
				if bestWS >= 0 && cands[j].Workspace >= bestWS {
					continue
				}
				bestWS = cands[j].Workspace
				sc := cands[j]
				if j < len(fronts[i]) || backing[j].prevIdx == 0 {
					// Pre-existing, already materialized.
					sc.Config = cands[j].Config
				} else {
					p := prev[backing[j].prevIdx-1]
					cfg := make(Config, len(p.Config)+1)
					copy(cfg, p.Config)
					cfg[len(p.Config)] = opts[backing[j].optIdx].Config[0]
					sc.Config = cfg
				}
				next = append(next, sc)
			}
			fronts[i] = next
		}
	}
	b.m.desirableStates.Add(states)
	if len(fronts[n]) == 0 {
		return nil, fmt.Errorf("core: no configuration of %v fits %d bytes under %v", k, wsLimit, policy)
	}
	b.m.desirableFront.Observe(float64(len(fronts[n])))
	return fronts[n], nil
}
