package core

import (
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
)

// Golden anchors: the paper-facing results in EXPERIMENTS.md depend on
// these exact planning outcomes. The device model is deterministic, so
// any drift here silently changes every figure — fail loudly instead.

func TestGoldenConv2PowerOfTwoPlan(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(256)}
	plan, err := OptimizeWR(b, k, 64<<20, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 9 configuration: FFT over eight micro-batches of 32.
	want := "<FFT@32, FFT@32, FFT@32, FFT@32, FFT@32, FFT@32, FFT@32, FFT@32>"
	if got := plan.Config.String(); got != want {
		t.Fatalf("conv2 powerOfTwo plan drifted:\n got %s\nwant %s", got, want)
	}
	if ws := plan.Workspace >> 20; ws < 40 || ws > 50 {
		t.Fatalf("conv2 powerOfTwo workspace %d MiB outside [40,50] (paper: 48.9)", ws)
	}
}

func TestGoldenConv2UndividedIsGemm(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(256)}
	plan, err := OptimizeWR(b, k, 64<<20, PolicyUndivided)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config.String() != "<GEMM@256>" {
		t.Fatalf("undivided conv2 plan drifted: %v", plan.Config)
	}
}

func TestGoldenConv2BestAlgoIsFFT(t *testing.T) {
	h := cudnn.NewHandle(modelBencher().h.Device(), cudnn.ModelOnlyBackend)
	p, err := h.PickAlgo(conv.Forward, conv2Shape(256), cudnn.PreferFastest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algo != conv.AlgoFFT {
		t.Fatalf("conv2 best algorithm drifted: %v", p.Algo)
	}
	// Workspace anchor: hundreds of MiB (paper: 213 MiB; model: ~280 MiB).
	if ws := p.Memory >> 20; ws < 150 || ws > 400 {
		t.Fatalf("conv2 FFT workspace %d MiB outside [150,400]", ws)
	}
}

// The headline speedups must stay within bands bracketing the paper's
// numbers (exact values are model-dependent; bands catch regressions).
func TestGoldenSpeedupBands(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(256)}
	undiv, err := OptimizeWR(b, k, 64<<20, PolicyUndivided)
	if err != nil {
		t.Fatal(err)
	}
	all, err := OptimizeWR(b, k, 64<<20, PolicyAll)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(undiv.Time) / float64(all.Time)
	if speedup < 2.0 || speedup > 6.0 {
		t.Fatalf("conv2 WR(all) speedup %.2f outside [2,6] (paper: 2.33)", speedup)
	}
}
