package core

import (
	"sort"
	"sync"
)

// This file is the live-introspection surface behind the debug server's
// /debug/ucudnn/plan endpoint: a bounded registry of recently created
// handles, and a structured per-handle report of the paper's §IV-B
// table — per-kernel chosen algorithm, micro-batch division, and
// workspace share against the budget — taken from the running process
// instead of a finished benchmark log.

// handleRingSize bounds how many handles the registry retains. A ring
// (rather than an unbounded list) keeps long test runs from pinning
// every handle's multi-MiB workspace arena in memory; a live process
// inspecting itself cares about the handles it is currently executing.
const handleRingSize = 16

var (
	handleRegMu sync.Mutex
	handleSeq   int64
	handleRing  [handleRingSize]*Handle
)

// registerHandle assigns h its process-wide id and notes it in the
// ring; called once from New.
func registerHandle(h *Handle) {
	handleRegMu.Lock()
	defer handleRegMu.Unlock()
	handleSeq++
	h.id = handleSeq
	handleRing[(handleSeq-1)%handleRingSize] = h
}

// Handles returns the most recently created µ-cuDNN handles, oldest
// first (bounded to the last handleRingSize).
func Handles() []*Handle {
	handleRegMu.Lock()
	defer handleRegMu.Unlock()
	lo := handleSeq - handleRingSize
	if lo < 0 {
		lo = 0
	}
	out := make([]*Handle, 0, handleSeq-lo)
	for s := lo + 1; s <= handleSeq; s++ {
		out = append(out, handleRing[(s-1)%handleRingSize])
	}
	return out
}

// ID returns the handle's process-wide creation index (1-based); flight
// events carry it as their handle argument.
func (h *Handle) ID() int64 { return h.id }

// PlanReport is one kernel's row of the live plan table.
type PlanReport struct {
	// Kernel is the kernel identity, "Op[shape]".
	Kernel string `json:"kernel"`
	// Config is the micro-batched configuration, "<algo@n, ...>".
	Config string `json:"config"`
	// Divisions is the number of micro-batches in the configuration.
	Divisions int `json:"divisions"`
	// PredictedNS is the optimizer's predicted time for the whole
	// configuration (0 for plans adopted by the degradation ladder,
	// which does not re-benchmark).
	PredictedNS int64 `json:"predicted_ns"`
	// WorkspaceBytes is the configuration's workspace requirement.
	WorkspaceBytes int64 `json:"workspace_bytes"`
	// LimitBytes is the budget the kernel was optimized under: the
	// per-kernel limit in WR mode, the network-wide budget in WD mode.
	LimitBytes int64 `json:"limit_bytes"`
	// Share is WorkspaceBytes / LimitBytes (0 when the limit is 0).
	Share float64 `json:"share"`
}

// HandleReport is a point-in-time snapshot of one handle's
// configuration and decided plans.
type HandleReport struct {
	ID                  int64        `json:"id"`
	Mode                string       `json:"mode"`
	Policy              string       `json:"policy"`
	Device              string       `json:"device"`
	WorkspaceLimit      int64        `json:"workspace_limit_bytes"`
	TotalWorkspaceLimit int64        `json:"total_workspace_limit_bytes,omitempty"`
	OptTimeNS           int64        `json:"opt_time_ns"`
	DegradedPlans       int          `json:"degraded_plans"`
	ArenaBytes          int64        `json:"arena_bytes"`
	Plans               []PlanReport `json:"plans"`
}

// Report snapshots the handle's live plan table, sorted by kernel.
func (h *Handle) Report() HandleReport {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := HandleReport{
		ID:                  h.id,
		Mode:                h.opts.Mode.String(),
		Policy:              h.opts.Policy.String(),
		Device:              h.inner.Device().Name,
		WorkspaceLimit:      h.opts.WorkspaceLimit,
		TotalWorkspaceLimit: h.opts.TotalWorkspaceLimit,
		OptTimeNS:           h.optTime.Nanoseconds(),
		DegradedPlans:       h.degraded,
		ArenaBytes:          int64(len(h.wsArena)) * 4,
		Plans:               make([]PlanReport, 0, len(h.plans)),
	}
	keys := make([]string, 0, len(h.plans))
	for key := range h.plans {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		p := h.plans[key].plan
		limit := h.opts.WorkspaceLimit
		if h.opts.Mode == WD {
			limit = h.opts.TotalWorkspaceLimit
		}
		if l, ok := h.limits[key]; ok {
			limit = l
		}
		share := 0.0
		if limit > 0 {
			share = float64(p.Workspace) / float64(limit)
		}
		r.Plans = append(r.Plans, PlanReport{
			Kernel:         p.Kernel.String(),
			Config:         p.Config.String(),
			Divisions:      len(p.Config),
			PredictedNS:    p.Time.Nanoseconds(),
			WorkspaceBytes: p.Workspace,
			LimitBytes:     limit,
			Share:          share,
		})
	}
	sort.Slice(r.Plans, func(i, j int) bool { return r.Plans[i].Kernel < r.Plans[j].Kernel })
	return r
}
