package core

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"ucudnn/internal/causal"
	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/faults"
	"ucudnn/internal/flight"
	"ucudnn/internal/obs"
	"ucudnn/internal/prof"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
)

// VirtualAlgo is the algorithm identifier µ-cuDNN hands back from the
// Get*/Find* calls (§III-D): frameworks pass it to Convolution*, where the
// handle substitutes the optimized micro-batched configuration. Its
// workspace requirement is reported as zero because µ-cuDNN manages
// workspaces itself.
const VirtualAlgo conv.Algo = -1

// Mode selects the workspace policy of §III-A.
type Mode int

const (
	// WR (Workspace Reuse) optimizes each kernel independently under a
	// per-kernel workspace limit.
	WR Mode = iota
	// WD (Workspace Division) optimizes all registered kernels jointly
	// under a network-wide workspace budget.
	WD
)

func (m Mode) String() string {
	if m == WD {
		return "WD"
	}
	return "WR"
}

// DefaultWorkspaceLimit is Caffe2's per-kernel default (64 MiB), used when
// neither the framework nor the environment specifies a limit.
const DefaultWorkspaceLimit = 64 << 20

// Options configure a µ-cuDNN handle.
type Options struct {
	// Policy is the batch-size policy (default PolicyPowerOfTwo).
	Policy Policy
	// Mode selects WR or WD (default WR).
	Mode Mode
	// WorkspaceLimit is the per-kernel limit for WR and for kernels that
	// bypass WD registration; frameworks that pass an explicit limit
	// through Get*Algorithm override it per kernel.
	WorkspaceLimit int64
	// TotalWorkspaceLimit is the network-wide budget for WD.
	TotalWorkspaceLimit int64
	// BlobReserve carves activation (blob) memory out of the WD budget,
	// making TotalWorkspaceLimit a joint pool: the ILP assigns kernel
	// workspaces only from what the out-of-core scheduler's peak working
	// set leaves behind. Ignored in WR mode, where the caller folds the
	// blob peak into the per-kernel limit instead.
	BlobReserve int64
	// Workers is the parallel micro-benchmark width (§III-D's multi-GPU
	// evaluation; default 1).
	Workers int
	// CachePath optionally points at the file benchmark database.
	CachePath string
	// Metrics, when non-nil, receives the handle's observability metrics
	// (algorithm selections, cache traffic, optimizer costs). Nil disables
	// collection at no cost beyond a nil check per event.
	Metrics *obs.Registry
	// MetricsPath is where Flush exports the metrics ("-" for stdout,
	// ".prom" suffix for Prometheus text exposition, summary table
	// otherwise). Setting it without Metrics creates a private registry.
	MetricsPath string
	// TracePath, when set, attaches a timeline recorder to the wrapped
	// handle; Flush exports it as Chrome trace-event JSON.
	TracePath string
	// AlgoFilter, when non-nil, restricts the algorithm universe the
	// optimizers and the degradation ladder may choose from; it is also
	// installed on the wrapped cuDNN handle so benchmark enumeration
	// agrees. The differential test harness uses it to pin every
	// execution mode to one bit-exact algorithm family.
	AlgoFilter func(conv.Op, conv.Algo) bool
}

// Option mutates Options.
type Option func(*Options)

// WithPolicy sets the batch-size policy.
func WithPolicy(p Policy) Option { return func(o *Options) { o.Policy = p } }

// WithWorkspaceLimit sets the per-kernel workspace limit (WR).
func WithWorkspaceLimit(bytes int64) Option {
	return func(o *Options) { o.WorkspaceLimit = bytes }
}

// WithWD enables Workspace Division with a total budget.
func WithWD(totalBytes int64) Option {
	return func(o *Options) {
		o.Mode = WD
		o.TotalWorkspaceLimit = totalBytes
	}
}

// WithBlobReserve reserves bytes of the WD joint pool for activation
// blobs (the out-of-core scheduler's peak working set); kernel
// workspaces draw from the remainder.
func WithBlobReserve(bytes int64) Option {
	return func(o *Options) { o.BlobReserve = bytes }
}

// WithWorkers sets the parallel benchmark width.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithCachePath sets the benchmark database file.
func WithCachePath(path string) Option { return func(o *Options) { o.CachePath = path } }

// WithMetrics points the handle's instrumentation at registry r.
func WithMetrics(r *obs.Registry) Option { return func(o *Options) { o.Metrics = r } }

// WithMetricsPath sets where Flush exports metrics, creating a private
// registry if none was supplied.
func WithMetricsPath(path string) Option { return func(o *Options) { o.MetricsPath = path } }

// WithTracePath enables timeline recording and sets where Flush exports
// the Chrome trace.
func WithTracePath(path string) Option { return func(o *Options) { o.TracePath = path } }

// WithAlgoFilter restricts algorithm selection to those f admits (nil
// removes the restriction). The filter is installed on the wrapped cuDNN
// handle by New, so Find*/benchmark enumeration and plan optimization
// see the same universe.
func WithAlgoFilter(f func(conv.Op, conv.Algo) bool) Option {
	return func(o *Options) { o.AlgoFilter = f }
}

// FromEnv applies the paper's environment-variable configuration:
// UCUDNN_BATCH_SIZE_POLICY, UCUDNN_WORKSPACE_LIMIT (bytes),
// UCUDNN_TOTAL_WORKSPACE_SIZE (bytes; enables WD),
// UCUDNN_BENCHMARK_DB_PATH and UCUDNN_WORKERS — plus the observability
// outputs UCUDNN_METRICS and UCUDNN_TRACE (file paths exported by Flush;
// "-" writes the metrics summary to stdout), so the Caffe-style
// "swap the handle type" integration stays transparent.
func FromEnv() Option {
	return func(o *Options) {
		if v := os.Getenv("UCUDNN_BATCH_SIZE_POLICY"); v != "" {
			if p, err := ParsePolicy(v); err == nil {
				o.Policy = p
			}
		}
		if v := os.Getenv("UCUDNN_WORKSPACE_LIMIT"); v != "" {
			if b, err := strconv.ParseInt(v, 10, 64); err == nil && b > 0 {
				o.WorkspaceLimit = b
			}
		}
		if v := os.Getenv("UCUDNN_TOTAL_WORKSPACE_SIZE"); v != "" {
			if b, err := strconv.ParseInt(v, 10, 64); err == nil && b > 0 {
				o.Mode = WD
				o.TotalWorkspaceLimit = b
			}
		}
		if v := os.Getenv("UCUDNN_BLOB_RESERVE"); v != "" {
			if b, err := strconv.ParseInt(v, 10, 64); err == nil && b > 0 {
				o.BlobReserve = b
			}
		}
		if v := os.Getenv("UCUDNN_BENCHMARK_DB_PATH"); v != "" {
			o.CachePath = v
		}
		if v := os.Getenv("UCUDNN_WORKERS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				o.Workers = n
			}
		}
		if v := os.Getenv("UCUDNN_METRICS"); v != "" {
			o.MetricsPath = v
		}
		if v := os.Getenv("UCUDNN_TRACE"); v != "" {
			o.TracePath = v
		}
	}
}

type execPlan struct {
	plan Plan
}

// Handle is µ-cuDNN's drop-in replacement for the cuDNN handle
// (UcudnnHandle_t in the paper). It exposes the same convolution call
// surface as *cudnn.Handle; all other cuDNN functionality is reached
// through Inner(), the Go analogue of the paper's cast operator.
type Handle struct {
	inner *cudnn.Handle
	// id is the process-wide creation index assigned by registerHandle;
	// flight events carry it so a dump with several handles stays legible.
	id      int64
	opts    Options
	cache   *Cache
	bencher *Bencher
	m       *metricSet
	tracer  *trace.Recorder

	// execMu serializes kernel execution on the handle (one stream, as in
	// cuDNN): every plan's workspace is carved from the shared wsArena, so
	// two overlapping Convolution* calls must not run their kernels at the
	// same time.
	execMu sync.Mutex

	mu         sync.Mutex
	plans      map[string]*execPlan
	limits     map[string]int64
	registered []Kernel
	regSet     map[string]bool
	regClosed  bool
	wdResult   *WDResult
	optTime    time.Duration
	// wsArena backs every plan's workspace. Guarded by mu (growArena may
	// reallocate it); execute snapshots the slice under mu and uses the
	// snapshot under execMu, so device-memory accounting stays per kernel
	// segment while the host buffer is shared.
	wsArena []float32
	// degraded counts plans adopted by the degradation ladder (guarded by
	// mu; mirrored into the ucudnn_fault_degraded_plans gauge).
	degraded int
	// snapBuf backs execute's pre-run output snapshot for beta != 0 calls
	// (guarded by execMu), so fallback retries can restore the blended
	// output without allocating per call.
	snapBuf []float32
}

// growArena ensures the arena covers bytes; callers hold h.mu. An armed
// arena-growth fault shrinks or denies the request — the arena then stays
// smaller than a plan's workspace, and execute's kernels degrade to fewer
// strips or fail into the degradation ladder.
func (h *Handle) growArena(bytes int64) {
	granted := faults.Grant(faults.PointArenaGrow, bytes)
	n := int((granted + 3) / 4)
	grew := len(h.wsArena) < n
	if grew {
		h.wsArena = make([]float32, n)
	}
	if grew || granted != bytes {
		flight.Rec(evArenaGrow, h.id, bytes, granted, int64(len(h.wsArena))*4)
	}
}

// New wraps a cuDNN handle. The returned µ-cuDNN handle is safe for
// concurrent use.
func New(inner *cudnn.Handle, opts ...Option) (*Handle, error) {
	o := Options{
		Policy:         PolicyPowerOfTwo,
		WorkspaceLimit: DefaultWorkspaceLimit,
		Workers:        1,
	}
	for _, f := range opts {
		f(&o)
	}
	if o.Mode == WD && o.TotalWorkspaceLimit <= 0 {
		return nil, fmt.Errorf("core: WD mode requires a positive total workspace limit")
	}
	if o.BlobReserve < 0 {
		return nil, fmt.Errorf("core: negative blob reserve %d", o.BlobReserve)
	}
	if o.Mode == WD && o.BlobReserve >= o.TotalWorkspaceLimit {
		return nil, fmt.Errorf("core: blob reserve %d consumes the whole joint pool of %d bytes", o.BlobReserve, o.TotalWorkspaceLimit)
	}
	if o.Metrics == nil && o.MetricsPath != "" {
		o.Metrics = obs.NewRegistry()
	}
	cache, err := NewCache(o.CachePath)
	if err != nil {
		return nil, err
	}
	bencher := NewBencher(inner, cache, o.Workers)
	bencher.SetMetrics(o.Metrics)
	h := &Handle{
		inner:   inner,
		opts:    o,
		cache:   cache,
		bencher: bencher,
		m:       bencher.m,
		plans:   map[string]*execPlan{},
		limits:  map[string]int64{},
		regSet:  map[string]bool{},
	}
	if o.TracePath != "" {
		h.tracer = trace.New()
		inner.SetTrace(h.tracer)
	}
	if o.AlgoFilter != nil {
		inner.SetAlgoFilter(o.AlgoFilter)
	}
	registerHandle(h)
	return h, nil
}

// Inner returns the wrapped cuDNN handle for non-convolution calls.
func (h *Handle) Inner() *cudnn.Handle { return h.inner }

// Options returns the handle's configuration.
func (h *Handle) Options() Options { return h.opts }

// Cache returns the benchmark cache.
func (h *Handle) Cache() *Cache { return h.cache }

// Metrics returns the handle's metrics registry (nil when observability
// is disabled).
func (h *Handle) Metrics() *obs.Registry { return h.opts.Metrics }

// TraceRecorder returns the timeline recorder attached via TracePath
// (nil when tracing is disabled). Attach it to a dnn.Context's Trace
// field to add per-layer spans alongside the kernel spans.
func (h *Handle) TraceRecorder() *trace.Recorder {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tracer
}

// SetTraceRecorder attaches (or, with nil, detaches) a timeline
// recorder at runtime: the inner handle records every kernel charge to
// it, and the debug server's timeline endpoint picks it up through
// TraceRecorder. ucudnn-trace uses this to scope recording to the
// measured iterations while keeping the live endpoint populated.
func (h *Handle) SetTraceRecorder(r *trace.Recorder) {
	h.mu.Lock()
	h.tracer = r
	h.mu.Unlock()
	h.inner.SetTrace(r)
}

// Flush exports the configured observability outputs: metrics to
// Options.MetricsPath and the timeline to Options.TracePath. Framework
// integrations call it once at process exit (the examples do); paths
// that are unset are skipped, so Flush is always safe to call.
func (h *Handle) Flush() error {
	flight.SyncMetrics(h.opts.Metrics)
	if err := h.opts.Metrics.WriteFile(h.opts.MetricsPath); err != nil {
		return err
	}
	if h.tracer != nil && h.opts.TracePath != "" {
		f, err := os.Create(h.opts.TracePath)
		if err != nil {
			return fmt.Errorf("core: writing trace: %w", err)
		}
		defer f.Close()
		if err := h.tracer.WriteChrome(f); err != nil {
			return fmt.Errorf("core: writing trace: %w", err)
		}
	}
	return nil
}

// OptimizationTime returns the cumulative time spent benchmarking kernels
// and solving the DP/ILP (the paper's §IV-B optimization-cost metric).
func (h *Handle) OptimizationTime() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.optTime
}

// Plans returns a snapshot of the execution plans decided so far.
func (h *Handle) Plans() []Plan {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Plan, 0, len(h.plans))
	for _, p := range h.plans {
		out = append(out, p.plan)
	}
	return out
}

// WDStats returns the WD optimization result, if WD has run.
func (h *Handle) WDStats() *WDResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.wdResult
}

// register notes a kernel (and its per-kernel limit) seen through a
// Get*Algorithm call. In WD mode the kernel list is what the ILP later
// optimizes; after FinalizeRegistration (or the first Convolution* call),
// further registrations are ignored — the paper's Caffe integration note.
func (h *Handle) register(k Kernel, wsLimit int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.regClosed {
		return
	}
	key := k.String()
	if wsLimit > 0 {
		h.limits[key] = wsLimit
	}
	if h.opts.Mode == WD && !h.regSet[key] {
		h.regSet[key] = true
		h.registered = append(h.registered, k)
	}
}

// FinalizeRegistration closes kernel registration and, in WD mode, runs
// the ILP optimization immediately (the explicit library call the paper
// adds after Caffe's network initialization).
func (h *Handle) FinalizeRegistration() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	//ucudnn:allow lockorder -- arena-grant fault points fire under the handle lock by design: the grant decision must be serialized with the arena it mutates, and the deterministic trigger sequence depends on that serialization
	return h.finalizeLocked()
}

func (h *Handle) finalizeLocked() error {
	if h.regClosed {
		return nil
	}
	h.regClosed = true
	if h.opts.Mode != WD || len(h.registered) == 0 {
		return nil
	}
	start := time.Now() //ucudnn:allow detlint -- optTime accounting only; the WD plan does not depend on it
	res, err := OptimizeWDReserved(h.bencher, h.registered, h.opts.TotalWorkspaceLimit, h.opts.BlobReserve, h.opts.Policy)
	h.optTime += time.Since(start)
	if err != nil {
		return err
	}
	h.wdResult = res
	h.m.wsRequested.Add(h.opts.TotalWorkspaceLimit)
	h.m.wsGranted.Add(res.TotalWorkspace)
	// Identical kernels share one workspace segment; each unique segment
	// is accounted against device memory.
	for _, p := range res.Plans {
		key := p.Kernel.String()
		if _, ok := h.plans[key]; ok {
			continue
		}
		h.m.microbatchCount.Observe(float64(len(p.Config)))
		if err := h.inner.Mem().Alloc(p.Workspace); err != nil {
			return fmt.Errorf("core: allocating WD segment for %v: %w", p.Kernel, err)
		}
		h.growArena(p.Workspace)
		h.plans[key] = &execPlan{plan: p}
	}
	return nil
}

// ensurePlan returns (computing if needed) the execution plan of kernel k.
func (h *Handle) ensurePlan(k Kernel) (*execPlan, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := k.String()
	if p, ok := h.plans[key]; ok {
		return p, nil
	}
	// First execution closes WD registration and optimizes the network.
	//ucudnn:allow lockorder -- arena-grant fault points fire under the handle lock by design: the grant decision must be serialized with the arena it mutates, and the deterministic trigger sequence depends on that serialization
	if err := h.finalizeLocked(); err != nil {
		return nil, err
	}
	if p, ok := h.plans[key]; ok {
		return p, nil
	}
	// WR path (or WD fallback for unregistered kernels).
	limit := h.opts.WorkspaceLimit
	if l, ok := h.limits[key]; ok {
		limit = l
	}
	start := time.Now() //ucudnn:allow detlint -- optTime accounting only; the WR plan does not depend on it
	plan, err := OptimizeWR(h.bencher, k, limit, h.opts.Policy)
	h.optTime += time.Since(start)
	if err != nil {
		return nil, err
	}
	h.m.wsRequested.Add(limit)
	h.m.wsGranted.Add(plan.Workspace)
	h.m.microbatchCount.Observe(float64(len(plan.Config)))
	if err := h.inner.Mem().Alloc(plan.Workspace); err != nil {
		return nil, fmt.Errorf("core: allocating workspace for %v: %w", k, err)
	}
	//ucudnn:allow lockorder -- arena-grant fault points fire under the handle lock by design: the grant decision must be serialized with the arena it mutates, and the deterministic trigger sequence depends on that serialization
	h.growArena(plan.Workspace)
	p := &execPlan{plan: plan}
	h.plans[key] = p
	return p, nil
}

// execute runs the kernel's micro-batched configuration sequentially,
// slicing the mini-batch tensors in place (no copies) and accumulating
// BackwardFilter gradients with beta=1 after the first micro-batch.
// A failed plan (or a failed planning step) does not surface to the
// framework: execute snapshots blended outputs, then walks the
// degradation ladder in degrade.go until some configuration runs.
func (h *Handle) execute(op conv.Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32) error {
	k := Kernel{Op: op, Shape: cs}
	ep, err := h.ensurePlan(k)
	h.execMu.Lock()
	defer h.execMu.Unlock()
	sc := causal.Begin(causal.KindConv, k.String())
	defer causal.End(sc)
	pstart := int64(0)
	if prof.Enabled() {
		pstart = prof.Begin(k.String())
	}
	defer prof.End(pstart)
	var divisions, planWS int64
	if err == nil {
		divisions = int64(len(ep.plan.Config))
		planWS = ep.plan.Workspace
	}
	flight.Rec(evKernelLaunch, h.id, int64(op), divisions, planWS)
	simStart := h.inner.Elapsed()
	restore := h.snapshotOutput(op, x, w, y, beta)
	if err == nil {
		//ucudnn:allow lockorder -- arena-grant fault points fire under the handle lock by design: the grant decision must be serialized with the arena it mutates, and the deterministic trigger sequence depends on that serialization
		err = h.runConfig(ep.plan.Config, ep.plan.Workspace, op, cs, x, w, y, alpha, beta)
		if err == nil {
			flight.Rec(evKernelFinish, h.id, int64(op), 1, int64(h.inner.Elapsed()-simStart))
			return nil
		}
	}
	//ucudnn:allow lockorder -- arena-grant fault points fire under the handle lock by design: the grant decision must be serialized with the arena it mutates, and the deterministic trigger sequence depends on that serialization
	err = h.degrade(k, err, restore, x, w, y, alpha, beta)
	ok := int64(1)
	if err != nil {
		ok = 0
	}
	flight.Rec(evKernelFinish, h.id, int64(op), ok, int64(h.inner.Elapsed()-simStart))
	return err
}

// snapshotOutput copies the output buffer a beta != 0 call blends into,
// returning the restore closure fallback retries run before re-executing
// (a half-written blended output cannot be re-run in place). beta == 0
// retries are idempotent — every configuration overwrites the full
// output — so no copy is taken. Callers hold execMu (snapBuf is reused
// across calls).
func (h *Handle) snapshotOutput(op conv.Op, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, beta float32) func() {
	var out []float32
	if beta != 0 {
		switch op {
		case conv.Forward:
			if y != nil {
				out = y.Data
			}
		case conv.BackwardData:
			if x != nil {
				out = x.Data
			}
		case conv.BackwardFilter:
			if w != nil {
				out = w.Data
			}
		}
	}
	if out == nil {
		return func() {}
	}
	if cap(h.snapBuf) < len(out) {
		h.snapBuf = make([]float32, len(out))
	}
	snap := h.snapBuf[:len(out)]
	copy(snap, out)
	return func() { copy(out, snap) }
}

// runConfig executes one configuration over the full mini-batch. Callers
// hold execMu. The workspace slice is the arena prefix of the
// configuration's requirement, clamped to the arena's actual size (a
// fault-shrunk grant may have left it short — the kernels' MinWorkspace
// floor checks decide whether that is still runnable).
func (h *Handle) runConfig(cfg Config, wsBytes int64, op conv.Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32) error {
	h.mu.Lock()
	n := int((wsBytes + 3) / 4)
	if n > len(h.wsArena) {
		n = len(h.wsArena)
	}
	ws := h.wsArena[:n]
	h.mu.Unlock()
	prof.GrantWS(int64(len(ws)) * 4)
	off := 0
	for i, mc := range cfg {
		h.m.algoSelected(op, mc.Algo)
		flight.Rec(evMicroKernel, h.id, int64(mc.Algo), int64(mc.BatchSize), int64(off))
		mcs := cs.WithN(mc.BatchSize)
		mx, my := x, y
		if x != nil {
			mx = x.Sample(off, mc.BatchSize)
		}
		if y != nil {
			my = y.Sample(off, mc.BatchSize)
		}
		mbeta := beta
		if op == conv.BackwardFilter {
			if i > 0 {
				mbeta = 1
			}
			// dW is shared across micro-batches: pass the full tensors for
			// x and dy slices, the filter stays whole.
		}
		if err := h.inner.Convolve(op, mc.Algo, mcs, mx, w, my, alpha, mbeta, ws); err != nil {
			return fmt.Errorf("core: micro-batch %d of %v: %w", i, cfg, err)
		}
		off += mc.BatchSize
	}
	return nil
}
