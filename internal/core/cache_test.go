package core

import (
	"os"
	"path/filepath"
	"testing"

	"ucudnn/internal/cudnn"
	"ucudnn/internal/faults"
	"ucudnn/internal/obs"
)

// A benchmark database with torn or corrupted lines must load every intact
// record and skip (not abort on) the rest, counting what it dropped.
func TestCacheSkipsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.db")
	db := `{"key":"k1","perfs":[{"algo":1,"ns":500,"mem":64}]}
{"key":"k2","perfs":[{"algo":2,"ns":700,"mem":0}
not json at all
{"perfs":[{"algo":1,"ns":500,"mem":64}]}

{"key":"k3","perfs":[]}
`
	if err := os.WriteFile(path, []byte(db), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Len(); got != 2 {
		t.Fatalf("loaded %d entries, want 2 (k1 and k3)", got)
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("intact record k1 lost")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Fatal("intact record after the corrupt region lost")
	}
	st := c.Stats()
	// Torn k2, the junk line, and the keyless record; the blank line is
	// not corruption.
	if st.CorruptLines != 3 {
		t.Fatalf("CorruptLines = %d, want 3", st.CorruptLines)
	}
	if st.FileLoads != 2 {
		t.Fatalf("FileLoads = %d, want 2", st.FileLoads)
	}
}

// Corrupt-line counts observed before instrumentation are replayed into
// the metrics registry when a handle adopts the cache.
func TestCacheCorruptLinesMetricReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.db")
	db := "{\"key\":\"k1\",\"perfs\":[]}\ngarbage\n{broken\n"
	if err := os.WriteFile(path, []byte(db), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	h := newTestHandle(t, cudnn.ModelOnlyBackend, WithCachePath(path), WithMetrics(reg))
	defer h.Cache().Close()
	if got := reg.Counter(MetricCacheCorrupt).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", MetricCacheCorrupt, got)
	}
}

// An armed cache-load fault mangles lines as the scanner hands them over,
// exercising the same skip path as on-disk corruption.
func TestCacheLoadFaultManglesLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.db")
	db := "{\"key\":\"k1\",\"perfs\":[]}\n{\"key\":\"k2\",\"perfs\":[]}\n"
	if err := os.WriteFile(path, []byte(db), 0o644); err != nil {
		t.Fatal(err)
	}
	faults.Install(faults.New(faults.Rule{Point: faults.PointCacheLoad, Trigger: faults.Nth(1)}))
	defer faults.Install(nil)
	c, err := NewCache(path)
	faults.Install(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Len(); got != 1 {
		t.Fatalf("loaded %d entries, want 1 (first line mangled)", got)
	}
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("unmangled record k2 lost")
	}
	if st := c.Stats(); st.CorruptLines != 1 {
		t.Fatalf("CorruptLines = %d, want 1", st.CorruptLines)
	}
}
