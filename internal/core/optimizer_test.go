package core

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

func conv2Shape(n int) tensor.ConvShape {
	return tensor.ConvShape{
		In:     tensor.Shape{N: n, C: 64, H: 27, W: 27},
		Filt:   tensor.Filter{K: 192, C: 64, R: 5, S: 5},
		Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1},
	}
}

func modelBencher() *Bencher {
	return NewBencher(cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend), nil, 1)
}

func TestPolicyCandidateSizes(t *testing.T) {
	if got := PolicyUndivided.CandidateSizes(256); len(got) != 1 || got[0] != 256 {
		t.Fatalf("undivided: %v", got)
	}
	want := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	got := PolicyPowerOfTwo.CandidateSizes(256)
	if len(got) != len(want) {
		t.Fatalf("powerOfTwo: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("powerOfTwo: %v", got)
		}
	}
	// Non-power mini-batch still ends with N.
	got = PolicyPowerOfTwo.CandidateSizes(48)
	if got[len(got)-1] != 48 || got[len(got)-2] != 32 {
		t.Fatalf("powerOfTwo(48): %v", got)
	}
	if got := PolicyAll.CandidateSizes(5); len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("all: %v", got)
	}
	if PolicyAll.CandidateSizes(0) != nil {
		t.Fatal("n=0 must return nil")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"undivided": PolicyUndivided, "u": PolicyUndivided,
		"powerOfTwo": PolicyPowerOfTwo, "p": PolicyPowerOfTwo, "poweroftwo": PolicyPowerOfTwo,
		"all": PolicyAll, "a": PolicyAll,
	}
	for s, want := range cases {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy must error")
	}
	if PolicyAll.String() != "all" || PolicyPowerOfTwo.String() != "powerOfTwo" || PolicyUndivided.String() != "undivided" {
		t.Fatal("policy strings")
	}
}

func TestConfigBasics(t *testing.T) {
	c := Config{{128, conv.AlgoFFT}, {64, conv.AlgoGemm}, {64, conv.AlgoGemm}}
	if c.TotalBatch() != 256 {
		t.Fatal("total batch")
	}
	if err := c.Validate(256); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(255); err == nil {
		t.Fatal("wrong total must fail")
	}
	if err := (Config{}).Validate(0); err == nil {
		t.Fatal("empty config must fail")
	}
	if err := (Config{{0, conv.AlgoGemm}}).Validate(0); err == nil {
		t.Fatal("zero micro-batch must fail")
	}
	if c.Undivided() {
		t.Fatal("3-entry config is divided")
	}
	if !(Config{{256, conv.AlgoGemm}}).Undivided() {
		t.Fatal("single entry is undivided")
	}
	s := c.String()
	if s != "<FFT@128, GEMM@64, GEMM@64>" {
		t.Fatalf("config string %q", s)
	}
	// Workspace is the max over micro-configurations.
	cs := conv2Shape(256)
	ws := c.Workspace(conv.Forward, cs)
	fft128, _ := conv.Workspace(conv.Forward, conv.AlgoFFT, cs.WithN(128))
	if ws != fft128 {
		t.Fatalf("config ws %d != max micro ws %d", ws, fft128)
	}
}

func TestWRUndividedMatchesCudnn(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(256)}
	limit := int64(64 << 20)
	plan, err := OptimizeWR(b, k, limit, PolicyUndivided)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Config.Undivided() {
		t.Fatalf("undivided policy produced %v", plan.Config)
	}
	want, err := b.h.PickAlgo(conv.Forward, k.Shape, cudnn.SpecifyWorkspaceLimit, limit)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config[0].Algo != want.Algo {
		t.Fatalf("undivided algo %v != cuDNN pick %v", plan.Config[0].Algo, want.Algo)
	}
	if plan.Time != want.Time {
		t.Fatalf("undivided time %v != %v", plan.Time, want.Time)
	}
}

// The paper's Fig. 9 anchor: at a 64 MiB limit and mini-batch 256, WR must
// divide conv2's forward pass into micro-batches running FFT, beating the
// undivided (GEMM) choice substantially.
func TestWREnablesFFTOnConv2(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(256)}
	limit := int64(64 << 20)
	undiv, err := OptimizeWR(b, k, limit, PolicyUndivided)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := OptimizeWR(b, k, limit, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Config.Validate(256); err != nil {
		t.Fatal(err)
	}
	if p2.Config.Undivided() {
		t.Fatalf("powerOfTwo should divide: %v", p2.Config)
	}
	usesFFT := false
	for _, m := range p2.Config {
		if m.Algo == conv.AlgoFFT || m.Algo == conv.AlgoFFTTiling {
			usesFFT = true
		}
	}
	if !usesFFT {
		t.Fatalf("expected FFT micro-batches, got %v", p2.Config)
	}
	if p2.Workspace > limit {
		t.Fatalf("plan workspace %d exceeds limit", p2.Workspace)
	}
	speedup := float64(undiv.Time) / float64(p2.Time)
	if speedup < 1.3 {
		t.Fatalf("micro-batching speedup %.2f too small (undiv %v vs %v %v)",
			speedup, undiv.Time, p2.Config, p2.Time)
	}
	t.Logf("conv2@64MiB: undivided %v -> %v %v (%.2fx)", undiv.Time, p2.Config, p2.Time, speedup)
}

// DP optimality: WR must match brute-force enumeration over all ordered
// compositions for a small mini-batch with the all policy.
func TestWRMatchesBruteForce(t *testing.T) {
	b := modelBencher()
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 7, C: 32, H: 14, W: 14},
		Filt:   tensor.Filter{K: 48, C: 32, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	k := Kernel{Op: conv.Forward, Shape: cs}
	limit := int64(2 << 20)
	plan, err := OptimizeWR(b, k, limit, PolicyAll)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: best time for batch b = fastest fitting micro at any size
	// m <= b plus best time for b-m (same recurrence, computed indepen-
	// dently over explicit enumeration of compositions up to depth 7).
	t1 := map[int]time.Duration{}
	for m := 1; m <= 7; m++ {
		perfs := b.Perfs(Kernel{Op: k.Op, Shape: cs.WithN(m)})
		bestT := time.Duration(math.MaxInt64)
		for _, p := range perfs {
			if p.Memory <= limit && p.Time < bestT {
				bestT = p.Time
			}
		}
		t1[m] = bestT
	}
	var enumerate func(rem int) time.Duration
	enumerate = func(rem int) time.Duration {
		if rem == 0 {
			return 0
		}
		best := time.Duration(math.MaxInt64)
		for m := 1; m <= rem; m++ {
			if t1[m] == math.MaxInt64 {
				continue
			}
			sub := enumerate(rem - m)
			if sub == math.MaxInt64 {
				continue
			}
			if c := t1[m] + sub; c < best {
				best = c
			}
		}
		return best
	}
	want := enumerate(7)
	if plan.Time != want {
		t.Fatalf("WR time %v != brute force %v (config %v)", plan.Time, want, plan.Config)
	}
}

// Monotonicity: more workspace can never slow the optimum down.
func TestWRMonotonicInWorkspace(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(64)}
	var prev time.Duration
	for i, limit := range []int64{1 << 20, 8 << 20, 64 << 20, 512 << 20} {
		plan, err := OptimizeWR(b, k, limit, PolicyPowerOfTwo)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && plan.Time > prev {
			t.Fatalf("limit %d MiB slower (%v) than smaller limit (%v)", limit>>20, plan.Time, prev)
		}
		prev = plan.Time
	}
}

func TestWRNoFitError(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(8)}
	// Limit of -1: even zero-workspace algorithms don't fit.
	if _, err := OptimizeWR(b, k, -1, PolicyPowerOfTwo); err == nil {
		t.Fatal("impossible limit must error")
	}
}

func TestWRAllBeatsOrMatchesPowerOfTwo(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(48)}
	limit := int64(32 << 20)
	pAll, err := OptimizeWR(b, k, limit, PolicyAll)
	if err != nil {
		t.Fatal(err)
	}
	pPow, err := OptimizeWR(b, k, limit, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	if pAll.Time > pPow.Time {
		t.Fatalf("all (%v) must not lose to powerOfTwo (%v)", pAll.Time, pPow.Time)
	}
}

func TestDesirableSetIsParetoFront(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(256)}
	front, err := DesirableSet(b, k, 120<<20, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 2 {
		t.Fatalf("expected a nontrivial front, got %d entries", len(front))
	}
	for i, a := range front {
		if err := a.Config.Validate(256); err != nil {
			t.Fatalf("front[%d]: %v", i, err)
		}
		if a.Workspace > 120<<20 {
			t.Fatalf("front[%d] exceeds limit: %d", i, a.Workspace)
		}
		for j, bb := range front {
			if i == j {
				continue
			}
			if bb.Time <= a.Time && bb.Workspace <= a.Workspace {
				t.Fatalf("front[%d] dominated by front[%d]", i, j)
			}
		}
	}
	// Sorted by time ascending, workspace strictly descending.
	for i := 1; i < len(front); i++ {
		if front[i].Time < front[i-1].Time || front[i].Workspace >= front[i-1].Workspace {
			t.Fatal("front not sorted/strict")
		}
	}
	t.Logf("conv2 desirable set: %d configurations", len(front))
}

// The WR optimum is an element of the desirable set (paper consistency
// property: T*(B) = T(WD'(B)[fastest]) under the same limit).
func TestWROptimumInDesirableSet(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(64)}
	limit := int64(64 << 20)
	plan, err := OptimizeWR(b, k, limit, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	front, err := DesirableSet(b, k, limit, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	if front[0].Time != plan.Time {
		t.Fatalf("fastest desirable %v != WR optimum %v", front[0].Time, plan.Time)
	}
}

// Exhaustive cross-check of the desirable DP on a small instance: the
// front must equal the Pareto prune of *all* configurations.
func TestDesirableSetMatchesExhaustive(t *testing.T) {
	b := modelBencher()
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 5, C: 16, H: 9, W: 9},
		Filt:   tensor.Filter{K: 24, C: 16, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	k := Kernel{Op: conv.Forward, Shape: cs}
	limit := int64(1 << 30)
	front, err := DesirableSet(b, k, limit, PolicyAll)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate all multisets of micro-batches summing to 5 with all algos.
	type cost struct {
		t  time.Duration
		ws int64
	}
	var all []cost
	var micro [6][]cost
	for m := 1; m <= 5; m++ {
		for _, p := range b.Perfs(Kernel{Op: k.Op, Shape: cs.WithN(m)}) {
			if p.Memory <= limit {
				micro[m] = append(micro[m], cost{p.Time, p.Memory})
			}
		}
	}
	var rec func(rem, minSize int, t time.Duration, ws int64)
	rec = func(rem, minSize int, acc time.Duration, ws int64) {
		if rem == 0 {
			all = append(all, cost{acc, ws})
			return
		}
		for m := minSize; m <= rem; m++ {
			for _, mc := range micro[m] {
				nws := ws
				if mc.ws > nws {
					nws = mc.ws
				}
				rec(rem-m, m, acc+mc.t, nws)
			}
		}
	}
	rec(5, 1, 0, 0)
	// Pareto prune the exhaustive set.
	var frontWant []cost
	for _, a := range all {
		dominated := false
		for _, bb := range all {
			if (bb.t < a.t && bb.ws <= a.ws) || (bb.t <= a.t && bb.ws < a.ws) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontWant = append(frontWant, a)
		}
	}
	// Compare as sets of (t, ws).
	seen := map[cost]bool{}
	for _, f := range front {
		seen[cost{f.Time, f.Workspace}] = true
	}
	for _, w := range frontWant {
		if !seen[w] {
			t.Fatalf("exhaustive Pareto point %+v missing from DP front", w)
		}
	}
	for _, f := range front {
		ok := false
		for _, w := range frontWant {
			if w.t == f.Time && w.ws == f.Workspace {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("DP front point (%v, %d) is not Pareto-optimal exhaustively", f.Time, f.Workspace)
		}
	}
}

func TestParetoPrune(t *testing.T) {
	in := []ScoredConfig{
		{Time: 10, Workspace: 5},
		{Time: 5, Workspace: 10},
		{Time: 7, Workspace: 7},
		{Time: 6, Workspace: 6},  // dominates (7,7)
		{Time: 5, Workspace: 12}, // dominated by (5,10)
		{Time: 12, Workspace: 1},
	}
	out := paretoPrune(in)
	want := map[[2]int64]bool{{5, 10}: true, {6, 6}: true, {10, 5}: true, {12, 1}: true}
	if len(out) != len(want) {
		t.Fatalf("pruned to %d entries: %v", len(out), out)
	}
	for _, o := range out {
		if !want[[2]int64{int64(o.Time), o.Workspace}] {
			t.Fatalf("unexpected survivor (%v, %d)", o.Time, o.Workspace)
		}
	}
	if paretoPrune(nil) != nil {
		t.Fatal("empty prune")
	}
}

func TestOptimizeWDRespectsBudgetAndBeatsWR(t *testing.T) {
	b := modelBencher()
	// AlexNet-like forward kernels (conv2..conv5 shapes, batch 64).
	kernels := []Kernel{
		{Op: conv.Forward, Shape: conv2Shape(64)},
		{Op: conv.Forward, Shape: tensor.ConvShape{
			In: tensor.Shape{N: 64, C: 192, H: 13, W: 13}, Filt: tensor.Filter{K: 384, C: 192, R: 3, S: 3},
			Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1}}},
		{Op: conv.Forward, Shape: tensor.ConvShape{
			In: tensor.Shape{N: 64, C: 384, H: 13, W: 13}, Filt: tensor.Filter{K: 256, C: 384, R: 3, S: 3},
			Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1}}},
	}
	perKernel := int64(8 << 20)
	total := perKernel * int64(len(kernels))
	res, err := OptimizeWD(b, kernels, total, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWorkspace > total {
		t.Fatalf("WD workspace %d exceeds budget %d", res.TotalWorkspace, total)
	}
	if len(res.Plans) != len(kernels) {
		t.Fatalf("got %d plans", len(res.Plans))
	}
	var wrTotal time.Duration
	for _, k := range kernels {
		p, err := OptimizeWR(b, k, perKernel, PolicyPowerOfTwo)
		if err != nil {
			t.Fatal(err)
		}
		wrTotal += p.Time
	}
	if res.TotalTime > wrTotal {
		t.Fatalf("WD (%v) must not lose to WR (%v) at equal total budget", res.TotalTime, wrTotal)
	}
	t.Logf("WD %v vs WR %v at %d MiB total (vars=%d nodes=%d solve=%v)",
		res.TotalTime, wrTotal, total>>20, res.ILPVars, res.ILPNodes, res.SolveTime)
}

// The §III-C1 theorem: pruning undesirable configurations never changes
// the ILP optimum. Verified by brute-forcing the unpruned assignment space
// on a small instance.
func TestPruningPreservesILPOptimum(t *testing.T) {
	b := modelBencher()
	cs1 := tensor.ConvShape{
		In: tensor.Shape{N: 4, C: 16, H: 9, W: 9}, Filt: tensor.Filter{K: 24, C: 16, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1}}
	cs2 := tensor.ConvShape{
		In: tensor.Shape{N: 4, C: 24, H: 7, W: 7}, Filt: tensor.Filter{K: 16, C: 24, R: 5, S: 5},
		Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1}}
	kernels := []Kernel{{Op: conv.Forward, Shape: cs1}, {Op: conv.Forward, Shape: cs2}}
	total := int64(3 << 20)

	res, err := OptimizeWD(b, kernels, total, PolicyAll)
	if err != nil {
		t.Fatal(err)
	}

	// Brute force over the *unpruned* configuration spaces.
	enumerateConfigs := func(k Kernel) []ScoredConfig {
		n := k.Shape.In.N
		var micro [8][]ScoredConfig
		for m := 1; m <= n; m++ {
			for _, p := range b.Perfs(Kernel{Op: k.Op, Shape: k.Shape.WithN(m)}) {
				if p.Memory <= total {
					micro[m] = append(micro[m], ScoredConfig{Time: p.Time, Workspace: p.Memory})
				}
			}
		}
		var out []ScoredConfig
		var rec func(rem, minSize int, acc time.Duration, ws int64)
		rec = func(rem, minSize int, acc time.Duration, ws int64) {
			if rem == 0 {
				out = append(out, ScoredConfig{Time: acc, Workspace: ws})
				return
			}
			for m := minSize; m <= rem; m++ {
				for _, mc := range micro[m] {
					nws := ws
					if mc.Workspace > nws {
						nws = mc.Workspace
					}
					rec(rem-m, m, acc+mc.Time, nws)
				}
			}
		}
		rec(n, 1, 0, 0)
		return out
	}
	s1 := enumerateConfigs(kernels[0])
	s2 := enumerateConfigs(kernels[1])
	best := time.Duration(math.MaxInt64)
	for _, a := range s1 {
		for _, bb := range s2 {
			if a.Workspace+bb.Workspace <= total && a.Time+bb.Time < best {
				best = a.Time + bb.Time
			}
		}
	}
	if res.TotalTime != best {
		t.Fatalf("pruned ILP optimum %v != unpruned brute force %v", res.TotalTime, best)
	}
}

func TestOptimizeWDDeduplicatesKernels(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(32)}
	res, err := OptimizeWD(b, []Kernel{k, k, k}, 64<<20, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 3 {
		t.Fatalf("plans = %d", len(res.Plans))
	}
	if res.Plans[0].Config.String() != res.Plans[1].Config.String() {
		t.Fatal("identical kernels must share a configuration")
	}
	// Shared segment: total workspace counts the kernel once.
	if res.TotalWorkspace != res.Plans[0].Workspace {
		t.Fatalf("dedup workspace %d != %d", res.TotalWorkspace, res.Plans[0].Workspace)
	}
	// Time counts the multiplicity.
	if res.TotalTime != 3*res.Plans[0].Time {
		t.Fatalf("dedup time %v != 3x%v", res.TotalTime, res.Plans[0].Time)
	}
	single, err := DesirableSet(b, k, 64<<20, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	if res.ILPVars != len(single) {
		t.Fatalf("ILP vars %d != front size %d", res.ILPVars, len(single))
	}
}

func TestOptimizeWDErrors(t *testing.T) {
	b := modelBencher()
	if _, err := OptimizeWD(b, nil, 1<<20, PolicyPowerOfTwo); err == nil {
		t.Fatal("no kernels must error")
	}
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(8)}
	if _, err := OptimizeWD(b, []Kernel{k}, -5, PolicyPowerOfTwo); err == nil {
		t.Fatal("impossible budget must error")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.db")
	c, err := NewCache(path)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey("P100-SXM2", cudnn.ModelOnlyBackend, conv.Forward, conv2Shape(32))
	perfs := []cudnn.AlgoPerf{
		{Algo: conv.AlgoFFT, Time: 123 * time.Microsecond, Memory: 456},
		{Algo: conv.AlgoGemm, Time: 789 * time.Microsecond, Memory: 42},
	}
	if err := c.Put(key, perfs); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatal("len after put")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Reload from disk.
	c2, err := NewCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, ok := c2.Get(key)
	if !ok || len(got) != 2 {
		t.Fatalf("reload failed: %v %v", got, ok)
	}
	if got[0] != perfs[0] || got[1] != perfs[1] {
		t.Fatalf("reload mismatch: %v", got)
	}
}

func TestCacheKeyDistinguishes(t *testing.T) {
	a := CacheKey("P100", cudnn.ModelOnlyBackend, conv.Forward, conv2Shape(32))
	b := CacheKey("P100", cudnn.ModelOnlyBackend, conv.Forward, conv2Shape(64))
	c := CacheKey("P100", cudnn.ModelOnlyBackend, conv.BackwardData, conv2Shape(32))
	d := CacheKey("K80", cudnn.ModelOnlyBackend, conv.Forward, conv2Shape(32))
	e := CacheKey("P100", cudnn.RealBackend, conv.Forward, conv2Shape(32))
	set := map[string]bool{a: true, b: true, c: true, d: true, e: true}
	if len(set) != 5 {
		t.Fatal("cache keys collide")
	}
}

func TestBencherUsesCache(t *testing.T) {
	h := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	cache, _ := NewCache("")
	b := NewBencher(h, cache, 4)
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(16)}
	sizes := []int{1, 2, 4, 8, 16}
	m1 := b.PerfsForSizes(k, sizes)
	if len(m1) != len(sizes) {
		t.Fatalf("got %d size entries", len(m1))
	}
	if cache.Len() != len(sizes) {
		t.Fatalf("cache has %d entries", cache.Len())
	}
	// Second call is served from cache (same pointers).
	m2 := b.PerfsForSizes(k, sizes)
	for _, n := range sizes {
		if len(m1[n]) == 0 || len(m2[n]) == 0 {
			t.Fatalf("size %d missing", n)
		}
		if &m1[n][0] != &m2[n][0] {
			t.Fatalf("size %d not served from cache", n)
		}
	}
}
