package core

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

// The µ-cuDNN handle must survive concurrent planning from multiple
// goroutines (frameworks set up layers in parallel); run with -race.
func TestHandleConcurrentPlanning(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelOnlyBackend, WithWorkspaceLimit(4<<20))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Different channel counts -> different kernels.
			c := 4 + (i % 4)
			xd, _ := cudnn.NewTensorDesc(16, c, 12, 12)
			wd, _ := cudnn.NewFilterDesc(8, c, 3, 3)
			cd, _ := cudnn.NewConvDesc(1, 1, 1, 1, 1, 1)
			yd, _ := cudnn.GetOutputDim(xd, wd, cd)
			algo, err := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.PreferFastest, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if err := h.ConvolutionForward(1, xd, nil, wd, nil, cd, algo, nil, 0, yd, nil); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := len(h.Plans()); got != 4 {
		t.Fatalf("plans = %d, want 4 unique kernels", got)
	}
}

// Concurrent execution on one handle with a compute backend and real
// tensors: every goroutine shares the handle's workspace arena, so this
// is the -race witness for the execMu serialization (the arena snapshot
// in execute used to race with growArena). Outputs must still be right.
func TestHandleConcurrentExecuteRace(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelBackend, WithWorkspaceLimit(1<<20))
	xd, wd, cd, yd, cs := smallConv(10)
	rng := rand.New(rand.NewSource(11))
	w := tensor.NewFilter(12, 8, 3, 3)
	w.Randomize(rng, 0.5)
	const G = 8
	xs := make([]*tensor.Tensor, G)
	ys := make([]*tensor.Tensor, G)
	refs := make([]*tensor.Tensor, G)
	for i := range xs {
		xs[i] = tensor.NewShaped(cs.In)
		xs[i].Randomize(rng, 1)
		ys[i] = tensor.NewShaped(cs.OutShape())
		refs[i] = tensor.NewShaped(cs.OutShape())
		if err := conv.Run(conv.Forward, conv.AlgoDirect, cs, xs[i], w, refs[i], 1, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	algo, err := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := h.ConvolutionForward(1, xd, xs[i], wd, w, cd, algo, nil, 0, yd, ys[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := range ys {
		if !tensor.AllClose(ys[i].Data, refs[i].Data, 1e-3, 1e-3) {
			t.Fatalf("goroutine %d output wrong: maxdiff %g", i, tensor.MaxAbsDiff(ys[i].Data, refs[i].Data))
		}
	}
}

// Concurrent cache access with a file DB must be race-free and lose no
// entries.
func TestCacheConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	c, err := NewCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs := tensor.ConvShape{
				In:     tensor.Shape{N: i + 1, C: 3, H: 8, W: 8},
				Filt:   tensor.Filter{K: 4, C: 3, R: 3, S: 3},
				Params: tensor.Unit,
			}
			key := CacheKey("P100", cudnn.ModelOnlyBackend, conv.Forward, cs)
			if err := c.Put(key, []cudnn.AlgoPerf{{Algo: conv.AlgoGemm, Time: 1, Memory: int64(i)}}); err != nil {
				t.Error(err)
			}
			if _, ok := c.Get(key); !ok {
				t.Error("lost own entry")
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 16 {
		t.Fatalf("cache has %d entries, want 16", c.Len())
	}
	c.Close()
	c2, err := NewCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 16 {
		t.Fatalf("reloaded cache has %d entries, want 16", c2.Len())
	}
}

// DesirableSet with a zero limit must only contain zero-workspace
// algorithms.
func TestDesirableSetZeroLimit(t *testing.T) {
	b := modelBencher()
	k := Kernel{Op: conv.Forward, Shape: conv2Shape(16)}
	front, err := DesirableSet(b, k, 0, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range front {
		if sc.Workspace != 0 {
			t.Fatalf("zero-limit front contains workspace %d", sc.Workspace)
		}
	}
}

// Two handles sharing a file DB: the second handle plans without
// re-benchmarking (offline benchmarking / cluster sharing, §III-D).
func TestFileDBSharedAcrossHandles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.jsonl")
	mk := func() *Handle {
		h, err := New(cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend),
			WithWorkspaceLimit(4<<20), WithCachePath(path))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	run := func(h *Handle) Plan {
		xd, _ := cudnn.NewTensorDesc(32, 8, 14, 14)
		wd, _ := cudnn.NewFilterDesc(16, 8, 3, 3)
		cd, _ := cudnn.NewConvDesc(1, 1, 1, 1, 1, 1)
		yd, _ := cudnn.GetOutputDim(xd, wd, cd)
		algo, _ := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.PreferFastest, 0)
		if err := h.ConvolutionForward(1, xd, nil, wd, nil, cd, algo, nil, 0, yd, nil); err != nil {
			t.Fatal(err)
		}
		return h.Plans()[0]
	}
	h1 := mk()
	p1 := run(h1)
	entries := h1.Cache().Len()
	if entries == 0 {
		t.Fatal("first handle cached nothing")
	}
	h1.Cache().Close()

	h2 := mk()
	if h2.Cache().Len() != entries {
		t.Fatalf("second handle loaded %d entries, want %d", h2.Cache().Len(), entries)
	}
	p2 := run(h2)
	if p1.Config.String() != p2.Config.String() {
		t.Fatalf("shared DB produced different plans: %v vs %v", p1.Config, p2.Config)
	}
	h2.Cache().Close()
}

// Parallel benchmark workers against a shared cache must be race-free and
// deterministic (run with -race).
func TestBencherParallelWorkersRace(t *testing.T) {
	cache, _ := NewCache("")
	b := NewBencher(cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend), cache, 8)
	k := Kernel{Op: conv.BackwardFilter, Shape: conv2Shape(64)}
	sizes := PolicyAll.CandidateSizes(64)
	out := b.PerfsForSizes(k, sizes)
	if len(out) != len(sizes) {
		t.Fatalf("got %d entries", len(out))
	}
	for _, n := range sizes {
		if len(out[n]) == 0 {
			t.Fatalf("size %d empty", n)
		}
	}
}
