package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/obs"
	"ucudnn/internal/tensor"
)

// TestWDPopulatesOptimizerMetrics runs a ucudnn-optimize-equivalent WD
// pass and checks the §IV-B cost metrics land in the registry: optimizer
// wall-clock, DP state counts, ILP variable/node counts, simplex pivots.
func TestWDPopulatesOptimizerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	b := modelBencher()
	b.SetMetrics(reg)
	kernels := []Kernel{
		{Op: conv.Forward, Shape: conv2Shape(64)},
		{Op: conv.Forward, Shape: conv2Shape(64)}, // duplicate: exercises grouping
		{Op: conv.BackwardFilter, Shape: conv2Shape(64)},
	}
	res, err := OptimizeWD(b, kernels, 256<<20, PolicyPowerOfTwo)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Histogram(MetricWDSeconds, obs.DurationBuckets).Count() != 1 {
		t.Fatal("WD wall-clock not observed")
	}
	if reg.Histogram(MetricDesirableSeconds, obs.DurationBuckets).Count() != 2 {
		t.Fatal("want one desirable-set timing per unique kernel")
	}
	if reg.Counter(MetricDesirableStates).Value() <= 0 {
		t.Fatal("desirable DP states not counted")
	}
	if got := reg.Gauge(MetricILPVariables).Value(); got != float64(res.ILPVars) {
		t.Fatalf("ILP variables gauge = %v, want %d", got, res.ILPVars)
	}
	if got := reg.Counter(MetricILPNodes).Value(); got != int64(res.ILPNodes) {
		t.Fatalf("ILP nodes counter = %d, want %d", got, res.ILPNodes)
	}
	if got := reg.Counter(MetricSimplexIters).Value(); got != int64(res.SimplexIters) || got <= 0 {
		t.Fatalf("simplex iterations counter = %d, want %d > 0", got, res.SimplexIters)
	}
	if reg.Histogram(MetricWDSolveSeconds, obs.DurationBuckets).Count() != 1 {
		t.Fatal("ILP solve time not observed")
	}
	if got := reg.Gauge(MetricWDWorkspace).Value(); got != float64(res.TotalWorkspace) {
		t.Fatalf("WD workspace gauge = %v, want %d", got, res.TotalWorkspace)
	}
	if reg.Counter(MetricCacheMisses).Value() <= 0 {
		t.Fatal("cache misses not counted")
	}
	// Second identical run is fully cached.
	misses := reg.Counter(MetricCacheMisses).Value()
	if _, err := OptimizeWD(b, kernels, 256<<20, PolicyPowerOfTwo); err != nil {
		t.Fatal(err)
	}
	if reg.Counter(MetricCacheMisses).Value() != misses {
		t.Fatal("second WD run must hit the cache")
	}
	if reg.Counter(MetricCacheHits).Value() <= 0 {
		t.Fatal("cache hits not counted")
	}
}

// TestWRPopulatesMetrics checks the WR DP reports its timing and state
// count.
func TestWRPopulatesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	b := modelBencher()
	b.SetMetrics(reg)
	if _, err := OptimizeWR(b, Kernel{Op: conv.Forward, Shape: conv2Shape(64)}, 64<<20, PolicyPowerOfTwo); err != nil {
		t.Fatal(err)
	}
	if reg.Histogram(MetricWRSeconds, obs.DurationBuckets).Count() != 1 {
		t.Fatal("WR wall-clock not observed")
	}
	if reg.Counter(MetricWRDPStates).Value() <= 0 {
		t.Fatal("WR DP states not counted")
	}
	if reg.Counter(MetricBenchKernels).Value() <= 0 {
		t.Fatal("benchmarked kernels not counted")
	}
}

// TestCacheStats covers the Stats snapshot: hits, misses, file traffic,
// entry count — including replay of loads that happened before
// instrumentation.
func TestCacheStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.jsonl")
	c, err := NewCache(path)
	if err != nil {
		t.Fatal(err)
	}
	h := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	key := CacheKey(h.Device().Name, h.Backend(), conv.Forward, conv2Shape(8))
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache must miss")
	}
	if err := c.Put(key, h.AlgoPerfs(conv.Forward, conv2Shape(8))); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("stored entry must hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.FileStores != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the file load happens before metrics attach; instrument must
	// replay it into the registry.
	c2, err := NewCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Stats().FileLoads != 1 {
		t.Fatalf("reopened stats = %+v", c2.Stats())
	}
	reg := obs.NewRegistry()
	b := NewBencher(cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend), c2, 1)
	b.SetMetrics(reg)
	if reg.Counter(MetricCacheFileLoads).Value() != 1 {
		t.Fatal("file loads not replayed into registry")
	}
	if reg.Gauge(MetricCacheEntries).Value() != 1 {
		t.Fatal("entry gauge not replayed")
	}
}

// TestHandleMetricsExport checks the end-to-end Flush path: a handle with
// a MetricsPath writes a summary containing the selection and workspace
// series.
func TestHandleMetricsExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.txt")
	h := newTestHandle(t, cudnn.ModelBackend, WithMetricsPath(path), WithWorkspaceLimit(1<<20))
	if h.Metrics() == nil {
		t.Fatal("MetricsPath must create a private registry")
	}
	xd, wd, cd, yd, cs := smallConv(16)
	rng := rand.New(rand.NewSource(7))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(12, 8, 3, 3)
	w.Randomize(rng, 0.5)
	y := tensor.NewShaped(cs.OutShape())
	algo, _ := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 1<<20)
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, algo, nil, 0, yd, y); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{MetricAlgoSelected, MetricMicrobatchCount, MetricWSGranted} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("flushed metrics lack %s:\n%s", want, data)
		}
	}
}
