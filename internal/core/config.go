// Package core implements µ-cuDNN, the paper's contribution: a transparent
// wrapper around the cuDNN-shaped convolution API (internal/cudnn) that
// divides each layer's mini-batch into micro-batches so faster convolution
// algorithms fit a workspace budget.
//
// The two optimizers of §III are provided:
//
//   - WR (Workspace Reuse): a per-kernel dynamic program over micro-batch
//     divisions under a per-kernel workspace limit (OptimizeWR);
//   - WD (Workspace Division): per-kernel desirable-configuration sets
//     (Pareto fronts in the time x workspace plane, DesirableSet) combined
//     by a 0-1 ILP under a network-wide workspace budget (OptimizeWD).
//
// Handle wires the optimizers behind the cuDNN call surface: frameworks
// swap their handle type and keep calling cudnnGetConvolution*Algorithm /
// cudnnConvolution*, exactly as the paper's three-line Caffe patch does.
package core

import (
	"fmt"
	"strings"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/tensor"
)

// MicroConfig pairs a convolution algorithm with the micro-batch size it
// runs at: one entry of a kernel's configuration (paper §III-A).
type MicroConfig struct {
	BatchSize int
	Algo      conv.Algo
}

func (m MicroConfig) String() string {
	return fmt.Sprintf("%v@%d", m.Algo, m.BatchSize)
}

// Config is an ordered list of micro-configurations whose batch sizes sum
// to the kernel's mini-batch size; the paper writes it as
// <algo@size, algo@size, ...>.
type Config []MicroConfig

// TotalBatch returns the summed batch size of the configuration.
func (c Config) TotalBatch() int {
	n := 0
	for _, m := range c {
		n += m.BatchSize
	}
	return n
}

// Validate checks the configuration covers exactly batch samples with
// positive micro-batches.
func (c Config) Validate(batch int) error {
	if len(c) == 0 {
		return fmt.Errorf("core: empty configuration")
	}
	for _, m := range c {
		if m.BatchSize <= 0 {
			return fmt.Errorf("core: non-positive micro-batch in %v", c)
		}
	}
	if got := c.TotalBatch(); got != batch {
		return fmt.Errorf("core: configuration covers %d samples, want %d", got, batch)
	}
	return nil
}

// Workspace returns the workspace requirement of the configuration for op
// on the kernel shape cs: micro-batches run sequentially and share one
// slot, so it is the maximum over micro-configurations.
func (c Config) Workspace(op conv.Op, cs tensor.ConvShape) int64 {
	var max int64
	for _, m := range c {
		ws, ok := conv.Workspace(op, m.Algo, cs.WithN(m.BatchSize))
		if !ok {
			continue
		}
		if ws > max {
			max = ws
		}
	}
	return max
}

func (c Config) String() string {
	parts := make([]string, len(c))
	for i, m := range c {
		parts[i] = m.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Undivided reports whether the configuration is a single micro-batch.
func (c Config) Undivided() bool { return len(c) == 1 }

// Kernel identifies one convolution kernel instance: the unit the
// optimizers plan for. A convolutional layer contributes up to three
// kernels (Forward, BackwardData, BackwardFilter).
type Kernel struct {
	Op    conv.Op
	Shape tensor.ConvShape
}

func (k Kernel) String() string {
	return fmt.Sprintf("%v[%v]", k.Op, k.Shape)
}

// Plan is an optimized execution plan for one kernel.
type Plan struct {
	Kernel Kernel
	Config Config
	// Time is the predicted execution time of the configuration.
	Time time.Duration
	// Workspace is the kernel's workspace requirement under the plan.
	Workspace int64
}

func (p Plan) String() string {
	return fmt.Sprintf("%v -> %v (%v, ws=%d)", p.Kernel, p.Config, p.Time, p.Workspace)
}
