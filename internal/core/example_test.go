package core_test

import (
	"fmt"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

// ExampleOptimizeWR plans AlexNet's conv2 forward kernel under the
// paper's 64 MiB workspace limit: the optimizer divides the mini-batch so
// the FFT algorithm fits.
func ExampleOptimizeWR() {
	h := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	b := core.NewBencher(h, nil, 1)
	kernel := core.Kernel{
		Op: conv.Forward,
		Shape: tensor.ConvShape{
			In:     tensor.Shape{N: 256, C: 64, H: 27, W: 27},
			Filt:   tensor.Filter{K: 192, C: 64, R: 5, S: 5},
			Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1},
		},
	}
	plan, err := core.OptimizeWR(b, kernel, 64<<20, core.PolicyPowerOfTwo)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Config)
	// Output: <FFT@32, FFT@32, FFT@32, FFT@32, FFT@32, FFT@32, FFT@32, FFT@32>
}

// ExampleNew wires µ-cuDNN in front of a cuDNN handle: the Get call
// returns the virtual algorithm with zero workspace, exactly as the
// paper's framework integration expects.
func ExampleNew() {
	inner := cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend)
	h, err := core.New(inner, core.WithWorkspaceLimit(8<<20))
	if err != nil {
		panic(err)
	}
	xd, _ := cudnn.NewTensorDesc(64, 16, 13, 13)
	wd, _ := cudnn.NewFilterDesc(32, 16, 3, 3)
	cd, _ := cudnn.NewConvDesc(1, 1, 1, 1, 1, 1)
	yd, _ := cudnn.GetOutputDim(xd, wd, cd)
	algo, _ := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.PreferFastest, 0)
	ws, _ := h.GetConvolutionForwardWorkspaceSize(xd, wd, cd, yd, algo)
	fmt.Println(algo == core.VirtualAlgo, ws)
	// Output: true 0
}

// ExamplePolicy_CandidateSizes shows the micro-batch sizes each policy
// benchmarks for a mini-batch of 16.
func ExamplePolicy_CandidateSizes() {
	fmt.Println(core.PolicyUndivided.CandidateSizes(16))
	fmt.Println(core.PolicyPowerOfTwo.CandidateSizes(16))
	fmt.Println(core.PolicyAll.CandidateSizes(16))
	// Output:
	// [16]
	// [1 2 4 8 16]
	// [1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16]
}
