package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"text/tabwriter"

	"ucudnn/internal/prof"
)

// This file is the cost-attribution report: the profiler's per-phase
// rows joined with the handle registry's plan table, so one document
// answers layer → kernel → algorithm/division → phase, with workspace
// grants and worker utilization alongside. Its JSON rows are shaped as
// the feature/label pairs a learned cost model can train on: the plan
// config and shapes are the features, the per-phase times the labels.

// ProfileSchema identifies the profile report's JSON schema.
const ProfileSchema = "ucudnn-profile-report/v1"

// ProfileWorkers is one kernel's worker-utilization accounting.
type ProfileWorkers struct {
	// Launches counts top-level parallel launches (busy/idle accounted);
	// NestedLaunches counts inner launches (imbalance only).
	Launches       int64 `json:"launches"`
	NestedLaunches int64 `json:"nested_launches,omitempty"`
	BusyNS         int64 `json:"busy_ns"`
	IdleNS         int64 `json:"idle_ns"`
	// MeanBusyRatio is busy/(busy+idle) over top-level launches;
	// Max/MeanImbalance are the max-over-mean per-worker busy ratios
	// (1.0 = perfectly balanced stripes) over every launch.
	MeanBusyRatio float64 `json:"mean_busy_ratio"`
	MaxImbalance  float64 `json:"max_imbalance"`
	MeanImbalance float64 `json:"mean_imbalance"`
}

// ProfileKernel is one (layer, kernel) row of the attribution report.
type ProfileKernel struct {
	Layer  string `json:"layer"`
	Kernel string `json:"kernel"`
	// Config/Divisions/WorkspaceBytes are joined from the plan table
	// (empty for rows without a matching plan, e.g. unattributed work).
	Config         string `json:"config,omitempty"`
	Divisions      int    `json:"divisions,omitempty"`
	WorkspaceBytes int64  `json:"workspace_bytes,omitempty"`
	// WSHighWaterBytes is the largest workspace grant the kernel's
	// executions actually received (<= WorkspaceBytes unless a fault
	// shrank the arena).
	WSHighWaterBytes int64 `json:"ws_high_water_bytes"`
	Executions       int64 `json:"executions"`
	TotalNS          int64 `json:"total_ns"`
	AttributedNS     int64 `json:"attributed_ns"`
	MeasuredNS       int64 `json:"measured_ns"`
	// Coverage is AttributedNS/MeasuredNS — the fraction of measured
	// kernel time explained by named phases.
	Coverage float64          `json:"coverage"`
	Phases   []prof.PhaseSnap `json:"phases"`
	Workers  ProfileWorkers   `json:"workers"`
}

// ProfileReport is the full cost-attribution document.
type ProfileReport struct {
	Schema string `json:"schema"`
	// Handles is the live plan table (core.Handle.Report) the kernel
	// rows were joined against.
	Handles []HandleReport `json:"handles"`
	// Kernels is the attribution table, sorted by (layer, kernel).
	Kernels []ProfileKernel `json:"kernels"`
	// TopPhases aggregates phase time across every kernel, heaviest
	// first.
	TopPhases []prof.PhaseTotal `json:"top_phases"`
}

// findPlan resolves kernel's plan row, preferring the newest handle.
func findPlan(handles []HandleReport, kernel string) (PlanReport, bool) {
	for i := len(handles) - 1; i >= 0; i-- {
		for _, p := range handles[i].Plans {
			if p.Kernel == kernel {
				return p, true
			}
		}
	}
	return PlanReport{}, false
}

// BuildProfileReport joins the profiler's attribution rows with the
// plan tables of every registered handle.
func BuildProfileReport() ProfileReport {
	rep := ProfileReport{Schema: ProfileSchema, Handles: []HandleReport{}}
	for _, h := range Handles() {
		rep.Handles = append(rep.Handles, h.Report())
	}
	rows := prof.Snapshot()
	rep.Kernels = make([]ProfileKernel, 0, len(rows))
	for _, r := range rows {
		pk := ProfileKernel{
			Layer:            r.Layer,
			Kernel:           r.Kernel,
			WSHighWaterBytes: r.WSHighWaterBytes,
			Executions:       r.Executions,
			TotalNS:          r.TotalNS,
			AttributedNS:     r.AttributedNS,
			MeasuredNS:       r.MeasuredNS,
			Coverage:         r.Coverage,
			Phases:           r.Phases,
			Workers: ProfileWorkers{
				Launches:       r.Launches,
				NestedLaunches: r.NestedLaunches,
				BusyNS:         r.BusyNS,
				IdleNS:         r.IdleNS,
				MeanBusyRatio:  r.MeanBusyRatio,
				MaxImbalance:   r.MaxImbalance,
				MeanImbalance:  r.MeanImbalance,
			},
		}
		if p, ok := findPlan(rep.Handles, r.Kernel); ok {
			pk.Config = p.Config
			pk.Divisions = p.Divisions
			pk.WorkspaceBytes = p.WorkspaceBytes
		}
		rep.Kernels = append(rep.Kernels, pk)
	}
	rep.TopPhases = prof.PhaseTotals()
	return rep
}

// WriteTable renders the report as the human-readable attribution
// table: kernels sorted heaviest-first with their top phase, then the
// aggregate top-phases list.
func (r ProfileReport) WriteTable(w io.Writer) error {
	ks := make([]ProfileKernel, len(r.Kernels))
	copy(ks, r.Kernels)
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].MeasuredNS > ks[j].MeasuredNS })
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "layer\tkernel\tconfig\texec\tmeasured_ms\tcoverage\ttop_phase\timbalance\tws_hw_bytes")
	for _, k := range ks {
		top := ""
		if len(k.Phases) > 0 {
			top = fmt.Sprintf("%s %.1f%%", k.Phases[0].Phase,
				100*float64(k.Phases[0].NS)/math.Max(1, float64(k.MeasuredNS)))
		}
		imb := ""
		if k.Workers.Launches+k.Workers.NestedLaunches > 0 {
			imb = fmt.Sprintf("max=%.2f mean=%.2f", k.Workers.MaxImbalance, k.Workers.MeanImbalance)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.3f\t%.1f%%\t%s\t%s\t%d\n",
			k.Layer, k.Kernel, k.Config, k.Executions,
			float64(k.MeasuredNS)/1e6, 100*k.Coverage, top, imb, k.WSHighWaterBytes)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\ntop phases:")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, p := range r.TopPhases {
		fmt.Fprintf(tw, "  %s\t%.3fms\tn=%d\n", p.Phase, float64(p.NS)/1e6, p.Count)
	}
	return tw.Flush()
}

// WriteProfileFile exports the current profile: "-" writes the
// human-readable table to stdout, any other path gets the schema'd
// JSON document. This is the shared behaviour of the CLIs' -profile
// flags.
func WriteProfileFile(path string) error {
	if path == "" {
		return nil
	}
	rep := BuildProfileReport()
	if path == "-" {
		return rep.WriteTable(os.Stdout)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding profile: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: writing profile: %w", err)
	}
	return nil
}

// profilePhaseRe matches the profiler's phase-name scheme (the
// validator re-checks it so a hand-edited report cannot smuggle in
// out-of-scheme names).
var profilePhaseRe = regexp.MustCompile(`^ucudnn_ph(_[a-z0-9]+)+$`)

// ValidateProfile checks that data is a structurally valid
// ucudnn-profile-report/v1 document.
func ValidateProfile(data []byte) error {
	var rep ProfileReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("profile: not valid JSON: %w", err)
	}
	if rep.Schema != ProfileSchema {
		return fmt.Errorf("profile: schema %q, want %q", rep.Schema, ProfileSchema)
	}
	if rep.Handles == nil {
		return fmt.Errorf("profile: missing handles array")
	}
	if rep.Kernels == nil {
		return fmt.Errorf("profile: missing kernels array")
	}
	for i, k := range rep.Kernels {
		if k.Kernel == "" {
			return fmt.Errorf("profile: kernels[%d]: empty kernel", i)
		}
		if k.MeasuredNS < 0 || k.AttributedNS < 0 || k.TotalNS < 0 {
			return fmt.Errorf("profile: kernels[%d] %s: negative time", i, k.Kernel)
		}
		if math.IsNaN(k.Coverage) || math.IsInf(k.Coverage, 0) || k.Coverage < 0 {
			return fmt.Errorf("profile: kernels[%d] %s: bad coverage %v", i, k.Kernel, k.Coverage)
		}
		var sum int64
		for _, p := range k.Phases {
			if !profilePhaseRe.MatchString(p.Phase) {
				return fmt.Errorf("profile: kernels[%d] %s: phase %q violates the ucudnn_ph_* scheme", i, k.Kernel, p.Phase)
			}
			if p.NS < 0 || p.Count < 0 {
				return fmt.Errorf("profile: kernels[%d] %s: phase %s negative", i, k.Kernel, p.Phase)
			}
			sum += p.NS
		}
		if sum != k.AttributedNS {
			return fmt.Errorf("profile: kernels[%d] %s: phases sum to %d, attributed_ns %d", i, k.Kernel, sum, k.AttributedNS)
		}
		if w := k.Workers; w.Launches < 0 || w.BusyNS < 0 || w.IdleNS < 0 ||
			w.MaxImbalance < 0 || w.MeanImbalance < 0 {
			return fmt.Errorf("profile: kernels[%d] %s: negative worker accounting", i, k.Kernel)
		}
	}
	for i, p := range rep.TopPhases {
		if !profilePhaseRe.MatchString(p.Phase) {
			return fmt.Errorf("profile: top_phases[%d]: phase %q violates the ucudnn_ph_* scheme", i, p.Phase)
		}
	}
	return nil
}
