package core

import (
	"math/rand"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

// smallConv is a shape small enough for real arithmetic in tests but large
// enough that micro-batching decisions are nontrivial.
func smallConv(n int) (cudnn.TensorDesc, cudnn.FilterDesc, cudnn.ConvDesc, cudnn.TensorDesc, tensor.ConvShape) {
	xd, _ := cudnn.NewTensorDesc(n, 8, 12, 12)
	wd, _ := cudnn.NewFilterDesc(12, 8, 3, 3)
	cd, _ := cudnn.NewConvDesc(1, 1, 1, 1, 1, 1)
	yd, _ := cudnn.GetOutputDim(xd, wd, cd)
	return xd, wd, cd, yd, cudnn.Shape(xd, wd, cd)
}

func newTestHandle(t *testing.T, backend cudnn.Backend, opts ...Option) *Handle {
	t.Helper()
	h, err := New(cudnn.NewHandle(device.P100, backend), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHandleReturnsVirtualAlgoAndZeroWorkspace(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelOnlyBackend)
	xd, wd, cd, yd, _ := smallConv(16)
	algo, err := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if algo != VirtualAlgo {
		t.Fatalf("algo = %v, want virtual", algo)
	}
	ws, err := h.GetConvolutionForwardWorkspaceSize(xd, wd, cd, yd, algo)
	if err != nil || ws != 0 {
		t.Fatalf("virtual workspace = %d, %v", ws, err)
	}
	// Real algorithms still delegate.
	ws2, err := h.GetConvolutionForwardWorkspaceSize(xd, wd, cd, yd, conv.AlgoGemm)
	if err != nil || ws2 == 0 {
		t.Fatalf("delegated workspace = %d, %v", ws2, err)
	}
	perfs, err := h.FindConvolutionForwardAlgorithm(xd, wd, cd, yd)
	if err != nil || len(perfs) != 1 || perfs[0].Algo != VirtualAlgo || perfs[0].Memory != 0 {
		t.Fatalf("find = %v, %v", perfs, err)
	}
}

// End-to-end numeric correctness: the micro-batched plan produces the same
// forward results as an undivided direct convolution.
func TestHandleForwardCorrect(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelBackend, WithPolicy(PolicyPowerOfTwo), WithWorkspaceLimit(1<<20))
	xd, wd, cd, yd, cs := smallConv(10)
	rng := rand.New(rand.NewSource(3))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(12, 8, 3, 3)
	w.Randomize(rng, 0.5)
	y := tensor.NewShaped(cs.OutShape())
	algo, _ := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 1<<20)
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, algo, nil, 0, yd, y); err != nil {
		t.Fatal(err)
	}
	ref := tensor.NewShaped(cs.OutShape())
	if err := conv.Run(conv.Forward, conv.AlgoDirect, cs, x, w, ref, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(y.Data, ref.Data, 1e-3, 1e-3) {
		t.Fatalf("micro-batched forward wrong: maxdiff %g", tensor.MaxAbsDiff(y.Data, ref.Data))
	}
	// The plan is cached: a second call does not re-optimize.
	opt1 := h.OptimizationTime()
	if opt1 <= 0 {
		t.Fatal("optimization time not recorded")
	}
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, algo, nil, 0, yd, y); err != nil {
		t.Fatal(err)
	}
	if h.OptimizationTime() != opt1 {
		t.Fatal("second call re-optimized")
	}
	if len(h.Plans()) != 1 {
		t.Fatalf("plans = %d", len(h.Plans()))
	}
}

// Micro-batched BackwardFilter accumulation equals the undivided gradient,
// including a nonzero user beta.
func TestHandleBackwardFilterAccumulation(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelBackend, WithWorkspaceLimit(1<<20))
	xd, wd, cd, yd, cs := smallConv(9)
	rng := rand.New(rand.NewSource(4))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	dy := tensor.NewShaped(cs.OutShape())
	dy.Randomize(rng, 1)
	dw := tensor.NewFilter(12, 8, 3, 3)
	dw.Randomize(rng, 1)
	ref := dw.Clone()
	algo, _ := h.GetConvolutionBackwardFilterAlgorithm(xd, yd, cd, wd, cudnn.SpecifyWorkspaceLimit, 1<<20)
	if err := h.ConvolutionBackwardFilter(0.5, xd, x, yd, dy, cd, algo, nil, 0.25, wd, dw); err != nil {
		t.Fatal(err)
	}
	if err := conv.Run(conv.BackwardFilter, conv.AlgoDirect, cs, x, ref, dy, 0.5, 0.25, nil); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(dw.Data, ref.Data, 1e-3, 1e-3) {
		t.Fatalf("micro-batched dW wrong: maxdiff %g", tensor.MaxAbsDiff(dw.Data, ref.Data))
	}
}

func TestHandleBackwardDataCorrect(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelBackend, WithWorkspaceLimit(1<<20))
	xd, wd, cd, yd, cs := smallConv(6)
	rng := rand.New(rand.NewSource(5))
	w := tensor.NewFilter(12, 8, 3, 3)
	w.Randomize(rng, 0.5)
	dy := tensor.NewShaped(cs.OutShape())
	dy.Randomize(rng, 1)
	dx := tensor.NewShaped(cs.In)
	algo, _ := h.GetConvolutionBackwardDataAlgorithm(wd, yd, cd, xd, cudnn.SpecifyWorkspaceLimit, 1<<20)
	if err := h.ConvolutionBackwardData(1, wd, w, yd, dy, cd, algo, nil, 0, xd, dx); err != nil {
		t.Fatal(err)
	}
	ref := tensor.NewShaped(cs.In)
	if err := conv.Run(conv.BackwardData, conv.AlgoDirect, cs, ref, w, dy, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(dx.Data, ref.Data, 1e-3, 1e-3) {
		t.Fatalf("micro-batched dX wrong: maxdiff %g", tensor.MaxAbsDiff(dx.Data, ref.Data))
	}
}

// Bypass: calling with a concrete algorithm skips µ-cuDNN and delegates.
func TestHandleDelegatesRealAlgo(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelBackend)
	xd, wd, cd, yd, cs := smallConv(4)
	x := tensor.NewShaped(cs.In)
	w := tensor.NewFilter(12, 8, 3, 3)
	y := tensor.NewShaped(cs.OutShape())
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, conv.AlgoDirect, nil, 0, yd, y); err != nil {
		t.Fatal(err)
	}
	if len(h.Plans()) != 0 {
		t.Fatal("delegated call must not create a plan")
	}
}

func TestHandleWDMode(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelOnlyBackend,
		WithWD(32<<20), WithPolicy(PolicyPowerOfTwo))
	// Register three kernels of a small "network" through Get calls.
	xd, wd, cd, yd, cs := smallConv(32)
	if _, err := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.PreferFastest, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.GetConvolutionBackwardDataAlgorithm(wd, yd, cd, xd, cudnn.PreferFastest, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.GetConvolutionBackwardFilterAlgorithm(xd, yd, cd, wd, cudnn.PreferFastest, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.FinalizeRegistration(); err != nil {
		t.Fatal(err)
	}
	res := h.WDStats()
	if res == nil {
		t.Fatal("WD did not run")
	}
	if res.TotalWorkspace > 32<<20 {
		t.Fatalf("WD workspace %d over budget", res.TotalWorkspace)
	}
	if len(res.Plans) != 3 {
		t.Fatalf("WD planned %d kernels", len(res.Plans))
	}
	// Registration is closed: new Get calls don't grow the kernel list.
	xd2, wd2, cd2, yd2, _ := smallConv(64)
	if _, err := h.GetConvolutionForwardAlgorithm(xd2, wd2, cd2, yd2, cudnn.PreferFastest, 0); err != nil {
		t.Fatal(err)
	}
	if got := h.WDStats(); len(got.Plans) != 3 {
		t.Fatal("post-finalize registration must be ignored")
	}
	// Executing a planned kernel works in model-only mode (nil buffers).
	if err := h.ConvolutionForward(1, xd, nil, wd, nil, cd, VirtualAlgo, nil, 0, yd, nil); err != nil {
		t.Fatal(err)
	}
	// An unregistered kernel falls back to WR.
	if err := h.ConvolutionForward(1, xd2, nil, wd2, nil, cd2, VirtualAlgo, nil, 0, yd2, nil); err != nil {
		t.Fatal(err)
	}
	_ = cs
}

func TestHandleWDSharedSegments(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelOnlyBackend, WithWD(32<<20))
	xd, wd, cd, yd, _ := smallConv(32)
	// Same forward kernel registered twice (replicated layer).
	h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.PreferFastest, 0)
	h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.PreferFastest, 0)
	if err := h.FinalizeRegistration(); err != nil {
		t.Fatal(err)
	}
	res := h.WDStats()
	used := h.Inner().Mem().Used()
	if used != res.TotalWorkspace {
		t.Fatalf("allocated %d != WD total %d (segments must be shared)", used, res.TotalWorkspace)
	}
}

func TestHandleWDRequiresBudget(t *testing.T) {
	if _, err := New(cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend), WithWD(0)); err == nil {
		t.Fatal("WD without budget must error")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("UCUDNN_BATCH_SIZE_POLICY", "all")
	t.Setenv("UCUDNN_WORKSPACE_LIMIT", "1048576")
	t.Setenv("UCUDNN_TOTAL_WORKSPACE_SIZE", "8388608")
	t.Setenv("UCUDNN_WORKERS", "4")
	h := newTestHandle(t, cudnn.ModelOnlyBackend, FromEnv())
	o := h.Options()
	if o.Policy != PolicyAll || o.WorkspaceLimit != 1<<20 || o.Mode != WD ||
		o.TotalWorkspaceLimit != 8<<20 || o.Workers != 4 {
		t.Fatalf("env options wrong: %+v", o)
	}
	if WR.String() != "WR" || WD.String() != "WD" {
		t.Fatal("mode strings")
	}
}

func TestFromEnvIgnoresBadValues(t *testing.T) {
	t.Setenv("UCUDNN_BATCH_SIZE_POLICY", "nope")
	t.Setenv("UCUDNN_WORKSPACE_LIMIT", "xyz")
	t.Setenv("UCUDNN_TOTAL_WORKSPACE_SIZE", "")
	t.Setenv("UCUDNN_WORKERS", "-3")
	h := newTestHandle(t, cudnn.ModelOnlyBackend, FromEnv())
	o := h.Options()
	if o.Policy != PolicyPowerOfTwo || o.WorkspaceLimit != DefaultWorkspaceLimit || o.Mode != WR || o.Workers != 1 {
		t.Fatalf("bad env values must keep defaults: %+v", o)
	}
}

func TestHandleParallelWorkersPlanIdentical(t *testing.T) {
	// Parallel micro-benchmarking (the multi-GPU evaluation) must not
	// change the resulting plan: the model backend is deterministic.
	xd, wd, cd, yd, _ := smallConv(32)
	var plans []string
	for _, workers := range []int{1, 4} {
		h := newTestHandle(t, cudnn.ModelOnlyBackend, WithWorkers(workers), WithWorkspaceLimit(1<<20))
		algo, _ := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.PreferFastest, 0)
		if err := h.ConvolutionForward(1, xd, nil, wd, nil, cd, algo, nil, 0, yd, nil); err != nil {
			t.Fatal(err)
		}
		ps := h.Plans()
		if len(ps) != 1 {
			t.Fatal("one plan expected")
		}
		plans = append(plans, ps[0].Config.String())
	}
	if plans[0] != plans[1] {
		t.Fatalf("workers changed the plan: %v vs %v", plans[0], plans[1])
	}
}

// WD mode with real arithmetic: registered kernels execute their ILP-
// chosen micro-batched configurations and the numbers match the direct
// reference.
func TestHandleWDRealCompute(t *testing.T) {
	h := newTestHandle(t, cudnn.ModelBackend, WithWD(2<<20), WithPolicy(core_TestPolicy()))
	xd, wd, cd, yd, cs := smallConv(12)
	if _, err := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.PreferFastest, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.GetConvolutionBackwardFilterAlgorithm(xd, yd, cd, wd, cudnn.PreferFastest, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.FinalizeRegistration(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	w.Randomize(rng, 0.5)
	y := tensor.NewShaped(cs.OutShape())
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, VirtualAlgo, nil, 0, yd, y); err != nil {
		t.Fatal(err)
	}
	ref := tensor.NewShaped(cs.OutShape())
	if err := conv.Run(conv.Forward, conv.AlgoDirect, cs, x, w, ref, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(y.Data, ref.Data, 1e-3, 1e-3) {
		t.Fatalf("WD forward wrong: %g", tensor.MaxAbsDiff(y.Data, ref.Data))
	}
	// Backward filter through the WD plan, with accumulation.
	dy := tensor.NewShaped(cs.OutShape())
	dy.Randomize(rng, 1)
	dw := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	if err := h.ConvolutionBackwardFilter(1, xd, x, yd, dy, cd, VirtualAlgo, nil, 0, wd, dw); err != nil {
		t.Fatal(err)
	}
	refDw := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	if err := conv.Run(conv.BackwardFilter, conv.AlgoDirect, cs, x, refDw, dy, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(dw.Data, refDw.Data, 1e-3, 1e-3) {
		t.Fatalf("WD dW wrong: %g", tensor.MaxAbsDiff(dw.Data, refDw.Data))
	}
}

// core_TestPolicy lets the WD real-compute test pick a dividing policy.
func core_TestPolicy() Policy { return PolicyPowerOfTwo }
