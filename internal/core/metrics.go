package core

import (
	"ucudnn/internal/conv"
	"ucudnn/internal/obs"
)

// Metric names exported by the µ-cuDNN core. They are documented in
// README.md ("Observability"); renaming one is a breaking change for
// dashboards scraping the Prometheus exposition.
const (
	MetricAlgoSelected     = "ucudnn_algo_selected_total"
	MetricMicrobatchCount  = "ucudnn_microbatch_count"
	MetricWSRequested      = "ucudnn_workspace_requested_bytes_total"
	MetricWSGranted        = "ucudnn_workspace_granted_bytes_total"
	MetricCacheHits        = "ucudnn_cache_hits_total"
	MetricCacheMisses      = "ucudnn_cache_misses_total"
	MetricCacheFileLoads   = "ucudnn_cache_file_loads_total"
	MetricCacheFileStores  = "ucudnn_cache_file_stores_total"
	MetricCacheEntries     = "ucudnn_cache_entries"
	MetricCacheCorrupt     = "ucudnn_cache_corrupt_lines_total"
	MetricFallback         = "ucudnn_fallback_total"
	MetricDegradedPlans    = "ucudnn_fault_degraded_plans"
	MetricBenchKernels     = "ucudnn_bench_kernels_total"
	MetricWRSeconds        = "ucudnn_opt_wr_seconds"
	MetricWRDPStates       = "ucudnn_opt_wr_dp_states_total"
	MetricDesirableSeconds = "ucudnn_opt_desirable_seconds"
	MetricDesirableStates  = "ucudnn_opt_desirable_dp_states_total"
	MetricDesirableFront   = "ucudnn_opt_desirable_front_size"
	MetricWDSeconds        = "ucudnn_opt_wd_seconds"
	MetricWDSolveSeconds   = "ucudnn_ilp_solve_seconds"
	MetricILPVariables     = "ucudnn_ilp_variables"
	MetricILPNodes         = "ucudnn_ilp_nodes_total"
	MetricSimplexIters     = "ucudnn_lp_simplex_iterations_total"
	MetricWDWorkspace      = "ucudnn_wd_total_workspace_bytes"
	MetricWDPredicted      = "ucudnn_wd_predicted_time_seconds"
)

// metricSet holds pre-resolved handles into an obs.Registry for the hot
// and warm paths of the core. A set built over a nil registry has only
// nil handles, whose operations are no-ops — instrumented code never
// branches on whether observability is enabled (the ISSUE's "nil-safe
// no-op default").
type metricSet struct {
	reg *obs.Registry

	microbatchCount *obs.Histogram
	wsRequested     *obs.Counter
	wsGranted       *obs.Counter

	cacheHits         *obs.Counter
	cacheMisses       *obs.Counter
	cacheFileLoads    *obs.Counter
	cacheFileStores   *obs.Counter
	cacheEntries      *obs.Gauge
	cacheCorruptLines *obs.Counter

	degradedPlans *obs.Gauge

	benchKernels *obs.Counter

	wrSeconds        *obs.Histogram
	wrDPStates       *obs.Counter
	desirableSeconds *obs.Histogram
	desirableStates  *obs.Counter
	desirableFront   *obs.Histogram
	wdSeconds        *obs.Histogram
	wdSolveSeconds   *obs.Histogram
	ilpVariables     *obs.Gauge
	ilpNodes         *obs.Counter
	simplexIters     *obs.Counter
	wdWorkspace      *obs.Gauge
	wdPredicted      *obs.Gauge
}

// newMetricSet resolves the core's metric handles in r. A nil r yields a
// set of nil handles (all operations no-ops).
func newMetricSet(r *obs.Registry) *metricSet {
	ms := &metricSet{reg: r}
	if r == nil {
		return ms
	}
	ms.microbatchCount = r.Histogram(MetricMicrobatchCount, obs.CountBuckets)
	ms.wsRequested = r.Counter(MetricWSRequested)
	ms.wsGranted = r.Counter(MetricWSGranted)
	ms.cacheHits = r.Counter(MetricCacheHits)
	ms.cacheMisses = r.Counter(MetricCacheMisses)
	ms.cacheFileLoads = r.Counter(MetricCacheFileLoads)
	ms.cacheFileStores = r.Counter(MetricCacheFileStores)
	ms.cacheEntries = r.Gauge(MetricCacheEntries)
	ms.cacheCorruptLines = r.Counter(MetricCacheCorrupt)
	ms.degradedPlans = r.Gauge(MetricDegradedPlans)
	ms.benchKernels = r.Counter(MetricBenchKernels)
	ms.wrSeconds = r.Histogram(MetricWRSeconds, obs.DurationBuckets)
	ms.wrDPStates = r.Counter(MetricWRDPStates)
	ms.desirableSeconds = r.Histogram(MetricDesirableSeconds, obs.DurationBuckets)
	ms.desirableStates = r.Counter(MetricDesirableStates)
	ms.desirableFront = r.Histogram(MetricDesirableFront, obs.CountBuckets)
	ms.wdSeconds = r.Histogram(MetricWDSeconds, obs.DurationBuckets)
	ms.wdSolveSeconds = r.Histogram(MetricWDSolveSeconds, obs.DurationBuckets)
	ms.ilpVariables = r.Gauge(MetricILPVariables)
	ms.ilpNodes = r.Counter(MetricILPNodes)
	ms.simplexIters = r.Counter(MetricSimplexIters)
	ms.wdWorkspace = r.Gauge(MetricWDWorkspace)
	ms.wdPredicted = r.Gauge(MetricWDPredicted)
	return ms
}

// algoSelected counts one micro-batch kernel execution of algo for op.
// The series is labeled, so it is resolved per call; the nil-registry
// path returns before building labels.
func (ms *metricSet) algoSelected(op conv.Op, algo conv.Algo) {
	if ms.reg == nil {
		return
	}
	ms.reg.Counter(MetricAlgoSelected, obs.L("op", op.String()), obs.L("algo", algo.String())).Inc()
}

// fallback counts one successful degradation, labeled with the ladder
// stage that recovered execution (pareto, finer, floor).
func (ms *metricSet) fallback(stage string) {
	if ms.reg == nil {
		return
	}
	ms.reg.Counter(MetricFallback, obs.L("stage", stage)).Inc()
}
