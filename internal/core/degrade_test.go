package core

import (
	"math"
	"math/rand"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/faults"
	"ucudnn/internal/obs"
	"ucudnn/internal/tensor"
)

// gemmOnly pins the algorithm universe to AlgoGemm, whose batch-striped
// kernels are bit-identical across every micro-batch division (ascending-n
// dW reduction) — the precondition for the bitwise assertions below.
func gemmOnly(op conv.Op, a conv.Algo) bool { return a == conv.AlgoGemm }

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// fallbackTotal sums ucudnn_fallback_total across the ladder stages.
func fallbackTotal(reg *obs.Registry) int64 {
	var n int64
	for _, s := range []string{"pareto", "finer", "floor"} {
		n += reg.Counter(MetricFallback, obs.L("stage", s)).Value()
	}
	return n
}

// An injected Convolve fault on the planned configuration must not surface
// to the caller: the ladder retries and, with the algorithm pinned, the
// recovered output is bit-identical to an unfaulted run.
func TestDegradeConvolveFaultBitwiseIdentical(t *testing.T) {
	xd, wd, cd, yd, cs := smallConv(10)
	rng := rand.New(rand.NewSource(11))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	w.Randomize(rng, 0.5)

	run := func(reg *obs.Registry) []float32 {
		h := newTestHandle(t, cudnn.ModelBackend,
			WithWorkspaceLimit(1<<20), WithAlgoFilter(gemmOnly), WithMetrics(reg))
		y := tensor.NewShaped(cs.OutShape())
		if err := h.ConvolutionForward(1, xd, x, wd, w, cd, VirtualAlgo, nil, 0, yd, y); err != nil {
			t.Fatal(err)
		}
		return y.Data
	}

	ref := run(obs.NewRegistry())

	reg := obs.NewRegistry()
	fr := faults.New(faults.Rule{Point: faults.PointConvolve, Trigger: faults.Nth(1)})
	faults.Install(fr)
	defer faults.Install(nil)
	got := run(reg)
	faults.Install(nil)

	if len(fr.Shots()) == 0 {
		t.Fatal("fault never fired")
	}
	if !bitsEqual(got, ref) {
		t.Fatalf("degraded output not bit-identical: maxdiff %g", tensor.MaxAbsDiff(got, ref))
	}
	if n := fallbackTotal(reg); n != 1 {
		t.Fatalf("%s = %d, want 1 recovery", MetricFallback, n)
	}
	if g := reg.Gauge(MetricDegradedPlans).Value(); g != 1 {
		t.Fatalf("%s = %v, want 1", MetricDegradedPlans, g)
	}
}

// A fault that fires mid-configuration on an accumulating BackwardFilter
// call (user beta != 0) leaves a half-blended dW behind; the snapshot
// restore must rewind it before the retry so the recovered gradient is
// bit-identical to an unfaulted run.
func TestDegradeBackwardFilterRestoresBlendedOutput(t *testing.T) {
	xd, wd, cd, yd, cs := smallConv(9)
	full, ok := conv.Workspace(conv.BackwardFilter, conv.AlgoGemm, cs)
	if !ok || full <= 1 {
		t.Fatalf("gemm BackwardFilter workspace = %d, %v", full, ok)
	}
	rng := rand.New(rand.NewSource(12))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	dy := tensor.NewShaped(cs.OutShape())
	dy.Randomize(rng, 1)
	dw0 := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	dw0.Randomize(rng, 1)

	run := func() []float32 {
		// A limit one byte under the undivided requirement forces a plan
		// with at least two micro-batches, so Nth(2) hits mid-config.
		h := newTestHandle(t, cudnn.ModelBackend,
			WithWorkspaceLimit(full-1), WithAlgoFilter(gemmOnly))
		dw := dw0.Clone()
		if err := h.ConvolutionBackwardFilter(0.5, xd, x, yd, dy, cd, VirtualAlgo, nil, 0.25, wd, dw); err != nil {
			t.Fatal(err)
		}
		if len(h.Plans()) != 1 || len(h.Plans()[0].Config) < 2 {
			t.Fatalf("plan %v not micro-batched; fault would not hit mid-config", h.Plans())
		}
		return dw.Data
	}

	ref := run()

	fr := faults.New(faults.Rule{Point: faults.PointConvolve, Trigger: faults.Nth(2)})
	faults.Install(fr)
	defer faults.Install(nil)
	got := run()
	faults.Install(nil)

	if len(fr.Shots()) == 0 {
		t.Fatal("fault never fired")
	}
	if !bitsEqual(got, ref) {
		t.Fatalf("restored dW not bit-identical: maxdiff %g", tensor.MaxAbsDiff(got, ref))
	}
}

// A shrunk arena grant leaves the arena below the planned configuration's
// MinWorkspace floor, so its kernels refuse to run; the ladder must find a
// configuration that fits what was actually granted, bit-identical to an
// unfaulted run since the algorithm stays pinned.
func TestDegradeArenaShrinkRecovers(t *testing.T) {
	xd, wd, cd, yd, cs := smallConv(8)
	rng := rand.New(rand.NewSource(13))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	w.Randomize(rng, 0.5)

	run := func(reg *obs.Registry) []float32 {
		h := newTestHandle(t, cudnn.ModelBackend,
			WithWorkspaceLimit(1<<20), WithAlgoFilter(gemmOnly), WithMetrics(reg))
		y := tensor.NewShaped(cs.OutShape())
		if err := h.ConvolutionForward(1, xd, x, wd, w, cd, VirtualAlgo, nil, 0, yd, y); err != nil {
			t.Fatal(err)
		}
		return y.Data
	}

	ref := run(obs.NewRegistry())

	// Shrink only the first grant — the WR plan's own arena allocation —
	// eight-fold, below the plan's single-strip floor; later grants (the
	// ladder re-growing the arena for degraded configurations) succeed.
	reg := obs.NewRegistry()
	fr := faults.New(faults.Rule{Point: faults.PointArenaGrow, Trigger: faults.Nth(1), Shrink: 8})
	faults.Install(fr)
	defer faults.Install(nil)
	got := run(reg)
	faults.Install(nil)

	if len(fr.Shots()) == 0 {
		t.Fatal("fault never fired")
	}
	if n := fallbackTotal(reg); n != 1 {
		t.Fatalf("%s = %d, want 1 (shrunk arena cannot hold the planned workspace)", MetricFallback, n)
	}
	if !bitsEqual(got, ref) {
		t.Fatalf("recovered output not bit-identical: maxdiff %g", tensor.MaxAbsDiff(got, ref))
	}
}

// Persistent Find*-path faults starve benchmarking entirely, so planning
// itself fails; the shape-arithmetic stages must still recover execution.
func TestDegradeFindStarvedRecovers(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy Policy
		stage  string
	}{
		// Power-of-two candidate sizes give stage 2 finer divisions to try.
		{"finer", PolicyPowerOfTwo, "finer"},
		// Undivided leaves no finer division, forcing the serial floor.
		{"floor", PolicyUndivided, "floor"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			faults.Install(faults.New(faults.Rule{Point: faults.PointFind, Trigger: faults.EveryK(1)}))
			defer faults.Install(nil)

			reg := obs.NewRegistry()
			h := newTestHandle(t, cudnn.ModelBackend,
				WithWorkspaceLimit(1<<20), WithPolicy(tc.policy),
				WithAlgoFilter(gemmOnly), WithMetrics(reg))
			xd, wd, cd, yd, cs := smallConv(8)
			rng := rand.New(rand.NewSource(14))
			x := tensor.NewShaped(cs.In)
			x.Randomize(rng, 1)
			w := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
			w.Randomize(rng, 0.5)
			y := tensor.NewShaped(cs.OutShape())
			if err := h.ConvolutionForward(1, xd, x, wd, w, cd, VirtualAlgo, nil, 0, yd, y); err != nil {
				t.Fatal(err)
			}
			faults.Install(nil)

			if got := reg.Counter(MetricFallback, obs.L("stage", tc.stage)).Value(); got != 1 {
				t.Fatalf("%s{stage=%s} = %d, want 1", MetricFallback, tc.stage, got)
			}
			ref := tensor.NewShaped(cs.OutShape())
			if err := conv.Run(conv.Forward, conv.AlgoGemm, cs, x, w, ref, 1, 0,
				make([]float32, 1<<18)); err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(y.Data, ref.Data) {
				t.Fatalf("recovered output not bit-identical: maxdiff %g", tensor.MaxAbsDiff(y.Data, ref.Data))
			}
			// The recovery is adopted as the kernel's plan: a second call
			// executes it directly (no further fallback).
			if err := h.ConvolutionForward(1, xd, x, wd, w, cd, VirtualAlgo, nil, 0, yd, y); err != nil {
				t.Fatal(err)
			}
			if got := fallbackTotal(reg); got != 1 {
				t.Fatalf("second call degraded again: %s = %d", MetricFallback, got)
			}
		})
	}
}

// When every stage is exhausted the original cause surfaces, wrapped so the
// injected fault stays identifiable for the replayer.
func TestDegradeExhaustedSurfacesCause(t *testing.T) {
	faults.Install(faults.New(
		faults.Rule{Point: faults.PointConvolve, Trigger: faults.EveryK(1)},
	))
	defer faults.Install(nil)

	h := newTestHandle(t, cudnn.ModelBackend,
		WithWorkspaceLimit(1<<20), WithAlgoFilter(gemmOnly))
	xd, wd, cd, yd, cs := smallConv(4)
	x := tensor.NewShaped(cs.In)
	w := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	y := tensor.NewShaped(cs.OutShape())
	err := h.ConvolutionForward(1, xd, x, wd, w, cd, VirtualAlgo, nil, 0, yd, y)
	faults.Install(nil)
	if err == nil {
		t.Fatal("every Convolve faulted; execution cannot have succeeded")
	}
	if !faults.IsInjected(err) {
		t.Fatalf("surfaced error %v does not unwrap to the injected fault", err)
	}
}
