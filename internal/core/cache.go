package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/faults"
	"ucudnn/internal/flight"
	"ucudnn/internal/tensor"
)

// Cache stores kernel benchmark results in memory and, optionally, in an
// append-only JSON-lines file database (paper §III-D): the file enables
// offline benchmarking and sharing results across a homogeneous cluster
// via a network filesystem.
type Cache struct {
	mu   sync.Mutex
	mem  map[string][]cudnn.AlgoPerf
	path string
	file *os.File
	// w buffers Put's file appends so a benchmarking sweep is not one
	// write(2) per record; Close (and Flush) drain it. Nil iff file is.
	w     *bufio.Writer
	stats CacheStats
	m     *metricSet
}

// CacheStats is a snapshot of the cache's accounting: lookup outcomes,
// file-database traffic, and current size.
type CacheStats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// FileLoads counts records loaded from the file database at open;
	// FileStores counts records appended to it by Put.
	FileLoads, FileStores int64
	// CorruptLines counts file-database lines skipped at open because
	// they failed to parse (torn writes, truncation, corruption).
	CorruptLines int64
	// Entries is the current number of in-memory entries.
	Entries int
}

// Stats returns a snapshot of the cache's accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.mem)
	return s
}

// instrument mirrors the cache's accounting into ms (live counters for
// the observability layer). Loads that happened before instrumentation
// (the eager file read in NewCache) are replayed as one Add.
func (c *Cache) instrument(ms *metricSet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = ms
	ms.cacheFileLoads.Add(c.stats.FileLoads)
	ms.cacheCorruptLines.Add(c.stats.CorruptLines)
	ms.cacheEntries.Set(float64(len(c.mem)))
}

// NewCache creates a cache; path may be empty for memory-only operation.
// An existing database file is loaded eagerly.
func NewCache(path string) (*Cache, error) {
	c := &Cache{mem: map[string][]cudnn.AlgoPerf{}, path: path, m: newMetricSet(nil)}
	if path == "" {
		return c, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: opening benchmark db: %w", err)
	}
	c.file = f
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := faults.Mangle(faults.PointCacheLoad, sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec dbRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			// A benchmark database is advisory: a torn, truncated or
			// corrupted line costs a re-benchmark, not the run. Skip it,
			// count it (CacheStats.CorruptLines, replayed into obs by
			// instrument), and keep loading the rest of the file.
			c.stats.CorruptLines++
			continue
		}
		c.mem[rec.Key] = rec.toPerfs()
		c.stats.FileLoads++
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: reading benchmark db: %w", err)
	}
	c.w = bufio.NewWriter(f)
	return c, nil
}

// Flush forces buffered Put records out to the file database.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Cache) flushLocked() error {
	if c.w == nil {
		return nil
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("core: writing benchmark db: %w", err)
	}
	return nil
}

// Close flushes buffered records and releases the file database, if any.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.file == nil {
		return nil
	}
	ferr := c.flushLocked()
	err := c.file.Close()
	c.file = nil
	c.w = nil
	if ferr != nil {
		return ferr
	}
	return err
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

type dbPerf struct {
	Algo int   `json:"algo"`
	NS   int64 `json:"ns"`
	Mem  int64 `json:"mem"`
}

type dbRecord struct {
	Key   string   `json:"key"`
	Perfs []dbPerf `json:"perfs"`
}

func (r dbRecord) toPerfs() []cudnn.AlgoPerf {
	out := make([]cudnn.AlgoPerf, len(r.Perfs))
	for i, p := range r.Perfs {
		out[i] = cudnn.AlgoPerf{Algo: conv.Algo(p.Algo), Time: time.Duration(p.NS), Memory: p.Mem}
	}
	return out
}

// CacheKey builds the lookup key of one benchmarked kernel instance. The
// device and timing backend are part of the key so one database can serve
// a heterogeneous set of runs.
func CacheKey(dev string, backend cudnn.Backend, op conv.Op, cs tensor.ConvShape) string {
	p := cs.Params.Normalized()
	return fmt.Sprintf("%s|%s|%s|%dx%dx%dx%d|%dx%dx%dx%d|p%dx%d|s%dx%d|d%dx%d",
		dev, backend, op,
		cs.In.N, cs.In.C, cs.In.H, cs.In.W,
		cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S,
		p.PadH, p.PadW, p.StrideH, p.StrideW, p.DilationH, p.DilationW)
}

// Get returns the cached perfs for key.
func (c *Cache) Get(key string) ([]cudnn.AlgoPerf, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.mem[key]
	if ok {
		c.stats.Hits++
		c.m.cacheHits.Inc()
		flight.Rec(evCacheHit, int64(len(c.mem)), 0, 0, 0)
	} else {
		c.stats.Misses++
		c.m.cacheMisses.Inc()
		flight.Rec(evCacheMiss, int64(len(c.mem)), 0, 0, 0)
	}
	return p, ok
}

// Put stores perfs for key, appending to the file database when present.
func (c *Cache) Put(key string, perfs []cudnn.AlgoPerf) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[key] = perfs
	c.m.cacheEntries.Set(float64(len(c.mem)))
	if c.file == nil {
		return nil
	}
	rec := dbRecord{Key: key}
	for _, p := range perfs {
		rec.Perfs = append(rec.Perfs, dbPerf{Algo: int(p.Algo), NS: int64(p.Time), Mem: p.Memory})
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := c.w.Write(data); err != nil {
		return fmt.Errorf("core: writing benchmark db: %w", err)
	}
	c.stats.FileStores++
	c.m.cacheFileStores.Inc()
	return nil
}
