package core

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/faults"
	"ucudnn/internal/obs"
	"ucudnn/internal/tensor"
)

// fastestFitting mirrors the T'(m) table of the WR dynamic program: the
// fastest per-size micro-configuration whose workspace fits the limit.
func fastestFitting(perfs map[int][]cudnn.AlgoPerf, sizes []int, limit int64) map[int]time.Duration {
	t1 := make(map[int]time.Duration, len(sizes))
	for _, m := range sizes {
		for _, p := range perfs[m] {
			if p.Memory <= limit {
				t1[m] = p.Time
				break
			}
		}
	}
	return t1
}

// bruteBest enumerates every partition of n into candidate sizes (ordered
// non-increasing, so each multiset once) and returns the cheapest total
// time — an independent oracle for the DP, affordable because n <= 16.
func bruteBest(sizes []int, t1 map[int]time.Duration, n int) (time.Duration, bool) {
	var rec func(rem, maxPart int) (time.Duration, bool)
	rec = func(rem, maxPart int) (time.Duration, bool) {
		if rem == 0 {
			return 0, true
		}
		var best time.Duration
		found := false
		for _, m := range sizes { // ascending
			if m > rem || m > maxPart {
				break
			}
			tm, ok := t1[m]
			if !ok {
				continue
			}
			sub, ok := rec(rem-m, m)
			if !ok {
				continue
			}
			if c := tm + sub; !found || c < best {
				best, found = c, true
			}
		}
		return best, found
	}
	return rec(n, n)
}

// The WR dynamic program must be exactly optimal over its candidate-size
// universe: for every mini-batch n <= 16, both batch-size policies, both
// workspace-bearing ops, and a workspace limit swept through every
// distinct algorithm memory requirement, the plan's time equals the
// brute-force partition minimum and every micro-batch fits the limit.
func TestWROptimalUpTo16(t *testing.T) {
	b := modelBencher()
	for _, op := range []conv.Op{conv.Forward, conv.BackwardFilter} {
		for n := 2; n <= 16; n++ {
			k := Kernel{Op: op, Shape: conv2Shape(n)}
			for _, policy := range []Policy{PolicyPowerOfTwo, PolicyAll} {
				sizes := policy.CandidateSizes(n)
				perfs := b.PerfsForSizes(k, sizes)

				// Sweep the limit through every distinct memory demand, the
				// points where the fitting set — and thus the optimum — can
				// change, plus one below the global minimum (no solution) and
				// one effectively unbounded.
				limitSet := map[int64]bool{1 << 26: true}
				minMem := int64(1) << 62
				for _, m := range sizes {
					for _, p := range perfs[m] {
						limitSet[p.Memory] = true
						if p.Memory < minMem {
							minMem = p.Memory
						}
					}
				}
				limitSet[minMem-1] = true
				limits := make([]int64, 0, len(limitSet))
				for l := range limitSet {
					limits = append(limits, l)
				}
				sort.Slice(limits, func(i, j int) bool { return limits[i] < limits[j] })

				for _, limit := range limits {
					t1 := fastestFitting(perfs, sizes, limit)
					want, feasible := bruteBest(sizes, t1, n)
					plan, err := OptimizeWR(b, k, limit, policy)
					if !feasible {
						if err == nil {
							t.Fatalf("%v n=%d %v limit=%d: DP found %v but brute force says infeasible", op, n, policy, limit, plan)
						}
						continue
					}
					if err != nil {
						t.Fatalf("%v n=%d %v limit=%d: brute force %v feasible but DP errored: %v", op, n, policy, limit, want, err)
					}
					if plan.Time != want {
						t.Fatalf("%v n=%d %v limit=%d: DP time %v != brute-force optimum %v (plan %v)",
							op, n, policy, limit, plan.Time, want, plan)
					}
					if got := plan.Config.TotalBatch(); got != n {
						t.Fatalf("%v n=%d: plan covers %d samples: %v", op, n, got, plan)
					}
					for _, mc := range plan.Config {
						ws, ok := conv.Workspace(op, mc.Algo, k.Shape.WithN(mc.BatchSize))
						if !ok || ws > limit {
							t.Fatalf("%v n=%d limit=%d: micro-batch %v needs %d bytes (ok=%v), over budget", op, n, limit, mc, ws, ok)
						}
					}
				}
			}
		}
	}
}

// After any fault-forced degradation, the adopted plan must still be a
// valid division of the mini-batch within the per-kernel workspace budget,
// and — with the algorithm pinned — produce bit-identical output. Trials
// randomize the batch size, fault point, firing index, and shrink factor
// from a fixed seed, so a failure names the trial that reproduces it.
func TestDegradedDivisionsSatisfyBudget(t *testing.T) {
	const trials = 12
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		n := 6 + rng.Intn(8)
		var rule faults.Rule
		if trial%2 == 0 {
			rule = faults.Rule{Point: faults.PointArenaGrow, Trigger: faults.Nth(1), Shrink: 2 + rng.Int63n(31)}
		} else {
			rule = faults.Rule{Point: faults.PointConvolve, Trigger: faults.Nth(1 + rng.Int63n(2))}
		}

		xd, wd, cd, yd, cs := smallConv(n)
		full, ok := conv.Workspace(conv.Forward, conv.AlgoGemm, cs)
		if !ok {
			t.Fatal("gemm forward has no workspace model")
		}
		limit := full - 1 // force a divided plan so faults land mid-config
		trng := rand.New(rand.NewSource(int64(1000 + trial)))
		x := tensor.NewShaped(cs.In)
		x.Randomize(trng, 1)
		w := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
		w.Randomize(trng, 0.5)

		run := func(reg *obs.Registry) ([]float32, []Plan) {
			h := newTestHandle(t, cudnn.ModelBackend,
				WithWorkspaceLimit(limit), WithAlgoFilter(gemmOnly), WithMetrics(reg))
			y := tensor.NewShaped(cs.OutShape())
			if err := h.ConvolutionForward(1, xd, x, wd, w, cd, VirtualAlgo, nil, 0, yd, y); err != nil {
				t.Fatalf("trial %d (n=%d rule %v): %v", trial, n, rule, err)
			}
			return y.Data, h.Plans()
		}

		ref, _ := run(obs.NewRegistry())

		reg := obs.NewRegistry()
		fr := faults.New(rule)
		faults.Install(fr)
		got, plans := run(reg)
		faults.Install(nil)

		if !bitsEqual(got, ref) {
			t.Fatalf("trial %d (n=%d rule %v): degraded output not bit-identical", trial, n, rule)
		}
		fired := len(fr.Shots()) > 0
		if fired && fallbackTotal(reg) == 0 {
			t.Fatalf("trial %d (n=%d rule %v): fault fired but no fallback recorded", trial, n, rule)
		}
		for _, p := range plans {
			if err := p.Config.Validate(n); err != nil {
				t.Fatalf("trial %d (n=%d rule %v): adopted plan invalid: %v", trial, n, rule, err)
			}
			// The budget may be exceeded only down at the MinWorkspace floor,
			// where correctness overrides the limit.
			var floor int64
			for _, mc := range p.Config {
				if f, ok := conv.MinWorkspace(conv.Forward, mc.Algo, cs.WithN(mc.BatchSize)); ok && f > floor {
					floor = f
				}
			}
			if p.Workspace > limit && p.Workspace > floor {
				t.Fatalf("trial %d (n=%d rule %v): adopted plan %v exceeds %d-byte budget (floor %d)", trial, n, rule, p, limit, floor)
			}
		}
	}
}
