package core

import (
	"strconv"

	"ucudnn/internal/conv"
	"ucudnn/internal/flight"
)

// Flight-recorder event names emitted by the core (see internal/flight
// and the "Observability" section of DESIGN.md). Like metric names,
// they are compile-time constants — the metricname analyzer enforces
// the ucudnn_ev_* scheme at every registration site.
const (
	// EvKernelLaunch marks Handle.execute entering a planned kernel:
	// a=handle id, b=op, c=micro-batch divisions, d=plan workspace bytes
	// (c=d=0 when planning itself failed and execution goes straight to
	// the degradation ladder).
	EvKernelLaunch flight.Name = "ucudnn_ev_kernel_launch"
	// EvKernelFinish marks Handle.execute returning: a=handle id, b=op,
	// c=1 on success / 0 on failure, d=simulated device time consumed
	// (nanoseconds).
	EvKernelFinish flight.Name = "ucudnn_ev_kernel_finish"
	// EvMicroKernel marks one micro-batch kernel dispatch: a=handle id,
	// b=algorithm, c=micro-batch size, d=sample offset in the mini-batch.
	EvMicroKernel flight.Name = "ucudnn_ev_micro_kernel"
	// EvArenaGrow marks workspace-arena growth (or a fault-curtailed
	// grant): a=handle id, b=requested bytes, c=granted bytes, d=arena
	// bytes after the call.
	EvArenaGrow flight.Name = "ucudnn_ev_arena_grow"
	// EvFallback marks degradation-ladder transitions: a=handle id,
	// b=stage (0=enter, 1=pareto, 2=finer, 3=floor), c=op, d=1 when the
	// stage adopted a working plan.
	EvFallback flight.Name = "ucudnn_ev_fallback"
	// EvCacheHit / EvCacheMiss mark benchmark-cache lookups: a=current
	// entry count.
	EvCacheHit  flight.Name = "ucudnn_ev_cache_hit"
	EvCacheMiss flight.Name = "ucudnn_ev_cache_miss"
)

var (
	evKernelLaunch = flight.Register(EvKernelLaunch, fmtKernelLaunch)
	evKernelFinish = flight.Register(EvKernelFinish, fmtKernelFinish)
	evMicroKernel  = flight.Register(EvMicroKernel, fmtMicroKernel)
	evArenaGrow    = flight.Register(EvArenaGrow, fmtArenaGrow)
	evFallback     = flight.Register(EvFallback, fmtFallback)
	evCacheHit     = flight.Register(EvCacheHit, fmtCacheEntries)
	evCacheMiss    = flight.Register(EvCacheMiss, fmtCacheEntries)
)

func fmtKernelLaunch(a, b, c, d int64) string {
	return "handle=" + strconv.FormatInt(a, 10) + " op=" + conv.Op(b).String() +
		" divisions=" + strconv.FormatInt(c, 10) + " ws=" + strconv.FormatInt(d, 10)
}

func fmtKernelFinish(a, b, c, d int64) string {
	return "handle=" + strconv.FormatInt(a, 10) + " op=" + conv.Op(b).String() +
		" ok=" + strconv.FormatInt(c, 10) + " sim_ns=" + strconv.FormatInt(d, 10)
}

func fmtMicroKernel(a, b, c, d int64) string {
	return "handle=" + strconv.FormatInt(a, 10) + " algo=" + conv.Algo(b).String() +
		" batch=" + strconv.FormatInt(c, 10) + " offset=" + strconv.FormatInt(d, 10)
}

func fmtArenaGrow(a, b, c, d int64) string {
	return "handle=" + strconv.FormatInt(a, 10) + " requested=" + strconv.FormatInt(b, 10) +
		" granted=" + strconv.FormatInt(c, 10) + " arena=" + strconv.FormatInt(d, 10)
}

// fallbackStages maps EvFallback's stage code to the ladder stage name
// counted by ucudnn_fallback_total (plus the synthetic "enter" mark).
var fallbackStages = [...]string{"enter", "pareto", "finer", "floor"}

// stageCode inverts fallbackStages for adopt's stage string.
func stageCode(stage string) int64 {
	for i, s := range fallbackStages {
		if s == stage {
			return int64(i)
		}
	}
	return -1
}

func fmtFallback(a, b, c, d int64) string {
	stage := "?"
	if b >= 0 && int(b) < len(fallbackStages) {
		stage = fallbackStages[b]
	}
	return "handle=" + strconv.FormatInt(a, 10) + " stage=" + stage +
		" op=" + conv.Op(c).String() + " ok=" + strconv.FormatInt(d, 10)
}

func fmtCacheEntries(a, _, _, _ int64) string {
	return "entries=" + strconv.FormatInt(a, 10)
}
