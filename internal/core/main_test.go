package core

import (
	"os"
	"testing"

	"ucudnn/internal/conv"
)

// TestMain pins the kernel engine's worker count: conv.Workspace sizes
// scale with conv.MaxWorkers, so the pin keeps the golden plans and
// workspace bands identical on every machine the tests run on.
func TestMain(m *testing.M) {
	conv.SetMaxWorkers(4)
	os.Exit(m.Run())
}
