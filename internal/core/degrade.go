package core

import (
	"fmt"
	"time"

	"ucudnn/internal/causal"
	"ucudnn/internal/conv"
	"ucudnn/internal/flight"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
)

// This file is the graceful-degradation ladder behind Handle.execute:
// when a planned configuration fails — an injected fault, a shrunk
// workspace grant, a kernel error — µ-cuDNN retries instead of surfacing
// the failure to the framework, because a micro-batched library that
// crashes a training run on a workspace hiccup has broken the paper's
// transparency contract (§III-A). The ladder has three stages, each
// strictly more conservative:
//
//	pareto — the next configurations on the kernel's desirable-set
//	         Pareto front (§III-C1), in ascending-time order: the
//	         cheapest admissible slowdown.
//	finer  — uniform micro-batch divisions at each candidate size below
//	         the full batch, with the algorithm chosen per size by
//	         smallest full workspace. No benchmarking, so this stage
//	         works even when Find*-path faults poison the bencher.
//	floor  — one whole-batch kernel with the algorithm whose
//	         MinWorkspace is smallest: the serial single-strip path of
//	         the engine contract, the analogue of cuDNN's zero-workspace
//	         IMPLICIT_GEMM fallback.
//
// Because every conv kernel produces identical bits at every strip count
// (the engine contract), a ladder that stays inside the same algorithm
// family cannot change results — the differential harness in
// internal/testkit asserts exactly that. A successful stage adopts its
// configuration as the kernel's new plan, counts
// ucudnn_fallback_total{stage=...}, updates the
// ucudnn_fault_degraded_plans gauge, and records a "fault" span on trace
// track 2 covering the simulated-clock interval the recovery spent.

// degrade walks the ladder for kernel k after cause. Callers hold
// execMu; restore rewinds the output buffer before each retry.
func (h *Handle) degrade(k Kernel, cause error, restore func(), x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32) error {
	op, cs := k.Op, k.Shape
	clockStart := h.inner.Elapsed()
	flight.Rec(evFallback, h.id, 0, int64(op), 0) // stage 0 = ladder entered

	h.mu.Lock()
	key := k.String()
	prior := h.plans[key]
	limit := h.opts.WorkspaceLimit
	if l, ok := h.limits[key]; ok {
		limit = l
	}
	h.mu.Unlock()

	// Stage 1: the remaining desirable set. Candidates are bounded by the
	// failed plan's workspace — that segment is already accounted, and a
	// failure under workspace pressure is not fixed by asking for more.
	wsBound := limit
	var priorCfg string
	if prior != nil {
		priorCfg = prior.plan.Config.String()
		if prior.plan.Workspace < wsBound {
			wsBound = prior.plan.Workspace
		}
	}
	if front, ferr := DesirableSet(h.bencher, k, limit, h.opts.Policy); ferr == nil {
		for _, sc := range front {
			if sc.Workspace > wsBound || sc.Config.String() == priorCfg {
				continue
			}
			restore()
			if err := h.runConfig(sc.Config, sc.Workspace, op, cs, x, w, y, alpha, beta); err == nil {
				h.adopt(k, Plan{Kernel: k, Config: sc.Config, Time: sc.Time, Workspace: sc.Workspace}, "pareto", clockStart)
				return nil
			}
		}
	}

	// Stage 2: uniform finer divisions, coarsest first, smallest-workspace
	// algorithm per micro-batch size. Built from shape arithmetic alone so
	// it cannot be starved by benchmark-path faults.
	n := cs.In.N
	sizes := h.opts.Policy.CandidateSizes(n)
	for i := len(sizes) - 1; i >= 0; i-- {
		m := sizes[i]
		if m >= n {
			continue
		}
		cfg, wsBytes, minBytes, ok := h.uniformConfig(op, cs, n, m)
		if !ok {
			continue
		}
		// The grant stays inside the per-kernel budget — the engine just
		// runs narrower strips — and only the MinWorkspace floor may
		// override the budget, because below it the kernels cannot run at
		// all and correctness beats the limit.
		grant := wsBytes
		if grant > limit {
			grant = limit
		}
		if grant < minBytes {
			grant = minBytes
		}
		h.mu.Lock()
		//ucudnn:allow lockorder -- arena-grant fault points fire under the handle lock by design: the grant decision must be serialized with the arena it mutates, and the deterministic trigger sequence depends on that serialization
		h.growArena(grant)
		h.mu.Unlock()
		restore()
		if err := h.runConfig(cfg, grant, op, cs, x, w, y, alpha, beta); err == nil {
			h.adopt(k, Plan{Kernel: k, Config: cfg, Workspace: grant}, "finer", clockStart)
			return nil
		}
	}

	// Stage 3: the serial MinWorkspace floor — one whole-batch kernel with
	// the smallest-floor algorithm, granted exactly its floor so the
	// engine takes the single-strip path.
	if algo, minBytes, ok := h.floorAlgo(op, cs); ok {
		cfg := Config{{BatchSize: n, Algo: algo}}
		h.mu.Lock()
		//ucudnn:allow lockorder -- arena-grant fault points fire under the handle lock by design: the grant decision must be serialized with the arena it mutates, and the deterministic trigger sequence depends on that serialization
		h.growArena(minBytes)
		h.mu.Unlock()
		restore()
		if err := h.runConfig(cfg, minBytes, op, cs, x, w, y, alpha, beta); err == nil {
			h.adopt(k, Plan{Kernel: k, Config: cfg, Workspace: minBytes}, "floor", clockStart)
			return nil
		}
	}

	return fmt.Errorf("core: %v failed and no degraded configuration succeeded: %w", k, cause)
}

// algoAllowed applies the configured algorithm filter.
func (h *Handle) algoAllowed(op conv.Op, algo conv.Algo) bool {
	return h.opts.AlgoFilter == nil || h.opts.AlgoFilter(op, algo)
}

// uniformConfig builds the uniform division of n into micro-batches of
// size m (plus one remainder micro-batch), choosing per size the
// admissible algorithm with the smallest full workspace. It returns the
// configuration, its shared-slot workspace, and the largest MinWorkspace
// floor among its micro-batches.
func (h *Handle) uniformConfig(op conv.Op, cs tensor.ConvShape, n, m int) (Config, int64, int64, bool) {
	var cfg Config
	var wsBytes, minBytes int64
	addMicro := func(b int) bool {
		algo, ws, ok := h.minWSAlgo(op, cs.WithN(b), conv.Workspace)
		if !ok {
			return false
		}
		cfg = append(cfg, MicroConfig{BatchSize: b, Algo: algo})
		if ws > wsBytes {
			wsBytes = ws
		}
		if mb, _ := conv.MinWorkspace(op, algo, cs.WithN(b)); mb > minBytes {
			minBytes = mb
		}
		return true
	}
	for rem := n; rem > 0; {
		b := m
		if rem < m {
			b = rem
		}
		if !addMicro(b) {
			return nil, 0, 0, false
		}
		rem -= b
	}
	return cfg, wsBytes, minBytes, true
}

// floorAlgo picks the admissible algorithm with the smallest MinWorkspace
// floor for the whole batch (ties break toward the lower algorithm id,
// which prefers IMPLICIT_GEMM's zero-workspace kernel when admissible).
func (h *Handle) floorAlgo(op conv.Op, cs tensor.ConvShape) (conv.Algo, int64, bool) {
	return h.minWSAlgo(op, cs, conv.MinWorkspace)
}

// minWSAlgo picks the admissible algorithm minimizing the given workspace
// measure on cs.
func (h *Handle) minWSAlgo(op conv.Op, cs tensor.ConvShape, measure func(conv.Op, conv.Algo, tensor.ConvShape) (int64, bool)) (conv.Algo, int64, bool) {
	best := conv.Algo(-1)
	var bestWS int64
	for _, a := range conv.AlgosFor(op) {
		if !h.algoAllowed(op, a) {
			continue
		}
		ws, ok := measure(op, a, cs)
		if !ok {
			continue
		}
		if best < 0 || ws < bestWS {
			best, bestWS = a, ws
		}
	}
	return best, bestWS, best >= 0
}

// adopt installs plan as kernel k's configuration going forward (the
// fault may be persistent, so the degraded choice sticks until the
// process replans), then emits the recovery telemetry.
func (h *Handle) adopt(k Kernel, plan Plan, stage string, clockStart time.Duration) {
	h.mu.Lock()
	//ucudnn:allow lockorder -- arena-grant fault points fire under the handle lock by design: the grant decision must be serialized with the arena it mutates, and the deterministic trigger sequence depends on that serialization
	h.growArena(plan.Workspace)
	h.plans[k.String()] = &execPlan{plan: plan}
	h.degraded++
	deg := h.degraded
	h.mu.Unlock()
	h.m.fallback(stage)
	h.m.degradedPlans.Set(float64(deg))
	flight.Rec(evFallback, h.id, stageCode(stage), int64(k.Op), 1)
	if h.tracer != nil {
		h.tracer.Add(trace.Event{
			Name:   "degrade " + k.String() + " -> " + stage,
			Cat:    "fault",
			Start:  clockStart,
			Dur:    h.inner.Elapsed() - clockStart,
			Track:  trace.TrackFault,
			Span:   uint64(causal.NewLeaf()),
			Parent: uint64(causal.Current()),
		})
	}
}
