package core

import (
	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/tensor"
)

// This file is the overridden cuDNN call surface (§III-D): the same
// signatures as *cudnn.Handle, but Get*/Find* return the virtual
// algorithm with zero workspace (recording the kernel for WD), and
// Convolution* substitutes the optimized micro-batched plan.

// effectiveLimit maps a framework-provided preference/limit to the
// per-kernel workspace limit µ-cuDNN optimizes under.
func (h *Handle) effectiveLimit(pref cudnn.Pref, wsLimit int64) int64 {
	switch pref {
	case cudnn.SpecifyWorkspaceLimit:
		return wsLimit
	case cudnn.NoWorkspace:
		return 0
	default:
		return h.opts.WorkspaceLimit
	}
}

// GetConvolutionForwardAlgorithm records the forward kernel and returns
// the virtual algorithm.
func (h *Handle) GetConvolutionForwardAlgorithm(x cudnn.TensorDesc, w cudnn.FilterDesc, cd cudnn.ConvDesc, y cudnn.TensorDesc, pref cudnn.Pref, wsLimit int64) (conv.Algo, error) {
	cs := cudnn.Shape(x, w, cd)
	h.register(Kernel{Op: conv.Forward, Shape: cs}, h.effectiveLimit(pref, wsLimit))
	return VirtualAlgo, nil
}

// GetConvolutionBackwardDataAlgorithm records the backward-data kernel and
// returns the virtual algorithm.
func (h *Handle) GetConvolutionBackwardDataAlgorithm(w cudnn.FilterDesc, dy cudnn.TensorDesc, cd cudnn.ConvDesc, dx cudnn.TensorDesc, pref cudnn.Pref, wsLimit int64) (conv.Algo, error) {
	cs := cudnn.Shape(dx, w, cd)
	h.register(Kernel{Op: conv.BackwardData, Shape: cs}, h.effectiveLimit(pref, wsLimit))
	return VirtualAlgo, nil
}

// GetConvolutionBackwardFilterAlgorithm records the backward-filter kernel
// and returns the virtual algorithm.
func (h *Handle) GetConvolutionBackwardFilterAlgorithm(x cudnn.TensorDesc, dy cudnn.TensorDesc, cd cudnn.ConvDesc, dw cudnn.FilterDesc, pref cudnn.Pref, wsLimit int64) (conv.Algo, error) {
	cs := cudnn.Shape(x, dw, cd)
	h.register(Kernel{Op: conv.BackwardFilter, Shape: cs}, h.effectiveLimit(pref, wsLimit))
	return VirtualAlgo, nil
}

// virtualPerf is the single benchmark row µ-cuDNN reports through Find*:
// the virtual algorithm with zero required workspace, satisfying the
// cuDNN interface semantics so frameworks allocate nothing themselves.
func (h *Handle) virtualPerf(k Kernel) []cudnn.AlgoPerf {
	return []cudnn.AlgoPerf{{Algo: VirtualAlgo, Time: 0, Memory: 0}}
}

// FindConvolutionForwardAlgorithm registers the kernel and reports the
// virtual algorithm.
func (h *Handle) FindConvolutionForwardAlgorithm(x cudnn.TensorDesc, w cudnn.FilterDesc, cd cudnn.ConvDesc, y cudnn.TensorDesc) ([]cudnn.AlgoPerf, error) {
	cs := cudnn.Shape(x, w, cd)
	k := Kernel{Op: conv.Forward, Shape: cs}
	h.register(k, 0)
	return h.virtualPerf(k), nil
}

// FindConvolutionBackwardDataAlgorithm registers the kernel and reports
// the virtual algorithm.
func (h *Handle) FindConvolutionBackwardDataAlgorithm(w cudnn.FilterDesc, dy cudnn.TensorDesc, cd cudnn.ConvDesc, dx cudnn.TensorDesc) ([]cudnn.AlgoPerf, error) {
	cs := cudnn.Shape(dx, w, cd)
	k := Kernel{Op: conv.BackwardData, Shape: cs}
	h.register(k, 0)
	return h.virtualPerf(k), nil
}

// FindConvolutionBackwardFilterAlgorithm registers the kernel and reports
// the virtual algorithm.
func (h *Handle) FindConvolutionBackwardFilterAlgorithm(x cudnn.TensorDesc, dy cudnn.TensorDesc, cd cudnn.ConvDesc, dw cudnn.FilterDesc) ([]cudnn.AlgoPerf, error) {
	cs := cudnn.Shape(x, dw, cd)
	k := Kernel{Op: conv.BackwardFilter, Shape: cs}
	h.register(k, 0)
	return h.virtualPerf(k), nil
}

// GetConvolutionForwardWorkspaceSize reports zero for the virtual
// algorithm (µ-cuDNN owns its workspaces) and delegates otherwise.
func (h *Handle) GetConvolutionForwardWorkspaceSize(x cudnn.TensorDesc, w cudnn.FilterDesc, cd cudnn.ConvDesc, y cudnn.TensorDesc, algo conv.Algo) (int64, error) {
	if algo == VirtualAlgo {
		return 0, nil
	}
	return h.inner.GetConvolutionForwardWorkspaceSize(x, w, cd, y, algo)
}

// GetConvolutionBackwardDataWorkspaceSize reports zero for the virtual
// algorithm and delegates otherwise.
func (h *Handle) GetConvolutionBackwardDataWorkspaceSize(w cudnn.FilterDesc, dy cudnn.TensorDesc, cd cudnn.ConvDesc, dx cudnn.TensorDesc, algo conv.Algo) (int64, error) {
	if algo == VirtualAlgo {
		return 0, nil
	}
	return h.inner.GetConvolutionBackwardDataWorkspaceSize(w, dy, cd, dx, algo)
}

// GetConvolutionBackwardFilterWorkspaceSize reports zero for the virtual
// algorithm and delegates otherwise.
func (h *Handle) GetConvolutionBackwardFilterWorkspaceSize(x cudnn.TensorDesc, dy cudnn.TensorDesc, cd cudnn.ConvDesc, dw cudnn.FilterDesc, algo conv.Algo) (int64, error) {
	if algo == VirtualAlgo {
		return 0, nil
	}
	return h.inner.GetConvolutionBackwardFilterWorkspaceSize(x, dy, cd, dw, algo)
}

// ConvolutionForward executes the optimized micro-batched forward plan
// when called with the virtual algorithm, delegating to cuDNN otherwise.
// The caller's workspace is ignored for virtual execution (zero was
// requested).
func (h *Handle) ConvolutionForward(alpha float32, xd cudnn.TensorDesc, x *tensor.Tensor, wd cudnn.FilterDesc, w *tensor.FilterTensor, cd cudnn.ConvDesc, algo conv.Algo, ws []float32, beta float32, yd cudnn.TensorDesc, y *tensor.Tensor) error {
	if algo != VirtualAlgo {
		return h.inner.ConvolutionForward(alpha, xd, x, wd, w, cd, algo, ws, beta, yd, y)
	}
	cs := cudnn.Shape(xd, wd, cd)
	return h.execute(conv.Forward, cs, x, w, y, alpha, beta)
}

// ConvolutionBackwardData executes the optimized micro-batched
// backward-data plan when called with the virtual algorithm.
func (h *Handle) ConvolutionBackwardData(alpha float32, wd cudnn.FilterDesc, w *tensor.FilterTensor, dyd cudnn.TensorDesc, dy *tensor.Tensor, cd cudnn.ConvDesc, algo conv.Algo, ws []float32, beta float32, dxd cudnn.TensorDesc, dx *tensor.Tensor) error {
	if algo != VirtualAlgo {
		return h.inner.ConvolutionBackwardData(alpha, wd, w, dyd, dy, cd, algo, ws, beta, dxd, dx)
	}
	cs := cudnn.Shape(dxd, wd, cd)
	return h.execute(conv.BackwardData, cs, dx, w, dy, alpha, beta)
}

// ConvolutionBackwardFilter executes the optimized micro-batched
// backward-filter plan when called with the virtual algorithm; gradient
// accumulation across micro-batches keeps the undivided semantics.
func (h *Handle) ConvolutionBackwardFilter(alpha float32, xd cudnn.TensorDesc, x *tensor.Tensor, dyd cudnn.TensorDesc, dy *tensor.Tensor, cd cudnn.ConvDesc, algo conv.Algo, ws []float32, beta float32, dwd cudnn.FilterDesc, dw *tensor.FilterTensor) error {
	if algo != VirtualAlgo {
		return h.inner.ConvolutionBackwardFilter(alpha, xd, x, dyd, dy, cd, algo, ws, beta, dwd, dw)
	}
	cs := cudnn.Shape(xd, dwd, cd)
	return h.execute(conv.BackwardFilter, cs, x, dw, dy, alpha, beta)
}
