package core

import (
	"fmt"
	"math"
	"time"

	"ucudnn/internal/ilp"
	"ucudnn/internal/lp"
)

// WDResult is the outcome of the Workspace Division optimizer.
type WDResult struct {
	// Plans holds one plan per input kernel, in input order. Kernels with
	// identical (op, shape) receive the same configuration and share one
	// workspace segment (they execute sequentially).
	Plans []Plan
	// TotalTime is the predicted summed kernel time per iteration.
	TotalTime time.Duration
	// TotalWorkspace is the summed size of the assigned segments.
	TotalWorkspace int64
	// ILPVars is the number of 0-1 variables after Pareto pruning.
	ILPVars int
	// ILPNodes is the number of branch-and-bound nodes explored.
	ILPNodes int
	// SimplexIters is the number of simplex pivots spent across the
	// search's LP relaxations.
	SimplexIters int
	// SolveTime is the wall time spent in the ILP solver alone.
	SolveTime time.Duration
	// BlobReserve is the blob-memory reservation carved out of the joint
	// pool before solving (zero when workspace had the pool to itself).
	BlobReserve int64
	// EffectiveBudget is the workspace budget the ILP actually solved
	// under: the joint pool minus BlobReserve.
	EffectiveBudget int64
}

// OptimizeWD runs the Workspace Division optimizer of §III-C: desirable
// configuration sets per kernel (Pareto fronts, pruned per §III-C1) feed a
// 0-1 ILP that picks exactly one configuration per kernel while keeping
// the *total* workspace under totalLimit (Eq. 1-4), minimizing the summed
// execution time.
//
// Kernels with identical (op, shape) — replicated layers, as in ResNet —
// are optimized once: they contribute their multiplicity to the objective
// and share a single workspace segment, since kernels execute
// sequentially. This matches the variable counts the paper reports
// (562 binary variables for ResNet-50).
func OptimizeWD(b *Bencher, kernels []Kernel, totalLimit int64, policy Policy) (*WDResult, error) {
	return OptimizeWDReserved(b, kernels, totalLimit, 0, policy)
}

// OptimizeWDReserved is OptimizeWD over a joint memory pool: totalLimit
// bytes are shared between per-kernel workspaces and a blob-memory
// reservation of reserve bytes (the out-of-core scheduler's peak
// activation working set). The reservation is carved out of the
// already-assembled ILP budget row via ilp.TightenBudget, so kernel
// configurations compete only for what activations left behind.
func OptimizeWDReserved(b *Bencher, kernels []Kernel, totalLimit, reserve int64, policy Policy) (*WDResult, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("core: no kernels to optimize")
	}
	if reserve < 0 || reserve >= totalLimit {
		return nil, fmt.Errorf("core: blob reserve %d outside joint pool of %d bytes", reserve, totalLimit)
	}
	optStart := time.Now() //ucudnn:allow detlint -- timing feeds the wdSeconds metric only, never the ILP
	defer b.m.wdSeconds.ObserveSince(optStart)
	// Group identical kernels.
	type group struct {
		kernel Kernel
		count  int
		front  []ScoredConfig
	}
	var groups []*group
	byKey := map[string]*group{}
	groupOf := make([]*group, len(kernels))
	for i, k := range kernels {
		key := k.String()
		g, ok := byKey[key]
		if !ok {
			g = &group{kernel: k}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.count++
		groupOf[i] = g
	}
	effective := totalLimit - reserve
	for _, g := range groups {
		front, err := DesirableSet(b, g.kernel, effective, policy)
		if err != nil {
			return nil, err
		}
		g.front = front
	}

	// Assemble the ILP (Eq. 1-4). Workspace is scaled to MiB and time to
	// microseconds to keep the simplex well-conditioned.
	const wsScale = 1.0 / (1 << 20)
	var c []float64
	var wsRow []float64
	type varRef struct {
		g   *group
		cfg int
	}
	var refs []varRef
	starts := make(map[*group][2]int)
	for _, g := range groups {
		lo := len(c)
		for ci, sc := range g.front {
			c = append(c, float64(g.count)*float64(sc.Time)/float64(time.Microsecond))
			wsRow = append(wsRow, float64(sc.Workspace)*wsScale)
			refs = append(refs, varRef{g: g, cfg: ci})
		}
		starts[g] = [2]int{lo, len(c)}
	}
	n := len(c)
	prob := &ilp.Problem{
		LP: lp.Problem{
			C:   c,
			A:   [][]float64{wsRow},
			B:   []float64{float64(totalLimit) * wsScale},
			Rel: []lp.Relation{lp.LE},
		},
		Binary: make([]bool, n),
	}
	for i := range prob.Binary {
		prob.Binary[i] = true
	}
	// The blob reservation tightens the budget row in place (row 0 is the
	// workspace LE row assembled above), so the solver sees one joint pool.
	if err := prob.TightenBudget(0, float64(reserve)*wsScale); err != nil {
		return nil, fmt.Errorf("core: WD joint pool: %w", err)
	}
	for _, g := range groups {
		row := make([]float64, n)
		s := starts[g]
		for j := s[0]; j < s[1]; j++ {
			row[j] = 1
		}
		prob.LP.A = append(prob.LP.A, row)
		prob.LP.B = append(prob.LP.B, 1)
		prob.LP.Rel = append(prob.LP.Rel, lp.EQ)
	}

	solveStart := time.Now() //ucudnn:allow detlint -- solve-time telemetry only; the ILP result is independent of it
	res, err := ilp.Solve(prob)
	solveTime := time.Since(solveStart)
	b.m.ilpVariables.Set(float64(n))
	b.m.wdSolveSeconds.ObserveDuration(solveTime)
	b.m.ilpNodes.Add(int64(res.Nodes))
	b.m.simplexIters.Add(int64(res.SimplexIters))
	if err != nil {
		return nil, fmt.Errorf("core: WD ILP: %w", err)
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("core: WD ILP %v: no configuration assignment fits %d bytes (joint pool %d, blob reserve %d)", res.Status, effective, totalLimit, reserve)
	}

	chosen := map[*group]ScoredConfig{}
	for j, v := range res.X {
		if math.Round(v) == 1 {
			r := refs[j]
			chosen[r.g] = r.g.front[r.cfg]
		}
	}
	out := &WDResult{
		ILPVars: n, ILPNodes: res.Nodes, SimplexIters: res.SimplexIters, SolveTime: solveTime,
		BlobReserve: reserve, EffectiveBudget: effective,
	}
	for _, g := range groups {
		sc, ok := chosen[g]
		if !ok {
			return nil, fmt.Errorf("core: WD ILP left kernel %v unassigned", g.kernel)
		}
		out.TotalTime += time.Duration(g.count) * sc.Time
		out.TotalWorkspace += sc.Workspace
	}
	b.m.wdWorkspace.Set(float64(out.TotalWorkspace))
	b.m.wdPredicted.Set(out.TotalTime.Seconds())
	for i := range kernels {
		sc := chosen[groupOf[i]]
		out.Plans = append(out.Plans, Plan{
			Kernel:    kernels[i],
			Config:    sc.Config,
			Time:      sc.Time,
			Workspace: sc.Workspace,
		})
	}
	return out, nil
}
