package core

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/prof"
	"ucudnn/internal/tensor"
)

// profiledForward drives one real GEMM forward kernel with profiling on
// and the layer name set, so the report has a joined row to assert on.
func profiledForward(t *testing.T) *Handle {
	t.Helper()
	// Serial engine path: the coverage assertion below measures how much
	// of the kernel's time the phase windows attribute. Per-worker busy
	// windows on an oversubscribed host (the pinned 4 workers of
	// TestMain on a small CI box) include scheduler slack no phase can
	// claim, which would turn the assertion into a flake.
	prev := conv.SetMaxWorkers(1)
	prof.Reset()
	prof.Enable()
	t.Cleanup(func() {
		conv.SetMaxWorkers(prev)
		prof.Disable()
		prof.SetLayer("")
		prof.Reset()
	})
	h := newTestHandle(t, cudnn.ModelBackend, WithWorkspaceLimit(1<<20),
		WithAlgoFilter(func(op conv.Op, a conv.Algo) bool { return a == conv.AlgoGemm }))
	// Bigger than smallConv so per-sample compute dominates the fixed
	// per-exec dispatch (plan join, validation) that no phase window can
	// claim — the coverage assertion is about attribution quality of the
	// kernel itself, not dispatch amortization.
	xd, _ := cudnn.NewTensorDesc(10, 16, 24, 24)
	wd, _ := cudnn.NewFilterDesc(12, 16, 3, 3)
	cd, _ := cudnn.NewConvDesc(1, 1, 1, 1, 1, 1)
	yd, _ := cudnn.GetOutputDim(xd, wd, cd)
	cs := cudnn.Shape(xd, wd, cd)
	rng := rand.New(rand.NewSource(7))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(12, 16, 3, 3)
	w.Randomize(rng, 0.5)
	y := tensor.NewShaped(cs.OutShape())
	algo, _ := h.GetConvolutionForwardAlgorithm(xd, wd, cd, yd, cudnn.SpecifyWorkspaceLimit, 1<<20)
	prof.SetLayer("conv_prof")
	if err := h.ConvolutionForward(1, xd, x, wd, w, cd, algo, nil, 0, yd, y); err != nil {
		t.Fatal(err)
	}
	prof.SetLayer("")
	return h
}

func TestBuildProfileReportJoinsPlans(t *testing.T) {
	h := profiledForward(t)
	rep := BuildProfileReport()
	if rep.Schema != ProfileSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	var row *ProfileKernel
	for i := range rep.Kernels {
		if rep.Kernels[i].Layer == "conv_prof" {
			row = &rep.Kernels[i]
		}
	}
	if row == nil {
		t.Fatalf("no conv_prof row in %d kernels", len(rep.Kernels))
	}
	if !strings.HasPrefix(row.Kernel, "Forward") {
		t.Fatalf("kernel = %q", row.Kernel)
	}
	// The join must have matched the handle's plan table.
	if row.Config == "" || row.Divisions < 1 || row.WorkspaceBytes <= 0 {
		t.Fatalf("plan join missing: %+v", row)
	}
	if p, ok := findPlan(rep.Handles, row.Kernel); !ok || p.Config != row.Config {
		t.Fatalf("findPlan disagrees with joined row: %+v vs %+v", p, row)
	}
	if row.Executions < 1 || row.TotalNS <= 0 || row.MeasuredNS <= 0 {
		t.Fatalf("execution accounting: %+v", row)
	}
	if row.WSHighWaterBytes <= 0 || row.WSHighWaterBytes > h.Report().ArenaBytes {
		t.Fatalf("ws high-watermark %d vs arena %d", row.WSHighWaterBytes, h.Report().ArenaBytes)
	}
	if len(row.Phases) == 0 || row.AttributedNS <= 0 {
		t.Fatalf("no phase attribution: %+v", row)
	}
	if row.Coverage < 0.9 {
		t.Fatalf("coverage = %v, want >= 0.9 on a pure-GEMM kernel", row.Coverage)
	}
	if len(rep.TopPhases) == 0 {
		t.Fatal("no aggregate top phases")
	}
}

func TestWriteTableAndProfileFile(t *testing.T) {
	profiledForward(t)
	rep := BuildProfileReport()
	var sb strings.Builder
	if err := rep.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"layer", "conv_prof", "top phases:", "ucudnn_ph_sgemm_kernel"} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}

	path := filepath.Join(t.TempDir(), "prof.json")
	if err := WriteProfileFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProfile(data); err != nil {
		t.Fatalf("written profile fails its own validator: %v", err)
	}
	// "" is a no-op, and a bad path reports the error.
	if err := WriteProfileFile(""); err != nil {
		t.Fatalf("empty path: %v", err)
	}
	if err := WriteProfileFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.json")); err == nil {
		t.Fatal("unwritable path did not error")
	}
}

func TestValidateProfileRejects(t *testing.T) {
	base := func() ProfileReport {
		return ProfileReport{
			Schema:  ProfileSchema,
			Handles: []HandleReport{},
			Kernels: []ProfileKernel{{
				Kernel:       "Forward[x]",
				AttributedNS: 10,
				MeasuredNS:   10,
				Coverage:     1,
				Phases:       []prof.PhaseSnap{{Phase: "ucudnn_ph_gemm_sgemm", NS: 10, Count: 1}},
			}},
		}
	}
	enc := func(r ProfileReport) []byte {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if err := ValidateProfile(enc(base())); err != nil {
		t.Fatalf("base report invalid: %v", err)
	}
	for name, mutate := range map[string]func(*ProfileReport){
		"schema":         func(r *ProfileReport) { r.Schema = "bogus/v9" },
		"empty kernel":   func(r *ProfileReport) { r.Kernels[0].Kernel = "" },
		"negative time":  func(r *ProfileReport) { r.Kernels[0].TotalNS = -1 },
		"bad phase name": func(r *ProfileReport) { r.Kernels[0].Phases[0].Phase = "sgemm" },
		"phase sum":      func(r *ProfileReport) { r.Kernels[0].AttributedNS = 99 },
		"negative phase": func(r *ProfileReport) { r.Kernels[0].Phases[0].NS = -5; r.Kernels[0].AttributedNS = -5 },
		"bad coverage":   func(r *ProfileReport) { r.Kernels[0].Coverage = -1 },
		"neg workers":    func(r *ProfileReport) { r.Kernels[0].Workers.BusyNS = -1 },
		"bad top phase": func(r *ProfileReport) {
			r.TopPhases = []prof.PhaseTotal{{Phase: "nope", NS: 1, Count: 1}}
		},
	} {
		r := base()
		mutate(&r)
		if err := ValidateProfile(enc(r)); err == nil {
			t.Errorf("%s: mutated report passed validation", name)
		}
	}
	if err := ValidateProfile([]byte("{")); err == nil {
		t.Error("truncated JSON passed validation")
	}
	if err := ValidateProfile([]byte(`{"schema":"ucudnn-profile-report/v1"}`)); err == nil {
		t.Error("missing arrays passed validation")
	}
}
