package core

import (
	"fmt"
	"time"

	"ucudnn/internal/conv"
)

// OptimizeWR runs the Workspace Reuse optimizer of §III-B: a dynamic
// program over micro-batch divisions of kernel k under a *per-kernel*
// workspace limit. The result is the fastest configuration
//
//	T*(n) = min( T'(n), min_{n' < n} T*(n - n') + T'(n') )
//
// where T'(m) is the fastest single micro-configuration of size m fitting
// the limit, and the candidate sizes m are chosen by the batch-size
// policy.
func OptimizeWR(b *Bencher, k Kernel, wsLimit int64, policy Policy) (Plan, error) {
	optStart := time.Now() //ucudnn:allow detlint -- timing feeds the wrSeconds metric only, never the DP
	defer b.m.wrSeconds.ObserveSince(optStart)
	n := k.Shape.In.N
	sizes := policy.CandidateSizes(n)
	perfs := b.PerfsForSizes(k, sizes)

	// Fastest fitting micro-configuration per candidate size.
	type micro struct {
		t    time.Duration
		algo conv.Algo
		ok   bool
	}
	t1 := make(map[int]micro, len(sizes))
	for _, m := range sizes {
		for _, p := range perfs[m] { // sorted fastest first
			if p.Memory <= wsLimit {
				t1[m] = micro{t: p.Time, algo: p.Algo, ok: true}
				break
			}
		}
	}

	const unreachable = time.Duration(-1)
	bestT := make([]time.Duration, n+1)
	lastSize := make([]int, n+1)
	for i := 1; i <= n; i++ {
		bestT[i] = unreachable
	}
	states := int64(0)
	for i := 1; i <= n; i++ {
		for _, m := range sizes {
			if m > i {
				break // sizes ascend
			}
			states++
			mc, ok := t1[m]
			if !ok || !mc.ok || bestT[i-m] == unreachable {
				continue
			}
			cand := bestT[i-m] + mc.t
			if bestT[i] == unreachable || cand < bestT[i] {
				bestT[i] = cand
				lastSize[i] = m
			}
		}
	}
	b.m.wrDPStates.Add(states)
	if bestT[n] == unreachable {
		return Plan{}, fmt.Errorf("core: no algorithm for %v fits %d bytes at any %v micro-batch size", k, wsLimit, policy)
	}

	var cfg Config
	for i := n; i > 0; {
		m := lastSize[i]
		cfg = append(cfg, MicroConfig{BatchSize: m, Algo: t1[m].algo})
		i -= m
	}
	// Present larger micro-batches first, as the paper's figures do.
	for lo, hi := 0, len(cfg)-1; lo < hi; lo, hi = lo+1, hi-1 {
		cfg[lo], cfg[hi] = cfg[hi], cfg[lo]
	}
	return Plan{
		Kernel:    k,
		Config:    cfg,
		Time:      bestT[n],
		Workspace: cfg.Workspace(k.Op, k.Shape),
	}, nil
}
