package core

import "fmt"

// Policy is the batch-size policy of §III-D: which micro-batch sizes are
// benchmarked during optimization.
type Policy int

const (
	// PolicyUndivided benchmarks only the original mini-batch size; WR then
	// selects exactly what cuDNN would, so it measures µ-cuDNN's overhead.
	PolicyUndivided Policy = iota
	// PolicyPowerOfTwo benchmarks power-of-two micro-batch sizes
	// {1, 2, 4, ..., N}: O(log N) benchmark cost.
	PolicyPowerOfTwo
	// PolicyAll benchmarks every micro-batch size {1, ..., N}: optimal but
	// O(N) benchmark cost.
	PolicyAll
)

func (p Policy) String() string {
	switch p {
	case PolicyUndivided:
		return "undivided"
	case PolicyPowerOfTwo:
		return "powerOfTwo"
	case PolicyAll:
		return "all"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses the environment-variable spellings of the paper's
// policies ("undivided", "powerOfTwo", "all", case-insensitive on the
// first letter forms "u"/"p"/"a" used in the figures).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "undivided", "u":
		return PolicyUndivided, nil
	case "powerOfTwo", "poweroftwo", "p":
		return PolicyPowerOfTwo, nil
	case "all", "a":
		return PolicyAll, nil
	}
	return 0, fmt.Errorf("core: unknown batch-size policy %q (want undivided|powerOfTwo|all)", s)
}

// Policies lists all batch-size policies in increasing search-effort order.
var Policies = []Policy{PolicyUndivided, PolicyPowerOfTwo, PolicyAll}

// CandidateSizes returns the micro-batch sizes the policy benchmarks for a
// mini-batch of size n, in increasing order, always including n itself.
func (p Policy) CandidateSizes(n int) []int {
	if n <= 0 {
		return nil
	}
	switch p {
	case PolicyUndivided:
		return []int{n}
	case PolicyPowerOfTwo:
		var out []int
		for b := 1; b < n; b <<= 1 {
			out = append(out, b)
		}
		return append(out, n)
	case PolicyAll:
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	return nil
}
