package core

import (
	"sync"

	"ucudnn/internal/cudnn"
	"ucudnn/internal/obs"
)

// Bencher measures (or, with the model backend, predicts) per-algorithm
// kernel performance for the optimizers, with caching and parallel
// evaluation of micro-batch candidates (the paper's multi-GPU parallel
// benchmarking, realized as a worker pool over virtual devices).
type Bencher struct {
	h       *cudnn.Handle
	cache   *Cache
	workers int
	m       *metricSet
}

// NewBencher builds a bencher over the given cuDNN handle. workers <= 1
// evaluates sequentially.
func NewBencher(h *cudnn.Handle, cache *Cache, workers int) *Bencher {
	if cache == nil {
		cache, _ = NewCache("")
	}
	if workers < 1 {
		workers = 1
	}
	return &Bencher{h: h, cache: cache, workers: workers, m: newMetricSet(nil)}
}

// SetMetrics mirrors the bencher's (and its cache's) activity, plus the
// optimizer runs driven through it, into registry r. Pass before
// optimizing; a nil r restores the no-op default.
func (b *Bencher) SetMetrics(r *obs.Registry) {
	b.m = newMetricSet(r)
	b.cache.instrument(b.m)
}

// Perfs returns the per-algorithm results for kernel k, fastest first,
// consulting the cache.
func (b *Bencher) Perfs(k Kernel) []cudnn.AlgoPerf {
	key := CacheKey(b.h.Device().Name, b.h.Backend(), k.Op, k.Shape)
	if p, ok := b.cache.Get(key); ok {
		return p
	}
	p := b.h.AlgoPerfs(k.Op, k.Shape)
	b.m.benchKernels.Inc()
	_ = b.cache.Put(key, p)
	return p
}

// PerfsForSizes benchmarks kernel k at each micro-batch size, distributing
// the uncached sizes over the worker pool.
func (b *Bencher) PerfsForSizes(k Kernel, sizes []int) map[int][]cudnn.AlgoPerf {
	out := make(map[int][]cudnn.AlgoPerf, len(sizes))
	var pending []int
	var mu sync.Mutex
	for _, n := range sizes {
		key := CacheKey(b.h.Device().Name, b.h.Backend(), k.Op, k.Shape.WithN(n))
		if p, ok := b.cache.Get(key); ok {
			out[n] = p
		} else {
			pending = append(pending, n)
		}
	}
	if len(pending) == 0 {
		return out
	}
	workers := b.workers
	if workers > len(pending) {
		workers = len(pending)
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range ch {
				mk := Kernel{Op: k.Op, Shape: k.Shape.WithN(n)}
				p := b.h.AlgoPerfs(mk.Op, mk.Shape)
				b.m.benchKernels.Inc()
				key := CacheKey(b.h.Device().Name, b.h.Backend(), mk.Op, mk.Shape)
				mu.Lock()
				_ = b.cache.Put(key, p)
				out[n] = p
				mu.Unlock()
			}
		}()
	}
	for _, n := range pending {
		ch <- n
	}
	close(ch)
	wg.Wait()
	return out
}
