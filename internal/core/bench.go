package core

import (
	"sync"

	"ucudnn/internal/cudnn"
)

// Bencher measures (or, with the model backend, predicts) per-algorithm
// kernel performance for the optimizers, with caching and parallel
// evaluation of micro-batch candidates (the paper's multi-GPU parallel
// benchmarking, realized as a worker pool over virtual devices).
type Bencher struct {
	h       *cudnn.Handle
	cache   *Cache
	workers int
}

// NewBencher builds a bencher over the given cuDNN handle. workers <= 1
// evaluates sequentially.
func NewBencher(h *cudnn.Handle, cache *Cache, workers int) *Bencher {
	if cache == nil {
		cache, _ = NewCache("")
	}
	if workers < 1 {
		workers = 1
	}
	return &Bencher{h: h, cache: cache, workers: workers}
}

// Perfs returns the per-algorithm results for kernel k, fastest first,
// consulting the cache.
func (b *Bencher) Perfs(k Kernel) []cudnn.AlgoPerf {
	key := CacheKey(b.h.Device().Name, b.h.Backend(), k.Op, k.Shape)
	if p, ok := b.cache.Get(key); ok {
		return p
	}
	p := b.h.AlgoPerfs(k.Op, k.Shape)
	_ = b.cache.Put(key, p)
	return p
}

// PerfsForSizes benchmarks kernel k at each micro-batch size, distributing
// the uncached sizes over the worker pool.
func (b *Bencher) PerfsForSizes(k Kernel, sizes []int) map[int][]cudnn.AlgoPerf {
	out := make(map[int][]cudnn.AlgoPerf, len(sizes))
	var pending []int
	var mu sync.Mutex
	for _, n := range sizes {
		key := CacheKey(b.h.Device().Name, b.h.Backend(), k.Op, k.Shape.WithN(n))
		if p, ok := b.cache.Get(key); ok {
			out[n] = p
		} else {
			pending = append(pending, n)
		}
	}
	if len(pending) == 0 {
		return out
	}
	workers := b.workers
	if workers > len(pending) {
		workers = len(pending)
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range ch {
				mk := Kernel{Op: k.Op, Shape: k.Shape.WithN(n)}
				p := b.h.AlgoPerfs(mk.Op, mk.Shape)
				key := CacheKey(b.h.Device().Name, b.h.Backend(), mk.Op, mk.Shape)
				mu.Lock()
				_ = b.cache.Put(key, p)
				out[n] = p
				mu.Unlock()
			}
		}()
	}
	for _, n := range pending {
		ch <- n
	}
	close(ch)
	wg.Wait()
	return out
}
