package parallel

import (
	"testing"
	"testing/quick"
	"time"
)

func cl(gpus int) Cluster {
	return Cluster{GPUs: gpus, LinkBW: 25e9, LinkLatency: 2 * time.Microsecond}
}

func TestValidate(t *testing.T) {
	if err := cl(4).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Cluster{GPUs: 0}).Validate(); err == nil {
		t.Fatal("zero GPUs must fail")
	}
	if err := (Cluster{GPUs: 2}).Validate(); err == nil {
		t.Fatal("multi-GPU without bandwidth must fail")
	}
	if err := (Cluster{GPUs: 1}).Validate(); err != nil {
		t.Fatal("single GPU needs no link")
	}
}

func TestAllReduceProperties(t *testing.T) {
	// Single GPU or empty gradient: free.
	if cl(1).AllReduceTime(1<<30) != 0 || cl(4).AllReduceTime(0) != 0 {
		t.Fatal("degenerate all-reduce must be zero")
	}
	// Time grows with gradient size.
	if cl(4).AllReduceTime(1<<30) <= cl(4).AllReduceTime(1<<20) {
		t.Fatal("all-reduce not monotone in bytes")
	}
	// The transfer term approaches 2*bytes/BW as p grows: p=8 moves more
	// total data than p=2.
	if cl(8).AllReduceTime(1<<30) <= cl(2).AllReduceTime(1<<30) {
		t.Fatal("ring cost should grow with worker count")
	}
	// But stays below the naive bound 2*bytes/BW + latency.
	bytes := int64(1 << 30)
	bound := time.Duration(2*float64(bytes)/25e9*float64(time.Second)) + 64*time.Microsecond
	if got := cl(16).AllReduceTime(bytes); got > bound {
		t.Fatalf("ring cost %v exceeds naive bound %v", got, bound)
	}
}

func TestIterationTimeOverlap(t *testing.T) {
	c := cl(4)
	fwd, bwd := 10*time.Millisecond, 20*time.Millisecond
	grad := int64(244 << 20) // ~61M params
	ar := c.AllReduceTime(grad)
	serial := c.IterationTime(fwd, bwd, grad, false)
	overlapped := c.IterationTime(fwd, bwd, grad, true)
	if serial != fwd+bwd+ar {
		t.Fatalf("serial = %v, want %v", serial, fwd+bwd+ar)
	}
	if overlapped >= serial {
		t.Fatal("overlap must help when both phases are nonzero")
	}
	// When communication dominates, overlap is bounded by it.
	slow := Cluster{GPUs: 4, LinkBW: 1e9}
	if got := slow.IterationTime(fwd, bwd, grad, true); got != fwd+slow.AllReduceTime(grad) {
		t.Fatalf("comm-bound overlap = %v", got)
	}
}

func TestThroughputAndEfficiency(t *testing.T) {
	c := cl(4)
	iter := 100 * time.Millisecond
	if got := c.Throughput(256, iter); got != float64(4*256)/0.1 {
		t.Fatalf("throughput = %v", got)
	}
	if c.Throughput(256, 0) != 0 {
		t.Fatal("zero iter time")
	}
	// Efficiency is 1 on a single GPU and <= 1 otherwise.
	if e := cl(1).Efficiency(time.Millisecond, time.Millisecond, 1<<30, true); e != 1 {
		t.Fatalf("single-GPU efficiency = %v", e)
	}
	f := func(gpus8 uint8, mb uint8) bool {
		g := int(gpus8%8) + 1
		grad := int64(mb)<<20 + 1
		e := cl(g).Efficiency(5*time.Millisecond, 10*time.Millisecond, grad, true)
		return e > 0 && e <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Faster per-GPU iterations (µ-cuDNN's contribution) translate into
// higher cluster throughput at every scale — the paper's motivating
// chain of reasoning.
func TestPerGPUSpeedupCarriesToCluster(t *testing.T) {
	grad := int64(244 << 20)
	for _, g := range []int{1, 2, 4, 8} {
		c := cl(g)
		base := c.IterationTime(60*time.Millisecond, 130*time.Millisecond, grad, true)
		opt := c.IterationTime(40*time.Millisecond, 85*time.Millisecond, grad, true)
		if c.Throughput(256, opt) <= c.Throughput(256, base) {
			t.Fatalf("gpus=%d: speedup did not carry through", g)
		}
	}
}
