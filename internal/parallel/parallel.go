// Package parallel models synchronous data-parallel training across
// several identical GPUs with ring all-reduce gradient communication.
//
// The paper's introduction motivates µ-cuDNN with exactly this setting:
// data-parallel frameworks favour large per-accelerator batches because
// they improve utilization and hide gradient communication behind
// computation — which is why the per-GPU workspace pressure µ-cuDNN
// relieves matters at cluster scale. This package quantifies that link:
// per-GPU iteration times (from the dnn timer) compose with a standard
// ring-all-reduce cost model into cluster throughput.
package parallel

import (
	"fmt"
	"time"
)

// Cluster describes a homogeneous multi-GPU configuration.
type Cluster struct {
	// GPUs is the number of workers.
	GPUs int
	// LinkBW is the per-link bandwidth in bytes/s (e.g. NVLink ~25 GB/s
	// per direction on P100-SXM2 systems).
	LinkBW float64
	// LinkLatency is the per-hop message latency.
	LinkLatency time.Duration
}

// Validate checks the configuration.
func (c Cluster) Validate() error {
	if c.GPUs < 1 {
		return fmt.Errorf("parallel: need at least one GPU, got %d", c.GPUs)
	}
	if c.GPUs > 1 && c.LinkBW <= 0 {
		return fmt.Errorf("parallel: multi-GPU cluster needs positive link bandwidth")
	}
	return nil
}

// AllReduceTime models a bandwidth-optimal ring all-reduce of the given
// gradient bytes: each worker sends 2*(p-1)/p of the data across 2*(p-1)
// latency-bound steps.
func (c Cluster) AllReduceTime(bytes int64) time.Duration {
	if c.GPUs <= 1 || bytes <= 0 {
		return 0
	}
	p := float64(c.GPUs)
	transfer := 2 * (p - 1) / p * float64(bytes) / c.LinkBW
	steps := time.Duration(2*(c.GPUs-1)) * c.LinkLatency
	return time.Duration(transfer*float64(time.Second)) + steps
}

// IterationTime composes one synchronous data-parallel iteration from the
// per-GPU forward and backward times and the gradient volume. With
// overlap, communication hides behind the backward pass (gradients of
// layer L are ready before layer L-1's backward finishes), so the
// backward phase costs max(backward, allreduce); without overlap the
// phases serialize.
func (c Cluster) IterationTime(fwd, bwd time.Duration, gradBytes int64, overlap bool) time.Duration {
	ar := c.AllReduceTime(gradBytes)
	if overlap {
		if ar > bwd {
			return fwd + ar
		}
		return fwd + bwd
	}
	return fwd + bwd + ar
}

// Throughput converts a per-iteration time and per-GPU batch into global
// samples/second.
func (c Cluster) Throughput(perGPUBatch int, iter time.Duration) float64 {
	if iter <= 0 {
		return 0
	}
	return float64(c.GPUs*perGPUBatch) / iter.Seconds()
}

// Efficiency is the weak-scaling efficiency relative to one GPU running
// the same per-GPU batch with no communication.
func (c Cluster) Efficiency(fwd, bwd time.Duration, gradBytes int64, overlap bool) float64 {
	single := fwd + bwd
	iter := c.IterationTime(fwd, bwd, gradBytes, overlap)
	if iter <= 0 {
		return 0
	}
	return single.Seconds() / iter.Seconds()
}
