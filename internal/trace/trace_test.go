package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndEventsSorted(t *testing.T) {
	r := New()
	r.Add(Event{Name: "b", Start: 10 * time.Microsecond, Dur: time.Microsecond})
	r.Add(Event{Name: "a", Start: 2 * time.Microsecond, Dur: time.Microsecond})
	r.Add(Event{Name: "c", Start: 20 * time.Microsecond, Dur: time.Microsecond})
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Name != "a" || evs[1].Name != "b" || evs[2].Name != "c" {
		t.Fatalf("events not sorted: %v", evs)
	}
}

func TestWriteChromeFormat(t *testing.T) {
	r := New()
	r.Add(Event{Name: "Forward FFT@32", Cat: "conv", Start: 1500 * time.Nanosecond, Dur: 3 * time.Microsecond, Track: 0})
	r.Add(Event{Name: "relu", Cat: "layer", Start: 5 * time.Microsecond, Dur: time.Microsecond, Track: 1})
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("events = %d", len(out))
	}
	first := out[0]
	if first["name"] != "Forward FFT@32" || first["ph"] != "X" || first["cat"] != "conv" {
		t.Fatalf("bad chrome event: %v", first)
	}
	if first["ts"].(float64) != 1 { // 1500ns -> 1us truncated
		t.Fatalf("ts = %v", first["ts"])
	}
	if out[1]["tid"].(float64) != 2 {
		t.Fatalf("tid = %v", out[1]["tid"])
	}
}

func TestSummaryAndReset(t *testing.T) {
	r := New()
	r.Add(Event{Name: "k1", Cat: "conv", Start: 0, Dur: time.Millisecond})
	var sb strings.Builder
	r.Summary(&sb)
	if !strings.Contains(sb.String(), "k1") || !strings.Contains(sb.String(), "[conv]") {
		t.Fatalf("summary: %q", sb.String())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestConcurrentAdd(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Add(Event{Name: "e", Start: time.Duration(i)})
		}(i)
	}
	wg.Wait()
	if r.Len() != 32 {
		t.Fatalf("len = %d", r.Len())
	}
}

// TestEventsTotalOrder inserts events that tie on Start in two different
// arrival orders and asserts the exported order (and bytes) match: the
// sort key (Start, Track, Name) is total, so exports are deterministic
// across runs even when concurrent recorders race on insertion order.
func TestEventsTotalOrder(t *testing.T) {
	tied := []Event{
		{Name: "b", Cat: "conv", Start: 5 * time.Microsecond, Dur: time.Microsecond, Track: 1},
		{Name: "a", Cat: "conv", Start: 5 * time.Microsecond, Dur: time.Microsecond, Track: 1},
		{Name: "z", Cat: "layer", Start: 5 * time.Microsecond, Dur: time.Microsecond, Track: 0},
		{Name: "c", Cat: "conv", Start: time.Microsecond, Dur: time.Microsecond, Track: 2},
	}
	fwd, rev := New(), New()
	for _, ev := range tied {
		fwd.Add(ev)
	}
	for i := len(tied) - 1; i >= 0; i-- {
		rev.Add(tied[i])
	}
	want := []string{"c", "z", "a", "b"}
	for i, ev := range fwd.Events() {
		if ev.Name != want[i] {
			t.Fatalf("event %d = %q, want %q", i, ev.Name, want[i])
		}
	}
	var bufFwd, bufRev bytes.Buffer
	if err := fwd.WriteChrome(&bufFwd); err != nil {
		t.Fatal(err)
	}
	if err := rev.WriteChrome(&bufRev); err != nil {
		t.Fatal(err)
	}
	if bufFwd.String() != bufRev.String() {
		t.Fatalf("export depends on insertion order:\n%s\nvs\n%s", bufFwd.String(), bufRev.String())
	}
}

func TestEmptyWriteChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty trace = %q", buf.String())
	}
}
