package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// Span-carrying traces get the enriched Chrome rendering: thread-name
// metadata per used track, span/parent args, and an "s"/"f" flow-arrow
// pair per flow edge.
func TestWriteChromeFlowArrows(t *testing.T) {
	r := New()
	r.Add(Event{Name: "fetch", Cat: "ooc_fetch", Track: TrackOOCFetch,
		Start: 0, Dur: 2 * time.Microsecond, Span: 10})
	r.Add(Event{Name: "compute", Cat: "fwd", Track: TrackKernel,
		Start: 2 * time.Microsecond, Dur: 3 * time.Microsecond, Span: 11, Parent: 5, Flow: 10})
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete, flowS, flowF int
	var names []string
	for _, ev := range out {
		switch ev["ph"] {
		case "M":
			meta++
			args := ev["args"].(map[string]interface{})
			names = append(names, args["name"].(string))
		case "X":
			complete++
			args := ev["args"].(map[string]interface{})
			if args["span"] == nil {
				t.Fatalf("complete event missing span arg: %v", ev)
			}
		case "s":
			flowS++
		case "f":
			flowF++
			if ev["bp"] != "e" {
				t.Fatalf("flow finish must bind to enclosing slice: %v", ev)
			}
		}
	}
	if meta != 2 {
		t.Fatalf("thread_name metadata events = %d (%v), want 2", meta, names)
	}
	if complete != 2 {
		t.Fatalf("complete events = %d", complete)
	}
	if flowS != 1 || flowF != 1 {
		t.Fatalf("flow arrows: s=%d f=%d, want one pair", flowS, flowF)
	}
	for _, want := range []string{TrackName(TrackOOCFetch), TrackName(TrackKernel)} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing track name %q in %v", want, names)
		}
	}
}

// Span-less traces must keep the legacy byte format: no metadata, no
// args, no flow events (committed goldens depend on those exact bytes).
func TestWriteChromeLegacyUnchanged(t *testing.T) {
	r := New()
	r.Add(Event{Name: "k", Cat: "conv", Start: time.Microsecond, Dur: time.Microsecond})
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"ph":"M"`)) ||
		bytes.Contains(buf.Bytes(), []byte(`"args"`)) {
		t.Fatalf("legacy trace gained enrichment:\n%s", buf.String())
	}
}

func TestTrackNames(t *testing.T) {
	seen := map[string]bool{}
	for _, tr := range []int{TrackKernel, TrackLayer, TrackFault, TrackOOCFetch, TrackOOCSpill, TrackIteration} {
		n := TrackName(tr)
		if n == "" || seen[n] {
			t.Fatalf("track %d name %q (empty or duplicate)", tr, n)
		}
		seen[n] = true
	}
	if TrackName(99) == "" {
		t.Fatal("unknown tracks still need a label")
	}
}
