// Package trace records the simulated kernel timeline and exports it in
// the Chrome trace-event format (chrome://tracing, Perfetto). Loading a
// trace of a µ-cuDNN run visualizes the paper's Fig. 3: one convolution
// call expanded into a sequence of per-micro-batch kernels, each labeled
// with its algorithm and micro-batch size.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// The well-known timeline tracks. Kernel charges land on the device
// stream; layer and iteration brackets, fault annotations and the
// out-of-core transfer streams each get a dedicated lane, mirroring
// dnn.ScheduleOOC's three-stream model (H2D / compute / D2H).
const (
	// TrackKernel is the device compute stream (conv/gemm/transfer
	// charges).
	TrackKernel = 0
	// TrackLayer carries per-layer bracket spans.
	TrackLayer = 1
	// TrackFault carries fault/degradation annotations.
	TrackFault = 2
	// TrackOOCFetch is the host-to-device transfer stream (out-of-core
	// fetches and recomputes).
	TrackOOCFetch = 3
	// TrackOOCSpill is the device-to-host transfer stream (out-of-core
	// spills).
	TrackOOCSpill = 4
	// TrackIteration carries per-iteration bracket spans.
	TrackIteration = 5
)

// TrackName names a track for renderers (Chrome thread_name metadata,
// timeline tables).
func TrackName(t int) string {
	switch t {
	case TrackKernel:
		return "device stream"
	case TrackLayer:
		return "layers"
	case TrackFault:
		return "faults"
	case TrackOOCFetch:
		return "ooc fetch (H2D)"
	case TrackOOCSpill:
		return "ooc spill (D2H)"
	case TrackIteration:
		return "iterations"
	}
	return fmt.Sprintf("track %d", t)
}

// Event is one completed span on the simulated device timeline.
type Event struct {
	// Name labels the span (e.g. "Forward FFT@32 64x27x27").
	Name string
	// Cat groups spans ("conv", "layer", ...).
	Cat string
	// Start is the simulated-clock start time.
	Start time.Duration
	// Dur is the span length.
	Dur time.Duration
	// Track is the lane the span renders in (0 = device stream).
	Track int
	// Span is the event's causal identifier; 0 when correlation is off.
	Span uint64
	// Parent is the Span of the enclosing causal scope (a conv call, a
	// layer, an iteration); 0 at the root.
	Parent uint64
	// Flow is the Span of the event this one causally depends on across
	// tracks (e.g. the fetch a compute window waited for); 0 when none.
	// Renders as a Chrome flow arrow.
	Flow uint64
}

// Recorder accumulates events; it is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add appends one event.
func (r *Recorder) Add(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a snapshot sorted by (Start, Track, Name, Span). The
// key is total over concurrent recordings, so exports are byte-identical
// across runs regardless of the order events arrived in.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Event{}, r.events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// chromeEvent is the trace-event JSON schema ("X" complete events,
// "s"/"f" flow arrows, "M" metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // microseconds
	Dur  int64          `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome emits the events as a Chrome trace-event JSON array. When
// the trace carries causal spans, each event's span/parent land in args,
// cross-track dependencies become flow arrows ("s"/"f" pairs) and tracks
// get thread_name metadata; span-less traces emit exactly the legacy
// format.
func (r *Recorder) WriteChrome(w io.Writer) error {
	return WriteChromeEvents(w, r.Events())
}

// WriteChromeEvents is WriteChrome over an explicit event slice (already
// in canonical order), for exporters that post-process events before
// rendering.
func WriteChromeEvents(w io.Writer, evs []Event) error {
	causal := false
	for _, e := range evs {
		if e.Span != 0 {
			causal = true
			break
		}
	}
	var out []chromeEvent
	if causal {
		tracks := map[int]bool{}
		for _, e := range evs {
			tracks[e.Track] = true
		}
		order := make([]int, 0, len(tracks))
		for t := range tracks {
			order = append(order, t)
		}
		sort.Ints(order)
		for _, t := range order {
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: t + 1,
				Args: map[string]any{"name": TrackName(t)},
			})
		}
	}
	spanEnd := map[uint64]Event{}
	for _, e := range evs {
		if e.Span != 0 {
			spanEnd[e.Span] = e
		}
	}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   "X",
			TS:   e.Start.Microseconds(),
			Dur:  e.Dur.Microseconds(),
			PID:  1,
			TID:  e.Track + 1,
		}
		if e.Span != 0 {
			ce.Args = map[string]any{"span": e.Span}
			if e.Parent != 0 {
				ce.Args["parent"] = e.Parent
			}
			if e.Flow != 0 {
				ce.Args["flow"] = e.Flow
			}
		}
		out = append(out, ce)
	}
	// Flow arrows: an "s" at the dependency's end bound to an "f" at the
	// dependent's start.
	for _, e := range evs {
		src, ok := spanEnd[e.Flow]
		if e.Flow == 0 || !ok {
			continue
		}
		id := fmt.Sprintf("%d-%d", e.Flow, e.Span)
		out = append(out, chromeEvent{
			Name: "dep", Cat: "flow", Ph: "s", ID: id, PID: 1,
			TID: src.Track + 1, TS: (src.Start + src.Dur).Microseconds(),
		}, chromeEvent{
			Name: "dep", Cat: "flow", Ph: "f", BP: "e", ID: id, PID: 1,
			TID: e.Track + 1, TS: e.Start.Microseconds(),
		})
	}
	if out == nil {
		out = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary renders a one-line-per-event text timeline for terminals.
func (r *Recorder) Summary(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintf(w, "%12v +%-10v [%s] %s\n", e.Start, e.Dur, e.Cat, e.Name)
	}
}
