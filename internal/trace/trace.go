// Package trace records the simulated kernel timeline and exports it in
// the Chrome trace-event format (chrome://tracing, Perfetto). Loading a
// trace of a µ-cuDNN run visualizes the paper's Fig. 3: one convolution
// call expanded into a sequence of per-micro-batch kernels, each labeled
// with its algorithm and micro-batch size.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one completed span on the simulated device timeline.
type Event struct {
	// Name labels the span (e.g. "Forward FFT@32 64x27x27").
	Name string
	// Cat groups spans ("conv", "layer", ...).
	Cat string
	// Start is the simulated-clock start time.
	Start time.Duration
	// Dur is the span length.
	Dur time.Duration
	// Track is the lane the span renders in (0 = device stream).
	Track int
}

// Recorder accumulates events; it is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add appends one event.
func (r *Recorder) Add(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a snapshot sorted by (Start, Track, Name). The key is
// total over concurrent recordings, so exports are byte-identical across
// runs regardless of the order events arrived in.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Event{}, r.events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// chromeEvent is the trace-event JSON schema ("X" complete events).
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`  // microseconds
	Dur  int64  `json:"dur"` // microseconds
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
}

// WriteChrome emits the events as a Chrome trace-event JSON array.
func (r *Recorder) WriteChrome(w io.Writer) error {
	evs := r.Events()
	out := make([]chromeEvent, len(evs))
	for i, e := range evs {
		out[i] = chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   "X",
			TS:   e.Start.Microseconds(),
			Dur:  e.Dur.Microseconds(),
			PID:  1,
			TID:  e.Track + 1,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary renders a one-line-per-event text timeline for terminals.
func (r *Recorder) Summary(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintf(w, "%12v +%-10v [%s] %s\n", e.Start, e.Dur, e.Cat, e.Name)
	}
}
