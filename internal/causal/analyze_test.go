package causal

import (
	"math/rand"
	"testing"
	"time"

	"ucudnn/internal/trace"
)

func TestReplayOverlap(t *testing.T) {
	cases := []struct {
		name                  string
		fetch, compute, spill []int64
		makespan, wait, tail  int64
	}{
		{"empty", nil, nil, nil, 0, 0, 0},
		{"compute only", nil, []int64{5, 5}, nil, 10, 0, 0},
		{"hidden fetch", []int64{2, 2, 2}, []int64{10, 10, 10}, nil, 32, 2, 0},
		{"fetch bound", []int64{10, 10, 10}, []int64{2, 2, 2}, nil, 32, 26, 0},
		{"spill tail", []int64{1, 1}, []int64{4, 4}, []int64{6, 6}, 17, 1, 8},
		{"balanced", []int64{5, 5}, []int64{5, 5}, nil, 15, 5, 0},
	}
	for _, tc := range cases {
		o := ReplayOverlap(tc.fetch, tc.compute, tc.spill)
		if o.MakespanNS != tc.makespan || o.FetchWaitNS != tc.wait || o.SpillTailNS != tc.tail {
			t.Errorf("%s: got {makespan %d, wait %d, tail %d}, want {%d, %d, %d}",
				tc.name, o.MakespanNS, o.FetchWaitNS, o.SpillTailNS, tc.makespan, tc.wait, tc.tail)
		}
	}
}

// bruteLongest is the oracle: the maximum total duration over every
// dependency chain (e_1..e_k with e_i ending before e_{i+1} starts),
// found by exhaustive DP over the happens-before DAG. Events must be in
// start order with positive durations (which Build guarantees for
// measured timelines).
func bruteLongest(evs []TEvent) int64 {
	best := make([]int64, len(evs))
	var max int64
	for i, e := range evs {
		best[i] = e.DurNS
		for j := 0; j < i; j++ {
			if evs[j].End() <= e.StartNS && best[j]+e.DurNS > best[i] {
				best[i] = best[j] + e.DurNS
			}
		}
		if best[i] > max {
			max = best[i]
		}
	}
	return max
}

// oraclePath runs the engine over bare leaves (the analyzer synthesizes
// the iteration window) and compares PathNS to the brute-force oracle.
func oraclePath(t *testing.T, name string, evs []trace.Event) IterationPath {
	t.Helper()
	tl := Build(evs, nil)
	if err := tl.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	a := Analyze(tl, nil)
	if len(a.Iterations) != 1 {
		t.Fatalf("%s: %d iterations, want 1", name, len(a.Iterations))
	}
	p := a.Iterations[0]
	if want := bruteLongest(tl.Events); p.PathNS != want {
		t.Fatalf("%s: engine path %d != brute-force longest chain %d", name, p.PathNS, want)
	}
	return p
}

// The critical-path engine vs the brute-force oracle on hand-built
// schedules: serial tiling, a fork-join, and a double-buffered
// three-stream layout.
func TestCriticalPathOracle(t *testing.T) {
	serial := []trace.Event{
		tev("a", "fwd", 0, 0, 5, 1, 0, 0),
		tev("b", "fwd", 0, 5, 3, 2, 0, 0),
		tev("c", "fwd", 0, 8, 12, 3, 0, 0),
	}
	p := oraclePath(t, "serial", serial)
	if p.PathNS != 20 || p.Coverage != 1.0 {
		t.Fatalf("serial tiling: path %d coverage %v, want 20 / 1.0", p.PathNS, p.Coverage)
	}

	forkJoin := []trace.Event{
		tev("long", "fwd", 0, 0, 10, 1, 0, 0),
		tev("short", "fwd", 1, 0, 4, 2, 0, 0),
		tev("join", "fwd", 0, 10, 5, 3, 0, 0),
	}
	if p := oraclePath(t, "fork-join", forkJoin); p.PathNS != 15 {
		t.Fatalf("fork-join: path %d, want 15 (long+join)", p.PathNS)
	}

	doubleBuffered := []trace.Event{
		tev("f1", "ooc_fetch", trace.TrackOOCFetch, 0, 6, 1, 0, 0),
		tev("c1", "ooc", trace.TrackKernel, 6, 4, 2, 0, 0),
		tev("f2", "ooc_fetch", trace.TrackOOCFetch, 6, 8, 3, 0, 0),
		tev("s1", "ooc_spill", trace.TrackOOCSpill, 10, 3, 4, 0, 0),
		tev("c2", "ooc", trace.TrackKernel, 14, 6, 5, 0, 0),
		tev("s2", "ooc_spill", trace.TrackOOCSpill, 20, 3, 6, 0, 0),
	}
	if p := oraclePath(t, "double-buffered", doubleBuffered); p.PathNS != 23 {
		t.Fatalf("double-buffered: path %d, want 23 (f1,f2,c2,s2)", p.PathNS)
	}
}

// Randomized serial tilings: the chain must cover the whole window, so
// the engine, the oracle and the plain sum must all agree.
func TestCriticalPathSerialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		var evs []trace.Event
		var at, sum time.Duration
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			d := time.Duration(1 + rng.Intn(1000))
			evs = append(evs, tev("k", "fwd", 0, at, d, uint64(i+1), 0, 0))
			at += d
			sum += d
		}
		p := oraclePath(t, "serial random", evs)
		if p.PathNS != sum.Nanoseconds() {
			t.Fatalf("trial %d: path %d, want tiling sum %d", trial, p.PathNS, sum)
		}
		if p.Coverage != 1.0 {
			t.Fatalf("trial %d: coverage %v, want 1.0", trial, p.Coverage)
		}
	}
}

// Gaps on the critical path get exactly one cause from the taxonomy,
// with fault evidence taking precedence over stream heuristics.
func TestClassifyGap(t *testing.T) {
	faultFloor := TEvent{Name: "degrade conv -> floor", Cat: "fault", StartNS: 10, DurNS: 5}
	faultGrow := TEvent{Name: "degrade conv -> halved", Cat: "fault", StartNS: 10, DurNS: 5}
	pred := TEvent{Name: "k1", Cat: "fwd", StartNS: 0, DurNS: 10}
	cur := TEvent{Name: "k2", Cat: "fwd", StartNS: 20, DurNS: 10}
	if got := classifyGap(pred, cur, []TEvent{faultFloor}); got != CauseSerialFallback {
		t.Fatalf("floor fault gap = %q", got)
	}
	if got := classifyGap(pred, cur, []TEvent{faultGrow}); got != CauseWorkspaceWait {
		t.Fatalf("workspace fault gap = %q", got)
	}
	fetch := TEvent{Name: "ooc_fetch conv1", Cat: "ooc_fetch", StartNS: 20, DurNS: 10}
	if got := classifyGap(pred, fetch, nil); got != CauseFetchStarved {
		t.Fatalf("fetch gap = %q", got)
	}
	spill := TEvent{Name: "ooc_spill conv1", Cat: "ooc_spill", StartNS: 20, DurNS: 10}
	if got := classifyGap(pred, spill, nil); got != CauseSpillBlocked {
		t.Fatalf("spill gap = %q", got)
	}
	if got := classifyGap(pred, cur, nil); got != CauseOther {
		t.Fatalf("unexplained gap = %q", got)
	}
}

// The layer comparator: a layer whose windows serialize fetch → compute
// shows a fetch-starved stall equal to the hideable fetch time.
func TestLayerStallAttribution(t *testing.T) {
	scopes := []Scope{
		{ID: 1, Kind: KindIteration, Name: "iteration"},
		{ID: 2, Parent: 1, Kind: KindLayer, Name: "conv1"},
	}
	// Two windows, measured fully serial: fetch 10 then compute 10 each.
	evs := []trace.Event{
		tev("ooc_fetch conv1", "ooc_fetch", trace.TrackOOCFetch, 0, 10, 3, 2, 0),
		tev("mb[0]", "fwd", trace.TrackKernel, 10, 10, 4, 2, 0),
		tev("ooc_fetch conv1", "ooc_fetch", trace.TrackOOCFetch, 20, 10, 5, 2, 0),
		tev("mb[1]", "fwd", trace.TrackKernel, 30, 10, 6, 2, 0),
	}
	a := Analyze(Build(evs, scopes), nil)
	if len(a.Layers) != 1 {
		t.Fatalf("layers: %+v", a.Layers)
	}
	l := a.Layers[0]
	// Modeled: fetch 2 overlaps compute 1 → makespan 30; measured 40.
	if l.Layer != "conv1" || l.Windows != 2 || l.MeasuredNS != 40 || l.ModeledNS != 30 || l.StallNS != 10 {
		t.Fatalf("layer stall: %+v", l)
	}
	if l.Cause != CauseFetchStarved {
		t.Fatalf("cause %q, want %q", l.Cause, CauseFetchStarved)
	}
	if a.StallNS[CauseFetchStarved] < 10 {
		t.Fatalf("stall totals: %+v", a.StallNS)
	}
}

// Worker-imbalance attribution kicks in only when the busy map reports
// a low mean worker busy ratio for the layer.
func TestWorkerImbalanceAttribution(t *testing.T) {
	l := &LayerStall{Layer: "conv1", StallNS: 100, FetchNS: 50}
	if got := classifyLayer(l, "", map[string]float64{"conv1": 0.4}); got != CauseWorkerImbalance {
		t.Fatalf("low busy ratio = %q", got)
	}
	if got := classifyLayer(l, "", map[string]float64{"conv1": 0.9}); got != CauseFetchStarved {
		t.Fatalf("healthy busy ratio = %q", got)
	}
	if got := classifyLayer(l, CauseSerialFallback, nil); got != CauseSerialFallback {
		t.Fatalf("fault evidence must win: %q", got)
	}
	if got := classifyLayer(&LayerStall{StallNS: 0}, "", nil); got != "" {
		t.Fatalf("no stall must have no cause: %q", got)
	}
}

func TestSplitEven(t *testing.T) {
	for _, tc := range []struct {
		total int64
		n     int
		want  []int64
	}{
		{10, 3, []int64{3, 3, 4}},
		{9, 3, []int64{3, 3, 3}},
		{5, 1, []int64{5}},
		{7, 0, []int64{7}},
	} {
		got := splitEven(tc.total, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("splitEven(%d,%d) = %v", tc.total, tc.n, got)
		}
		var sum int64
		for i := range got {
			sum += got[i]
			if got[i] != tc.want[i] {
				t.Fatalf("splitEven(%d,%d) = %v, want %v", tc.total, tc.n, got, tc.want)
			}
		}
		if sum != tc.total {
			t.Fatalf("splitEven(%d,%d) does not conserve the sum: %v", tc.total, tc.n, got)
		}
	}
}
