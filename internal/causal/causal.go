// Package causal is the µ-cuDNN trace-correlation layer: it assigns
// span/parent identifiers to every recorded unit of work so the four
// telemetry surfaces — trace spans, profiler launch windows, flight
// events and the out-of-core schedule model — stop being disconnected
// silos and become one causal timeline (iteration → layer → convolution
// call → micro-batch kernel → worker launch).
//
// The correlation state is a process-global scope stack, mirroring how
// prof.SetLayer threads the layer name: the framework's layer walk and
// the kernel library's execute path are serialized (Net execution is
// single-threaded; core.Handle.execute holds execMu), so one stack
// suffices. Begin/End are warm-path (a mutex once per layer or kernel
// call); Current and NewLeaf are hot-path (one atomic word), so the
// flight recorder can stamp every event with the enclosing span without
// taking a lock.
//
// Identifiers are allocation-ordered and therefore execution-ordered,
// but exported timelines never depend on the raw values: Build
// renumbers spans canonically (scopes in recorded order, events in
// sorted order), which is what makes the exported timeline byte-
// identical across worker counts and profiling on/off.
package causal

import (
	"sync"
	"sync/atomic"
)

// ID identifies one span (a scope or a leaf event) within a recording.
// The zero ID means "no span" (recording disabled, or no enclosing
// scope).
type ID uint64

// Scope kinds, outermost first. Kinds are plain strings so the timeline
// schema stays self-describing.
const (
	// KindIteration brackets one forward+backward pass.
	KindIteration = "iteration"
	// KindLayer brackets one layer's forward or backward execution.
	KindLayer = "layer"
	// KindConv brackets one convolution call (core.Handle.execute); its
	// children are the micro-batch kernel spans of the plan.
	KindConv = "conv"
)

// Scope is one recorded non-leaf span: a correlation node that may not
// itself appear on the device timeline (a convolution call has no
// charge of its own — its micro-batch kernels do).
type Scope struct {
	ID     ID     `json:"id"`
	Parent ID     `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
}

// Token is the handle Begin returns; End restores the previous scope.
// The zero Token (recording disabled) is safe to End.
type Token struct {
	// ID is the scope's span identifier; Parent the enclosing scope's.
	ID, Parent ID
}

var (
	enabled atomic.Bool
	next    atomic.Uint64
	cur     atomic.Uint64 // innermost open scope, hot-path readable

	mu     sync.Mutex
	scopes []Scope
)

// Enable turns scope recording on (the CLIs do this around the traced
// iterations; the hot-path hooks stay one atomic check when off).
func Enable() { enabled.Store(true) }

// Disable turns recording off. The scope log is kept until Reset so a
// timeline can still be built after the traced window closes.
func Disable() { enabled.Store(false) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// Reset clears the scope log, the ID counter and the current scope.
func Reset() {
	mu.Lock()
	scopes = nil
	mu.Unlock()
	next.Store(0)
	cur.Store(0)
}

// Begin opens a scope under the current one and makes it current.
// A no-op returning the zero Token when recording is disabled.
func Begin(kind, name string) Token {
	if !enabled.Load() {
		return Token{}
	}
	mu.Lock()
	id := ID(next.Add(1))
	parent := ID(cur.Load())
	scopes = append(scopes, Scope{ID: id, Parent: parent, Kind: kind, Name: name})
	cur.Store(uint64(id))
	mu.Unlock()
	return Token{ID: id, Parent: parent}
}

// End closes the scope opened by Begin, restoring its parent as the
// current scope. Ending the zero Token is a no-op.
func End(t Token) {
	if t.ID == 0 {
		return
	}
	cur.Store(uint64(t.Parent))
}

// Current returns the innermost open scope's ID (0 when none, or when
// recording is disabled). Hot-path: one atomic load.
//
//ucudnn:hotpath
func Current() ID {
	if !enabled.Load() {
		return 0
	}
	return ID(cur.Load())
}

// NewLeaf allocates an ID for a leaf event (a timeline charge). Leaves
// share the scope ID space so every identifier in a recording is
// unique. Hot-path: one atomic add. Returns 0 when disabled.
//
//ucudnn:hotpath
func NewLeaf() ID {
	if !enabled.Load() {
		return 0
	}
	return ID(next.Add(1))
}

// Scopes returns a snapshot of the recorded scope log, in recording
// (execution) order.
func Scopes() []Scope {
	mu.Lock()
	defer mu.Unlock()
	return append([]Scope(nil), scopes...)
}
