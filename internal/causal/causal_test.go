package causal

import "testing"

// The scope stack: Begin nests, End restores, leaves share the ID
// space, and everything is a zero-valued no-op while disabled.
func TestScopeStack(t *testing.T) {
	Reset()
	if Current() != 0 || NewLeaf() != 0 {
		t.Fatal("disabled recording must hand out zero IDs")
	}
	if tok := Begin(KindLayer, "conv1"); tok != (Token{}) {
		t.Fatalf("disabled Begin returned %+v", tok)
	}
	End(Token{}) // must not panic or disturb anything

	Enable()
	defer Disable()
	defer Reset()

	it := Begin(KindIteration, "iteration")
	if it.ID == 0 || it.Parent != 0 {
		t.Fatalf("root scope token %+v", it)
	}
	if Current() != it.ID {
		t.Fatalf("Current() = %d, want %d", Current(), it.ID)
	}
	layer := Begin(KindLayer, "conv1")
	if layer.Parent != it.ID {
		t.Fatalf("nested parent %d, want %d", layer.Parent, it.ID)
	}
	conv := Begin(KindConv, "conv2d(...)")
	leaf := NewLeaf()
	if leaf == 0 || leaf == conv.ID {
		t.Fatalf("leaf ID %d must be fresh (conv %d)", leaf, conv.ID)
	}
	if Current() != conv.ID {
		t.Fatalf("Current() = %d inside conv %d", Current(), conv.ID)
	}
	End(conv)
	if Current() != layer.ID {
		t.Fatalf("End did not restore layer scope: %d", Current())
	}
	End(layer)
	End(it)
	if Current() != 0 {
		t.Fatalf("stack not empty after unwinding: %d", Current())
	}

	scopes := Scopes()
	if len(scopes) != 3 {
		t.Fatalf("recorded %d scopes, want 3", len(scopes))
	}
	wantKinds := []string{KindIteration, KindLayer, KindConv}
	for i, s := range scopes {
		if s.Kind != wantKinds[i] {
			t.Fatalf("scope %d kind %q, want %q", i, s.Kind, wantKinds[i])
		}
	}
	if scopes[1].Parent != scopes[0].ID || scopes[2].Parent != scopes[1].ID {
		t.Fatalf("scope parent chain broken: %+v", scopes)
	}

	Reset()
	if len(Scopes()) != 0 || Current() != 0 {
		t.Fatal("Reset must clear the log and the stack")
	}
	if first := Begin(KindIteration, "again"); first.ID != 1 {
		t.Fatalf("post-Reset IDs must restart at 1, got %d", first.ID)
	}
	End(Token{ID: 1, Parent: 0})
}

// Disable freezes the log so a timeline can still be built afterwards.
func TestDisableKeepsLog(t *testing.T) {
	Reset()
	Enable()
	Begin(KindIteration, "iteration")
	Disable()
	defer Reset()
	if len(Scopes()) != 1 {
		t.Fatal("Disable must keep the recorded scopes")
	}
	if NewLeaf() != 0 {
		t.Fatal("NewLeaf after Disable must return 0")
	}
}
