package causal

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ucudnn/internal/trace"
)

// tev builds a raw trace event with explicit span wiring.
func tev(name, cat string, track int, start, dur time.Duration, span, parent, flow uint64) trace.Event {
	return trace.Event{Name: name, Cat: cat, Track: track, Start: start, Dur: dur,
		Span: span, Parent: parent, Flow: flow}
}

// Build must renumber raw allocation-ordered IDs canonically: the same
// logical recording with different raw IDs and insertion orders exports
// byte-identical JSON.
func TestBuildCanonicalRenumbering(t *testing.T) {
	scopesA := []Scope{
		{ID: 7, Parent: 0, Kind: KindIteration, Name: "iteration"},
		{ID: 9, Parent: 7, Kind: KindLayer, Name: "conv1"},
	}
	evsA := []trace.Event{
		tev("k1", "fwd", trace.TrackKernel, 0, 10, 21, 9, 0),
		tev("k2", "fwd", trace.TrackKernel, 10, 5, 23, 9, 21),
	}
	// Same recording, different raw IDs, events inserted reversed.
	scopesB := []Scope{
		{ID: 101, Parent: 0, Kind: KindIteration, Name: "iteration"},
		{ID: 150, Parent: 101, Kind: KindLayer, Name: "conv1"},
	}
	evsB := []trace.Event{
		tev("k2", "fwd", trace.TrackKernel, 10, 5, 3, 150, 2),
		tev("k1", "fwd", trace.TrackKernel, 0, 10, 2, 150, 0),
	}
	ta, tb := Build(evsA, scopesA), Build(evsB, scopesB)
	var ba, bb bytes.Buffer
	if err := ta.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatalf("renumbered timelines differ:\n%s\nvs\n%s", ba.String(), bb.String())
	}
	if err := ta.Validate(); err != nil {
		t.Fatal(err)
	}
	// Canonical shape: scopes 1,2; events 3,4; parent/flow remapped.
	if ta.Scopes[0].ID != 1 || ta.Scopes[1].ID != 2 || ta.Scopes[1].Parent != 1 {
		t.Fatalf("scope renumbering: %+v", ta.Scopes)
	}
	if ta.Events[0].Span != 3 || ta.Events[1].Span != 4 {
		t.Fatalf("event renumbering: %+v", ta.Events)
	}
	if ta.Events[0].Parent != 2 || ta.Events[1].Parent != 2 {
		t.Fatalf("event parents not remapped: %+v", ta.Events)
	}
	if ta.Events[1].Flow != 3 {
		t.Fatalf("flow not remapped to canonical span: %+v", ta.Events[1])
	}
}

// Round trip: WriteJSON → ReadTimeline preserves the timeline.
func TestTimelineRoundTrip(t *testing.T) {
	tl := Build([]trace.Event{
		tev("k1", "fwd", trace.TrackKernel, 0, 10, 1, 0, 0),
	}, nil)
	var b bytes.Buffer
	if err := tl.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTimeline(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 1 || got.Events[0].Name != "k1" || got.Events[0].DurNS != 10 {
		t.Fatalf("round trip mangled events: %+v", got.Events)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Timeline {
		return Build([]trace.Event{
			tev("k1", "fwd", trace.TrackKernel, 0, 10, 11, 5, 0),
			tev("k2", "fwd", trace.TrackKernel, 10, 5, 12, 5, 11),
		}, []Scope{{ID: 5, Kind: KindLayer, Name: "conv1"}})
	}
	cases := []struct {
		name   string
		mutate func(*Timeline)
		want   string
	}{
		{"schema", func(t *Timeline) { t.Schema = "bogus" }, "schema"},
		{"scope numbering", func(t *Timeline) { t.Scopes[0].ID = 3 }, "dense numbering"},
		{"scope parent", func(t *Timeline) { t.Scopes[0].Parent = 9 }, "precede"},
		{"event numbering", func(t *Timeline) { t.Events[0].Span = 99 }, "dense numbering"},
		{"negative dur", func(t *Timeline) { t.Events[0].DurNS = -1 }, "negative"},
		{"parent not scope", func(t *Timeline) { t.Events[0].Parent = 42 }, "not a scope"},
		{"order", func(t *Timeline) {
			t.Events[0], t.Events[1] = t.Events[1], t.Events[0]
			t.Events[0].Span, t.Events[1].Span = 2, 3
		}, "canonical order"},
		{"flow target", func(t *Timeline) { t.Events[1].Flow = 77 }, "not an event"},
		{"flow time", func(t *Timeline) { t.Events[1].Flow = t.Events[1].Span }, "before its dependency"},
		{"overlap", func(t *Timeline) { t.Events[1].StartNS = 5; t.Events[1].Flow = 0 }, "overlap"},
	}
	for _, tc := range cases {
		tl := base()
		if err := tl.Validate(); err != nil {
			t.Fatalf("%s: base timeline invalid: %v", tc.name, err)
		}
		tc.mutate(tl)
		err := tl.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// Brackets (layer forward/backward, iteration, fault annotations) cover
// their children by design and must be exempt from overlap checking.
func TestValidateBracketExempt(t *testing.T) {
	tl := Build([]trace.Event{
		tev("conv1", "forward", trace.TrackLayer, 0, 15, 0, 0, 0),
		tev("k1", "fwd", trace.TrackLayer, 0, 10, 1, 0, 0),
		tev("k2", "fwd", trace.TrackLayer, 10, 5, 2, 0, 0),
	}, nil)
	if err := tl.Validate(); err != nil {
		t.Fatalf("bracket span tripped overlap check: %v", err)
	}
}
