package causal

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"ucudnn/internal/obs"
	"ucudnn/internal/trace"
)

// The stall taxonomy: every nanosecond of measured stall is attributed
// to exactly one cause by a first-match decision tree (see DESIGN.md).
const (
	// CauseSerialFallback: the degradation ladder hit the serial
	// MinWorkspace floor, so micro-batches ran without division benefits.
	CauseSerialFallback = "serial-fallback"
	// CauseWorkspaceWait: a workspace fault forced replanning/retries.
	CauseWorkspaceWait = "workspace-wait"
	// CauseFetchStarved: compute waited on host-to-device fetches the
	// overlap model could not hide.
	CauseFetchStarved = "fetch-starved"
	// CauseSpillBlocked: device-to-host spills serialized behind compute.
	CauseSpillBlocked = "spill-blocked"
	// CauseWorkerImbalance: parallel kernel workers finished unevenly.
	CauseWorkerImbalance = "worker-imbalance"
	// CauseOther: residual stall none of the model's causes explain.
	CauseOther = "other"
)

// The causal metric series.
const (
	// MetricStallSeconds accumulates attributed stall time by cause.
	MetricStallSeconds = "ucudnn_stall_seconds_total"
	// MetricCriticalPath gauges the per-analysis critical-path length.
	MetricCriticalPath = "ucudnn_critical_path_seconds"
)

// PathStep is one leaf span on an iteration's critical path, with the
// idle gap (and its attributed cause) separating it from the previous
// step.
type PathStep struct {
	Span    uint64 `json:"span"`
	Name    string `json:"name"`
	Track   int    `json:"track"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	// GapNS is the idle time between the previous step's end and this
	// step's start; Cause attributes it when positive.
	GapNS int64  `json:"gap_ns,omitempty"`
	Cause string `json:"cause,omitempty"`
}

// IterationPath is the critical path of one iteration: the longest
// dependency chain of leaf spans, found by backtracking from the
// latest-finishing leaf through latest-ending available predecessors.
type IterationPath struct {
	Span   uint64     `json:"span"`
	WallNS int64      `json:"wall_ns"`
	PathNS int64      `json:"path_ns"`
	Steps  []PathStep `json:"steps"`
	// Coverage is PathNS (plus attributed gaps) over WallNS; the engine
	// guarantees the chain spans the iteration, so busy coverage alone
	// is PathNS/WallNS.
	Coverage float64 `json:"coverage"`
}

// LayerStall is the modeled-vs-measured comparison for one layer: the
// measured serial time of its leaves vs the makespan of replaying the
// same per-window durations through ScheduleOOC's three-stream overlap
// model. The delta is the stall overlap would hide, attributed to one
// cause.
type LayerStall struct {
	Layer       string `json:"layer"`
	Windows     int    `json:"windows"`
	MeasuredNS  int64  `json:"measured_ns"`
	ModeledNS   int64  `json:"modeled_ns"`
	StallNS     int64  `json:"stall_ns"`
	ComputeNS   int64  `json:"compute_ns"`
	FetchNS     int64  `json:"fetch_ns"`
	SpillNS     int64  `json:"spill_ns"`
	RecomputeNS int64  `json:"recompute_ns"`
	Cause       string `json:"cause,omitempty"`
}

// Analysis is the result of analyzing one timeline.
type Analysis struct {
	Iterations []IterationPath `json:"iterations"`
	Layers     []LayerStall    `json:"layers"`
	// StallNS totals attributed stall time by cause, across layer deltas
	// and critical-path gaps.
	StallNS map[string]int64 `json:"stall_ns"`
	// CriticalPathNS sums the iterations' path lengths.
	CriticalPathNS int64 `json:"critical_path_ns"`
	WallNS         int64 `json:"wall_ns"`
}

// Overlap is the replayed three-stream overlap model's verdict for one
// sequence of windows.
type Overlap struct {
	// MakespanNS is the modeled completion time with double buffering.
	MakespanNS int64
	// FetchWaitNS is compute idle time waiting on fetches.
	FetchWaitNS int64
	// SpillTailNS is spill time draining after the last compute.
	SpillTailNS int64
}

// ReplayOverlap replays dnn.ScheduleOOC's double-buffered three-stream
// model (H2D fetch / compute / D2H spill) over explicit per-window
// durations: fetch w+1 overlaps compute w, spills drain behind their
// window. The dnn package's schedule tests pin this replica to
// ScheduleOOC's makespans exactly.
func ReplayOverlap(fetch, compute, spill []int64) Overlap {
	var o Overlap
	var h2d, comp, d2h int64
	at := func(s []int64, i int) int64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	n := len(fetch)
	if len(compute) > n {
		n = len(compute)
	}
	if len(spill) > n {
		n = len(spill)
	}
	for w := 0; w < n; w++ {
		h2d += at(fetch, w)
		if h2d > comp {
			o.FetchWaitNS += h2d - comp
			comp = h2d
		}
		comp += at(compute, w)
		if s := at(spill, w); s > 0 {
			if comp > d2h {
				d2h = comp
			}
			d2h += s
		}
	}
	o.MakespanNS = comp
	if d2h > comp {
		o.MakespanNS = d2h
		o.SpillTailNS = d2h - comp
	}
	return o
}

// Analyze runs the critical-path engine and the modeled-vs-measured
// stall comparator over a timeline. busy optionally maps layer names to
// mean worker busy ratios (from the prof launch accounting) for the
// worker-imbalance classification; nil disables that cause.
func Analyze(t *Timeline, busy map[string]float64) *Analysis {
	a := &Analysis{StallNS: map[string]int64{}}
	leaves := make([]TEvent, 0, len(t.Events))
	var faults []TEvent
	for _, e := range t.Events {
		if e.Cat == "fault" {
			faults = append(faults, e)
		}
		if e.Leaf() {
			leaves = append(leaves, e)
		}
	}
	for _, it := range a.iterationWindows(t, leaves) {
		// Canonical order sorts events by start time, so each window's
		// leaves are a contiguous run: slice it out instead of rescanning
		// every leaf per iteration (long traces have many small windows).
		lo := sort.Search(len(leaves), func(i int) bool { return leaves[i].StartNS >= it.StartNS })
		hi := sort.Search(len(leaves), func(i int) bool { return leaves[i].StartNS > it.End() })
		p := criticalPath(it, leaves[lo:hi], faults)
		a.Iterations = append(a.Iterations, p)
		a.CriticalPathNS += p.PathNS
		a.WallNS += p.WallNS
		for _, s := range p.Steps {
			if s.GapNS > 0 {
				a.StallNS[s.Cause] += s.GapNS
			}
		}
	}
	a.Layers = layerStalls(t, leaves, faults, busy)
	for _, l := range a.Layers {
		if l.StallNS > 0 {
			a.StallNS[l.Cause] += l.StallNS
		}
	}
	return a
}

// iterationWindows returns the iteration bracket events, synthesizing
// one covering every leaf when the timeline has no iteration scope (a
// bare schedule or a single traced pass).
func (a *Analysis) iterationWindows(t *Timeline, leaves []TEvent) []TEvent {
	var iters []TEvent
	for _, e := range t.Events {
		if e.Cat == "iteration" {
			iters = append(iters, e)
		}
	}
	if len(iters) > 0 || len(leaves) == 0 {
		return iters
	}
	lo, hi := leaves[0].StartNS, int64(0)
	for _, e := range leaves {
		if e.StartNS < lo {
			lo = e.StartNS
		}
		if e.End() > hi {
			hi = e.End()
		}
	}
	return []TEvent{{Name: "iteration", Cat: "iteration", StartNS: lo, DurNS: hi - lo}}
}

// criticalPath backtracks from the latest-finishing leaf inside the
// iteration window through latest-ending available predecessors (the
// binding constraint at each step: nothing that finished later could
// have been waited on). On a serial measured timeline every clock
// advancement is a leaf, so the chain tiles the window and coverage is
// 1.0; on overlapped modeled schedules the chain is the longest
// dependency path, with idle gaps classified by the stall taxonomy.
func criticalPath(it TEvent, leaves, faults []TEvent) IterationPath {
	p := IterationPath{Span: it.Span, WallNS: it.DurNS}
	// Leaves inside the window, in canonical order.
	var in []TEvent
	for _, e := range leaves {
		if e.StartNS >= it.StartNS && e.End() <= it.End() {
			in = append(in, e)
		}
	}
	if len(in) == 0 {
		return p
	}
	// Start from the first leaf (in canonical order) with the maximum
	// end time.
	cur := 0
	for i := 1; i < len(in); i++ {
		if in[i].End() > in[cur].End() {
			cur = i
		}
	}
	var rev []PathStep
	for {
		e := in[cur]
		rev = append(rev, PathStep{
			Span: e.Span, Name: e.Name, Track: e.Track,
			StartNS: e.StartNS, DurNS: e.DurNS,
		})
		p.PathNS += e.DurNS
		// Latest-ending predecessor that completed before e started;
		// candidates are restricted to earlier canonical positions so
		// zero-duration spans cannot cycle.
		pred := -1
		for j := 0; j < cur; j++ {
			if in[j].End() <= e.StartNS && (pred < 0 || in[j].End() >= in[pred].End()) {
				pred = j
			}
		}
		if pred < 0 {
			if gap := e.StartNS - it.StartNS; gap > 0 && it.Span != 0 {
				rev[len(rev)-1].GapNS = gap
				rev[len(rev)-1].Cause = classifyGap(TEvent{}, e, faults)
			}
			break
		}
		if gap := e.StartNS - in[pred].End(); gap > 0 {
			rev[len(rev)-1].GapNS = gap
			rev[len(rev)-1].Cause = classifyGap(in[pred], e, faults)
		}
		cur = pred
	}
	for i := len(rev) - 1; i >= 0; i-- {
		p.Steps = append(p.Steps, rev[i])
	}
	if p.WallNS > 0 {
		covered := p.PathNS
		for _, s := range p.Steps {
			covered += s.GapNS
		}
		p.Coverage = float64(covered) / float64(p.WallNS)
	}
	return p
}

// classifyGap attributes one idle gap before cur: explicit fault
// evidence wins, then the stream cur (or its binding predecessor)
// belongs to, then other.
func classifyGap(pred, cur TEvent, faults []TEvent) string {
	gapStart, gapEnd := pred.End(), cur.StartNS
	for _, f := range faults {
		if f.StartNS < gapEnd && f.End() > gapStart {
			if strings.Contains(f.Name, "-> floor") {
				return CauseSerialFallback
			}
			return CauseWorkspaceWait
		}
	}
	switch {
	case strings.HasPrefix(cur.Cat, "ooc_fetch") || strings.HasPrefix(cur.Name, "ooc_fetch"):
		// The fetch stream itself idling is starvation upstream.
		return CauseFetchStarved
	case strings.HasPrefix(pred.Cat, "ooc_fetch") || strings.HasPrefix(pred.Name, "ooc_fetch"):
		return CauseFetchStarved
	case strings.HasPrefix(cur.Cat, "ooc_spill") || strings.HasPrefix(cur.Name, "ooc_spill"):
		return CauseSpillBlocked
	case strings.HasPrefix(pred.Cat, "ooc_spill") || strings.HasPrefix(pred.Name, "ooc_spill"):
		return CauseSpillBlocked
	}
	return CauseOther
}

// layerStalls groups leaves by their enclosing layer scope and replays
// each layer pass's fetch/compute/spill windows through the overlap
// model, reporting measured (serial) minus modeled (overlapped) per
// layer with one attributed cause.
func layerStalls(t *Timeline, leaves, faults []TEvent, busy map[string]float64) []LayerStall {
	if len(t.Scopes) == 0 {
		return nil
	}
	scopeByID := make(map[uint64]Scope, len(t.Scopes))
	for _, s := range t.Scopes {
		scopeByID[uint64(s.ID)] = s
	}
	layerOf := func(parent uint64) (uint64, string) {
		for parent != 0 {
			s, ok := scopeByID[parent]
			if !ok {
				return 0, ""
			}
			if s.Kind == KindLayer {
				return uint64(s.ID), s.Name
			}
			parent = uint64(s.Parent)
		}
		return 0, ""
	}

	// One pass of one layer = one layer scope instance.
	type instance struct {
		name               string
		fetch, spill       []int64
		compute, recompute int64
	}
	instances := map[uint64]*instance{}
	var order []uint64
	get := func(id uint64, name string) *instance {
		if in, ok := instances[id]; ok {
			return in
		}
		in := &instance{name: name}
		instances[id] = in
		order = append(order, id)
		return in
	}
	for _, e := range leaves {
		id, name := layerOf(e.Parent)
		if id == 0 {
			continue
		}
		in := get(id, name)
		switch e.Track {
		case trace.TrackOOCFetch:
			in.fetch = append(in.fetch, e.DurNS)
			if e.Cat == "ooc_recompute" {
				in.recompute += e.DurNS
			}
		case trace.TrackOOCSpill:
			in.spill = append(in.spill, e.DurNS)
		default:
			in.compute += e.DurNS
		}
	}
	faultLayer := map[string]string{} // layer -> worst fault kind seen
	for _, f := range faults {
		_, name := layerOf(f.Parent)
		if name == "" {
			continue
		}
		if strings.Contains(f.Name, "-> floor") {
			faultLayer[name] = CauseSerialFallback
		} else if faultLayer[name] == "" {
			faultLayer[name] = CauseWorkspaceWait
		}
	}

	// Aggregate instances per layer name, in first-seen order.
	agg := map[string]*LayerStall{}
	var names []string
	for _, id := range order {
		in := instances[id]
		l, ok := agg[in.name]
		if !ok {
			l = &LayerStall{Layer: in.name}
			agg[in.name] = l
			names = append(names, in.name)
		}
		windows := len(in.fetch)
		if windows == 0 {
			windows = 1
		}
		if windows > l.Windows {
			l.Windows = windows
		}
		var fetchNS, spillNS int64
		for _, d := range in.fetch {
			fetchNS += d
		}
		for _, d := range in.spill {
			spillNS += d
		}
		measured := fetchNS + in.compute + spillNS
		o := ReplayOverlap(in.fetch, splitEven(in.compute, windows), in.spill)
		l.MeasuredNS += measured
		l.ModeledNS += o.MakespanNS
		l.StallNS += measured - o.MakespanNS
		l.ComputeNS += in.compute
		l.FetchNS += fetchNS - in.recompute
		l.RecomputeNS += in.recompute
		l.SpillNS += spillNS
	}
	out := make([]LayerStall, 0, len(names))
	for _, name := range names {
		l := agg[name]
		l.Cause = classifyLayer(l, faultLayer[name], busy)
		out = append(out, *l)
	}
	return out
}

// classifyLayer attributes a layer's stall delta by the first-match
// decision tree; every positive stall gets exactly one cause.
func classifyLayer(l *LayerStall, fault string, busy map[string]float64) string {
	if l.StallNS <= 0 {
		return ""
	}
	switch {
	case fault == CauseSerialFallback:
		return CauseSerialFallback
	case fault == CauseWorkspaceWait:
		return CauseWorkspaceWait
	case busy != nil && busy[l.Layer] > 0 && busy[l.Layer] < 0.6:
		return CauseWorkerImbalance
	case l.FetchNS+l.RecomputeNS >= l.SpillNS && l.FetchNS+l.RecomputeNS > 0:
		return CauseFetchStarved
	case l.SpillNS > 0:
		return CauseSpillBlocked
	}
	return CauseOther
}

// splitEven divides total across n windows as evenly as integer
// nanoseconds allow, remainder on the last window, conserving the sum.
func splitEven(total int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	each := total / int64(n)
	for i := range out {
		out[i] = each
	}
	out[n-1] = total - each*int64(n-1)
	return out
}

// Metrics publishes the analysis onto an obs registry:
// ucudnn_stall_seconds_total by cause and ucudnn_critical_path_seconds.
func (a *Analysis) Metrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	causes := make([]string, 0, len(a.StallNS))
	for c := range a.StallNS {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	for _, c := range causes {
		reg.FloatCounter(MetricStallSeconds, obs.L("cause", c)).Add(float64(a.StallNS[c]) / 1e9)
	}
	reg.Gauge(MetricCriticalPath).Set(float64(a.CriticalPathNS) / 1e9)
}

// WriteTable renders the analysis for terminals: per-iteration critical
// paths and the per-layer modeled-vs-measured stall table.
func (a *Analysis) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "critical path: %.6fs over %d iteration(s), wall %.6fs\n",
		float64(a.CriticalPathNS)/1e9, len(a.Iterations), float64(a.WallNS)/1e9)
	for i, it := range a.Iterations {
		fmt.Fprintf(w, "  iteration %d: path %.6fs / wall %.6fs (coverage %.1f%%), %d steps\n",
			i, float64(it.PathNS)/1e9, float64(it.WallNS)/1e9, it.Coverage*100, len(it.Steps))
	}
	if len(a.Layers) > 0 {
		fmt.Fprintln(w)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "layer\twin\tmeasured\tmodeled\tstall\tfetch\tcompute\tspill\trecompute\tcause")
		for _, l := range a.Layers {
			cause := l.Cause
			if cause == "" {
				cause = "-"
			}
			fmt.Fprintf(tw, "%s\t%d\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%s\n",
				l.Layer, l.Windows,
				float64(l.MeasuredNS)/1e9, float64(l.ModeledNS)/1e9, float64(l.StallNS)/1e9,
				float64(l.FetchNS)/1e9, float64(l.ComputeNS)/1e9, float64(l.SpillNS)/1e9,
				float64(l.RecomputeNS)/1e9, cause)
		}
		tw.Flush()
	}
	if len(a.StallNS) > 0 {
		causes := make([]string, 0, len(a.StallNS))
		for c := range a.StallNS {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		fmt.Fprintln(w)
		for _, c := range causes {
			fmt.Fprintf(w, "stall[%s] = %.6fs\n", c, float64(a.StallNS[c])/1e9)
		}
	}
}
