package causal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"ucudnn/internal/trace"
)

// Schema identifies the timeline JSON layout; ucudnn-trace -check
// refuses anything else.
const Schema = "ucudnn-causal-timeline/v1"

// TEvent is one leaf span of the exported timeline: a unit of work that
// occupied a track for [StartNS, StartNS+DurNS).
type TEvent struct {
	// Span is the event's canonical identifier (scopes are numbered
	// first, then events in timeline order).
	Span uint64 `json:"span"`
	// Parent is the enclosing scope's ID; 0 at the root.
	Parent uint64 `json:"parent,omitempty"`
	// Flow is the Span of the event this one causally waited on across
	// tracks; 0 when none.
	Flow    uint64 `json:"flow,omitempty"`
	Name    string `json:"name"`
	Cat     string `json:"cat"`
	Track   int    `json:"track"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// End is the event's completion time in nanoseconds.
func (e TEvent) End() int64 { return e.StartNS + e.DurNS }

// Timeline is the unified causal timeline: the scope tree (iterations,
// layers, conv calls) plus every recorded span, canonically numbered so
// the exported bytes are identical across worker counts and profiling
// on/off.
type Timeline struct {
	Schema string   `json:"schema"`
	Scopes []Scope  `json:"scopes"`
	Events []TEvent `json:"events"`
}

// bracketCats are the categories of non-leaf annotation spans: brackets
// mirror scopes on the timeline (their duration double-covers their
// children) and fault spans double-cover the retried kernels they
// explain. Everything else is a leaf that exclusively occupied its
// track.
var bracketCats = map[string]bool{
	"forward":   true,
	"backward":  true,
	"iteration": true,
	"fault":     true,
}

// Leaf reports whether the event is a leaf work span (participates in
// critical-path and stall accounting) rather than a bracket/annotation.
func (e TEvent) Leaf() bool { return !bracketCats[e.Cat] }

// Build assembles the canonical timeline from recorded trace events and
// the scope log. Raw span IDs are allocation-ordered and vary with
// recording interleaving; Build renumbers them positionally — scopes
// 1..S in recording order, events S+1.. in sorted (Start, Track, Name)
// order — which is what makes the export deterministic.
func Build(events []trace.Event, scopes []Scope) *Timeline {
	t := &Timeline{Schema: Schema, Scopes: []Scope{}, Events: []TEvent{}}
	scopeMap := make(map[ID]ID, len(scopes))
	for i, s := range scopes {
		id := ID(i + 1)
		scopeMap[s.ID] = id
		t.Scopes = append(t.Scopes, Scope{ID: id, Parent: scopeMap[s.Parent], Kind: s.Kind, Name: s.Name})
	}
	evs := append([]trace.Event{}, events...)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		if evs[i].Track != evs[j].Track {
			return evs[i].Track < evs[j].Track
		}
		if evs[i].Name != evs[j].Name {
			return evs[i].Name < evs[j].Name
		}
		return evs[i].Span < evs[j].Span
	})
	eventMap := make(map[uint64]uint64, len(evs))
	next := uint64(len(scopes))
	for _, e := range evs {
		next++
		if e.Span != 0 {
			eventMap[e.Span] = next
		}
	}
	next = uint64(len(scopes))
	for _, e := range evs {
		next++
		te := TEvent{
			Span:    next,
			Parent:  uint64(scopeMap[ID(e.Parent)]),
			Flow:    eventMap[e.Flow],
			Name:    e.Name,
			Cat:     e.Cat,
			Track:   e.Track,
			StartNS: e.Start.Nanoseconds(),
			DurNS:   e.Dur.Nanoseconds(),
		}
		t.Events = append(t.Events, te)
	}
	return t
}

// TraceEvents converts the timeline back to trace events (for the
// Chrome renderer).
func (t *Timeline) TraceEvents() []trace.Event {
	out := make([]trace.Event, len(t.Events))
	for i, e := range t.Events {
		out[i] = trace.Event{
			Name: e.Name, Cat: e.Cat, Track: e.Track,
			Start: time.Duration(e.StartNS), Dur: time.Duration(e.DurNS),
			Span: e.Span, Parent: e.Parent, Flow: e.Flow,
		}
	}
	return out
}

// WriteJSON emits the canonical timeline JSON (the -check / determinism
// contract is over exactly these bytes).
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// WriteChrome renders the timeline as Chrome trace-event JSON with
// span/parent args, flow arrows and named tracks.
func (t *Timeline) WriteChrome(w io.Writer) error {
	return trace.WriteChromeEvents(w, t.TraceEvents())
}

// ReadTimeline parses a timeline exported by WriteJSON.
func ReadTimeline(r io.Reader) (*Timeline, error) {
	var t Timeline
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("causal: parse timeline: %w", err)
	}
	return &t, nil
}

// Validate checks the timeline invariants ucudnn-trace -check enforces:
// the schema tag; scope IDs dense 1..S with parents preceding children;
// event IDs dense S+1.. in canonical (start, track, name) order; parents
// referencing scopes; flow edges referencing events that completed
// before the dependent started; and leaf spans on one track never
// overlapping (bracket/annotation tracks are exempt — brackets cover
// their children by design).
func (t *Timeline) Validate() error {
	if t.Schema != Schema {
		return fmt.Errorf("causal: schema %q, want %q", t.Schema, Schema)
	}
	for i, s := range t.Scopes {
		if s.ID != ID(i+1) {
			return fmt.Errorf("causal: scope %d has ID %d, want dense numbering", i, s.ID)
		}
		if s.Parent >= s.ID {
			return fmt.Errorf("causal: scope %d parent %d does not precede it", s.ID, s.Parent)
		}
	}
	nScopes := uint64(len(t.Scopes))
	byID := make(map[uint64]TEvent, len(t.Events))
	prev := TEvent{StartNS: -1 << 62}
	for i, e := range t.Events {
		if e.Span != nScopes+uint64(i)+1 {
			return fmt.Errorf("causal: event %d has span %d, want dense numbering after %d scopes", i, e.Span, nScopes)
		}
		if e.DurNS < 0 || e.StartNS < 0 {
			return fmt.Errorf("causal: event %d (%s) has negative time", e.Span, e.Name)
		}
		if e.Parent != 0 && e.Parent > nScopes {
			return fmt.Errorf("causal: event %d parent %d is not a scope", e.Span, e.Parent)
		}
		if i > 0 {
			if e.StartNS < prev.StartNS ||
				(e.StartNS == prev.StartNS && (e.Track < prev.Track ||
					(e.Track == prev.Track && e.Name < prev.Name))) {
				return fmt.Errorf("causal: events not in canonical order at %d (%s)", e.Span, e.Name)
			}
		}
		byID[e.Span] = e
		prev = e
	}
	tracks := map[int][]TEvent{}
	for _, e := range t.Events {
		if e.Flow != 0 {
			src, ok := byID[e.Flow]
			if !ok {
				return fmt.Errorf("causal: event %d flow %d is not an event", e.Span, e.Flow)
			}
			if src.End() > e.StartNS {
				return fmt.Errorf("causal: event %d starts at %d before its dependency %d ends at %d",
					e.Span, e.StartNS, e.Flow, src.End())
			}
		}
		if e.Leaf() {
			tracks[e.Track] = append(tracks[e.Track], e)
		}
	}
	ids := make([]int, 0, len(tracks))
	for tr := range tracks {
		ids = append(ids, tr)
	}
	sort.Ints(ids)
	for _, tr := range ids {
		evs := tracks[tr]
		for i := 1; i < len(evs); i++ {
			if evs[i].StartNS < evs[i-1].End() {
				return fmt.Errorf("causal: track %d leaf spans overlap: %q and %q", tr, evs[i-1].Name, evs[i].Name)
			}
		}
	}
	return nil
}
