package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
	h := r.Histogram("h_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(50)
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d, want 3", h.Count())
	}
	if got := h.Sum(); got != 50.055 {
		t.Fatalf("histogram sum = %v", got)
	}
}

func TestRegistryReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("op", "fwd"))
	b := r.Counter("x", L("op", "fwd"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("x", L("op", "bwd"))
	if a == other {
		t.Fatal("different labels must return distinct counters")
	}
	// Label order must not matter.
	h1 := r.Histogram("hh", CountBuckets, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("hh", CountBuckets, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order must not create a new series")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	// None of these may panic.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteFile(""); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentUpdates exercises every metric type from many goroutines;
// run under -race it verifies the lock-free paths.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c_total").Inc()
				r.Counter("labeled_total", L("w", "shared")).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", CountBuckets).Observe(float64(i % 70))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Counter("labeled_total", L("w", "shared")).Value(); got != workers*per {
		t.Fatalf("labeled counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per {
		t.Fatalf("gauge = %v, want %d", got, workers*per)
	}
	if got := r.Histogram("h", CountBuckets).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestLabelValueEscaping pins the exposition-format escaping rules:
// backslash, double quote and line feed are escaped; everything else —
// including non-ASCII UTF-8 — passes through verbatim (Go's %q would
// over-escape it).
func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", L("path", "C:\\tmp\n\"x\"")).Inc()
	r.Counter("utf_total", L("dev", "µ-cuDNN ©")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`esc_total{path="C:\\tmp\n\"x\""} 1`,
		`utf_total{dev="µ-cuDNN ©"} 1`,
	} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q_seconds", []float64{0.01, 1})
	for _, q := range []float64{0, 0.5, 1} {
		if !math.IsNaN(h.Quantile(q)) {
			t.Fatalf("empty histogram Quantile(%g) = %g, want NaN", q, h.Quantile(q))
		}
	}
	h.Observe(0.004)
	h.Observe(0.146)
	h.Observe(40)
	if got := h.Quantile(0.5); got != 0.505 {
		t.Errorf("p50 = %g, want 0.505 (interpolated inside (0.01, 1])", got)
	}
	// Ranks landing in the +Inf bucket clamp to the highest finite bound.
	for _, q := range []float64{0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("Quantile(%g) = %g, want 1 (clamped)", q, got)
		}
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Error("out-of-range q must be NaN")
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram Quantile must be NaN")
	}
}

const goldenPrometheus = `# TYPE ucudnn_cache_hits_total counter
ucudnn_cache_hits_total 7
# TYPE ucudnn_ilp_variables gauge
ucudnn_ilp_variables 562
# TYPE ucudnn_opt_wr_seconds histogram
ucudnn_opt_wr_seconds_bucket{le="0.01"} 1
ucudnn_opt_wr_seconds_bucket{le="1"} 2
ucudnn_opt_wr_seconds_bucket{le="+Inf"} 3
ucudnn_opt_wr_seconds_sum 40.15
ucudnn_opt_wr_seconds_count 3
# TYPE ucudnn_selected_total counter
ucudnn_selected_total{algo="fft",op="Forward"} 2
ucudnn_selected_total{algo="gemm",op="Forward"} 1
`

const goldenSummary = `metric                                           value
ucudnn_cache_hits_total                          7
ucudnn_ilp_variables                             562
ucudnn_opt_wr_seconds                            count=3 sum=40.15 mean=13.383333333333333 p50=0.505 p95=1 p99=1
ucudnn_selected_total{algo="fft",op="Forward"}   2
ucudnn_selected_total{algo="gemm",op="Forward"}  1
`

func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("ucudnn_cache_hits_total").Add(7)
	r.Gauge("ucudnn_ilp_variables").Set(562)
	h := r.Histogram("ucudnn_opt_wr_seconds", []float64{0.01, 1})
	h.Observe(0.004)
	h.Observe(0.146)
	h.Observe(40)
	r.Counter("ucudnn_selected_total", L("op", "Forward"), L("algo", "fft")).Add(2)
	r.Counter("ucudnn_selected_total", L("op", "Forward"), L("algo", "gemm")).Inc()
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenPrometheus {
		t.Fatalf("prometheus exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), goldenPrometheus)
	}
}

func TestWriteSummaryGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenSummary {
		t.Fatalf("summary mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), goldenSummary)
	}
}
