package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestFloatCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.FloatCounter("stall_seconds_total", L("cause", "fetch-starved"))
	c.Add(0.25)
	c.Add(0.5)
	c.Add(-1)         // ignored: counters are monotone
	c.Add(math.NaN()) // ignored
	if got := c.Value(); got != 0.75 {
		t.Fatalf("float counter = %v, want 0.75", got)
	}
	if c != r.FloatCounter("stall_seconds_total", L("cause", "fetch-starved")) {
		t.Fatal("same name+labels must return the same series")
	}
	var nilR *Registry
	nc := nilR.FloatCounter("x_total")
	nc.Add(1) // must not panic
	var nilC *FloatCounter
	nilC.Add(1)
	if nilC.Value() != 0 {
		t.Fatal("nil float counter value")
	}
}

func TestFloatCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.FloatCounter("cc_total")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Fatalf("concurrent adds lost updates: %v, want 4000", got)
	}
}

// Float counters export as counter-typed Prometheus series and appear
// in the text summary.
func TestFloatCounterExport(t *testing.T) {
	r := NewRegistry()
	r.FloatCounter("ucudnn_stall_seconds_total", L("cause", "spill-blocked")).Add(1.5)
	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	if !strings.Contains(out, "# TYPE ucudnn_stall_seconds_total counter") {
		t.Fatalf("missing counter TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `ucudnn_stall_seconds_total{cause="spill-blocked"} 1.5`) {
		t.Fatalf("missing sample:\n%s", out)
	}
	var sum strings.Builder
	if err := r.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "ucudnn_stall_seconds_total") {
		t.Fatalf("summary missing float counter:\n%s", sum.String())
	}
}
