package obs

// Exporter-ordering determinism: two registries fed the same series in
// different registration orders must render byte-identical expositions.
// The profiler registers one ucudnn_kernel_phase_seconds histogram per
// phase in registration order, so this is the property that keeps a
// scraped profile diffable across runs and builds.

import (
	"strings"
	"testing"
)

func TestExporterOrderingDeterminism(t *testing.T) {
	phases := []string{
		"ucudnn_ph_winograd_transform_in",
		"ucudnn_ph_gemm_sgemm",
		"ucudnn_ph_fft_forward",
		"ucudnn_ph_gemm_im2col",
	}
	forward := NewRegistry()
	for _, ph := range phases {
		forward.Histogram("ucudnn_kernel_phase_seconds", DurationBuckets, L("phase", ph)).Observe(0.001)
	}
	forward.Gauge("ucudnn_worker_imbalance_ratio").Set(1.25)

	reversed := NewRegistry()
	reversed.Gauge("ucudnn_worker_imbalance_ratio").Set(1.25)
	for i := len(phases) - 1; i >= 0; i-- {
		reversed.Histogram("ucudnn_kernel_phase_seconds", DurationBuckets, L("phase", phases[i])).Observe(0.001)
	}

	for name, write := range map[string]func(*Registry, *strings.Builder) error{
		"prometheus": func(r *Registry, sb *strings.Builder) error { return r.WritePrometheus(sb) },
		"summary":    func(r *Registry, sb *strings.Builder) error { return r.WriteSummary(sb) },
	} {
		var a, b strings.Builder
		if err := write(forward, &a); err != nil {
			t.Fatal(err)
		}
		if err := write(reversed, &b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s exposition depends on registration order:\n--- forward ---\n%s\n--- reversed ---\n%s",
				name, a.String(), b.String())
		}
		// The phase label values themselves must come out sorted.
		var last string
		for _, line := range strings.Split(a.String(), "\n") {
			if !strings.Contains(line, `phase="`) {
				continue
			}
			val := line[strings.Index(line, `phase="`):]
			if name == "prometheus" && !strings.Contains(line, "_count") {
				continue // one comparison point per series
			}
			if last != "" && val < last {
				t.Errorf("%s: phase series out of order: %q after %q", name, val, last)
			}
			last = val
		}
	}
}
