// Package obs is a lightweight, dependency-free metrics layer for the
// µ-cuDNN reproduction: atomic counters, gauges and fixed-bucket latency
// histograms collected in a Registry, exported either as Prometheus text
// exposition or as a human-readable summary table.
//
// Every handle type is safe for concurrent use, and every operation is a
// no-op on a nil receiver: instrumented code paths hold possibly-nil
// metric handles and never branch on whether observability is enabled,
// so a run without a registry pays only a nil check.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension of a metric series.
type Label struct {
	Name  string
	Value string
}

// L builds a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// promEscaper escapes a label value per the Prometheus text exposition
// format (version 0.0.4): exactly backslash, double quote and line feed.
// Go's %q is not equivalent — it would also escape other control and
// non-ASCII characters, which the format passes through as raw UTF-8.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelString renders labels in deterministic (sorted-by-name) order as
// the {a="x",b="y"} suffix of a series; empty for no labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Name + `="` + promEscaper.Replace(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float64 metric (Prometheus
// counters are doubles natively; this is the handle for second-valued
// totals like ucudnn_stall_seconds_total).
type FloatCounter struct {
	bits atomic.Uint64
}

// Add adds delta (negative or NaN deltas are ignored to keep the
// counter monotone).
func (c *FloatCounter) Add(delta float64) {
	if c == nil || !(delta > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram (cumulative on export, like
// Prometheus): bounds are ascending upper bounds, with an implicit +Inf
// bucket at the end.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    Gauge
}

// DurationBuckets are upper bounds in seconds suited to the optimizer
// timings the paper reports (§IV-B: microseconds to tens of seconds).
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60}

// CountBuckets are power-of-two upper bounds suited to micro-batch
// division counts and other small cardinalities.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	//ucudnn:allow hotpathcall -- SearchFloat64s is a pure binary search over the existing bounds slice; no allocation
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the time elapsed since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile estimates the q-quantile (q in [0, 1]) from the buckets by
// linear interpolation inside the bucket holding the target rank — the
// same estimate Prometheus's histogram_quantile gives, with the same
// caveats: resolution is bounded by the bucket bounds, ranks landing in
// the +Inf bucket clamp to the highest finite bound, and an empty
// histogram (or out-of-range q) returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 || q < 0 || q > 1 || len(h.bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (bound-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is one registered series.
type metric struct {
	name   string
	labels string // rendered suffix, "" when unlabeled
	c      *Counter
	fc     *FloatCounter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric series keyed by name plus labels. The zero value
// is not usable; a nil *Registry is: every lookup returns a nil handle,
// whose operations are no-ops.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

func (r *Registry) lookup(name string, labels []Label) (*metric, bool) {
	key := name + labelString(labels)
	m, ok := r.metrics[key]
	if !ok {
		m = &metric{name: name, labels: labelString(labels)}
		r.metrics[key] = m
	}
	return m, ok
}

// Counter returns (creating if needed) the counter series name{labels}.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, labels)
	if !existed {
		m.c = &Counter{}
	}
	return m.c
}

// FloatCounter returns (creating if needed) the float counter series
// name{labels}.
func (r *Registry) FloatCounter(name string, labels ...Label) *FloatCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, labels)
	if !existed {
		m.fc = &FloatCounter{}
	}
	return m.fc
}

// Gauge returns (creating if needed) the gauge series name{labels}.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, labels)
	if !existed {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns (creating if needed) the histogram series
// name{labels} with the given ascending bucket upper bounds. The bounds
// of the first registration win; later calls ignore theirs.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, labels)
	if !existed {
		m.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return m.h
}

// snapshot returns the registered series sorted by (name, labels).
func (r *Registry) snapshot() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}
