package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

// fmtFloat renders a float the way Prometheus text exposition does:
// shortest representation that round-trips.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus emits the registry in the Prometheus text exposition
// format (version 0.0.4): one TYPE comment per metric family, series
// sorted by (name, labels), histograms expanded into cumulative
// _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range r.snapshot() {
		typ := "counter" // Counter and FloatCounter both export as counter.
		if m.g != nil {
			typ = "gauge"
		} else if m.h != nil {
			typ = "histogram"
		}
		if m.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
				return err
			}
			lastFamily = m.name
		}
		switch {
		case m.c != nil:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.c.Value()); err != nil {
				return err
			}
		case m.fc != nil:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels, fmtFloat(m.fc.Value())); err != nil {
				return err
			}
		case m.g != nil:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels, fmtFloat(m.g.Value())); err != nil {
				return err
			}
		case m.h != nil:
			if err := writePromHistogram(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// bucketLabels splices le=... into an existing label suffix.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

func writePromHistogram(w io.Writer, m *metric) error {
	cum := int64(0)
	for i, bound := range m.h.bounds {
		cum += m.h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, bucketLabels(m.labels, fmtFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += m.h.counts[len(m.h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, bucketLabels(m.labels, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, m.labels, fmtFloat(m.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, m.h.Count())
	return err
}

// WriteSummary renders the registry as an aligned human-readable table:
// one row per series, histograms condensed to count/sum/mean.
func (r *Registry) WriteSummary(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tvalue")
	for _, m := range r.snapshot() {
		switch {
		case m.c != nil:
			fmt.Fprintf(tw, "%s%s\t%d\n", m.name, m.labels, m.c.Value())
		case m.fc != nil:
			fmt.Fprintf(tw, "%s%s\t%s\n", m.name, m.labels, fmtFloat(m.fc.Value()))
		case m.g != nil:
			fmt.Fprintf(tw, "%s%s\t%s\n", m.name, m.labels, fmtFloat(m.g.Value()))
		case m.h != nil:
			n := m.h.Count()
			if n == 0 {
				fmt.Fprintf(tw, "%s%s\tcount=0 sum=0 mean=0\n", m.name, m.labels)
				continue
			}
			mean := m.h.Sum() / float64(n)
			fmt.Fprintf(tw, "%s%s\tcount=%d sum=%s mean=%s p50=%s p95=%s p99=%s\n",
				m.name, m.labels, n, fmtFloat(m.h.Sum()), fmtFloat(mean),
				fmtFloat(m.h.Quantile(0.5)), fmtFloat(m.h.Quantile(0.95)), fmtFloat(m.h.Quantile(0.99)))
		}
	}
	return tw.Flush()
}

// WriteFile exports the registry to path: "-" writes the summary table
// to stdout; a path ending in ".prom" writes Prometheus text exposition;
// any other path gets the summary table. This is the shared behaviour of
// the CLIs' -metrics flags and the UCUDNN_METRICS environment variable.
func (r *Registry) WriteFile(path string) error {
	if r == nil || path == "" {
		return nil
	}
	if path == "-" {
		return r.WriteSummary(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: writing metrics: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") {
		return r.WritePrometheus(f)
	}
	return r.WriteSummary(f)
}
