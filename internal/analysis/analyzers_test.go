package analysis

import (
	"strings"
	"testing"
)

func TestDetlint(t *testing.T)             { RunFixture(t, Detlint, "core") }
func TestDetlintOutOfScope(t *testing.T)   { RunFixture(t, Detlint, "other") }
func TestHotpath(t *testing.T)             { RunFixture(t, Hotpath, "hot") }
func TestWSFloor(t *testing.T)             { RunFixture(t, WSFloor, "ws") }
func TestMetricName(t *testing.T)          { RunFixture(t, MetricName, "metrics") }
func TestMetricNameEvents(t *testing.T)    { RunFixture(t, MetricName, "events") }
func TestMetricNameExemptPkg(t *testing.T) { RunFixture(t, MetricName, "flight") }
func TestFaultPoint(t *testing.T)          { RunFixture(t, FaultPoint, "probe") }
func TestFaultPointExemptPkg(t *testing.T) { RunFixture(t, FaultPoint, "faults") }
func TestPhaseName(t *testing.T)           { RunFixture(t, PhaseName, "kern") }
func TestPhaseNameExemptPkg(t *testing.T)  { RunFixture(t, PhaseName, "prof") }
func TestHotpathCall(t *testing.T)         { RunFixture(t, HotpathCall, "chain") }
func TestAtomicLint(t *testing.T)          { RunFixture(t, AtomicLint, "counters") }
func TestLockOrder(t *testing.T)           { RunFixture(t, LockOrder, "locks") }
func TestPhasePair(t *testing.T)           { RunFixture(t, PhasePair, "pairs") }

// TestMalformedDirective checks that justification-free //ucudnn:allow
// directives are themselves reported, by any analyzer selection.
func TestMalformedDirective(t *testing.T) {
	pkg := loadFixture(t, "directive", "baddir")
	diags, err := Run(pkg, All)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 malformed-directive reports:\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "directive" || !strings.Contains(d.Message, "malformed") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All) {
		t.Fatalf("ByName(\"\") = %v, %v; want the full suite", all, err)
	}
	got, err := ByName("wsfloor, detlint")
	if err != nil || len(got) != 2 || got[0] != WSFloor || got[1] != Detlint {
		t.Fatalf("ByName(\"wsfloor, detlint\") = %v, %v", got, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") did not fail")
	}
}
