package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// AtomicLint enforces all-or-nothing atomicity on struct fields: a
// field whose address is passed to a sync/atomic operation anywhere in
// the module must be accessed through sync/atomic everywhere — one
// plain `f++` next to a hundred atomic.AddInt64(&f, 1) calls is a data
// race the race detector only catches if a test happens to interleave
// it. The analyzer is interprocedural because the two halves of such a
// race are usually in different files or packages (a counter bumped in
// internal/prof, reset in a test helper).
//
// Two rules:
//
//   - mixed access: every read or write of an atomically-used field
//     must be a sync/atomic call on its address; plain reads, writes,
//     ++/--, and taking the address for anything other than a
//     sync/atomic call are flagged, with the location of one atomic
//     use for context;
//   - no copies: values of sync/atomic's typed wrappers (atomic.Int64,
//     atomic.Value, ...) must be shared by pointer and used through
//     their methods; assigning, passing, or returning one by value
//     forks its state.
//
// Composite-literal field keys are exempt — construction happens
// before the value is shared.
var AtomicLint = &Analyzer{
	Name:       "atomiclint",
	Doc:        "fields used with sync/atomic must be accessed atomically everywhere; atomic wrapper values must not be copied",
	RunProgram: runAtomicLint,
}

func runAtomicLint(pass *ProgramPass) error {
	// Pass 1: find every field whose address feeds a sync/atomic
	// function, and remember the sanctioned selector nodes so pass 2
	// does not flag the atomic uses themselves.
	atomicAt := map[*types.Var]token.Pos{} // field -> earliest atomic use
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFunc(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					ue, ok := arg.(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fv := fieldOf(pkg.Info, sel)
					if fv == nil {
						continue
					}
					sanctioned[sel] = true
					if at, ok := atomicAt[fv]; !ok || sel.Pos() < at {
						atomicAt[fv] = sel.Pos()
					}
				}
				return true
			})
		}
	}

	// Pass 2: flag every other access to those fields, and every
	// by-value copy of a sync/atomic wrapper type.
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					fv := fieldOf(pkg.Info, n)
					if fv == nil || sanctioned[n] {
						return true
					}
					at, ok := atomicAt[fv]
					if !ok {
						return true
					}
					pass.Reportf(n.Pos(),
						"field %s is accessed with sync/atomic (e.g. at %s) and must be accessed atomically everywhere; plain access races",
						fieldDesc(pkg, pkg.Info, n, fv), shortPos(pass.Prog.Fset, at))
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						// Assigning to _ evaluates and discards; no
						// second copy of the state escapes.
						if len(n.Lhs) == len(n.Rhs) {
							if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
								continue
							}
						}
						flagAtomicCopy(pass, pkg, rhs)
					}
				case *ast.ValueSpec:
					for _, v := range n.Values {
						flagAtomicCopy(pass, pkg, v)
					}
				case *ast.ReturnStmt:
					for _, r := range n.Results {
						flagAtomicCopy(pass, pkg, r)
					}
				case *ast.CallExpr:
					if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.IsType() {
						return true // conversion, not a call
					}
					for _, arg := range n.Args {
						flagAtomicCopy(pass, pkg, arg)
					}
				}
				return true
			})
		}
	}
	return nil
}

// isAtomicFunc reports whether call invokes a package-level sync/atomic
// function (AddInt64, LoadUint64, ...). Methods on the typed wrappers
// have a receiver and are not matched.
func isAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fieldOf returns the struct field a selector resolves to, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s := info.Selections[sel]; s != nil {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// fieldDesc renders a field as pkg.Type.name from the selector's
// receiver type. The package is always named — mixed-access findings
// routinely pair code from two packages, so "S.n" alone is ambiguous.
func fieldDesc(pkg *Package, info *types.Info, sel *ast.SelectorExpr, fv *types.Var) string {
	if t := info.TypeOf(sel.X); t != nil {
		s := types.TypeString(t, func(p *types.Package) string { return p.Name() })
		s = strings.TrimPrefix(s, "*")
		return s + "." + fv.Name()
	}
	return fv.Name()
}

// shortPos renders a position as base-filename:line.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// flagAtomicCopy reports e if evaluating it copies a sync/atomic typed
// wrapper by value. Composite literals are fresh zero values and pass.
func flagAtomicCopy(pass *ProgramPass, pkg *Package, e ast.Expr) {
	if _, ok := ast.Unparen(e).(*ast.CompositeLit); ok {
		return
	}
	t := pkg.Info.TypeOf(e)
	if t == nil || !isAtomicWrapper(t) {
		return
	}
	pass.Reportf(e.Pos(),
		"%s copied by value; sync/atomic wrapper types must be shared by pointer and used through their methods",
		types.TypeString(t, types.RelativeTo(pkg.Types)))
}

// isAtomicWrapper reports whether t is a named struct type declared in
// sync/atomic (Int64, Uint32, Bool, Pointer[T], Value, ...).
func isAtomicWrapper(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}
