package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// FaultPoint enforces the fault-injection naming contract documented in
// DESIGN.md ("Fault injection & graceful degradation"): every
// faults.Point handed to the registry — as a call argument (Err / Hit /
// Grant / Mangle) or as the Point field of a faults.Rule literal — must
// be a compile-time constant matching ucudnn_fp_* snake_case. Constant
// names keep the injection-point universe enumerable (schedules written
// for one build keep parsing on the next) and greppable from a failure's
// printed schedule straight to the probe site.
//
// The faults package itself is exempt: it plumbs Point values through
// variables by design.
var FaultPoint = &Analyzer{
	Name: "faultpoint",
	Doc:  "faults.Point values must be compile-time ucudnn_fp_* snake_case constants",
	Run:  runFaultPoint,
}

var faultPointRe = regexp.MustCompile(`^ucudnn_fp(_[a-z0-9]+)+$`)

func runFaultPoint(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "faults" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if isFaultPointType(pass, arg) {
						checkFaultPoint(pass, arg)
					}
				}
			case *ast.CompositeLit:
				checkRuleLiteral(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkRuleLiteral checks the Point field of a faults.Rule composite
// literal, in both keyed and positional form.
func checkRuleLiteral(pass *Pass, lit *ast.CompositeLit) {
	tv := pass.TypesInfo.Types[lit]
	if tv.Type == nil || !isFaultsNamed(tv.Type, "Rule") {
		return
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Point" {
				continue
			}
			checkFaultPoint(pass, kv.Value)
			continue
		}
		if i == 0 { // positional literal: Point is the first field
			checkFaultPoint(pass, el)
		}
	}
}

// checkFaultPoint requires expr to be a compile-time string constant
// matching the ucudnn_fp_* scheme.
func checkFaultPoint(pass *Pass, expr ast.Expr) {
	tv := pass.TypesInfo.Types[expr]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(expr.Pos(),
			"fault point must be a compile-time faults.Point constant so the injection-point universe is enumerable statically")
		return
	}
	if name := constant.StringVal(tv.Value); !faultPointRe.MatchString(name) {
		pass.Reportf(expr.Pos(),
			"fault point %q does not match the ucudnn_fp_* snake_case scheme", name)
	}
}

// isFaultPointType reports whether the expression's static type is the
// faults package's Point type.
func isFaultPointType(pass *Pass, expr ast.Expr) bool {
	tv := pass.TypesInfo.Types[expr]
	return tv.Type != nil && isFaultsNamed(tv.Type, "Point")
}

// isFaultsNamed reports whether t is a named type with the given name
// declared in a package named "faults".
func isFaultsNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "faults"
}
