package analysis

import (
	"go/ast"
	"go/types"
)

// Hotpath enforces the zero-allocation contract on functions annotated
// with //ucudnn:hotpath in their doc comment: the steady-state kernel
// paths behind the 0 allocs/op benchmarks (engine runners, GEMM /
// Winograd / FFT inner loops, the SGEMM micro-kernel). Inside an
// annotated function the analyzer flags every construct the compiler
// may lower to a heap allocation:
//
//   - make, new, append and slice/map composite literals;
//   - function literals (closure environments escape to the heap when
//     the closure does) and go statements;
//   - implicit or explicit conversions of non-constant values to
//     interface types (boxing), which is how fmt-style calls allocate.
//
// The check is local: callees are not inspected, so annotate the leaf
// compute functions rather than fork-join wrappers that legitimately
// spawn goroutines.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs inside //ucudnn:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasFuncDirective(fd, "hotpath") {
				continue
			}
			checkHotpathBody(pass, fd)
		}
	}
	return nil
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotpathCall(pass, name, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"hot path %s: function literal allocates its closure environment; move parallel dispatch outside //ucudnn:hotpath functions", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"hot path %s: go statement allocates a goroutine; fork-join belongs outside //ucudnn:hotpath functions", name)
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(n.Pos(), "hot path %s: slice literal allocates", name)
				case *types.Map:
					pass.Reportf(n.Pos(), "hot path %s: map literal allocates", name)
				}
			}
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, name string, call *ast.CallExpr) {
	// Conversions: T(x) with T an interface type boxes x.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) && boxes(pass, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"hot path %s: conversion to interface %s allocates (boxing)",
				name, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
		return
	}
	// Allocating builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "hot path %s: make allocates; carve scratch from the workspace arena instead", name)
			case "new":
				pass.Reportf(call.Pos(), "hot path %s: new allocates", name)
			case "append":
				pass.Reportf(call.Pos(), "hot path %s: append may grow its backing array; pre-size buffers outside the hot path", name)
			}
			return
		}
	}
	// Boxing through interface-typed parameters (fmt-style calls).
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
			if call.Ellipsis.IsValid() {
				pt = nil // passing a ready slice through ... does not box
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if boxes(pass, arg) {
			pass.Reportf(arg.Pos(),
				"hot path %s: argument boxes %s into interface %s (allocates)",
				name,
				types.TypeString(pass.TypesInfo.TypeOf(arg), types.RelativeTo(pass.Pkg)),
				types.TypeString(pt, types.RelativeTo(pass.Pkg)))
		}
	}
}

// boxes reports whether passing e to an interface slot heap-allocates:
// true for non-constant, non-nil values of non-interface type. Constants
// (including string literals, e.g. panic messages) are materialized in
// static data, not boxed at run time.
func boxes(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.IsNil() || tv.Value != nil {
		return false
	}
	if tv.Type == nil || types.IsInterface(tv.Type) {
		return false
	}
	return true
}
