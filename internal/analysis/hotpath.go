package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath enforces the zero-allocation contract on functions annotated
// with //ucudnn:hotpath in their doc comment: the steady-state kernel
// paths behind the 0 allocs/op benchmarks (engine runners, GEMM /
// Winograd / FFT inner loops, the SGEMM micro-kernel). Inside an
// annotated function the analyzer flags every construct the compiler
// may lower to a heap allocation:
//
//   - make, new, append and slice/map composite literals;
//   - function literals (closure environments escape to the heap when
//     the closure does) and go statements;
//   - implicit or explicit conversions of non-constant values to
//     interface types (boxing), which is how fmt-style calls allocate.
//
// The check is local: callees are not inspected here — the hotpathcall
// analyzer propagates the same contract through the module call graph,
// so annotate the leaf compute functions and let hotpathcall police
// what they reach.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs inside //ucudnn:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasFuncDirective(fd, "hotpath") {
				continue
			}
			name := fd.Name.Name
			for _, af := range allocSites(pass.TypesInfo, pass.Pkg, fd.Body) {
				pass.Reportf(af.pos, "hot path %s: %s", name, af.msg)
			}
		}
	}
	return nil
}

// An allocFinding is one construct the compiler may lower to a heap
// allocation, with the shared base message the hotpath and hotpathcall
// analyzers both wrap.
type allocFinding struct {
	pos token.Pos
	msg string
}

// allocSites returns every allocating construct lexically inside root
// (descending into nested function literals), in source order.
func allocSites(info *types.Info, pkg *types.Package, root ast.Node) []allocFinding {
	var out []allocFinding
	report := func(pos token.Pos, msg string) {
		out = append(out, allocFinding{pos: pos, msg: msg})
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			allocCall(info, pkg, n, report)
		case *ast.FuncLit:
			report(n.Pos(),
				"function literal allocates its closure environment; move parallel dispatch outside //ucudnn:hotpath functions")
		case *ast.GoStmt:
			report(n.Pos(),
				"go statement allocates a goroutine; fork-join belongs outside //ucudnn:hotpath functions")
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates")
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				}
			}
		}
		return true
	})
	return out
}

func allocCall(info *types.Info, pkg *types.Package, call *ast.CallExpr, report func(token.Pos, string)) {
	// Conversions: T(x) with T an interface type boxes x.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) && boxes(info, call.Args[0]) {
			report(call.Pos(),
				"conversion to interface "+types.TypeString(tv.Type, types.RelativeTo(pkg))+" allocates (boxing)")
		}
		return
	}
	// Allocating builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates; carve scratch from the workspace arena instead")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array; pre-size buffers outside the hot path")
			}
			return
		}
	}
	// Boxing through interface-typed parameters (fmt-style calls).
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
			if call.Ellipsis.IsValid() {
				pt = nil // passing a ready slice through ... does not box
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if boxes(info, arg) {
			report(arg.Pos(),
				"argument boxes "+types.TypeString(info.TypeOf(arg), types.RelativeTo(pkg))+
					" into interface "+types.TypeString(pt, types.RelativeTo(pkg))+" (allocates)")
		}
	}
}

// boxes reports whether passing e to an interface slot heap-allocates:
// true for non-constant, non-nil values of non-interface type. Constants
// (including string literals, e.g. panic messages) are materialized in
// static data, not boxed at run time.
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.IsNil() || tv.Value != nil {
		return false
	}
	if tv.Type == nil || types.IsInterface(tv.Type) {
		return false
	}
	return true
}
