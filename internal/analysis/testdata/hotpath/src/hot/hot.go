// Package hot is a hotpath fixture covering the zero-alloc contract.
package hot

type ifc interface{}

func sink(v interface{})                      {}
func logf(format string, args ...interface{}) {}
func worker()                                 {}

// scale is a compliant annotated leaf kernel: index arithmetic and a
// constant-string panic, nothing that allocates.
//
//ucudnn:hotpath
func scale(dst, src []float32, alpha float32) {
	if len(dst) < len(src) {
		panic("hot: dst too small")
	}
	for i := range src {
		dst[i] = alpha * src[i]
	}
}

// alloc violates every clause of the contract.
//
//ucudnn:hotpath
func alloc(dst, src []float32, x float32) {
	buf := make([]float32, 16) // want `make allocates`
	_ = buf
	dst = append(dst, 1) // want `append may grow`
	p := new(float32)    // want `new allocates`
	_ = p
	s := []int{1, 2} // want `slice literal allocates`
	_ = s
	m := map[int]int{0: 1} // want `map literal allocates`
	_ = m
	f := func() {} // want `function literal`
	f()
	go worker()     // want `go statement`
	_ = ifc(x)      // want `boxing`
	sink(x)         // want `boxes`
	logf("x=%v", x) // want `boxes`
}

// spread passes a ready []interface{} through ...: no per-call boxing.
//
//ucudnn:hotpath
func spread(args []interface{}) {
	logf("vals", args...)
}

// constants passed to interface slots live in static data, not the heap.
//
//ucudnn:hotpath
func consts() {
	sink(3)
	sink(nil)
	sink("gemm")
}

// free is not annotated: it may allocate.
func free() []float32 {
	return make([]float32, 4)
}

// warm documents an accepted allocation with a justified suppression.
//
//ucudnn:hotpath
func warm(n int) []float32 {
	//ucudnn:allow hotpath -- one-time warmup allocation, amortized and benchmarked
	return make([]float32, n)
}
