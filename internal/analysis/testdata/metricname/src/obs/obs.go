// Package obs is a miniature stand-in for ucudnn/internal/obs with the
// same registration surface, so metricname fixtures type-check without
// importing the real module.
package obs

type Label struct {
	Name  string
	Value string
}

func L(name, value string) Label { return Label{Name: name, Value: value} }

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

type Counter struct{}
type FloatCounter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name string, labels ...Label) *Counter { return &Counter{} }

func (r *Registry) FloatCounter(name string, labels ...Label) *FloatCounter { return &FloatCounter{} }

func (r *Registry) Gauge(name string, labels ...Label) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	return &Histogram{}
}
