// Package flight is a miniature stand-in for ucudnn/internal/flight
// with the same Name surface, so metricname fixtures type-check without
// importing the real module.
package flight

type Name string

type Kind uint8

type Formatter func(a, b, c, d int64) string

const (
	// EvProbe follows the scheme; fixtures use it for compliant calls.
	EvProbe Name = "ucudnn_ev_probe"
	// EvLegacy predates the naming scheme; the fixture uses it to show
	// that a bad constant is flagged at every use site.
	EvLegacy Name = "ev-legacy"
)

func Register(name Name, f Formatter) Kind { return 1 }

func Rec(k Kind, a, b, c, d int64) {}

func Lookup(name Name) (Kind, bool) { return 0, false }

// Plumbing Name values through variables is the registry's own
// business: the analyzer exempts the flight package itself.
func lookupAll(names []Name) int {
	found := 0
	for _, n := range names {
		if _, ok := Lookup(n); ok {
			found++
		}
	}
	return found
}
