// Package metrics is a metricname fixture exercising the naming scheme.
package metrics

import "obs"

var reg = obs.NewRegistry()

const convOps = "ucudnn_conv_ops_total"

func compliant() {
	reg.Counter("ucudnn_conv_runs_total", obs.L("algo", "gemm"))
	reg.Counter(convOps, obs.L("layer_kind", "conv"))
	reg.Gauge("ucudnn_workspace_bytes")
	reg.Histogram("ucudnn_kernel_seconds", []float64{0.001, 0.01, 0.1}, obs.L("algo", "fft"))
}

// compliantOOC covers the out-of-core streaming series: transfer byte
// counters, the per-stage degradation counter and working-set gauges.
func compliantOOC() {
	reg.Counter("ucudnn_ooc_fetch_bytes_total")
	reg.Counter("ucudnn_ooc_spill_bytes_total")
	reg.Counter("ucudnn_ooc_recompute_bytes_total")
	reg.Counter("ucudnn_ooc_degraded_total", obs.L("stage", "fetch"))
	reg.Gauge("ucudnn_ooc_micro_batches")
	reg.Gauge("ucudnn_ooc_peak_bytes")
}

// compliantCausal covers the causal-timeline series: second-valued
// stall counters (FloatCounter) and the critical-path gauge.
func compliantCausal() {
	reg.FloatCounter("ucudnn_stall_seconds_total", obs.L("cause", "fetch-starved"))
	reg.Gauge("ucudnn_critical_path_seconds")
}

func badNames(dyn string) {
	reg.Counter("ucudnn-conv-runs")                   // want `does not match` `must end in _total`
	reg.Counter("conv_runs_total")                    // want `does not match`
	reg.Counter("ucudnn_conv_runs")                   // want `must end in _total`
	reg.Gauge("ucudnn_queue_depth_total")             // want `must not end in _total`
	reg.Histogram("ucudnn_lat_total", nil)            // want `must not end in _total`
	reg.FloatCounter("ucudnn_stall_seconds")          // want `must end in _total`
	reg.FloatCounter("stall_seconds_total")           // want `does not match`
	reg.Counter(dyn)                                  // want `compile-time string constant`
	reg.Counter("ucudnn_d_total", obs.L(dyn, "x"))    // want `constant name`
	reg.Counter("ucudnn_c_total", obs.L("Algo", "x")) // want `must be snake_case`
}

func unstable() {
	reg.Gauge("ucudnn_depth", obs.L("queue", "a"))
	reg.Gauge("ucudnn_depth", obs.L("pool", "b"))                    // want `label sets must be stable`
	reg.Histogram("ucudnn_depth", []float64{1}, obs.L("queue", "a")) // want `one kind`
}

// accepted documents a justified exception to the scheme.
func accepted() {
	//ucudnn:allow metricname -- legacy dashboard series, renaming tracked separately
	reg.Gauge("legacy_queue_depth")
}
