// Package events is a metricname fixture exercising the flight event
// naming contract.
package events

import "flight"

const evLocal flight.Name = "ucudnn_ev_local_probe"

var (
	kProbe = flight.Register(flight.EvProbe, nil)
	kLocal = flight.Register(evLocal, nil)
)

func compliant() {
	flight.Rec(kProbe, 1, 2, 3, 4)
	_, _ = flight.Lookup(flight.EvProbe)
	_, _ = flight.Lookup("ucudnn_ev_inline")
}

func dynamicNames(n flight.Name, s string) {
	_ = flight.Register(n, nil)              // want `compile-time flight.Name constant`
	_, _ = flight.Lookup(flight.Name(s))     // want `compile-time flight.Name constant`
	_ = flight.Register(flight.Name(s), nil) // want `compile-time flight.Name constant`
}

func badNames() {
	_ = flight.Register("kernel_launch", nil)   // want `does not match the ucudnn_ev_\* snake_case scheme`
	_, _ = flight.Lookup("ucudnn_fp_x")         // want `does not match the ucudnn_ev_\* snake_case scheme`
	_ = flight.Register("ucudnn_ev_Upper", nil) // want `does not match the ucudnn_ev_\* snake_case scheme`
	_, _ = flight.Lookup(flight.EvLegacy)       // want `does not match the ucudnn_ev_\* snake_case scheme`
}

// accepted documents a justified exception to the scheme.
func accepted(n flight.Name) {
	//ucudnn:allow metricname -- test harness enumerates names dynamically
	_, _ = flight.Lookup(n)
}
