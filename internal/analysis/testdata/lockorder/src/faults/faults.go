// Package faults is a miniature stand-in for ucudnn/internal/faults
// with the Registry surface lockorder matches on, so the fixture does
// not import the real module.
package faults

type Point string

type Registry struct{}

func (r *Registry) Err(p Point) error               { return nil }
func (r *Registry) Hit(p Point) bool                { return false }
func (r *Registry) Grant(p Point, b int64) int64    { return b }
func (r *Registry) Mangle(p Point, d []byte) []byte { return d }
