// Package locks is a lockorder fixture: lock-order cycles, and
// blocking or fault-point calls made while a mutex is held.
package locks

import (
	"faults"
	"sync"
	"time"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

// ab and ba acquire A and B in opposite orders: both edges of the
// cycle are flagged at their acquisition sites.
func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `acquiring locks.B.mu while holding locks.A.mu creates a lock-order cycle`
	defer b.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `acquiring locks.A.mu while holding locks.B.mu creates a lock-order cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}

// acFirst and acAgain take A before C consistently: a partial order,
// no finding.
func acFirst(a *A, c *C) {
	a.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	a.mu.Unlock()
}

func acAgain(a *A, c *C) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
}

// sleepy blocks inside the critical section; after the unlock the same
// call is fine.
func sleepy(a *A) {
	a.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking call time.Sleep while holding locks.A.mu`
	a.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// viaHelper reaches the blocking call through a callee.
func helperSleeps() {
	time.Sleep(time.Millisecond)
}

func viaHelper(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	helperSleeps() // want `call to locks.helperSleeps may reach blocking call time.Sleep while holding locks.A.mu`
}

// faulty evaluates a fault-injection point under the lock.
func faulty(a *A, reg *faults.Registry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if reg.Hit(faults.Point("ucudnn_fp_lock_fixture")) { // want `fault point faults.Registry.Hit while holding locks.A.mu`
		return
	}
}

// D/E cycle closes through a callee summary: de never holds both
// locks itself.
type D struct{ mu sync.Mutex }

type E struct{ mu sync.Mutex }

func lockE(e *E) {
	e.mu.Lock()
	e.mu.Unlock()
}

func de(d *D, e *E) {
	d.mu.Lock()
	lockE(e) // want `acquiring locks.E.mu while holding locks.D.mu creates a lock-order cycle`
	d.mu.Unlock()
}

func ed(d *D, e *E) {
	e.mu.Lock()
	d.mu.Lock() // want `acquiring locks.D.mu while holding locks.E.mu creates a lock-order cycle`
	d.mu.Unlock()
	e.mu.Unlock()
}

// allowed carries a justified suppression.
func allowed(a *A) {
	a.mu.Lock()
	//ucudnn:allow lockorder -- single-threaded setup path; lock taken only for the race detector's benefit
	time.Sleep(time.Millisecond)
	a.mu.Unlock()
}

// branchy releases on one path only: the join is may-hold, so the
// sleep after the if is still flagged.
func branchy(a *A, cond bool) {
	a.mu.Lock()
	if cond {
		a.mu.Unlock()
		return
	}
	time.Sleep(time.Millisecond) // want `blocking call time.Sleep while holding locks.A.mu`
	a.mu.Unlock()
}
