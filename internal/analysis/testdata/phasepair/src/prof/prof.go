// Package prof is a miniature stand-in for ucudnn/internal/prof with
// the open/close hook surface phasepair matches on, so the fixture does
// not import the real module.
package prof

type Kind int

func Enter() int64                             { return 1 }
func Exit(k Kind, start int64)                 {}
func Next(k Kind, start int64) int64           { return 1 }
func Begin(kernel string) int64                { return 1 }
func End(start int64)                          {}
func LaunchStart() int64                       { return 1 }
func LaunchEnd(workers int, start int64)       {}
func LaunchEndNested(workers int, start int64) {}
func WorkerStart() int64                       { return 1 }
func WorkerEnd(w int, start int64)             {}
