// Package pairs is a phasepair fixture: every opened prof window must
// close on every path.
package pairs

import "prof"

const k prof.Kind = 1

// balanced closes on the straight path: clean.
func balanced() {
	t := prof.Enter()
	work()
	prof.Exit(k, t)
}

// deferred closes via defer: covers every exit including panics.
func deferred() {
	t := prof.Begin("gemm")
	defer prof.End(t)
	if cond() {
		return
	}
	work()
}

// deferredClosure closes inside a deferred closure: also covered.
func deferredClosure() {
	t := prof.Enter()
	defer func() {
		prof.Exit(k, t)
	}()
	work()
}

// oocCharge mirrors the out-of-core executor's transfer charge: early
// return before Enter is fine, the opened window closes on the one path.
func oocCharge(bytes int64) {
	if bytes <= 0 {
		return
	}
	t := prof.Enter()
	work()
	prof.Exit(k, t)
}

// earlyReturn leaks on the error path.
func earlyReturn() error {
	t := prof.Enter() // want `prof.Enter token is open on a path to return; close it with prof.Exit/prof.Next on every path`
	if cond() {
		return errFixture
	}
	prof.Exit(k, t)
	return nil
}

// oneArm closes in only one branch.
func oneArm() {
	t := prof.Begin("fft") // want `prof.Begin token is open on a path to return; close it with prof.End on every path`
	if cond() {
		prof.End(t)
	}
}

// nextChain reopens with Next; the final token still needs a close.
func nextChain() {
	t := prof.Enter()
	work()
	t = prof.Next(k, t)
	work()
	prof.Exit(k, t)
}

// nextLeaks reopens but never closes the second window.
func nextLeaks() {
	t := prof.Enter()
	work()
	t = prof.Next(k, t) // want `prof.Enter token is open on a path to return`
	work()
	_ = t
}

// panicPath ends in panic: defers are the panic-safe close, so the
// inline-close requirement does not apply to that path.
func panicPath() {
	t := prof.Enter()
	if cond() {
		panic("fixture")
	}
	prof.Exit(k, t)
}

// mismatched closes an Enter token with End.
func mismatched() {
	t := prof.Enter()
	prof.End(t) // want `prof.End closes a token opened by prof.Enter; pair Enter with prof.Exit/prof.Next`
	prof.Exit(k, t)
}

// discarded never captures the token.
func discarded() {
	prof.Enter()           // want `prof.Enter token is discarded; it must be closed with prof.Exit/prof.Next`
	_ = prof.Begin("wino") // want `prof.Begin token is discarded; it must be closed with prof.End`
	work()
}

// launchWorker pairs the launch hooks, workers inside a closure scope.
func launchWorker() {
	l := prof.LaunchStart()
	run(func() {
		w := prof.WorkerStart()
		work()
		prof.WorkerEnd(0, w)
	})
	prof.LaunchEnd(4, l)
}

// workerLeaks opens a worker window inside the closure and loses it on
// the early return.
func workerLeaks() {
	l := prof.LaunchStart()
	run(func() {
		w := prof.WorkerStart() // want `prof.WorkerStart token is open on a path to return`
		if cond() {
			return
		}
		prof.WorkerEnd(0, w)
	})
	prof.LaunchEndNested(4, l)
}

// escaping tokens are conservatively untracked, not flagged.
type holder struct{ tok int64 }

func escapes(h *holder) {
	t := prof.Enter()
	h.tok = t
}

func escapesCall() {
	t := prof.Begin("conv")
	stash(t)
}

// allowed suppresses a real leak with a justification.
func allowed() {
	//ucudnn:allow phasepair -- window is closed by the caller via package state in this legacy path
	t := prof.Enter()
	work()
	_ = t
}

func work()         {}
func cond() bool    { return false }
func run(f func())  { f() }
func stash(t int64) {}

var errFixture = errOf("fixture")

type errOf string

func (e errOf) Error() string { return string(e) }
