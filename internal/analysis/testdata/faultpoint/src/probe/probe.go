// Package probe is a faultpoint fixture exercising the naming contract.
package probe

import "faults"

const pointLocal faults.Point = "ucudnn_fp_probe_local"

func compliant() {
	_ = faults.Err(faults.PointConvolve)
	_ = faults.Hit(pointLocal)
	_ = faults.Grant(faults.PointArenaGrow, 1<<20)
	_ = faults.New(faults.Rule{Point: faults.PointConvolve, Trigger: faults.Nth(1)})
	_ = faults.Rule{faults.PointArenaGrow, faults.Nth(2), 4}
}

// compliantOOC covers the out-of-core streaming points: a plan probe, a
// shrinkable fetch grant and a failable spill.
func compliantOOC() {
	_ = faults.Hit(faults.PointOOCPlan)
	_ = faults.Grant(faults.PointOOCFetch, 1<<16)
	_ = faults.Err(faults.PointOOCSpill)
	_ = faults.Rule{Point: faults.PointOOCFetch, Trigger: faults.Nth(4), Shrink: 2}
}

func dynamicPoints(p faults.Point, s string) {
	_ = faults.Err(p)                    // want `compile-time faults.Point constant`
	_ = faults.Hit(faults.Point(s))      // want `compile-time faults.Point constant`
	_ = faults.Grant(p, 64)              // want `compile-time faults.Point constant`
	_ = faults.Rule{Point: p}            // want `compile-time faults.Point constant`
	_ = faults.Rule{p, faults.Nth(1), 0} // want `compile-time faults.Point constant`
}

func badNames() {
	_ = faults.Err("convolve")                // want `does not match the ucudnn_fp_\* snake_case scheme`
	_ = faults.Hit("ucudnn_convolve")         // want `does not match the ucudnn_fp_\* snake_case scheme`
	_ = faults.Err(faults.PointLegacy)        // want `does not match the ucudnn_fp_\* snake_case scheme`
	_ = faults.Rule{Point: "ucudnn_fp_Upper"} // want `does not match the ucudnn_fp_\* snake_case scheme`
}

// accepted documents a justified exception.
func accepted(p faults.Point) {
	//ucudnn:allow faultpoint -- replaying a point parsed from an operator-supplied schedule
	_ = faults.Hit(p)
}
