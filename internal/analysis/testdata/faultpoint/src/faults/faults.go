// Package faults is a miniature stand-in for ucudnn/internal/faults with
// the same Point surface, so faultpoint fixtures type-check without
// importing the real module.
package faults

type Point string

const (
	PointConvolve  Point = "ucudnn_fp_convolve"
	PointArenaGrow Point = "ucudnn_fp_arena_grow"
	PointOOCFetch  Point = "ucudnn_fp_ooc_fetch"
	PointOOCSpill  Point = "ucudnn_fp_ooc_spill"
	PointOOCPlan   Point = "ucudnn_fp_ooc_plan"
	// PointLegacy predates the naming scheme; the fixture uses it to show
	// that a bad constant is flagged at every use site.
	PointLegacy Point = "fp-legacy"
)

type Trigger struct{ N int64 }

func Nth(n int64) Trigger { return Trigger{N: n} }

type Rule struct {
	Point   Point
	Trigger Trigger
	Shrink  int64
}

type Registry struct{}

func New(rules ...Rule) *Registry { return &Registry{} }

func Err(p Point) error { return nil }

func Hit(p Point) bool { return false }

func Grant(p Point, bytes int64) int64 { return bytes }

// Plumbing Point values through variables is the registry's own business:
// the analyzer exempts the faults package itself.
func (r *Registry) match(p Point) bool {
	q := p
	return Hit(q)
}
