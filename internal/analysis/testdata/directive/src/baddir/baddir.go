// Package baddir holds malformed suppression directives: each is itself
// a diagnostic because the justification is mandatory.
package baddir

func noJustification() {
	//ucudnn:allow detlint
	_ = 0
}

func emptyJustification() int {
	//ucudnn:allow hotpath --
	return 1
}
