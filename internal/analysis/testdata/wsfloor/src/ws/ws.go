// Package ws is a wsfloor fixture covering the workspace contract.
package ws

import "errors"

var errTooSmall = errors.New("ws: workspace below floor")

// MinWorkspace is the package workspace floor.
func MinWorkspace() int { return 64 }

// Run validates against the floor before dispatching: compliant.
func Run(ws []byte) error {
	if len(ws) < MinWorkspace() {
		return errTooSmall
	}
	ws[0] = 1
	return nil
}

// ConvolveForward delegates ws to Run, which owns the check: compliant.
func ConvolveForward(ws []byte) error {
	return Run(ws)
}

// ConvolveRaw dispatches without consulting the floor.
func ConvolveRaw(ws []byte) { // want `neither checks the MinWorkspace floor`
	ws[0] = 1
}

type nullEngine struct{}

// Run without a workspace parameter is out of contract scope.
func (nullEngine) Run() error { return nil }

type engine struct {
	n      int
	cached int
}

// Workspace is pure: compliant.
func (e *engine) Workspace() int { return e.n * 8 }

// fftWorkspace memoizes through the receiver: a query becomes a write.
func (e *engine) fftWorkspace() int {
	e.cached = e.n * 8 // want `writes through e`
	return e.cached
}

var workspaceCalls int

// gemmWorkspace counts invocations in package state.
func gemmWorkspace(n int) int {
	workspaceCalls++ // want `writes package-level variable workspaceCalls`
	return n * 8
}

// workspaceSize launches background work from a size query.
func workspaceSize(n int) int {
	done := make(chan struct{})
	go close(done) // want `launches a goroutine`
	<-done
	return n
}

// winogradWorkspace mutates only locals: compliant.
func winogradWorkspace(tiles []int) int {
	total := 0
	for _, t := range tiles {
		total += t
	}
	return total
}
