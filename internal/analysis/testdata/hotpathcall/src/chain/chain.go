// Package chain is a hotpathcall fixture: the //ucudnn:hotpath
// zero-alloc contract propagates through the call graph, so helpers an
// annotated kernel reaches are held to the same rules, with the call
// chain in the diagnostic.
package chain

import "fmt"

// kernel is an annotated root whose own body is clean; the violations
// live in what it reaches.
//
//ucudnn:hotpath
func kernel(dst []float32) {
	helper(dst)
	clean(dst)
	annotatedHelper(dst)
}

// helper is reachable from kernel: its allocation and its dynamic call
// are both flagged with the chain.
func helper(dst []float32) {
	deep(dst)
	f := pick()
	f(dst) // want `via chain.kernel → chain.helper: call through a function value`
}

// deep is two hops down the chain.
func deep(dst []float32) {
	buf := make([]float32, 4) // want `via chain.kernel → chain.helper → chain.deep: make allocates`
	copy(dst, buf)
	go spin() // want `via chain.kernel → chain.helper → chain.deep: go statement allocates`
	format()
}

// format calls into a standard-library package outside the trusted set.
func format() {
	_ = fmt.Sprintf("x") // want `via chain.kernel → chain.helper → chain.deep → chain.format: call into fmt.Sprintf`
}

// clean stays within the contract: index math only.
func clean(dst []float32) {
	for i := range dst {
		dst[i] *= 2
	}
}

// annotatedHelper is itself annotated, so traversal from kernel stops
// here and restarts with annotatedHelper as the root; its callee's
// chain names annotatedHelper, not kernel.
//
//ucudnn:hotpath
func annotatedHelper(dst []float32) {
	fromAnnotated(dst)
}

func fromAnnotated(dst []float32) {
	p := new(float32) // want `via chain.annotatedHelper → chain.fromAnnotated: new allocates`
	_ = p
	excused(dst)
}

// excused carries a justified suppression: no diagnostic survives.
func excused(dst []float32) {
	//ucudnn:allow hotpathcall -- scratch is reused across calls; measured 0 allocs/op in steady state
	buf := make([]float32, 2)
	copy(dst, buf)
	s := []int{1} //ucudnn:allow hotpathcall -- trailing-comment form of the same excuse
	_ = s
}

// sink dispatches through an interface; the contract follows every
// module implementation.
type sink interface {
	consume(d []float32)
}

type impl struct{}

func (impl) consume(d []float32) {
	_ = append(d, 1) // want `via chain.kernelIface → chain.impl.consume: append may grow`
}

//ucudnn:hotpath
func kernelIface(s sink, dst []float32) {
	s.consume(dst)
}

// viaClosure passes a closure into a fork-join helper: the closure's
// callees are reachable, and the helper's dynamic invocation is
// unverifiable.
func viaClosure(dst []float32) {
	launch(func() { // want `via chain.kernelLits → chain.viaClosure: function literal allocates`
		grow(dst)
	})
}

//ucudnn:hotpath
func kernelLits(dst []float32) {
	viaClosure(dst)
}

func launch(f func()) {
	f() // want `via chain.kernelLits → chain.viaClosure → chain.launch: call through a function value`
}

func grow(dst []float32) {
	_ = make([]int, 1) // want `via chain.kernelLits → chain.viaClosure → chain.grow: make allocates`
}

// unreachable is never called from an annotated root: it may allocate
// freely.
func unreachable() []int {
	return make([]int, 8)
}

func pick() func([]float32) { return clean }

func spin() {}
