// Package prof is a miniature stand-in for ucudnn/internal/prof with
// the same Phase surface, so phasename fixtures type-check without
// importing the real module.
package prof

type Phase string

type Kind uint8

const (
	PhaseGemmSgemm Phase = "ucudnn_ph_gemm_sgemm"
	// PhaseLegacy predates the naming scheme; the fixture uses it to show
	// that a bad constant is flagged at every use site.
	PhaseLegacy Phase = "ph-legacy"
)

// Plumbing Phase values through variables is the registry's own
// business: the analyzer exempts the prof package itself.
func Register(p Phase) Kind {
	q := p
	return lookup(q)
}

func lookup(p Phase) Kind { return 1 }

func Describe(p Phase) string { return string(p) }
