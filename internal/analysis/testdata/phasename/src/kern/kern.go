// Package kern is a phasename fixture exercising the naming contract.
package kern

import "prof"

const phaseLocal prof.Phase = "ucudnn_ph_kern_local"

var (
	phGemm  = prof.Register(prof.PhaseGemmSgemm)
	phLocal = prof.Register(phaseLocal)
)

func compliant() {
	_ = prof.Register("ucudnn_ph_kern_inline")
	_ = prof.Describe(prof.PhaseGemmSgemm)
}

// The out-of-core transfer phases follow the same scheme.
const phaseOOCFetch prof.Phase = "ucudnn_ph_ooc_fetch"

var phOOC = prof.Register(phaseOOCFetch)

func compliantOOC() {
	_ = prof.Register("ucudnn_ph_ooc_spill")
	_ = prof.Register("ucudnn_ph_ooc_recompute")
}

func dynamicPhases(p prof.Phase, s string) {
	_ = prof.Register(p)             // want `compile-time prof.Phase constant`
	_ = prof.Register(prof.Phase(s)) // want `compile-time prof.Phase constant`
	_ = prof.Describe(p)             // want `compile-time prof.Phase constant`
}

func badNames() {
	_ = prof.Register("gemm_sgemm")           // want `does not match the ucudnn_ph_\* snake_case scheme`
	_ = prof.Register("ucudnn_gemm")          // want `does not match the ucudnn_ph_\* snake_case scheme`
	_ = prof.Describe(prof.PhaseLegacy)       // want `does not match the ucudnn_ph_\* snake_case scheme`
	_ = prof.Register("ucudnn_ph_UpperCamel") // want `does not match the ucudnn_ph_\* snake_case scheme`
}

// accepted documents a justified exception.
func accepted(p prof.Phase) {
	//ucudnn:allow phasename -- replaying a phase parsed from an operator-supplied report
	_ = prof.Describe(p)
}
