// Package other is outside the detlint scope (its path leaf is not one
// of conv/core/ilp/lp): nothing here is flagged.
package other

import "time"

func sumScores(scores map[int]float64) float64 {
	var total float64
	for _, v := range scores {
		total += v
	}
	return total
}

func stamp() time.Time { return time.Now() }
