// Package core is a detlint fixture: its path leaf "core" opts it into
// the determinism scope.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// sumScores accumulates floats in map order: the classic
// nondeterminism bug (see internal/ilp history).
func sumScores(scores map[int]float64) float64 {
	var total float64
	for _, v := range scores { // want `range over map`
		total += v
	}
	return total
}

// sortedKeys is the canonical collect-then-sort pattern: the loop body
// only appends, so iteration order cannot leak into the result.
func sortedKeys(scores map[int]float64) []int {
	var keys []int
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// indexLoop iterates a slice, which is ordered: allowed.
func indexLoop(costs []float64) float64 {
	var total float64
	for _, c := range costs {
		total += c
	}
	return total
}

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now`
}

func jitter() float64 {
	return rand.Float64() // want `math/rand`
}

// membership demonstrates a justified suppression: only the count
// matters, so iteration order cannot influence the result.
func membership(scores map[int]float64) int {
	n := 0
	//ucudnn:allow detlint -- membership count only; iteration order cannot reach the result
	for range scores {
		n++
	}
	return n
}
