// Package counters is an atomiclint fixture: fields touched by
// sync/atomic must be accessed atomically everywhere, and the typed
// wrappers must never be copied.
package counters

import "sync/atomic"

// S mixes an atomically-used field (n), a purely-atomic one (m), and a
// plain one; only n's non-atomic accesses are findings.
type S struct {
	n     int64
	m     uint64
	plain int
}

func good(s *S) {
	atomic.AddInt64(&s.n, 1)
	_ = atomic.LoadInt64(&s.n)
	atomic.StoreUint64(&s.m, 7)
	s.plain++
}

func bad(s *S) {
	s.n++    // want `field counters.S.n is accessed with sync/atomic \(e.g. at counters.go:17\) and must be accessed atomically everywhere`
	v := s.n // want `field counters.S.n is accessed with sync/atomic`
	_ = v
	s.n = 0   // want `field counters.S.n is accessed with sync/atomic`
	p := &s.n // want `field counters.S.n is accessed with sync/atomic`
	_ = p
	_ = atomic.LoadUint64(&s.m)
	s.plain = 3
}

func allowed(s *S) {
	//ucudnn:allow atomiclint -- reset runs before any worker goroutine is spawned
	s.n = 0
}

// construction is exempt: composite-literal keys initialize a value
// nobody shares yet.
func construct() *S {
	return &S{n: 1, plain: 2}
}

// T holds a typed wrapper; methods are fine, copies are not.
type T struct {
	c atomic.Int64
}

func typed(t *T) {
	t.c.Add(1)
	_ = t.c.Load()
	cp := t.c // want `atomic.Int64 copied by value`
	_ = cp
	sink(t.c) // want `atomic.Int64 copied by value`
}

func ret(t *T) atomic.Int64 {
	return t.c // want `atomic.Int64 copied by value`
}

func sink(v atomic.Int64) { _ = v }
