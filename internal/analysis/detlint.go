package analysis

import (
	"go/ast"
	"go/types"
)

// Detlint enforces the determinism contract of the optimizer and kernel
// packages (internal/conv, internal/core, internal/ilp, internal/lp):
// the WR/WD optimizers and the kernels they schedule must produce
// bit-identical results run to run, so code in those packages must not
// let map iteration order, the wall clock, or a random source influence
// what it computes or emits.
var Detlint = &Analyzer{
	Name: "detlint",
	Doc: "flag nondeterminism sources (map iteration, time.Now, math/rand) " +
		"in the optimizer and kernel packages",
	Run: runDetlint,
}

// detlintScope is the set of package-path leaf elements detlint applies
// to — the packages feeding the optimizers and kernels.
var detlintScope = map[string]bool{
	"conv": true,
	"core": true,
	"ilp":  true,
	"lp":   true,
}

func runDetlint(pass *Pass) error {
	if !detlintScope[pkgPathElem(pass.ImportPath)] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.CallExpr:
				checkClockAndRand(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags ranging over a map unless the loop only collects
// keys/values into a slice (the canonical collect-then-sort pattern —
// order-insensitive because the slice is sorted, or because membership
// alone matters).
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isCollectOnlyBody(pass, rs.Body) {
		return
	}
	pass.Reportf(rs.Pos(),
		"range over map %s: iteration order is nondeterministic and may reach float accumulation or emitted output; iterate indices or sorted keys instead (determinism contract)",
		types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

// isCollectOnlyBody reports whether every statement in the loop body is
// an append into a slice: `s = append(s, ...)`.
func isCollectOnlyBody(pass *Pass, body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") {
			return false
		}
	}
	return true
}

// checkClockAndRand flags time.Now and any math/rand use: wall-clock
// readings and random draws in optimizer code paths make the DP/ILP
// decisions (and with them the chosen micro-batch configurations)
// irreproducible.
func checkClockAndRand(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now in optimizer code: DP/ILP decisions must not depend on the wall clock (determinism contract)")
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(),
			"math/rand.%s in optimizer code: decisions must not depend on a random source (determinism contract)", obj.Name())
	}
}

// isBuiltin reports whether fun denotes the named Go builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
