package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ucudnn/internal/analysis/cfg"
)

// PhasePair checks that every prof window opened is closed on every
// path: Enter's token must reach Exit or Next, Begin's must reach End,
// LaunchStart's must reach LaunchEnd or LaunchEndNested, WorkerStart's
// must reach WorkerEnd. A window left open skews every later
// attribution in the profile — the cost model silently shifts one
// phase's time into another, which is worse than no profile at all.
//
// The check is flow-sensitive over the control-flow graph: an early
// return between open and close is a leak on that path even if the
// fall-through path closes; closing in one arm of an if but not the
// other leaks. A close in a defer (direct or in a deferred closure)
// covers every exit, including panics, and is the recommended shape.
// Paths that end in panic are otherwise exempt — defers are the only
// panic-safe close, so requiring an inline close there would be
// unsatisfiable.
//
// Tokens the analyzer cannot follow — stored in a struct, passed to
// another function, returned, captured by a non-deferred closure — are
// conservatively untracked rather than flagged. Mismatched pairs
// (Exit closing a Begin token) and discarded tokens (result of Enter
// unused) are flagged where they happen.
//
// The prof package itself is exempt: it manufactures the tokens.
var PhasePair = &Analyzer{
	Name: "phasepair",
	Doc:  "every prof.Enter/Begin/LaunchStart/WorkerStart must be paired with its close on all paths",
	Run:  runPhasePair,
}

// profOpens maps opener name to the closer names that pair with it.
var profOpens = map[string][]string{
	"Enter":       {"Exit", "Next"},
	"Begin":       {"End"},
	"LaunchStart": {"LaunchEnd", "LaunchEndNested"},
	"WorkerStart": {"WorkerEnd"},
}

// profCloses maps closer name to (token argument index, opener it
// pairs with, whether it reopens).
var profCloses = map[string]struct {
	tokIdx  int
	opener  string
	reopens bool
}{
	"Exit":            {1, "Enter", false},
	"Next":            {1, "Enter", true},
	"End":             {0, "Begin", false},
	"LaunchEnd":       {1, "LaunchStart", false},
	"LaunchEndNested": {1, "LaunchStart", false},
	"WorkerEnd":       {1, "WorkerStart", false},
}

func runPhasePair(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "prof" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, scope := range scopesIn(fd.Body) {
				analyzePairs(pass, scope)
			}
		}
	}
	return nil
}

// scopesIn returns body plus the bodies of all function literals inside
// it; each is analyzed as an independent token scope.
func scopesIn(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// openInfo tracks one live token: where it was opened and by what.
type openInfo struct {
	pos    token.Pos
	opener string
}

func analyzePairs(pass *Pass, body *ast.BlockStmt) {
	parents := parentMap(body)
	deferredLits := deferredClosures(body)
	escaped := escapedTokens(pass, body, parents, deferredLits)
	closedByDefer := deferClosedVars(pass, body)

	g := cfg.New(body, pass.TypesInfo)
	in := map[*cfg.Block]map[*types.Var]openInfo{}
	for _, b := range g.Blocks {
		in[b] = map[*types.Var]openInfo{}
	}

	reported := map[token.Pos]bool{}
	transfer := func(b *cfg.Block, state map[*types.Var]openInfo, final bool) map[*types.Var]openInfo {
		out := map[*types.Var]openInfo{}
		for v, inf := range state {
			out[v] = inf
		}
		for _, node := range b.Nodes {
			if _, ok := node.(*ast.DeferStmt); ok {
				continue
			}
			ast.Inspect(node, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.GoStmt, *ast.DeferStmt:
					return false
				case *ast.CallExpr:
					pairStep(pass, x, parents, out, final, reported)
				}
				return true
			})
		}
		return out
	}

	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(b, in[b], false)
		for _, s := range b.Succs {
			if joinOpen(in[s], out) {
				work = append(work, s)
			}
		}
	}
	for _, b := range g.Blocks {
		transfer(b, in[b], true)
	}

	// Anything still open at the synthetic exit leaks on some path,
	// unless a defer closes it or it escaped our tracking.
	type leak struct {
		pos    token.Pos
		opener string
	}
	var leaks []leak
	for v, inf := range in[g.Exit] {
		if escaped[v] || closedByDefer[v] {
			continue
		}
		leaks = append(leaks, leak{pos: inf.pos, opener: inf.opener})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		pass.Reportf(l.pos,
			"prof.%s token is open on a path to return; close it with prof.%s on every path (a deferred close covers panics too)",
			l.opener, closersList(l.opener))
	}
}

// pairStep interprets one call against the open-token state.
func pairStep(pass *Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node, open map[*types.Var]openInfo, final bool, reported map[token.Pos]bool) {
	name := profCallName(pass.TypesInfo, call)
	if name == "" {
		return
	}

	if cl, isClose := profCloses[name]; isClose {
		if cl.tokIdx < len(call.Args) {
			if v := localVar(pass.TypesInfo, call.Args[cl.tokIdx]); v != nil {
				if inf, ok := open[v]; ok {
					if inf.opener != cl.opener && final && !reported[call.Pos()] {
						reported[call.Pos()] = true
						pass.Reportf(call.Pos(),
							"prof.%s closes a token opened by prof.%s; pair %s with prof.%s",
							name, inf.opener, inf.opener, closersList(inf.opener))
					}
					delete(open, v)
				}
			}
		}
		if cl.reopens {
			if v := assignTarget(parents, call); v != nil {
				open[varOf(pass.TypesInfo, v)] = openInfo{pos: call.Pos(), opener: cl.opener}
			}
		}
		return
	}

	if _, isOpen := profOpens[name]; !isOpen {
		return
	}
	if tgt := assignTarget(parents, call); tgt != nil {
		if tgt.Name == "_" {
			if final && !reported[call.Pos()] {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"prof.%s token is discarded; it must be closed with prof.%s", name, closersList(name))
			}
			return
		}
		if v := varOf(pass.TypesInfo, tgt); v != nil {
			if old, ok := open[v]; ok {
				// Keep the earliest open site for deterministic reports
				// when a var is opened on two joined paths.
				if old.pos <= call.Pos() {
					return
				}
			}
			open[v] = openInfo{pos: call.Pos(), opener: name}
		}
		return
	}
	// Result not captured at all: the window can never close.
	if final && !reported[call.Pos()] {
		reported[call.Pos()] = true
		pass.Reportf(call.Pos(),
			"prof.%s token is discarded; it must be closed with prof.%s", name, closersList(name))
	}
}

// joinOpen unions src into dst (may-open join), keeping the earliest
// open site per var; reports whether dst changed.
func joinOpen(dst, src map[*types.Var]openInfo) bool {
	changed := false
	for v, inf := range src {
		old, ok := dst[v]
		if !ok || inf.pos < old.pos {
			dst[v] = inf
			changed = true
		}
	}
	return changed
}

// profCallName returns the prof function name the call targets, or "".
// The prof package is matched by final import-path element so fixtures
// can use a stand-in.
func profCallName(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || pkgPathElem(fn.Pkg().Path()) != "prof" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return ""
	}
	return fn.Name()
}

// localVar resolves e to a local variable object, or nil.
func localVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	if v == nil || v.IsField() {
		return nil
	}
	return v
}

func varOf(info *types.Info, id *ast.Ident) *types.Var {
	v, _ := info.ObjectOf(id).(*types.Var)
	return v
}

// assignTarget returns the identifier call's result is assigned to, if
// its direct parent is a 1:1 assignment; nil otherwise.
func assignTarget(parents map[ast.Node]ast.Node, call *ast.CallExpr) *ast.Ident {
	par := parents[call]
	for {
		pe, ok := par.(*ast.ParenExpr)
		if !ok {
			break
		}
		par = parents[pe]
	}
	switch par := par.(type) {
	case *ast.AssignStmt:
		if len(par.Rhs) != len(par.Lhs) {
			return nil
		}
		for i, rhs := range par.Rhs {
			if ast.Unparen(rhs) == call {
				id, _ := par.Lhs[i].(*ast.Ident)
				return id
			}
		}
	case *ast.ValueSpec:
		for i, v := range par.Values {
			if ast.Unparen(v) == call && i < len(par.Names) {
				return par.Names[i]
			}
		}
	}
	return nil
}

// closersList renders the closers that pair with an opener ("Exit/Next").
func closersList(opener string) string {
	cs := profOpens[opener]
	out := ""
	for i, c := range cs {
		if i > 0 {
			out += "/prof."
		}
		out += c
	}
	return out
}

// parentMap records each node's parent within body.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// deferredClosures returns the function literals invoked directly by a
// defer statement; token closes inside them cover every exit.
func deferredClosures(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

// escapedTokens finds local variables whose value flows somewhere the
// analyzer cannot follow; they are never reported. A use is benign if
// it is the token argument of a close call, the target of an
// open-call assignment, or a comparison.
func escapedTokens(pass *Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, deferredLits map[*ast.FuncLit]bool) map[*types.Var]bool {
	escaped := map[*types.Var]bool{}
	// Only bodies of THIS scope: nested literals are their own scopes,
	// but a use of an outer var inside a non-deferred literal is a
	// capture and escapes the outer scope's tracking.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := localVar(pass.TypesInfo, id)
		if v == nil {
			return true
		}
		if lit := enclosingLit(parents, id, body); lit != nil && !deferredLits[lit] {
			escaped[v] = true
			return true
		}
		if !benignUse(pass, parents, id) {
			escaped[v] = true
		}
		return true
	})
	return escaped
}

// enclosingLit returns the innermost function literal containing n, or
// nil if n belongs to the scope root itself. Literals nested inside
// another literal always escape (only the immediate deferred closure
// is a close context).
func enclosingLit(parents map[ast.Node]ast.Node, n ast.Node, root ast.Node) *ast.FuncLit {
	for cur := parents[n]; cur != nil && cur != root; cur = parents[cur] {
		if lit, ok := cur.(*ast.FuncLit); ok {
			return lit
		}
	}
	return nil
}

// benignUse reports whether the identifier's immediate context keeps
// the token trackable.
func benignUse(pass *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	par := parents[id]
	for {
		pe, ok := par.(*ast.ParenExpr)
		if !ok {
			break
		}
		par = parents[pe]
	}
	switch par := par.(type) {
	case *ast.CallExpr:
		// Token argument of a close call is the pairing itself.
		if name := profCallName(pass.TypesInfo, par); name != "" {
			if cl, ok := profCloses[name]; ok && cl.tokIdx < len(par.Args) &&
				ast.Unparen(par.Args[cl.tokIdx]) == id {
				return true
			}
		}
		return false
	case *ast.AssignStmt:
		for i, lhs := range par.Lhs {
			if lhs != id {
				continue
			}
			// Target of an open/reopen call: tracked by the dataflow.
			if len(par.Rhs) == len(par.Lhs) {
				if call, ok := ast.Unparen(par.Rhs[i]).(*ast.CallExpr); ok {
					name := profCallName(pass.TypesInfo, call)
					if _, isOpen := profOpens[name]; isOpen {
						return true
					}
					if cl, ok := profCloses[name]; ok && cl.reopens {
						return true
					}
				}
			}
			return false
		}
		// Read on the RHS: benign only when discarded into blank —
		// `_ = t` silences "declared and not used" without moving the
		// token anywhere.
		for i, rhs := range par.Rhs {
			if ast.Unparen(rhs) != id || i >= len(par.Lhs) {
				continue
			}
			if lhs, ok := par.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return true // comparisons don't move the token
	case *ast.ValueSpec:
		for i, name := range par.Names {
			if name != id {
				continue
			}
			if len(par.Values) == 0 {
				return true // plain declaration
			}
			if i < len(par.Values) {
				if call, ok := ast.Unparen(par.Values[i]).(*ast.CallExpr); ok {
					if _, isOpen := profOpens[profCallName(pass.TypesInfo, call)]; isOpen {
						return true
					}
				}
			}
			return false
		}
		return false // read inside the initializer expression
	default:
		return false
	}
}

// deferClosedVars collects token variables closed by a defer — either
// a direct deferred close call or a close inside a deferred closure.
func deferClosedVars(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	record := func(call *ast.CallExpr) {
		name := profCallName(pass.TypesInfo, call)
		cl, ok := profCloses[name]
		if !ok || cl.tokIdx >= len(call.Args) {
			return
		}
		if v := localVar(pass.TypesInfo, call.Args[cl.tokIdx]); v != nil {
			out[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if c, ok := x.(*ast.CallExpr); ok {
					record(c)
				}
				return true
			})
			return true
		}
		record(ds.Call)
		return true
	})
	return out
}
