package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// A Loader parses and type-checks packages without the go/packages
// machinery (this module is dependency-free). Import resolution is
// three-way:
//
//   - paths under the module path load from the module tree;
//   - paths under FixtureRoot (when set) load GOPATH-style from that
//     directory, so analysistest fixtures can import tiny stand-in
//     packages that live next to them;
//   - everything else is delegated to the standard library's source
//     importer, which type-checks GOROOT packages from source (no
//     pre-built export data is assumed to exist).
//
// _test.go files are never loaded: the invariants the analyzers enforce
// are production-code contracts, and test helpers routinely (and
// harmlessly) allocate, range over maps, and read the clock.
type Loader struct {
	ModulePath  string
	ModuleRoot  string
	FixtureRoot string

	fset *token.FileSet
	std  types.Importer

	// buildCtx evaluates build constraints; nil means build.Default
	// (the host target). Set via SetTarget.
	buildCtx *build.Context

	mu   sync.Mutex
	pkgs map[string]*Package
}

// sharedFset is process-global so every Loader (and the stdlib source
// importer, which caches type-checked GOROOT packages per fset) reuses
// one position table and one stdlib type-check per test binary.
var (
	sharedFset    = token.NewFileSet()
	sharedStdOnce sync.Once
	sharedStd     types.Importer
)

func stdImporter() types.Importer {
	sharedStdOnce.Do(func() {
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	})
	return sharedStd
}

// NewLoader builds a loader rooted at the module directory containing
// go.mod (moduleRoot). fixtureRoot may be empty.
func NewLoader(moduleRoot, fixtureRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModulePath:  modPath,
		ModuleRoot:  moduleRoot,
		FixtureRoot: fixtureRoot,
		fset:        sharedFset,
		std:         stdImporter(),
		pkgs:        map[string]*Package{},
	}, nil
}

// SetTarget retargets build-constraint evaluation (file name suffixes
// and //go:build lines) to a synthetic GOOS/GOARCH, so per-arch file
// pairs — an assembly-backed kernel and its portable fallback — can be
// analyzed for every target from one host. It must be called before
// the first load: the package cache is not invalidated. Standard-
// library imports still resolve with the host's context (the source
// importer is not retargeted); module and fixture files are what the
// per-target view changes.
func (l *Loader) SetTarget(goos, goarch string) {
	ctx := build.Default
	ctx.GOOS = goos
	ctx.GOARCH = goarch
	ctx.CgoEnabled = false
	l.buildCtx = &ctx
}

// context returns the build context constraints are evaluated under.
func (l *Loader) context() *build.Context {
	if l.buildCtx != nil {
		return l.buildCtx
	}
	return &build.Default
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Import implements types.Importer over the three-way resolution scheme.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks dir as import path, with full analysis
// info. Exactly one *Package ever exists per import path — Import and
// LoadDir share this cache, so a package reached first as a dependency
// and later analyzed directly (or vice versa) is the same types.Package
// instance and type identity holds across the whole load.
func (l *Loader) load(path, dir string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	l.mu.Unlock()

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.mu.Lock()
	l.pkgs[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// dirFor maps an import path to a directory under the module or fixture
// roots; ok is false for paths resolved elsewhere (standard library).
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// parseDir parses the non-test .go files of dir, sorted by name for
// deterministic diagnostics. Build constraints (file suffixes and
// //go:build lines) are honored for the loader's target — the host
// GOOS/GOARCH by default, or a synthetic one set with SetTarget — so
// per-arch file pairs type-check as the compiler would build them for
// that target.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := l.context().MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir loads the package in dir with full syntax and type information
// for analysis.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// importPathFor derives the import path of an absolute directory from the
// loader's roots.
func (l *Loader) importPathFor(abs string) (string, error) {
	// The fixture root nests inside the module tree, so try it first: a
	// fixture package's path must be its path relative to the fixtures,
	// not a module-qualified testdata path.
	for _, root := range []struct{ dir, prefix string }{
		{l.FixtureRoot, ""},
		{l.ModuleRoot, l.ModulePath},
	} {
		if root.dir == "" {
			continue
		}
		rootAbs, err := filepath.Abs(root.dir)
		if err != nil {
			continue
		}
		rel, err := filepath.Rel(rootAbs, abs)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			continue
		}
		if rel == "." {
			if root.prefix == "" {
				break
			}
			return root.prefix, nil
		}
		p := filepath.ToSlash(rel)
		if root.prefix != "" {
			p = root.prefix + "/" + p
		}
		return p, nil
	}
	return "", fmt.Errorf("analysis: %s is outside the module and fixture roots", abs)
}
