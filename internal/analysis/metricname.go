package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// MetricName enforces the observability naming scheme documented in
// README.md ("Observability") on every obs.Registry registration call
// (Counter / FloatCounter / Gauge / Histogram):
//
//   - series names are compile-time string constants matching
//     ucudnn_* snake_case, so dashboards can rely on them;
//   - counter names (integer and float) end in _total (Prometheus
//     convention); gauge and histogram names do not;
//   - labels are built inline with obs.L and constant snake_case names;
//   - a series name is registered with one stable label set and one
//     metric kind throughout a package.
//
// It applies the same contract to the flight recorder: every
// flight.Name handed to the flight package (Register, Lookup, or any
// other call taking a Name) must be a compile-time constant matching
// ucudnn_ev_* snake_case, mirroring the faultpoint analyzer, so the
// event universe is enumerable statically. The flight package itself is
// exempt: it plumbs Name values through its registry by design.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs registrations must use constant ucudnn_* snake_case names with stable label sets; flight event names must be constant ucudnn_ev_* identifiers",
	Run:  runMetricName,
}

var (
	metricNameRe = regexp.MustCompile(`^ucudnn(_[a-z0-9]+)+$`)
	labelNameRe  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	eventNameRe  = regexp.MustCompile(`^ucudnn_ev(_[a-z0-9]+)+$`)
)

// metricReg records one registration site for stability checks.
type metricReg struct {
	kind   string
	labels string // comma-joined sorted label names; "?" when unknown
	pos    string
}

func runMetricName(pass *Pass) error {
	seen := map[string]metricReg{}
	flightExempt := pass.Pkg != nil && pass.Pkg.Name() == "flight"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !flightExempt {
				for _, arg := range call.Args {
					if isFlightNameType(pass, arg) {
						checkEventName(pass, arg)
					}
				}
			}
			kind, ok := registryCall(pass, call)
			if !ok {
				return true
			}
			checkRegistration(pass, call, kind, seen)
			return true
		})
	}
	return nil
}

// isFlightNameType reports whether the expression's static type is the
// flight package's Name type.
func isFlightNameType(pass *Pass, expr ast.Expr) bool {
	tv := pass.TypesInfo.Types[expr]
	if tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Name" && obj.Pkg() != nil && obj.Pkg().Name() == "flight"
}

// checkEventName requires expr to be a compile-time string constant
// matching the ucudnn_ev_* scheme.
func checkEventName(pass *Pass, expr ast.Expr) {
	tv := pass.TypesInfo.Types[expr]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(expr.Pos(),
			"flight event name must be a compile-time flight.Name constant so the event universe is enumerable statically")
		return
	}
	if name := constant.StringVal(tv.Value); !eventNameRe.MatchString(name) {
		pass.Reportf(expr.Pos(),
			"flight event name %q does not match the ucudnn_ev_* snake_case scheme", name)
	}
}

// registryCall reports whether call is obs.Registry.Counter /
// FloatCounter / Gauge / Histogram, identified by method name and
// receiver type (a Registry named type declared in a package named
// "obs").
func registryCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	kind := sel.Sel.Name
	if kind != "Counter" && kind != "FloatCounter" && kind != "Gauge" && kind != "Histogram" {
		return "", false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return "", false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return "", false
	}
	return kind, true
}

func checkRegistration(pass *Pass, call *ast.CallExpr, kind string, seen map[string]metricReg) {
	if len(call.Args) == 0 {
		return
	}
	nameArg := call.Args[0]
	tv := pass.TypesInfo.Types[nameArg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(nameArg.Pos(),
			"metric name must be a compile-time string constant so the series set is knowable statically")
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRe.MatchString(name) {
		pass.Reportf(nameArg.Pos(),
			"metric name %q does not match the documented ucudnn_* snake_case scheme", name)
	}
	switch kind {
	case "Counter", "FloatCounter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(nameArg.Pos(),
				"counter %q must end in _total (Prometheus counter convention)", name)
		}
	case "Gauge", "Histogram":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(nameArg.Pos(),
				"%s %q must not end in _total (reserved for counters)", strings.ToLower(kind), name)
		}
	}

	// Label arguments: Counter/Gauge labels start at arg 1, Histogram at
	// arg 2 (after the bucket bounds).
	labelStart := 1
	if kind == "Histogram" {
		labelStart = 2
	}
	labelSet, known := "", true
	if len(call.Args) > labelStart {
		var names []string
		for _, arg := range call.Args[labelStart:] {
			ln, ok := labelCallName(pass, arg)
			if !ok {
				pass.Reportf(arg.Pos(),
					"label must be built inline with obs.L and a constant name; dynamic label sets defeat the stable-series contract")
				known = false
				continue
			}
			if !labelNameRe.MatchString(ln) {
				pass.Reportf(arg.Pos(), "label name %q must be snake_case ([a-z][a-z0-9_]*)", ln)
			}
			names = append(names, ln)
		}
		sort.Strings(names)
		labelSet = strings.Join(names, ",")
	}
	if call.Ellipsis.IsValid() {
		known = false
	}
	if !known {
		labelSet = "?"
	}

	// Stability: one kind and one label set per series name per package.
	pos := pass.Fset.Position(call.Pos()).String()
	if prev, ok := seen[name]; ok {
		if prev.kind != kind {
			pass.Reportf(call.Pos(),
				"metric %q registered as %s here but as %s at %s; a series has one kind", name, kind, prev.kind, prev.pos)
		}
		if prev.labels != "?" && labelSet != "?" && prev.labels != labelSet {
			pass.Reportf(call.Pos(),
				"metric %q registered with label set {%s} here but {%s} at %s; label sets must be stable", name, labelSet, prev.labels, prev.pos)
		}
	} else {
		seen[name] = metricReg{kind: kind, labels: labelSet, pos: pos}
	}
}

// labelCallName extracts the constant label name from an obs.L("name",
// value) argument.
func labelCallName(pass *Pass, arg ast.Expr) (string, bool) {
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return "", false
	}
	var fname string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fname = fun.Name
	case *ast.SelectorExpr:
		fname = fun.Sel.Name
	default:
		return "", false
	}
	if fname != "L" {
		return "", false
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// All is the ucudnn-lint analyzer suite in execution order: the
// per-package checks first, then the interprocedural ones.
var All = []*Analyzer{
	Detlint, Hotpath, WSFloor, MetricName, FaultPoint, PhaseName,
	HotpathCall, AtomicLint, LockOrder, PhasePair,
}

// ByName resolves a comma-separated analyzer list ("detlint,hotpath");
// empty selects the whole suite.
func ByName(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have detlint, hotpath, wsfloor, metricname, faultpoint, phasename, hotpathcall, atomiclint, lockorder, phasepair)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
