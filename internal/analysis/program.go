package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"ucudnn/internal/analysis/callgraph"
)

// A Program is a set of packages analyzed together, the unit of the
// interprocedural analyzers (hotpathcall, atomiclint, lockorder). The
// packages must come from one Loader, so type identity holds across
// them and the call graph can resolve cross-package calls exactly.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	cg *callgraph.Graph
}

// NewProgram groups pkgs (from one Loader) into a Program.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	return p
}

// CallGraph returns the module call graph, built on first use.
func (p *Program) CallGraph() *callgraph.Graph {
	if p.cg == nil {
		units := make([]*callgraph.Unit, len(p.Pkgs))
		for i, pkg := range p.Pkgs {
			units[i] = &callgraph.Unit{
				Path:  pkg.ImportPath,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
				Files: pkg.Files,
			}
		}
		p.cg = callgraph.Build(p.Fset, units)
	}
	return p.cg
}

// A ProgramPass provides one program analyzer run over a whole Program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// An Allow is one parsed //ucudnn:allow directive, with the audit state
// the run filled in: whether any diagnostic was actually suppressed by
// it. Stale allows (Used == false after a full-suite run) are dead
// suppressions whose justification no longer corresponds to a finding;
// ucudnn-lint -audit-allows fails on them.
type Allow struct {
	// Analyzer is the analyzer the directive names.
	Analyzer string
	// Justification is the mandatory text after "--".
	Justification string
	// Pos is the directive's position.
	Pos token.Position
	// Used reports whether the run suppressed at least one diagnostic
	// with this directive.
	Used bool
}

// A Result is the outcome of analyzing a Program: surviving diagnostics
// plus every suppression directive with its audit state.
type Result struct {
	Diags  []Diagnostic
	Allows []Allow
}

// AnalyzeProgram executes the analyzers over the program: per-package
// analyzers (Run) on every package, program analyzers (RunProgram) once
// over the whole program. Suppression directives are collected from all
// packages and applied to both, and each directive's Used state records
// whether it suppressed anything — the input to the staleness audit.
func AnalyzeProgram(prog *Program, analyzers []*Analyzer) (*Result, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range prog.Pkgs {
				pass := &Pass{
					Analyzer:   a,
					Fset:       pkg.Fset,
					Files:      pkg.Files,
					Pkg:        pkg.Types,
					TypesInfo:  pkg.Info,
					ImportPath: pkg.ImportPath,
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
				}
				diags = append(diags, pass.diags...)
			}
		}
		if a.RunProgram != nil {
			pass := &ProgramPass{Analyzer: a, Prog: prog}
			if err := a.RunProgram(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			diags = append(diags, pass.diags...)
		}
	}

	res := &Result{}
	// Parse the allow directives of every package; malformed ones are
	// themselves diagnostics.
	type cover struct{ allow int } // index into res.Allows
	covered := map[string]map[string]map[int]cover{}
	for _, pkg := range prog.Pkgs {
		for _, d := range parseDirectives(pkg.Fset, pkg.Files) {
			if d.verb != "allow" {
				continue
			}
			m := allowRe.FindStringSubmatch(d.args)
			if m == nil || strings.TrimSpace(m[2]) == "" {
				diags = append(diags, Diagnostic{
					Analyzer: "directive",
					Pos:      d.pos,
					Message:  "malformed //ucudnn:allow directive: want \"//ucudnn:allow <analyzer> -- <justification>\" with a non-empty justification",
				})
				continue
			}
			name := m[1]
			res.Allows = append(res.Allows, Allow{
				Analyzer:      name,
				Justification: strings.TrimSpace(m[2]),
				Pos:           d.pos,
			})
			idx := len(res.Allows) - 1
			byFile := covered[name]
			if byFile == nil {
				byFile = map[string]map[int]cover{}
				covered[name] = byFile
			}
			lines := byFile[d.pos.Filename]
			if lines == nil {
				lines = map[int]cover{}
				byFile[d.pos.Filename] = lines
			}
			// A directive covers its own line (trailing-comment form)
			// and the next (comment-above form); first directive wins,
			// matching the original per-package semantics.
			if _, dup := lines[d.pos.Line]; !dup {
				lines[d.pos.Line] = cover{allow: idx}
			}
			if _, dup := lines[d.pos.Line+1]; !dup {
				lines[d.pos.Line+1] = cover{allow: idx}
			}
		}
	}

	for _, d := range diags {
		if c, ok := covered[d.Analyzer][d.Pos.Filename][d.Pos.Line]; ok {
			res.Allows[c.allow].Used = true
			continue
		}
		res.Diags = append(res.Diags, d)
	}
	sortDiags(res.Diags)
	sort.Slice(res.Allows, func(i, j int) bool {
		a, b := res.Allows[i].Pos, res.Allows[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return res, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
