package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe matches an expectation comment: `// want` followed by one or
// more backquoted regexes, each expecting one diagnostic on that line.
var wantRe = regexp.MustCompile("^//\\s*want((?:\\s+`[^`]*`)+)\\s*$")

var wantArgRe = regexp.MustCompile("`[^`]*`")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// RunFixture loads testdata/<analyzer>/src/<pkg>, runs the analyzer with
// suppression directives applied (exactly as cmd/ucudnn-lint does), and
// checks the surviving diagnostics against the fixture's trailing
// want comments: every diagnostic must be expected, every expectation
// must fire.
func RunFixture(t *testing.T, a *Analyzer, pkgdir string) {
	t.Helper()
	pkg := loadFixture(t, a.Name, pkgdir)
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Collect expectations keyed by (file, line).
	type key struct {
		file string
		line int
	}
	expects := map[key][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, raw := range wantArgRe.FindAllString(m[1], -1) {
					expects[k] = append(expects[k], &expectation{
						re: regexp.MustCompile(raw[1 : len(raw)-1]),
					})
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, e := range expects[k] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for k, es := range expects {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none",
					filepath.Base(k.file), k.line, e.re)
			}
		}
	}
}

// loadFixture loads one fixture package with FixtureRoot set so intra-
// fixture imports (e.g. the metricname obs stand-in) resolve.
func loadFixture(t *testing.T, analyzer, pkgdir string) *Package {
	t.Helper()
	moduleRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fixtureRoot := filepath.Join("testdata", analyzer, "src")
	loader, err := NewLoader(moduleRoot, fixtureRoot)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join(fixtureRoot, pkgdir))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", pkgdir, err)
	}
	return pkg
}
