package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// PhaseName enforces the profiler naming contract documented in
// DESIGN.md ("Profiling & cost attribution"): every prof.Phase handed
// to the profiler (Register, or any other call taking a Phase) must be
// a compile-time constant matching ucudnn_ph_* snake_case, mirroring
// the faultpoint and metricname analyzers. Constant names keep the
// phase universe enumerable statically — a cost model trained on one
// build's profile keys keeps working on the next — and greppable from a
// report row straight to the timer site.
//
// The prof package itself is exempt: it plumbs Phase values through its
// registry by design.
var PhaseName = &Analyzer{
	Name: "phasename",
	Doc:  "prof.Phase values must be compile-time ucudnn_ph_* snake_case constants",
	Run:  runPhaseName,
}

var phaseNameRe = regexp.MustCompile(`^ucudnn_ph(_[a-z0-9]+)+$`)

func runPhaseName(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "prof" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if isProfPhaseType(pass, arg) {
					checkPhaseName(pass, arg)
				}
			}
			return true
		})
	}
	return nil
}

// checkPhaseName requires expr to be a compile-time string constant
// matching the ucudnn_ph_* scheme.
func checkPhaseName(pass *Pass, expr ast.Expr) {
	tv := pass.TypesInfo.Types[expr]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(expr.Pos(),
			"profiler phase must be a compile-time prof.Phase constant so the phase universe is enumerable statically")
		return
	}
	if name := constant.StringVal(tv.Value); !phaseNameRe.MatchString(name) {
		pass.Reportf(expr.Pos(),
			"profiler phase %q does not match the ucudnn_ph_* snake_case scheme", name)
	}
}

// isProfPhaseType reports whether the expression's static type is the
// prof package's Phase type.
func isProfPhaseType(pass *Pass, expr ast.Expr) bool {
	tv := pass.TypesInfo.Types[expr]
	if tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Phase" && obj.Pkg() != nil && obj.Pkg().Name() == "prof"
}
