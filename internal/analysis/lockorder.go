package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ucudnn/internal/analysis/callgraph"
	"ucudnn/internal/analysis/cfg"
)

// LockOrder derives the module's lock-acquisition partial order and
// enforces two disciplines the race detector cannot see:
//
//   - no cycles: if lock B is ever acquired while A is held, no path
//     may acquire A while B is held — a cycle is a deadlock waiting for
//     the right interleaving. Acquisitions are found flow-sensitively
//     (CFG dataflow with may-hold sets) and propagated through the
//     call graph, so "f locks A then calls g, g locks B" contributes
//     the edge A→B even though no single function holds both;
//   - no stalls in critical sections: while any lock is held, calls
//     that block (time.Sleep, file and network I/O) or evaluate a
//     fault-injection point (faults.Registry Err/Hit/Grant/Mangle —
//     injected faults must not perturb lock hold times, or fault runs
//     stop reproducing the schedules of clean runs) are flagged,
//     directly or through callees.
//
// Lock identity is syntactic — pkg.Type.field for mutex fields,
// pkg.var for package-level mutexes, pkg.func.var for locals — so two
// instances of one struct share an identity; ordering between
// same-typed instances needs an out-of-band rule either way. Edges
// from go statements are excluded (a spawned goroutine does not inherit
// the spawner's critical section), as are deferred calls (they run at
// exit, interleaved with deferred unlocks).
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "derive the lock-acquisition partial order; flag cycles, and blocking or fault-point calls made under a lock",
	RunProgram: runLockOrder,
}

// lockFacts summarizes one function for interprocedural propagation.
type lockFacts struct {
	// acquires are the lock keys the function may take (transitively,
	// after the fixpoint).
	acquires map[string]bool
	// hazard describes one blocking or fault-point call the function
	// may reach ("" if none): "blocking call time.Sleep", "fault point
	// faults.Registry.Err".
	hazard string
}

// orderEdge is one observed "acquired b while holding a".
type orderEdge struct {
	a, b string
	pos  token.Pos
}

func runLockOrder(pass *ProgramPass) error {
	cg := pass.Prog.CallGraph()

	infoOf := map[*callgraph.Node]*Package{}
	for _, n := range cg.Nodes {
		if n.Unit == nil {
			continue
		}
		for _, pkg := range pass.Prog.Pkgs {
			if pkg.ImportPath == n.Unit.Path {
				infoOf[n] = pkg
			}
		}
	}

	// Pass 1: local facts per function body.
	local := map[*callgraph.Node]*lockFacts{}
	for _, n := range cg.Nodes {
		pkg := infoOf[n]
		body := n.Body()
		if pkg == nil || body == nil {
			continue
		}
		facts := &lockFacts{acquires: map[string]bool{}}
		walkLockCalls(pkg, n, body, func(call *ast.CallExpr) {
			if key, acq := lockOp(pkg, n, call); key != "" {
				if acq {
					facts.acquires[key] = true
				}
				return
			}
			if hz := hazardCall(pkg.Info, call); hz != "" && facts.hazard == "" {
				facts.hazard = hz
			}
		})
		local[n] = facts
	}

	// Pass 2: fixpoint over the call graph. Static and interface edges
	// propagate; go, deferred, and function-value edges do not.
	summary := map[*callgraph.Node]*lockFacts{}
	for n, f := range local {
		cp := &lockFacts{acquires: map[string]bool{}, hazard: f.hazard}
		for k := range f.acquires {
			cp.acquires[k] = true
		}
		summary[n] = cp
	}
	for changed := true; changed; {
		changed = false
		for _, n := range cg.Nodes {
			sn := summary[n]
			if sn == nil {
				continue
			}
			// n.Out only: an enclosed literal's calls run when the
			// literal is invoked, not where it is written, so they do
			// not belong to the parent's summary. (Immediately invoked
			// literals have a static edge here and do propagate.)
			for _, e := range n.Out {
				if e.Go || e.Deferred || e.Kind == callgraph.FuncValue {
					continue
				}
				sc := summary[e.Callee]
				if sc == nil {
					continue
				}
				for k := range sc.acquires {
					if !sn.acquires[k] {
						sn.acquires[k] = true
						changed = true
					}
				}
				if sn.hazard == "" && sc.hazard != "" {
					sn.hazard = sc.hazard
					changed = true
				}
			}
		}
	}

	// Pass 3: flow-sensitive walk of every body with may-hold sets;
	// record order edges and report hazards under a lock.
	var edges []orderEdge
	for _, n := range cg.Nodes {
		pkg := infoOf[n]
		body := n.Body()
		if pkg == nil || body == nil {
			continue
		}
		edges = append(edges, analyzeHeld(pass, pkg, cg, n, body, summary)...)
	}

	reportCycles(pass, edges)
	return nil
}

// walkLockCalls visits every call expression lexically in body outside
// nested function literals (their calls belong to the literal's own
// node) and outside go/defer statements.
func walkLockCalls(pkg *Package, n *callgraph.Node, body *ast.BlockStmt, f func(*ast.CallExpr)) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			f(x)
		}
		return true
	})
}

// analyzeHeld runs the may-hold dataflow over n's CFG, reporting
// hazards encountered under a lock and returning the observed order
// edges (both direct acquisitions and callee-summary acquisitions).
func analyzeHeld(pass *ProgramPass, pkg *Package, cg *callgraph.Graph, n *callgraph.Node, body *ast.BlockStmt, summary map[*callgraph.Node]*lockFacts) []orderEdge {
	g := cfg.New(body, pkg.Info)

	in := map[*cfg.Block]map[string]bool{}
	for _, b := range g.Blocks {
		in[b] = map[string]bool{}
	}

	// transfer folds one block's calls over a held set; report is nil
	// during the fixpoint and live during the final pass.
	var edges []orderEdge
	reported := map[token.Pos]bool{}
	transfer := func(b *cfg.Block, held map[string]bool, final bool) map[string]bool {
		out := map[string]bool{}
		for k := range held {
			out[k] = true
		}
		for _, node := range b.Nodes {
			if _, ok := node.(*ast.DeferStmt); ok {
				continue
			}
			ast.Inspect(node, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.GoStmt, *ast.DeferStmt:
					return false
				case *ast.CallExpr:
					lockStep(pass, pkg, cg, n, x, out, summary, final, &edges, reported)
				}
				return true
			})
		}
		return out
	}

	// Fixpoint: propagate may-hold sets forward until stable.
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(b, in[b], false)
		for _, s := range b.Succs {
			if union(in[s], out) {
				work = append(work, s)
			}
		}
	}
	// Final pass with stable in-sets emits reports and edges once.
	for _, b := range g.Blocks {
		transfer(b, in[b], true)
	}
	return edges
}

// lockStep interprets one call against the current held set.
func lockStep(pass *ProgramPass, pkg *Package, cg *callgraph.Graph, n *callgraph.Node, call *ast.CallExpr, held map[string]bool, summary map[*callgraph.Node]*lockFacts, final bool, edges *[]orderEdge, reported map[token.Pos]bool) {
	if key, acq := lockOp(pkg, n, call); key != "" {
		if !acq {
			delete(held, key)
			return
		}
		if final {
			for _, h := range sortedKeys(held) {
				*edges = append(*edges, orderEdge{a: h, b: key, pos: call.Pos()})
			}
		}
		held[key] = true
		return
	}

	if !final || len(held) == 0 {
		return
	}
	if reported[call.Pos()] {
		return
	}

	if hz := hazardCall(pkg.Info, call); hz != "" {
		reported[call.Pos()] = true
		pass.Reportf(call.Pos(), "%s while holding %s", hz, holdList(held))
		return
	}

	// Callee summaries: static / interface edges only.
	for _, e := range calleeEdges(cg, n, call) {
		sc := summary[e.Callee]
		if sc == nil {
			continue
		}
		for _, k := range sortedKeys(sc.acquires) {
			if !held[k] {
				for _, h := range sortedKeys(held) {
					*edges = append(*edges, orderEdge{a: h, b: k, pos: call.Pos()})
				}
			}
		}
		if sc.hazard != "" && !reported[call.Pos()] {
			reported[call.Pos()] = true
			pass.Reportf(call.Pos(), "call to %s may reach %s while holding %s",
				e.Callee.Name(), sc.hazard, holdList(held))
		}
	}
}

// calleeEdges returns n's resolved edges whose call site is call,
// excluding go/deferred/function-value edges. Literal nodes carry their
// own edges and are analyzed with their own CFGs.
func calleeEdges(cg *callgraph.Graph, n *callgraph.Node, call *ast.CallExpr) []callgraph.Edge {
	var out []callgraph.Edge
	for _, e := range n.Out {
		if e.Site != call || e.Go || e.Deferred || e.Kind == callgraph.FuncValue {
			continue
		}
		out = append(out, e)
	}
	return out
}

// lockOp classifies call as a mutex acquire/release on a trackable
// lock: ("", false) if it is not a sync.Mutex/RWMutex operation or the
// receiver has no stable identity. The second result is true for
// Lock/RLock/TryLock, false for Unlock/RUnlock.
func lockOp(pkg *Package, n *callgraph.Node, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", false
	}
	var acq bool
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return "", false
	}
	key := lockKey(pkg, n, sel.X)
	if key == "" {
		return "", false
	}
	return key, acq
}

// lockKey gives a lock expression a stable, human-readable identity.
func lockKey(pkg *Package, n *callgraph.Node, e ast.Expr) string {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(e)
		if obj == nil {
			return ""
		}
		if obj.Parent() == pkg.Types.Scope() {
			return pkg.Types.Name() + "." + e.Name
		}
		return n.Name() + "." + e.Name
	case *ast.SelectorExpr:
		// Qualified package-level var: pkg.mu.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pkg.Info.ObjectOf(id).(*types.PkgName); isPkg {
				return id.Name + "." + e.Sel.Name
			}
		}
		if t := pkg.Info.TypeOf(e.X); t != nil {
			s := types.TypeString(t, func(p *types.Package) string { return p.Name() })
			return strings.TrimPrefix(s, "*") + "." + e.Sel.Name
		}
	}
	return ""
}

// hazardCall describes call if it blocks or evaluates a fault point.
func hazardCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)

	// Fault-injection points: Registry methods and their package-level
	// wrappers in a faults package.
	if pkgPathElem(path) == "faults" {
		switch name {
		case "Err", "Hit", "Grant", "Mangle":
			if sig != nil && sig.Recv() != nil {
				return "fault point faults.Registry." + name
			}
			return "fault point faults." + name
		}
	}

	switch {
	case path == "time" && name == "Sleep":
		return "blocking call time.Sleep"
	case path == "os" && sig != nil && sig.Recv() == nil &&
		(name == "ReadFile" || name == "WriteFile"):
		return "blocking call os." + name
	case path == "os" && sig != nil && sig.Recv() != nil && recvIs(sig, "os", "File") &&
		(name == "Read" || name == "Write" || name == "ReadAt" || name == "WriteAt" || name == "Sync"):
		return "blocking call os.File." + name
	case path == "net" || strings.HasPrefix(path, "net/"):
		return "blocking call " + path + "." + name
	}
	return ""
}

// calleeFunc resolves call's target function object, if static.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvIs reports whether sig's receiver (after deref) is the named type
// pkgpath.name.
func recvIs(sig *types.Signature, pkgElem, name string) bool {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name && named.Obj().Pkg() != nil &&
		pkgPathElem(named.Obj().Pkg().Path()) == pkgElem
}

// union adds src's keys to dst, reporting whether dst grew.
func union(dst, src map[string]bool) bool {
	grew := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			grew = true
		}
	}
	return grew
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func holdList(held map[string]bool) string {
	return strings.Join(sortedKeys(held), ", ")
}

// reportCycles finds order edges that participate in a cycle and
// reports each once, with the cycle path for context.
func reportCycles(pass *ProgramPass, edges []orderEdge) {
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.a] == nil {
			adj[e.a] = map[string]bool{}
		}
		adj[e.a][e.b] = true
	}
	// reach[b][a]: a is reachable from b.
	reach := func(from, to string) (bool, []string) {
		type item struct {
			key  string
			path []string
		}
		seen := map[string]bool{from: true}
		queue := []item{{key: from, path: []string{from}}}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			if it.key == to {
				return true, it.path
			}
			for _, next := range sortedKeys(adj[it.key]) {
				if seen[next] {
					continue
				}
				seen[next] = true
				p := append(append([]string{}, it.path...), next)
				queue = append(queue, item{key: next, path: p})
			}
		}
		return false, nil
	}

	sort.Slice(edges, func(i, j int) bool {
		if edges[i].pos != edges[j].pos {
			return edges[i].pos < edges[j].pos
		}
		return edges[i].a+edges[i].b < edges[j].a+edges[j].b
	})
	seen := map[string]bool{}
	for _, e := range edges {
		id := e.a + "→" + e.b
		if seen[id] {
			continue
		}
		if e.a == e.b {
			seen[id] = true
			pass.Reportf(e.pos,
				"lock %s acquired while an instance of it is already held; same-identity locks need an explicit instance order", e.a)
			continue
		}
		ok, path := reach(e.b, e.a)
		if !ok {
			continue
		}
		seen[id] = true
		cycle := append([]string{e.a}, path...)
		pass.Reportf(e.pos,
			"acquiring %s while holding %s creates a lock-order cycle: %s", e.b, e.a, strings.Join(cycle, " → "))
	}
}
