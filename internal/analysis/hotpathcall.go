package analysis

import (
	"go/ast"
	"sort"
	"strings"

	"ucudnn/internal/analysis/callgraph"
)

// HotpathCall propagates the //ucudnn:hotpath zero-allocation contract
// through the module call graph: a hot-path function's promise is only
// as good as everything it reaches, so every function reachable from an
// annotated root through static calls, concrete method calls, and
// interface dispatch is held to the same no-alloc rules as the root
// itself, and each violation is reported with the full call chain that
// makes it hot.
//
// Rules applied to reachable, unannotated functions (annotated callees
// are roots of their own and are covered by the local hotpath check):
//
//   - every allocating construct the local hotpath analyzer flags
//     (make/new/append, slice and map literals, function literals and
//     go statements, interface boxing);
//   - calls through function-typed values, which cannot be resolved
//     soundly and therefore cannot be proven allocation-free;
//   - calls into standard-library packages outside a small trusted-
//     silent set (math, math/bits, sync/atomic, time, unsafe, sync),
//     since their bodies are not analyzed here and fmt-style APIs
//     allocate by design.
//
// Reports land at the offending construct in the callee, so a
// //ucudnn:allow hotpathcall suppression sits next to the code it
// excuses; the chain in the message names the root and the path.
var HotpathCall = &Analyzer{
	Name:       "hotpathcall",
	Doc:        "propagate the //ucudnn:hotpath zero-alloc contract transitively through the call graph",
	RunProgram: runHotpathCall,
}

// hotpathTrusted are standard-library packages whose hot-path-relevant
// entry points are allocation-free (atomic ops, monotonic clock
// readings, pure math); calls into any other body-less package are
// flagged as unverifiable.
var hotpathTrusted = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
	"sync":        true,
	"time":        true,
	"unsafe":      true,
}

func runHotpathCall(pass *ProgramPass) error {
	cg := pass.Prog.CallGraph()

	// Roots: annotated declarations. The annotation set is also the
	// traversal frontier's stop set — an annotated callee restarts the
	// walk as its own root, so chains stay short and reports aren't
	// duplicated along every path through an annotated helper.
	annotated := map[*callgraph.Node]bool{}
	var roots []*callgraph.Node
	for _, n := range cg.Nodes {
		if n.Decl != nil && n.Decl.Body != nil && hasFuncDirective(n.Decl, "hotpath") {
			annotated[n] = true
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name() < roots[j].Name() })

	type visit struct {
		node  *callgraph.Node
		chain []string // root ... caller, not including node
	}
	seen := map[*callgraph.Node]bool{}
	var queue []visit
	for _, r := range roots {
		queue = append(queue, visit{node: r, chain: nil})
	}

	// pkgOf finds the analysis package a node was loaded from, for
	// type-relative diagnostics.
	pkgOf := func(n *callgraph.Node) *Package {
		if n.Unit == nil {
			return nil
		}
		for _, pkg := range pass.Prog.Pkgs {
			if pkg.ImportPath == n.Unit.Path {
				return pkg
			}
		}
		return nil
	}

	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		n := v.node
		if seen[n] {
			continue
		}
		seen[n] = true
		chain := make([]string, len(v.chain), len(v.chain)+1)
		copy(chain, v.chain)
		chain = append(chain, n.Name())

		isRoot := annotated[n]
		pkg := pkgOf(n)
		if !isRoot && pkg != nil && n.Decl != nil && n.Decl.Body != nil {
			// Local allocating constructs, with the chain that makes
			// this function hot. (Annotated roots are the local hotpath
			// analyzer's job.)
			via := strings.Join(chain, " → ")
			for _, af := range allocSites(pkg.Info, pkg.Types, n.Decl.Body) {
				pass.Reportf(af.pos,
					"reachable from //ucudnn:hotpath via %s: %s", via, af.msg)
			}
		}

		// Traverse edges of the function and of every literal it
		// encloses (the literal bodies were alloc-checked above as part
		// of the enclosing body; their callees still count as reachable).
		for _, en := range withEnclosedLits(cg, n) {
			via := strings.Join(chain, " → ")
			// Calls through function-typed values cannot be resolved
			// soundly, so they are flagged at the site rather than
			// traversed through the over-approximated FuncValue edges.
			for _, d := range en.Dynamic {
				pass.Reportf(d.Pos,
					"reachable from //ucudnn:hotpath via %s: call through a function value cannot be proven allocation-free; use a direct call or annotate the target", via)
			}
			for _, e := range en.Out {
				callee := e.Callee
				switch {
				case e.Kind == callgraph.FuncValue:
					// Flagged above via Dynamic; the candidate targets
					// are a guess, so they are not enqueued.
				case callee.External():
					path := ""
					if callee.Obj != nil && callee.Obj.Pkg() != nil {
						path = callee.Obj.Pkg().Path()
					}
					if path != "" && !hotpathTrusted[path] {
						pass.Reportf(e.Pos,
							"reachable from //ucudnn:hotpath via %s: call into %s (package %s) is outside the trusted allocation-free set", via, callee.Name(), path)
					}
				case annotated[callee]:
					// Its own root; stop here.
				default:
					queue = append(queue, visit{node: callee, chain: chain})
				}
			}
		}
	}
	return nil
}

// withEnclosedLits returns n plus the literal nodes lexically inside
// its body (transitively), whose edges belong to n's reachability.
func withEnclosedLits(cg *callgraph.Graph, n *callgraph.Node) []*callgraph.Node {
	out := []*callgraph.Node{n}
	body := n.Body()
	if body == nil {
		return out
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			if ln := cg.LitNode(lit); ln != nil {
				out = append(out, ln)
			}
		}
		return true
	})
	return out
}
