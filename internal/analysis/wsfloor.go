package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WSFloor enforces the workspace contract around every Run/Convolve-
// shaped entry point and every Workspace() implementation:
//
//  1. An entry point that accepts a workspace buffer (a slice parameter
//     named ws or workspace) must validate it against the MinWorkspace
//     floor before dispatching — either by referencing MinWorkspace
//     directly or by forwarding the buffer to another entry point that
//     does (the delegation the cudnn wrappers use).
//  2. Workspace/MinWorkspace size reporters must be side-effect-free:
//     optimizers call them speculatively over whole configuration
//     spaces, so a reporter that mutates package or caller state turns
//     a query into an action.
var WSFloor = &Analyzer{
	Name: "wsfloor",
	Doc:  "entry points must check the MinWorkspace floor; Workspace() reporters must be pure",
	Run:  runWSFloor,
}

func runWSFloor(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if isEntryPointName(name) {
				checkEntryPoint(pass, fd)
			}
			if isWorkspaceReporterName(name) {
				checkReporterPurity(pass, fd)
			}
		}
	}
	return nil
}

// isEntryPointName matches the Run/Convolve-shaped executors of the
// kernel contract.
func isEntryPointName(name string) bool {
	return name == "Run" ||
		strings.Contains(name, "Convolve") ||
		strings.HasPrefix(name, "Convolution")
}

// isWorkspaceReporterName matches workspace-size reporters: Workspace,
// MinWorkspace, and the {algo}Workspace / *WorkspaceSize helpers behind
// them.
func isWorkspaceReporterName(name string) bool {
	return name == "Workspace" || name == "MinWorkspace" ||
		strings.HasSuffix(name, "Workspace") ||
		strings.HasSuffix(name, "WorkspaceSize") ||
		name == "workspaceSize"
}

// workspaceParam returns the *ast.Ident of the function's workspace
// parameter (a slice parameter named ws or workspace), or nil.
func workspaceParam(pass *Pass, fd *ast.FuncDecl) *ast.Ident {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			if id.Name != "ws" && id.Name != "workspace" {
				continue
			}
			if t := pass.TypesInfo.TypeOf(field.Type); t != nil {
				if _, ok := t.Underlying().(*types.Slice); ok {
					return id
				}
			}
		}
	}
	return nil
}

func checkEntryPoint(pass *Pass, fd *ast.FuncDecl) {
	wsParam := workspaceParam(pass, fd)
	if wsParam == nil {
		return
	}
	wsObj := pass.TypesInfo.Defs[wsParam]
	checksFloor := false
	delegates := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "MinWorkspace" {
				checksFloor = true
			}
		case *ast.CallExpr:
			if calleeEntryName(n) && passesIdent(pass, n.Args, wsObj) {
				delegates = true
			}
		}
		return true
	})
	if !checksFloor && !delegates {
		pass.Reportf(fd.Pos(),
			"entry point %s takes workspace %q but neither checks the MinWorkspace floor nor delegates it to an entry point that does (workspace contract)",
			fd.Name.Name, wsParam.Name)
	}
}

// calleeEntryName reports whether the call's callee is itself an entry-
// point-shaped function (Run / Convolve* / Convolution*).
func calleeEntryName(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return isEntryPointName(fun.Name)
	case *ast.SelectorExpr:
		return isEntryPointName(fun.Sel.Name)
	}
	return false
}

// passesIdent reports whether any argument is exactly the object obj.
func passesIdent(pass *Pass, args []ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	for _, a := range args {
		if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			return true
		}
	}
	return false
}

// checkReporterPurity flags statements in a workspace reporter that
// mutate state visible outside the function: writes to package-level
// variables, writes through parameters or the receiver, goroutine
// launches and channel sends.
func checkReporterPurity(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkReporterWrite(pass, name, fd, lhs)
			}
		case *ast.IncDecStmt:
			checkReporterWrite(pass, name, fd, n.X)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "workspace reporter %s launches a goroutine; size queries must be side-effect-free (workspace contract)", name)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "workspace reporter %s sends on a channel; size queries must be side-effect-free (workspace contract)", name)
		}
		return true
	})
}

// checkReporterWrite flags an assignment target that reaches outside the
// reporter: a package-level variable, or an indirect write (index, star,
// field) whose base is a parameter/receiver or package-level variable.
func checkReporterWrite(pass *Pass, name string, fd *ast.FuncDecl, lhs ast.Expr) {
	indirect := false
	e := lhs
loop:
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			indirect = true
			e = x.X
		case *ast.StarExpr:
			indirect = true
			e = x.X
		case *ast.SelectorExpr:
			indirect = true
			e = x.X
		default:
			break loop
		}
	}
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id] // `x := ...` definitions
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if v.Parent() == pass.Pkg.Scope() {
		pass.Reportf(lhs.Pos(),
			"workspace reporter %s writes package-level variable %s; size queries must be side-effect-free (workspace contract)", name, id.Name)
		return
	}
	if indirect && isParamOrRecv(pass, fd, v) {
		pass.Reportf(lhs.Pos(),
			"workspace reporter %s writes through %s, mutating caller-visible state; size queries must be side-effect-free (workspace contract)", name, id.Name)
	}
}

// isParamOrRecv reports whether v is one of fd's parameters or its
// receiver.
func isParamOrRecv(pass *Pass, fd *ast.FuncDecl, v *types.Var) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				if pass.TypesInfo.Defs[id] == v {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}
