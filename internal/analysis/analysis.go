// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: Analyzer values inspect one
// type-checked package at a time and report position-tagged diagnostics.
//
// It exists because the engine's three load-bearing promises — bitwise
// determinism at every worker count, the MinWorkspace floor, and
// zero-allocation kernel hot paths (see DESIGN.md "Kernel execution
// engine") — are contracts that spot tests can only sample. The analyzers
// in this package (detlint, hotpath, wsfloor, metricname) check them
// mechanically on every build via cmd/ucudnn-lint, which make check runs.
//
// # Suppressing a finding
//
// A finding can be silenced with a justification directive on the flagged
// line or the line directly above it:
//
//	//ucudnn:allow <analyzer> -- <justification>
//
// The justification is mandatory; a directive without one is itself a
// diagnostic. Directives name exactly one analyzer, so a line needing two
// suppressions carries two directives.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one static check. Per-package analyzers set
// Run; interprocedural analyzers set RunProgram and see every loaded
// package (and the module call graph) at once. Exactly one of the two
// must be non-nil.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ucudnn:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects the package in pass and reports findings via
	// pass.Reportf.
	Run func(pass *Pass) error
	// RunProgram inspects a whole Program at once.
	RunProgram func(pass *ProgramPass) error
}

// A Pass provides one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ImportPath is the slash-separated path the package was loaded as
	// (module-qualified for repo packages).
	ImportPath string

	diags []Diagnostic
}

// A Diagnostic is one finding, tagged with the reporting analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directivePrefix introduces every ucudnn analysis directive.
const directivePrefix = "//ucudnn:"

// A directive is one parsed //ucudnn: comment.
type directive struct {
	verb string // "allow", "hotpath", ...
	args string // text after the verb, trimmed
	pos  token.Position
}

// parseDirectives extracts //ucudnn: directives from every comment in the
// files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				verb := rest
				args := ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					verb, args = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				out = append(out, directive{verb: verb, args: args, pos: fset.Position(c.Pos())})
			}
		}
	}
	return out
}

// allowRe splits an allow directive's arguments into the analyzer name
// and the mandatory justification after "--".
var allowRe = regexp.MustCompile(`^([a-z][a-z0-9]*)\s*--\s*(.*)$`)

// Run executes the analyzers over a loaded package and returns the
// surviving diagnostics sorted by position: findings not covered by a
// valid //ucudnn:allow directive, plus one diagnostic for every malformed
// or justification-free directive. It is AnalyzeProgram over a
// single-package program — interprocedural analyzers see a call graph
// restricted to that package, which is exactly what the analysistest
// fixtures want.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := AnalyzeProgram(NewProgram([]*Package{pkg}), analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// funcDirectives returns the //ucudnn: verbs attached to a function
// declaration's doc comment.
func funcDirectives(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var verbs []string
	for _, c := range fd.Doc.List {
		if !strings.HasPrefix(c.Text, directivePrefix) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, directivePrefix)
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			rest = rest[:i]
		}
		verbs = append(verbs, rest)
	}
	return verbs
}

// hasFuncDirective reports whether fd's doc comment carries the verb.
func hasFuncDirective(fd *ast.FuncDecl, verb string) bool {
	for _, v := range funcDirectives(fd) {
		if v == verb {
			return true
		}
	}
	return false
}

// pkgPathElem reports whether the final element of the import path equals
// elem ("ucudnn/internal/core" -> "core"). Analyzers that apply to a
// fixed set of packages match on it, so testdata fixtures can opt in by
// directory name.
func pkgPathElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
