// Package callgraph builds a conservative module-wide call graph over
// type-checked packages, for the interprocedural analyzers in
// internal/analysis (hotpathcall's transitive zero-alloc contract,
// lockorder's held-lock propagation).
//
// Resolution is sound-by-overapproximation for the dynamic call forms:
//
//   - static calls (package functions, concrete methods, promoted
//     methods) resolve to exactly their callee;
//   - calls through an interface method resolve to every method in the
//     module whose receiver type implements the interface;
//   - calls through function-typed values resolve to every
//     address-taken function or function literal in the module with an
//     identical signature.
//
// Function literals are first-class nodes (named f$1, f$2, ... within
// their enclosing declaration), since parallel dispatch in this module
// routinely passes closures into fork-join helpers that invoke them
// through function-typed parameters.
//
// Callees outside the module (standard library) get body-less stub
// nodes, so analyzers can apply per-package policies (fmt allocates,
// net blocks) without loading GOROOT function bodies.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Unit is one type-checked package handed to Build.
type Unit struct {
	// Path is the unit's import path.
	Path string
	// Pkg and Info are the type-checker's outputs; Files the parsed
	// syntax the info maps into.
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
}

// EdgeKind says how a call site was resolved.
type EdgeKind int

const (
	// Static is a direct call to a package function or concrete method.
	Static EdgeKind = iota
	// Interface is a call through an interface method, resolved to each
	// implementing method in the module.
	Interface
	// FuncValue is a call through a function-typed value, resolved to
	// each address-taken function with an identical signature.
	FuncValue
)

// An Edge is one resolved (caller, site, callee) triple.
type Edge struct {
	// Site is the call expression; Pos its position.
	Site *ast.CallExpr
	Pos  token.Pos
	// Callee is the resolved target.
	Callee *Node
	// Kind records the resolution form.
	Kind EdgeKind
	// Go and Deferred mark call sites under a go or defer statement:
	// the call runs asynchronously / at function exit, which
	// order-sensitive analyzers treat differently from inline calls.
	Go       bool
	Deferred bool
}

// A DynSite is one call through a function-typed value.
type DynSite struct {
	Site *ast.CallExpr
	Pos  token.Pos
	// Go and Deferred mirror Edge's flags.
	Go       bool
	Deferred bool
}

// A Node is one function in the graph: a declared function or method, a
// function literal, or a body-less stub for a callee outside the module.
type Node struct {
	// Obj is the function object; nil for function literals.
	Obj *types.Func
	// Decl is the declaration, nil for literals and external stubs.
	Decl *ast.FuncDecl
	// Lit is the literal, nil for declared functions.
	Lit *ast.FuncLit
	// Enclosing is the node whose body lexically contains a literal
	// (nil for declared functions), used for naming and diagnostics.
	Enclosing *Node
	// Unit is the defining package; nil for external stubs.
	Unit *Unit
	// Out are the node's resolved call edges, in source order.
	Out []Edge
	// Dynamic lists the node's calls through function-typed values, one
	// entry per call site regardless of how many (possibly zero)
	// candidate targets the FuncValue edges over-approximate them with.
	// Analyzers that cannot trust the over-approximation report these
	// sites directly.
	Dynamic []DynSite

	name    string
	litSeq  int
	addrPos token.Pos // first address-taken reference, 0 if none
}

// Name renders the node for diagnostics: pkgname.Func,
// pkgname.(*T).Method, or enclosing$N for literals.
func (n *Node) Name() string { return n.name }

// External reports whether the node is a body-less stub for a function
// outside the module.
func (n *Node) External() bool { return n.Unit == nil && n.Lit == nil }

// Body returns the function's body, nil for external stubs.
func (n *Node) Body() *ast.BlockStmt {
	switch {
	case n.Decl != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// Pos returns the function's declaration position (token.NoPos for
// external stubs).
func (n *Node) Pos() token.Pos {
	switch {
	case n.Decl != nil:
		return n.Decl.Pos()
	case n.Lit != nil:
		return n.Lit.Pos()
	case n.Obj != nil:
		return n.Obj.Pos()
	}
	return token.NoPos
}

// AddressTaken reports whether the function is referenced anywhere
// outside call position (assigned, passed, returned), making it a
// candidate target for function-value calls.
func (n *Node) AddressTaken() bool { return n.addrPos != token.NoPos }

// A Graph is the module call graph.
type Graph struct {
	// Nodes lists every node with a body (declared functions and
	// literals), in deterministic order: units as given, files in
	// order, declarations top to bottom, literals inside their
	// enclosing function in source order.
	Nodes []*Node

	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
}

// NodeOf returns the node of a function object (declared in the module
// or an external stub created during Build), or nil if the object never
// appeared.
func (g *Graph) NodeOf(obj *types.Func) *Node { return g.byObj[obj] }

// LitNode returns the node of a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Build constructs the call graph of the units.
func Build(fset *token.FileSet, units []*Unit) *Graph {
	b := &gbuilder{
		fset:  fset,
		graph: &Graph{byObj: map[*types.Func]*Node{}, byLit: map[*ast.FuncLit]*Node{}},
	}
	// Pass 1: nodes for every declared function and literal, the named
	// types of the module (interface-call resolution), and address-taken
	// references.
	for _, u := range units {
		b.collectTypes(u)
	}
	sort.Slice(b.named, func(i, j int) bool {
		return b.named[i].Obj().Pos() < b.named[j].Obj().Pos()
	})
	for _, u := range units {
		b.collectNodes(u)
	}
	// Pass 2: resolve call sites. Dynamic forms need the complete
	// address-taken set, which pass 1 gathered.
	for _, n := range b.graph.Nodes {
		b.resolveBody(n)
	}
	return b.graph
}

type gbuilder struct {
	fset  *token.FileSet
	graph *Graph
	named []*types.Named
}

// collectTypes gathers the unit's named (non-interface) types, the
// candidate receivers for interface-call resolution.
func (b *gbuilder) collectTypes(u *Unit) {
	for _, obj := range u.Info.Defs {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		b.named = append(b.named, named)
	}
}

// collectNodes creates the unit's declared-function and literal nodes
// and records address-taken references.
func (b *gbuilder) collectNodes(u *Unit) {
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := u.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := &Node{Obj: obj, Decl: fd, Unit: u, name: funcName(obj)}
			b.graph.byObj[obj] = n
			b.graph.Nodes = append(b.graph.Nodes, n)
			if fd.Body != nil {
				b.collectLits(u, n, fd.Body)
			}
		}
	}
	// Address-taken: every use of a function identifier outside the
	// Fun position of a call.
	b.sweepTaken(u)
}

// collectLits creates nodes for the literals inside body (excluding
// nested literal bodies, which recurse through their own node).
func (b *gbuilder) collectLits(u *Unit, parent *Node, body *ast.BlockStmt) {
	seq := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		seq++
		ln := &Node{
			Lit:       lit,
			Enclosing: parent,
			Unit:      u,
			litSeq:    seq,
			name:      fmt.Sprintf("%s$%d", parent.name, seq),
			addrPos:   lit.Pos(), // literals are values by construction
		}
		b.graph.byLit[lit] = ln
		b.graph.Nodes = append(b.graph.Nodes, ln)
		b.collectLits(u, ln, lit.Body)
		return false // nested lits handled by the recursive call
	}
	for _, s := range body.List {
		ast.Inspect(s, walk)
	}
}

// sweepTaken marks every function-denoting identifier in the unit as
// address-taken unless it is the outermost Fun of a call expression.
func (b *gbuilder) sweepTaken(u *Unit) {
	callFuns := map[*ast.Ident]bool{}
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callFuns[fun] = true
			case *ast.SelectorExpr:
				callFuns[fun.Sel] = true
			}
			return true
		})
	}
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || callFuns[id] {
				return true
			}
			b.takeIdent(u, id)
			return true
		})
	}
}

func (b *gbuilder) takeIdent(u *Unit, id *ast.Ident) {
	obj, _ := u.Info.Uses[id].(*types.Func)
	if obj == nil {
		return
	}
	if n := b.graph.byObj[obj]; n != nil && n.addrPos == token.NoPos {
		n.addrPos = id.Pos()
	}
}

// resolveBody resolves every call site lexically inside n's own body
// (literal bodies belong to the literal's node).
func (b *gbuilder) resolveBody(n *Node) {
	body := n.Body()
	if body == nil {
		return
	}
	u := n.Unit
	var inspect func(node ast.Node, inGo, inDefer bool)
	inspect = func(node ast.Node, inGo, inDefer bool) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false // separate node
			case *ast.GoStmt:
				inspect(x.Call, true, inDefer)
				return false
			case *ast.DeferStmt:
				inspect(x.Call, inGo, true)
				return false
			case *ast.CallExpr:
				b.resolveCall(u, n, x, inGo, inDefer)
			}
			return true
		})
	}
	inspect(body, false, false)
}

func (b *gbuilder) resolveCall(u *Unit, caller *Node, call *ast.CallExpr, inGo, inDefer bool) {
	fun := ast.Unparen(call.Fun)

	// Conversions and builtins are not calls.
	if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := u.Info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}

	addEdge := func(callee *Node, kind EdgeKind) {
		if callee == nil {
			return
		}
		caller.Out = append(caller.Out, Edge{
			Site: call, Pos: call.Pos(), Callee: callee, Kind: kind,
			Go: inGo, Deferred: inDefer,
		})
	}

	// Immediately invoked literal: (func(){...})().
	if lit, ok := fun.(*ast.FuncLit); ok {
		addEdge(b.graph.byLit[lit], Static)
		return
	}

	// Identified function object (package function, method expression,
	// concrete method through a selector)?
	if obj := calleeObj(u.Info, fun); obj != nil {
		// Interface method: resolve to module implementations.
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if selection := u.Info.Selections[sel]; selection != nil {
				if iface, ok := selection.Recv().Underlying().(*types.Interface); ok {
					for _, m := range b.implementations(iface, obj) {
						addEdge(m, Interface)
					}
					return
				}
			}
		}
		addEdge(b.stub(obj), Static)
		return
	}

	// Function-typed value: resolve to address-taken functions with an
	// identical signature.
	sig, ok := u.Info.TypeOf(fun).(*types.Signature)
	if !ok {
		return
	}
	caller.Dynamic = append(caller.Dynamic, DynSite{
		Site: call, Pos: call.Pos(), Go: inGo, Deferred: inDefer,
	})
	for _, cand := range b.graph.Nodes {
		if !cand.AddressTaken() {
			continue
		}
		if types.Identical(nodeSig(cand), sig) {
			addEdge(cand, FuncValue)
		}
	}
}

// implementations returns the module methods corresponding to abstract
// method decl on types that implement iface. The lookup carries decl's
// package so unexported interface methods resolve within it.
func (b *gbuilder) implementations(iface *types.Interface, decl *types.Func) []*Node {
	var out []*Node
	seen := map[*types.Func]bool{}
	for _, named := range b.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, decl.Pkg(), decl.Name())
		m, ok := obj.(*types.Func)
		if !ok || seen[m] {
			continue
		}
		seen[m] = true
		if n := b.graph.byObj[m]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// stub returns the node of obj, creating a body-less external stub if
// the module does not declare it.
func (b *gbuilder) stub(obj *types.Func) *Node {
	if n := b.graph.byObj[obj]; n != nil {
		return n
	}
	n := &Node{Obj: obj, name: funcName(obj)}
	b.graph.byObj[obj] = n
	return n
}

// calleeObj extracts the *types.Func a call's Fun denotes, nil for
// dynamic calls.
func calleeObj(info *types.Info, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		obj, _ := info.Uses[fun].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := info.Uses[fun.Sel].(*types.Func)
		return obj
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return calleeObj(info, fun.X)
	}
	return nil
}

// nodeSig returns the node's signature type.
func nodeSig(n *Node) *types.Signature {
	switch {
	case n.Obj != nil:
		return n.Obj.Type().(*types.Signature)
	case n.Lit != nil:
		if t, ok := n.Unit.Info.TypeOf(n.Lit).(*types.Signature); ok {
			return t
		}
	}
	return types.NewSignatureType(nil, nil, nil, nil, nil, false)
}

// funcName renders a function object for diagnostics: pkg.Func or
// pkg.(*T).Method.
func funcName(obj *types.Func) string {
	name := obj.Name()
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		return fmt.Sprintf("%s.%s", types.TypeString(rt, func(p *types.Package) string {
			return p.Name()
		}), name)
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + name
	}
	return name
}
