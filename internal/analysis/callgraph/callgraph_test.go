package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// check type-checks src as a single package and returns its Unit.
func check(t *testing.T, src string) (*token.FileSet, *Unit) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return fset, &Unit{Path: "p", Pkg: pkg, Info: info, Files: []*ast.File{f}}
}

// node finds a node by Name, failing the test if absent.
func node(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q; have %v", name, names(g))
	return nil
}

func names(g *Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		out = append(out, n.Name())
	}
	return out
}

// callees returns the names of n's callees, with duplicates.
func callees(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		out = append(out, e.Callee.Name())
	}
	return out
}

func has(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

func TestStaticCalls(t *testing.T) {
	_, u := check(t, `package p
func a() { b(); c() }
func b() { c() }
func c() {}
`)
	g := Build(nil, []*Unit{u})
	a := node(t, g, "p.a")
	if got := callees(a); !has(got, "p.b") || !has(got, "p.c") {
		t.Fatalf("a calls %v, want b and c", got)
	}
	if got := callees(node(t, g, "p.c")); len(got) != 0 {
		t.Fatalf("c calls %v, want none", got)
	}
}

func TestMethodCalls(t *testing.T) {
	_, u := check(t, `package p
type T struct{}
func (t *T) M() { t.helper() }
func (t *T) helper() {}
func use(t *T) { t.M() }
`)
	g := Build(nil, []*Unit{u})
	if got := callees(node(t, g, "p.use")); !has(got, "*p.T.M") {
		t.Fatalf("use calls %v, want *p.T.M", got)
	}
	if got := callees(node(t, g, "*p.T.M")); !has(got, "*p.T.helper") {
		t.Fatalf("M calls %v, want *p.T.helper", got)
	}
}

func TestInterfaceDispatch(t *testing.T) {
	_, u := check(t, `package p
type I interface{ Do() }
type A struct{}
func (A) Do() {}
type B struct{}
func (*B) Do() {}
type C struct{} // does not implement I
func (C) Other() {}
func dispatch(i I) { i.Do() }
`)
	g := Build(nil, []*Unit{u})
	got := callees(node(t, g, "p.dispatch"))
	if !has(got, "p.A.Do") || !has(got, "*p.B.Do") {
		t.Fatalf("dispatch calls %v, want A.Do and (*B).Do", got)
	}
	for _, e := range node(t, g, "p.dispatch").Out {
		if e.Kind != Interface {
			t.Fatalf("edge kind = %v, want Interface", e.Kind)
		}
	}
	if has(got, "p.C.Other") {
		t.Fatalf("dispatch must not call C.Other: %v", got)
	}
}

func TestInterfaceDispatchUnexported(t *testing.T) {
	_, u := check(t, `package p
type sink interface{ consume() }
type impl struct{}
func (impl) consume() {}
func dispatch(s sink) { s.consume() }
`)
	g := Build(nil, []*Unit{u})
	got := callees(node(t, g, "p.dispatch"))
	if !has(got, "p.impl.consume") {
		t.Fatalf("dispatch calls %v, want p.impl.consume (unexported method lookup)", got)
	}
}

func TestFuncValueCalls(t *testing.T) {
	_, u := check(t, `package p
func taken(i int) {}
func alsoTaken(i int) {}
func notTaken(i int) {}
func differentSig(s string) {}
func run(f func(int)) { f(0) }
func main() { run(taken); g := alsoTaken; _ = g; differentSig("x") }
`)
	g := Build(nil, []*Unit{u})
	got := callees(node(t, g, "p.run"))
	if !has(got, "p.taken") || !has(got, "p.alsoTaken") {
		t.Fatalf("run's dynamic call resolves to %v, want taken and alsoTaken", got)
	}
	if has(got, "p.notTaken") || has(got, "p.differentSig") {
		t.Fatalf("dynamic call over-resolved: %v", got)
	}
}

func TestFuncLitNodes(t *testing.T) {
	_, u := check(t, `package p
func run(f func(int)) { f(0) }
func outer() {
	run(func(w int) { inner() })
}
func inner() {}
`)
	g := Build(nil, []*Unit{u})
	lit := node(t, g, "p.outer$1")
	if got := callees(lit); !has(got, "p.inner") {
		t.Fatalf("literal calls %v, want p.inner", got)
	}
	// The literal is address-taken, so run's dynamic call reaches it.
	if got := callees(node(t, g, "p.run")); !has(got, "p.outer$1") {
		t.Fatalf("run resolves to %v, want the literal", got)
	}
}

func TestImmediatelyInvokedLit(t *testing.T) {
	_, u := check(t, `package p
func f() { func() { g() }() }
func g() {}
`)
	g := Build(nil, []*Unit{u})
	if got := callees(node(t, g, "p.f")); !has(got, "p.f$1") {
		t.Fatalf("f calls %v, want its literal", got)
	}
}

func TestGoAndDeferFlags(t *testing.T) {
	_, u := check(t, `package p
func f() {
	go worker()
	defer cleanup()
	plain()
}
func worker()  {}
func cleanup() {}
func plain()   {}
`)
	g := Build(nil, []*Unit{u})
	for _, e := range node(t, g, "p.f").Out {
		switch e.Callee.Name() {
		case "p.worker":
			if !e.Go {
				t.Error("worker edge not marked Go")
			}
		case "p.cleanup":
			if !e.Deferred {
				t.Error("cleanup edge not marked Deferred")
			}
		case "p.plain":
			if e.Go || e.Deferred {
				t.Error("plain edge wrongly marked")
			}
		}
	}
}

func TestConversionNotACall(t *testing.T) {
	_, u := check(t, `package p
type myInt int
func f() { _ = myInt(3); _ = len("x") }
`)
	g := Build(nil, []*Unit{u})
	if got := callees(node(t, g, "p.f")); len(got) != 0 {
		t.Fatalf("f calls %v, want none (conversion and builtin)", got)
	}
}

func TestNestedLits(t *testing.T) {
	_, u := check(t, `package p
func f() {
	_ = func() {
		_ = func() { leaf() }
	}
}
func leaf() {}
`)
	g := Build(nil, []*Unit{u})
	if got := callees(node(t, g, "p.f$1$1")); !has(got, "p.leaf") {
		t.Fatalf("nested literal calls %v, want p.leaf", got)
	}
}
