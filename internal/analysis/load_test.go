package analysis

import (
	"go/constant"
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a throwaway module whose kern package has
// per-GOOS and per-GOARCH file pairs: every target must select exactly
// one file from each pair or the package does not type-check (the
// pairs redeclare the same constants).
func writeModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module loadertest\n\ngo 1.22\n",
		"kern/common.go": `package kern

// Arch and OS are declared once per build-constraint pair; the loaded
// values tell the test which files were selected.
var Selected = archImpl + "/" + osImpl
`,
		"kern/impl_amd64.go": `package kern

const archImpl = "amd64"
`,
		"kern/impl_arm64.go": `package kern

const archImpl = "arm64"
`,
		"kern/impl_other.go": `//go:build !amd64 && !arm64

package kern

const archImpl = "portable"
`,
		"kern/os_linux.go": `package kern

const osImpl = "linux"
`,
		"kern/os_other.go": `//go:build !linux

package kern

const osImpl = "other"
`,
	}
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func loadSelected(t *testing.T, root, goos, goarch string) string {
	t.Helper()
	loader, err := NewLoader(root, "")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	loader.SetTarget(goos, goarch)
	pkg, err := loader.LoadDir(filepath.Join(root, "kern"))
	if err != nil {
		t.Fatalf("LoadDir(%s/%s): %v", goos, goarch, err)
	}
	obj := pkg.Types.Scope().Lookup("Selected")
	if obj == nil {
		t.Fatalf("%s/%s: no Selected in package scope", goos, goarch)
	}
	// Selected is a var initialized from two constants; read the pair
	// through the constants themselves for an exact answer.
	arch := pkg.Types.Scope().Lookup("archImpl")
	osv := pkg.Types.Scope().Lookup("osImpl")
	if arch == nil || osv == nil {
		t.Fatalf("%s/%s: constraint pair constants missing", goos, goarch)
	}
	return constant.StringVal(arch.(interface{ Val() constant.Value }).Val()) +
		"/" + constant.StringVal(osv.(interface{ Val() constant.Value }).Val())
}

// TestLoaderSyntheticTargets loads the same package for a GOOS/GOARCH
// matrix and asserts each target selects exactly its half of every
// build-constraint file pair.
func TestLoaderSyntheticTargets(t *testing.T) {
	root := writeModule(t)
	cases := []struct {
		goos, goarch string
		want         string
	}{
		{"linux", "amd64", "amd64/linux"},
		{"linux", "arm64", "arm64/linux"},
		{"darwin", "amd64", "amd64/other"},
		{"darwin", "arm64", "arm64/other"},
		{"linux", "riscv64", "portable/linux"},
	}
	for _, c := range cases {
		got := loadSelected(t, root, c.goos, c.goarch)
		if got != c.want {
			t.Errorf("%s/%s: selected %q, want %q", c.goos, c.goarch, got, c.want)
		}
	}
}

// TestLoaderHostDefault checks the no-SetTarget path still loads (host
// constraints).
func TestLoaderHostDefault(t *testing.T) {
	root := writeModule(t)
	loader, err := NewLoader(root, "")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := loader.LoadDir(filepath.Join(root, "kern")); err != nil {
		t.Fatalf("LoadDir host default: %v", err)
	}
}

// TestLoaderTargetConflict proves the mechanism is load-bearing: with
// constraints ignored, both halves of a pair would be parsed and the
// package would fail to type-check with a redeclaration. Loading for a
// target that matches NO arch file must fail with "no Go files"
// rather than silently including everything.
func TestLoaderTargetPairsExclusive(t *testing.T) {
	root := t.TempDir()
	for name, src := range map[string]string{
		"go.mod":             "module exclusivetest\n\ngo 1.22\n",
		"only/impl_amd64.go": "package only\n\nconst V = 1\n",
	} {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader, err := NewLoader(root, "")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	loader.SetTarget("linux", "arm64")
	if _, err := loader.LoadDir(filepath.Join(root, "only")); err == nil {
		t.Fatal("loading an amd64-only package for arm64 succeeded; constraints are not being applied")
	}
}
