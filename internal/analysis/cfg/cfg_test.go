package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src as a file containing one function and returns its CFG.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body, nil)
}

// reachable returns the blocks reachable from g.Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable in straight-line function")
	}
}

func TestIfElseJoins(t *testing.T) {
	g := build(t, `
	x := 0
	if x > 0 {
		x = 1
	} else {
		x = 2
	}
	_ = x`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable after if/else")
	}
}

func TestReturnReachesExit(t *testing.T) {
	g := build(t, `
	x := 0
	if x > 0 {
		return
	}
	_ = x`)
	// Exit must be reachable both via the early return and fallthrough.
	preds := 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == g.Exit {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Fatalf("exit has %d predecessors, want 2 (early return + end)", preds)
	}
}

func TestPanicTerminates(t *testing.T) {
	g := build(t, `panic("boom")`)
	if reachable(g)[g.Exit] {
		t.Fatal("exit reachable through a panic-only body")
	}
}

func TestPanicBranchStillFallsThroughElsewhere(t *testing.T) {
	g := build(t, `
	x := 0
	if x > 0 {
		panic("boom")
	}
	_ = x`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit must stay reachable via the non-panic path")
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	g := build(t, `
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		if i == 5 {
			break
		}
	}
	_ = 1`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable after loop")
	}
}

func TestInfiniteLoopNoExit(t *testing.T) {
	g := build(t, `for {
	}`)
	if reachable(g)[g.Exit] {
		t.Fatal("exit reachable out of for{} with no break")
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := build(t, `
	for {
		break
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("break must make exit reachable")
	}
}

func TestRange(t *testing.T) {
	g := build(t, `
	s := []int{1, 2}
	for i := range s {
		_ = i
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable after range")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, `
	x := 1
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	default:
		x = 30
	}
	_ = x`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable after switch")
	}
	// The fallthrough edge: some block holding `x = 10` must have a
	// successor holding the case-2 clause expression.
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok2 := as.Rhs[0].(*ast.BasicLit); ok2 && lit.Value == "10" {
					for _, s := range b.Succs {
						for _, sn := range s.Nodes {
							if l2, ok3 := sn.(*ast.BasicLit); ok3 && l2.Value == "2" {
								found = true
							}
						}
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("fallthrough edge from case 1 body to case 2 clause not found")
	}
}

func TestSwitchNoDefaultSkips(t *testing.T) {
	g := build(t, `
	x := 1
	switch x {
	case 1:
		return
	}
	_ = x`)
	if !reachable(g)[g.Exit] {
		t.Fatal("switch without default must have a skip edge to the join")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				break outer
			}
		}
	}
	_ = 1`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable via labeled break")
	}
}

func TestGoto(t *testing.T) {
	g := build(t, `
	x := 0
	if x == 0 {
		goto done
	}
	x = 1
done:
	_ = x`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable with goto")
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `
	ch := make(chan int)
	select {
	case v := <-ch:
		_ = v
	default:
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable after select")
	}
}

func TestDefersCollected(t *testing.T) {
	g := build(t, `
	defer func() {}()
	x := 0
	if x > 0 {
		defer func() {}()
	}
	_ = x`)
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable")
	}
}

func TestTypeSwitch(t *testing.T) {
	g := build(t, `
	var v interface{} = 1
	switch v.(type) {
	case int:
		_ = 1
	case string:
		return
	}
	_ = v`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable after type switch")
	}
}

func TestExitIsLastBlock(t *testing.T) {
	g := build(t, "_ = 1")
	if g.Blocks[len(g.Blocks)-1] != g.Exit {
		t.Fatal("exit must be the last block")
	}
	if g.Blocks[0] != g.Entry {
		t.Fatal("entry must be the first block")
	}
}
