// Package cfg builds intra-function control-flow graphs over go/ast
// function bodies, for the path-sensitive analyzers in internal/analysis
// (phasepair's all-paths span pairing, lockorder's held-lock sets).
//
// The graph is statement-granular: every basic block holds a sequence of
// ast.Node values that execute straight-line — simple statements plus the
// decomposed heads of control statements (an if condition, a range
// operand, switch case expressions) — so a dataflow transfer function can
// inspect each node without accidentally descending into nested bodies,
// which appear in their own blocks.
//
// Control constructs covered: if/else chains, for (all three clauses),
// range, switch and type switch (including fallthrough), select, labeled
// statements with goto / labeled break / labeled continue, and return.
// A call to the panic builtin terminates its block with no successor:
// panic paths unwind through defers, so analyzers that must see
// function exits model them via the deferred statements the graph
// records, not via an edge to Exit.
package cfg

import (
	"go/ast"
	"go/types"
)

// A Block is one basic block: nodes that execute consecutively, then a
// transfer of control to one of Succs. A block whose Succs is empty ends
// the function (return paths instead have the synthetic Exit block as
// their single successor; panic blocks have none).
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, build order).
	Index int
	// Nodes are the straight-line statements and decomposed control
	// heads, in execution order.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is a synthetic, empty block reached by every return statement
	// and by falling off the end of the body. Panic terminators do not
	// reach it.
	Exit *Block
	// Blocks lists every block, Entry first, Exit last.
	Blocks []*Block
	// Defers lists every defer statement in the body, in source order,
	// regardless of the block it sits in. Deferred calls run at every
	// function exit (including panics), so path-sensitive analyzers
	// treat them as a per-exit epilogue rather than ordinary nodes.
	Defers []*ast.DeferStmt
}

// New builds the control-flow graph of body. info may be nil; when set
// it is used to recognize the panic builtin precisely (shadowed panic
// identifiers are then not treated as terminators).
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	b := &builder{info: info}
	b.graph = &Graph{}
	entry := b.newBlock()
	b.graph.Entry = entry
	exit := &Block{}
	b.graph.Exit = exit

	last := b.stmtList(entry, body.List)
	if last != nil {
		b.edge(last, exit)
	}
	// Resolve gotos now that every label has a block.
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	exit.Index = len(b.graph.Blocks)
	b.graph.Blocks = append(b.graph.Blocks, exit)
	return b.graph
}

type pendingGoto struct {
	from  *Block
	label string
}

type loopFrame struct {
	label         string // enclosing label, "" if none
	brk, cont     *Block
	isSwitchOrSel bool
}

type builder struct {
	info   *types.Info
	graph  *Graph
	frames []loopFrame
	labels map[string]*Block
	gotos  []pendingGoto
	// nextLabel holds a pending label to attach to the next loop/switch,
	// so `L: for ...` routes `break L` / `continue L` correctly.
	nextLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmtList threads the statements through cur, returning the live block
// after the last statement (nil when control cannot fall through).
func (b *builder) stmtList(cur *Block, stmts []ast.Stmt) *Block {
	for _, s := range stmts {
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt adds one statement to the graph starting at cur; the result is
// the block where control continues (nil if the statement never falls
// through, e.g. return, panic, goto).
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	if cur == nil {
		// Dead code after a terminator still gets blocks (so its nodes
		// exist in the graph) but no inbound edges.
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(cur, target)
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = target
		b.nextLabel = s.Label.Name
		out := b.stmt(target, s.Stmt)
		b.nextLabel = ""
		return out

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenOut := b.stmtList(thenB, s.Body.List)
		join := b.newBlock()
		b.edge(thenOut, join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			b.edge(b.stmt(elseB, s.Else), join)
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		join := b.newBlock()
		post := b.newBlock()
		b.edge(post, head)
		if s.Post != nil {
			b.stmt(post, s.Post)
		}
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, join)
		}
		b.push(loopFrame{label: label, brk: join, cont: post})
		b.edge(b.stmtList(body, s.Body.List), post)
		b.pop()
		return join

	case *ast.RangeStmt:
		label := b.takeLabel()
		cur.Nodes = append(cur.Nodes, s.X)
		head := b.newBlock()
		b.edge(cur, head)
		// Key/value assignment happens per iteration in the head.
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		join := b.newBlock()
		b.edge(head, join)
		body := b.newBlock()
		b.edge(head, body)
		b.push(loopFrame{label: label, brk: join, cont: head})
		b.edge(b.stmtList(body, s.Body.List), head)
		b.pop()
		return join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(cur, label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		return b.switchBody(cur, label, s.Body, s.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		join := b.newBlock()
		b.push(loopFrame{label: label, brk: join, isSwitchOrSel: true})
		for _, clause := range s.Body.List {
			c := clause.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(cur, blk)
			if c.Comm != nil {
				blk = b.stmt(blk, c.Comm)
			}
			b.edge(b.stmtList(blk, c.Body), join)
		}
		b.pop()
		if len(s.Body.List) == 0 {
			// select{} blocks forever.
			return nil
		}
		return join

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.graph.Exit)
		return nil

	case *ast.BranchStmt:
		return b.branch(cur, s)

	case *ast.DeferStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.graph.Defers = append(b.graph.Defers, s)
		return cur

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.isPanic(call) {
			return nil
		}
		return cur

	default:
		// Simple statements: assignments, declarations, send, incdec, go.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchBody builds the clause fan-out shared by switch and type switch.
// assign, when non-nil, is the type switch's `x := y.(type)` statement,
// re-evaluated per clause.
func (b *builder) switchBody(cur *Block, label string, body *ast.BlockStmt, assign ast.Stmt) *Block {
	join := b.newBlock()
	b.push(loopFrame{label: label, brk: join, isSwitchOrSel: true})
	clauses := body.List
	hasDefault := false
	// Build each clause body; record them so fallthrough can link.
	starts := make([]*Block, len(clauses))
	for i, clause := range clauses {
		c := clause.(*ast.CaseClause)
		blk := b.newBlock()
		starts[i] = blk
		b.edge(cur, blk)
		if assign != nil {
			blk.Nodes = append(blk.Nodes, assign)
		}
		for _, e := range c.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		if c.List == nil {
			hasDefault = true
		}
	}
	for i, clause := range clauses {
		c := clause.(*ast.CaseClause)
		out := b.stmtList(starts[i], bodyWithoutFallthrough(c.Body))
		if endsInFallthrough(c.Body) && i+1 < len(clauses) {
			b.edge(out, starts[i+1])
		} else {
			b.edge(out, join)
		}
	}
	b.pop()
	if !hasDefault {
		b.edge(cur, join)
	}
	return join
}

func endsInFallthrough(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	br, ok := stmts[len(stmts)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

func bodyWithoutFallthrough(stmts []ast.Stmt) []ast.Stmt {
	if endsInFallthrough(stmts) {
		return stmts[:len(stmts)-1]
	}
	return stmts
}

func (b *builder) branch(cur *Block, s *ast.BranchStmt) *Block {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.edge(cur, f.brk)
				return nil
			}
		}
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.isSwitchOrSel {
				continue
			}
			if label == "" || f.label == label {
				b.edge(cur, f.cont)
				return nil
			}
		}
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{from: cur, label: label})
		return nil
	case "fallthrough":
		// Handled structurally by switchBody; a stray fallthrough (would
		// not compile) just terminates the block.
		return nil
	}
	return nil
}

func (b *builder) push(f loopFrame) { b.frames = append(b.frames, f) }
func (b *builder) pop()             { b.frames = b.frames[:len(b.frames)-1] }

func (b *builder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

// isPanic reports whether call invokes the panic builtin.
func (b *builder) isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info == nil {
		return true
	}
	_, isBuiltin := b.info.Uses[id].(*types.Builtin)
	return isBuiltin
}
