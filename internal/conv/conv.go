// Package conv implements the convolution algorithm zoo that the cuDNN
// layer exposes: eight algorithms with genuinely different arithmetic and
// workspace footprints, each supporting the three cuDNN convolution
// operations (Forward, BackwardData, BackwardFilter) where the real cuDNN
// does.
//
// All kernels compute the cuDNN blend semantics
//
//	out = alpha * op(inputs) + beta * out
//
// and are numerically validated against the direct reference in the tests.
// Workspace requirements are exact: Run never touches more than
// Workspace(op, algo, cs) bytes of the provided scratch buffer, and runs
// with as little as MinWorkspace(op, algo, cs) bytes by degrading to
// fewer workspace strips (see engine.go for the execution model).
package conv

import (
	"fmt"

	"ucudnn/internal/faults"
	"ucudnn/internal/tensor"
)

// Op identifies one of the three cuDNN convolution operations.
type Op int

const (
	// Forward computes output activations from input and filter.
	Forward Op = iota
	// BackwardData computes input gradients from output gradients and filter.
	BackwardData
	// BackwardFilter computes filter gradients from input and output gradients.
	BackwardFilter
	numOps
)

func (op Op) String() string {
	switch op {
	case Forward:
		return "Forward"
	case BackwardData:
		return "BackwardData"
	case BackwardFilter:
		return "BackwardFilter"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Ops lists all three convolution operations.
var Ops = []Op{Forward, BackwardData, BackwardFilter}

// Algo identifies a convolution algorithm. The set mirrors cuDNN v7's
// forward algorithm enumeration; backward operations support the subsets
// listed by AlgosFor, as in cuDNN.
type Algo int

const (
	// AlgoImplicitGemm lowers the convolution onto matrix multiply
	// implicitly, with zero workspace.
	AlgoImplicitGemm Algo = iota
	// AlgoImplicitPrecompGemm is the implicit lowering with a precomputed
	// gather-index table in workspace.
	AlgoImplicitPrecompGemm
	// AlgoGemm materializes the im2col lowering in workspace and runs SGEMM.
	AlgoGemm
	// AlgoDirect is the naive seven-loop convolution with zero workspace.
	AlgoDirect
	// AlgoFFT convolves in the frequency domain with full-plane transforms;
	// fastest for large batches but with a very large workspace.
	AlgoFFT
	// AlgoFFTTiling convolves in the frequency domain over fixed 32x32
	// spatial tiles, trading speed for a much smaller workspace.
	AlgoFFTTiling
	// AlgoWinograd is the fused Winograd minimal-filtering algorithm
	// (F(2x2,3x3)); small workspace, 3x3 stride-1 kernels only.
	AlgoWinograd
	// AlgoWinogradNonfused is the non-fused Winograd algorithm
	// (F(4x4,3x3) / F(2x2,5x5)) with materialized transforms in workspace.
	AlgoWinogradNonfused
	// NumAlgos is the number of algorithm identifiers.
	NumAlgos
)

var algoNames = [NumAlgos]string{
	"IMPLICIT_GEMM",
	"IMPLICIT_PRECOMP_GEMM",
	"GEMM",
	"DIRECT",
	"FFT",
	"FFT_TILING",
	"WINOGRAD",
	"WINOGRAD_NONFUSED",
}

func (a Algo) String() string {
	if a >= 0 && a < NumAlgos {
		return algoNames[a]
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// Per-op algorithm sets, hoisted to package level so AlgosFor (on Run's
// validation path) stays allocation-free.
var (
	forwardAlgos = []Algo{
		AlgoImplicitGemm, AlgoImplicitPrecompGemm, AlgoGemm, AlgoDirect,
		AlgoFFT, AlgoFFTTiling, AlgoWinograd, AlgoWinogradNonfused,
	}
	backwardDataAlgos = []Algo{
		AlgoImplicitGemm, AlgoGemm, AlgoDirect,
		AlgoFFT, AlgoFFTTiling, AlgoWinograd, AlgoWinogradNonfused,
	}
	backwardFilterAlgos = []Algo{
		AlgoImplicitGemm, AlgoGemm, AlgoDirect,
		AlgoFFT, AlgoFFTTiling, AlgoWinogradNonfused,
	}
)

// AlgosFor returns the algorithms available for op, mirroring the per-op
// algorithm sets of cuDNN v7. Callers must not mutate the returned slice.
func AlgosFor(op Op) []Algo {
	switch op {
	case Forward:
		return forwardAlgos
	case BackwardData:
		return backwardDataAlgos
	case BackwardFilter:
		return backwardFilterAlgos
	}
	return nil
}

// maxSampleElems bounds per-sample tensor sizes so float32-encoded gather
// indices remain exact (see implicit.go).
const maxSampleElems = 1 << 24

// Supported reports whether algo can execute op on the given shape.
func Supported(op Op, algo Algo, cs tensor.ConvShape) bool {
	if !cs.Valid() {
		return false
	}
	found := false
	for _, a := range AlgosFor(op) {
		if a == algo {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	p := cs.Params.Normalized()
	spatial1 := p.StrideH == 1 && p.StrideW == 1 && p.DilationH == 1 && p.DilationW == 1
	padOK := p.PadH <= cs.Filt.R-1 && p.PadW <= cs.Filt.S-1
	switch algo {
	case AlgoImplicitGemm, AlgoGemm, AlgoDirect:
		return true
	case AlgoImplicitPrecompGemm:
		return cs.In.C*cs.In.H*cs.In.W < maxSampleElems
	case AlgoFFT:
		if !spatial1 || !padOK {
			return false
		}
		// cuDNN bounds the FFT plan size; we bound the padded plane.
		ph, pw := fftPlanes(cs)
		return ph <= 1024 && pw <= 1024
	case AlgoFFTTiling:
		return spatial1 && padOK && cs.Filt.R <= fftTile-1 && cs.Filt.S <= fftTile-1
	case AlgoWinograd:
		return spatial1 && cs.Filt.R == 3 && cs.Filt.S == 3
	case AlgoWinogradNonfused:
		if !spatial1 || cs.Filt.R != cs.Filt.S {
			return false
		}
		return cs.Filt.R == 3 || cs.Filt.R == 5
	}
	return false
}

// Workspace returns the scratch requirement in bytes for running op with
// algo on shape cs at full parallelism — P = min(MaxWorkers, batch)
// workspace strips for the batch-striped algorithms, plus per-worker
// scratch arenas for the tile-parallel ones — and whether the combination
// is supported. Run never touches more than this many bytes, and the
// WR/WD optimizers therefore account the true workspace cost of parallel
// execution.
func Workspace(op Op, algo Algo, cs tensor.ConvShape) (int64, bool) {
	return workspaceSize(op, algo, cs, false)
}

// MinWorkspace returns the single-strip workspace floor in bytes: the
// least scratch with which Run can execute op at all. Granting less than
// Workspace but at least MinWorkspace degrades execution to fewer strips
// (down to the serial single-strip path) without changing results.
func MinWorkspace(op Op, algo Algo, cs tensor.ConvShape) (int64, bool) {
	return workspaceSize(op, algo, cs, true)
}

func workspaceSize(op Op, algo Algo, cs tensor.ConvShape, minimal bool) (int64, bool) {
	if !Supported(op, algo, cs) {
		return 0, false
	}
	switch algo {
	case AlgoImplicitGemm, AlgoDirect:
		return 0, true
	case AlgoImplicitPrecompGemm:
		return precompWorkspace(cs), true
	case AlgoGemm:
		return gemmWorkspace(op, cs, minimal), true
	case AlgoFFT:
		return fftWorkspace(op, cs, minimal), true
	case AlgoFFTTiling:
		return fftTilingWorkspace(op, cs, minimal), true
	case AlgoWinograd:
		return winogradWorkspace(op, cs, true, minimal), true
	case AlgoWinogradNonfused:
		return winogradWorkspace(op, cs, false, minimal), true
	}
	return 0, false
}

// Run executes op with algo on the given buffers. The buffer roles follow
// cuDNN:
//
//	Forward:        y = alpha*conv(x, w) + beta*y
//	BackwardData:   x = alpha*corr*(y, w) + beta*x   (x holds dX, y holds dY)
//	BackwardFilter: w = alpha*grad(x, y) + beta*w    (w holds dW, y holds dY)
//
// ws must hold at least MinWorkspace(op, algo, cs) bytes (len(ws) is in
// float32 elements, i.e. bytes/4). Run uses as many workspace strips as
// fit in ws, up to the Workspace(op, algo, cs) full-parallel layout, and
// produces bit-identical results at every strip and worker count.
func Run(op Op, algo Algo, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) error {
	if !Supported(op, algo, cs) {
		return fmt.Errorf("conv: %v not supported for %v on %v", algo, op, cs)
	}
	if x.Shape != cs.In {
		return fmt.Errorf("conv: x shape %v != %v", x.Shape, cs.In)
	}
	if w.Filter != cs.Filt {
		return fmt.Errorf("conv: filter %v != %v", w.Filter, cs.Filt)
	}
	if out := cs.OutShape(); y.Shape != out {
		return fmt.Errorf("conv: y shape %v != %v", y.Shape, out)
	}
	if need, _ := MinWorkspace(op, algo, cs); int64(len(ws))*4 < need {
		return fmt.Errorf("conv: workspace too small: have %d bytes, need %d", int64(len(ws))*4, need)
	}
	// Injected kernel-launch failure (a no-op single atomic load unless a
	// fault registry is installed); placed after validation so an injected
	// error means "the kernel failed", not "the call was malformed".
	if err := faults.Err(faults.PointKernelRun); err != nil {
		return err
	}
	switch algo {
	case AlgoDirect:
		runDirect(op, cs, x, w, y, alpha, beta)
	case AlgoImplicitGemm:
		runImplicitGemm(op, cs, x, w, y, alpha, beta)
	case AlgoImplicitPrecompGemm:
		runImplicitPrecomp(op, cs, x, w, y, alpha, beta, ws)
	case AlgoGemm:
		runGemm(op, cs, x, w, y, alpha, beta, ws)
	case AlgoFFT:
		runFFT(op, cs, x, w, y, alpha, beta, ws)
	case AlgoFFTTiling:
		runFFTTiling(op, cs, x, w, y, alpha, beta, ws)
	case AlgoWinograd:
		return runWinograd(op, cs, x, w, y, alpha, beta, ws, true)
	case AlgoWinogradNonfused:
		return runWinograd(op, cs, x, w, y, alpha, beta, ws, false)
	default:
		return fmt.Errorf("conv: unknown algorithm %v", algo)
	}
	return nil
}
