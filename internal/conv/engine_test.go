package conv

// Tests of the kernel execution engine's contract: worker-count policy,
// cross-checks of every striped algorithm against the direct reference at
// P in {1, 4}, bitwise invariance across worker counts, the serial
// single-strip fallback, micro-batched BackwardFilter accumulation at
// every worker count, and the zero-allocation steady state.

import (
	"math"
	"runtime"
	"testing"

	"ucudnn/internal/tensor"
)

// withWorkers runs f with the engine pinned to p workers, restoring the
// previous pin afterwards.
func withWorkers(p int, f func()) {
	prev := SetMaxWorkers(p)
	defer SetMaxWorkers(prev)
	f()
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(3)
	defer SetMaxWorkers(prev)
	if got := MaxWorkers(); got != 3 {
		t.Fatalf("MaxWorkers = %d, want 3", got)
	}
	if got := SetMaxWorkers(0); got != 3 {
		t.Fatalf("SetMaxWorkers returned %d, want previous 3", got)
	}
	if got := MaxWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("automatic MaxWorkers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if SetMaxWorkers(-5); MaxWorkers() != runtime.GOMAXPROCS(0) {
		t.Fatal("negative SetMaxWorkers must restore the automatic default")
	}
}

func TestFitStripes(t *testing.T) {
	for _, tc := range []struct{ want, have, strip, out int }{
		{4, 400, 100, 4},  // all strips fit
		{4, 250, 100, 2},  // only two whole strips fit
		{4, 99, 100, 1},   // below one strip: serial floor
		{4, 1000, 0, 4},   // no striping dimension
		{1, 1000, 100, 1}, // serial stays serial
	} {
		if got := fitStripes(tc.want, tc.have, tc.strip); got != tc.out {
			t.Errorf("fitStripes(%d, %d, %d) = %d, want %d", tc.want, tc.have, tc.strip, got, tc.out)
		}
	}
}

func TestChunkBoundsCoverDisjointly(t *testing.T) {
	for _, n := range []int{1, 5, 16, 17} {
		for workers := 1; workers <= 6; workers++ {
			covered := 0
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := chunkBounds(n, workers, w)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d: worker %d starts at %d, want %d", n, workers, w, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("n=%d workers=%d: covered %d", n, workers, covered)
			}
		}
	}
}

// Every algorithm must match the direct reference at both the serial
// worker count and the striped one — the ISSUE's P in {1, 4} cross-check
// over the strided/padded/dilated shape matrix.
func TestAllAlgorithmsMatchDirectAtWorkerCounts(t *testing.T) {
	for _, p := range []int{1, 4} {
		withWorkers(p, func() {
			for _, op := range Ops {
				for _, algo := range AlgosFor(op) {
					if algo == AlgoDirect {
						continue
					}
					for si, cs := range testShapes {
						if !Supported(op, algo, cs) {
							continue
						}
						x, w, y := randomProblem(cs, int64(100*p+si))
						xr, wr, yr := x.Clone(), w.Clone(), y.Clone()
						runRef(op, cs, xr, wr, yr, 1, 0)
						ws := wsFor(t, op, algo, cs)
						if err := Run(op, algo, cs, x, w, y, 1, 0, ws); err != nil {
							t.Fatalf("P=%d %v/%v shape %d: %v", p, op, algo, si, err)
						}
						got, want := resultOf(op, x, w, y), resultOf(op, xr, wr, yr)
						if !tensor.AllClose(got, want, tolFor(algo, cs), 1e-3) {
							t.Errorf("P=%d %v/%v shape %d: maxdiff %g", p, op, algo, si,
								tensor.MaxAbsDiff(got, want))
						}
					}
				}
			}
		})
	}
}

// resultOf picks the tensor an op writes.
func resultOf(op Op, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor) []float32 {
	switch op {
	case Forward:
		return y.Data
	case BackwardData:
		return x.Data
	case BackwardFilter:
		return w.Data
	}
	return nil
}

// Engine contract part 3: striping redistributes who computes each
// sample/tile, never the per-element operation order, so every algorithm
// is bit-identical at every worker count.
func TestWorkerCountBitwiseInvariance(t *testing.T) {
	for _, op := range Ops {
		for _, algo := range AlgosFor(op) {
			for si, cs := range testShapes {
				if !Supported(op, algo, cs) {
					continue
				}
				var ref []float32
				for _, p := range []int{1, 2, 4} {
					withWorkers(p, func() {
						x, w, y := randomProblem(cs, int64(si+41))
						ws := wsFor(t, op, algo, cs)
						if err := Run(op, algo, cs, x, w, y, 0.75, 0.25, ws); err != nil {
							t.Fatalf("P=%d %v/%v shape %d: %v", p, op, algo, si, err)
						}
						got := resultOf(op, x, w, y)
						if ref == nil {
							ref = append([]float32(nil), got...)
							return
						}
						for i := range got {
							if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
								t.Fatalf("P=%d %v/%v shape %d: elem %d = %x, P=1 gave %x",
									p, op, algo, si, i, math.Float32bits(got[i]), math.Float32bits(ref[i]))
							}
						}
					})
				}
			}
		}
	}
}

// A workspace at the MinWorkspace floor must produce bit-identical
// results to the fully striped workspace: fewer strips only serialize the
// batch loop, they never change the arithmetic.
func TestSerialFallbackBitwiseMatchesStriped(t *testing.T) {
	cs := testShapes[7] // N=4: enough samples to stripe at P=4
	withWorkers(4, func() {
		for _, op := range Ops {
			for _, algo := range AlgosFor(op) {
				if !Supported(op, algo, cs) {
					continue
				}
				fullB, _ := Workspace(op, algo, cs)
				minB, _ := MinWorkspace(op, algo, cs)
				x, w, y := randomProblem(cs, 59)
				xs, wsT, ys := x.Clone(), w.Clone(), y.Clone()
				if err := Run(op, algo, cs, x, w, y, 1, 0, make([]float32, (fullB+3)/4)); err != nil {
					t.Fatalf("%v/%v full: %v", op, algo, err)
				}
				if err := Run(op, algo, cs, xs, wsT, ys, 1, 0, make([]float32, (minB+3)/4)); err != nil {
					t.Fatalf("%v/%v floor: %v", op, algo, err)
				}
				got, want := resultOf(op, xs, wsT, ys), resultOf(op, x, w, y)
				for i := range got {
					if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
						t.Fatalf("%v/%v: floor workspace diverges at elem %d (%x vs %x)",
							op, algo, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
					}
				}
			}
		}
	})
}

// The §II loop-splitting guarantee at every worker count: the undivided
// BackwardFilter equals the micro-batched beta=1 accumulation. The
// sample-order algorithms (direct, implicit, GEMM) are bit-exact; the
// spectral algorithms (FFT, Winograd) transform whole-batch accumulations
// so they carry the documented float tolerance instead.
func TestBackwardFilterMicroBatchAtWorkerCounts(t *testing.T) {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 6, C: 3, H: 8, W: 8},
		Filt:   tensor.Filter{K: 4, C: 3, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	bitExact := map[Algo]bool{AlgoDirect: true, AlgoImplicitGemm: true, AlgoGemm: true}
	splits := [][]int{{3, 3}, {1, 2, 3}, {5, 1}}
	for _, p := range []int{1, 2, 4} {
		withWorkers(p, func() {
			for _, algo := range AlgosFor(BackwardFilter) {
				if !Supported(BackwardFilter, algo, cs) {
					continue
				}
				x, w, y := randomProblem(cs, 61)
				wu := w.Clone()
				ws := wsFor(t, BackwardFilter, algo, cs)
				if err := Run(BackwardFilter, algo, cs, x, wu, y, 1, 0, ws); err != nil {
					t.Fatal(err)
				}
				for _, split := range splits {
					wsT := w.Clone()
					off := 0
					for mi, mb := range split {
						mcs := cs.WithN(mb)
						beta := float32(1)
						if mi == 0 {
							beta = 0
						}
						mws := wsFor(t, BackwardFilter, algo, mcs)
						if err := Run(BackwardFilter, algo, mcs, x.Sample(off, mb), wsT, y.Sample(off, mb), 1, beta, mws); err != nil {
							t.Fatalf("P=%d %v split %v: %v", p, algo, split, err)
						}
						off += mb
					}
					if bitExact[algo] {
						for i := range wsT.Data {
							if math.Float32bits(wsT.Data[i]) != math.Float32bits(wu.Data[i]) {
								t.Fatalf("P=%d %v split %v: dW[%d] = %x != %x", p, algo, split, i,
									math.Float32bits(wsT.Data[i]), math.Float32bits(wu.Data[i]))
							}
						}
					} else if !tensor.AllClose(wsT.Data, wu.Data, tolFor(algo, cs), 1e-3) {
						t.Errorf("P=%d %v split %v: maxdiff %g", p, algo, split,
							tensor.MaxAbsDiff(wsT.Data, wu.Data))
					}
				}
			}
		})
	}
}

// Steady-state Forward must not allocate for the GEMM and Winograd paths:
// all scratch comes from the caller's workspace. Pinned to the serial
// path — fork-join goroutine spawns are the one allocation parallel
// execution inherently makes.
func TestForwardZeroAllocSteadyState(t *testing.T) {
	prevP := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prevP)
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 4, C: 4, H: 12, W: 12},
		Filt:   tensor.Filter{K: 8, C: 4, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	for _, algo := range []Algo{AlgoGemm, AlgoWinograd, AlgoWinogradNonfused} {
		x, w, y := randomProblem(cs, 67)
		ws := wsFor(t, Forward, algo, cs)
		run := func() {
			if err := Run(Forward, algo, cs, x, w, y, 1, 0, ws); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm-up: transform caches are one-time costs
		if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
			t.Errorf("%v forward allocates %.1f objects/op in steady state, want 0", algo, allocs)
		}
	}
}
