package conv_test

// Micro-benchmarks of the real CPU convolution kernels. These are the
// perf gate behind `make bench-smoke` and the numbers committed in
// BENCH_kernels.json: run with
//
//	go test -run=NONE -bench=BenchmarkConvKernels -benchmem ./internal/conv/
//
// The shapes are batch >= 8 so the batch-striped execution engine has
// samples to distribute; allocs/op is the steady-state allocation count
// the engine is required to keep at zero for the GEMM and Winograd
// forward paths.

import (
	"fmt"
	"testing"

	"ucudnn/internal/conv"
	"ucudnn/internal/tensor"
)

// benchShape is a mid-sized 3x3 stride-1 layer every algorithm supports.
func benchShape(n int) tensor.ConvShape {
	return tensor.ConvShape{
		In:     tensor.Shape{N: n, C: 16, H: 28, W: 28},
		Filt:   tensor.Filter{K: 32, C: 16, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
}

func benchProblem(b *testing.B, op conv.Op, algo conv.Algo, cs tensor.ConvShape) (*tensor.Tensor, *tensor.FilterTensor, *tensor.Tensor, []float32) {
	b.Helper()
	if !conv.Supported(op, algo, cs) {
		b.Skipf("%v unsupported for %v on %v", algo, op, cs)
	}
	// Benchmarks measure the engine at its automatic worker count (the
	// machine's GOMAXPROCS), not the deterministic pin TestMain sets for
	// the unit tests.
	prev := conv.SetMaxWorkers(0)
	b.Cleanup(func() { conv.SetMaxWorkers(prev) })
	x := tensor.NewShaped(cs.In)
	w := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	y := tensor.NewShaped(cs.OutShape())
	for i := range x.Data {
		x.Data[i] = float32(i%17) * 0.25
	}
	for i := range w.Data {
		w.Data[i] = float32(i%5) * 0.5
	}
	wsBytes, ok := conv.Workspace(op, algo, cs)
	if !ok {
		b.Fatalf("Workspace(%v, %v) unsupported", op, algo)
	}
	return x, w, y, make([]float32, (wsBytes+3)/4)
}

// BenchmarkConvKernels measures the forward kernels at batch 8 — the
// micro-benchmark the ISSUE's >=2x GEMM speedup criterion refers to.
func BenchmarkConvKernels(b *testing.B) {
	cs := benchShape(8)
	for _, algo := range []conv.Algo{
		conv.AlgoGemm, conv.AlgoWinograd, conv.AlgoWinogradNonfused,
		conv.AlgoImplicitGemm, conv.AlgoFFTTiling, conv.AlgoDirect,
	} {
		b.Run(algo.String(), func(b *testing.B) {
			x, w, y, ws := benchProblem(b, conv.Forward, algo, cs)
			// Warm up once: transform caches etc. are one-time costs.
			if err := conv.Run(conv.Forward, algo, cs, x, w, y, 1, 0, ws); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conv.Run(conv.Forward, algo, cs, x, w, y, 1, 0, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConvBackwardFilter measures the gradient kernels whose
// deterministic batch-order accumulation the micro-batch tests rely on.
func BenchmarkConvBackwardFilter(b *testing.B) {
	cs := benchShape(8)
	for _, algo := range []conv.Algo{conv.AlgoGemm, conv.AlgoWinogradNonfused} {
		b.Run(algo.String(), func(b *testing.B) {
			x, w, y, ws := benchProblem(b, conv.BackwardFilter, algo, cs)
			if err := conv.Run(conv.BackwardFilter, algo, cs, x, w, y, 1, 0, ws); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conv.Run(conv.BackwardFilter, algo, cs, x, w, y, 1, 0, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConvKernelsBatch sweeps the GEMM forward kernel over batch
// sizes, charting how striping scales with available samples.
func BenchmarkConvKernelsBatch(b *testing.B) {
	for _, n := range []int{1, 8, 32} {
		cs := benchShape(n)
		b.Run(fmt.Sprintf("GEMM/b%d", n), func(b *testing.B) {
			x, w, y, ws := benchProblem(b, conv.Forward, conv.AlgoGemm, cs)
			if err := conv.Run(conv.Forward, conv.AlgoGemm, cs, x, w, y, 1, 0, ws); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := conv.Run(conv.Forward, conv.AlgoGemm, cs, x, w, y, 1, 0, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
