package conv

import (
	"os"
	"testing"
)

// TestMain pins the kernel engine's worker count: Workspace sizes scale
// with MaxWorkers, so the pin keeps workspace-dependent expectations
// identical on every machine the tests run on (and exercises the striped
// parallel paths even on single-core CI).
func TestMain(m *testing.M) {
	SetMaxWorkers(4)
	os.Exit(m.Run())
}
