package conv

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ucudnn/internal/prof"
)

// This file is the kernel execution engine: worker-count policy, batch
// striping, and the worker-indexed parallel runners the algorithm kernels
// are built on.
//
// The engine's contract has three parts:
//
//  1. Workspace(op, algo, cs) reports the scratch needed for *full*
//     parallelism: P = min(MaxWorkers, N) disjoint workspace strips for
//     the batch-striped algorithms (GEMM), plus per-worker scratch arenas
//     for the tile-parallel ones (Winograd). Optimizers therefore see the
//     real time-vs-workspace tradeoff of parallel execution.
//  2. MinWorkspace(op, algo, cs) is the single-strip floor. Run accepts
//     any workspace >= MinWorkspace and uses however many strips fit,
//     degrading to the serial single-strip path (with the inner SGEMM
//     re-parallelized) when only one fits.
//  3. Results are bit-identical at every worker count: striping only
//     redistributes *who* computes each sample/tile, never the per-element
//     operation order (see the BackwardFilter reduction in gemm.go).

// engineWorkers is the configured cap on kernel workers; 0 means "track
// runtime.GOMAXPROCS".
var engineWorkers atomic.Int32

// MaxWorkers returns the kernel engine's worker cap: the value set by
// SetMaxWorkers, or GOMAXPROCS when unset.
func MaxWorkers() int {
	if n := int(engineWorkers.Load()); n > 0 {
		return n
	}
	//ucudnn:allow hotpathcall -- GOMAXPROCS(0) is a read-only scheduler query; it does not allocate
	return runtime.GOMAXPROCS(0)
}

// SetMaxWorkers caps the engine's parallelism (and with it the striped
// workspace sizes reported by Workspace) and returns the previous cap
// (0 = automatic). n <= 0 restores the automatic GOMAXPROCS-tracking
// default. Tests pin it for deterministic workspace accounting; callers
// that share a machine can bound kernel parallelism without touching
// GOMAXPROCS.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(engineWorkers.Swap(int32(n)))
}

// batchStripes returns the stripe count the workspace contract assumes
// for a batch of n samples: one strip per worker, never more than the
// samples available.
//
//ucudnn:hotpath
func batchStripes(n int) int {
	s := MaxWorkers()
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// fitStripes bounds want stripes by how many whole strips of stripElems
// float32s fit in a workspace of have float32s (at least one: Run has
// already validated the MinWorkspace floor).
//
//ucudnn:hotpath
func fitStripes(want int, have, stripElems int) int {
	if stripElems <= 0 {
		return want
	}
	fit := have / stripElems
	if fit < 1 {
		fit = 1
	}
	if want > fit {
		want = fit
	}
	return want
}

// stripedRun executes f(w) for w in [0, workers), worker 0 inline on the
// calling goroutine. It is the engine's fork-join primitive: each worker
// owns a disjoint workspace strip, so there is no shared mutable state
// beyond the output tensors' disjoint regions. Every parallel launch is
// accounted by the profiler: per-worker busy windows plus the launch's
// wall time, from which stripe load imbalance is derived.
func stripedRun(workers int, f func(w int)) {
	if workers <= 1 {
		f(0)
		return
	}
	ls := prof.LaunchStart()
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			bs := prof.WorkerStart()
			f(w)
			prof.WorkerEnd(w, bs)
		}(w)
	}
	bs := prof.WorkerStart()
	f(0)
	prof.WorkerEnd(0, bs)
	wg.Wait()
	prof.LaunchEnd(workers, ls)
}

// chunkBounds splits n items into chunks of ceil(n/workers) and returns
// the [lo, hi) range owned by worker w.
//
//ucudnn:hotpath
func chunkBounds(n, workers, w int) (int, int) {
	chunk := (n + workers - 1) / workers
	lo := w * chunk
	hi := lo + chunk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// parallelForW runs f(w, i) for i in [0, n) across at most `workers`
// workers in contiguous deterministic chunks, passing each invocation the
// index of the worker (and therefore of its scratch arena). The serial
// case calls f inline so steady-state execution allocates nothing.
func parallelForW(workers, n int, f func(w, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	stripedRun(workers, func(w int) {
		lo, hi := chunkBounds(n, workers, w)
		for i := lo; i < hi; i++ {
			f(w, i)
		}
	})
}

// phaseForW is parallelForW with each worker's chunk timed as one
// window of phase ph. Timing is chunk-level by design: two clock
// readings per worker per stage, independent of how many tiles the
// chunk covers, so profiling overhead stays negligible against the
// chunk's own work. On the serial path the single window is wall time;
// inside a parallel launch each window is that worker's occupancy —
// exactly the halves the profiler's measured-time denominator is built
// from.
func phaseForW(ph prof.Kind, workers, n int, f func(w, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		t := prof.Enter()
		for i := 0; i < n; i++ {
			f(0, i)
		}
		prof.Exit(ph, t)
		return
	}
	stripedRun(workers, func(w int) {
		lo, hi := chunkBounds(n, workers, w)
		t := prof.Enter()
		for i := lo; i < hi; i++ {
			f(w, i)
		}
		prof.Exit(ph, t)
	})
}
