package conv

import (
	"testing"

	"ucudnn/internal/tensor"
)

// f63Shape has 16x16 output planes, above winogradLargeTileMin in both
// extents, so the non-fused path must select F(6x6,3x3).
var f63Shape = tensor.ConvShape{
	In:     tensor.Shape{N: 2, C: 4, H: 16, W: 16},
	Filt:   tensor.Filter{K: 5, C: 4, R: 3, S: 3},
	Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
}

// The tile-size rule is a pure function of the shape: F(6,3) on large
// output planes, F(4,3) below the threshold, F(2,3) fused, F(2,5) for
// 5x5 — and the device cost model mirrors exactly this.
func TestWinogradTileSelection(t *testing.T) {
	small := testShapes[0] // 8x8 output
	if m := winogradM(Forward, f63Shape, false); m != 6 {
		t.Fatalf("large-plane non-fused m = %d, want 6", m)
	}
	if m := winogradM(BackwardData, f63Shape, false); m != 6 {
		t.Fatalf("BackwardData large-plane m = %d, want 6 (dX extents 16x16)", m)
	}
	if m := winogradM(Forward, small, false); m != 4 {
		t.Fatalf("small-plane non-fused m = %d, want 4", m)
	}
	if m := winogradM(Forward, f63Shape, true); m != 2 {
		t.Fatalf("fused m = %d, want 2", m)
	}
	cs5 := small
	cs5.Filt.R, cs5.Filt.S = 5, 5
	cs5.Params.PadH, cs5.Params.PadW = 2, 2
	if m := winogradM(Forward, cs5, false); m != 2 {
		t.Fatalf("5x5 non-fused m = %d, want 2", m)
	}
	// Mixed extents stay on F(4,3): one short side is enough to make the
	// 8-wide tile halo dominate.
	tall := f63Shape
	tall.In.W = 8
	if m := winogradM(Forward, tall, false); m != 4 {
		t.Fatalf("16x8 non-fused m = %d, want 4", m)
	}
}

// F(6,3) accuracy vs the direct reference, bounded by an explicit
// absolute tolerance on unit-scale inputs (the probe error of the bare
// transform is ~2e-5; the bound leaves room for the C-dim accumulation).
func TestWinogradF63AccuracyVsDirect(t *testing.T) {
	const tol = 2e-3
	for _, op := range Ops {
		if !Supported(op, AlgoWinogradNonfused, f63Shape) {
			t.Fatalf("%v unsupported", op)
		}
		x, w, y := randomProblem(f63Shape, 63)
		xr, wr, yr := x.Clone(), w.Clone(), y.Clone()
		runRef(op, f63Shape, xr, wr, yr, 1, 0)
		ws := wsFor(t, op, AlgoWinogradNonfused, f63Shape)
		if err := Run(op, AlgoWinogradNonfused, f63Shape, x, w, y, 1, 0, ws); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		got, want := resultOf(op, x, w, y), resultOf(op, xr, wr, yr)
		if d := tensor.MaxAbsDiff(got, want); d > tol {
			t.Errorf("%v: F(6,3) maxdiff %g > %g", op, d, tol)
		}
	}
}
