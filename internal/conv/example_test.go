package conv_test

import (
	"fmt"

	"ucudnn/internal/conv"
	"ucudnn/internal/tensor"
)

// ExampleRun computes a small convolution with the explicit-GEMM
// algorithm and prints one output element.
func ExampleRun() {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 1, C: 1, H: 3, W: 3},
		Filt:   tensor.Filter{K: 1, C: 1, R: 3, S: 3},
		Params: tensor.Unit,
	}
	x := tensor.NewShaped(cs.In)
	for i := range x.Data {
		x.Data[i] = 1
	}
	w := tensor.NewFilter(1, 1, 3, 3)
	for i := range w.Data {
		w.Data[i] = 2
	}
	y := tensor.NewShaped(cs.OutShape())
	bytes, _ := conv.Workspace(conv.Forward, conv.AlgoGemm, cs)
	ws := make([]float32, (bytes+3)/4)
	if err := conv.Run(conv.Forward, conv.AlgoGemm, cs, x, w, y, 1, 0, ws); err != nil {
		panic(err)
	}
	fmt.Println(y.Data[0]) // 9 taps x 1 x 2
	// Output: 18
}

// ExampleWorkspace contrasts the workspace appetite of two algorithms on
// AlexNet's conv2 — the gap the paper's Fig. 1 is about.
func ExampleWorkspace() {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 256, C: 64, H: 27, W: 27},
		Filt:   tensor.Filter{K: 192, C: 64, R: 5, S: 5},
		Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1},
	}
	gemm, _ := conv.Workspace(conv.Forward, conv.AlgoGemm, cs)
	gemmMin, _ := conv.MinWorkspace(conv.Forward, conv.AlgoGemm, cs)
	fft, _ := conv.Workspace(conv.Forward, conv.AlgoFFT, cs)
	fmt.Printf("GEMM %d MiB (floor %d MiB), FFT %d MiB\n", gemm>>20, gemmMin>>20, fft>>20)
	// Output: GEMM 18 MiB (floor 5 MiB), FFT 280 MiB
}

// ExampleAlgosFor lists the algorithm sets per operation.
func ExampleAlgosFor() {
	fmt.Println(len(conv.AlgosFor(conv.Forward)),
		len(conv.AlgosFor(conv.BackwardData)),
		len(conv.AlgosFor(conv.BackwardFilter)))
	// Output: 8 7 6
}
