package conv

import "ucudnn/internal/tensor"

// runDirect is the reference implementation: the seven-nested-loop
// convolution of the paper's Algorithm 1, with no workspace. It is the
// correctness oracle for every other algorithm.
//
// BackwardFilter deliberately accumulates the per-sample contributions in
// batch order with a single running accumulator per filter element, so a
// micro-batched sequence of calls with beta=1 reproduces the undivided
// result bit for bit (the paper's §II loop-splitting argument).
func runDirect(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	f := cs.Filt
	in := cs.In
	switch op {
	case Forward:
		// One task per (n, k) output plane.
		phaseFor(phDirectMain, out.N*out.C, func(idx int) {
			n := idx / out.C
			k := idx % out.C
			for oh := 0; oh < out.H; oh++ {
				for ow := 0; ow < out.W; ow++ {
					var acc float32
					hBase := oh*p.StrideH - p.PadH
					wBase := ow*p.StrideW - p.PadW
					for c := 0; c < f.C; c++ {
						for r := 0; r < f.R; r++ {
							ih := hBase + r*p.DilationH
							if ih < 0 || ih >= in.H {
								continue
							}
							for s := 0; s < f.S; s++ {
								iw := wBase + s*p.DilationW
								if iw < 0 || iw >= in.W {
									continue
								}
								acc += x.At(n, c, ih, iw) * w.At(k, c, r, s)
							}
						}
					}
					blend(&y.Data[y.Index(n, k, oh, ow)], acc, alpha, beta)
				}
			}
		})
	case BackwardData:
		// dX[n,c,ih,iw] = sum_{k,r,s : oh,ow valid} dY[n,k,oh,ow] * W[k,c,r,s].
		phaseFor(phDirectMain, in.N*in.C, func(idx int) {
			n := idx / in.C
			c := idx % in.C
			for ih := 0; ih < in.H; ih++ {
				for iw := 0; iw < in.W; iw++ {
					var acc float32
					for k := 0; k < f.K; k++ {
						for r := 0; r < f.R; r++ {
							ohNum := ih + p.PadH - r*p.DilationH
							if ohNum < 0 || ohNum%p.StrideH != 0 {
								continue
							}
							oh := ohNum / p.StrideH
							if oh >= out.H {
								continue
							}
							for s := 0; s < f.S; s++ {
								owNum := iw + p.PadW - s*p.DilationW
								if owNum < 0 || owNum%p.StrideW != 0 {
									continue
								}
								ow := owNum / p.StrideW
								if ow >= out.W {
									continue
								}
								acc += y.At(n, k, oh, ow) * w.At(k, c, r, s)
							}
						}
					}
					blend(&x.Data[x.Index(n, c, ih, iw)], acc, alpha, beta)
				}
			}
		})
	case BackwardFilter:
		// dW[k,c,r,s] = sum_n sum_{oh,ow} dY[n,k,oh,ow] * X[n,c,ih,iw].
		// The n loop is outermost per element and strictly ordered. The
		// task grid is K*C so deep-but-narrow layers (small K, large C)
		// still expose enough tasks to occupy every worker; each (k, c)
		// pair owns a disjoint R*S block of dW, and the per-element order
		// is identical at every grid width and worker count.
		phaseFor(phDirectMain, f.K*f.C, func(idx int) {
			k := idx / f.C
			c := idx % f.C
			for r := 0; r < f.R; r++ {
				for s := 0; s < f.S; s++ {
					elem := &w.Data[w.Index(k, c, r, s)]
					if beta == 0 {
						*elem = 0
					} else {
						*elem *= beta
					}
					for n := 0; n < in.N; n++ {
						var part float32
						for oh := 0; oh < out.H; oh++ {
							ih := oh*p.StrideH - p.PadH + r*p.DilationH
							if ih < 0 || ih >= in.H {
								continue
							}
							for ow := 0; ow < out.W; ow++ {
								iw := ow*p.StrideW - p.PadW + s*p.DilationW
								if iw < 0 || iw >= in.W {
									continue
								}
								part += y.At(n, k, oh, ow) * x.At(n, c, ih, iw)
							}
						}
						*elem += alpha * part
					}
				}
			}
		})
	}
}
